package repro

// The benchmark harness: one benchmark per table and figure in the
// paper's evaluation, plus the ablations and the hot-path micro
// benchmarks. Each experiment benchmark executes the same driver that
// cmd/repro uses to print the paper's rows/series, at a bench-friendly
// scale, and reports domain metrics (likes delivered, accounts observed)
// alongside the usual ns/op.
//
// Regenerate everything:   go test -bench=. -benchmem
// One experiment:          go test -bench=BenchmarkTable4Milking

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/graphapi"
	"repro/internal/oauthsim"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
	"repro/internal/workload"
)

// --- Table benchmarks -----------------------------------------------

func BenchmarkTable1Scanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Susceptible != 55 {
			b.Fatalf("susceptible = %d", res.Summary.Susceptible)
		}
		b.ReportMetric(float64(res.Summary.Scanned), "apps-scanned/op")
	}
}

func BenchmarkTable2TrafficRanks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(1)
		if len(res.Rows) != 50 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkTable3AppDirectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkTable4Milking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(experiments.Table4Config{
			Scale:        200,
			PostsDivisor: 40,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		all := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(all.TotalLikes), "likes/op")
		b.ReportMetric(float64(all.MembershipEstimate), "accounts/op")
	}
}

func BenchmarkTable5ShortURLs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table5(experiments.Table5Config{ClickScale: 100_000, Seed: 1})
		if len(res.Rows) != 13 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkTable6Comments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(experiments.Table6Config{
			Scale:        500,
			PostsDivisor: 8,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		all := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(all.Report.Comments), "comments/op")
	}
}

// --- Figure benchmarks ----------------------------------------------

func BenchmarkFigure4Curves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(experiments.Figure4Config{
			Scale:        500,
			PostsDivisor: 40,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Panels) != 3 {
			b.Fatalf("panels = %d", len(res.Panels))
		}
	}
}

func BenchmarkFigure5Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(experiments.Figure5Config{
			Scale: 200,
			Days:  40, // through the invalidation phases
			Seed:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Daily["hublaa.me"][39]
		b.ReportMetric(last, "hublaa-day40-likes/op")
	}
}

func BenchmarkFigure6Histogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(experiments.Figure6Config{Scale: 200, Posts: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Panels) != 2 {
			b.Fatalf("panels = %d", len(res.Panels))
		}
	}
}

func BenchmarkFigure7HourlySpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(experiments.Figure7Config{
			Scale:             500,
			Hours:             24,
			BackgroundPerHour: 10,
			Seed:              1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Panels) != 2 {
			b.Fatalf("panels = %d", len(res.Panels))
		}
	}
}

func BenchmarkFigure8Footprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(experiments.Figure8Config{
			Scale:       200,
			Days:        4,
			MilksPerDay: 6,
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Panels) != 2 {
			b.Fatalf("panels = %d", len(res.Panels))
		}
	}
}

// --- Ablation benchmarks --------------------------------------------

func BenchmarkAblationRateLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRateLimit(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInvalidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationInvalidation(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationClustering(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIPvsAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationIPvsAS(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHoneypotEvasion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHoneypotEvasion(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRejected(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRejectedCountermeasures(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks -------------------------------------------

func BenchmarkExtensionPrivacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtensionPrivacy(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Harvest.Reachable), "accounts-reached/op")
	}
}

func BenchmarkExtensionDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtensionDetection(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.AUC, "auc")
	}
}

func BenchmarkExtensionEconomics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionEconomics(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot-path micro benchmarks --------------------------------------

var benchEpoch = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

// benchWorld is a small platform with one susceptible app and a pool of
// member tokens, shared across micro benchmarks.
type benchWorld struct {
	p      *platform.Platform
	clock  *simclock.Simulated
	app    apps.App
	tokens []string
	post   socialgraph.Post
}

func newBenchWorld(b testing.TB, members int) *benchWorld {
	b.Helper()
	clock := simclock.NewSimulated(benchEpoch)
	p := platform.New(clock, nil)
	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	author := p.Graph.CreateAccount("author", "IN", clock.Now())
	post, err := p.Graph.CreatePost(author.ID, "bench post", socialgraph.WriteMeta{At: clock.Now()})
	if err != nil {
		b.Fatal(err)
	}
	w := &benchWorld{p: p, clock: clock, app: app, post: post}
	for i := 0; i < members; i++ {
		acct := p.Graph.CreateAccount(fmt.Sprintf("m%d", i), "IN", clock.Now())
		res, err := p.OAuth.Authorize(oauthsim.AuthorizeRequest{
			AppID:        app.ID,
			RedirectURI:  app.RedirectURI,
			ResponseType: oauthsim.ResponseToken,
			Scopes:       []string{apps.PermPublishActions},
			AccountID:    acct.ID,
		})
		if err != nil {
			b.Fatal(err)
		}
		w.tokens = append(w.tokens, res.AccessToken)
	}
	return w
}

func BenchmarkGraphAPILike(b *testing.B) {
	w := newBenchWorld(b, 1)
	tok := w.tokens[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh post per iteration so the like is never a duplicate.
		post, err := w.p.Graph.CreatePost(w.post.AuthorID, "p", socialgraph.WriteMeta{At: w.clock.Now()})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.p.API.Like(graphapi.CallContext{AccessToken: tok, SourceIP: "192.0.2.1"}, post.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAddLikeBatch measures the store-level batch apply: one burst
// of 50 distinct likers on a fresh post per iteration, a single call and
// one lock scope. BenchmarkGraphAPILike is the per-call comparator (one
// like, two lock scopes, per call).
func BenchmarkAddLikeBatch(b *testing.B) {
	const burst = 50
	w := newBenchWorld(b, burst)
	graph := w.p.Graph
	accounts := make([]string, burst)
	for i := range accounts {
		acct := graph.CreateAccount(fmt.Sprintf("batch-liker-%d", i), "IN", w.clock.Now())
		accounts[i] = acct.ID
	}
	meta := socialgraph.WriteMeta{SourceIP: "192.0.2.1", At: w.clock.Now()}
	ops := make([]socialgraph.LikeOp, burst)
	round := func() {
		post, err := graph.CreatePost(w.post.AuthorID, "p", socialgraph.WriteMeta{At: w.clock.Now()})
		if err != nil {
			b.Fatal(err)
		}
		for j, acct := range accounts {
			ops[j] = socialgraph.LikeOp{AccountID: acct, ObjectID: post.ID, Meta: meta}
		}
		for _, err := range graph.AddLikeBatch(ops) {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	// Warm the per-account state (activity chunk lists, author post index)
	// before the timer: the delivery hot path this benchmark models runs
	// against accounts that have liked before, and at -benchtime 1x the
	// one measured iteration would otherwise be pure cold start.
	round()
	round()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.ReportMetric(burst, "likes/op")
}

func BenchmarkOAuthImplicitFlow(b *testing.B) {
	w := newBenchWorld(b, 1)
	acct := w.p.Graph.CreateAccount("flow-bench", "IN", w.clock.Now())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.p.OAuth.Authorize(oauthsim.AuthorizeRequest{
			AppID:        w.app.ID,
			RedirectURI:  w.app.RedirectURI,
			ResponseType: oauthsim.ResponseToken,
			Scopes:       []string{apps.PermPublishActions},
			AccountID:    acct.ID,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTokenValidate(b *testing.B) {
	w := newBenchWorld(b, 1)
	tok := w.tokens[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.p.OAuth.Validate(tok); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyChainEvaluate(b *testing.B) {
	clock := simclock.NewSimulated(benchEpoch)
	chain := graphapi.NewChain()
	chain.Append(defense.NewTokenRateLimiter(clock, 1<<30, 24*time.Hour))
	chain.Append(defense.NewIPRateLimiter(clock, 1<<30, 1<<30))
	blocker := defense.NewASBlocker()
	blocker.Block(64500)
	chain.Append(blocker)
	req := graphapi.Request{
		Verb:     graphapi.VerbLike,
		ObjectID: "post",
		Token:    oauthsim.TokenInfo{Token: "tok", AccountID: "acct"},
		SourceIP: "192.0.2.1",
		ASN:      65000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := chain.Evaluate(req); !d.Allow {
			b.Fatalf("denied: %+v", d)
		}
	}
}

func BenchmarkSynchroTrapDetect(b *testing.B) {
	trap := defense.NewSynchroTrap(time.Minute, 0.5, 2, 5)
	for post := 0; post < 50; post++ {
		at := benchEpoch.Add(time.Duration(post) * time.Hour)
		for acct := 0; acct < 100; acct++ {
			trap.Record(fmt.Sprintf("acct-%d", (post*37+acct)%500), fmt.Sprintf("post-%d", post), at)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trap.Detect()
	}
}

func BenchmarkCollusionDelivery(b *testing.B) {
	study, err := core.NewStudy(workload.Options{
		Scale:    200,
		Networks: []string{"hublaa.me"},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	likes := 0
	for i := 0; i < b.N; i++ {
		res := study.MilkNetwork("hublaa.me")
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		likes += res.Delivered
		study.Scenario.Clock.Advance(time.Hour)
	}
	b.ReportMetric(float64(likes)/float64(b.N), "likes/request")
}

// milkingBenchNetworks is the fleet used by the sequential/parallel
// milking pair: enough networks that a worker pool has real fan-out,
// all chosen without a DailyRequestLimit so hourly rounds can run for
// an arbitrary number of iterations.
var milkingBenchNetworks = []string{
	"mg-likers.com", "fast-liker.com", "autolikesgroups.com", "4liker.com",
	"f8-autoliker.com", "myliker.com", "kdliker.com", "oneliker.com",
}

// newMilkingBenchStudy builds the fleet study; batch is the per-network
// DeliveryBatchSize (0 = the batched default, negative = one transport
// call per like, the pre-batch driver).
func newMilkingBenchStudy(b *testing.B, batch int) *core.Study {
	b.Helper()
	study, err := core.NewStudy(workload.Options{
		Scale:             4000,
		MinMembers:        60,
		Networks:          milkingBenchNetworks,
		Seed:              1,
		DeliveryBatchSize: batch,
	})
	if err != nil {
		b.Fatal(err)
	}
	return study
}

// milkRounds drives one milking round per iteration through milk and
// reports likes/round (which must not move with the delivery mode: 464
// on this fleet), the store's contended lock fraction, and shard-lock
// acquisitions per round. The acquisition count is the deterministic
// A/B signal between delivery modes: wall-clock differences drown in
// host jitter on an uncontended box, but batched delivery takes one
// lock scope per run instead of two stripes per like, which this metric
// shows directly.
func milkRounds(b *testing.B, study *core.Study, milk func() []core.MilkResult) {
	b.Helper()
	acq0, _ := study.Scenario.Platform.Graph.Contention().Totals()
	b.ResetTimer()
	likes := 0
	for i := 0; i < b.N; i++ {
		for _, res := range milk() {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			likes += res.Delivered
		}
		study.Scenario.Clock.Advance(time.Hour)
	}
	b.ReportMetric(float64(likes)/float64(b.N), "likes/round")
	acq, cont := study.Scenario.Platform.Graph.Contention().Totals()
	if acq > 0 {
		b.ReportMetric(float64(cont)/float64(acq), "contended-frac")
		b.ReportMetric(float64(acq-acq0)/float64(b.N), "lock-acq/round")
	}
}

// BenchmarkMilkingSequential milks every network of the fleet one after
// another with batching disabled — the pre-batch, pre-parallel driver
// and the historical baseline: one transport call and two lock scopes
// per like.
func BenchmarkMilkingSequential(b *testing.B) {
	study := newMilkingBenchStudy(b, -1)
	milkRounds(b, study, func() []core.MilkResult { return study.MilkAll(1) })
}

// BenchmarkMilkingBatched is the same sequential round with batched
// delivery on (the default): bursts travel as ≤50-op batches into one
// AddLikeBatch apply. Against BenchmarkMilkingSequential this isolates
// what batching alone buys, with identical likes/round.
func BenchmarkMilkingBatched(b *testing.B) {
	study := newMilkingBenchStudy(b, 0)
	milkRounds(b, study, func() []core.MilkResult { return study.MilkAll(1) })
}

// BenchmarkMilkingParallel is the full production configuration: all
// networks milked concurrently within each round by a GOMAXPROCS-bounded
// worker pool, each burst batched, against the sharded store.
func BenchmarkMilkingParallel(b *testing.B) {
	study := newMilkingBenchStudy(b, 0)
	milkRounds(b, study, func() []core.MilkResult { return study.MilkAllParallel(1, 0) })
}

func BenchmarkHTTPGraphAPILike(b *testing.B) {
	w := newBenchWorld(b, 1)
	srv := w.p.ServeHTTPTest()
	defer srv.Close()
	client := platform.NewHTTPClient(srv.URL)
	tok := w.tokens[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post, err := w.p.Graph.CreatePost(w.post.AuthorID, "p", socialgraph.WriteMeta{At: w.clock.Now()})
		if err != nil {
			b.Fatal(err)
		}
		if err := client.Like(tok, post.ID, "192.0.2.1"); err != nil {
			b.Fatal(err)
		}
	}
}
