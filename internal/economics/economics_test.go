package economics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/collusion"
)

func TestEstimateFromTraffic(t *testing.T) {
	m := Model{AdRPMUSD: 0.5, AdsPerVisit: 3, PremiumConversion: 0.01, AvgPlanPriceUSD: 10}
	// The paper's top short URL: ~308K daily clicks (mg-likers.com),
	// 177,665 members.
	e := m.EstimateFromTraffic("mg-likers.com", 308_000, 177_665)
	// 308K visits × 3 ads × $0.0005 = $462/day.
	if math.Abs(e.DailyAdRevenueUSD-462) > 0.01 {
		t.Fatalf("daily ad revenue = %v", e.DailyAdRevenueUSD)
	}
	// 177,665 × 1% × $10 = $17,766.50/month premium.
	if math.Abs(e.MonthlyPremiumUSD-17766.5) > 0.01 {
		t.Fatalf("premium = %v", e.MonthlyPremiumUSD)
	}
	if e.MonthlyTotalUSD != e.MonthlyAdUSD+e.MonthlyPremiumUSD {
		t.Fatal("total mismatch")
	}
	if e.AnnualTotalUSD != 12*e.MonthlyTotalUSD {
		t.Fatal("annual mismatch")
	}
}

func TestEstimateFromMembership(t *testing.T) {
	m := DefaultModel()
	e := m.EstimateFromMembership("x", 10_000)
	if e.DailyVisits != 10_000 {
		t.Fatalf("visits = %v", e.DailyVisits)
	}
	if e.MonthlyTotalUSD <= 0 {
		t.Fatalf("total = %v", e.MonthlyTotalUSD)
	}
}

func TestMeasuredRevenue(t *testing.T) {
	m := DefaultModel()
	ad, prem := m.MeasuredRevenue(collusion.Stats{AdImpressions: 10_000, RevenueUSD: 59.98})
	if math.Abs(ad-5) > 1e-9 {
		t.Fatalf("ad revenue = %v", ad)
	}
	if prem != 59.98 {
		t.Fatalf("premium = %v", prem)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("zero/zero = %v", got)
	}
	if got := RelativeError(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("x/zero = %v", got)
	}
}

// Property: revenue scales linearly in traffic and is never negative for
// non-negative inputs.
func TestQuickEstimateLinear(t *testing.T) {
	m := DefaultModel()
	f := func(visits uint16, members uint16) bool {
		e1 := m.EstimateFromTraffic("n", float64(visits), int(members))
		e2 := m.EstimateFromTraffic("n", 2*float64(visits), int(members))
		if e1.DailyAdRevenueUSD < 0 || e1.MonthlyTotalUSD < 0 {
			return false
		}
		return math.Abs(e2.DailyAdRevenueUSD-2*e1.DailyAdRevenueUSD) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
