// Package economics quantifies the collusion network business model of
// Section 5.1 — the "deeper investigation into the economic aspects"
// the paper's conclusion calls for. Revenue has two streams:
//
//   - advertising: members generate ad impressions on every visit (the
//     heavily-trafficked sites pushed anti-adblock walls to protect this
//     stream); impressions monetize at an RPM;
//   - premium plans: a small fraction of members pay for higher like
//     quotas and automatic delivery.
//
// The model converts observable quantities — daily visits (the paper
// measured short-URL click rates of 308K/139K/122K per day for the top
// three networks) and membership sizes — into revenue estimates, and can
// be validated against a live simulated network's measured Stats.
package economics

import (
	"math"

	"repro/internal/collusion"
)

// Model holds the monetization parameters.
type Model struct {
	// AdRPMUSD is ad revenue per 1,000 impressions. Display RPMs for the
	// dominant visitor geographies (India, Egypt, Vietnam) were on the
	// order of $0.30–$1 in 2016.
	AdRPMUSD float64
	// AdsPerVisit is the impression count a member generates per visit.
	AdsPerVisit int
	// VisitsPerMemberPerDay converts membership into site traffic when no
	// direct click measurement exists.
	VisitsPerMemberPerDay float64
	// PremiumConversion is the fraction of members on a paid plan.
	PremiumConversion float64
	// AvgPlanPriceUSD is the mean monthly premium price.
	AvgPlanPriceUSD float64
}

// DefaultModel returns parameters consistent with the paper's
// observations (free-tier restrictions push a small conversion; plans
// like mg-likers.com's ranged to tens of dollars).
func DefaultModel() Model {
	return Model{
		AdRPMUSD:              0.5,
		AdsPerVisit:           3,
		VisitsPerMemberPerDay: 1.0,
		PremiumConversion:     0.01,
		AvgPlanPriceUSD:       10,
	}
}

// Estimate is a revenue projection for one network.
type Estimate struct {
	Network           string
	DailyVisits       float64
	DailyAdRevenueUSD float64
	MonthlyAdUSD      float64
	MonthlyPremiumUSD float64
	MonthlyTotalUSD   float64
	AnnualTotalUSD    float64
}

// EstimateFromTraffic projects revenue from a measured daily visit count
// and a membership size.
func (m Model) EstimateFromTraffic(network string, dailyVisits float64, members int) Estimate {
	e := Estimate{Network: network, DailyVisits: dailyVisits}
	e.DailyAdRevenueUSD = dailyVisits * float64(m.AdsPerVisit) * m.AdRPMUSD / 1000
	e.MonthlyAdUSD = e.DailyAdRevenueUSD * 30
	e.MonthlyPremiumUSD = float64(members) * m.PremiumConversion * m.AvgPlanPriceUSD
	e.MonthlyTotalUSD = e.MonthlyAdUSD + e.MonthlyPremiumUSD
	e.AnnualTotalUSD = e.MonthlyTotalUSD * 12
	return e
}

// EstimateFromMembership projects revenue with modelled traffic
// (members × VisitsPerMemberPerDay).
func (m Model) EstimateFromMembership(network string, members int) Estimate {
	return m.EstimateFromTraffic(network, float64(members)*m.VisitsPerMemberPerDay, members)
}

// MeasuredRevenue extracts the realized revenue counters from a live
// simulated network, for validating the model: ad revenue from served
// impressions plus premium sales.
func (m Model) MeasuredRevenue(stats collusion.Stats) (adUSD, premiumUSD float64) {
	adUSD = float64(stats.AdImpressions) * m.AdRPMUSD / 1000
	return adUSD, stats.RevenueUSD
}

// RelativeError reports |model-measured|/measured; it returns +Inf for a
// zero measured value with a non-zero estimate.
func RelativeError(estimate, measured float64) float64 {
	if measured == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-measured) / measured
}
