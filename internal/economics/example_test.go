package economics_test

import (
	"fmt"

	"repro/internal/economics"
)

// mg-likers.com's revenue from its measured traffic: 308K daily short-URL
// clicks (Table 5) and 177,665 members (Table 4).
func ExampleModel_EstimateFromTraffic() {
	m := economics.DefaultModel()
	e := m.EstimateFromTraffic("mg-likers.com", 308_000, 177_665)
	fmt.Printf("ads $%.0f/day, premium $%.0f/month, total $%.0f/year\n",
		e.DailyAdRevenueUSD, e.MonthlyPremiumUSD, e.AnnualTotalUSD)
	// Output:
	// ads $462/day, premium $17766/month, total $379518/year
}
