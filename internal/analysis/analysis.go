// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects the
// typed syntax of one package and reports Diagnostics. The repo cannot
// vendor x/tools (the build is hermetic, stdlib only), so this package
// provides just the surface the collusionvet suite needs:
//
//   - Analyzer / Pass / Diagnostic, mirroring the x/tools shapes so the
//     checkers read like ordinary vet analyzers;
//   - doc-comment annotations (//collusionvet:<tag>) that let code opt
//     helpers in or out of an invariant (see Annotated);
//   - inline and package-level diagnostic suppression
//     (//collusionvet:allow <name>, //collusionvet:skip <name>) applied
//     uniformly by every driver (unitchecker, analysistest).
//
// Drivers load and typecheck a package (from export data under `go vet
// -vettool`, or from source in tests), build a Pass, run each Analyzer,
// and filter the reported diagnostics through Suppressions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used in
// -<name>=false flags and suppression comments; Doc is the one-paragraph
// description shown by the multichecker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is the interface between one Analyzer run and the driver: the
// typed syntax of a single package plus a Report sink, plus the fact
// set carrying cross-package analyzer knowledge (may be nil in drivers
// that do not thread facts; the fact methods are nil-safe).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	Facts     *FactSet
}

// ExportObjectFact attaches fact to obj under this analyzer's
// namespace. Only objects of the package under analysis are accepted;
// exports for dependency objects are silently dropped (their facts were
// fixed when they were analyzed).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	p.Facts.export(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type attached to
// obj — by this analyzer, in any package's analysis — into ptr and
// reports whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.lookup(p.Analyzer.Name, obj, ptr)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with every map the analyzers rely on
// allocated. Drivers must use this so Selections/Uses lookups never nil.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Analyzers whose invariant only concerns production code (tokenflow,
// secretcompare, simclock) use this to skip test variants.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.Position(pos).Filename
	return len(f) >= len("_test.go") && f[len(f)-len("_test.go"):] == "_test.go"
}
