package secretcompare_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/secretcompare"
)

func TestSecretCompare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), secretcompare.Analyzer, "secretcompare")
}
