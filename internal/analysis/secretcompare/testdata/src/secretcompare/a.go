// Package secretcompare is golden testdata for the constant-time
// comparison checker.
package secretcompare

import "crypto/subtle"

type app struct {
	ID     string
	Secret string
}

// Variable-time comparisons of credentials.
func bad(secret string, a app, proof, expected string) bool {
	if secret != a.Secret { // want `timing-unsafe comparison of secret "secret"`
		return false
	}
	if proof == expected { // want `timing-unsafe comparison of secret "proof"`
		return false
	}
	return true
}

// Token-to-token equality is an authentication check too.
func sameBearer(token, storedToken string) bool {
	return token == storedToken // want `timing-unsafe comparison of tokens`
}

// Allowed patterns: constants, identity on non-credentials, subtle.
func good(secret string, a app, token string) bool {
	if secret == "" { // clean: constant operand
		return false
	}
	if token != "" { // clean
		return false
	}
	if a.ID == "app-1" { // clean: not a credential name
		return false
	}
	return subtle.ConstantTimeCompare([]byte(secret), []byte(a.Secret)) == 1
}

// Inline suppression for a genuine identity (not auth) comparison.
func rotated(token, prevToken string) bool {
	return token == prevToken //collusionvet:allow secretcompare -- cache-key identity, not verification
}
