// Package secretcompare implements the collusionvet analyzer that flags
// timing-unsafe equality checks on credentials. The paper's Section 6
// countermeasure (appsecret_proof) only helps if the platform compares
// secrets and proofs in constant time; a == on an app secret is a
// byte-at-a-time oracle. The analyzer reports ==/!= between string
// expressions when either side is named like a secret (secret, proof,
// password, ...) or both sides are named like tokens, and neither side
// is a constant (comparisons against "" and literals are identity
// checks, not credential verification).
//
// The approved patterns are crypto/subtle.ConstantTimeCompare,
// crypto/hmac.Equal, and the repro/internal/secrets.Equal helper built
// on them.
package secretcompare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"repro/internal/analysis"
)

// Analyzer is the constant-time credential comparison checker.
var Analyzer = &analysis.Analyzer{
	Name: "secretcompare",
	Doc: "flag ==/!= on app secrets, appsecret_proofs, and token pairs; " +
		"use crypto/subtle.ConstantTimeCompare (repro/internal/secrets.Equal)",
	Run: run,
}

// secretWords are name segments that mark a value as a credential
// whenever they terminate the name (app.Secret, clientSecret, proof).
var secretWords = map[string]bool{
	"secret": true, "proof": true, "password": true, "passwd": true, "apikey": true,
}

// tokenWords mark bearer-token values; a comparison is only flagged when
// BOTH operands look like tokens (token == "" and id == token-shaped
// identity checks stay legal via the constant-operand rule).
var tokenWords = map[string]bool{
	"token": true, "accesstoken": true, "tok": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue // tests compare tokens for identity, not authentication
		}
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			x, y := ast.Unparen(cmp.X), ast.Unparen(cmp.Y)
			if !isString(pass.TypesInfo, x) || !isString(pass.TypesInfo, y) {
				return true
			}
			// Comparisons against constants (including "") cannot be
			// used as a remote timing oracle against a stored secret.
			if isConst(pass.TypesInfo, x) || isConst(pass.TypesInfo, y) {
				return true
			}
			nx, ny := nameOf(pass.TypesInfo, x), nameOf(pass.TypesInfo, y)
			switch {
			case endsWith(nx, secretWords) || endsWith(ny, secretWords):
				pass.Reportf(cmp.Pos(),
					"timing-unsafe comparison of secret %q; use crypto/subtle.ConstantTimeCompare (secrets.Equal)",
					pick(nx, ny, secretWords))
			case endsWith(nx, tokenWords) && endsWith(ny, tokenWords):
				pass.Reportf(cmp.Pos(),
					"timing-unsafe comparison of tokens %q and %q; use crypto/subtle.ConstantTimeCompare (secrets.Equal)",
					nx, ny)
			}
			return true
		})
	}
	return nil
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}

// nameOf extracts the human name of an operand: the identifier, the
// selected field, or the called function.
func nameOf(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		if fn := analysis.CalleeFunc(info, e); fn != nil {
			return fn.Name()
		}
	case *ast.IndexExpr:
		return nameOf(info, e.X)
	}
	return ""
}

// endsWith reports whether the final camelCase/snake_case segment of
// name is in words ("clientSecret" → "secret", "appsecret_proof" →
// "proof"); whole-name matches ("tok") count too.
func endsWith(name string, words map[string]bool) bool {
	if name == "" {
		return false
	}
	segs := segments(name)
	if len(segs) == 0 {
		return false
	}
	last := segs[len(segs)-1]
	if words[last] {
		return true
	}
	// Collapse trailing pairs so "access_token"→"accesstoken" and
	// "AppSecret"→... also match compound entries.
	if len(segs) >= 2 && words[segs[len(segs)-2]+last] {
		return true
	}
	return false
}

// segments splits an identifier on underscores and camelCase
// boundaries, lowercased.
func segments(name string) []string {
	var segs []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			segs = append(segs, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	var prev rune
	for _, r := range name {
		switch {
		case r == '_':
			flush()
		case unicode.IsUpper(r) && prev != 0 && !unicode.IsUpper(prev):
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
		prev = r
	}
	flush()
	return segs
}

func pick(nx, ny string, words map[string]bool) string {
	if endsWith(nx, words) {
		return nx
	}
	return ny
}
