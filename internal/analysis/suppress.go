package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppressions indexes the //collusionvet:allow and //collusionvet:skip
// comments of a package so drivers can filter diagnostics uniformly.
//
//	x := risky() //collusionvet:allow tokenflow -- demo of the leak
//
// suppresses tokenflow findings on that line (or, when the comment
// stands on its own line, on the line below it). A file containing
//
//	//collusionvet:skip lockorder -- reason
//
// disables that analyzer for the whole package (vet-style per-package
// opt-out). The name "all" matches every analyzer.
type Suppressions struct {
	fset *token.FileSet
	// allow[file][line] = set of analyzer names allowed on that line.
	allow map[string]map[int]map[string]bool
	// skip = analyzer names disabled for the entire package.
	skip map[string]bool
}

// NewSuppressions scans the comments of files for suppression directives.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{
		fset:  fset,
		allow: make(map[string]map[int]map[string]bool),
		skip:  make(map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.directive(c)
			}
		}
	}
	return s
}

func (s *Suppressions) directive(c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	var names string
	var skip bool
	switch {
	case strings.HasPrefix(text, "//collusionvet:allow"):
		names = text[len("//collusionvet:allow"):]
	case strings.HasPrefix(text, "//collusionvet:skip"):
		names, skip = text[len("//collusionvet:skip"):], true
	default:
		return
	}
	// Strip a trailing "-- reason" clause.
	if i := strings.Index(names, "--"); i >= 0 {
		names = names[:i]
	}
	pos := s.fset.Position(c.Pos())
	for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if name == "" {
			continue
		}
		if skip {
			s.skip[name] = true
			continue
		}
		byLine := s.allow[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			s.allow[pos.Filename] = byLine
		}
		// The directive covers its own line and the next one, so both
		// trailing comments and a comment-on-the-line-above work.
		for _, line := range []int{pos.Line, pos.Line + 1} {
			set := byLine[line]
			if set == nil {
				set = make(map[string]bool)
				byLine[line] = set
			}
			set[name] = true
		}
	}
}

// PackageSkipped reports whether the analyzer is disabled for the whole
// package via //collusionvet:skip.
func (s *Suppressions) PackageSkipped(name string) bool {
	return s.skip[name] || s.skip["all"]
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by an allow directive.
func (s *Suppressions) Suppressed(name string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	set := s.allow[p.Filename][p.Line]
	return set[name] || set["all"]
}
