package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppressions indexes the //collusionvet:allow and //collusionvet:skip
// comments of a package so drivers can filter diagnostics uniformly.
//
//	x := risky() //collusionvet:allow tokenflow -- demo of the leak
//
// suppresses tokenflow findings on that line (or, when the comment
// stands on its own line, on the line below it). A file containing
//
//	//collusionvet:skip lockorder -- reason
//
// disables that analyzer for the whole package (vet-style per-package
// opt-out). The name "all" matches every analyzer.
//
// Each allow directive also records whether it ever matched a
// diagnostic: a suppression that suppresses nothing is dead weight that
// hides future regressions (the finding it once covered was fixed, or
// cross-package facts made the analyzer smarter), so the unitchecker
// driver reports unused allows as errors via UnusedAllows.
type Suppressions struct {
	fset *token.FileSet
	// allow[file][line][analyzer] points at the governing directive, so
	// a hit marks it used.
	allow map[string]map[int]map[string]*AllowDirective
	// skip = analyzer names disabled for the entire package.
	skip map[string]bool

	directives []*AllowDirective
}

// AllowDirective is one //collusionvet:allow comment, tracked for the
// unused-suppression check. Pos is the comment's own position; Name is
// one analyzer name it lists ("all" for every analyzer) — a comment
// listing several analyzers yields one directive per name.
type AllowDirective struct {
	Pos  token.Pos
	Name string
	used bool
}

// NewSuppressions scans the comments of files for suppression directives.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{
		fset:  fset,
		allow: make(map[string]map[int]map[string]*AllowDirective),
		skip:  make(map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.directive(c)
			}
		}
	}
	return s
}

func (s *Suppressions) directive(c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	var names string
	var skip bool
	switch {
	case strings.HasPrefix(text, "//collusionvet:allow"):
		names = text[len("//collusionvet:allow"):]
	case strings.HasPrefix(text, "//collusionvet:skip"):
		names, skip = text[len("//collusionvet:skip"):], true
	default:
		return
	}
	// Strip a trailing "-- reason" clause.
	if i := strings.Index(names, "--"); i >= 0 {
		names = names[:i]
	}
	pos := s.fset.Position(c.Pos())
	for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if name == "" {
			continue
		}
		if skip {
			s.skip[name] = true
			continue
		}
		d := &AllowDirective{Pos: c.Pos(), Name: name}
		s.directives = append(s.directives, d)
		byLine := s.allow[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]*AllowDirective)
			s.allow[pos.Filename] = byLine
		}
		// The directive covers its own line and the next one, so both
		// trailing comments and a comment-on-the-line-above work.
		for _, line := range []int{pos.Line, pos.Line + 1} {
			set := byLine[line]
			if set == nil {
				set = make(map[string]*AllowDirective)
				byLine[line] = set
			}
			set[name] = d
		}
	}
}

// PackageSkipped reports whether the analyzer is disabled for the whole
// package via //collusionvet:skip.
func (s *Suppressions) PackageSkipped(name string) bool {
	return s.skip[name] || s.skip["all"]
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by an allow directive, and marks the directive used.
func (s *Suppressions) Suppressed(name string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	set := s.allow[p.Filename][p.Line]
	for _, key := range []string{name, "all"} {
		if d := set[key]; d != nil {
			d.used = true
			return true
		}
	}
	return false
}

// UnusedAllows returns, in position order, every allow directive that
// suppressed nothing during this run and whose analyzer actually ran
// (ran["tokenflow"] etc.; a directive for a disabled analyzer is not
// judged — nothing could have hit it). "all" directives are judged when
// any analyzer ran.
func (s *Suppressions) UnusedAllows(ran map[string]bool) []*AllowDirective {
	anyRan := false
	for _, on := range ran {
		anyRan = anyRan || on
	}
	var out []*AllowDirective
	for _, d := range s.directives {
		if d.used {
			continue
		}
		if d.Name == "all" {
			if !anyRan {
				continue
			}
		} else if !ran[d.Name] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
