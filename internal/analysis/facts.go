package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a serializable unit of analyzer knowledge attached to a
// package-level object (function, method, struct field, or variable),
// mirroring golang.org/x/tools/go/analysis.Fact. Facts exported while
// analyzing a package are written into its .vetx file by the
// unitchecker driver and become visible — via ImportObjectFact — to
// every later analysis of a package that imports it. That is how
// credential taint (tokenflow) and lock-acquisition summaries
// (lockorder) survive package boundaries without annotations.
//
// Concrete fact types must be pointers to structs with exported fields,
// registered once via RegisterFact (package init of the defining
// analyzer), because they cross the wire gob-encoded inside an
// interface.
type Fact interface {
	AFact() // dummy marker method
}

// registeredFacts records every concrete fact type for gob decoding and
// for the version hash: any change to the set of fact kinds or their
// field layout changes FactsVersion, so stale .vetx files written by an
// older driver are rejected rather than misdecoded.
var registeredFacts []reflect.Type

// RegisterFact makes a concrete fact type known to the codec. The
// argument must be a pointer to a struct.
func RegisterFact(f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("analysis: RegisterFact(%T): fact must be a pointer to a struct", f))
	}
	gob.Register(f)
	registeredFacts = append(registeredFacts, t)
}

// factsFormat is bumped on any incompatible change to the wire layout
// itself (as opposed to the fact schema, which FactsVersion hashes).
const factsFormat = "collusionvet-facts/v1"

// FactsVersion returns the driver-version hash stamped into every
// encoded fact set: a digest of the wire format tag and the full schema
// (name and fields) of every registered fact type, in sorted order so
// registration order does not matter. Decode rejects any file whose
// version differs.
func FactsVersion() string {
	sigs := make([]string, 0, len(registeredFacts))
	for _, t := range registeredFacts {
		e := t.Elem()
		var b strings.Builder
		fmt.Fprintf(&b, "%s.%s", e.PkgPath(), e.Name())
		for i := 0; i < e.NumField(); i++ {
			f := e.Field(i)
			fmt.Fprintf(&b, ";%s %s", f.Name, f.Type.String())
		}
		sigs = append(sigs, b.String())
	}
	sort.Strings(sigs)
	h := sha256.New()
	io.WriteString(h, factsFormat+"\n")
	for _, s := range sigs {
		io.WriteString(h, s+"\n")
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// factKey identifies one stored fact: facts are scoped per analyzer, so
// tokenflow and lockorder never observe each other's, and per concrete
// type, so one object can carry several fact kinds.
type factKey struct {
	analyzer string
	pkg      string // import path of the object's package
	obj      string // object path within the package (see objectPath)
	typ      reflect.Type
}

// FactSet holds the facts visible to one package analysis: everything
// decoded from the .vetx files of its dependencies plus everything the
// current run exports. Encode re-serializes the whole set, so facts
// propagate transitively even when a driver only hands direct
// dependencies' files to the next run.
type FactSet struct {
	facts map[factKey]Fact
	// fieldPaths caches, per defining package, the "Type.Field" path of
	// every struct field reachable from the package scope; struct field
	// objects do not record their owner, so the owner is recovered by
	// scanning the scope once.
	fieldPaths map[*types.Package]map[types.Object]string
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		facts:      make(map[factKey]Fact),
		fieldPaths: make(map[*types.Package]map[types.Object]string),
	}
}

// objectPath returns the stable intra-package path of obj — the key
// both the exporting (source-typechecked) and importing (export-data)
// sides agree on:
//
//	Func                    →  Name
//	(T) Method / (*T) Method →  T.Method
//	struct field            →  T.Field
//	package-level var       →  Name
//
// ok is false for objects facts cannot attach to (locals, imports,
// objects without a package).
func (s *FactSet) objectPath(obj types.Object) (pkg, path string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	switch obj := obj.(type) {
	case *types.Func:
		sig, _ := obj.Type().(*types.Signature)
		if sig == nil {
			return "", "", false
		}
		if recv := sig.Recv(); recv != nil {
			named := namedOf(recv.Type())
			if named == nil {
				return "", "", false // interface or weird receiver
			}
			return obj.Pkg().Path(), named.Obj().Name() + "." + obj.Name(), true
		}
		return obj.Pkg().Path(), obj.Name(), true
	case *types.Var:
		if obj.IsField() {
			paths := s.fieldPaths[obj.Pkg()]
			if paths == nil {
				paths = fieldPathsOf(obj.Pkg())
				s.fieldPaths[obj.Pkg()] = paths
			}
			p, ok := paths[obj]
			return obj.Pkg().Path(), p, ok
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path(), obj.Name(), true
		}
	}
	return "", "", false
}

// fieldPathsOf scans a package scope for named struct types and maps
// each field object to its "Type.Field" path. Scope names are sorted,
// so a field reachable under two aliases resolves deterministically.
func fieldPathsOf(pkg *types.Package) map[types.Object]string {
	m := make(map[types.Object]string)
	scope := pkg.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if _, dup := m[f]; !dup {
				m[f] = name + "." + f.Name()
			}
		}
	}
	return m
}

// namedOf strips pointers and returns the named type beneath t, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// export stores fact for obj under the analyzer's namespace,
// overwriting any previous fact of the same concrete type.
func (s *FactSet) export(analyzer string, obj types.Object, fact Fact) {
	pkg, path, ok := s.objectPath(obj)
	if !ok {
		return
	}
	s.facts[factKey{analyzer, pkg, path, reflect.TypeOf(fact)}] = fact
}

// lookup copies the stored fact matching (analyzer, obj, type of ptr)
// into ptr and reports whether one existed.
func (s *FactSet) lookup(analyzer string, obj types.Object, ptr Fact) bool {
	pkg, path, ok := s.objectPath(obj)
	if !ok {
		return false
	}
	got, ok := s.facts[factKey{analyzer, pkg, path, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// Merge adds every fact of other into s (other wins on conflict).
func (s *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for k, f := range other.facts {
		s.facts[k] = f
	}
}

// Len reports the number of stored facts.
func (s *FactSet) Len() int { return len(s.facts) }

// wireFact is the serialized form of one fact. Field names are the wire
// format; do not rename.
type wireFact struct {
	Analyzer string
	PkgPath  string
	ObjPath  string
	Fact     Fact
}

// wireFile is the content of a .vetx facts file.
type wireFile struct {
	Version string
	Facts   []wireFact
}

// sortedWire returns the set's facts in the canonical order: by package
// path, object path, analyzer, then concrete type name. Encoding in
// this order makes the gob byte stream a pure function of the set —
// map iteration order never leaks into the file, so repeated runs over
// an unchanged package produce byte-identical .vetx outputs and the
// build cache stays warm.
func (s *FactSet) sortedWire() []wireFact {
	out := make([]wireFact, 0, len(s.facts))
	for k, f := range s.facts {
		out = append(out, wireFact{k.analyzer, k.pkg, k.obj, f})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.ObjPath != b.ObjPath {
			return a.ObjPath < b.ObjPath
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	return out
}

// Encode serializes the fact set. The output embeds FactsVersion; a
// decoder built from a different fact schema rejects it.
func (s *FactSet) Encode(w io.Writer) error {
	return encodeFacts(w, FactsVersion(), s.sortedWire())
}

func encodeFacts(w io.Writer, version string, facts []wireFact) error {
	return gob.NewEncoder(w).Encode(wireFile{Version: version, Facts: facts})
}

// DecodeFacts reads a fact set written by Encode. Empty input yields an
// empty set (the driver seeds dependency outputs with empty files
// before analysis). A version mismatch — a .vetx written by a driver
// with a different fact schema — is an error; callers treat such files
// as absent rather than trusting stale facts.
func DecodeFacts(r io.Reader) (*FactSet, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := NewFactSet()
	if len(data) == 0 {
		return s, nil
	}
	var file wireFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&file); err != nil {
		return nil, fmt.Errorf("corrupt facts file: %v", err)
	}
	if file.Version != FactsVersion() {
		return nil, fmt.Errorf("stale facts file: version %q, driver wants %q", file.Version, FactsVersion())
	}
	for _, wf := range file.Facts {
		if wf.Fact == nil {
			continue
		}
		s.facts[factKey{wf.Analyzer, wf.PkgPath, wf.ObjPath, reflect.TypeOf(wf.Fact)}] = wf.Fact
	}
	return s, nil
}

// Dump renders the facts attached to objects of pkgPath (all packages
// when pkgPath is empty) as sorted, stable lines — the payload of the
// `collusionvet -facts` debug mode and its golden test.
func (s *FactSet) Dump(pkgPath string) []string {
	var lines []string
	for _, wf := range s.sortedWire() {
		if pkgPath != "" && wf.PkgPath != pkgPath {
			continue
		}
		t := reflect.TypeOf(wf.Fact).Elem()
		lines = append(lines, fmt.Sprintf("%s.%s\t%s\t%s%+v",
			wf.PkgPath, wf.ObjPath, wf.Analyzer, t.Name(),
			reflect.ValueOf(wf.Fact).Elem().Interface()))
	}
	return lines
}
