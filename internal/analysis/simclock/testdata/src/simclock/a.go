// Package simclock is golden testdata for the determinism checker: the
// package path is not on the exempt list, so it counts as simulation
// code.
package simclock

import "time"

// Clock is the injected-clock shape (mirrors repro/internal/simclock).
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

var epoch = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)

// Ambient-clock reads and waits are forbidden.
func bad() time.Duration {
	time.Sleep(time.Millisecond) // want `time\.Sleep in simulation package`
	start := time.Now()          // want `time\.Now in simulation package`
	<-time.After(time.Second)    // want `time\.After in simulation package`
	return time.Since(start)     // want `time\.Since in simulation package`
}

// Injected clocks and pure time functions are fine.
func good(c Clock) time.Time {
	c.Sleep(5 * time.Millisecond) // clean: injected clock
	d := 90 * time.Minute         // clean: duration math
	t, _ := time.Parse("2006-01-02", "2017-06-01")
	if t.After(epoch) { // clean: time.Time.After method, not time.After
		t = t.Add(d)
	}
	return c.Now() // clean: injected clock
}

// Inline suppression for a sanctioned real-time read.
func wallClock() time.Time {
	return time.Now() //collusionvet:allow simclock -- process-startup anchor
}
