// Test files are exempt: harnesses may use real deadlines. No want
// expectations here even though the calls would otherwise be flagged.
package simclock

import "time"

func testOnlyHelper() time.Time {
	time.Sleep(time.Microsecond)
	return time.Now()
}
