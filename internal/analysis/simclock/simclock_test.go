package simclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simclock"
)

func TestSimclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), simclock.Analyzer, "simclock")
}
