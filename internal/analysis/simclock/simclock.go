// Package simclock implements the collusionvet analyzer that keeps
// simulation code off the ambient wall clock. Every Figure-5-style
// timeline in this repo is reproducible only because simulated time is
// injected (repro/internal/simclock.Clock); a single stray time.Now()
// in a simulation package silently decouples an experiment from its
// seed. The analyzer forbids the ambient-clock entry points of package
// time everywhere except:
//
//   - repro/internal/simclock itself (simclock.Real is the one sanctioned
//     call site),
//   - main wiring under cmd/ and examples/ (process entry points may
//     anchor a simulation to the real clock),
//   - the analysis tooling itself.
//
// Pure functions of package time (Date, Parse, Unix, Duration math) are
// fine — only the functions that read or wait on the process clock are
// flagged.
package simclock

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the simclock determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc: "forbid ambient-clock calls (time.Now, time.Sleep, ...) in simulation packages; " +
		"inject repro/internal/simclock.Clock instead",
	Run: run,
}

// banned is the set of package-time functions that read or block on the
// process clock.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// exemptPath reports whether a package is allowed to touch the real
// clock. Everything else — including analyzer testdata packages — is in
// scope, which is what lets the analysistest suite exercise the check.
func exemptPath(path string) bool {
	return path == "repro/internal/simclock" ||
		strings.HasPrefix(path, "repro/internal/analysis") ||
		strings.HasPrefix(path, "repro/cmd/") ||
		strings.HasPrefix(path, "repro/examples/")
}

func run(pass *analysis.Pass) error {
	if exemptPath(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue // test harnesses may use real deadlines
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !banned[fn.Name()] {
				return true
			}
			// Methods on time.Timer etc. have non-nil receivers; the
			// banned set only names package-level functions.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in simulation package %s breaks determinism; inject simclock.Clock",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
