// Package unitchecker makes a multichecker binary out of collusionvet
// analyzers, speaking the `go vet -vettool` protocol with nothing but
// the standard library (a hermetic stand-in for
// golang.org/x/tools/go/analysis/unitchecker).
//
// The protocol, as driven by cmd/go:
//
//	tool -V=full        → one line "<name> version devel ... buildID=<hash>"
//	                      (hashed by cmd/go for its action cache)
//	tool -flags         → JSON array of the tool's flags
//	tool [flags] x.cfg  → analyze one package described by the JSON
//	                      config; diagnostics to stderr, exit 2 if any;
//	                      the gob-encoded fact set (this package's plus
//	                      its dependencies', see analysis.FactSet) is
//	                      written to VetxOutput, and the facts of each
//	                      dependency are read back via PackageVetx —
//	                      that is how tokenflow/lockorder knowledge
//	                      crosses package boundaries
//
// Typechecking uses the export data cmd/go already built: the config's
// PackageFile map points at compiled export files, read through
// go/importer's gc mode with a custom lookup. No source re-typechecking
// of dependencies happens, so a whole-module run costs little more than
// the build itself.
//
// Convenience mode: when invoked with package patterns instead of a
// .cfg file (collusionvet ./...), the binary re-executes itself under
// `go vet -vettool=<self>`, so one command works both locally and in CI.
// The -json flag switches diagnostic output to the x/tools JSON shape,
// keyed by package ID then analyzer name.
package unitchecker

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors cmd/go's vetConfig (src/cmd/go/internal/work/exec.go);
// field names are the wire format and must not change.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// A JSONDiagnostic is the x/tools-compatible JSON form of one finding.
type JSONDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// Main is the entry point for a multichecker binary. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) > 1 && os.Args[1] == "-V=full" {
		// cmd/go hashes this line into its action cache; tie it to the
		// binary's content so edits to the checkers invalidate cached
		// clean results.
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, selfHash())
		os.Exit(0)
	}
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		printFlags(analyzers)
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit JSON diagnostics to stdout")
	factsFlag := fs.Bool("facts", false, "dump the decoded fact set of the named packages and exit (debug)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+firstLine(a.Doc)+")")
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] ./packages...   (standalone; shells out to go vet)\n", progname)
		fmt.Fprintf(os.Stderr, "       %s [flags] file.cfg        (as go vet -vettool)\n", progname)
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:])
	args := fs.Args()

	if *factsFlag {
		runFactsDump(args, analyzers, enabled)
		return // unreachable; runFactsDump exits
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetCfg(args[0], analyzers, enabled, *jsonFlag)
		return // unreachable; runVetCfg exits
	}
	runStandalone(args, analyzers, enabled, *jsonFlag)
}

// runStandalone re-executes under `go vet -vettool=<self>` so package
// loading, build caching, and test-variant expansion all match the
// toolchain exactly.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, enabled map[string]*bool, jsonOut bool) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "collusionvet: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmdArgs := []string{"vet", "-vettool=" + self}
	if jsonOut {
		cmdArgs = append(cmdArgs, "-json")
	}
	for _, a := range analyzers {
		if !*enabled[a.Name] {
			cmdArgs = append(cmdArgs, "-"+a.Name+"=false")
		}
	}
	cmdArgs = append(cmdArgs, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "collusionvet: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runVetCfg analyzes the single package described by cfgFile.
func runVetCfg(cfgFile string, analyzers []*analysis.Analyzer, enabled map[string]*bool, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgFile, err)
	}

	// Seed the output with a valid empty facts file immediately: cmd/go
	// expects one regardless of findings, the SucceedOnTypecheckFailure
	// exits below must still satisfy it, and DecodeFacts reads an empty
	// file as an empty set. Real facts overwrite it after analysis.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	// Dependency units outside the module (the standard library) keep
	// the fast path: no analysis, empty facts. tokenflow/lockorder model
	// fmt, log, net/url and sync directly, and computing taint summaries
	// for all of std would both cost a full-stdlib source typecheck and
	// risk heuristic facts on stdlib internals.
	if cfg.VetxOnly && (cfg.ModulePath == "" || cfg.Standard[cfg.ImportPath]) {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	info := analysis.NewInfo()
	tconf := types.Config{
		Importer:  cfgImporter(fset, &cfg),
		GoVersion: normalizeGoVersion(cfg.GoVersion),
		Error:     func(error) {}, // keep going; first error returned by Check
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	// Facts of every dependency, decoded from the .vetx files cmd/go
	// recorded in PackageVetx. A version mismatch means a dependency was
	// vetted by a driver with a different fact schema; refuse rather
	// than analyze with silently-missing knowledge.
	facts := analysis.NewFactSet()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		depPaths = append(depPaths, path)
	}
	sort.Strings(depPaths)
	for _, path := range depPaths {
		f, err := os.Open(cfg.PackageVetx[path])
		if err != nil {
			fatalf("opening facts of %q: %v", path, err)
		}
		dep, err := analysis.DecodeFacts(f)
		f.Close()
		if err != nil {
			fatalf("facts of %q: %v", path, err)
		}
		facts.Merge(dep)
	}

	supp := analysis.NewSuppressions(fset, files)
	byAnalyzer := make(map[string][]analysis.Diagnostic)
	ran := make(map[string]bool)
	total := 0
	for _, a := range analyzers {
		if !*enabled[a.Name] || supp.PackageSkipped(a.Name) {
			continue
		}
		ran[a.Name] = true
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			Facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			fatalf("analyzer %s: %v", a.Name, err)
		}
		for _, d := range diags {
			if supp.Suppressed(a.Name, d.Pos) {
				continue
			}
			byAnalyzer[a.Name] = append(byAnalyzer[a.Name], d)
			total++
		}
	}

	// The output now carries the merged set — this package's facts plus
	// its dependencies' — so facts propagate transitively even to units
	// that only list direct dependencies in PackageVetx. The canonical
	// encoding makes repeated runs byte-identical (CI asserts this).
	if cfg.VetxOutput != "" {
		var buf bytes.Buffer
		if err := facts.Encode(&buf); err != nil {
			fatalf("encoding facts: %v", err)
		}
		if err := os.WriteFile(cfg.VetxOutput, buf.Bytes(), 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0) // dependency run: facts only, no diagnostics wanted
	}

	// A suppression that suppressed nothing is dead weight hiding future
	// regressions; report it like any other finding so CI fails on it.
	for _, d := range supp.UnusedAllows(ran) {
		byAnalyzer["suppress"] = append(byAnalyzer["suppress"], analysis.Diagnostic{
			Pos: d.Pos,
			Message: fmt.Sprintf("unused //collusionvet:allow %s: nothing was suppressed here; remove the directive",
				d.Name),
		})
		total++
	}

	if jsonOut {
		out := map[string]map[string][]JSONDiagnostic{cfg.ID: {}}
		for name, diags := range byAnalyzer {
			jd := make([]JSONDiagnostic, len(diags))
			for i, d := range diags {
				jd[i] = JSONDiagnostic{Posn: fset.Position(d.Pos).String(), Message: d.Message}
			}
			out[cfg.ID][name] = jd
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		_ = enc.Encode(out)
		os.Exit(0)
	}

	if total > 0 {
		// Deterministic order: by position, then analyzer.
		type flat struct {
			name string
			d    analysis.Diagnostic
		}
		var all []flat
		for name, diags := range byAnalyzer {
			for _, d := range diags {
				all = append(all, flat{name, d})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d.Pos != all[j].d.Pos {
				return all[i].d.Pos < all[j].d.Pos
			}
			return all[i].name < all[j].name
		})
		for _, f := range all {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(f.d.Pos), f.d.Message, f.name)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// cfgImporter resolves imports through the export data cmd/go compiled
// for the build, honoring the vendor/ImportMap indirection.
func cfgImporter(fset *token.FileSet, cfg *Config) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in vet config PackageFile)", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gc := importer.ForCompiler(fset, compiler, lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printFlags answers the cmd/go `-flags` query.
func printFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON diagnostics"}}
	for _, a := range analyzers {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
}

// selfHash content-hashes the running binary for -V=full.
func selfHash() []byte {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)[:16]
}

// normalizeGoVersion maps cmd/go's GoVersion field ("1.22", "go1.22.3",
// "") onto the "go1.N" language-version shape go/types accepts.
func normalizeGoVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	// Trim a patch component: go1.22.3 → go1.22.
	parts := strings.SplitN(strings.TrimPrefix(v, "go"), ".", 3)
	if len(parts) >= 2 {
		return "go" + parts[0] + "." + parts[1]
	}
	return v
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "collusionvet: "+format+"\n", args...)
	os.Exit(1)
}
