package unitchecker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// listPkg is the subset of `go list -json` output the facts dump uses.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// runFactsDump implements `collusionvet -facts ./pkg/...`: it analyzes
// the named packages and their module-local dependencies in dependency
// order — the same per-package analysis the vet driver performs, facts
// threaded through one accumulating set instead of .vetx files — and
// prints the decoded facts attached to the named packages' objects, one
// sorted line per fact. This is the debug view of what a package's
// .vetx contributes to its importers.
func runFactsDump(patterns []string, analyzers []*analysis.Analyzer, enabled map[string]*bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets := goListPackages(append([]string{"list", "-json=ImportPath", "--"}, patterns...))
	// -export builds and reports export data for every dependency, which
	// the gc importer below reads in place of source re-typechecking.
	closure := goListPackages(append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard", "--"}, patterns...))

	fset := token.NewFileSet()
	facts := analysis.NewFactSet()
	packageFile := make(map[string]string)
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})

	// go list -deps emits dependencies before dependents, so by the time
	// a package is analyzed its dependencies' facts are in the set.
	for _, p := range closure {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if p.Standard || len(p.GoFiles) == 0 {
			continue // stdlib keeps the no-facts fast path, as in vet mode
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fatalf("%v", err)
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		tconf := types.Config{Importer: imp, Error: func(error) {}}
		pkg, err := tconf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			fatalf("typechecking %s: %v", p.ImportPath, err)
		}
		for _, a := range analyzers {
			if !*enabled[a.Name] {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     files,
				Pkg:       pkg,
				TypesInfo: info,
				Report:    func(analysis.Diagnostic) {}, // facts only
				Facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				fatalf("analyzer %s on %s: %v", a.Name, p.ImportPath, err)
			}
		}
	}

	for _, t := range targets {
		for _, line := range facts.Dump(t.ImportPath) {
			fmt.Println(line)
		}
	}
	os.Exit(0)
}

// goListPackages runs `go <args>` and decodes its JSON package stream.
func goListPackages(args []string) []listPkg {
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fatalf("go %s: %v", args[0], err)
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			fatalf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}
