package analysis

import (
	"bytes"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// testFact is a throwaway fact kind for codec tests. Registering it
// perturbs FactsVersion for this process only, which is exactly the
// versioning contract: the hash follows the registered schema.
type testFact struct {
	Note string
	Idx  []int
}

func (*testFact) AFact() {}

type otherFact struct{ N int }

func (*otherFact) AFact() {}

func init() {
	RegisterFact(&testFact{})
	RegisterFact(&otherFact{})
}

// fakePkg builds a package with a function, a method, a struct field,
// and a package-level var — one object of every fact-attachable shape.
func fakePkg() (pkg *types.Package, fn, method, field, pkgVar types.Object) {
	pkg = types.NewPackage("example.com/credlib", "credlib")

	fnObj := types.NewFunc(token.NoPos, pkg, "Mint",
		types.NewSignatureType(nil, nil, nil, nil, nil, false))
	pkg.Scope().Insert(fnObj)

	fieldVar := types.NewField(token.NoPos, pkg, "Token", types.Typ[types.String], false)
	st := types.NewStruct([]*types.Var{fieldVar}, nil)
	tn := types.NewTypeName(token.NoPos, pkg, "Creds", nil)
	named := types.NewNamed(tn, st, nil)
	pkg.Scope().Insert(tn)

	recv := types.NewVar(token.NoPos, pkg, "c", named)
	methObj := types.NewFunc(token.NoPos, pkg, "Bearer",
		types.NewSignatureType(recv, nil, nil, nil, nil, false))

	v := types.NewVar(token.NoPos, pkg, "DefaultToken", types.Typ[types.String])
	pkg.Scope().Insert(v)

	return pkg, fnObj, methObj, fieldVar, v
}

func TestFactsRoundtrip(t *testing.T) {
	_, fn, method, field, pkgVar := fakePkg()

	s := NewFactSet()
	s.export("tokenflow", fn, &testFact{Note: "returns", Idx: []int{0}})
	s.export("tokenflow", method, &testFact{Note: "recv"})
	s.export("tokenflow", field, &testFact{Note: "field"})
	s.export("lockorder", fn, &otherFact{N: 7})
	s.export("tokenflow", pkgVar, &testFact{Note: "var"})

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeFacts(&buf)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("decoded %d facts, want %d", got.Len(), s.Len())
	}

	var tf testFact
	if !got.lookup("tokenflow", fn, &tf) || tf.Note != "returns" || len(tf.Idx) != 1 || tf.Idx[0] != 0 {
		t.Errorf("func fact after roundtrip = %+v, lookup ok=%v", tf, got.lookup("tokenflow", fn, &tf))
	}
	if !got.lookup("tokenflow", method, &tf) || tf.Note != "recv" {
		t.Errorf("method fact missing after roundtrip")
	}
	if !got.lookup("tokenflow", field, &tf) || tf.Note != "field" {
		t.Errorf("field fact missing after roundtrip")
	}
	if !got.lookup("tokenflow", pkgVar, &tf) || tf.Note != "var" {
		t.Errorf("package-var fact missing after roundtrip")
	}
	var of otherFact
	if !got.lookup("lockorder", fn, &of) || of.N != 7 {
		t.Errorf("lockorder fact = %+v", of)
	}
	// Analyzer scoping: tokenflow's facts are invisible to lockorder.
	if got.lookup("lockorder", method, &tf) {
		t.Errorf("fact leaked across analyzer namespaces")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	_, fn, method, field, _ := fakePkg()

	encode := func(objs ...types.Object) []byte {
		s := NewFactSet()
		for _, o := range objs {
			s.export("tokenflow", o, &testFact{Note: "n"})
			s.export("lockorder", o, &otherFact{N: 1})
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return buf.Bytes()
	}
	a := encode(fn, method, field)
	b := encode(field, fn, method)
	if !bytes.Equal(a, b) {
		t.Fatalf("gob encoding depends on insertion order:\n%x\n%x", a, b)
	}
}

func TestStaleFactsRejected(t *testing.T) {
	_, fn, _, _, _ := fakePkg()
	s := NewFactSet()
	s.export("tokenflow", fn, &testFact{Note: "x"})

	var buf bytes.Buffer
	if err := encodeFacts(&buf, "deadbeef00000000", s.sortedWire()); err != nil {
		t.Fatalf("encodeFacts: %v", err)
	}
	if _, err := DecodeFacts(&buf); err == nil || !strings.Contains(err.Error(), "stale facts") {
		t.Fatalf("DecodeFacts accepted stale version, err=%v", err)
	}
}

func TestDecodeEmptyAndCorrupt(t *testing.T) {
	s, err := DecodeFacts(bytes.NewReader(nil))
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty input: set=%v err=%v", s, err)
	}
	if _, err := DecodeFacts(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatalf("corrupt input accepted")
	}
}

func TestFactsVersionFollowsSchema(t *testing.T) {
	v1 := FactsVersion()
	if v1 != FactsVersion() {
		t.Fatalf("FactsVersion not stable within a process")
	}
	type lateFact struct{ X string }
	// Local fact type that satisfies Fact via an embedded marker is not
	// possible without a method; simulate schema growth directly.
	registeredFactsBefore := len(registeredFacts)
	RegisterFact(&struct {
		testFact
		Late lateFact
	}{})
	defer func() { registeredFacts = registeredFacts[:registeredFactsBefore] }()
	if FactsVersion() == v1 {
		t.Fatalf("FactsVersion unchanged after schema change")
	}
}

func TestObjectPathShapes(t *testing.T) {
	pkg, fn, method, field, pkgVar := fakePkg()
	s := NewFactSet()
	cases := []struct {
		obj  types.Object
		path string
	}{
		{fn, "Mint"},
		{method, "Creds.Bearer"},
		{field, "Creds.Token"},
		{pkgVar, "DefaultToken"},
	}
	for _, c := range cases {
		gotPkg, gotPath, ok := s.objectPath(c.obj)
		if !ok || gotPkg != pkg.Path() || gotPath != c.path {
			t.Errorf("objectPath(%v) = %q %q %v, want %q %q true", c.obj, gotPkg, gotPath, ok, pkg.Path(), c.path)
		}
	}
	// A local variable is not fact-attachable.
	local := types.NewVar(token.NoPos, pkg, "tmp", types.Typ[types.String])
	if _, _, ok := s.objectPath(local); ok {
		t.Errorf("objectPath accepted a local variable")
	}
}
