package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation tags understood by the suite. An annotation is a comment
// line of the form //collusionvet:<tag> in the doc comment of a
// declaration (no space after the slashes, like //go:build).
const (
	// AnnRedacts marks a helper whose result is safe to log even though
	// its inputs are bearer tokens or full URLs (tokenflow).
	AnnRedacts = "collusionvet:redacts"
	// AnnLockOrder marks a low-level helper that is allowed to acquire
	// shard mutexes directly / in loops because it IS the ordered-
	// acquisition primitive (lockorder).
	AnnLockOrder = "collusionvet:lockorder"
	// AnnLocked marks a function whose caller is responsible for holding
	// the relevant shard lock, so direct shard-map access inside it is
	// intentional (lockorder).
	AnnLocked = "collusionvet:locked"
)

// Annotated reports whether the doc comment group carries the given
// //collusionvet:<tag> annotation line.
func Annotated(doc *ast.CommentGroup, tag string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if strings.HasPrefix(text, "//"+tag) {
			rest := text[len("//"+tag):]
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// FuncDecls maps each function object of the package to its syntax,
// letting analyzers consult the doc comment (annotations) of a callee
// declared in the same package.
func FuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m[obj] = fd
			}
		}
	}
	return m
}

// CalleeFunc resolves the called function object of a call expression,
// looking through parentheses. It returns nil for calls of function
// values, builtins, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}
