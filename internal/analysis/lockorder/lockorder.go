// Package lockorder implements the collusionvet analyzer that enforces
// the sharded-store locking discipline introduced in PR 1: the
// socialgraph store is striped across shards, and the single rule that
// keeps it deadlock-free is that every multi-stripe write acquires its
// shard mutexes in ascending shard-index order, via one annotated
// helper (Store.lockOrdered). The analyzer machine-checks that rule for
// any package exhibiting the pattern (a struct holding a slice of
// mutex-guarded shard structs):
//
//   - direct sh.mu.Lock()/RLock() on a shard outside an annotated
//     //collusionvet:lockorder helper is reported — all acquisition must
//     flow through the helpers so ordering and contention accounting
//     can't be bypassed;
//   - acquiring a shard lock while another shard lock may still be held
//     (second acquire before release, or an unbalanced acquire inside a
//     loop) is reported — that is exactly the shape that deadlocks
//     against the ascending-order writers;
//   - indexing a shard's map fields in a function that never acquires a
//     shard lock is reported unless the function is annotated
//     //collusionvet:locked (caller holds the lock).
//
// The analysis is intra-package and linear (statements are scanned in
// source order, branches sequentially), which is precise enough for the
// store's straight-line lock/unlock idiom and errs toward reporting.
package lockorder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the shard lock-ordering checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce ascending-order shard mutex acquisition (lockOrdered) and " +
		"lock-held shard map access in sharded stores",
	Run: run,
}

var (
	acquireNames = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
	releaseNames = map[string]bool{"Unlock": true, "RUnlock": true}
)

type checker struct {
	pass   *analysis.Pass
	shards map[*types.Named]bool // shard-like struct types
	decls  map[*types.Func]*ast.FuncDecl
	// acquirers are package functions that return while holding a shard
	// lock (Store.lock, lockIdx, lockOrdered, ...).
	acquirers map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		shards:    shardTypes(pass),
		decls:     analysis.FuncDecls(pass),
		acquirers: make(map[*types.Func]bool),
	}
	// Even without local shard types the scan runs: calls to imported
	// acquirers (LocksShards facts) still update lock state, so the
	// held-lock discipline is enforced in consumer packages too.

	// Fixed point: a function is an acquirer if it nets >0 lock
	// acquisitions (its own plus calls to other acquirers).
	for range 8 {
		changed := false
		for fn, fd := range c.decls {
			if fd.Body == nil || c.acquirers[fn] {
				continue
			}
			// Net held at return, excluding defer-released locks: a
			// function that defers its unlock does not return holding.
			st := c.scanFunc(fd, false)
			if st.held > 0 {
				c.acquirers[fn] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for fn := range c.acquirers {
		c.pass.ExportObjectFact(fn, &LocksShards{})
	}

	for _, fd := range sortedDecls(pass) {
		if fd.Body == nil {
			continue
		}
		c.scanFunc(fd, true)
	}
	return nil
}

// isAcquirer reports whether calling fn leaves a shard lock held: a
// package-local acquirer found by the fixed point, or an imported
// function carrying a LocksShards fact.
func (c *checker) isAcquirer(fn *types.Func) bool {
	if c.acquirers[fn] {
		return true
	}
	if fn.Pkg() == c.pass.Pkg {
		return false
	}
	var fact LocksShards
	return c.pass.ImportObjectFact(fn, &fact)
}

// state tracks possibly-held shard locks during the linear scan of one
// function body.
type state struct {
	held     int // locks acquired and not yet released
	heldExit int // locks whose release is deferred to function exit
	acquired bool
	// unlockVars holds locals bound to the unlock closure returned by an
	// acquirer (unlock := s.lockOrdered(...)).
	unlockVars map[types.Object]bool
	mapUses    []*ast.SelectorExpr // shard map accesses, judged at end
}

func (c *checker) scanFunc(fd *ast.FuncDecl, report bool) *state {
	st := &state{unlockVars: make(map[types.Object]bool)}
	exemptOrder := analysis.Annotated(fd.Doc, analysis.AnnLockOrder)
	c.scanStmt(fd.Body, st, report && !exemptOrder)
	if report && !exemptOrder && !st.acquired &&
		!analysis.Annotated(fd.Doc, analysis.AnnLocked) {
		for _, sel := range st.mapUses {
			c.pass.Reportf(sel.Pos(),
				"shard map %q accessed without acquiring the shard lock; lock via the store helpers or annotate the function //collusionvet:locked",
				sel.Sel.Name)
		}
	}
	return st
}

// scanStmt walks statements in source order, branches sequentially.
func (c *checker) scanStmt(stmt ast.Stmt, st *state, report bool) {
	switch s := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s2 := range s.List {
			c.scanStmt(s2, st, report)
		}
	case *ast.IfStmt:
		c.scanStmt(s.Init, st, report)
		c.scanExpr(s.Cond, st, report)
		c.scanStmt(s.Body, st, report)
		c.scanStmt(s.Else, st, report)
	case *ast.ForStmt:
		c.scanStmt(s.Init, st, report)
		c.scanExpr(s.Cond, st, report)
		c.scanLoopBody(s.Body, s.Post, st, report)
	case *ast.RangeStmt:
		c.scanExpr(s.X, st, report)
		c.scanLoopBody(s.Body, nil, st, report)
	case *ast.SwitchStmt:
		c.scanStmt(s.Init, st, report)
		c.scanExpr(s.Tag, st, report)
		c.scanStmt(s.Body, st, report)
	case *ast.TypeSwitchStmt:
		c.scanStmt(s.Init, st, report)
		c.scanStmt(s.Assign, st, report)
		c.scanStmt(s.Body, st, report)
	case *ast.SelectStmt:
		c.scanStmt(s.Body, st, report)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.scanExpr(e, st, report)
		}
		for _, s2 := range s.Body {
			c.scanStmt(s2, st, report)
		}
	case *ast.CommClause:
		c.scanStmt(s.Comm, st, report)
		for _, s2 := range s.Body {
			c.scanStmt(s2, st, report)
		}
	case *ast.DeferStmt:
		c.scanDefer(s.Call, st, report)
	case *ast.GoStmt:
		// A goroutine body runs under its own lock discipline.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sub := &state{unlockVars: make(map[types.Object]bool)}
			c.scanStmt(lit.Body, sub, report)
		}
		for _, a := range s.Call.Args {
			c.scanExpr(a, st, report)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.scanExpr(r, st, report)
		}
		for _, l := range s.Lhs {
			c.scanExpr(l, st, report)
		}
		c.bindUnlockVars(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, st, report)
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.scanExpr(s.X, st, report)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, st, report)
		}
	case *ast.SendStmt:
		c.scanExpr(s.Chan, st, report)
		c.scanExpr(s.Value, st, report)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, st, report)
	case *ast.LabeledStmt:
		c.scanStmt(s.Stmt, st, report)
	}
}

// scanLoopBody scans a loop body and reports when an iteration nets a
// lock acquisition — N stripes locked in arbitrary hash order.
func (c *checker) scanLoopBody(body *ast.BlockStmt, post ast.Stmt, st *state, report bool) {
	before := st.held
	c.scanStmt(body, st, report)
	c.scanStmt(post, st, report)
	if st.held > before && report {
		c.pass.Reportf(body.Pos(),
			"shard lock acquired inside a loop without matching release; acquire multiple stripes via the ascending-order helper (lockOrdered)")
		st.held = before // don't cascade into later statements; during
		// classification the inflated count IS the acquirer signal.
	}
}

// scanDefer handles `defer x()`: releases move to function exit.
func (c *checker) scanDefer(call *ast.CallExpr, st *state, report bool) {
	if kind, _ := c.mutexOp(call); kind == opRelease {
		if st.held > 0 {
			st.held--
			st.heldExit++
		}
		return
	}
	if c.unlockCall(call, st) {
		if st.held > 0 {
			st.held--
			st.heldExit++
		}
		return
	}
	// defer func() { sh.mu.Unlock() }() — count the closure's releases
	// as deferred releases.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		rel := 0
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if kind, _ := c.mutexOp(inner); kind == opRelease {
					rel++
				} else if c.unlockCall(inner, st) {
					rel++
				}
			}
			return true
		})
		for ; rel > 0 && st.held > 0; rel-- {
			st.held--
			st.heldExit++
		}
		return
	}
	c.scanExpr(call, st, report)
}

// bindUnlockVars records `unlock := s.lockOrdered(...)` bindings.
func (c *checker) bindUnlockVars(s *ast.AssignStmt, st *state) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, r := range s.Rhs {
		call, ok := ast.Unparen(r).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil || !c.isAcquirer(fn) {
			continue
		}
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if t := c.pass.TypesInfo.Types[r].Type; t != nil {
			if _, isFunc := t.Underlying().(*types.Signature); isFunc {
				if obj := c.objOf(id); obj != nil {
					st.unlockVars[obj] = true
				}
			}
		}
	}
}

// scanExpr walks an expression in preorder, handling lock events.
// Nested function literals are scanned with fresh state.
func (c *checker) scanExpr(e ast.Expr, st *state, report bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sub := &state{unlockVars: make(map[types.Object]bool)}
			c.scanStmt(n.Body, sub, report)
			return false
		case *ast.CallExpr:
			c.callEvent(n, st, report)
			return true
		case *ast.SelectorExpr:
			if c.shardMapField(n) {
				st.mapUses = append(st.mapUses, n)
			}
			return true
		}
		return true
	})
}

type opKind int

const (
	opNone opKind = iota
	opAcquire
	opRelease
)

// callEvent classifies one call and updates the lock state.
func (c *checker) callEvent(call *ast.CallExpr, st *state, report bool) {
	if kind, sel := c.mutexOp(call); kind != opNone {
		switch kind {
		case opAcquire:
			if report {
				c.pass.Reportf(call.Pos(),
					"direct shard mutex %s outside a lock-order helper; use the store's lock/rlock/lockOrdered helpers (or annotate the helper //collusionvet:lockorder)",
					sel.Sel.Name)
			}
			c.acquire(call, st, report)
		case opRelease:
			if st.held > 0 {
				st.held--
			}
		}
		return
	}
	if c.unlockCall(call, st) {
		if st.held > 0 {
			st.held--
		}
		return
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn != nil && c.isAcquirer(fn) {
		c.acquire(call, st, report)
	}
}

func (c *checker) acquire(call *ast.CallExpr, st *state, report bool) {
	if report && st.held+st.heldExit > 0 {
		c.pass.Reportf(call.Pos(),
			"shard lock acquired while another shard lock is held; cross-shard operations must take all stripes via the ascending-order helper (lockOrdered)")
	}
	st.held++
	st.acquired = true
}

// unlockCall reports whether call invokes a stored unlock closure.
func (c *checker) unlockCall(call *ast.CallExpr, st *state) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.objOf(id)
	return obj != nil && st.unlockVars[obj]
}

// mutexOp classifies sh.mu.Lock()-shaped calls where sh is shard-like.
func (c *checker) mutexOp(call *ast.CallExpr) (opKind, *ast.SelectorExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	var kind opKind
	switch {
	case acquireNames[sel.Sel.Name]:
		kind = opAcquire
	case releaseNames[sel.Sel.Name]:
		kind = opRelease
	default:
		return opNone, nil
	}
	// Receiver must be a mutex reached from a shard-like value.
	mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || !isSyncMutex(c.pass.TypesInfo.Types[mu].Type) {
		return opNone, nil
	}
	if !c.shardExpr(mu.X) {
		return opNone, nil
	}
	return kind, sel
}

// shardExpr reports whether e evaluates to a shard-like value, possibly
// via indexing a slice of shards (s.shards[i].mu.Lock()).
func (c *checker) shardExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.Types[ast.Unparen(e)].Type
	return c.isShard(t)
}

func (c *checker) isShard(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && c.shards[n]
}

// shardMapField reports whether sel reads a map-typed field of a
// shard-like struct.
func (c *checker) shardMapField(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	if !c.isShard(s.Recv()) {
		return false
	}
	_, isMap := s.Obj().Type().Underlying().(*types.Map)
	return isMap
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// shardTypes finds the package's shard-like types: structs with a sync
// mutex field and at least one map field, that some other struct in the
// package stripes into a slice ([]shard or []*shard).
func shardTypes(pass *analysis.Pass) map[*types.Named]bool {
	candidates := make(map[*types.Named]bool)
	structs := []*types.Struct{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				structs = append(structs, st)
				hasMutex, hasMap := false, false
				for i := 0; i < st.NumFields(); i++ {
					ft := st.Field(i).Type()
					if isSyncMutex(ft) {
						hasMutex = true
					}
					if _, ok := ft.Underlying().(*types.Map); ok {
						hasMap = true
					}
				}
				if hasMutex && hasMap {
					candidates[named] = true
				}
			}
		}
	}
	striped := make(map[*types.Named]bool)
	for _, st := range structs {
		for i := 0; i < st.NumFields(); i++ {
			sl, ok := st.Field(i).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			elem := sl.Elem()
			if p, ok := elem.(*types.Pointer); ok {
				elem = p.Elem()
			}
			if n, ok := elem.(*types.Named); ok && candidates[n] {
				striped[n] = true
			}
		}
	}
	return striped
}

// sortedDecls returns the package's function declarations in file/
// position order for deterministic diagnostics.
func sortedDecls(pass *analysis.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}
