package lockorder

import "repro/internal/analysis"

// LocksShards marks a function that returns while holding a shard lock
// (Store.Lock-style acquirers whose unlock is the caller's job). The
// fact is exported by the defining package's analysis and consulted at
// call sites in importing packages, so the held-lock discipline — no
// second acquisition while a stripe is held, unlock-closure tracking —
// follows acquirers across package boundaries.
type LocksShards struct{}

// AFact marks LocksShards as a fact.
func (*LocksShards) AFact() {}

func init() {
	analysis.RegisterFact(&LocksShards{})
}
