// Package locklib is the dependency side of the lockorder facts golden:
// a sharded store whose exported acquirer returns holding a stripe
// lock. The LocksShards fact it exports is what lets importing packages
// be checked for held-lock discipline.
package locklib

import "sync"

type shard struct {
	mu sync.Mutex
	m  map[string]int
}

// Store stripes its state across shards.
type Store struct {
	shards []*shard
}

// LockFirst acquires stripe 0 and returns holding it; the caller
// releases via the returned closure.
//
//collusionvet:lockorder
func (s *Store) LockFirst() func() {
	sh := s.shards[0]
	sh.mu.Lock()
	return sh.mu.Unlock
}
