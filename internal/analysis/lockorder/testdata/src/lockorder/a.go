// Package lockorder is golden testdata: a miniature striped store with
// the same locking discipline as repro/internal/socialgraph.
package lockorder

import "sync"

type shard struct {
	mu   sync.RWMutex
	data map[string]int
	// Pooled edge-history state, the chunked-store shape: a map of live
	// history containers plus an intrusive free list of retired ones.
	hist map[string]*history
	free *history
}

// history is a recyclable per-object container (stand-in for the chunked
// edge list the real store pools).
type history struct {
	n    int
	next *history
}

type store struct {
	shards []*shard
}

func (s *store) idx(id string) int { return len(id) % len(s.shards) }

// lockIdx is the sanctioned low-level acquire.
//
//collusionvet:lockorder
func (s *store) lockIdx(i int) *shard {
	sh := s.shards[i]
	sh.mu.Lock() // clean: annotated helper
	return sh
}

// lockOrdered is the sanctioned multi-stripe acquire: ascending index.
//
//collusionvet:lockorder
func (s *store) lockOrdered(a, b string) func() {
	i, j := s.idx(a), s.idx(b)
	if j < i {
		i, j = j, i
	}
	s.lockIdx(i)
	if j != i {
		s.lockIdx(j)
	}
	return func() {
		if j != i {
			s.shards[j].mu.Unlock()
		}
		s.shards[i].mu.Unlock()
	}
}

// Direct mutex acquisition bypasses ordering and contention accounting.
func (s *store) directLock(id string) {
	sh := s.shards[s.idx(id)]
	sh.mu.Lock() // want `direct shard mutex Lock outside a lock-order helper`
	sh.data[id]++
	sh.mu.Unlock()
}

// Acquiring a second stripe while one is held deadlocks against the
// ascending-order writers when the hash order disagrees.
func (s *store) nested(a, b string) int {
	x := s.lockIdx(s.idx(a))
	defer x.mu.Unlock()
	y := s.lockIdx(s.idx(b)) // want `while another shard lock is held`
	n := y.data[b]
	y.mu.Unlock()
	return n + x.data[a]
}

// Locking every stripe in a loop holds N locks in arbitrary order.
func (s *store) lockAll() {
	for i := range s.shards { // want `inside a loop without matching release`
		s.lockIdx(i)
	}
	for i := range s.shards {
		s.shards[len(s.shards)-1-i].mu.Unlock()
	}
}

// Reading a shard map without any lock in scope.
func (s *store) peek(id string) int {
	sh := s.shards[s.idx(id)]
	return sh.data[id] // want `shard map "data" accessed without acquiring the shard lock`
}

// Allowed patterns below: helpers, per-stripe lock scopes, annotations.

func (s *store) get(id string) int {
	sh := s.lockIdx(s.idx(id))
	defer sh.mu.Unlock()
	return sh.data[id] // clean: lock acquired in this function
}

func (s *store) transfer(a, b string) {
	unlock := s.lockOrdered(a, b)
	defer unlock()
	s.shards[s.idx(a)].data[a]--
	s.shards[s.idx(b)].data[b]++
}

// Sequential per-stripe scopes (release before next acquire) are legal.
func (s *store) sweep() int {
	n := 0
	for i := range s.shards {
		sh := s.lockIdx(i)
		n += len(sh.data)
		sh.mu.Unlock()
	}
	return n
}

// peekLocked documents a caller-holds-the-lock contract.
//
//collusionvet:locked
func peekLocked(sh *shard, id string) int {
	return sh.data[id] // clean: annotated
}

// lockOrderedIdx is the sanctioned batch acquire: sort-dedup the index
// set, then lock ascending in one pass. The annotation exempts the
// acquire loop — the sort above it is what makes the loop safe.
//
//collusionvet:lockorder
func (s *store) lockOrderedIdx(idxs []int) func() {
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	n := 0
	for _, v := range idxs {
		if n == 0 || v != idxs[n-1] {
			idxs[n] = v
			n++
		}
	}
	order := idxs[:n]
	for _, i := range order {
		s.lockIdx(i)
	}
	return func() {
		for i := len(order) - 1; i >= 0; i-- {
			s.shards[order[i]].mu.Unlock()
		}
	}
}

// applyBatch is the batch-apply pattern: one lock scope covering the
// object stripe plus every liker stripe, all taken through the
// ascending-order batch helper.
func (s *store) applyBatch(obj string, ids []string) {
	idxs := []int{s.idx(obj)}
	for _, id := range ids {
		idxs = append(idxs, s.idx(id))
	}
	unlock := s.lockOrderedIdx(idxs)
	defer unlock()
	for _, id := range ids {
		s.shards[s.idx(id)].data[id]++
	}
	s.shards[s.idx(obj)].data[obj]++
}

// Taking per-op stripes while the object stripe is held — the batch
// shape lockOrderedIdx exists to prevent.
func (s *store) applyBatchNested(obj string, ids []string) {
	x := s.lockIdx(s.idx(obj))
	defer x.mu.Unlock()
	for _, id := range ids {
		y := s.lockIdx(s.idx(id)) // want `while another shard lock is held`
		y.data[id]++
		y.mu.Unlock()
	}
}

// Chunk free-list helpers: historyFor pops a recycled container off the
// shard free list (or builds one) and installs it in the shard map;
// retireHistory clears one and pushes it back. Both mutate shard state
// under the lock their *caller* holds — the //collusionvet:locked
// annotation records that contract, exactly as the real store's
// likeHistoryFor/retireLikeHistory pair does.
//
//collusionvet:locked
func (s *store) historyFor(sh *shard, id string) *history {
	if h := sh.hist[id]; h != nil { // clean: annotated free-list acquire
		return h
	}
	h := sh.free
	if h != nil {
		sh.free = h.next
		h.next = nil
	} else {
		h = &history{}
	}
	sh.hist[id] = h
	return h
}

//collusionvet:locked
func (s *store) retireHistory(sh *shard, id string) {
	h := sh.hist[id] // clean: annotated free-list retire
	if h == nil {
		return
	}
	delete(sh.hist, id)
	h.n = 0
	h.next = sh.free
	sh.free = h
}

// The same retire logic without the annotation: the analyzer cannot see
// the caller-holds-lock contract, so the shard-map touches report.
func (s *store) retireHistoryBare(sh *shard, id string) {
	h := sh.hist[id] // want `shard map "hist" accessed without acquiring the shard lock`
	if h == nil {
		return
	}
	delete(sh.hist, id) // want `shard map "hist" accessed without acquiring the shard lock`
	h.n = 0
	h.next = sh.free
	sh.free = h
}

// A lock scope that drives the pooled helpers end to end is clean: the
// recycle loop adds no lock traffic of its own.
func (s *store) churn(id string) int {
	sh := s.lockIdx(s.idx(id))
	defer sh.mu.Unlock()
	h := s.historyFor(sh, id)
	h.n++
	if h.n > 8 {
		s.retireHistory(sh, id)
	}
	return h.n
}

// Inline suppression when the caller pre-sorts indices.
func (s *store) presorted(i, j int) {
	x := s.lockIdx(i)
	y := s.lockIdx(j) //collusionvet:allow lockorder -- caller guarantees i < j
	y.mu.Unlock()
	x.mu.Unlock()
}
