// Package lockapp consumes locklib. It defines no shard types of its
// own, so before cross-package facts the analyzer had nothing to check
// here; the imported LocksShards fact on locklib's acquirer is what
// makes the double acquisition visible.
package lockapp

import "locklib"

func double(s *locklib.Store) {
	u1 := s.LockFirst()
	u2 := s.LockFirst() // want `shard lock acquired while another shard lock is held`
	u2()
	u1()
}

func single(s *locklib.Store) {
	u := s.LockFirst()
	defer u()
}
