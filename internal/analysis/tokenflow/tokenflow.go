// Package tokenflow implements the collusionvet analyzer that guards
// the paper's core token-hygiene lesson: bearer access tokens leak
// because they ride in URLs and get echoed into logs and error strings
// (PAPER.md §3 — collusion networks harvest exactly such leaked
// tokens). The analyzer flags token-bearing values flowing into
// formatting/logging sinks:
//
//   - any argument of fmt.Errorf/Sprintf/Printf/..., log.*, or
//     errors.New whose name marks it as a credential (token, secret,
//     appsecret_proof, password, ...);
//   - any url.URL / url.Values argument — a full URL is presumed to
//     carry credentials in its query or fragment (the Figure 3 implicit
//     flow puts access_token in the fragment), as are url.URL.Fragment /
//     RawQuery reads and url.URL.String() results;
//   - values locally derived from the above (one-step assignment taint,
//     string concatenation, Values.Get("access_token") and friends);
//   - span attribute/event setters in internal/obs (Span.SetAttr,
//     Span.Event) — traces are exported over /debug/traces, so they are
//     a diagnostic channel like any log line.
//
// Escape hatch: helpers that mask their input may be annotated
// //collusionvet:redacts (everything in repro/internal/redact is
// trusted implicitly); their call results are clean, and sinks inside
// their bodies are not checked.
package tokenflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the bearer-token leak checker.
var Analyzer = &analysis.Analyzer{
	Name: "tokenflow",
	Doc: "flag bearer tokens and full URLs flowing into fmt/log/error sinks; " +
		"redact via repro/internal/redact or a //collusionvet:redacts helper",
	Run: run,
}

// sinkFuncs are the formatting/printing entry points checked, keyed by
// package path then function/method name (log methods cover *log.Logger
// too, since the method names coincide).
var sinkFuncs = map[string]map[string]bool{
	"fmt": {
		"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true,
		"Printf": true, "Print": true, "Println": true,
		"Fprintf": true, "Fprint": true, "Fprintln": true,
		"Appendf": true, "Append": true, "Appendln": true,
	},
	"log": {
		"Printf": true, "Print": true, "Println": true,
		"Fatalf": true, "Fatal": true, "Fatalln": true,
		"Panicf": true, "Panic": true, "Panicln": true,
		"Output": true,
	},
	"errors": {"New": true},
}

// credWords mark a name's final segment as credential-bearing.
var credWords = map[string]bool{
	"token": true, "accesstoken": true, "tok": true,
	"secret": true, "secrets": true, "proof": true,
	"password": true, "passwd": true, "bearer": true, "apikey": true,
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	tainted map[types.Object]bool // locals assigned from tainted exprs
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		decls:   analysis.FuncDecls(pass),
		tainted: make(map[types.Object]bool),
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue // production-logging invariant; tests format tokens freely
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.Annotated(fd.Doc, analysis.AnnRedacts) {
				continue // the redactor's own formatting is the masking
			}
			c.propagate(fd.Body)
			c.checkSinks(fd.Body)
		}
	}
	return nil
}

// propagate performs one forward pass of assignment-based taint: a local
// variable whose initializer is tainted carries the taint to its uses.
func (c *checker) propagate(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if c.taintedExpr(n.Rhs[i]) {
					if obj := c.objOf(id); obj != nil {
						c.tainted[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) && c.taintedExpr(n.Values[i]) {
					if obj := c.objOf(id); obj != nil {
						c.tainted[obj] = true
					}
				}
			}
		}
		return true
	})
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// checkSinks reports tainted arguments of sink calls.
func (c *checker) checkSinks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names := sinkFuncs[fn.Pkg().Path()]
		if (names == nil || !names[fn.Name()]) && !obsSink(fn) {
			return true
		}
		for _, arg := range call.Args {
			if c.taintedExpr(arg) {
				c.pass.Reportf(call.Pos(),
					"possible bearer-token leak: %s flows into %s.%s; redact first (internal/redact or a //collusionvet:redacts helper)",
					describe(arg), fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// taintedExpr reports whether e may carry a bearer credential.
func (c *checker) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if c.tainted[c.objOf(e)] {
			return true
		}
		if urlValue(c.typeOf(e)) {
			return true
		}
		return credName(e.Name) && stringish(c.typeOf(e))
	case *ast.SelectorExpr:
		if urlValue(c.typeOf(e)) {
			return true
		}
		if credField(c.pass.TypesInfo, e) {
			return true
		}
		return credName(e.Sel.Name) && stringish(c.typeOf(e))
	case *ast.CallExpr:
		return c.taintedCall(e)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return c.taintedExpr(e.X) || c.taintedExpr(e.Y)
		}
	case *ast.IndexExpr:
		if lit := sensitiveLit(e.Index); lit {
			return true // vals["access_token"]
		}
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.taintedExpr(e.X)
		}
	}
	if urlValue(c.typeOf(e)) {
		return true
	}
	return false
}

func (c *checker) taintedCall(call *ast.CallExpr) bool {
	// Conversions like string(tok) keep the taint.
	if len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return c.taintedExpr(call.Args[0])
		}
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if c.redactor(fn) {
		return false
	}
	if urlValue(c.typeOf(call)) {
		return true // e.g. req.URL.Query()
	}
	// url.URL.String() re-serializes whatever the URL carries.
	if fn.Name() == "String" && recvIsURL(fn) {
		return true
	}
	// Values.Get("access_token"), r.FormValue("client_secret"), ...
	switch fn.Name() {
	case "Get", "FormValue", "PostFormValue":
		if len(call.Args) >= 1 && sensitiveLit(call.Args[0]) {
			return true
		}
	}
	// NewSecret(), SecretProof(...), mintToken(...) — result named like
	// a credential and string-shaped.
	if credName(fn.Name()) && stringish(c.typeOf(call)) {
		return true
	}
	return false
}

// obsSink reports whether fn is a span attribute/event setter in an obs
// package. Span data is exported verbatim over /debug/traces and trace
// JSONL dumps, so these are credential sinks exactly like log calls.
func obsSink(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != "obs" && !strings.HasSuffix(p, "/obs") {
		return false
	}
	switch fn.Name() {
	case "SetAttr", "Event":
		return true
	}
	return false
}

// redactor reports whether calls to fn launder taint: anything in a
// .../redact package, or a same-package helper annotated
// //collusionvet:redacts.
func (c *checker) redactor(fn *types.Func) bool {
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if p == "redact" || strings.HasSuffix(p, "/redact") {
			return true
		}
	}
	if fd, ok := c.decls[fn]; ok && analysis.Annotated(fd.Doc, analysis.AnnRedacts) {
		return true
	}
	return false
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	return c.pass.TypesInfo.Types[e].Type
}

// urlValue reports whether t is url.URL, *url.URL, or url.Values.
func urlValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/url" {
		return false
	}
	return obj.Name() == "URL" || obj.Name() == "Values" || obj.Name() == "Userinfo"
}

// credField reports whether sel reads a credential-carrying field of
// url.URL (Fragment, RawQuery, RawFragment).
func credField(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "net/url" || n.Obj().Name() != "URL" {
		return false
	}
	switch sel.Sel.Name {
	case "Fragment", "RawQuery", "RawFragment":
		return true
	}
	return false
}

func recvIsURL(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return urlValue(sig.Recv().Type())
}

// stringish limits name-based taint to types that can textually carry a
// token: strings, string slices/maps, and url.Values.
func stringish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		return stringish(u.Elem())
	case *types.Map:
		return stringish(u.Elem())
	}
	return false
}

// credName reports whether an identifier's final segment names a
// credential ("accessToken", "app_secret", "tok"), while names like
// "tokenType" or "tokenCount" stay clean.
func credName(name string) bool {
	segs := segments(name)
	if len(segs) == 0 {
		return false
	}
	last := segs[len(segs)-1]
	if credWords[last] {
		return true
	}
	return len(segs) >= 2 && credWords[segs[len(segs)-2]+last]
}

// sensitiveLit reports whether e is a string literal naming a credential
// parameter ("access_token", "client_secret", "appsecret_proof").
func sensitiveLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false
	}
	v := strings.Trim(lit.Value, "`\"")
	return credName(v)
}

func segments(name string) []string {
	var segs []string
	start := 0
	lower := strings.ToLower(name)
	for i := 1; i <= len(name); i++ {
		if i == len(name) || name[i] == '_' ||
			(name[i] >= 'A' && name[i] <= 'Z' && !(name[i-1] >= 'A' && name[i-1] <= 'Z')) {
			if start < i {
				seg := lower[start:i]
				seg = strings.Trim(seg, "_")
				if seg != "" {
					segs = append(segs, seg)
				}
			}
			start = i
			if i < len(name) && name[i] == '_' {
				start = i + 1
			}
		}
	}
	return segs
}

func describe(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return "`" + e.Name + "`"
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return "`" + x.Name + "." + e.Sel.Name + "`"
		}
		return "`" + e.Sel.Name + "`"
	case *ast.CallExpr:
		return "call result"
	}
	return "value"
}
