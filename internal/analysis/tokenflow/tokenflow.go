// Package tokenflow implements the collusionvet analyzer that guards
// the paper's core token-hygiene lesson: bearer access tokens leak
// because they ride in URLs and get echoed into logs and error strings
// (PAPER.md §3 — collusion networks harvest exactly such leaked
// tokens). The analyzer flags token-bearing values flowing into
// formatting/logging sinks:
//
//   - any argument of fmt.Errorf/Sprintf/Printf/..., log.*, or
//     errors.New whose name marks it as a credential (token, secret,
//     appsecret_proof, password, ...);
//   - any url.URL / url.Values argument — a full URL is presumed to
//     carry credentials in its query or fragment (the Figure 3 implicit
//     flow puts access_token in the fragment), as are url.URL.Fragment /
//     RawQuery reads and url.URL.String() results;
//   - values locally derived from the above (assignment taint, string
//     concatenation, Values.Get("access_token") and friends, and
//     fmt.Sprintf-style wrappers that forward their arguments into a
//     value-returning formatter);
//   - span attribute/event setters in internal/obs (Span.SetAttr,
//     Span.Event) — traces are exported over /debug/traces, so they are
//     a diagnostic channel like any log line.
//
// Taint crosses package boundaries through the facts pipeline
// (internal/analysis FactSet, see facts.go): analyzing a package
// exports ReturnsCredential / ParamIsCredential / Redacts / CredField
// facts for its functions and struct fields, and call sites in
// importing packages consult those facts — so a credential-returning
// helper is recognized by every caller no matter how innocently it is
// named, with zero annotations.
//
// Escape hatch: helpers that mask their input may be annotated
// //collusionvet:redacts (everything in repro/internal/redact is
// trusted implicitly); their call results are clean, and sinks inside
// their bodies are not checked. The annotation is exported as a Redacts
// fact, so it is honored from other packages too.
package tokenflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the bearer-token leak checker.
var Analyzer = &analysis.Analyzer{
	Name: "tokenflow",
	Doc: "flag bearer tokens and full URLs flowing into fmt/log/error sinks; " +
		"redact via repro/internal/redact or a //collusionvet:redacts helper",
	Run: run,
}

// sinkFuncs are the formatting/printing entry points checked, keyed by
// package path then function/method name (log methods cover *log.Logger
// too, since the method names coincide).
var sinkFuncs = map[string]map[string]bool{
	"fmt": {
		"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true,
		"Printf": true, "Print": true, "Println": true,
		"Fprintf": true, "Fprint": true, "Fprintln": true,
		"Appendf": true, "Append": true, "Appendln": true,
	},
	"log": {
		"Printf": true, "Print": true, "Println": true,
		"Fatalf": true, "Fatal": true, "Fatalln": true,
		"Panicf": true, "Panic": true, "Panicln": true,
		"Output": true,
	},
	"errors": {"New": true},
}

// valueFormatters are the fmt entry points that *return* their
// formatted output instead of (only) writing it somewhere; they
// propagate taint from arguments to result, which is how variadic
// forwarding wrappers (func attr(f string, a ...any) string { return
// fmt.Sprintf(f, a...) }) are tracked.
var valueFormatters = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// credWords mark a name's final segment as credential-bearing.
var credWords = map[string]bool{
	"token": true, "accesstoken": true, "tok": true,
	"secret": true, "secrets": true, "proof": true,
	"password": true, "passwd": true, "bearer": true, "apikey": true,
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	tainted map[types.Object]bool // locals assigned from tainted exprs

	// Per-function summaries, computed to a fixed point over the whole
	// package before reporting, then exported as facts:
	retCred   map[*types.Func]map[int]bool // result indices carrying credentials
	parCred   map[*types.Func]map[int]bool // credential-declared / pointer-filled params
	propag    map[*types.Func]map[int]bool // params forwarded into string results
	redactors map[*types.Func]bool         // annotated or redact-package helpers
	fields    map[*types.Var]bool          // package structs' credential fields
	params    map[*types.Func]map[types.Object]int
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		decls:     analysis.FuncDecls(pass),
		tainted:   make(map[types.Object]bool),
		retCred:   make(map[*types.Func]map[int]bool),
		parCred:   make(map[*types.Func]map[int]bool),
		propag:    make(map[*types.Func]map[int]bool),
		redactors: make(map[*types.Func]bool),
		fields:    make(map[*types.Var]bool),
		params:    make(map[*types.Func]map[types.Object]int),
	}
	c.seed()

	// Fixed point: taint discovered in one function's body (a tainted
	// return, a credential written into a field) feeds the summaries
	// its callers' analysis consults, until nothing changes.
	funcs := c.analyzedFuncs()
	for range 8 {
		changed := false
		for _, p := range funcs {
			c.propagate(p.fn, p.fd.Body)
			if c.summarize(p.fn, p.fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	c.exportFacts()

	for _, p := range funcs {
		c.checkSinks(p.fd.Body)
	}
	return nil
}

type funcDecl struct {
	fn *types.Func
	fd *ast.FuncDecl
}

// analyzedFuncs returns the production functions subject to taint
// analysis in deterministic (file, position) order — test files format
// tokens freely, and a redactor's own formatting is the masking.
func (c *checker) analyzedFuncs() []funcDecl {
	var out []funcDecl
	for _, file := range c.pass.Files {
		if analysis.IsTestFile(c.pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || c.redactors[fn] {
				continue
			}
			out = append(out, funcDecl{fn, fd})
		}
	}
	return out
}

// seed installs the definition-site heuristics as initial summaries:
// redactors (annotation or .../redact package path), credential-named
// functions, credential-named parameters, and credential-named string
// fields of package structs.
func (c *checker) seed() {
	inRedactPkg := c.pass.Pkg != nil &&
		(c.pass.Pkg.Path() == "redact" || strings.HasSuffix(c.pass.Pkg.Path(), "/redact"))
	for fn, fd := range c.decls {
		if inRedactPkg || analysis.Annotated(fd.Doc, analysis.AnnRedacts) {
			c.redactors[fn] = true
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if credName(fn.Name()) {
			for i := 0; i < sig.Results().Len(); i++ {
				if stringish(sig.Results().At(i).Type()) {
					c.mark(c.retCred, fn, i)
				}
			}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if credName(p.Name()) && (stringish(p.Type()) || ptrToStringish(p.Type())) {
				c.mark(c.parCred, fn, i)
			}
		}
		// Parameter object → index, for body seeding and summaries.
		idx := make(map[types.Object]int, sig.Params().Len())
		if fd.Type.Params != nil {
			i := 0
			for _, fld := range fd.Type.Params.List {
				for _, name := range fld.Names {
					if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
						idx[obj] = i
					}
					i++
				}
				if len(fld.Names) == 0 {
					i++
				}
			}
		}
		c.params[fn] = idx
	}

	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if credName(f.Name()) && stringish(f.Type()) {
				c.fields[f] = true
			}
		}
	}
}

func (c *checker) mark(m map[*types.Func]map[int]bool, fn *types.Func, i int) bool {
	set := m[fn]
	if set == nil {
		set = make(map[int]bool)
		m[fn] = set
	}
	if set[i] {
		return false
	}
	set[i] = true
	return true
}

// exportFacts publishes the package's summaries through the facts
// pipeline for importing packages.
func (c *checker) exportFacts() {
	for fn := range c.redactors {
		c.pass.ExportObjectFact(fn, &Redacts{})
	}
	for fn := range c.decls {
		if rs := sortedIndices(c.retCred[fn]); len(rs) > 0 {
			c.pass.ExportObjectFact(fn, &ReturnsCredential{Results: rs})
		}
		if ps := sortedIndices(c.parCred[fn], c.propag[fn]); len(ps) > 0 {
			c.pass.ExportObjectFact(fn, &ParamIsCredential{Params: ps})
		}
	}
	for f := range c.fields {
		c.pass.ExportObjectFact(f, &CredField{})
	}
}

func sortedIndices(sets ...map[int]bool) []int {
	seen := make(map[int]bool)
	var out []int
	for _, set := range sets {
		for i := range set {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// propagate performs one forward pass of assignment-based taint: a local
// variable whose initializer is tainted carries the taint to its uses.
// Credential-declared parameters and pointer arguments filled by
// credential-writing callees are tainted too.
func (c *checker) propagate(fn *types.Func, body *ast.BlockStmt) {
	for obj, i := range c.params[fn] {
		if c.parCred[fn][i] {
			c.tainted[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if c.taintedExpr(n.Rhs[i]) {
						if obj := c.objOf(id); obj != nil {
							c.tainted[obj] = true
						}
					}
				}
			} else if len(n.Rhs) == 1 {
				c.taintTupleAssign(n.Lhs, n.Rhs[0])
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				c.taintTupleAssign(lhs, n.Values[0])
				return true
			}
			for i, id := range n.Names {
				if i < len(n.Values) && c.taintedExpr(n.Values[i]) {
					if obj := c.objOf(id); obj != nil {
						c.tainted[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			c.taintPointerArgs(n)
		}
		return true
	})
}

// taintTupleAssign handles `tok, err := f()`: result indices carrying
// credentials (per local summary or imported fact) taint the matching
// left-hand variables.
func (c *checker) taintTupleAssign(lhs []ast.Expr, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || c.redactor(fn) {
		return
	}
	for _, i := range c.credResults(fn) {
		if i >= len(lhs) {
			continue
		}
		if id, ok := lhs[i].(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				c.tainted[obj] = true
			}
		}
	}
}

// taintPointerArgs handles out-parameters: a call like Fill(&tok) where
// the callee's ParamIsCredential fact covers that position taints tok.
func (c *checker) taintPointerArgs(call *ast.CallExpr) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || c.redactor(fn) {
		return
	}
	idxs := c.credParams(fn)
	if len(idxs) == 0 {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	for argIdx, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		id, ok := ast.Unparen(un.X).(*ast.Ident)
		if !ok {
			continue
		}
		if idxs[paramIndexFor(sig, argIdx)] {
			if obj := c.objOf(id); obj != nil {
				c.tainted[obj] = true
			}
		}
	}
}

// summarize records what a function's body reveals about its signature:
// tainted returns, credentials written through pointer parameters,
// credentials stored into struct fields, and parameters forwarded into
// string results. It reports whether any summary grew.
func (c *checker) summarize(fn *types.Func, fd *ast.FuncDecl) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	changed := false

	for _, ret := range ownReturns(fd.Body) {
		if len(ret.Results) != sig.Results().Len() {
			continue // naked return or tuple forwarding; out of scope
		}
		for i, res := range ret.Results {
			if !stringish(sig.Results().At(i).Type()) {
				continue
			}
			if c.taintedExpr(res) && c.mark(c.retCred, fn, i) {
				changed = true
			}
			for pi := range c.derivedParams(fn, res) {
				if c.mark(c.propag, fn, pi) {
					changed = true
				}
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !c.taintedExpr(n.Rhs[i]) {
					continue
				}
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					// x.Field = <tainted> marks Field as credential-bearing.
					if f := c.ownFieldOf(lhs); f != nil && !c.fields[f] {
						c.fields[f] = true
						changed = true
					}
				case *ast.StarExpr:
					// *p = <tainted> where p is a parameter.
					if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
						if pi, ok := c.params[fn][c.objOf(id)]; ok && c.mark(c.parCred, fn, pi) {
							changed = true
						}
					}
				case *ast.IndexExpr:
					// m[k] = <tainted> where m is a map parameter.
					if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
						if pi, ok := c.params[fn][c.objOf(id)]; ok && c.mark(c.parCred, fn, pi) {
							changed = true
						}
					}
				}
			}
		case *ast.CompositeLit:
			// T{Field: <tainted>} marks Field as credential-bearing.
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				f, ok := c.pass.TypesInfo.Uses[key].(*types.Var)
				if !ok || !f.IsField() || f.Pkg() != c.pass.Pkg {
					continue
				}
				if stringish(f.Type()) && c.taintedExpr(kv.Value) && !c.fields[f] {
					c.fields[f] = true
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// ownFieldOf resolves sel to a string-shaped struct field owned by the
// package under analysis, or nil.
func (c *checker) ownFieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || f.Pkg() != c.pass.Pkg || !stringish(f.Type()) {
		return nil
	}
	return f
}

// ownReturns collects fd's return statements, excluding those of nested
// function literals.
func ownReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// derivedParams reports which of fn's parameters the expression's value
// is textually derived from: directly, through concatenation or
// conversion, or through a value-returning formatter (fmt.Sprintf and
// friends, or another local wrapper). These positions become
// ParamIsCredential facts so a tainted argument taints the result at
// every call site, including cross-package ones.
func (c *checker) derivedParams(fn *types.Func, e ast.Expr) map[int]bool {
	out := make(map[int]bool)
	c.collectDerived(fn, e, out)
	return out
}

func (c *checker) collectDerived(fn *types.Func, e ast.Expr, out map[int]bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if pi, ok := c.params[fn][c.objOf(e)]; ok {
			out[pi] = true
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			c.collectDerived(fn, e.X, out)
			c.collectDerived(fn, e.Y, out)
		}
	case *ast.IndexExpr:
		c.collectDerived(fn, e.X, out)
	case *ast.SliceExpr:
		c.collectDerived(fn, e.X, out)
	case *ast.StarExpr:
		c.collectDerived(fn, e.X, out)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			c.collectDerived(fn, e.X, out)
		}
	case *ast.CallExpr:
		// Conversions pass the value through untouched.
		if len(e.Args) == 1 {
			if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				c.collectDerived(fn, e.Args[0], out)
				return
			}
		}
		callee := analysis.CalleeFunc(c.pass.TypesInfo, e)
		if callee == nil || c.redactor(callee) {
			return
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" && valueFormatters[callee.Name()] {
			for _, arg := range e.Args {
				c.collectDerived(fn, arg, out)
			}
			return
		}
		// A call to another wrapper forwards through its propagating
		// positions (local summary or imported fact).
		if idxs := c.credParams(callee); len(idxs) > 0 {
			sig, _ := callee.Type().(*types.Signature)
			for argIdx, arg := range e.Args {
				if idxs[paramIndexFor(sig, argIdx)] {
					c.collectDerived(fn, arg, out)
				}
			}
		}
	}
}

// credResults merges fn's credential-carrying result indices from the
// local summary and, for imported functions, the ReturnsCredential fact.
func (c *checker) credResults(fn *types.Func) []int {
	if set := c.retCred[fn]; len(set) > 0 {
		return sortedIndices(set)
	}
	var fact ReturnsCredential
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Results
	}
	return nil
}

// credParams merges fn's credential parameter positions from local
// summaries and the ParamIsCredential fact.
func (c *checker) credParams(fn *types.Func) map[int]bool {
	out := make(map[int]bool)
	for i := range c.parCred[fn] {
		out[i] = true
	}
	for i := range c.propag[fn] {
		out[i] = true
	}
	var fact ParamIsCredential
	if c.pass.ImportObjectFact(fn, &fact) {
		for _, i := range fact.Params {
			out[i] = true
		}
	}
	return out
}

// paramIndexFor maps an argument position to its parameter index,
// folding variadic arguments onto the last parameter.
func paramIndexFor(sig *types.Signature, argIdx int) int {
	if sig == nil {
		return argIdx
	}
	n := sig.Params().Len()
	if n == 0 {
		return argIdx
	}
	if argIdx >= n {
		return n - 1
	}
	return argIdx
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// checkSinks reports tainted arguments of sink calls.
func (c *checker) checkSinks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names := sinkFuncs[fn.Pkg().Path()]
		if (names == nil || !names[fn.Name()]) && !obsSink(fn) {
			return true
		}
		for _, arg := range call.Args {
			if c.taintedExpr(arg) {
				c.pass.Reportf(call.Pos(),
					"possible bearer-token leak: %s flows into %s.%s; redact first (internal/redact or a //collusionvet:redacts helper)",
					describe(arg), fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// taintedExpr reports whether e may carry a bearer credential.
func (c *checker) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if c.tainted[c.objOf(e)] {
			return true
		}
		if urlValue(c.typeOf(e)) {
			return true
		}
		return credName(e.Name) && stringish(c.typeOf(e))
	case *ast.SelectorExpr:
		if urlValue(c.typeOf(e)) {
			return true
		}
		if urlCredField(c.pass.TypesInfo, e) {
			return true
		}
		if c.credFieldSel(e) {
			return true
		}
		return credName(e.Sel.Name) && stringish(c.typeOf(e))
	case *ast.CallExpr:
		return c.taintedCall(e)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return c.taintedExpr(e.X) || c.taintedExpr(e.Y)
		}
	case *ast.IndexExpr:
		if lit := sensitiveLit(e.Index); lit {
			return true // vals["access_token"]
		}
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.taintedExpr(e.X)
		}
	}
	if urlValue(c.typeOf(e)) {
		return true
	}
	return false
}

// credFieldSel reports whether sel reads a credential-holding struct
// field: per the local field summary for package types, or per an
// imported CredField fact for fields defined in dependencies.
func (c *checker) credFieldSel(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	f, ok := s.Obj().(*types.Var)
	if !ok {
		return false
	}
	if c.fields[f] {
		return true
	}
	var fact CredField
	return c.pass.ImportObjectFact(f, &fact)
}

func (c *checker) taintedCall(call *ast.CallExpr) bool {
	// Conversions like string(tok) keep the taint.
	if len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return c.taintedExpr(call.Args[0])
		}
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if c.redactor(fn) {
		return false
	}
	if urlValue(c.typeOf(call)) {
		return true // e.g. req.URL.Query()
	}
	// url.URL.String() re-serializes whatever the URL carries.
	if fn.Name() == "String" && recvIsURL(fn) {
		return true
	}
	// Values.Get("access_token"), r.FormValue("client_secret"), ...
	switch fn.Name() {
	case "Get", "FormValue", "PostFormValue":
		if len(call.Args) >= 1 && sensitiveLit(call.Args[0]) {
			return true
		}
	}
	// A callee known — by body analysis here, or by fact from its own
	// package's analysis — to return a credential.
	if len(c.credResults(fn)) > 0 {
		return true
	}
	// NewSecret(), SecretProof(...), mintToken(...) — result named like
	// a credential and string-shaped (fallback for fact-less packages).
	if credName(fn.Name()) && stringish(c.typeOf(call)) {
		return true
	}
	// Wrapper propagation: a tainted argument at a credential parameter
	// position of a string-returning callee taints the result —
	// fmt.Sprintf itself, or any wrapper that forwards into one.
	if stringish(c.typeOf(call)) {
		if idxs := c.credParams(fn); len(idxs) > 0 {
			sig, _ := fn.Type().(*types.Signature)
			for argIdx, arg := range call.Args {
				if idxs[paramIndexFor(sig, argIdx)] && c.taintedExpr(arg) {
					return true
				}
			}
		}
	}
	return false
}

// obsSink reports whether fn is a span attribute/event setter in an obs
// package. Span data is exported verbatim over /debug/traces and trace
// JSONL dumps, so these are credential sinks exactly like log calls.
func obsSink(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != "obs" && !strings.HasSuffix(p, "/obs") {
		return false
	}
	switch fn.Name() {
	case "SetAttr", "Event":
		return true
	case "Debugf", "Infof", "Warnf", "Errorf", "Fatalf":
		// The obs.Logger methods. They redact at runtime as a backstop,
		// but a credential reaching them is still a bug the analyzer
		// should surface at the call site.
		return true
	}
	return false
}

// redactor reports whether calls to fn launder taint: anything in a
// .../redact package, a helper annotated //collusionvet:redacts in this
// package, or one carrying an exported Redacts fact from its own.
func (c *checker) redactor(fn *types.Func) bool {
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if p == "redact" || strings.HasSuffix(p, "/redact") {
			return true
		}
	}
	if c.redactors[fn] {
		return true
	}
	var fact Redacts
	return c.pass.ImportObjectFact(fn, &fact)
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	return c.pass.TypesInfo.Types[e].Type
}

// urlValue reports whether t is url.URL, *url.URL, or url.Values.
func urlValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/url" {
		return false
	}
	return obj.Name() == "URL" || obj.Name() == "Values" || obj.Name() == "Userinfo"
}

// urlCredField reports whether sel reads a credential-carrying field of
// url.URL (Fragment, RawQuery, RawFragment).
func urlCredField(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "net/url" || n.Obj().Name() != "URL" {
		return false
	}
	switch sel.Sel.Name {
	case "Fragment", "RawQuery", "RawFragment":
		return true
	}
	return false
}

func recvIsURL(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return urlValue(sig.Recv().Type())
}

// stringish limits name-based taint to types that can textually carry a
// token: strings, string slices/maps, and url.Values.
func stringish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		return stringish(u.Elem())
	case *types.Map:
		return stringish(u.Elem())
	}
	return false
}

// ptrToStringish reports whether t is a pointer to a stringish type —
// the shape of a credential out-parameter.
func ptrToStringish(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	return ok && stringish(p.Elem())
}

// credName reports whether an identifier's final segment names a
// credential ("accessToken", "app_secret", "tok"), while names like
// "tokenType" or "tokenCount" stay clean.
func credName(name string) bool {
	segs := segments(name)
	if len(segs) == 0 {
		return false
	}
	last := segs[len(segs)-1]
	if credWords[last] {
		return true
	}
	return len(segs) >= 2 && credWords[segs[len(segs)-2]+last]
}

// sensitiveLit reports whether e is a string literal naming a credential
// parameter ("access_token", "client_secret", "appsecret_proof").
func sensitiveLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false
	}
	v := strings.Trim(lit.Value, "`\"")
	return credName(v)
}

func segments(name string) []string {
	var segs []string
	start := 0
	lower := strings.ToLower(name)
	for i := 1; i <= len(name); i++ {
		if i == len(name) || name[i] == '_' ||
			(name[i] >= 'A' && name[i] <= 'Z' && !(name[i-1] >= 'A' && name[i-1] <= 'Z')) {
			if start < i {
				seg := lower[start:i]
				seg = strings.Trim(seg, "_")
				if seg != "" {
					segs = append(segs, seg)
				}
			}
			start = i
			if i < len(name) && name[i] == '_' {
				start = i + 1
			}
		}
	}
	return segs
}

func describe(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return "`" + e.Name + "`"
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return "`" + x.Name + "." + e.Sel.Name + "`"
		}
		return "`" + e.Sel.Name + "`"
	case *ast.CallExpr:
		return "call result"
	}
	return "value"
}
