package tokenflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tokenflow"
)

func TestTokenflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), tokenflow.Analyzer, "tokenflow")
}

func TestObsSinks(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), tokenflow.Analyzer, "obs")
}

func TestCrossPackageFacts(t *testing.T) {
	analysistest.RunDeps(t, analysistest.TestData(t), tokenflow.Analyzer, "credlib", "app")
}

func TestWrapperForwarding(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), tokenflow.Analyzer, "wrapper")
}

func TestPackageSkip(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), tokenflow.Analyzer, "skip")
}
