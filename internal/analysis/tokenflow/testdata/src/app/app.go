// Package app is the consumer side of the cross-package facts golden:
// it imports credlib and logs its values. Every flagged line leaks a
// credential the analyzer can only know about through credlib's
// exported facts; every clean line proves the facts carry no
// over-taint.
package app

import (
	"log"

	"credlib"
)

func leakReturn() {
	c := credlib.Mint()
	log.Print(c) // want `bearer-token leak`
}

func leakReturnDirect() {
	log.Print(credlib.Mint()) // want `bearer-token leak`
}

func leakOutParam() {
	var c string
	credlib.Fill(&c)
	log.Print(c) // want `bearer-token leak`
}

func leakWrapped(token string) {
	log.Print(credlib.Wrap("bearer", token)) // want `bearer-token leak`
}

func leakField(s credlib.Session) {
	log.Printf("session %s", s.Auth) // want `bearer-token leak`
}

func cleanField(s credlib.Session) {
	log.Printf("session %s", s.ID)
}

func cleanMasked() {
	log.Print(credlib.Mask(credlib.Mint()))
	var c string
	credlib.Fill(&c)
	log.Print(credlib.Mask(c))
}

func cleanWrapped(user string) {
	log.Print(credlib.Wrap("user", user))
}
