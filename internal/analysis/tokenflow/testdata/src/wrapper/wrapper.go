// Package wrapper is golden testdata for tokenflow's body-derived
// summaries: variadic forwarding through fmt.Sprintf-style wrappers
// (the regression that let obs span attributes leak via a formatting
// helper), credential-returning helpers with innocent names, pointer
// out-parameters, and struct fields that become credentials only
// because a tainted value is stored in them.
package wrapper

import (
	"fmt"
	"log"
)

// attr forwards its variadic arguments into a value-returning
// formatter; a tainted argument must taint the result.
func attr(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// kv concatenates; same propagation, no fmt involved.
func kv(key, value string) string { return key + "=" + value }

// mint returns an opaque credential in its second result under an
// innocent name — callers learn that only from the return summary.
func mint() (string, string) {
	token := "opaque-value"
	return "id", token
}

// fill writes a credential through its out-parameter.
func fill(dst *string) {
	*dst = "tok-" + newRandomSecret()
}

func newRandomSecret() string { return "s3cr3t" }

// grant's Code field is never credential-named, but newGrant stores a
// secret in it, which marks the field credential-bearing.
type grant struct {
	ID   string
	Code string
}

func newGrant() grant {
	return grant{ID: "g1", Code: newRandomSecret()}
}

func wrapperLeaks(token string) {
	log.Print(attr("t=%s", token)) // want `bearer-token leak`
	log.Print(kv("token", token))  // want `bearer-token leak`
	s := attr("t=%s", token)
	log.Print(s) // want `bearer-token leak`
}

func wrapperClean(user string) {
	log.Print(attr("u=%s", user))
	log.Print(kv("user", user))
}

func tupleLeak() {
	id, cred := mint()
	log.Print(cred) // want `bearer-token leak`
	log.Print(id)
}

func fillLeak() {
	var c string
	fill(&c)
	log.Print(c) // want `bearer-token leak`
}

func fieldLeak(g grant) {
	log.Printf("grant %s", g.Code) // want `bearer-token leak`
	log.Printf("grant %s", g.ID)
}

func useAll() {
	g := newGrant()
	fieldLeak(g)
}
