// Package skip proves per-package suppression: the skip directive below
// disables tokenflow for the whole package, so the obvious leak carries
// no want expectation.
//
//collusionvet:skip tokenflow -- fixture exercising package-level opt-out
package skip

import "fmt"

func leak(token string) {
	fmt.Println("token: " + token) // no finding: package is skipped
}
