// Package credlib is the dependency side of the cross-package facts
// golden: every helper here is deliberately named so the old call-site
// name heuristics would NEVER flag its results — only the facts this
// package's analysis exports (ReturnsCredential, ParamIsCredential,
// Redacts, CredField) let the app package see the taint.
package credlib

// Mint returns a fresh bearer credential under an innocent name; the
// tainted return is what exports ReturnsCredential.
func Mint() string {
	secret := "opaque-bearer-value"
	return secret
}

// Fill writes a credential through its out-parameter
// (ParamIsCredential via the pointer-write summary).
func Fill(dst *string) {
	*dst = Mint()
}

// Wrap forwards both parameters into its string result
// (ParamIsCredential via the propagation summary): a tainted argument
// taints the wrapped result at any call site.
func Wrap(prefix, value string) string {
	return prefix + ":" + value
}

// Session carries its credential in a field whose name says nothing
// (CredField via the tainted-assignment summary).
type Session struct {
	ID   string
	Auth string
}

// NewSession mints a session credential into the Auth field.
func NewSession(id string) Session {
	return Session{ID: id, Auth: Mint()}
}

// Mask is the sanctioned redactor; the annotation becomes a Redacts
// fact honored by importing packages.
//
//collusionvet:redacts
func Mask(s string) string {
	if len(s) <= 4 {
		return "***"
	}
	return s[:4] + "***"
}
