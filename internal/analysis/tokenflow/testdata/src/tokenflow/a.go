// Package tokenflow is golden testdata: every reported line carries a
// // want expectation; clean lines prove the allowed patterns.
package tokenflow

import (
	"errors"
	"fmt"
	"log"
	"net/url"
)

type creds struct {
	Token  string
	Secret string
}

// Named credentials flowing into fmt/log/error sinks.
func sinkNamed(token string, c creds) error {
	log.Printf("using %s", token)             // want `bearer-token leak: .token.`
	fmt.Printf("app secret: %s", c.Secret)    // want `bearer-token leak: .c\.Secret.`
	_ = errors.New("auth failed: " + c.Token) // want `bearer-token leak`
	return fmt.Errorf("bad token %q", token)  // want `bearer-token leak`
}

// Full URLs are presumed to carry credentials (implicit-flow fragments).
func sinkURL(u *url.URL, vals url.Values) {
	fmt.Printf("redirect: %v", u)      // want `bearer-token leak`
	log.Println("frag: " + u.Fragment) // want `bearer-token leak`
	_ = fmt.Sprintf("%s", u.String())  // want `bearer-token leak`
	log.Print(vals)                    // want `bearer-token leak`
}

// One-step local derivation keeps the taint.
func derived(vals url.Values, c creds) {
	got := vals.Get("access_token")
	fmt.Println("got " + got) // want `bearer-token leak`
	x := c.Secret
	log.Println(x) // want `bearer-token leak`
	safe := vals.Get("message")
	fmt.Println(safe) // clean: not a credential parameter
}

// mask is a sanctioned redactor: its result is loggable and the
// formatting inside its own body is the masking itself.
//
//collusionvet:redacts
func mask(tok string) string {
	if len(tok) <= 8 {
		return "…"
	}
	return fmt.Sprintf("%s…", tok[:4])
}

func allowed(c creds, u *url.URL) {
	fmt.Printf("token %s", mask(c.Token)) // clean: redacted
	log.Printf("token len %d", len(c.Token))
	fmt.Printf("grant type %s", tokenType()) // clean: name ends in "type"
	fmt.Printf("host %s", u.Host)            // clean: host alone carries no token
}

func tokenType() string { return "bearer" }

// Inline suppression: the leak is the demo (quickstart-style).
func demo(token string) {
	fmt.Println("leaked: " + token) //collusionvet:allow tokenflow -- demonstrating the Figure 3 leak
}
