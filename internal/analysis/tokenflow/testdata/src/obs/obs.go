// Package obs is golden testdata for the tokenflow obs-sink rule: span
// attribute and event setters are diagnostic sinks (trace exports are
// world-readable), so credentials must be redacted before they land on
// a span. The Span type here is a local stub — the loader is
// stdlib-only — but the package path ("obs") is what the rule keys on.
package obs

// Span mirrors the attribute/event surface of internal/obs.Span.
type Span struct{}

func (s *Span) SetAttr(key, value string) {}

func (s *Span) Event(name string, kv ...string) {}

// mask stands in for internal/redact.Token.
//
//collusionvet:redacts
func mask(s string) string {
	if len(s) <= 6 {
		return "***"
	}
	return s[:6] + "***"
}

// Credentials flowing onto spans raw are flagged.
func attrLeaks(span *Span, token string, secret string) {
	span.SetAttr("token", token)           // want `bearer-token leak: .token. flows into obs\.SetAttr`
	span.SetAttr("app", "app1"+secret)     // want `bearer-token leak`
	span.Event("issued", "token", token)   // want `bearer-token leak: .token. flows into obs\.Event`
	tok := token
	span.SetAttr("token", tok) // want `bearer-token leak`
}

// The redact path is the sanctioned way to label spans with credentials.
func attrClean(span *Span, token string) {
	span.SetAttr("token", mask(token))
	span.SetAttr("app", "app1")
	span.Event("issued", "token", mask(token), "grant", "user")
	span.Event("deny", "reason", "rate-limit")
}

// Logger mirrors the leveled-logging surface of internal/obs.Logger. Its
// *f methods scrub at runtime, but they are still analyzer sinks: a
// credential reaching them is a bug to fix at the call site, not to lean
// on the scrubber for.
type Logger struct{}

func (l *Logger) Debugf(format string, args ...any) {}
func (l *Logger) Infof(format string, args ...any)  {}
func (l *Logger) Warnf(format string, args ...any)  {}
func (l *Logger) Errorf(format string, args ...any) {}
func (l *Logger) Fatalf(format string, args ...any) {}

// Credentials flowing into log lines raw are flagged.
func logLeaks(log *Logger, token string, secret string) {
	log.Infof("joined with %s", token)       // want `bearer-token leak: .token. flows into obs\.Infof`
	log.Errorf("auth failed for %s", secret) // want `bearer-token leak: .secret. flows into obs\.Errorf`
	log.Debugf("%s", "t="+token)             // want `bearer-token leak`
	log.Fatalf("cannot refresh %s", token)   // want `bearer-token leak: .token. flows into obs\.Fatalf`
}

// Redacted arguments and credential-free lines pass.
func logClean(log *Logger, token string, delivered int) {
	log.Infof("joined with %s", mask(token))
	log.Warnf("delivered %d likes", delivered)
	log.Errorf("metrics server: address in use")
}
