package tokenflow

import "repro/internal/analysis"

// The tokenflow fact kinds. Facts are computed while analyzing the
// package that *defines* an object — where the analyzer can see the
// function body, the struct literal, or the //collusionvet:redacts
// annotation — serialized into the package's .vetx file, and consulted
// when analyzing any package that imports it. They replace the
// name-heuristic guesses tokenflow previously made at cross-package
// call sites: a helper can return a credential under any name, and a
// redactor annotated in one package is honored in every other.

// ReturnsCredential marks a function some of whose results carry a
// bearer credential: the defining-package analysis saw a tainted value
// reach a return statement (or the function is credential-named with a
// string-shaped result, the legacy definition-site heuristic). Results
// lists the tainted result indices, sorted.
type ReturnsCredential struct{ Results []int }

// AFact marks ReturnsCredential as a fact.
func (*ReturnsCredential) AFact() {}

// ParamIsCredential marks parameter positions through which credential
// taint flows: a parameter that is credential-named, one the function
// writes a credential through (pointer/map fill), or one it forwards
// into its own string result (fmt.Sprintf-style wrappers). At a call
// site, a tainted argument at a listed position taints the call's
// string result, and a listed pointer-shaped argument's pointee is
// tainted after the call. Params lists parameter indices, sorted.
type ParamIsCredential struct{ Params []int }

// AFact marks ParamIsCredential as a fact.
func (*ParamIsCredential) AFact() {}

// Redacts marks a sanctioned redactor: its results are safe to log
// whatever its inputs were. Exported for //collusionvet:redacts
// annotated helpers and for everything in a .../redact package, so the
// annotation now works across package boundaries.
type Redacts struct{}

// AFact marks Redacts as a fact.
func (*Redacts) AFact() {}

// CredField marks a struct field that holds a credential: either
// credential-named with a string-shaped type, or assigned a tainted
// value somewhere in the defining package (which is how innocently
// named fields like an OAuth authorization Code are caught).
type CredField struct{}

// AFact marks CredField as a fact.
func (*CredField) AFact() {}

func init() {
	analysis.RegisterFact(&ReturnsCredential{})
	analysis.RegisterFact(&ParamIsCredential{})
	analysis.RegisterFact(&Redacts{})
	analysis.RegisterFact(&CredField{})
}
