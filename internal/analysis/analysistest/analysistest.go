// Package analysistest runs a collusionvet analyzer over a golden
// testdata package and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// stdlib-only framework in repro/internal/analysis.
//
// Layout: <testdata>/src/<pkg>/*.go holds one self-contained package
// (stdlib imports only; dependencies are typechecked from GOROOT source
// via go/importer's "source" mode, so no export data is needed). A
// violation line carries an expectation:
//
//	fmt.Errorf("tok %s", token) // want `bearer-token leak`
//
// Each quoted or backquoted string is a regexp that must match exactly
// one diagnostic reported on that line; unmatched diagnostics and
// unsatisfied expectations both fail the test. Suppression directives
// (//collusionvet:allow, //collusionvet:skip) are honored exactly as in
// the real drivers, so testdata can prove they work: a violating line
// with an allow comment and no want expectation passes only if the
// suppression machinery removes the finding.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// The source importer re-typechecks stdlib dependencies from GOROOT on
// every instantiation; share one per process (it caches internally).
var (
	fsetOnce sync.Once
	fset     *token.FileSet
	imp      types.Importer
	impMu    sync.Mutex
)

func sharedImporter() (*token.FileSet, types.Importer) {
	fsetOnce.Do(func() {
		fset = token.NewFileSet()
		imp = importer.ForCompiler(fset, "source", nil)
	})
	return fset, imp
}

// TestData returns the analyzer package's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads testdata/src/<pkg>, applies the analyzer, and compares
// diagnostics against the package's // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunDeps(t, testdata, a, pkg)
}

// RunDeps runs the analyzer over several testdata packages in dependency
// order (dependencies first; later packages may import earlier ones by
// their testdata names). Facts exported while analyzing one package are
// round-tripped through the gob codec before the next package sees them
// — the exact serialization boundary the unitchecker driver crosses via
// .vetx files — so a RunDeps golden proves cross-package facts survive
// encoding, not just in-process map sharing. Every package's
// diagnostics are checked against its own // want comments.
func RunDeps(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset, imp := sharedImporter()
	local := make(map[string]*types.Package)
	localImp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := local[path]; ok {
			return p, nil
		}
		return imp.Import(path)
	})

	facts := analysis.NewFactSet()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading testdata package %s: %v", dir, err)
		}
		var files []*ast.File
		var names []string
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			names = append(names, e.Name())
		}
		sort.Strings(names)
		if len(names) == 0 {
			t.Fatalf("no Go files in %s", dir)
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}

		info := analysis.NewInfo()
		conf := types.Config{Importer: localImp}
		impMu.Lock()
		tpkg, err := conf.Check(pkg, fset, files, info)
		impMu.Unlock()
		if err != nil {
			t.Fatalf("typecheck %s: %v", pkg, err)
		}
		local[pkg] = tpkg

		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			Facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}

		// Apply the same suppression filtering as the real drivers.
		supp := analysis.NewSuppressions(fset, files)
		kept := diags[:0]
		for _, d := range diags {
			if !supp.PackageSkipped(a.Name) && !supp.Suppressed(a.Name, d.Pos) {
				kept = append(kept, d)
			}
		}
		diags = kept

		check(t, fset, files, diags)

		// Serialize and reload, as the vet driver does between units.
		var buf bytes.Buffer
		if err := facts.Encode(&buf); err != nil {
			t.Fatalf("encoding facts after %s: %v", pkg, err)
		}
		facts, err = analysis.DecodeFacts(&buf)
		if err != nil {
			t.Fatalf("decoding facts after %s: %v", pkg, err)
		}
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

type expectation struct {
	re    *regexp.Regexp
	met   bool
	posn  string
	terse string
}

var wantRE = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// check matches diagnostics against // want comments line by line.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	// key: "file:line"
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				spec := text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(spec, -1) {
					pat := m[2]
					if m[1] != "" || pat == "" {
						// Quoted form: unescape like a Go string.
						unq, err := strconv.Unquote("\"" + m[1] + "\"")
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", key, m[1], err)
							continue
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, posn: key, terse: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.met {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.posn, w.terse)
			}
		}
	}
}
