// Package apps models the third-party application ecosystem of Section 2:
// every application has an ID, a secret, a permission scope approved by the
// platform, usage statistics (MAU/DAU), and — decisive for the paper — two
// security settings:
//
//   - ClientFlowEnabled: whether the OAuth 2.0 implicit (client-side) flow
//     may be used to obtain tokens for this app (Figure 2a);
//   - RequireAppSecret: whether Graph API calls with this app's tokens must
//     carry an appsecret_proof (Figure 2b).
//
// An application is *susceptible* to token leakage and abuse exactly when
// the client-side flow is enabled and the secret is not required (paper
// Sec. 2.2). Among the top 100 apps the paper found 55 susceptible, of
// which 9 were issued long-term (~2 month) tokens — those are the apps
// collusion networks exploited.
package apps

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
)

// Permission names used in the reproduction. publish_actions is the
// sensitive write permission that requires platform approval and lets an
// app like/comment/post on the user's behalf.
const (
	PermPublicProfile  = "public_profile"
	PermEmail          = "email"
	PermUserFriends    = "user_friends"
	PermPublishActions = "publish_actions"
)

// TokenLifetime classifies the tokens an app is issued.
type TokenLifetime int

// Token classes and their durations as reported in Section 2.1.
const (
	// ShortTerm tokens expire after 1–2 hours.
	ShortTerm TokenLifetime = iota
	// LongTerm tokens expire after approximately two months.
	LongTerm
)

// Durations for the two token classes.
const (
	ShortTermDuration = 90 * time.Minute
	LongTermDuration  = 60 * 24 * time.Hour
)

// String names the lifetime class.
func (l TokenLifetime) String() string {
	if l == LongTerm {
		return "long-term"
	}
	return "short-term"
}

// Duration returns the expiration duration of the class.
func (l TokenLifetime) Duration() time.Duration {
	if l == LongTerm {
		return LongTermDuration
	}
	return ShortTermDuration
}

// App is one third-party application.
type App struct {
	ID     string
	Name   string
	Secret string
	// RedirectURI is the OAuth redirection endpoint configured in the
	// application settings.
	RedirectURI string
	// ClientFlowEnabled allows the implicit grant (response_type=token).
	ClientFlowEnabled bool
	// RequireAppSecret demands an appsecret_proof on Graph API calls.
	RequireAppSecret bool
	// Lifetime is the token class issued to this app.
	Lifetime TokenLifetime
	// Permissions the platform has approved for this app.
	Permissions []string
	// MAU and DAU are monthly/daily active user counts used for the
	// leaderboard (Tables 1 and 3).
	MAU int
	DAU int
	// Suspended apps are denied all OAuth and Graph API operations — the
	// countermeasure the paper explicitly declined (Sec. 6) because of the
	// collateral damage to legitimate users.
	Suspended bool
}

// Susceptible reports whether the app can be exploited for token leakage
// and abuse: client-side flow on, secret not required, and write permission
// approved.
func (a App) Susceptible() bool {
	return a.ClientFlowEnabled && !a.RequireAppSecret && a.HasPermission(PermPublishActions)
}

// HasPermission reports whether the app was approved for the permission.
func (a App) HasPermission(perm string) bool {
	for _, p := range a.Permissions {
		if p == perm {
			return true
		}
	}
	return false
}

// Errors returned by the registry.
var (
	ErrNotFound  = errors.New("apps: application not found")
	ErrSuspended = errors.New("apps: application suspended")
)

// Registry is the platform's application directory. It is safe for
// concurrent use.
type Registry struct {
	mu     sync.RWMutex
	minter *ids.Minter
	byID   map[string]*App
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		minter: ids.NewMinter(),
		byID:   make(map[string]*App),
	}
}

// Config carries the developer-controlled settings when registering an app.
type Config struct {
	Name              string
	RedirectURI       string
	ClientFlowEnabled bool
	RequireAppSecret  bool
	Lifetime          TokenLifetime
	Permissions       []string
	MAU               int
	DAU               int
}

// SensitivePermissions are the write scopes that require platform review
// before an application may request them.
var SensitivePermissions = map[string]bool{
	PermPublishActions: true,
}

// RegisterUnreviewed creates an application without platform review:
// sensitive permissions are stripped. This models the constraint the
// paper highlights in Section 3 — collusion networks cannot simply
// create their own applications, because Facebook's manual review would
// never grant write permissions to them; they must hijack existing
// reviewed apps instead.
func (r *Registry) RegisterUnreviewed(cfg Config) App {
	var granted []string
	for _, p := range cfg.Permissions {
		if !SensitivePermissions[p] {
			granted = append(granted, p)
		}
	}
	cfg.Permissions = granted
	return r.Register(cfg)
}

// Register creates an application with a fresh ID and secret, with every
// requested permission approved (the post-review state all Table 1/3
// apps are in).
func (r *Registry) Register(cfg Config) App {
	r.mu.Lock()
	defer r.mu.Unlock()
	app := &App{
		ID:                r.minter.Next(ids.KindApp),
		Name:              cfg.Name,
		Secret:            ids.NewSecret(),
		RedirectURI:       cfg.RedirectURI,
		ClientFlowEnabled: cfg.ClientFlowEnabled,
		RequireAppSecret:  cfg.RequireAppSecret,
		Lifetime:          cfg.Lifetime,
		Permissions:       append([]string(nil), cfg.Permissions...),
		MAU:               cfg.MAU,
		DAU:               cfg.DAU,
	}
	r.byID[app.ID] = app
	return *app
}

// Get returns the app with the given ID.
func (r *Registry) Get(id string) (App, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	app, ok := r.byID[id]
	if !ok {
		return App{}, fmt.Errorf("app %q: %w", id, ErrNotFound)
	}
	// The Permissions slice is built once at Register and never mutated
	// in place (suspension and security settings touch scalar fields
	// only), so Get shares it instead of deep-copying: this lookup runs
	// once per authenticated API call, and the clone was ~20% of the like
	// pipeline's allocation count. Callers must treat it as read-only.
	return *app, nil
}

// SetSuspended suspends or reinstates an app.
func (r *Registry) SetSuspended(id string, suspended bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	app, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("app %q: %w", id, ErrNotFound)
	}
	app.Suspended = suspended
	return nil
}

// SetSecuritySettings updates the two security settings of Figure 2; it is
// what a third-party developer (or a mandated platform policy) would change
// to close the leak.
func (r *Registry) SetSecuritySettings(id string, clientFlow, requireSecret bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	app, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("app %q: %w", id, ErrNotFound)
	}
	app.ClientFlowEnabled = clientFlow
	app.RequireAppSecret = requireSecret
	return nil
}

// All returns every registered app, ordered by descending MAU then name —
// the leaderboard order used to pick the "top 100" of Table 1.
func (r *Registry) All() []App {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]App, 0, len(r.byID))
	for _, app := range r.byID {
		out = append(out, cloneApp(app))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MAU != out[j].MAU {
			return out[i].MAU > out[j].MAU
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Top returns the n highest-MAU apps (fewer if the registry is smaller).
func (r *Registry) Top(n int) []App {
	all := r.All()
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// RankByDAU returns the 1-based DAU rank of the app among all registered
// apps, as reported in Table 3.
func (r *Registry) RankByDAU(id string) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	target, ok := r.byID[id]
	if !ok {
		return 0, fmt.Errorf("app %q: %w", id, ErrNotFound)
	}
	rank := 1
	for _, app := range r.byID {
		if app.DAU > target.DAU {
			rank++
		}
	}
	return rank, nil
}

// RankByMAU returns the 1-based MAU rank of the app.
func (r *Registry) RankByMAU(id string) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	target, ok := r.byID[id]
	if !ok {
		return 0, fmt.Errorf("app %q: %w", id, ErrNotFound)
	}
	rank := 1
	for _, app := range r.byID {
		if app.MAU > target.MAU {
			rank++
		}
	}
	return rank, nil
}

// Count returns the number of registered apps.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

func cloneApp(a *App) App {
	out := *a
	out.Permissions = append([]string(nil), a.Permissions...)
	return out
}
