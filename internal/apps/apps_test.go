package apps

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func cfg(name string, mau, dau int) Config {
	return Config{
		Name:              name,
		RedirectURI:       "https://example.test/callback",
		ClientFlowEnabled: true,
		Lifetime:          LongTerm,
		Permissions:       []string{PermPublicProfile, PermPublishActions},
		MAU:               mau,
		DAU:               dau,
	}
}

func TestRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	app := r.Register(cfg("HTC Sense", 1_000_000, 1_000_000))
	got, err := r.Get(app.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "HTC Sense" || got.Secret == "" || got.ID == "" {
		t.Fatalf("Get = %+v", got)
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing app error = %v", err)
	}
}

func TestSusceptibility(t *testing.T) {
	cases := []struct {
		name          string
		clientFlow    bool
		requireSecret bool
		perms         []string
		want          bool
	}{
		{"exploitable", true, false, []string{PermPublishActions}, true},
		{"server-side only", false, false, []string{PermPublishActions}, false},
		{"secret required", true, true, []string{PermPublishActions}, false},
		{"read-only perms", true, false, []string{PermPublicProfile}, false},
	}
	for _, tc := range cases {
		app := App{
			ClientFlowEnabled: tc.clientFlow,
			RequireAppSecret:  tc.requireSecret,
			Permissions:       tc.perms,
		}
		if got := app.Susceptible(); got != tc.want {
			t.Errorf("%s: Susceptible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTokenLifetime(t *testing.T) {
	if ShortTerm.Duration() != 90*time.Minute {
		t.Fatalf("short-term duration = %v", ShortTerm.Duration())
	}
	if LongTerm.Duration() != 60*24*time.Hour {
		t.Fatalf("long-term duration = %v", LongTerm.Duration())
	}
	if ShortTerm.String() != "short-term" || LongTerm.String() != "long-term" {
		t.Fatal("lifetime names wrong")
	}
}

func TestLeaderboardOrder(t *testing.T) {
	r := NewRegistry()
	r.Register(cfg("Small", 1000, 10))
	big := r.Register(cfg("Big", 50_000_000, 500_000))
	mid := r.Register(cfg("Mid", 5_000_000, 5_000))
	all := r.All()
	if len(all) != 3 {
		t.Fatalf("len(All) = %d", len(all))
	}
	if all[0].ID != big.ID || all[1].ID != mid.ID {
		t.Fatalf("leaderboard order wrong: %v %v", all[0].Name, all[1].Name)
	}
	top2 := r.Top(2)
	if len(top2) != 2 || top2[0].ID != big.ID {
		t.Fatalf("Top(2) = %+v", top2)
	}
	if got := r.Top(10); len(got) != 3 {
		t.Fatalf("Top(10) returned %d", len(got))
	}
}

func TestRanks(t *testing.T) {
	r := NewRegistry()
	a := r.Register(cfg("A", 100, 1000))
	b := r.Register(cfg("B", 200, 100))
	c := r.Register(cfg("C", 300, 10))
	for _, tc := range []struct {
		id       string
		dau, mau int
	}{
		{a.ID, 1, 3},
		{b.ID, 2, 2},
		{c.ID, 3, 1},
	} {
		gotDAU, err := r.RankByDAU(tc.id)
		if err != nil || gotDAU != tc.dau {
			t.Fatalf("RankByDAU(%s) = %d, %v; want %d", tc.id, gotDAU, err, tc.dau)
		}
		gotMAU, err := r.RankByMAU(tc.id)
		if err != nil || gotMAU != tc.mau {
			t.Fatalf("RankByMAU(%s) = %d, %v; want %d", tc.id, gotMAU, err, tc.mau)
		}
	}
	if _, err := r.RankByDAU("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("RankByDAU(missing) error = %v", err)
	}
	if _, err := r.RankByMAU("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("RankByMAU(missing) error = %v", err)
	}
}

func TestSuspension(t *testing.T) {
	r := NewRegistry()
	app := r.Register(cfg("X", 1, 1))
	if err := r.SetSuspended(app.ID, true); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(app.ID)
	if !got.Suspended {
		t.Fatal("app not suspended")
	}
	if err := r.SetSuspended("missing", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("suspend missing error = %v", err)
	}
}

func TestSetSecuritySettings(t *testing.T) {
	r := NewRegistry()
	app := r.Register(cfg("X", 1, 1))
	got, _ := r.Get(app.ID)
	if !got.Susceptible() {
		t.Fatal("app should start susceptible")
	}
	if err := r.SetSecuritySettings(app.ID, true, true); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Get(app.ID)
	if got.Susceptible() {
		t.Fatal("app still susceptible after requiring secret")
	}
	if err := r.SetSecuritySettings("missing", true, true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("settings on missing error = %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := NewRegistry()
	app := r.Register(cfg("X", 1, 1))
	got, _ := r.Get(app.ID)
	got.Name = "tampered"
	got.Suspended = true
	fresh, _ := r.Get(app.ID)
	if fresh.Name == "tampered" || fresh.Suspended {
		t.Fatal("Get leaked scalar state")
	}
	// Permissions is shared deliberately: it is immutable after Register
	// (Get runs once per authenticated API call, and the deep copy it
	// used to make was a fifth of the like pipeline's allocations), so
	// both lookups must see the same backing array.
	if &got.Permissions[0] != &fresh.Permissions[0] {
		t.Fatal("Get should share the immutable Permissions array")
	}
}

func TestHasPermission(t *testing.T) {
	app := App{Permissions: []string{PermEmail, PermPublishActions}}
	if !app.HasPermission(PermPublishActions) {
		t.Fatal("HasPermission(publish_actions) = false")
	}
	if app.HasPermission(PermUserFriends) {
		t.Fatal("HasPermission(user_friends) = true")
	}
}

// Property: every registered app's ID is unique and Count matches.
func TestQuickRegistryUniqueIDs(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRegistry()
		seen := make(map[string]bool)
		for i := 0; i < int(n)%64; i++ {
			app := r.Register(cfg(fmt.Sprintf("app%d", i), i, i))
			if seen[app.ID] {
				return false
			}
			seen[app.ID] = true
		}
		return r.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Top(n) is always a prefix of All() and sorted by MAU desc.
func TestQuickTopPrefixSorted(t *testing.T) {
	f := func(maus []uint16, n uint8) bool {
		r := NewRegistry()
		for i, m := range maus {
			r.Register(cfg(fmt.Sprintf("a%d", i), int(m), i))
		}
		top := r.Top(int(n)%16 + 1)
		for i := 1; i < len(top); i++ {
			if top[i-1].MAU < top[i].MAU {
				return false
			}
		}
		all := r.All()
		for i := range top {
			if top[i].ID != all[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterUnreviewedStripsSensitive(t *testing.T) {
	r := NewRegistry()
	app := r.RegisterUnreviewed(Config{
		Name:              "Collusion Own App",
		RedirectURI:       "https://own.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          LongTerm,
		Permissions:       []string{PermPublicProfile, PermPublishActions, PermEmail},
	})
	if app.HasPermission(PermPublishActions) {
		t.Fatal("unreviewed app granted publish_actions")
	}
	if !app.HasPermission(PermPublicProfile) || !app.HasPermission(PermEmail) {
		t.Fatalf("basic permissions stripped: %v", app.Permissions)
	}
	// Without the write scope the app is useless for manipulation.
	if app.Susceptible() {
		t.Fatal("unreviewed app counted susceptible")
	}
}
