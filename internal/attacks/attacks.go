// Package attacks implements the Section 8 extension attacks: what else
// an adversary holding a collusion network's token pool can do beyond
// reputation manipulation.
//
//   - Harvest: replay every pooled token against /me and /me/friends to
//     collect personal information and enumerate the members' social
//     circles — the privacy impact of token leakage.
//   - Propagate: seed a malware campaign at the pooled members and let
//     it spread along friend edges, modelling the "exploit their social
//     graph to propagate malware" threat the paper flags.
//
// Both attacks use only the public platform client plus the pool — the
// exact capabilities a collusion network operator holds.
package attacks

import (
	"math/rand"

	"repro/internal/platform"
	"repro/internal/socialgraph"
)

// Pool is the attacker's view of a collusion network token database.
// *collusion.TokenPool implements it.
type Pool interface {
	Members() []string
	Token(accountID string) (string, bool)
}

// FriendLister is the slice of the platform client the harvester needs
// beyond profile reads.
type FriendLister interface {
	FriendsOf(token, ip string) ([]platform.Profile, error)
}

// HarvestResult summarises an information-harvesting run.
type HarvestResult struct {
	// TokensTried is the number of pooled tokens replayed.
	TokensTried int
	// TokensLive is how many still validated.
	TokensLive int
	// ProfilesRead counts successful /me reads.
	ProfilesRead int
	// FriendsEnumerated is the number of *distinct* non-member accounts
	// exposed purely through their friends' leaked tokens — people who
	// never touched the collusion network.
	FriendsEnumerated int
	// Reachable is members-with-live-tokens plus enumerated friends: the
	// total population whose data the attacker obtained.
	Reachable int
	// Countries is the harvested profile geography.
	Countries map[string]int
}

// Harvest replays every pooled token to read the member's profile and
// friend list. ip is the source address the reads appear from.
func Harvest(client platform.Client, lister FriendLister, pool Pool, ip string) HarvestResult {
	res := HarvestResult{Countries: make(map[string]int)}
	members := make(map[string]bool)
	exposedFriends := make(map[string]bool)
	for _, accountID := range pool.Members() {
		token, ok := pool.Token(accountID)
		if !ok {
			continue
		}
		res.TokensTried++
		profile, err := client.Me(token, ip)
		if err != nil {
			continue // dead token: expired or invalidated
		}
		res.TokensLive++
		res.ProfilesRead++
		res.Countries[profile.Country]++
		members[profile.ID] = true
		friends, err := lister.FriendsOf(token, ip)
		if err != nil {
			continue // token lacks user_friends
		}
		for _, f := range friends {
			exposedFriends[f.ID] = true
		}
	}
	for id := range exposedFriends {
		if !members[id] {
			res.FriendsEnumerated++
		}
	}
	res.Reachable = len(members) + res.FriendsEnumerated
	return res
}

// PropagationConfig parameterises the malware simulation.
type PropagationConfig struct {
	// ClickProb is the probability an exposed friend interacts with the
	// lure and becomes infected.
	ClickProb float64
	// MaxSteps bounds the number of propagation rounds.
	MaxSteps int
	Seed     int64
}

// PropagationResult is the infection trace.
type PropagationResult struct {
	// InfectedPerStep[i] is the cumulative infection count after step i
	// (step 0 = the seeds).
	InfectedPerStep []int
	TotalInfected   int
	// Population is the account universe size, for rates.
	Population int
}

// Propagate runs a breadth-first infection over the friend graph starting
// from the seed accounts (the collusion network members whose tokens let
// the attacker post lures on their timelines).
func Propagate(graph *socialgraph.Store, seeds []string, cfg PropagationConfig) PropagationResult {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	infected := make(map[string]bool, len(seeds))
	frontier := make([]string, 0, len(seeds))
	for _, s := range seeds {
		if !infected[s] {
			infected[s] = true
			frontier = append(frontier, s)
		}
	}
	res := PropagationResult{
		InfectedPerStep: []int{len(infected)},
		Population:      graph.AccountCount(),
	}
	for step := 0; step < cfg.MaxSteps && len(frontier) > 0; step++ {
		var next []string
		for _, id := range frontier {
			for _, friend := range graph.Friends(id) {
				if infected[friend] {
					continue
				}
				if rng.Float64() < cfg.ClickProb {
					infected[friend] = true
					next = append(next, friend)
				}
			}
		}
		frontier = next
		res.InfectedPerStep = append(res.InfectedPerStep, len(infected))
	}
	res.TotalInfected = len(infected)
	return res
}
