package attacks

import (
	"fmt"
	"testing"

	"repro/internal/collusion"
	"repro/internal/platform"

	"repro/internal/workload"
)

type world struct {
	scenario *workload.Scenario
	ni       *workload.NetworkInstance
	client   *platform.LocalClient
}

func newWorld(t *testing.T) *world {
	t.Helper()
	s, err := workload.BuildScenario(workload.Options{
		Scale:      2000,
		MinMembers: 60,
		Networks:   []string{"mg-likers.com"},
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Organic (non-member) users so friend enumeration reaches beyond
	// the pool.
	for i := 0; i < 200; i++ {
		s.Platform.Graph.CreateAccount(fmt.Sprintf("organic-%d", i), "IN", s.Clock.Now())
	}
	s.BuildFriendGraph(8, 5)
	return &world{
		scenario: s,
		ni:       s.Networks[0],
		client:   platform.NewLocalClient(s.Platform),
	}
}

func TestHarvestReadsProfilesAndFriends(t *testing.T) {
	w := newWorld(t)
	res := Harvest(w.client, w.client, w.ni.Net.Pool(), "192.0.2.99")
	if res.TokensTried == 0 || res.TokensLive != res.TokensTried {
		t.Fatalf("tokens: %+v", res)
	}
	if res.ProfilesRead != w.ni.Net.MembershipSize() {
		t.Fatalf("profiles = %d, members = %d", res.ProfilesRead, w.ni.Net.MembershipSize())
	}
	// With an average degree of 8 over a population 4x the pool, the
	// attack must expose non-member friends.
	if res.FriendsEnumerated == 0 {
		t.Fatal("no non-member friends enumerated")
	}
	if res.Reachable <= res.ProfilesRead {
		t.Fatalf("reachable %d not beyond members %d", res.Reachable, res.ProfilesRead)
	}
	if len(res.Countries) == 0 {
		t.Fatal("no geography harvested")
	}
}

func TestHarvestSkipsDeadTokens(t *testing.T) {
	w := newWorld(t)
	// Invalidate half the members' tokens.
	members := w.ni.Net.Pool().Members()
	for i, m := range members {
		if i%2 == 0 {
			w.scenario.Platform.OAuth.InvalidateAccount(m, "sweep")
		}
	}
	res := Harvest(w.client, w.client, w.ni.Net.Pool(), "")
	if res.TokensLive >= res.TokensTried {
		t.Fatalf("dead tokens not skipped: %+v", res)
	}
	if res.ProfilesRead != res.TokensLive {
		t.Fatalf("profiles %d != live %d", res.ProfilesRead, res.TokensLive)
	}
}

// poolWithout wraps a pool hiding the token of certain members, to model
// entries the attacker lost.
type poolWithout struct {
	Pool
	hide map[string]bool
}

func (p poolWithout) Token(id string) (string, bool) {
	if p.hide[id] {
		return "", false
	}
	return p.Pool.Token(id)
}

func TestHarvestToleratesMissingTokens(t *testing.T) {
	w := newWorld(t)
	members := w.ni.Net.Pool().Members()
	hidden := map[string]bool{members[0]: true, members[1]: true}
	res := Harvest(w.client, w.client, poolWithout{Pool: w.ni.Net.Pool(), hide: hidden}, "")
	if res.TokensTried != len(members)-2 {
		t.Fatalf("tried = %d, want %d", res.TokensTried, len(members)-2)
	}
}

func TestPropagateSpreadsAlongFriendEdges(t *testing.T) {
	w := newWorld(t)
	seeds := w.ni.Net.Pool().Members()
	res := Propagate(w.scenario.Platform.Graph, seeds, PropagationConfig{
		ClickProb: 0.5,
		MaxSteps:  8,
		Seed:      1,
	})
	if res.InfectedPerStep[0] != len(seeds) {
		t.Fatalf("step 0 = %d, want %d seeds", res.InfectedPerStep[0], len(seeds))
	}
	if res.TotalInfected <= len(seeds) {
		t.Fatal("no propagation beyond seeds")
	}
	// Cumulative counts are non-decreasing and bounded by population.
	for i := 1; i < len(res.InfectedPerStep); i++ {
		if res.InfectedPerStep[i] < res.InfectedPerStep[i-1] {
			t.Fatalf("infection count decreased at step %d", i)
		}
	}
	if res.TotalInfected > res.Population {
		t.Fatalf("infected %d > population %d", res.TotalInfected, res.Population)
	}
}

func TestPropagateZeroClickProb(t *testing.T) {
	w := newWorld(t)
	seeds := w.ni.Net.Pool().Members()[:5]
	res := Propagate(w.scenario.Platform.Graph, seeds, PropagationConfig{ClickProb: 0, MaxSteps: 5, Seed: 1})
	if res.TotalInfected != 5 {
		t.Fatalf("infected = %d with zero click probability", res.TotalInfected)
	}
}

func TestPropagateDeterministic(t *testing.T) {
	w := newWorld(t)
	seeds := w.ni.Net.Pool().Members()[:10]
	a := Propagate(w.scenario.Platform.Graph, seeds, PropagationConfig{ClickProb: 0.3, MaxSteps: 6, Seed: 42})
	b := Propagate(w.scenario.Platform.Graph, seeds, PropagationConfig{ClickProb: 0.3, MaxSteps: 6, Seed: 42})
	if a.TotalInfected != b.TotalInfected {
		t.Fatalf("non-deterministic: %d vs %d", a.TotalInfected, b.TotalInfected)
	}
}

func TestPropagateDuplicateSeeds(t *testing.T) {
	w := newWorld(t)
	m := w.ni.Net.Pool().Members()[0]
	res := Propagate(w.scenario.Platform.Graph, []string{m, m, m}, PropagationConfig{ClickProb: 0, MaxSteps: 2, Seed: 1})
	if res.InfectedPerStep[0] != 1 {
		t.Fatalf("duplicate seeds counted: %d", res.InfectedPerStep[0])
	}
}

var _ Pool = (*collusion.TokenPool)(nil)
