package scanner

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

var t0 = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	p    *platform.Platform
	srv  *httptest.Server
	scan *Scanner
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := simclock.NewSimulated(t0)
	p := platform.New(clock, nil)
	srv := p.ServeHTTPTest()
	t.Cleanup(srv.Close)
	test := p.Graph.CreateAccount("scanner-test-account", "US", t0)
	post, err := p.Graph.CreatePost(test.ID, "scanner test post", socialgraph.WriteMeta{At: t0})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{p: p, srv: srv, scan: New(srv.URL, test.ID, post.ID)}
}

func (f *fixture) register(t *testing.T, name string, clientFlow, requireSecret bool, lifetime apps.TokenLifetime, perms []string, mau int) apps.App {
	t.Helper()
	return f.p.Apps.Register(apps.Config{
		Name:              name,
		RedirectURI:       "https://" + name + ".example/cb",
		ClientFlowEnabled: clientFlow,
		RequireAppSecret:  requireSecret,
		Lifetime:          lifetime,
		Permissions:       perms,
		MAU:               mau,
		DAU:               mau / 10,
	})
}

func writePerms() []string {
	return []string{apps.PermPublicProfile, apps.PermPublishActions}
}

func (f *fixture) loginURL(app apps.App) string {
	return LoginURL(f.srv.URL, app.ID, app.RedirectURI, app.Permissions)
}

func TestScanSusceptibleLongTerm(t *testing.T) {
	f := newFixture(t)
	app := f.register(t, "htc-sense", true, false, apps.LongTerm, writePerms(), 1_000_000)
	res := f.scan.ScanLoginURL(f.loginURL(app))
	if !res.Susceptible {
		t.Fatalf("not susceptible: %+v", res)
	}
	if !res.LongTerm {
		t.Fatalf("not long-term: %+v", res)
	}
	if res.AppID != app.ID {
		t.Fatalf("AppID = %q", res.AppID)
	}
	if res.ExpiresIn != apps.LongTermDuration {
		t.Fatalf("ExpiresIn = %v", res.ExpiresIn)
	}
}

func TestScanSusceptibleShortTerm(t *testing.T) {
	f := newFixture(t)
	app := f.register(t, "short-app", true, false, apps.ShortTerm, writePerms(), 1000)
	res := f.scan.ScanLoginURL(f.loginURL(app))
	if !res.Susceptible || res.LongTerm {
		t.Fatalf("res = %+v", res)
	}
}

func TestScanClientFlowDisabled(t *testing.T) {
	f := newFixture(t)
	app := f.register(t, "secure-app", false, false, apps.LongTerm, writePerms(), 1000)
	res := f.scan.ScanLoginURL(f.loginURL(app))
	if res.Susceptible {
		t.Fatalf("server-side-only app marked susceptible: %+v", res)
	}
	if !strings.Contains(res.Reason, "client-side flow") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestScanSecretRequired(t *testing.T) {
	f := newFixture(t)
	app := f.register(t, "proofed-app", true, true, apps.LongTerm, writePerms(), 1000)
	res := f.scan.ScanLoginURL(f.loginURL(app))
	if res.Susceptible {
		t.Fatalf("secret-proof app marked susceptible: %+v", res)
	}
	if !strings.Contains(res.Reason, "secret") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestScanReadOnlyApp(t *testing.T) {
	f := newFixture(t)
	app := f.register(t, "readonly-app", true, false, apps.LongTerm,
		[]string{apps.PermPublicProfile}, 1000)
	res := f.scan.ScanLoginURL(f.loginURL(app))
	if res.Susceptible {
		t.Fatalf("read-only app marked susceptible: %+v", res)
	}
	if !strings.Contains(res.Reason, "write failed") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestScanGarbageURL(t *testing.T) {
	f := newFixture(t)
	res := f.scan.ScanLoginURL("://not-a-url")
	if res.Susceptible || res.Reason == "" {
		t.Fatalf("res = %+v", res)
	}
}

func TestScanAllAndSummarize(t *testing.T) {
	f := newFixture(t)
	specs := []struct {
		name          string
		clientFlow    bool
		requireSecret bool
		lifetime      apps.TokenLifetime
		mau           int
	}{
		{"spotify-like", true, false, apps.LongTerm, 50_000_000},
		{"psn-like", true, false, apps.LongTerm, 5_000_000},
		{"short-1", true, false, apps.ShortTerm, 4_000_000},
		{"short-2", true, false, apps.ShortTerm, 3_000_000},
		{"locked-1", false, false, apps.LongTerm, 2_000_000},
		{"locked-2", true, true, apps.LongTerm, 1_000_000},
	}
	var entries []AppDirectoryEntry
	for _, sp := range specs {
		app := f.register(t, sp.name, sp.clientFlow, sp.requireSecret, sp.lifetime, writePerms(), sp.mau)
		entries = append(entries, AppDirectoryEntry{App: app, LoginURL: f.loginURL(app)})
	}
	results := f.scan.ScanAll(entries)
	if len(results) != len(specs) {
		t.Fatalf("results = %d", len(results))
	}
	sum := Summarize(results)
	if sum.Scanned != 6 || sum.Susceptible != 4 || sum.SusceptibleLongTerm != 2 || sum.SusceptibleShortTerm != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	long := LongTermSusceptible(results)
	if len(long) != 2 {
		t.Fatalf("long-term susceptible = %d", len(long))
	}
	if long[0].Name != "spotify-like" || long[1].Name != "psn-like" {
		t.Fatalf("order = %s, %s", long[0].Name, long[1].Name)
	}
	if long[0].MAU != 50_000_000 {
		t.Fatalf("metadata not carried: %+v", long[0])
	}
}

// The scanner's write probe is re-runnable: each scan publishes a fresh
// probe post, so repeated scans of the same app do not collide on a
// duplicate like.
func TestScanRepeatedRuns(t *testing.T) {
	f := newFixture(t)
	app := f.register(t, "again-app", true, false, apps.LongTerm, writePerms(), 1000)
	for i := 0; i < 3; i++ {
		res := f.scan.ScanLoginURL(f.loginURL(app))
		if !res.Susceptible {
			t.Fatalf("scan %d: %+v", i, res)
		}
	}
}
