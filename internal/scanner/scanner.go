// Package scanner implements the application-scanning tool of Section 2.2:
// given a third-party application's login URL, it walks the OAuth flow on
// a disposable test account, attempts to retrieve an access token at the
// client side, and then tries to *use* that token — fetching the test
// account's profile and liking a test post — without presenting an
// application secret. An application for which all steps succeed can be
// exploited for reputation manipulation with leaked tokens.
//
// The paper's run of this tool over the top 100 Facebook applications
// found 55 susceptible apps, 9 of which were issued long-term tokens
// (Table 1).
package scanner

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
)

// Result is the scanner's verdict on one application.
type Result struct {
	AppID string
	Name  string
	// Susceptible is true when a client-side token was retrieved and
	// successfully used for a write without an application secret.
	Susceptible bool
	// Reason explains a negative verdict ("client-side flow disabled",
	// "appsecret_proof required", ...).
	Reason string
	// LongTerm reports whether the issued token's lifetime exceeds one
	// day (the paper's short-term tokens lasted 1–2 h, long-term ~60 d).
	LongTerm bool
	// ExpiresIn is the reported token lifetime.
	ExpiresIn time.Duration
	MAU       int
	DAU       int
}

// Scanner drives the platform's HTTP surface.
type Scanner struct {
	platformURL string
	http        *http.Client
	// TestAccountID is the disposable account the scanner installs apps
	// on; TestPostID is the post it tries to like.
	TestAccountID string
	TestPostID    string
}

// New returns a scanner bound to the platform at platformURL, using the
// given test account and post.
func New(platformURL, testAccountID, testPostID string) *Scanner {
	return &Scanner{
		platformURL:   strings.TrimRight(platformURL, "/"),
		TestAccountID: testAccountID,
		TestPostID:    testPostID,
		http: &http.Client{
			Timeout: 30 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
}

// LoginURL builds an application's public login URL — the artifact the
// scanner starts from, mirroring how real apps publish "Login with
// Facebook" links that embed client_id and redirect_uri.
func LoginURL(platformURL, appID, redirectURI string, scopes []string) string {
	q := url.Values{}
	q.Set("client_id", appID)
	q.Set("redirect_uri", redirectURI)
	q.Set("response_type", "token")
	q.Set("scope", strings.Join(scopes, ","))
	return strings.TrimRight(platformURL, "/") + "/dialog/oauth?" + q.Encode()
}

// ScanLoginURL runs the full probe against one application login URL. The
// app's identity is inferred from the URL's client_id parameter.
func (s *Scanner) ScanLoginURL(loginURL string) Result {
	u, err := url.Parse(loginURL)
	if err != nil {
		return Result{Reason: fmt.Sprintf("unparseable login URL: %v", err)}
	}
	q := u.Query()
	res := Result{AppID: q.Get("client_id")}

	// Step 1: install the application on the test account with the full
	// permission set the app was approved for, via the client-side flow.
	q.Set("account_id", s.TestAccountID)
	u.RawQuery = q.Encode()
	resp, err := s.http.Get(u.String())
	if err != nil {
		res.Reason = fmt.Sprintf("dialog request failed: %v", err)
		return res
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		res.Reason = "client-side flow rejected by authorization server"
		return res
	}

	// Step 2: monitor the redirection and retrieve the token from the
	// fragment (the "view-source" position of Figure 3).
	loc, err := url.Parse(resp.Header.Get("Location"))
	if err != nil {
		res.Reason = "unparseable redirect"
		return res
	}
	frag, err := url.ParseQuery(loc.Fragment)
	if err != nil || frag.Get("access_token") == "" {
		res.Reason = "no access token exposed at client side"
		return res
	}
	token := frag.Get("access_token")
	if secs, err := strconv.ParseInt(frag.Get("expires_in"), 10, 64); err == nil {
		res.ExpiresIn = time.Duration(secs) * time.Second
		res.LongTerm = res.ExpiresIn > 24*time.Hour
	}

	// Step 3: use the token without an application secret — first a
	// profile read, then a write (publishing and liking a probe post).
	if ok, why := s.tryMe(token); !ok {
		res.Reason = "token unusable without secret: " + why
		return res
	}
	if ok, why := s.tryWrite(token); !ok {
		res.Reason = "write failed without secret: " + why
		return res
	}
	res.Susceptible = true
	return res
}

func (s *Scanner) tryMe(token string) (bool, string) {
	resp, err := s.http.Get(s.platformURL + "/me?access_token=" + url.QueryEscape(token))
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("HTTP %d", resp.StatusCode)
	}
	return true, ""
}

// tryWrite exercises the write path with the leaked token: it publishes a
// fresh probe post on the test account and then likes it. Using a fresh
// post per scan keeps the probe re-runnable (liking a fixed post would
// collide with a previous scan's like). If publishing is refused the probe
// falls back to liking the configured test post.
func (s *Scanner) tryWrite(token string) (bool, string) {
	target := s.TestPostID
	pform := url.Values{"access_token": {token}, "message": {"scanner probe post"}}
	presp, err := s.http.PostForm(s.platformURL+"/me/feed", pform)
	if err != nil {
		return false, err.Error()
	}
	if presp.StatusCode == http.StatusOK {
		var body struct {
			ID string `json:"id"`
		}
		err := json.NewDecoder(presp.Body).Decode(&body)
		presp.Body.Close()
		if err == nil && body.ID != "" {
			target = body.ID
		}
	} else {
		presp.Body.Close()
	}
	form := url.Values{"access_token": {token}}
	resp, err := s.http.PostForm(s.platformURL+"/"+target+"/likes", form)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("HTTP %d", resp.StatusCode)
	}
	return true, ""
}

// AppDirectoryEntry pairs an app with its login URL, as a leaderboard
// crawl would produce.
type AppDirectoryEntry struct {
	App      apps.App
	LoginURL string
}

// ScanAll probes every directory entry and fills in name/MAU metadata
// from the directory.
func (s *Scanner) ScanAll(entries []AppDirectoryEntry) []Result {
	out := make([]Result, 0, len(entries))
	for _, e := range entries {
		r := s.ScanLoginURL(e.LoginURL)
		r.Name = e.App.Name
		r.MAU = e.App.MAU
		r.DAU = e.App.DAU
		if r.AppID == "" {
			r.AppID = e.App.ID
		}
		out = append(out, r)
	}
	return out
}

// Summary aggregates scan results into the Section 2.2 headline numbers.
type Summary struct {
	Scanned              int
	Susceptible          int
	SusceptibleShortTerm int
	SusceptibleLongTerm  int
}

// Summarize computes the Summary over results.
func Summarize(results []Result) Summary {
	var sum Summary
	sum.Scanned = len(results)
	for _, r := range results {
		if !r.Susceptible {
			continue
		}
		sum.Susceptible++
		if r.LongTerm {
			sum.SusceptibleLongTerm++
		} else {
			sum.SusceptibleShortTerm++
		}
	}
	return sum
}

// LongTermSusceptible filters results to the Table 1 rows: susceptible
// apps issued long-term tokens, ordered by descending MAU.
func LongTermSusceptible(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Susceptible && r.LongTerm {
			out = append(out, r)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].MAU > out[j-1].MAU; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
