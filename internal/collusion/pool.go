package collusion

import (
	"math/rand"
	"sync"
	"time"
)

// tokenEntry is one member's pooled access token.
type tokenEntry struct {
	accountID string
	token     string
	addedAt   time.Time
	// usage holds recent usage timestamps for the hourly spread cap;
	// pruned lazily.
	usage []time.Time
}

// TokenPool is the collusion network's database of member access tokens.
// One live token is kept per member account; resubmission replaces the
// stored token (members refresh short-term tokens every 1–2 hours). The
// pool supports the sampling disciplines the delivery engine needs:
// uniform random over all members, or a most-recently-added "hot set".
type TokenPool struct {
	mu      sync.Mutex
	entries map[string]*tokenEntry // by accountID
	order   []string               // accountIDs, insertion order (oldest first)
}

// NewTokenPool returns an empty pool.
func NewTokenPool() *TokenPool {
	return &TokenPool{entries: make(map[string]*tokenEntry)}
}

// Put stores or refreshes a member's token.
func (p *TokenPool) Put(accountID, token string, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[accountID]; ok {
		e.token = token
		e.addedAt = now
		return
	}
	p.entries[accountID] = &tokenEntry{accountID: accountID, token: token, addedAt: now}
	p.order = append(p.order, accountID)
}

// Remove drops a member's token (dead token discovered on use). It
// reports whether the member was present.
func (p *TokenPool) Remove(accountID string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.entries[accountID]; !ok {
		return false
	}
	delete(p.entries, accountID)
	for i, id := range p.order {
		if id == accountID {
			p.order = append(p.order[:i:i], p.order[i+1:]...)
			break
		}
	}
	return true
}

// Size returns the number of pooled members.
func (p *TokenPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Sampled is one drawn token.
type Sampled struct {
	AccountID string
	Token     string
}

// Sample draws up to n distinct member tokens. Members in exclude are
// skipped, as are members already used maxHourly times in the trailing
// hour (their usage is recorded on draw). When hotSet > 0 the draw
// prefers the hotSet most recently added members (the cheap discipline
// that token rate limits punish); otherwise it is uniform over the pool.
func (p *TokenPool) Sample(rng *rand.Rand, n int, exclude map[string]bool, maxHourly int, hotSet int, now time.Time) []Sampled {
	p.mu.Lock()
	defer p.mu.Unlock()
	candidates := p.order
	if hotSet > 0 && len(candidates) > hotSet {
		candidates = candidates[len(candidates)-hotSet:]
	}
	// Draw a random permutation lazily: shuffle a copy of the candidate
	// index space and walk it until n usable tokens are found.
	idx := rng.Perm(len(candidates))
	out := make([]Sampled, 0, n)
	cutoff := now.Add(-time.Hour)
	for _, i := range idx {
		if len(out) == n {
			break
		}
		id := candidates[i]
		if exclude[id] {
			continue
		}
		e := p.entries[id]
		// Prune usage older than an hour.
		live := e.usage[:0]
		for _, u := range e.usage {
			if u.After(cutoff) {
				live = append(live, u)
			}
		}
		e.usage = live
		if maxHourly > 0 && len(e.usage) >= maxHourly {
			continue
		}
		e.usage = append(e.usage, now)
		out = append(out, Sampled{AccountID: id, Token: e.token})
	}
	return out
}

// Members returns all pooled member account IDs in insertion order.
func (p *TokenPool) Members() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// Contains reports whether the member has a pooled token.
func (p *TokenPool) Contains(accountID string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[accountID]
	return ok
}

// Token returns the pooled token for a member, if any.
func (p *TokenPool) Token(accountID string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[accountID]
	if !ok {
		return "", false
	}
	return e.token, true
}
