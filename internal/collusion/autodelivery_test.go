package collusion

import (
	"testing"

	"repro/internal/socialgraph"
)

func autoHarness(t *testing.T) (*harness, socialgraph.Account) {
	t.Helper()
	h := newHarness(t, Config{
		LikesPerRequest: 10,
		PremiumPlans: []Plan{
			{Name: "gold", PriceUSD: 29.99, LikesPerPost: 25, AutoDelivery: true},
		},
	}, 60)
	subscriber := h.members[0]
	if err := h.network.BuyPlan(subscriber.ID, "gold"); err != nil {
		t.Fatal(err)
	}
	return h, subscriber
}

func TestAutoDeliveryLikesFreshPosts(t *testing.T) {
	h, subscriber := autoHarness(t)
	if h.network.AutoSubscribers() != 1 {
		t.Fatalf("subscribers = %d", h.network.AutoSubscribers())
	}
	p1 := h.post(t, subscriber)
	p2 := h.post(t, subscriber)
	served := h.network.RunAutoDelivery()
	if served != 2 {
		t.Fatalf("served = %d, want 2", served)
	}
	for _, p := range []socialgraph.Post{p1, p2} {
		if got := h.p.Graph.LikeCount(p.ID); got != 25 {
			t.Fatalf("post %s likes = %d, want plan quota 25", p.ID, got)
		}
	}
	// Non-subscribers' posts are untouched.
	other := h.post(t, h.members[1])
	h.network.RunAutoDelivery()
	if got := h.p.Graph.LikeCount(other.ID); got != 0 {
		t.Fatalf("non-subscriber post got %d auto likes", got)
	}
}

func TestAutoDeliveryIdempotentPerPost(t *testing.T) {
	h, subscriber := autoHarness(t)
	p := h.post(t, subscriber)
	if served := h.network.RunAutoDelivery(); served != 1 {
		t.Fatalf("first run served %d", served)
	}
	if served := h.network.RunAutoDelivery(); served != 0 {
		t.Fatalf("second run served %d, want 0", served)
	}
	if got := h.p.Graph.LikeCount(p.ID); got != 25 {
		t.Fatalf("likes = %d after double run", got)
	}
	// A new post gets served on the next cycle.
	p2 := h.post(t, subscriber)
	if served := h.network.RunAutoDelivery(); served != 1 {
		t.Fatalf("third run served %d", served)
	}
	if got := h.p.Graph.LikeCount(p2.ID); got != 25 {
		t.Fatalf("new post likes = %d", got)
	}
}

func TestAutoDeliveryStopsOnDeadToken(t *testing.T) {
	h, subscriber := autoHarness(t)
	_ = h.post(t, subscriber)
	// The subscriber's own token dies (e.g. invalidation sweep): the feed
	// poll fails and nothing is served, without panics or pool churn.
	h.p.OAuth.InvalidateAccount(subscriber.ID, "sweep")
	if served := h.network.RunAutoDelivery(); served != 0 {
		t.Fatalf("served %d with a dead subscriber token", served)
	}
}

func TestAutoDeliveryNoSubscribers(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5}, 10)
	_ = h.post(t, h.members[0])
	if served := h.network.RunAutoDelivery(); served != 0 {
		t.Fatalf("served %d without subscribers", served)
	}
}
