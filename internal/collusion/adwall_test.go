package collusion

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
)

func adWallHarness(t *testing.T) *harness {
	t.Helper()
	return newHarness(t, Config{
		LikesPerRequest: 8,
		AdWallHops:      3,
		AdsPerVisit:     2,
		PremiumPlans: []Plan{
			{Name: "gold", PriceUSD: 9.99, LikesPerPost: 20, AutoDelivery: true},
		},
	}, 30)
}

func TestAdWallGatesRequests(t *testing.T) {
	h := adWallHarness(t)
	m := h.members[0]
	post := h.post(t, m)
	if _, err := h.network.RequestLikes(m.ID, post.ID, ""); !errors.Is(err, ErrAdWallRequired) {
		t.Fatalf("ungated request err = %v", err)
	}
	if err := h.network.CompleteAdWall(m.ID); err != nil {
		t.Fatal(err)
	}
	delivered, err := h.network.RequestLikes(m.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 8 {
		t.Fatalf("delivered = %d", delivered)
	}
	// The chain served 3 hops × 2 impressions.
	if got := h.network.Stats().AdImpressions; got != 6 {
		t.Fatalf("AdImpressions = %d, want 6", got)
	}
	// One pass buys one request.
	post2 := h.post(t, m)
	if _, err := h.network.RequestLikes(m.ID, post2.ID, ""); !errors.Is(err, ErrAdWallRequired) {
		t.Fatalf("second request without new chain err = %v", err)
	}
}

func TestAdWallPremiumBypass(t *testing.T) {
	h := adWallHarness(t)
	m := h.members[1]
	if err := h.network.BuyPlan(m.ID, "gold"); err != nil {
		t.Fatal(err)
	}
	post := h.post(t, m)
	if _, err := h.network.RequestLikes(m.ID, post.ID, ""); err != nil {
		t.Fatalf("premium member hit the ad wall: %v", err)
	}
}

func TestAdWallNoopWhenDisabled(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5}, 10)
	if err := h.network.CompleteAdWall(h.members[0].ID); err != nil {
		t.Fatal(err)
	}
	if got := h.network.Stats().AdImpressions; got != 0 {
		t.Fatalf("no-wall impressions = %d", got)
	}
}

func TestAdWallPlusCaptchaAutomation(t *testing.T) {
	// The full friction stack — ad wall AND captcha — must not burn the
	// ad-wall pass on a captcha failure.
	h := newHarness(t, Config{
		LikesPerRequest: 5,
		AdWallHops:      2,
		AdsPerVisit:     1,
		CaptchaRequired: true,
	}, 20)
	m := h.members[0]
	post := h.post(t, m)
	if err := h.network.CompleteAdWall(m.ID); err != nil {
		t.Fatal(err)
	}
	// Pass held, but no captcha answer yet: the request fails without
	// consuming the pass.
	if _, err := h.network.RequestLikes(m.ID, post.ID, ""); !errors.Is(err, ErrCaptchaRequired) {
		t.Fatalf("err = %v", err)
	}
	challenge := h.network.Challenge(m.ID)
	var a, b int
	mustSscanf(t, challenge, &a, &b)
	delivered, err := h.network.RequestLikes(m.ID, post.ID, itoa(a+b))
	if err != nil {
		t.Fatalf("gated request after solving both: %v", err)
	}
	if delivered != 5 {
		t.Fatalf("delivered = %d", delivered)
	}
}

func mustSscanf(t *testing.T, challenge string, a, b *int) {
	t.Helper()
	if _, err := fmt.Sscanf(challenge, "%d+%d=", a, b); err != nil {
		t.Fatalf("challenge %q: %v", challenge, err)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
