package collusion

import "context"

// Premium auto-delivery (Sec. 5.1): paid plans "automatically provide
// likes without requiring users to manually login to collusion network
// sites for each request". The network holds the subscriber's token, so
// it can poll the member's feed through the Graph API and deliver likes
// to every fresh post.

// RunAutoDelivery polls every auto-delivery subscriber's feed and
// delivers their plan's like quota to posts it has not served yet. It
// returns the number of posts served. Callers drive it on their own
// cadence (the simulation's hourly loop).
func (n *Network) RunAutoDelivery() int {
	n.mu.Lock()
	type sub struct {
		accountID string
		plan      Plan
	}
	var subs []sub
	for id, plan := range n.premium {
		if plan.AutoDelivery && !n.banned[id] {
			subs = append(subs, sub{accountID: id, plan: plan})
		}
	}
	if n.autoServed == nil {
		n.autoServed = make(map[string]bool)
	}
	n.mu.Unlock()

	served := 0
	for _, s := range subs {
		token, ok := n.pool.Token(s.accountID)
		if !ok {
			continue // token lost; the member must resubmit
		}
		posts, err := n.client.FeedOf(token)
		if err != nil {
			continue // dead token or transient failure; retry next cycle
		}
		for _, p := range posts {
			n.mu.Lock()
			done := n.autoServed[p.ID]
			if !done {
				n.autoServed[p.ID] = true
			}
			n.mu.Unlock()
			if done {
				continue
			}
			quota := s.plan.LikesPerPost
			if quota <= 0 {
				quota = n.cfg.LikesPerRequest
			}
			ctx, span := n.obs.T().StartSpan(nil, "collusion.autodeliver")
			span.SetAttr("network", n.cfg.Name)
			span.SetAttr("subscriber", s.accountID)
			tgt := n.primary()
			n.deliver(ctx, tgt, quota, s.accountID, false, p.ID, func(ctx context.Context, smp Sampled, ip string) error {
				return n.like(ctx, tgt, smp.Token, p.ID, ip)
			})
			span.End()
			served++
		}
	}
	return served
}

// AutoSubscribers reports how many members are on auto-delivery plans.
func (n *Network) AutoSubscribers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for _, plan := range n.premium {
		if plan.AutoDelivery {
			count++
		}
	}
	return count
}
