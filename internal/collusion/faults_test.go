package collusion

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/platform"
	"repro/internal/socialgraph"
)

// flakyClient wraps a platform client, failing a configurable fraction of
// like calls with transport-level errors (not Graph API errors) — the
// kind of flakiness a delivery engine sees against a real network.
type flakyClient struct {
	platform.Client
	mu       sync.Mutex
	failEach int // fail every Nth like
	calls    int
}

var errTransport = errors.New("transport: connection reset by peer")

func (f *flakyClient) Like(token, objectID, ip string) error {
	f.mu.Lock()
	f.calls++
	fail := f.failEach > 0 && f.calls%f.failEach == 0
	f.mu.Unlock()
	if fail {
		return errTransport
	}
	return f.Client.Like(token, objectID, ip)
}

func TestDeliveryToleratesTransportFaults(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 40}, 120)
	flaky := &flakyClient{Client: h.client, failEach: 5}
	n := NewNetwork(Config{
		Name:            "flaky-liker.net",
		AppID:           h.app.ID,
		AppRedirectURI:  h.app.RedirectURI,
		LikesPerRequest: 40,
	}, h.clock, flaky)
	// Re-pool the members into the new network.
	for _, m := range h.members {
		tok, err := h.client.AuthorizeImplicit(h.app.ID, h.app.RedirectURI, m.ID,
			[]string{"public_profile", "publish_actions"})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SubmitToken(m.ID, tok); err != nil {
			t.Fatal(err)
		}
	}
	requester := h.members[0]
	post := h.post(t, requester)
	delivered, err := n.RequestLikes(requester.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	// 20% of calls fail in transport; the retry budget recovers the
	// quota anyway.
	if delivered != 40 {
		t.Fatalf("delivered = %d under 20%% transport faults", delivered)
	}
	// Transport errors carry no Graph API code: the members must NOT be
	// dropped from the pool (only dead tokens are).
	if n.MembershipSize() != 120 {
		t.Fatalf("membership = %d; transport faults evicted members", n.MembershipSize())
	}
	st := n.Stats()
	if st.FailuresByCode[0] == 0 {
		t.Fatal("transport failures not recorded under code 0")
	}
	if st.TokensDropped != 0 {
		t.Fatalf("TokensDropped = %d", st.TokensDropped)
	}
}

func TestDeliveryAllTransportDown(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 10}, 30)
	flaky := &flakyClient{Client: h.client, failEach: 1} // everything fails
	n := NewNetwork(Config{
		Name:            "down-liker.net",
		AppID:           h.app.ID,
		AppRedirectURI:  h.app.RedirectURI,
		LikesPerRequest: 10,
	}, h.clock, flaky)
	for _, m := range h.members[:15] {
		tok, err := h.client.AuthorizeImplicit(h.app.ID, h.app.RedirectURI, m.ID,
			[]string{"public_profile", "publish_actions"})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SubmitToken(m.ID, tok); err != nil {
			t.Fatal(err)
		}
	}
	requester := h.members[0]
	post := h.post(t, requester)
	delivered, err := n.RequestLikes(requester.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered = %d with transport fully down", delivered)
	}
	if n.MembershipSize() != 15 {
		t.Fatalf("membership = %d", n.MembershipSize())
	}
}

func TestConcurrentRequests(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 20}, 200)
	// Many members request likes concurrently; the engine must stay
	// consistent (no double-spent samples, coherent stats).
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := h.members[i]
			post, err := h.p.Graph.CreatePost(m.ID, "concurrent post",
				socialgraph.WriteMeta{At: h.clock.Now()})
			if err != nil {
				errs <- err
				return
			}
			if _, err := h.network.RequestLikes(m.ID, post.ID, ""); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := h.network.Stats()
	if st.LikeRequests != 20 {
		t.Fatalf("LikeRequests = %d", st.LikeRequests)
	}
	if st.LikesDelivered == 0 {
		t.Fatal("nothing delivered under concurrency")
	}
	if st.LikesDelivered > st.LikesAttempted {
		t.Fatalf("delivered %d > attempted %d", st.LikesDelivered, st.LikesAttempted)
	}
}
