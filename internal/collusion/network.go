package collusion

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/provider"
	"repro/internal/simclock"
)

// Errors returned by the member-facing operations.
var (
	ErrOutage          = errors.New("collusion: site is down")
	ErrBanned          = errors.New("collusion: account banned for suspicious request behaviour")
	ErrNotMember       = errors.New("collusion: no token on file; submit your access token first")
	ErrDailyLimit      = errors.New("collusion: daily request limit reached")
	ErrTooSoon         = errors.New("collusion: wait before submitting another request")
	ErrCaptchaRequired = errors.New("collusion: CAPTCHA answer required")
	ErrCaptchaWrong    = errors.New("collusion: CAPTCHA answer wrong")
	ErrAdWallRequired  = errors.New("collusion: complete the ad redirect chain before requesting")
	ErrBadToken        = errors.New("collusion: submitted access token did not verify")
	ErrNoComments      = errors.New("collusion: this network does not provide auto-comments")
	ErrUnknownPlan     = errors.New("collusion: unknown premium plan")
	ErrAdblock         = errors.New("collusion: disable your ad-blocker to use this site")
)

// Stats aggregates the engine's activity for the measurement harness.
// The Cross* fields count activity against linked companion platforms
// (see LinkPlatform); everything else is primary-platform activity, so
// single-platform runs are byte-identical with or without the fields.
type Stats struct {
	Visits            int64
	AdImpressions     int64
	TokensCollected   int64
	TokensDropped     int64
	LikeRequests      int64
	CommentRequests   int64
	LikesAttempted    int64
	LikesDelivered    int64
	CommentsDelivered int64
	RevenueUSD        float64
	FailuresByCode    map[int]int64
	Adapted           bool

	CrossTokensCollected int64
	CrossTokensDropped   int64
	CrossLikeRequests    int64
	CrossLikesAttempted  int64
	CrossLikesDelivered  int64
}

// target identifies the platform surface one delivery burst fires at: the
// transport views, the token pool sampled, and whether the burst counts
// as cross-platform activity. The primary platform and every linked
// companion platform are both expressed as targets, so the delivery
// engine — sampling, attempt budget, batching, outcome bookkeeping — is
// written once and runs identically against either.
type target struct {
	name        string // platform name; "" for the primary platform
	client      platform.Client
	ctxClient   platform.ContextClient
	batchClient platform.BatchClient
	pool        *TokenPool
	cross       bool
}

// Network is one collusion network instance: token pool plus delivery
// engine plus site rules. It is safe for concurrent use.
type Network struct {
	cfg    Config
	clock  simclock.Clock
	client platform.Client
	// ctxClient is client's ContextClient view when the transport supports
	// trace propagation (both built-in transports do), else nil.
	ctxClient platform.ContextClient
	// batchClient is client's BatchClient view when the transport can
	// deliver homogeneous like bursts in one call, else nil. Delivery
	// falls back to per-call likes when nil or when the config disables
	// batching.
	batchClient platform.BatchClient
	epoch       time.Time

	// Telemetry, wired by SetObserver; all instruments are nil-safe
	// no-ops until then. Counters are pre-bound to this network's name so
	// the per-like path skips the label lookup.
	obs            *obs.Observer
	likesDelivered *obs.BoundCounter // collusion_likes_delivered_total{network}
	likesAttempted *obs.BoundCounter // collusion_likes_attempted_total{network}
	commentsSent   *obs.BoundCounter // collusion_comments_delivered_total{network}
	tokensDropped  *obs.BoundCounter // collusion_tokens_dropped_total{network}

	mu            sync.Mutex
	rng           *rand.Rand
	pool          *TokenPool
	reqDay        map[string]int64 // member -> day index of reqCount
	reqCount      map[string]int
	lastReq       map[string]time.Time
	captcha       map[string]captchaChallenge
	premium       map[string]Plan
	rateLimitDays map[int64]bool
	adapted       bool
	stats         Stats
	// Honeypot detector state: per-member per-day request counts and the
	// set of suspicious days observed; banned members are locked out.
	hpDay     map[string]int64
	hpCount   map[string]int
	hpStrikes map[string]int
	banned    map[string]bool
	// autoServed tracks posts already handled by premium auto-delivery.
	autoServed map[string]bool
	// adWallPass holds one-request allowances earned by completing the
	// ad redirect chain.
	adWallPass map[string]bool
	// cross holds the linked companion platforms, keyed by platform name
	// (see LinkPlatform in cross.go).
	cross map[string]*crossBinding
}

// primary returns the target for the network's home platform.
func (n *Network) primary() target {
	return target{
		client:      n.client,
		ctxClient:   n.ctxClient,
		batchClient: n.batchClient,
		pool:        n.pool,
	}
}

type captchaChallenge struct {
	a, b int
}

// NewNetwork builds a collusion network backed by the given platform
// client. The construction instant becomes day 0 for outage scheduling.
func NewNetwork(cfg Config, clock simclock.Clock, client platform.Client) *Network {
	cfg = cfg.withDefaults()
	ctxClient, _ := client.(platform.ContextClient)
	batchClient, _ := client.(platform.BatchClient)
	return &Network{
		cfg:           cfg,
		clock:         clock,
		client:        client,
		ctxClient:     ctxClient,
		batchClient:   batchClient,
		epoch:         clock.Now(),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		pool:          NewTokenPool(),
		reqDay:        make(map[string]int64),
		reqCount:      make(map[string]int),
		lastReq:       make(map[string]time.Time),
		captcha:       make(map[string]captchaChallenge),
		premium:       make(map[string]Plan),
		rateLimitDays: make(map[int64]bool),
		stats:         Stats{FailuresByCode: make(map[int]int64)},
		hpDay:         make(map[string]int64),
		hpCount:       make(map[string]int),
		hpStrikes:     make(map[string]int),
		banned:        make(map[string]bool),
		adWallPass:    make(map[string]bool),
	}
}

// CompleteAdWall walks the member through the ad redirect chain: every
// hop serves AdsPerVisit impressions, and completing the chain earns an
// allowance for exactly one like/comment request.
func (n *Network) CompleteAdWall(accountID string) error {
	if n.down(n.clock.Now()) {
		return ErrOutage
	}
	if n.Banned(accountID) {
		return ErrBanned
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.AdWallHops <= 0 {
		return nil // no wall configured: a no-op courtesy
	}
	n.stats.AdImpressions += int64(n.cfg.AdWallHops * n.cfg.AdsPerVisit)
	n.adWallPass[accountID] = true
	return nil
}

// SetObserver wires telemetry: per-network delivery counters (the
// likes-by-network series behind Figures 4 and 5) and a span per delivery
// burst, with each like joining the burst's trace through the client's
// ContextClient view.
func (n *Network) SetObserver(o *obs.Observer) {
	n.obs = o
	n.likesDelivered = o.M().Counter("collusion_likes_delivered_total",
		"Likes successfully delivered, by collusion network.", "network").With(n.cfg.Name)
	n.likesAttempted = o.M().Counter("collusion_likes_attempted_total",
		"Like attempts fired at the Graph API, by collusion network.", "network").With(n.cfg.Name)
	n.commentsSent = o.M().Counter("collusion_comments_delivered_total",
		"Comments successfully delivered, by collusion network.", "network").With(n.cfg.Name)
	n.tokensDropped = o.M().Counter("collusion_tokens_dropped_total",
		"Dead tokens purged from the pool after delivery failures, by collusion network.", "network").With(n.cfg.Name)
}

// Name returns the network's domain name.
func (n *Network) Name() string { return n.cfg.Name }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Pool exposes the token pool (the measurement harness samples its size).
func (n *Network) Pool() *TokenPool { return n.pool }

// day returns the simulation day index of t.
func (n *Network) day(t time.Time) int64 {
	return int64(t.Sub(n.epoch) / (24 * time.Hour))
}

// down reports whether the site is in a scheduled outage at t.
func (n *Network) down(t time.Time) bool {
	d := n.day(t)
	for _, od := range n.cfg.OutageDays {
		if int64(od) == d {
			return true
		}
	}
	return false
}

// InstallURL returns the dialog URL members are redirected to when they
// click the "install application" button (step 1 of Figure 3).
func (n *Network) InstallURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return fmt.Sprintf("/dialog/oauth?client_id=%s&redirect_uri=%s&response_type=token", n.cfg.AppID, n.cfg.AppRedirectURI)
}

// SwitchApp repoints the network at a different susceptible application —
// the operator move the paper warns about: "collusion networks can (and
// do sometimes) switch between existing legitimate applications" when
// one is disrupted. The install link changes immediately; tokens already
// pooled keep working until they die, and returning members resubmit
// tokens for the new app.
func (n *Network) SwitchApp(appID, redirectURI string) {
	n.mu.Lock()
	n.cfg.AppID = appID
	n.cfg.AppRedirectURI = redirectURI
	n.mu.Unlock()
}

// Visit records a member landing on the site, serving ads. adblock
// reports whether the visitor runs an ad blocker; anti-adblock walls
// refuse such visitors (Sec. 5.1).
func (n *Network) Visit(adblock bool) error {
	if n.down(n.clock.Now()) {
		return ErrOutage
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if adblock && n.cfg.RequireAdblockOff {
		return ErrAdblock
	}
	n.stats.Visits++
	if !adblock {
		n.stats.AdImpressions += int64(n.cfg.AdsPerVisit)
	}
	return nil
}

// SubmitToken is step 3 of Figure 3: a member pastes the access token
// copied from the address bar. The network verifies it with a /me call
// before pooling it.
func (n *Network) SubmitToken(accountID, token string) error {
	now := n.clock.Now()
	if n.down(now) {
		return ErrOutage
	}
	n.mu.Lock()
	if n.banned[accountID] {
		n.mu.Unlock()
		return ErrBanned
	}
	n.mu.Unlock()
	profile, err := n.client.Me(token, n.pickIP())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	if profile.ID != accountID {
		return fmt.Errorf("%w: token belongs to %s", ErrBadToken, profile.ID)
	}
	n.pool.Put(accountID, token, now)
	n.mu.Lock()
	n.stats.TokensCollected++
	n.mu.Unlock()
	return nil
}

// Challenge issues a CAPTCHA for the member's next request and returns
// its question.
func (n *Network) Challenge(accountID string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := captchaChallenge{a: n.rng.Intn(10), b: n.rng.Intn(10)}
	n.captcha[accountID] = c
	return fmt.Sprintf("%d+%d=", c.a, c.b)
}

// checkSiteRules enforces membership, outages, CAPTCHA, per-day limits,
// and inter-request delays. Premium members with NoRestriction plans skip
// the limits. Callers must not hold n.mu.
func (n *Network) checkSiteRules(accountID, captchaAnswer string) error {
	now := n.clock.Now()
	if n.down(now) {
		return ErrOutage
	}
	if n.Banned(accountID) {
		return ErrBanned
	}
	if !n.pool.Contains(accountID) {
		return ErrNotMember
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.HoneypotMaxDaily > 0 {
		d := n.day(now)
		if n.hpDay[accountID] != d {
			n.hpDay[accountID] = d
			n.hpCount[accountID] = 0
		}
		n.hpCount[accountID]++
		if n.hpCount[accountID] == n.cfg.HoneypotMaxDaily+1 {
			// Exactly once per suspicious day.
			n.hpStrikes[accountID]++
			if n.hpStrikes[accountID] >= n.cfg.HoneypotBanDays {
				n.banned[accountID] = true
				delete(n.hpStrikes, accountID)
				// Drop the banned member's token too (the pool has its
				// own lock; no ordering issue with n.mu).
				n.pool.Remove(accountID)
				return ErrBanned
			}
		}
	}
	plan, isPremium := n.premium[accountID]
	unrestricted := isPremium && plan.NoRestriction
	premiumAuto := isPremium && plan.AutoDelivery
	// Validate every gate before consuming any, so a member (or the
	// honeypot automation) never burns an ad-wall pass on a request that
	// fails the CAPTCHA, or vice versa.
	if n.cfg.AdWallHops > 0 && !premiumAuto && !n.adWallPass[accountID] {
		return ErrAdWallRequired
	}
	if n.cfg.CaptchaRequired && !premiumAuto {
		c, ok := n.captcha[accountID]
		if !ok || captchaAnswer == "" {
			return ErrCaptchaRequired
		}
		if captchaAnswer != fmt.Sprintf("%d", c.a+c.b) {
			return ErrCaptchaWrong
		}
	}
	if !premiumAuto {
		delete(n.adWallPass, accountID) // one request per chain walk
		delete(n.captcha, accountID)
	}
	if !unrestricted {
		if n.cfg.RequestDelay > 0 {
			if last, ok := n.lastReq[accountID]; ok && now.Sub(last) < n.cfg.RequestDelay {
				return ErrTooSoon
			}
		}
		if n.cfg.DailyRequestLimit > 0 {
			d := n.day(now)
			if n.reqDay[accountID] != d {
				n.reqDay[accountID] = d
				n.reqCount[accountID] = 0
			}
			if n.reqCount[accountID] >= n.cfg.DailyRequestLimit {
				return ErrDailyLimit
			}
			n.reqCount[accountID]++
		}
	}
	n.lastReq[accountID] = now
	return nil
}

// likesFor returns the like quota for the member's plan.
func (n *Network) likesFor(accountID string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if plan, ok := n.premium[accountID]; ok && plan.LikesPerPost > n.cfg.LikesPerRequest {
		return plan.LikesPerPost
	}
	return n.cfg.LikesPerRequest
}

// RequestLikes is the core service: the member asks for likes on a post
// of theirs. It returns the number of likes actually delivered.
func (n *Network) RequestLikes(accountID, postID, captchaAnswer string) (int, error) {
	if err := n.checkSiteRules(accountID, captchaAnswer); err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.stats.LikeRequests++
	n.mu.Unlock()
	quota := n.likesFor(accountID)
	t := n.primary()
	delivered := n.deliver(nil, t, quota, accountID, false, postID, func(ctx context.Context, s Sampled, ip string) error {
		return n.like(ctx, t, s.Token, postID, ip)
	})
	return delivered, nil
}

// like fires one like through the target's transport, propagating the
// delivery burst's trace when the transport supports it.
func (n *Network) like(ctx context.Context, t target, token, objectID, ip string) error {
	if t.ctxClient != nil {
		return t.ctxClient.LikeCtx(ctx, token, objectID, ip)
	}
	return t.client.Like(token, objectID, ip)
}

// comment fires one comment through the target's transport, propagating
// the trace when possible.
func (n *Network) comment(ctx context.Context, t target, token, postID, message, ip string) (string, error) {
	if t.ctxClient != nil {
		return t.ctxClient.CommentCtx(ctx, token, postID, message, ip)
	}
	return t.client.Comment(token, postID, message, ip)
}

// RequestComments asks for auto-comments on a post. Comments are drawn
// from the network's finite dictionary (Table 6).
func (n *Network) RequestComments(accountID, postID, captchaAnswer string) (int, error) {
	if n.cfg.CommentsPerRequest <= 0 || len(n.cfg.CommentDictionary) == 0 {
		return 0, ErrNoComments
	}
	if err := n.checkSiteRules(accountID, captchaAnswer); err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.stats.CommentRequests++
	n.mu.Unlock()
	t := n.primary()
	delivered := n.deliver(nil, t, n.cfg.CommentsPerRequest, accountID, true, "", func(ctx context.Context, s Sampled, ip string) error {
		n.mu.Lock()
		msg := n.cfg.CommentDictionary[n.rng.Intn(len(n.cfg.CommentDictionary))]
		n.mu.Unlock()
		_, err := n.comment(ctx, t, s.Token, postID, msg, ip)
		return err
	})
	return delivered, nil
}

// RequestCustomComments delivers a member-supplied comment text via
// sampled tokens — the variant the paper observed on networks that "ask
// users to input comments" instead of drawing from a dictionary.
func (n *Network) RequestCustomComments(accountID, postID, message, captchaAnswer string, count int) (int, error) {
	if message == "" {
		return 0, fmt.Errorf("collusion: empty custom comment")
	}
	if count <= 0 {
		count = n.cfg.CommentsPerRequest
	}
	if count <= 0 {
		count = 10
	}
	if err := n.checkSiteRules(accountID, captchaAnswer); err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.stats.CommentRequests++
	n.mu.Unlock()
	t := n.primary()
	delivered := n.deliver(nil, t, count, accountID, true, "", func(ctx context.Context, s Sampled, ip string) error {
		_, err := n.comment(ctx, t, s.Token, postID, message, ip)
		return err
	})
	return delivered, nil
}

// deliver samples tokens from the target's pool and fires one action per
// token at the target's platform, handling failures: dead tokens are
// dropped from that pool, rate limiting is recorded and may trigger
// sampling adaptation. Failed draws are replaced with fresh samples
// within a bounded attempt budget (2× the quota), which is what softens
// the impact of partial token invalidation: the engine burns through dead
// tokens to keep its per-request quota, shrinking its pool in the process
// (the gradual-dip-then-recover dynamics of Figure 5).
//
// likeObject, when non-empty, names the single object every action of the
// burst likes; if the transport supports batching and the config has not
// disabled it, the burst is fired as ≤DeliveryBatchSize batches across a
// bounded worker pool instead of one call per action. Sampling, the
// attempt budget, and all per-action bookkeeping are identical in both
// modes — batching changes only how the actions travel.
func (n *Network) deliver(ctx context.Context, t target, quota int, requester string, comment bool, likeObject string, act func(context.Context, Sampled, string) error) int {
	now := n.clock.Now()
	ctx, span := n.obs.T().StartSpanAt(ctx, "collusion.deliver", now)
	if span != nil {
		span.SetAttr("network", n.cfg.Name)
		span.SetAttr("requester", requester)
		span.SetAttr("quota", strconv.Itoa(quota))
		if t.cross {
			span.SetAttr("platform", t.name)
		}
	}
	n.mu.Lock()
	hotSet := n.cfg.HotSetSize
	if n.adapted {
		hotSet = 0
	}
	n.mu.Unlock()

	exclude := map[string]bool{requester: true}
	// Trace the first action of the burst end to end (so every round
	// yields one oauth → graphapi → shard chain under this span) and
	// suppress span creation for the rest: a burst is hundreds of
	// identical calls, and tracing each one would dominate the round.
	sampledCtx, restCtx := ctx, obs.UnsampledContext(ctx)
	batched := !comment && likeObject != "" && t.batchClient != nil && n.cfg.DeliveryBatchSize > 0
	delivered, attempts := 0, 0
	// A 1.5× attempt budget: the engine replaces some failures but does
	// not scour the pool indefinitely, so a half-invalidated pool shows a
	// visible (~25%) dip before dead tokens purge — Figure 5's day-23
	// shape.
	budget := quota + quota/2
	for delivered < quota && attempts < budget {
		// The rng draw happens under n.mu like every other n.rng use —
		// concurrent member requests share one deterministic stream (the
		// pool has its own lock; same n.mu → pool.mu order as the ban
		// path above).
		n.mu.Lock()
		sampled := t.pool.Sample(n.rng, quota-delivered, exclude, n.cfg.MaxPerTokenHourly, hotSet, now)
		n.mu.Unlock()
		if len(sampled) == 0 {
			break
		}
		if batched {
			delivered += n.fireBatched(sampledCtx, restCtx, span, t, likeObject, sampled, exclude, &attempts, now)
			continue
		}
		for _, s := range sampled {
			exclude[s.AccountID] = true
			attempts++
			ip := n.pickIP()
			actCtx := restCtx
			if attempts == 1 {
				actCtx = sampledCtx
			}
			delivered += n.applyOutcome(t, s, act(actCtx, s, ip), comment, now, span)
		}
	}
	// Scrape counters update once per burst, not once per action: a burst
	// is hundreds of likes racing across eight workers, and per-action
	// Incs on the shared series were the hottest contended cache line in
	// the instrumented profile. Totals stay exact.
	if comment {
		n.commentsSent.Add(int64(delivered))
	} else {
		n.likesAttempted.Add(int64(attempts))
		n.likesDelivered.Add(int64(delivered))
	}
	if span != nil {
		span.SetAttr("delivered", strconv.Itoa(delivered))
		span.EndAt(n.clock.Now())
	}
	return delivered
}

// applyOutcome applies one action's bookkeeping — attempt/delivery stats,
// failure-code dispatch, dead-token drops, rate-limit notes — and returns
// 1 when the action was delivered. Both delivery modes funnel every
// action through here, in sample order, so batching cannot drift from the
// sequential path's Figure 5 dynamics.
//
// Failure dispatch is by provider-neutral kind, not numeric code: the
// engine reacts identically to a dead token whether the platform says
// 190 or 4010. FailuresByCode still records the platform's own code —
// the operator-visible vocabulary the paper tabulates.
func (n *Network) applyOutcome(t target, s Sampled, err error, comment bool, now time.Time, span *obs.Span) int {
	n.mu.Lock()
	if !comment {
		if t.cross {
			n.stats.CrossLikesAttempted++
		} else {
			n.stats.LikesAttempted++
		}
	}
	if err == nil {
		switch {
		case comment:
			n.stats.CommentsDelivered++
		case t.cross:
			n.stats.CrossLikesDelivered++
		default:
			n.stats.LikesDelivered++
		}
		n.mu.Unlock()
		return 1
	}
	code := platform.ErrorCode(err)
	n.stats.FailuresByCode[code]++
	n.mu.Unlock()
	if span != nil {
		span.Event("failure", "code", strconv.Itoa(code))
	}
	switch platform.ErrorKind(err) {
	case provider.KindInvalidToken, provider.KindAccountSuspended:
		// Dead token: drop the member until they resubmit.
		if t.pool.Remove(s.AccountID) {
			n.mu.Lock()
			if t.cross {
				n.stats.CrossTokensDropped++
			} else {
				n.stats.TokensDropped++
			}
			n.mu.Unlock()
			n.tokensDropped.Inc()
			if span != nil {
				span.Event("drop-token")
			}
		}
	case provider.KindRateLimited:
		n.noteRateLimited(now)
		if span != nil {
			span.Event("rate-limited")
		}
	}
	return 0
}

// fireBatched delivers one sampled slice as ≤DeliveryBatchSize chunks,
// fanned across at most DeliveryWorkers goroutines, then replays every
// per-action outcome through applyOutcome in sample order. The IPs for
// the whole slice are drawn up front under one n.mu scope, consuming the
// rng stream exactly as per-action pickIP calls would.
func (n *Network) fireBatched(sampledCtx, restCtx context.Context, span *obs.Span, t target, objectID string, sampled []Sampled, exclude map[string]bool, attempts *int, now time.Time) int {
	first := *attempts == 0
	ips := n.pickIPs(len(sampled))
	ops := make([]platform.BatchLike, len(sampled))
	for i, s := range sampled {
		exclude[s.AccountID] = true
		ops[i] = platform.BatchLike{Token: s.Token, IP: ips[i]}
	}
	*attempts += len(sampled)

	size := n.cfg.DeliveryBatchSize
	chunks := (len(ops) + size - 1) / size
	errs := make([]error, len(ops))
	fire := func(i int) {
		start := i * size
		end := start + size
		if end > len(ops) {
			end = len(ops)
		}
		ctx := restCtx
		if first && i == 0 {
			// Trace the first chunk of the burst end to end, like the
			// sequential path traces its first action.
			ctx = sampledCtx
		}
		copy(errs[start:end], t.batchClient.LikeBatch(ctx, objectID, ops[start:end]))
	}
	if workers := n.cfg.DeliveryWorkers; workers <= 1 || chunks <= 1 {
		for i := 0; i < chunks; i++ {
			fire(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < chunks; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				fire(i)
			}(i)
		}
		wg.Wait()
	}

	delivered := 0
	for i, s := range sampled {
		delivered += n.applyOutcome(t, s, errs[i], false, now, span)
	}
	return delivered
}

// noteRateLimited records a rate-limit observation and flips the engine
// to uniform sampling once the operator has seen enough distinct days of
// throttling (the ~one week adaptation of Sec. 6.1).
func (n *Network) noteRateLimited(now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rateLimitDays[n.day(now)] = true
	if !n.adapted && n.cfg.HotSetSize > 0 && len(n.rateLimitDays) >= n.cfg.AdaptationLagDays {
		n.adapted = true
		n.stats.Adapted = true
	}
}

// pickIP draws a source address from the network's pool.
func (n *Network) pickIP() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.IPs[n.rng.Intn(len(n.cfg.IPs))]
}

// pickIPs draws k source addresses under one lock scope, consuming the
// same deterministic rng stream as k successive pickIP calls.
func (n *Network) pickIPs(k int) []string {
	out := make([]string, k)
	n.mu.Lock()
	for i := range out {
		out[i] = n.cfg.IPs[n.rng.Intn(len(n.cfg.IPs))]
	}
	n.mu.Unlock()
	return out
}

// BuyPlan upgrades a member to a premium plan (Sec. 5.1 monetization).
func (n *Network) BuyPlan(accountID, planName string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.cfg.PremiumPlans {
		if p.Name == planName {
			n.premium[accountID] = p
			n.stats.RevenueUSD += p.PriceUSD
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownPlan, planName)
}

// Stats returns a snapshot of the engine's counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.stats
	out.FailuresByCode = make(map[int]int64, len(n.stats.FailuresByCode))
	for k, v := range n.stats.FailuresByCode {
		out.FailuresByCode[k] = v
	}
	out.Adapted = n.adapted
	return out
}

// MembershipSize returns the current token pool size.
func (n *Network) MembershipSize() int { return n.pool.Size() }

// Banned reports whether the network's honeypot detector has banned the
// account.
func (n *Network) Banned(accountID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.banned[accountID]
}
