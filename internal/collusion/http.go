package collusion

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler exposes the collusion network website: the member-facing
// endpoints the honeypot automation drives.
//
//	GET  /                  landing page (install link; serves ads)
//	GET  /captcha           issue a CAPTCHA challenge        ?account_id=
//	POST /submit-token      pool a member token              account_id, access_token
//	POST /request-likes     ask for likes on a post          account_id, post_id[, captcha]
//	POST /request-comments  ask for auto-comments on a post  account_id, post_id[, captcha]
//	POST /buy               purchase a premium plan          account_id, plan
//
// Responses are JSON: {"ok":true, ...} or {"ok":false,"error":...}.
func Handler(n *Network) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		adblock := r.URL.Query().Get("adblock") == "1"
		if err := n.Visit(adblock); err != nil {
			writeSiteError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<html><head><title>%s - Facebook AutoLiker</title></head>
<body>
<h1>%s</h1>
<p>Get FREE likes on your posts! %d likes per submit!</p>
<ol>
<li><a href=%q>Install the application</a> and allow all permissions.</li>
<li>Copy the access token from your address bar.</li>
<li>Submit it below and start receiving likes!</li>
</ol>
<form method="POST" action="/submit-token">
<input name="account_id" placeholder="your account id">
<input name="access_token" placeholder="paste access token here">
<button>Submit</button>
</form>
</body></html>`, n.cfg.Name, n.cfg.Name, n.cfg.LikesPerRequest, n.InstallURL())
	})
	mux.HandleFunc("/captcha", func(w http.ResponseWriter, r *http.Request) {
		accountID := r.URL.Query().Get("account_id")
		if accountID == "" {
			writeJSONError(w, http.StatusBadRequest, "account_id required")
			return
		}
		writeOK(w, map[string]any{"challenge": n.Challenge(accountID)})
	})
	mux.HandleFunc("/submit-token", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		err := n.SubmitToken(r.FormValue("account_id"), r.FormValue("access_token"))
		if err != nil {
			writeSiteError(w, err)
			return
		}
		writeOK(w, map[string]any{"members": n.MembershipSize()})
	})
	mux.HandleFunc("/request-likes", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		delivered, err := n.RequestLikes(r.FormValue("account_id"), r.FormValue("post_id"), r.FormValue("captcha"))
		if err != nil {
			writeSiteError(w, err)
			return
		}
		writeOK(w, map[string]any{"delivered": delivered})
	})
	mux.HandleFunc("/request-comments", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		delivered, err := n.RequestComments(r.FormValue("account_id"), r.FormValue("post_id"), r.FormValue("captcha"))
		if err != nil {
			writeSiteError(w, err)
			return
		}
		writeOK(w, map[string]any{"delivered": delivered})
	})
	mux.HandleFunc("/adwall", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		if err := n.CompleteAdWall(r.FormValue("account_id")); err != nil {
			writeSiteError(w, err)
			return
		}
		writeOK(w, map[string]any{})
	})
	mux.HandleFunc("/buy", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		if err := n.BuyPlan(r.FormValue("account_id"), r.FormValue("plan")); err != nil {
			writeSiteError(w, err)
			return
		}
		writeOK(w, map[string]any{})
	})
	return mux
}

func writeOK(w http.ResponseWriter, fields map[string]any) {
	body := map[string]any{"ok": true}
	for k, v := range fields {
		body[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": false, "error": msg})
}

func writeSiteError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrOutage):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrDailyLimit), errors.Is(err, ErrTooSoon):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrCaptchaRequired), errors.Is(err, ErrCaptchaWrong),
		errors.Is(err, ErrAdblock), errors.Is(err, ErrAdWallRequired), errors.Is(err, ErrBanned):
		status = http.StatusForbidden
	case errors.Is(err, ErrNotMember), errors.Is(err, ErrUnknownPlan):
		status = http.StatusNotFound
	}
	writeJSONError(w, status, err.Error())
}
