package collusion

import (
	"errors"
	"testing"
	"time"
)

func TestHoneypotDetectorBansFrequentRequesters(t *testing.T) {
	h := newHarness(t, Config{
		LikesPerRequest:  5,
		HoneypotMaxDaily: 3,
		HoneypotBanDays:  2,
	}, 30)
	greedy := h.members[0]

	// Day 0: four requests — the fourth is the first strike but still
	// only a strike, not a ban.
	for i := 0; i < 4; i++ {
		post := h.post(t, greedy)
		if _, err := h.network.RequestLikes(greedy.ID, post.ID, ""); err != nil {
			t.Fatalf("day 0 request %d: %v", i, err)
		}
	}
	h.clock.Advance(24 * time.Hour)

	// Day 1: the fourth request crosses the threshold a second day — ban.
	var banErr error
	for i := 0; i < 4; i++ {
		post := h.post(t, greedy)
		if _, err := h.network.RequestLikes(greedy.ID, post.ID, ""); err != nil {
			banErr = err
			break
		}
	}
	if !errors.Is(banErr, ErrBanned) {
		t.Fatalf("ban err = %v", banErr)
	}
	if !h.network.Banned(greedy.ID) {
		t.Fatal("Banned() = false after ban")
	}
	// Banned member is out of the pool and cannot resubmit.
	if h.network.Pool().Contains(greedy.ID) {
		t.Fatal("banned member still pooled")
	}
	if err := h.network.SubmitToken(greedy.ID, "anything"); !errors.Is(err, ErrBanned) {
		t.Fatalf("resubmit err = %v", err)
	}
	post := h.post(t, greedy)
	if _, err := h.network.RequestLikes(greedy.ID, post.ID, ""); !errors.Is(err, ErrBanned) {
		t.Fatalf("post-ban request err = %v", err)
	}
}

func TestHoneypotDetectorSparesModestMembers(t *testing.T) {
	h := newHarness(t, Config{
		LikesPerRequest:  5,
		HoneypotMaxDaily: 3,
		HoneypotBanDays:  2,
	}, 30)
	modest := h.members[1]
	// Three requests a day for five days: never suspicious.
	for day := 0; day < 5; day++ {
		for i := 0; i < 3; i++ {
			post := h.post(t, modest)
			if _, err := h.network.RequestLikes(modest.ID, post.ID, ""); err != nil {
				t.Fatalf("day %d request %d: %v", day, i, err)
			}
		}
		h.clock.Advance(24 * time.Hour)
	}
	if h.network.Banned(modest.ID) {
		t.Fatal("modest member banned")
	}
}

func TestHoneypotDetectorSingleSpikeIsForgiven(t *testing.T) {
	h := newHarness(t, Config{
		LikesPerRequest:  5,
		HoneypotMaxDaily: 3,
		HoneypotBanDays:  2,
	}, 30)
	spiky := h.members[2]
	// One suspicious day followed by quiet days: one strike, no ban.
	for i := 0; i < 6; i++ {
		post := h.post(t, spiky)
		if _, err := h.network.RequestLikes(spiky.ID, post.ID, ""); err != nil {
			t.Fatal(err)
		}
	}
	for day := 0; day < 3; day++ {
		h.clock.Advance(24 * time.Hour)
		post := h.post(t, spiky)
		if _, err := h.network.RequestLikes(spiky.ID, post.ID, ""); err != nil {
			t.Fatalf("quiet day %d: %v", day, err)
		}
	}
	if h.network.Banned(spiky.ID) {
		t.Fatal("single spike banned the member")
	}
}

func TestDetectorDisabledByDefault(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5}, 20)
	m := h.members[0]
	for i := 0; i < 50; i++ {
		post := h.post(t, m)
		if _, err := h.network.RequestLikes(m.ID, post.ID, ""); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if h.network.Banned(m.ID) {
		t.Fatal("ban without detection armed")
	}
}
