// Package collusion implements the collusion network services of
// Sections 3–5: the website front end members interact with, the access
// token pool filled by member submissions, and the delivery engine that
// replays pooled tokens through the platform's Graph API to manufacture
// likes and comments on demand.
//
// The operational behaviours measured in the paper are explicit model
// parameters:
//
//   - a fixed number of likes per request (14–390 across networks,
//     Table 4), delivered in a sub-minute burst;
//   - random sampling of member tokens per request, which produces the
//     diminishing-returns curve honeypot milking observes (Figure 4) and
//     defeats temporal clustering (Figures 6–7);
//   - per-member daily request limits, inter-request delays, CAPTCHA
//     gates, and intermittent outages;
//   - an IP pool and AS footprint for Graph API calls (Figure 8) —
//     official-liker.net used a handful of addresses, hublaa.me more than
//     six thousand across two bulletproof-hosting ASes;
//   - adaptation to token rate limits (Sec. 6.1): engines that reuse a
//     "hot set" of tokens switch to uniform sampling after observing
//     sustained rate limiting;
//   - monetization: ad impressions per visit and premium plans (Sec. 5.1).
package collusion

import (
	"time"
)

// Plan is a premium reputation manipulation plan (Sec. 5.1).
type Plan struct {
	Name          string
	PriceUSD      float64
	LikesPerPost  int
	AutoDelivery  bool // premium plans deliver without manual re-login
	NoRestriction bool // waives delays and daily limits
}

// Config describes one collusion network.
type Config struct {
	// Name is the site's domain, e.g. "hublaa.me".
	Name string
	// AppID and AppRedirectURI identify the exploited third-party
	// application (Table 3) and its install link.
	AppID          string
	AppRedirectURI string
	// Scopes requested when members install the app.
	Scopes []string

	// LikesPerRequest is the fixed number of likes delivered per request
	// on the free plan.
	LikesPerRequest int
	// CommentsPerRequest is the number of auto-comments per request; 0
	// means the network offers no auto-comment service.
	CommentsPerRequest int
	// CommentDictionary is the finite comment vocabulary (Table 6 shows
	// only 187 unique comments across 12,959 delivered).
	CommentDictionary []string

	// DailyRequestLimit caps requests per member per day (djliker.com and
	// monkeyliker.com imposed 10/day); 0 means unlimited.
	DailyRequestLimit int
	// RequestDelay is the minimum wait between a member's successive
	// requests; 0 means none.
	RequestDelay time.Duration
	// CaptchaRequired forces members to solve a CAPTCHA per request.
	CaptchaRequired bool

	// IPs is the source address pool the delivery engine cycles through.
	IPs []string
	// HotSetSize, when positive, makes the engine prefer its most
	// recently used tokens (cheaper, but visible to token rate limits).
	// 0 means uniform random sampling from the whole pool.
	HotSetSize int
	// AdaptationLagDays is how many distinct days of rate-limit errors
	// the operator tolerates before switching to uniform sampling.
	AdaptationLagDays int
	// MaxPerTokenHourly caps how often one member token is used per hour,
	// spreading each account's activity over time (Figure 7).
	MaxPerTokenHourly int

	// OutageDays lists simulation days (0-based) the site is down;
	// arabfblike.com and others suffered intermittent outages.
	OutageDays []int

	// HoneypotMaxDaily, when positive, arms the network's own honeypot
	// detector: a member making more than this many requests in a day is
	// suspicious (Sec. 6.5: "collusion networks can try to detect our
	// honeypot accounts which currently make very frequent like/comment
	// requests"). After HoneypotBanDays distinct suspicious days the
	// member is banned. The researchers' counter is to run several
	// honeypots at lower per-account request rates.
	HoneypotMaxDaily int
	// HoneypotBanDays is the suspicious-day threshold before a ban
	// (default 2 when detection is armed).
	HoneypotBanDays int

	// AdsPerVisit is the number of ad impressions a member generates per
	// visit; RequireAdblockOff models anti-adblock walls.
	AdsPerVisit       int
	RequireAdblockOff bool
	// AdWallHops, when positive, forces members through that many ad-page
	// redirects before each request (Sec. 5.1: mg-likers.com bounced
	// users via kackroch.com and paid shorteners like adf.ly, each hop
	// serving ads). Premium members with AutoDelivery skip the wall.
	AdWallHops int
	// PremiumPlans are the paid tiers on offer.
	PremiumPlans []Plan

	// DeliveryBatchSize is how many likes of a burst are coalesced into
	// one batched transport call when the client supports batching
	// (platform.BatchClient). 0 selects the default of 50, the Graph
	// API's batch cap; negative disables batching so every like takes
	// its own round trip.
	DeliveryBatchSize int
	// DeliveryWorkers bounds the goroutines firing one burst's batches
	// in parallel. 0 selects the default of 4; 1 keeps bursts
	// sequential. Irrelevant when batching is disabled.
	DeliveryWorkers int

	// Seed makes the network's sampling deterministic.
	Seed int64
}

// withDefaults fills unset fields with workable values.
func (c Config) withDefaults() Config {
	if c.LikesPerRequest <= 0 {
		c.LikesPerRequest = 200
	}
	if c.MaxPerTokenHourly <= 0 {
		c.MaxPerTokenHourly = 10
	}
	if c.AdaptationLagDays <= 0 {
		c.AdaptationLagDays = 5
	}
	if c.HoneypotMaxDaily > 0 && c.HoneypotBanDays <= 0 {
		c.HoneypotBanDays = 2
	}
	if len(c.IPs) == 0 {
		c.IPs = []string{"192.0.2.1"}
	}
	if c.DeliveryBatchSize == 0 {
		c.DeliveryBatchSize = 50
	}
	if c.DeliveryWorkers <= 0 {
		c.DeliveryWorkers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}
