package collusion

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

func filledPool(n int) *TokenPool {
	p := NewTokenPool()
	for i := 0; i < n; i++ {
		p.Put(fmt.Sprintf("acct-%d", i), fmt.Sprintf("tok-%d", i), t0)
	}
	return p
}

func TestPoolPutRefreshes(t *testing.T) {
	p := NewTokenPool()
	p.Put("a", "tok-1", t0)
	p.Put("a", "tok-2", t0.Add(time.Hour))
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
	tok, ok := p.Token("a")
	if !ok || tok != "tok-2" {
		t.Fatalf("Token = %q, %v", tok, ok)
	}
}

func TestPoolRemove(t *testing.T) {
	p := filledPool(3)
	if !p.Remove("acct-1") {
		t.Fatal("Remove existing = false")
	}
	if p.Remove("acct-1") {
		t.Fatal("Remove twice = true")
	}
	if p.Size() != 2 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.Contains("acct-1") {
		t.Fatal("removed member still present")
	}
	members := p.Members()
	if len(members) != 2 || members[0] != "acct-0" || members[1] != "acct-2" {
		t.Fatalf("Members = %v", members)
	}
}

func TestSampleDistinctAndExcluding(t *testing.T) {
	p := filledPool(50)
	rng := rand.New(rand.NewSource(1))
	exclude := map[string]bool{"acct-7": true}
	got := p.Sample(rng, 10, exclude, 0, 0, t0)
	if len(got) != 10 {
		t.Fatalf("sampled %d, want 10", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		if s.AccountID == "acct-7" {
			t.Fatal("excluded member sampled")
		}
		if seen[s.AccountID] {
			t.Fatalf("duplicate sample %s", s.AccountID)
		}
		seen[s.AccountID] = true
	}
}

func TestSampleShortPool(t *testing.T) {
	p := filledPool(3)
	rng := rand.New(rand.NewSource(1))
	got := p.Sample(rng, 10, nil, 0, 0, t0)
	if len(got) != 3 {
		t.Fatalf("sampled %d from pool of 3", len(got))
	}
}

func TestSampleHourlyCap(t *testing.T) {
	p := filledPool(5)
	rng := rand.New(rand.NewSource(1))
	// With a cap of 2 per hour, 3 consecutive draws of all 5 members can
	// only succeed twice per member.
	total := 0
	for i := 0; i < 3; i++ {
		total += len(p.Sample(rng, 5, nil, 2, 0, t0.Add(time.Duration(i)*time.Minute)))
	}
	if total != 10 {
		t.Fatalf("sampled %d with cap 2/hour over 5 members, want 10", total)
	}
	// After the hour passes, members become available again.
	got := p.Sample(rng, 5, nil, 2, 0, t0.Add(2*time.Hour))
	if len(got) != 5 {
		t.Fatalf("sampled %d after window reset, want 5", len(got))
	}
}

func TestSampleHotSetPrefersRecent(t *testing.T) {
	p := NewTokenPool()
	for i := 0; i < 100; i++ {
		p.Put(fmt.Sprintf("acct-%d", i), fmt.Sprintf("tok-%d", i), t0.Add(time.Duration(i)*time.Second))
	}
	rng := rand.New(rand.NewSource(1))
	got := p.Sample(rng, 10, nil, 0, 10, t0.Add(time.Hour))
	for _, s := range got {
		var idx int
		if _, err := fmt.Sscanf(s.AccountID, "acct-%d", &idx); err != nil {
			t.Fatal(err)
		}
		if idx < 90 {
			t.Fatalf("hot-set sample drew old member %s", s.AccountID)
		}
	}
}

func TestSampleEmptyPool(t *testing.T) {
	p := NewTokenPool()
	rng := rand.New(rand.NewSource(1))
	if got := p.Sample(rng, 10, nil, 0, 0, t0); len(got) != 0 {
		t.Fatalf("sampled %d from empty pool", len(got))
	}
}

// Property: samples are always distinct, never excluded, and at most n.
func TestQuickSampleInvariants(t *testing.T) {
	f := func(poolSize, n uint8, seed int64) bool {
		p := filledPool(int(poolSize) % 64)
		rng := rand.New(rand.NewSource(seed))
		exclude := map[string]bool{"acct-0": true}
		got := p.Sample(rng, int(n)%32, exclude, 0, 0, t0)
		if len(got) > int(n)%32 {
			return false
		}
		seen := map[string]bool{}
		for _, s := range got {
			if s.AccountID == "acct-0" || seen[s.AccountID] {
				return false
			}
			seen[s.AccountID] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
