package collusion

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/defense"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// harness assembles a platform, one exploited app, a member population
// with pooled tokens, and a collusion network under test.
type harness struct {
	clock   *simclock.Simulated
	p       *platform.Platform
	client  platform.Client
	app     apps.App
	network *Network
	members []socialgraph.Account
}

func newHarness(t *testing.T, cfg Config, members int) *harness {
	t.Helper()
	clock := simclock.NewSimulated(t0)
	p := platform.New(clock, nil)
	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	client := platform.NewLocalClient(p)
	cfg.AppID = app.ID
	cfg.AppRedirectURI = app.RedirectURI
	if cfg.Name == "" {
		cfg.Name = "test-liker.net"
	}
	n := NewNetwork(cfg, clock, client)
	h := &harness{clock: clock, p: p, client: client, app: app, network: n}
	for i := 0; i < members; i++ {
		h.join(t, fmt.Sprintf("member-%d", i))
	}
	return h
}

// join creates an account, walks the implicit flow, and submits the
// leaked token to the network.
func (h *harness) join(t *testing.T, name string) socialgraph.Account {
	t.Helper()
	acct := h.p.Graph.CreateAccount(name, "IN", h.clock.Now())
	tok, err := h.client.AuthorizeImplicit(h.app.ID, h.app.RedirectURI, acct.ID,
		[]string{apps.PermPublicProfile, apps.PermPublishActions})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.network.SubmitToken(acct.ID, tok); err != nil {
		t.Fatal(err)
	}
	h.members = append(h.members, acct)
	return acct
}

func (h *harness) post(t *testing.T, author socialgraph.Account) socialgraph.Post {
	t.Helper()
	p, err := h.p.Graph.CreatePost(author.ID, "please like", socialgraph.WriteMeta{At: h.clock.Now()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSubmitTokenVerifies(t *testing.T) {
	h := newHarness(t, Config{}, 0)
	acct := h.p.Graph.CreateAccount("alice", "IN", t0)
	if err := h.network.SubmitToken(acct.ID, "garbage-token"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("garbage token err = %v", err)
	}
	tok, err := h.client.AuthorizeImplicit(h.app.ID, h.app.RedirectURI, acct.ID, []string{apps.PermPublishActions})
	if err != nil {
		t.Fatal(err)
	}
	// Token belonging to a different account is rejected.
	if err := h.network.SubmitToken("someone-else", tok); !errors.Is(err, ErrBadToken) {
		t.Fatalf("mismatched token err = %v", err)
	}
	if err := h.network.SubmitToken(acct.ID, tok); err != nil {
		t.Fatal(err)
	}
	if h.network.MembershipSize() != 1 {
		t.Fatalf("MembershipSize = %d", h.network.MembershipSize())
	}
}

func TestRequestLikesDeliversQuota(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 50}, 120)
	requester := h.members[0]
	post := h.post(t, requester)
	delivered, err := h.network.RequestLikes(requester.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 50 {
		t.Fatalf("delivered = %d, want 50", delivered)
	}
	likes := h.p.Graph.Likes(post.ID)
	if len(likes) != 50 {
		t.Fatalf("stored likes = %d", len(likes))
	}
	for _, l := range likes {
		if l.AccountID == requester.ID {
			t.Fatal("requester's own token used on their post")
		}
		if l.AppID != h.app.ID {
			t.Fatalf("like not attributed to exploited app: %+v", l)
		}
	}
}

func TestRequestLikesRequiresMembership(t *testing.T) {
	h := newHarness(t, Config{}, 5)
	outsider := h.p.Graph.CreateAccount("outsider", "IN", t0)
	post := h.post(t, outsider)
	if _, err := h.network.RequestLikes(outsider.ID, post.ID, ""); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-member request err = %v", err)
	}
}

func TestDailyRequestLimit(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5, DailyRequestLimit: 2}, 30)
	requester := h.members[0]
	for i := 0; i < 2; i++ {
		post := h.post(t, requester)
		if _, err := h.network.RequestLikes(requester.ID, post.ID, ""); err != nil {
			t.Fatal(err)
		}
	}
	post := h.post(t, requester)
	if _, err := h.network.RequestLikes(requester.ID, post.ID, ""); !errors.Is(err, ErrDailyLimit) {
		t.Fatalf("over-limit err = %v", err)
	}
	// Next day the allowance resets.
	h.clock.Advance(24 * time.Hour)
	if _, err := h.network.RequestLikes(requester.ID, post.ID, ""); err != nil {
		t.Fatalf("next-day request err = %v", err)
	}
}

func TestRequestDelay(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5, RequestDelay: 10 * time.Minute}, 30)
	requester := h.members[0]
	p1 := h.post(t, requester)
	if _, err := h.network.RequestLikes(requester.ID, p1.ID, ""); err != nil {
		t.Fatal(err)
	}
	p2 := h.post(t, requester)
	if _, err := h.network.RequestLikes(requester.ID, p2.ID, ""); !errors.Is(err, ErrTooSoon) {
		t.Fatalf("rapid request err = %v", err)
	}
	h.clock.Advance(10 * time.Minute)
	if _, err := h.network.RequestLikes(requester.ID, p2.ID, ""); err != nil {
		t.Fatalf("delayed request err = %v", err)
	}
}

func TestCaptchaGate(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5, CaptchaRequired: true}, 30)
	requester := h.members[0]
	post := h.post(t, requester)
	if _, err := h.network.RequestLikes(requester.ID, post.ID, ""); !errors.Is(err, ErrCaptchaRequired) {
		t.Fatalf("no-captcha err = %v", err)
	}
	challenge := h.network.Challenge(requester.ID)
	if _, err := h.network.RequestLikes(requester.ID, post.ID, "999"); !errors.Is(err, ErrCaptchaWrong) {
		t.Fatalf("wrong answer err = %v", err)
	}
	// Solve: parse "a+b=".
	var a, b int
	if _, err := fmt.Sscanf(challenge, "%d+%d=", &a, &b); err != nil {
		t.Fatalf("challenge %q: %v", challenge, err)
	}
	// A fresh challenge must be requested after a wrong attempt cleared it?
	// The wrong answer does not clear it; answer the same challenge.
	if _, err := h.network.RequestLikes(requester.ID, post.ID, fmt.Sprint(a+b)); err != nil {
		t.Fatalf("solved captcha err = %v", err)
	}
}

func TestOutageDays(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5, OutageDays: []int{1}}, 10)
	requester := h.members[0]
	post := h.post(t, requester)
	if _, err := h.network.RequestLikes(requester.ID, post.ID, ""); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(24 * time.Hour) // day 1: outage
	if _, err := h.network.RequestLikes(requester.ID, post.ID, ""); !errors.Is(err, ErrOutage) {
		t.Fatalf("outage day err = %v", err)
	}
	if err := h.network.Visit(false); !errors.Is(err, ErrOutage) {
		t.Fatalf("outage visit err = %v", err)
	}
	h.clock.Advance(24 * time.Hour) // day 2: back up
	post2 := h.post(t, requester)
	if _, err := h.network.RequestLikes(requester.ID, post2.ID, ""); err != nil {
		t.Fatalf("post-outage err = %v", err)
	}
}

func TestDeadTokensDropped(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 10}, 20)
	// Invalidate every member token out from under the network.
	for _, m := range h.members {
		h.p.OAuth.InvalidateAccount(m.ID, "sweep")
	}
	requester := h.members[0]
	post := h.post(t, requester)
	delivered, err := h.network.RequestLikes(requester.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered = %d with all tokens dead", delivered)
	}
	// The engine resamples replacements for failures within its attempt
	// budget (2×quota = 20), burning through dead tokens: it drains all 19
	// non-requester members before giving up.
	st := h.network.Stats()
	if st.TokensDropped != 19 {
		t.Fatalf("TokensDropped = %d, want 19", st.TokensDropped)
	}
	if h.network.MembershipSize() != 1 {
		t.Fatalf("MembershipSize = %d, want 1 (only the requester left)", h.network.MembershipSize())
	}
}

func TestCommentsFromDictionary(t *testing.T) {
	dict := []string{"gr8", "AW E S O M E", "bravooooo"}
	h := newHarness(t, Config{LikesPerRequest: 5, CommentsPerRequest: 8, CommentDictionary: dict}, 30)
	requester := h.members[0]
	post := h.post(t, requester)
	delivered, err := h.network.RequestComments(requester.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 8 {
		t.Fatalf("delivered = %d, want 8", delivered)
	}
	inDict := func(msg string) bool {
		for _, d := range dict {
			if d == msg {
				return true
			}
		}
		return false
	}
	for _, c := range h.p.Graph.Comments(post.ID) {
		if !inDict(c.Message) {
			t.Fatalf("comment %q not from dictionary", c.Message)
		}
	}
	st := h.network.Stats()
	if st.CommentsDelivered != 8 || st.CommentRequests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoCommentService(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5}, 5)
	requester := h.members[0]
	post := h.post(t, requester)
	if _, err := h.network.RequestComments(requester.ID, post.ID, ""); !errors.Is(err, ErrNoComments) {
		t.Fatalf("err = %v", err)
	}
}

func TestPremiumPlanOverridesLimits(t *testing.T) {
	plan := Plan{Name: "gold", PriceUSD: 29.99, LikesPerPost: 80, AutoDelivery: true, NoRestriction: true}
	h := newHarness(t, Config{
		LikesPerRequest:   10,
		DailyRequestLimit: 1,
		CaptchaRequired:   true,
		PremiumPlans:      []Plan{plan},
	}, 150)
	requester := h.members[0]
	if err := h.network.BuyPlan(requester.ID, "gold"); err != nil {
		t.Fatal(err)
	}
	if err := h.network.BuyPlan(requester.ID, "platinum"); !errors.Is(err, ErrUnknownPlan) {
		t.Fatalf("unknown plan err = %v", err)
	}
	// Premium: no captcha, no daily limit, bigger quota.
	for i := 0; i < 3; i++ {
		post := h.post(t, requester)
		delivered, err := h.network.RequestLikes(requester.ID, post.ID, "")
		if err != nil {
			t.Fatalf("premium request %d err = %v", i, err)
		}
		if delivered != 80 {
			t.Fatalf("premium delivered = %d, want 80", delivered)
		}
	}
	if got := h.network.Stats().RevenueUSD; got != 29.99 {
		t.Fatalf("revenue = %v", got)
	}
}

func TestMonetizationCounters(t *testing.T) {
	h := newHarness(t, Config{AdsPerVisit: 3, RequireAdblockOff: true}, 0)
	if err := h.network.Visit(false); err != nil {
		t.Fatal(err)
	}
	if err := h.network.Visit(true); !errors.Is(err, ErrAdblock) {
		t.Fatalf("adblock visit err = %v", err)
	}
	st := h.network.Stats()
	if st.Visits != 1 || st.AdImpressions != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateLimitAdaptation(t *testing.T) {
	// A hot-set engine hammered by a tight token rate limit must adapt to
	// uniform sampling after AdaptationLagDays distinct days of errors —
	// the official-liker.net bounce-back of Figure 5.
	h := newHarness(t, Config{
		LikesPerRequest:   20,
		HotSetSize:        25,
		AdaptationLagDays: 3,
		MaxPerTokenHourly: 100, // disable the spread cap for this test
	}, 300)
	limiter := defense.NewTokenRateLimiter(h.clock, 2, 24*time.Hour)
	h.p.Chain().Append(limiter)

	requester := h.members[0]
	deliveredByDay := make([]int, 6)
	for day := 0; day < 6; day++ {
		total := 0
		for r := 0; r < 10; r++ {
			post := h.post(t, requester)
			d, err := h.network.RequestLikes(requester.ID, post.ID, "")
			if err != nil {
				t.Fatal(err)
			}
			total += d
			h.clock.Advance(time.Hour)
		}
		deliveredByDay[day] = total
		h.clock.Advance(14 * time.Hour)
	}
	st := h.network.Stats()
	if !st.Adapted {
		t.Fatalf("engine did not adapt; per-day = %v, stats = %+v", deliveredByDay, st)
	}
	// Before adaptation the hot set of 25 tokens can serve at most
	// 25 tokens × 2 likes/day = 50 of the 200 requested; after adaptation
	// the full pool serves nearly all.
	if deliveredByDay[0] > 60 {
		t.Fatalf("day 0 delivered %d, expected rate limit to bite", deliveredByDay[0])
	}
	last := deliveredByDay[len(deliveredByDay)-1]
	if last < 150 {
		t.Fatalf("post-adaptation delivered %d, expected recovery", last)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 2}, 10)
	st := h.network.Stats()
	st.FailuresByCode[190] = 999
	if h.network.Stats().FailuresByCode[190] == 999 {
		t.Fatal("Stats leaked internal map")
	}
}

func TestInstallURLMentionsApp(t *testing.T) {
	h := newHarness(t, Config{}, 0)
	u := h.network.InstallURL()
	if !strings.Contains(u, h.app.ID) || !strings.Contains(u, "response_type=token") {
		t.Fatalf("InstallURL = %q", u)
	}
}

func TestRequestCustomComments(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5}, 30)
	requester := h.members[0]
	post := h.post(t, requester)
	delivered, err := h.network.RequestCustomComments(requester.ID, post.ID, "vote for my page!!", "", 6)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 6 {
		t.Fatalf("delivered = %d", delivered)
	}
	for _, c := range h.p.Graph.Comments(post.ID) {
		if c.Message != "vote for my page!!" {
			t.Fatalf("comment = %q", c.Message)
		}
		if c.AccountID == requester.ID {
			t.Fatal("requester commented on own post")
		}
	}
	if _, err := h.network.RequestCustomComments(requester.ID, post.ID, "", "", 3); err == nil {
		t.Fatal("empty custom comment accepted")
	}
	if _, err := h.network.RequestCustomComments("stranger", post.ID, "hi", "", 3); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-member err = %v", err)
	}
	st := h.network.Stats()
	if st.CommentsDelivered != 6 || st.CommentRequests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRequestCustomCommentsDefaultCount(t *testing.T) {
	h := newHarness(t, Config{LikesPerRequest: 5, CommentsPerRequest: 4, CommentDictionary: []string{"x"}}, 30)
	requester := h.members[0]
	post := h.post(t, requester)
	delivered, err := h.network.RequestCustomComments(requester.ID, post.ID, "custom", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 4 {
		t.Fatalf("delivered = %d, want CommentsPerRequest default", delivered)
	}
}

// TestOwnAppUselessForManipulation reproduces the Section 3 constraint:
// a collusion network registering its own (unreviewed) application gets
// no write permission, so its pooled tokens cannot like anything — which
// is why the networks hijack existing reviewed apps.
func TestOwnAppUselessForManipulation(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	p := platform.New(clock, nil)
	ownApp := p.Apps.RegisterUnreviewed(apps.Config{
		Name:              "TotallyLegit Liker",
		RedirectURI:       "https://liker.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	client := platform.NewLocalClient(p)
	n := NewNetwork(Config{
		Name:            "own-app-liker.net",
		AppID:           ownApp.ID,
		AppRedirectURI:  ownApp.RedirectURI,
		LikesPerRequest: 5,
	}, clock, client)

	// Members can still install the app and leak tokens (basic scopes
	// survive review stripping)...
	var member socialgraph.Account
	for i := 0; i < 10; i++ {
		acct := p.Graph.CreateAccount(fmt.Sprintf("m%d", i), "IN", clock.Now())
		tok, err := client.AuthorizeImplicit(ownApp.ID, ownApp.RedirectURI, acct.ID,
			[]string{apps.PermPublicProfile})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SubmitToken(acct.ID, tok); err != nil {
			t.Fatal(err)
		}
		member = acct
	}
	// ...but every like attempt dies on the missing publish_actions scope.
	post, err := p.Graph.CreatePost(member.ID, "like me", socialgraph.WriteMeta{At: clock.Now()})
	if err != nil {
		t.Fatal(err)
	}
	delivered, err := n.RequestLikes(member.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("unreviewed app delivered %d likes", delivered)
	}
	st := n.Stats()
	if st.FailuresByCode[200] == 0 { // CodePermission
		t.Fatalf("no permission failures recorded: %v", st.FailuresByCode)
	}
}
