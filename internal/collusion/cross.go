package collusion

import (
	"context"
	"fmt"

	"repro/internal/platform"
)

// Cross-platform operation. The paper's collusion networks live on one
// platform because that platform's implicit flow leaks tokens through the
// redirect fragment. A platform that only offers the authorization-code
// flow cannot be milked that way — but a collusion network that registers
// its own companion application there can still pool credentials: members
// walk the companion app's dialog, the redirect hands them a one-time
// code, they paste the code into the network's site, and the network
// exchanges it server-side with its app secret. Harvest on platform A,
// amplify on platform B.

// ErrUnknownPlatform is returned for operations naming a platform the
// network has not linked.
var ErrUnknownPlatform = fmt.Errorf("collusion: platform not linked")

// ErrBadCode is returned when a submitted authorization code fails the
// server-side exchange or verification.
var ErrBadCode = fmt.Errorf("collusion: authorization code did not exchange")

// crossBinding is one linked companion platform: the network's app
// credentials there, the transport, and a dedicated token pool. Pools are
// strictly per platform — a token minted by B is never fired at A.
type crossBinding struct {
	target
	exchanger   platform.CodeExchanger
	appID       string
	appSecret   string
	redirectURI string
}

// LinkPlatform registers a companion platform under name. client is the
// transport to that platform; it must implement platform.CodeExchanger
// (both built-in transports do) so the network can swap submitted codes
// for tokens. appID/appSecret/redirectURI identify the network's own
// companion application registered on that platform.
func (n *Network) LinkPlatform(name string, client platform.Client, appID, appSecret, redirectURI string) error {
	exchanger, ok := client.(platform.CodeExchanger)
	if !ok {
		return fmt.Errorf("collusion: transport for %q cannot exchange authorization codes", name)
	}
	ctxClient, _ := client.(platform.ContextClient)
	batchClient, _ := client.(platform.BatchClient)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cross == nil {
		n.cross = make(map[string]*crossBinding, 1)
	}
	n.cross[name] = &crossBinding{
		target: target{
			name:        name,
			client:      client,
			ctxClient:   ctxClient,
			batchClient: batchClient,
			pool:        NewTokenPool(),
			cross:       true,
		},
		exchanger:   exchanger,
		appID:       appID,
		appSecret:   appSecret,
		redirectURI: redirectURI,
	}
	return nil
}

// binding looks up a linked platform. Callers must not hold n.mu.
func (n *Network) binding(name string) (*crossBinding, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.cross[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlatform, name)
	}
	return b, nil
}

// CrossInstallURL returns the companion app's dialog URL on the linked
// platform — response_type=code, because that is all the platform grants.
func (n *Network) CrossInstallURL(name string) (string, error) {
	b, err := n.binding(name)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("/dialog/oauth?client_id=%s&redirect_uri=%s&response_type=code", b.appID, b.redirectURI), nil
}

// SubmitLinkedCode is the cross-platform analogue of SubmitToken: the
// member pastes the one-time authorization code from the companion app's
// redirect, the network exchanges it with its app secret, verifies the
// resulting token with a /me call, and pools it for that platform.
func (n *Network) SubmitLinkedCode(platformName, accountID, code string) error {
	now := n.clock.Now()
	if n.down(now) {
		return ErrOutage
	}
	if n.Banned(accountID) {
		return ErrBanned
	}
	b, err := n.binding(platformName)
	if err != nil {
		return err
	}
	token, err := b.exchanger.ExchangeCode(b.appID, b.appSecret, b.redirectURI, code)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadCode, err)
	}
	profile, err := b.client.Me(token, n.pickIP())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	if profile.ID != accountID {
		return fmt.Errorf("%w: token belongs to %s", ErrBadToken, profile.ID)
	}
	b.pool.Put(accountID, token, now)
	n.mu.Lock()
	n.stats.CrossTokensCollected++
	n.mu.Unlock()
	return nil
}

// RequestCrossLikes delivers likes to the member's post on a linked
// platform, sampling that platform's pool through that platform's
// transport. Site rules (membership, CAPTCHA, daily limits, ad wall) are
// enforced against the member's primary-platform standing — the site is
// one site; only the delivery surface changes.
func (n *Network) RequestCrossLikes(platformName, accountID, postID, captchaAnswer string) (int, error) {
	b, err := n.binding(platformName)
	if err != nil {
		return 0, err
	}
	if err := n.checkSiteRules(accountID, captchaAnswer); err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.stats.CrossLikeRequests++
	n.mu.Unlock()
	quota := n.likesFor(accountID)
	t := b.target
	delivered := n.deliver(nil, t, quota, accountID, false, postID, func(ctx context.Context, s Sampled, ip string) error {
		return n.like(ctx, t, s.Token, postID, ip)
	})
	return delivered, nil
}

// CrossPool exposes a linked platform's token pool, or nil (the
// measurement harness samples its size).
func (n *Network) CrossPool(platformName string) *TokenPool {
	b, err := n.binding(platformName)
	if err != nil {
		return nil
	}
	return b.pool
}

// LinkedPlatforms lists the names of linked companion platforms.
func (n *Network) LinkedPlatforms() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.cross))
	for name := range n.cross {
		out = append(out, name)
	}
	return out
}
