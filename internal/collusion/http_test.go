package collusion

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/apps"
)

func newSite(t *testing.T, cfg Config, members int) (*harness, *httptest.Server) {
	t.Helper()
	h := newHarness(t, cfg, members)
	srv := httptest.NewServer(Handler(h.network))
	t.Cleanup(srv.Close)
	return h, srv
}

func postForm(t *testing.T, u string, form url.Values) (int, map[string]any) {
	t.Helper()
	resp, err := http.PostForm(u, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestSiteLandingPage(t *testing.T) {
	h, srv := newSite(t, Config{Name: "hublaa.me", LikesPerRequest: 350, AdsPerVisit: 2}, 0)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	page := string(body)
	if !strings.Contains(page, "hublaa.me") || !strings.Contains(page, "350 likes") {
		t.Fatalf("landing page = %s", page)
	}
	if !strings.Contains(page, h.app.ID) {
		t.Fatal("landing page missing install link")
	}
	if got := h.network.Stats().AdImpressions; got != 2 {
		t.Fatalf("AdImpressions = %d", got)
	}
}

func TestSiteSubmitTokenAndRequestLikes(t *testing.T) {
	h, srv := newSite(t, Config{LikesPerRequest: 10}, 30)
	newbie := h.p.Graph.CreateAccount("newbie", "IN", t0)
	tok, err := h.client.AuthorizeImplicit(h.app.ID, h.app.RedirectURI, newbie.ID,
		[]string{apps.PermPublicProfile, apps.PermPublishActions})
	if err != nil {
		t.Fatal(err)
	}
	status, body := postForm(t, srv.URL+"/submit-token", url.Values{
		"account_id":   {newbie.ID},
		"access_token": {tok},
	})
	if status != http.StatusOK || body["ok"] != true {
		t.Fatalf("submit-token: %d %v", status, body)
	}
	if body["members"].(float64) != 31 {
		t.Fatalf("members = %v", body["members"])
	}

	post := h.post(t, newbie)
	status, body = postForm(t, srv.URL+"/request-likes", url.Values{
		"account_id": {newbie.ID},
		"post_id":    {post.ID},
	})
	if status != http.StatusOK {
		t.Fatalf("request-likes: %d %v", status, body)
	}
	if body["delivered"].(float64) != 10 {
		t.Fatalf("delivered = %v", body["delivered"])
	}
	if got := h.p.Graph.LikeCount(post.ID); got != 10 {
		t.Fatalf("LikeCount = %d", got)
	}
}

func TestSiteBadTokenRejected(t *testing.T) {
	_, srv := newSite(t, Config{}, 0)
	status, body := postForm(t, srv.URL+"/submit-token", url.Values{
		"account_id":   {"acct"},
		"access_token": {"garbage"},
	})
	if status != http.StatusBadRequest || body["ok"] != false {
		t.Fatalf("bad token: %d %v", status, body)
	}
}

func TestSiteCaptchaFlow(t *testing.T) {
	h, srv := newSite(t, Config{LikesPerRequest: 5, CaptchaRequired: true}, 10)
	member := h.members[0]
	post := h.post(t, member)

	// Request without captcha: 403.
	status, _ := postForm(t, srv.URL+"/request-likes", url.Values{
		"account_id": {member.ID},
		"post_id":    {post.ID},
	})
	if status != http.StatusForbidden {
		t.Fatalf("no captcha status = %d", status)
	}

	resp, err := http.Get(srv.URL + "/captcha?account_id=" + member.ID)
	if err != nil {
		t.Fatal(err)
	}
	var cbody struct {
		Challenge string `json:"challenge"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cbody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var a, b int
	if _, err := fmt.Sscanf(cbody.Challenge, "%d+%d=", &a, &b); err != nil {
		t.Fatalf("challenge %q: %v", cbody.Challenge, err)
	}
	status, body := postForm(t, srv.URL+"/request-likes", url.Values{
		"account_id": {member.ID},
		"post_id":    {post.ID},
		"captcha":    {strconv.Itoa(a + b)},
	})
	if status != http.StatusOK {
		t.Fatalf("solved captcha: %d %v", status, body)
	}
}

func TestSiteNonMember404(t *testing.T) {
	_, srv := newSite(t, Config{}, 0)
	status, _ := postForm(t, srv.URL+"/request-likes", url.Values{
		"account_id": {"stranger"},
		"post_id":    {"p"},
	})
	if status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", status)
	}
}

func TestSiteBuyPlan(t *testing.T) {
	h, srv := newSite(t, Config{
		PremiumPlans: []Plan{{Name: "gold", PriceUSD: 9.99, LikesPerPost: 2000}},
	}, 1)
	status, _ := postForm(t, srv.URL+"/buy", url.Values{
		"account_id": {h.members[0].ID},
		"plan":       {"gold"},
	})
	if status != http.StatusOK {
		t.Fatalf("buy status = %d", status)
	}
	if got := h.network.Stats().RevenueUSD; got != 9.99 {
		t.Fatalf("revenue = %v", got)
	}
	status, _ = postForm(t, srv.URL+"/buy", url.Values{
		"account_id": {h.members[0].ID},
		"plan":       {"nope"},
	})
	if status != http.StatusNotFound {
		t.Fatalf("unknown plan status = %d", status)
	}
}

func TestSiteMethodEnforcement(t *testing.T) {
	_, srv := newSite(t, Config{}, 0)
	for _, path := range []string{"/submit-token", "/request-likes", "/request-comments", "/buy"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
}
