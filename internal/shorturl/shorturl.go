// Package shorturl implements a URL shortening service with public
// analytics, standing in for goo.gl in the Table 5 analysis. Collusion
// networks used short URLs to funnel members to the exploited
// application's install dialog; goo.gl's public per-link analytics
// (clicks, referrers, platforms, geolocation, creation date) let the
// paper estimate site traffic and launch dates.
package shorturl

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simclock"
)

// ErrNotFound is returned for unknown short codes.
var ErrNotFound = errors.New("shorturl: unknown short code")

// Click is one recorded click on a short URL.
type Click struct {
	At       time.Time
	Referrer string
	Country  string
}

type link struct {
	code      string
	longURL   string
	createdAt time.Time
	clicks    []Click
}

// Service is the shortener. It is safe for concurrent use.
type Service struct {
	clock simclock.Clock

	mu     sync.RWMutex
	links  map[string]*link
	byLong map[string][]string // longURL -> codes
	nextID int
}

// NewService returns an empty shortener.
func NewService(clock simclock.Clock) *Service {
	return &Service{
		clock:  clock,
		links:  make(map[string]*link),
		byLong: make(map[string][]string),
	}
}

// Shorten mints a short code for longURL. Shortening the same long URL
// repeatedly mints distinct codes, as different collusion networks did
// for the same install dialog (Table 5 shows several goo.gl links
// pointing at one HTC Sense URL).
func (s *Service) Shorten(longURL string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	code := encodeID(s.nextID)
	s.links[code] = &link{
		code:      code,
		longURL:   longURL,
		createdAt: s.clock.Now(),
	}
	s.byLong[longURL] = append(s.byLong[longURL], code)
	return code
}

// Resolve records a click and returns the long URL.
func (s *Service) Resolve(code, referrer, country string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.links[code]
	if !ok {
		return "", fmt.Errorf("%q: %w", code, ErrNotFound)
	}
	l.clicks = append(l.clicks, Click{At: s.clock.Now(), Referrer: referrer, Country: country})
	return l.longURL, nil
}

// Info is the public analytics record for one short URL.
type Info struct {
	Code      string
	LongURL   string
	CreatedAt time.Time
	// ShortClicks is this code's click count; LongClicks sums clicks over
	// every code pointing at the same long URL (the two click columns of
	// Table 5).
	ShortClicks int
	LongClicks  int
	// TopReferrer is the most frequent referrer domain.
	TopReferrer string
	// Countries maps country -> click count.
	Countries map[string]int
}

// Info returns the analytics for a short code.
func (s *Service) Info(code string) (Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.links[code]
	if !ok {
		return Info{}, fmt.Errorf("%q: %w", code, ErrNotFound)
	}
	info := Info{
		Code:        code,
		LongURL:     l.longURL,
		CreatedAt:   l.createdAt,
		ShortClicks: len(l.clicks),
		Countries:   make(map[string]int),
	}
	refs := make(map[string]int)
	for _, c := range l.clicks {
		if c.Referrer != "" {
			refs[c.Referrer]++
		}
		if c.Country != "" {
			info.Countries[c.Country]++
		}
	}
	best, bestN := "", 0
	for r, n := range refs {
		if n > bestN || (n == bestN && r < best) {
			best, bestN = r, n
		}
	}
	info.TopReferrer = best
	for _, sib := range s.byLong[l.longURL] {
		info.LongClicks += len(s.links[sib].clicks)
	}
	return info, nil
}

// DailyClicks returns the clicks on a code during the 24h bucket
// containing t.
func (s *Service) DailyClicks(code string, t time.Time) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.links[code]
	if !ok {
		return 0, fmt.Errorf("%q: %w", code, ErrNotFound)
	}
	day := t.Truncate(24 * time.Hour)
	n := 0
	for _, c := range l.clicks {
		if !c.At.Before(day) && c.At.Before(day.Add(24*time.Hour)) {
			n++
		}
	}
	return n, nil
}

// Codes returns all short codes in creation order.
func (s *Service) Codes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.links))
	for code := range s.links {
		out = append(out, code)
	}
	sort.Slice(out, func(i, j int) bool {
		return s.links[out[i]].createdAt.Before(s.links[out[j]].createdAt) ||
			(s.links[out[i]].createdAt.Equal(s.links[out[j]].createdAt) && out[i] < out[j])
	})
	return out
}

// encodeID turns a sequence number into a base62-ish short code.
func encodeID(n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	for n > 0 {
		b.WriteByte(alphabet[n%len(alphabet)])
		n /= len(alphabet)
	}
	// Pad to at least 6 characters like goo.gl codes.
	for b.Len() < 6 {
		b.WriteByte('x')
	}
	return b.String()
}

// Handler exposes the shortener over HTTP: GET /{code} redirects and
// records the click (referrer from the Referer header, country from the
// X-Country header); GET /{code}+ returns a plain-text analytics summary,
// mirroring goo.gl's public "+" pages.
func Handler(s *Service) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code := strings.Trim(r.URL.Path, "/")
		if strings.HasSuffix(code, "+") {
			info, err := s.Info(strings.TrimSuffix(code, "+"))
			if err != nil {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "code: %s\nlong_url: %s\ncreated: %s\nshort_clicks: %d\nlong_clicks: %d\ntop_referrer: %s\n",
				info.Code, info.LongURL, info.CreatedAt.UTC().Format(time.RFC3339), info.ShortClicks, info.LongClicks, info.TopReferrer)
			return
		}
		long, err := s.Resolve(code, r.Referer(), r.Header.Get("X-Country"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, long, http.StatusFound)
	})
}
