package shorturl

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

var t0 = time.Date(2014, time.June, 11, 0, 0, 0, 0, time.UTC)

func TestShortenAndResolve(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	s := NewService(clock)
	code := s.Shorten("https://platform.example/dialog/oauth?client_id=htc")
	long, err := s.Resolve(code, "mg-likers.com", "IN")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(long, "client_id=htc") {
		t.Fatalf("long = %q", long)
	}
	if _, err := s.Resolve("nope", "", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown code err = %v", err)
	}
}

func TestDistinctCodesForSameLongURL(t *testing.T) {
	s := NewService(simclock.NewSimulated(t0))
	a := s.Shorten("https://x.example")
	b := s.Shorten("https://x.example")
	if a == b {
		t.Fatalf("same code minted twice: %q", a)
	}
}

func TestInfoAggregates(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	s := NewService(clock)
	longURL := "https://platform.example/dialog/oauth?client_id=htc"
	a := s.Shorten(longURL)
	clock.Advance(24 * time.Hour)
	b := s.Shorten(longURL)

	for i := 0; i < 5; i++ {
		if _, err := s.Resolve(a, "mg-likers.com", "IN"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Resolve(b, "djliker.com", "EG"); err != nil {
			t.Fatal(err)
		}
	}
	_, _ = s.Resolve(a, "begeniyor.com", "TR")

	info, err := s.Info(a)
	if err != nil {
		t.Fatal(err)
	}
	if info.ShortClicks != 6 {
		t.Fatalf("ShortClicks = %d, want 6", info.ShortClicks)
	}
	// Long clicks sum across both codes pointing at the same URL.
	if info.LongClicks != 9 {
		t.Fatalf("LongClicks = %d, want 9", info.LongClicks)
	}
	if info.TopReferrer != "mg-likers.com" {
		t.Fatalf("TopReferrer = %q", info.TopReferrer)
	}
	if info.Countries["IN"] != 5 || info.Countries["TR"] != 1 {
		t.Fatalf("Countries = %v", info.Countries)
	}
	if !info.CreatedAt.Equal(t0) {
		t.Fatalf("CreatedAt = %v", info.CreatedAt)
	}
	if _, err := s.Info("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Info(missing) err = %v", err)
	}
}

func TestDailyClicks(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	s := NewService(clock)
	code := s.Shorten("https://x.example")
	for i := 0; i < 4; i++ {
		_, _ = s.Resolve(code, "", "")
	}
	clock.Advance(24 * time.Hour)
	for i := 0; i < 2; i++ {
		_, _ = s.Resolve(code, "", "")
	}
	d0, err := s.DailyClicks(code, t0)
	if err != nil || d0 != 4 {
		t.Fatalf("day0 = %d, %v", d0, err)
	}
	d1, _ := s.DailyClicks(code, t0.Add(25*time.Hour))
	if d1 != 2 {
		t.Fatalf("day1 = %d", d1)
	}
	if _, err := s.DailyClicks("missing", t0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
}

func TestCodesOrdered(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	s := NewService(clock)
	a := s.Shorten("https://a.example")
	clock.Advance(time.Hour)
	b := s.Shorten("https://b.example")
	codes := s.Codes()
	if len(codes) != 2 || codes[0] != a || codes[1] != b {
		t.Fatalf("Codes = %v", codes)
	}
}

func TestHTTPRedirectAndAnalytics(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	s := NewService(clock)
	code := s.Shorten("https://platform.example/dialog/oauth")
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/"+code, nil)
	req.Header.Set("Referer", "hublaa.me")
	req.Header.Set("X-Country", "IN")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != "https://platform.example/dialog/oauth" {
		t.Fatalf("Location = %q", got)
	}

	aresp, err := http.Get(srv.URL + "/" + code + "+")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	body, _ := io.ReadAll(aresp.Body)
	text := string(body)
	if !strings.Contains(text, "short_clicks: 1") || !strings.Contains(text, "top_referrer: hublaa.me") {
		t.Fatalf("analytics page = %s", text)
	}

	nresp, err := http.Get(srv.URL + "/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown code status = %d", nresp.StatusCode)
	}
}

func TestCodeShape(t *testing.T) {
	s := NewService(simclock.NewSimulated(t0))
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		code := s.Shorten("https://x.example")
		if len(code) < 6 {
			t.Fatalf("code %q shorter than 6", code)
		}
		if seen[code] {
			t.Fatalf("duplicate code %q", code)
		}
		seen[code] = true
	}
}
