package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Table3Row is one exploited application's directory record.
type Table3Row struct {
	AppID   string
	Name    string
	DAU     int
	DAURank int
	MAU     int
	MAURank int
}

// Table3Result carries the rendered table and the raw rows.
type Table3Result struct {
	Table Table
	Rows  []Table3Row
}

// Table3 reproduces Table 3: the applications exploited by collusion
// networks with their daily/monthly active user counts and leaderboard
// ranks. The registry is populated with the top-100 apps plus a Zipf tail
// of smaller applications so ranks are computed against a realistic
// directory, as the Facebook Graph API reported them.
func Table3(seed int64) (Table3Result, error) {
	clock := simclock.NewSimulated(time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC))
	p := platform.New(clock, nil)
	workload.BuildTop100(p.Apps, seed)

	// Zipf tail of ordinary applications below the top 100.
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1900; i++ {
		base := 2_000_000 / (i + 3)
		p.Apps.Register(apps.Config{
			Name:              fmt.Sprintf("Tail App %04d", i+1),
			RedirectURI:       "https://tail.example/cb",
			ClientFlowEnabled: rng.Intn(2) == 0,
			Lifetime:          apps.ShortTerm,
			Permissions:       []string{apps.PermPublicProfile},
			MAU:               base + rng.Intn(1000),
			DAU:               base/8 + rng.Intn(500),
		})
	}

	// The exploited applications of Table 3.
	var rows []Table3Row
	for _, spec := range workload.ExploitedApps() {
		if spec.Name == workload.AppPageManager {
			continue // Table 3 lists the three auto-liker apps
		}
		app := p.Apps.Register(apps.Config{
			Name:              spec.Name,
			RedirectURI:       "https://exploited.example/cb",
			ClientFlowEnabled: true,
			Lifetime:          apps.LongTerm,
			Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
			MAU:               spec.MAU,
			DAU:               spec.DAU,
		})
		dauRank, err := p.Apps.RankByDAU(app.ID)
		if err != nil {
			return Table3Result{}, err
		}
		mauRank, err := p.Apps.RankByMAU(app.ID)
		if err != nil {
			return Table3Result{}, err
		}
		rows = append(rows, Table3Row{
			AppID:   app.ID,
			Name:    spec.Name,
			DAU:     spec.DAU,
			DAURank: dauRank,
			MAU:     spec.MAU,
			MAURank: mauRank,
		})
	}

	table := Table{
		ID:      "table3",
		Title:   "Applications used by popular collusion networks",
		Columns: []string{"Application Identifier", "Application Name", "DAU", "DAU Rank", "MAU", "MAU Rank"},
		Notes:   []string{"ranks computed against a 2,000-app directory (top-100 + Zipf tail)"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.AppID, r.Name, fmtInt(r.DAU), fmtInt(r.DAURank), fmtInt(r.MAU), fmtInt(r.MAURank),
		})
	}
	return Table3Result{Table: table, Rows: rows}, nil
}
