package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// The ablations quantify the design observations of Section 6 that the
// headline figures only show at single operating points:
//
//   - AblationRateLimit: why reducing the token rate limit by an order of
//     magnitude was not enough — sweep the limit against a uniform-
//     sampling network and a hot-set network.
//   - AblationInvalidation: how the daily invalidation fraction trades
//     off against pool replenishment.
//   - AblationClustering: why SynchroTrap fails — sweep the pool-to-quota
//     ratio and watch detections vanish as pools grow.
//   - AblationIPvsAS: the crossover between per-IP rate limits and AS
//     blocking as the delivery IP pool grows.

// AblationRateLimit sweeps the per-token daily write limit and reports
// the average likes per honeypot post for hublaa.me (uniform sampling)
// and official-liker.net (hot set, before adaptation).
func AblationRateLimit(seed int64) (Table, error) {
	limits := []int{200, 50, 16, 8, 4, 2}
	table := Table{
		ID:      "ablation-ratelimit",
		Title:   "Token rate limit sweep: avg likes/post on day 1 of enforcement",
		Columns: []string{"Limit (writes/day)", "hublaa.me (uniform)", "official-liker.net (hot set)"},
		Notes: []string{
			"collusion networks stay under any limit their per-token usage does not reach (Sec. 6.1)",
		},
	}
	for _, limit := range limits {
		row := []string{fmtInt(limit)}
		for _, network := range []string{"hublaa.me", "official-liker.net"} {
			study, err := core.NewStudy(workload.Options{
				Scale:    100,
				Networks: []string{network},
				Seed:     seed,
			})
			if err != nil {
				return Table{}, err
			}
			study.Countermeasures().SetTokenRateLimit(limit, 24*time.Hour)
			ni := study.Scenario.Networks[0]
			sum, n := 0.0, 0
			for hour := 0; hour < 24; hour++ {
				if hour%2 == 0 && n < 10 {
					res := study.MilkNetwork(network)
					if res.Err != nil {
						return Table{}, res.Err
					}
					sum += float64(res.Delivered)
					n++
				}
				ni.BackgroundRequests(1)
				study.AdvanceHour()
			}
			row = append(row, fmtFloat(sum/float64(n), 0))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// AblationInvalidation sweeps the daily invalidation fraction of newly
// milked tokens and reports the equilibrium likes per post after ten
// days, under fixed pool replenishment.
func AblationInvalidation(seed int64) (Table, error) {
	fractions := []float64{0, 0.25, 0.5, 1.0}
	table := Table{
		ID:      "ablation-invalidation",
		Title:   "Daily invalidation fraction vs equilibrium likes/post (hublaa.me, day 10)",
		Columns: []string{"Daily fraction", "Avg likes/post", "Live pool"},
		Notes: []string{
			"honeypot milking only reaches a subset of members; fresh arrivals replenish the pool (Sec. 6.2)",
		},
	}
	for _, frac := range fractions {
		study, err := core.NewStudy(workload.Options{
			Scale:    100,
			Networks: []string{"hublaa.me"},
			Seed:     seed,
		})
		if err != nil {
			return Table{}, err
		}
		ni := study.Scenario.Networks[0]
		var lastDay float64
		for day := 0; day < 10; day++ {
			if err := ni.JoinFresh(ni.ScaledMembership / 50); err != nil {
				return Table{}, err
			}
			sum, n := 0.0, 0
			for hour := 0; hour < 24; hour++ {
				if hour%2 == 0 && n < 10 {
					res := study.MilkNetwork("hublaa.me")
					if res.Err != nil {
						return Table{}, res.Err
					}
					sum += float64(res.Delivered)
					n++
				}
				ni.BackgroundRequests(1)
				study.AdvanceHour()
			}
			lastDay = sum / float64(n)
			if frac > 0 {
				study.Countermeasures().InvalidateMilkedFraction(frac)
			}
		}
		table.Rows = append(table.Rows, []string{
			fmtFloat(frac, 2),
			fmtFloat(lastDay, 0),
			fmtInt(ni.Net.MembershipSize()),
		})
	}
	return table, nil
}

// AblationClustering sweeps the pool-to-quota ratio (via the population
// scale) and reports how many accounts SynchroTrap flags: detections
// vanish once pools dwarf the per-request quota.
func AblationClustering(seed int64) (Table, error) {
	// Scale 1 reproduces fast-liker.com's full 834-member pool (the real
	// regime, pool ≈ 19× quota); larger scales shrink the pool toward
	// lockstep.
	scales := []int{20000, 2000, 200, 20, 1}
	table := Table{
		ID:      "ablation-clustering",
		Title:   "SynchroTrap detections vs pool-to-quota ratio (fast-liker.com)",
		Columns: []string{"Scale", "Pool size", "Pool/Quota", "Accounts flagged"},
		Notes: []string{
			"small pools force lockstep reuse and are detectable; large pools (the real regime) are not (Sec. 6.3)",
		},
	}
	for _, scale := range scales {
		study, err := core.NewStudy(workload.Options{
			Scale:      scale,
			MinMembers: 25,
			Networks:   []string{"fast-liker.com"},
			Seed:       seed,
		})
		if err != nil {
			return Table{}, err
		}
		cm := study.Countermeasures()
		cm.DeployClustering(time.Minute, 0.5, 2, 5)
		for i := 0; i < 8; i++ {
			if res := study.MilkNetwork("fast-liker.com"); res.Err != nil {
				return Table{}, res.Err
			}
			study.AdvanceHour()
		}
		flagged := cm.RunClusteringSweep()
		ni := study.Scenario.Networks[0]
		pool := len(ni.Members)
		ratio := float64(pool) / float64(ni.Spec.LikesPerRequest)
		table.Rows = append(table.Rows, []string{
			fmtInt(scale), fmtInt(pool), fmtFloat(ratio, 1), fmtInt(flagged),
		})
	}
	return table, nil
}

// AblationIPvsAS sweeps hublaa.me-style delivery IP pool sizes under the
// day-46 IP caps, showing the crossover where per-IP limits stop working
// and AS blocking becomes the only lever.
func AblationIPvsAS(seed int64) (Table, error) {
	// Pool sizes emulate networks from official-liker.net (a few
	// addresses) up to hublaa.me (thousands, scaled).
	poolSizes := []int{2, 6, 20, 60}
	table := Table{
		ID:      "ablation-ip-vs-as",
		Title:   "Per-IP rate limits vs AS blocking as the delivery pool grows (hublaa.me)",
		Columns: []string{"Delivery IPs", "Likes/post under IP caps", "Likes/post under AS block"},
		Notes: []string{
			"IP caps bind when few addresses carry the volume; bulletproof pools require AS blocks (Sec. 6.4)",
		},
	}
	for _, ips := range poolSizes {
		var perIP, perAS float64
		for mode := 0; mode < 2; mode++ {
			study, err := core.NewStudy(workload.Options{
				Scale:      100 * 60 / ips, // shrink population with pool for comparable per-IP demand
				MinMembers: 300,
				Networks:   []string{"hublaa.me"},
				Seed:       seed,
			})
			if err != nil {
				return Table{}, err
			}
			cm := study.Countermeasures()
			if mode == 0 {
				cm.DeployIPRateLimits(100, 400)
			} else {
				cm.BlockASes(workload.ASBulletproofA, workload.ASBulletproofB)
			}
			sum, n := 0.0, 0
			for hour := 0; hour < 24; hour++ {
				if hour%2 == 0 && n < 10 {
					res := study.MilkNetwork("hublaa.me")
					if res.Err != nil {
						return Table{}, res.Err
					}
					sum += float64(res.Delivered)
					n++
				}
				study.AdvanceHour()
			}
			if mode == 0 {
				perIP = sum / float64(n)
			} else {
				perAS = sum / float64(n)
			}
		}
		table.Rows = append(table.Rows, []string{
			fmtInt(ips), fmtFloat(perIP, 0), fmtFloat(perAS, 0),
		})
	}
	return table, nil
}
