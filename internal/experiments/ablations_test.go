package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.ReplaceAll(row[i], ",", ""), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", row[i], err)
	}
	return v
}

func TestAblationRateLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep: skipped with -short")
	}
	table, err := AblationRateLimit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// At the generous limit both run at full quota; as the limit drops,
	// the hot-set network degrades first while the uniform sampler is
	// untouched until the limit falls below its per-token usage.
	first, last := table.Rows[0], table.Rows[len(table.Rows)-1]
	if cell(t, first, 1) < 340 || cell(t, first, 2) < 380 {
		t.Fatalf("generous limit already binding: %v", first)
	}
	if cell(t, last, 2) >= cell(t, first, 2)/2 {
		t.Fatalf("hot-set network not degraded at tightest limit: %v", last)
	}
	// The paper's observation: an order-of-magnitude reduction (200 → 16)
	// leaves the uniform sampler essentially untouched.
	var at16 []string
	for _, row := range table.Rows {
		if row[0] == "16" {
			at16 = row
		}
	}
	if at16 == nil || cell(t, at16, 1) < 300 {
		t.Fatalf("uniform sampler degraded at limit 16: %v", at16)
	}
}

func TestAblationInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep: skipped with -short")
	}
	table, err := AblationInvalidation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Monotone: more aggressive daily invalidation yields fewer likes at
	// equilibrium; zero invalidation leaves full quota.
	if cell(t, table.Rows[0], 1) < 340 {
		t.Fatalf("no-invalidation row degraded: %v", table.Rows[0])
	}
	if !(cell(t, table.Rows[3], 1) < cell(t, table.Rows[0], 1)) {
		t.Fatalf("full daily invalidation not below baseline: %v vs %v", table.Rows[3], table.Rows[0])
	}
}

func TestAblationClustering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep: skipped with -short")
	}
	table, err := AblationClustering(1)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny pools (lockstep) get flagged; large pools evade.
	lastRow := table.Rows[len(table.Rows)-1] // largest pool/quota
	firstRow := table.Rows[0]                // smallest pool (scale 20000 → floor 25)
	if cell(t, firstRow, 3) == 0 {
		t.Fatalf("lockstep pool not flagged: %v", firstRow)
	}
	if cell(t, lastRow, 3) != 0 {
		t.Fatalf("large pool flagged: %v", lastRow)
	}
}

func TestAblationHoneypotEvasion(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep: skipped with -short")
	}
	table, err := AblationHoneypotEvasion(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	single, fleet := table.Rows[0], table.Rows[1]
	// The single aggressive honeypot gets banned and its campaign stalls.
	if cell(t, single, 2) != 1 {
		t.Fatalf("single honeypot not banned: %v", single)
	}
	// The fleet stays under the threshold: nobody banned, full campaign.
	if cell(t, fleet, 2) != 0 {
		t.Fatalf("fleet banned: %v", fleet)
	}
	if cell(t, fleet, 1) != 75 {
		t.Fatalf("fleet milked %v of 75", fleet[1])
	}
	if !(cell(t, fleet, 1) > cell(t, single, 1)) {
		t.Fatalf("fleet did not out-milk single: %v vs %v", fleet, single)
	}
	if !(cell(t, fleet, 3) > cell(t, single, 3)) {
		t.Fatalf("fleet did not identify more accounts: %v vs %v", fleet, single)
	}
}

func TestAblationRejectedCountermeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep: skipped with -short")
	}
	table, err := AblationRejectedCountermeasures(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f%%", &v); err != nil {
			t.Fatalf("cell %q: %v", s, err)
		}
		return v
	}
	suspend, suspendSwitch, mandate, deployed := table.Rows[0], table.Rows[1], table.Rows[2], table.Rows[3]
	// Naive suspension and mandated secrets fully stop collusion...
	for _, row := range [][]string{suspend, mandate, deployed} {
		if got := parse(row[1]); got != 100 {
			t.Fatalf("%s blocked %v%% of collusion", row[0], got)
		}
	}
	// ...but only the rejected ones break legitimate users.
	if got := parse(suspend[2]); got != 100 {
		t.Fatalf("suspension collateral = %v%%", got)
	}
	if got := parse(mandate[2]); got != 100 {
		t.Fatalf("mandated-secret collateral = %v%%", got)
	}
	if got := parse(deployed[2]); got != 0 {
		t.Fatalf("deployed countermeasure collateral = %v%%", got)
	}
	// And suspension does not even hold: after the operator switches to
	// another susceptible app, most of the abuse reduction evaporates
	// while the legitimate users of the suspended app stay locked out.
	if got := parse(suspendSwitch[1]); got > 50 {
		t.Fatalf("suspension still blocking %v%% after app switch", got)
	}
	if got := parse(suspendSwitch[2]); got != 100 {
		t.Fatalf("post-switch legitimate collateral = %v%%", got)
	}
}

func TestAblationIPvsAS(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep: skipped with -short")
	}
	table, err := AblationIPvsAS(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// AS blocking always ceases delivery.
	for _, row := range table.Rows {
		if cell(t, row, 2) != 0 {
			t.Fatalf("AS block leaked likes: %v", row)
		}
	}
	// IP caps bind hard for small pools and fade as the pool grows.
	small := cell(t, table.Rows[0], 1)
	large := cell(t, table.Rows[len(table.Rows)-1], 1)
	if small >= large {
		t.Fatalf("no IP-cap crossover: small-pool %v >= large-pool %v", small, large)
	}
	if large < 200 {
		t.Fatalf("large pool still bound by IP caps: %v", large)
	}
}
