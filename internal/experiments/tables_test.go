package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTable1Composition(t *testing.T) {
	res, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 100 scanned, 55 susceptible, 46 short-term, 9 long-term.
	if res.Summary.Scanned != 100 {
		t.Fatalf("scanned = %d", res.Summary.Scanned)
	}
	if res.Summary.Susceptible != 55 {
		t.Fatalf("susceptible = %d", res.Summary.Susceptible)
	}
	if res.Summary.SusceptibleShortTerm != 46 || res.Summary.SusceptibleLongTerm != 9 {
		t.Fatalf("split = %d/%d", res.Summary.SusceptibleShortTerm, res.Summary.SusceptibleLongTerm)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("table rows = %d", len(res.Rows))
	}
	if res.Rows[0].Name != "Spotify" || res.Rows[0].MAU != 50_000_000 {
		t.Fatalf("top row = %+v", res.Rows[0])
	}
	// Rows sorted by MAU descending, all long-term susceptible.
	for i, r := range res.Rows {
		if !r.Susceptible || !r.LongTerm {
			t.Fatalf("row %d not susceptible long-term: %+v", i, r)
		}
		if i > 0 && res.Rows[i-1].MAU < r.MAU {
			t.Fatalf("rows unsorted at %d", i)
		}
	}
	if !strings.Contains(res.Table.String(), "Spotify") {
		t.Fatal("rendered table missing Spotify")
	}
}

func TestTable2RankOrdering(t *testing.T) {
	res := Table2(1)
	// The paper's Table 2 lists 50 sites: the 22 milked networks plus 28
	// ranked-only entries.
	if len(res.Rows) != 50 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	milked := 0
	for _, r := range res.Rows {
		if r.Milked {
			milked++
		}
	}
	if milked != 22 {
		t.Fatalf("milked rows = %d", milked)
	}
	// hublaa.me leads with its calibrated rank of 8,000.
	if res.Rows[0].Network != "hublaa.me" || res.Rows[0].ModeledRank != 8000 {
		t.Fatalf("top row = %+v", res.Rows[0])
	}
	// Ranks ascend down the table (larger = less popular).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1].ModeledRank > res.Rows[i].ModeledRank {
			t.Fatalf("rank ordering broken at %d", i)
		}
	}
	// Measured top-country shares track the specs within sampling noise.
	for _, row := range res.Rows {
		if !row.Milked {
			continue // published values pass through verbatim
		}
		spec, ok := workload.FindNetwork(row.Network)
		if !ok {
			t.Fatalf("unknown network %q", row.Network)
		}
		if row.TopCountry != spec.TopCountry {
			// Shares below ~20% can be overtaken by the sum of the rest;
			// only assert for clear majorities.
			if spec.TopCountryShare > 0.3 {
				t.Fatalf("%s top country = %q, want %q", row.Network, row.TopCountry, spec.TopCountry)
			}
			continue
		}
		diff := row.TopCountryShare - 100*spec.TopCountryShare
		if diff < -5 || diff > 5 {
			t.Fatalf("%s share = %.1f, spec %.1f", row.Network, row.TopCountryShare, 100*spec.TopCountryShare)
		}
	}
}

func TestTable3Ranks(t *testing.T) {
	res, err := Table3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	htc := byName[workload.AppHTCSense]
	nokia := byName[workload.AppNokiaAccount]
	sony := byName[workload.AppSonyXperia]
	// The paper's ordering: HTC Sense ranks highest by DAU, then Nokia,
	// then Sony Xperia.
	if !(htc.DAURank < nokia.DAURank && nokia.DAURank < sony.DAURank) {
		t.Fatalf("DAU ranks: htc=%d nokia=%d sony=%d", htc.DAURank, nokia.DAURank, sony.DAURank)
	}
	if !(htc.MAURank < sony.MAURank) {
		t.Fatalf("MAU ranks: htc=%d sony=%d", htc.MAURank, sony.MAURank)
	}
	if htc.DAU != 1_000_000 || nokia.DAU != 100_000 || sony.DAU != 10_000 {
		t.Fatalf("DAUs: %+v", res.Rows)
	}
}

func TestTable4SmallCampaign(t *testing.T) {
	res, err := Table4(Table4Config{
		Scale:        1000,
		PostsDivisor: 200,
		MinPosts:     8,
		Networks: []string{
			"hublaa.me", "official-liker.net", "djliker.com", "arabfblike.com", "fast-liker.com",
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 5 networks + All
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range res.Rows {
		byName[r.Network] = r
	}
	for name, row := range byName {
		if name == "All" {
			continue
		}
		if row.PostsSubmitted == 0 {
			t.Fatalf("%s submitted no posts", name)
		}
		if row.MembershipEstimate > row.PoolSize {
			t.Fatalf("%s estimate %d exceeds pool %d", name, row.MembershipEstimate, row.PoolSize)
		}
		if row.TotalLikes == 0 {
			t.Fatalf("%s got no likes", name)
		}
	}
	// The membership estimate is a lower bound that grows toward the pool.
	hublaa := byName["hublaa.me"]
	if hublaa.MembershipEstimate < hublaa.PoolSize/3 {
		t.Fatalf("hublaa estimate %d too small for pool %d", hublaa.MembershipEstimate, hublaa.PoolSize)
	}
	// arabfblike's tiny quota yields the smallest avg likes/post.
	arab := byName["arabfblike.com"]
	if arab.AvgLikesPerPost > 20 {
		t.Fatalf("arab avg = %v", arab.AvgLikesPerPost)
	}
	// Outgoing manipulation through the honeypot token is observed.
	all := byName["All"]
	if all.OutgoingActivities == 0 || all.TargetAccounts == 0 {
		t.Fatalf("no outgoing activity: %+v", all)
	}
	if all.TargetPages == 0 {
		t.Fatalf("no page targets: %+v", all)
	}
}

func TestTable4DailyLimitSlowsMilking(t *testing.T) {
	res, err := Table4(Table4Config{
		Scale:        1000,
		PostsDivisor: 20,
		MinPosts:     5,
		Networks:     []string{"djliker.com", "oneliker.com"},
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table4Row{}
	for _, r := range res.Rows {
		byName[r.Network] = r
	}
	// Both reach their quotas, but djliker.com needed multiple simulated
	// days (10 requests/day) — verify the limit didn't block completion.
	if byName["djliker.com"].PostsSubmitted < 20 {
		t.Fatalf("djliker posts = %d", byName["djliker.com"].PostsSubmitted)
	}
}

func TestTable5ShortURLs(t *testing.T) {
	res := Table5(Table5Config{ClickScale: 100_000, Seed: 1})
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The oldest URL (mg-likers', created day 0) carries the most clicks.
	first := res.Rows[0]
	if first.TopReferrer != "mg-likers.com" {
		t.Fatalf("first row referrer = %q", first.TopReferrer)
	}
	if first.ShortClicks != 1479 {
		t.Fatalf("first row short clicks = %d", first.ShortClicks)
	}
	for _, r := range res.Rows {
		if r.LongClicks < r.ShortClicks {
			t.Fatalf("%s long %d < short %d", r.Code, r.LongClicks, r.ShortClicks)
		}
	}
	// HTC Sense URLs share one long URL: their LongClicks all agree and
	// exceed any individual short count.
	var htcLong []int
	for _, r := range res.Rows {
		if r.App == workload.AppHTCSense {
			htcLong = append(htcLong, r.LongClicks)
		}
	}
	for _, v := range htcLong {
		if v != htcLong[0] {
			t.Fatalf("HTC Sense long clicks disagree: %v", htcLong)
		}
	}
	if htcLong[0] <= first.ShortClicks {
		t.Fatalf("aggregated long clicks %d not above biggest short %d", htcLong[0], first.ShortClicks)
	}
	// India dominates click geography.
	in := 0
	for _, r := range res.Rows {
		if r.TopCountry == "IN" {
			in++
		}
	}
	if in < 10 {
		t.Fatalf("IN top country on only %d rows", in)
	}
}

func TestTable6LexicalShape(t *testing.T) {
	res, err := Table6(Table6Config{Scale: 500, PostsDivisor: 2, MinPosts: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 7 networks + All
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Network == "All" {
			continue
		}
		spec, _ := workload.FindNetwork(r.Network)
		rep := r.Report
		if rep.Comments == 0 {
			t.Fatalf("%s milked no comments", r.Network)
		}
		// The dictionary bounds unique comments.
		if rep.UniqueComments > spec.UniqueComments {
			t.Fatalf("%s unique %d exceeds dictionary %d", r.Network, rep.UniqueComments, spec.UniqueComments)
		}
		// Table 6's signature: a small unique fraction and low richness
		// (the corpus is drawn with replacement from a tiny dictionary).
		if rep.PctUniqueComments > 50 {
			t.Fatalf("%s unique%% = %v (comments=%d dict=%d)",
				r.Network, rep.PctUniqueComments, rep.Comments, spec.UniqueComments)
		}
		if rep.LexicalRichness > 50 {
			t.Fatalf("%s richness = %v", r.Network, rep.LexicalRichness)
		}
	}
	all := res.Rows[len(res.Rows)-1]
	if all.Network != "All" {
		t.Fatalf("last row = %q", all.Network)
	}
	// Overall non-dictionary rate lands in the paper's ballpark (20.6%).
	if all.Report.PctNonDictionary < 5 || all.Report.PctNonDictionary > 50 {
		t.Fatalf("overall non-dictionary = %v", all.Report.PctNonDictionary)
	}
	// Aggregate unique fraction is small (paper: 187 of 12,959 = 1.4%).
	if all.Report.PctUniqueComments > 15 {
		t.Fatalf("overall unique%% = %v", all.Report.PctUniqueComments)
	}
	// ARI lands in the paper's band (13.2–25.2 per network, 19.6 overall):
	// elongated junk words inflate characters-per-word.
	if all.Report.ARI < 10 || all.Report.ARI > 28 {
		t.Fatalf("overall ARI = %v, want the paper's band", all.Report.ARI)
	}
}

func TestRegistryRunAndIDs(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablation-clustering", "ablation-honeypot-evasion", "ablation-invalidation",
		"ablation-ip-vs-as", "ablation-ratelimit", "ablation-rejected",
		"cross-platform",
		"extension-detection", "extension-economics", "extension-privacy",
		"figure4", "figure5", "figure5-all", "figure6", "figure7", "figure8",
		"scale-slo", "sweep-contention",
		"table1", "table2", "table3", "table4", "table5", "table6"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v", ids)
		}
	}
	if _, err := Run("table9", 100, 1); err == nil {
		t.Fatal("unknown experiment ran")
	}
	out, err := Run("table5", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || !strings.Contains(out.String(), "TABLE5") {
		t.Fatalf("output = %v", out)
	}
}

func TestRenderHelpers(t *testing.T) {
	if got := fmtInt(1150782); got != "1,150,782" {
		t.Fatalf("fmtInt = %q", got)
	}
	if got := fmtInt(42); got != "42" {
		t.Fatalf("fmtInt = %q", got)
	}
	if got := fmtFloat(3.14159, 2); got != "3.14" {
		t.Fatalf("fmtFloat = %q", got)
	}
	tbl := Table{ID: "tablex", Title: "T", Columns: []string{"A", "B"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tbl.String()
	for _, want := range []string{"TABLEX", "A", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table render missing %q:\n%s", want, s)
		}
	}
	fig := Figure{ID: "figx", Title: "F", XLabel: "x", YLabel: "y",
		Series:      []Series{{Label: "s", Points: []SeriesPoint{{1, 2}, {2, 4}}}},
		Annotations: map[float64]string{2: "event"}}
	fs := fig.String()
	for _, want := range []string{"FIGX", "series \"s\"", "<- event"} {
		if !strings.Contains(fs, want) {
			t.Fatalf("figure render missing %q:\n%s", want, fs)
		}
	}
	if got := sparkline(nil); !strings.Contains(got, "empty") {
		t.Fatalf("empty sparkline = %q", got)
	}
}
