package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/socialgraph"
	"repro/internal/workload"
)

// AblationRejectedCountermeasures quantifies the two countermeasures the
// paper considered and rejected (Sec. 6):
//
//   - suspending the exploited applications: stops collusion instantly
//     but locks out every legitimate user of those apps;
//   - mandating appsecret_proof for write calls: also stops collusion
//     (leaked bearer tokens are useless without the secret) but breaks
//     every client-side-only legitimate integration.
//
// The experiment measures both effects directly: collusion delivery and
// a population of legitimate client-side app users, before and after
// each intervention.
func AblationRejectedCountermeasures(seed int64) (Table, error) {
	type outcome struct {
		name             string
		collusionBlocked float64 // fraction of collusion likes stopped
		legitBroken      float64 // fraction of legitimate app calls broken
	}

	run := func(apply func(s *workload.Scenario, appID string) error) (outcome, error) {
		s, err := workload.BuildScenario(workload.Options{
			Scale:      2000,
			MinMembers: 80,
			Networks:   []string{"mg-likers.com"},
			Seed:       seed,
		})
		if err != nil {
			return outcome{}, err
		}
		ni := s.Networks[0]
		app := s.Apps[ni.Spec.App]

		// Legitimate client-side users of the same app: they authorize it
		// and publish through it (the Spotify-style integration that
		// justifies the implicit flow).
		type legit struct {
			acct  socialgraph.Account
			token string
		}
		var legits []legit
		for i := 0; i < 60; i++ {
			acct := s.Platform.Graph.CreateAccount(fmt.Sprintf("legit-user-%d", i), "US", s.Clock.Now())
			tok, err := s.Client.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID,
				[]string{apps.PermPublicProfile, apps.PermPublishActions})
			if err != nil {
				return outcome{}, err
			}
			legits = append(legits, legit{acct: acct, token: tok})
		}
		legitCalls := func() float64 {
			ok := 0
			for _, l := range legits {
				if _, err := s.Client.Publish(l.token, "now playing: a song", ""); err == nil {
					ok++
				}
			}
			return float64(ok) / float64(len(legits))
		}
		collusionLikes := func() float64 {
			member := ni.Members[0]
			post, err := s.Platform.Graph.CreatePost(member.ID, "collusion target",
				socialgraph.WriteMeta{At: s.Clock.Now()})
			if err != nil {
				return 0
			}
			delivered, err := ni.Net.RequestLikes(member.ID, post.ID, "")
			if err != nil {
				return 0
			}
			return float64(delivered)
		}

		legitBefore := legitCalls()
		collusionBefore := collusionLikes()
		if legitBefore == 0 || collusionBefore == 0 {
			return outcome{}, fmt.Errorf("baseline broken: legit=%v collusion=%v", legitBefore, collusionBefore)
		}
		if err := apply(s, app.ID); err != nil {
			return outcome{}, err
		}
		legitAfter := legitCalls()
		collusionAfter := collusionLikes()
		return outcome{
			collusionBlocked: 1 - collusionAfter/collusionBefore,
			legitBroken:      1 - legitAfter/legitBefore,
		}, nil
	}

	suspend, err := run(func(s *workload.Scenario, appID string) error {
		return s.Platform.Apps.SetSuspended(appID, true)
	})
	if err != nil {
		return Table{}, err
	}
	suspend.name = "suspend exploited applications"

	mandate, err := run(func(s *workload.Scenario, appID string) error {
		return s.Platform.Apps.SetSecuritySettings(appID, true, true)
	})
	if err != nil {
		return Table{}, err
	}
	mandate.name = "mandate appsecret_proof for writes"

	// Suspension, replayed with the operator's counter-move: the network
	// switches to another susceptible application and returning members
	// resubmit tokens — abuse resumes while the legitimate users of the
	// suspended app stay locked out.
	suspendSwitch, err := run(func(s *workload.Scenario, appID string) error {
		if err := s.Platform.Apps.SetSuspended(appID, true); err != nil {
			return err
		}
		ni := s.Networks[0]
		if err := ni.SwitchApp(workload.AppNokiaAccount); err != nil {
			return err
		}
		return ni.ResubmitReturning(len(ni.Members))
	})
	if err != nil {
		return Table{}, err
	}
	suspendSwitch.name = "suspend apps, network switches apps (Sec. 3)"

	// The deployed alternative, for contrast: honeypot-fed invalidation
	// touches only identified colluding accounts.
	deployed, err := run(func(s *workload.Scenario, appID string) error {
		ni := s.Networks[0]
		for _, m := range ni.Members {
			s.Platform.OAuth.InvalidateAccount(m.ID, "honeypot-sweep")
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	deployed.name = "invalidate identified colluding tokens (deployed)"

	table := Table{
		ID:    "ablation-rejected",
		Title: "Countermeasures the paper rejected, quantified: abuse stopped vs legitimate use broken",
		Columns: []string{
			"Countermeasure", "Collusion likes blocked", "Legitimate app calls broken",
		},
		Notes: []string{
			"suspension and mandated secrets stop abuse completely but break every legitimate client-side user (Sec. 6)",
			"after the network switches to another susceptible app, suspension's abuse reduction largely evaporates",
			"the deployed token invalidation is surgical: zero legitimate collateral",
		},
	}
	for _, o := range []outcome{suspend, suspendSwitch, mandate, deployed} {
		table.Rows = append(table.Rows, []string{
			o.name,
			fmtFloat(100*o.collusionBlocked, 0) + "%",
			fmtFloat(100*o.legitBroken, 0) + "%",
		})
	}
	return table, nil
}
