package experiments

import "testing"

// The cross-platform run is fully deterministic (simulated clock, seeded
// sampling, sequential delivery), so the table is pinned exactly: the
// siloed wiring must miss the network entirely while the shared wiring
// flags every delivery IP.
func TestCrossPlatformSharedSignalsDetect(t *testing.T) {
	res, err := CrossPlatform(CrossPlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	siloed, shared := res.Rows[0], res.Rows[1]
	if siloed.Mode != "siloed" || shared.Mode != "shared" {
		t.Fatalf("row order: %q, %q", siloed.Mode, shared.Mode)
	}

	// Both wirings see the identical campaign: the deliveries match.
	if siloed.LikesA != shared.LikesA || siloed.LikesB != shared.LikesB {
		t.Fatalf("deliveries diverged across modes: %+v vs %+v", siloed, shared)
	}
	if siloed.LikesA != 120 || siloed.LikesB != 120 {
		t.Fatalf("deliveries = (%d, %d); want (120, 120)", siloed.LikesA, siloed.LikesB)
	}

	// Siloed detectors each see half the signal and stay silent.
	if siloed.FlaggedIPs != 0 || siloed.Clusters != 0 {
		t.Fatalf("siloed wiring flagged %d IPs in %d clusters; want none", siloed.FlaggedIPs, siloed.Clusters)
	}
	// The shared detector sees the pooled stream and flags the whole pool.
	if shared.FlaggedIPs != shared.PoolIPs || shared.DetectionRate != 1.0 {
		t.Fatalf("shared wiring flagged %d/%d IPs (rate %.2f); want all",
			shared.FlaggedIPs, shared.PoolIPs, shared.DetectionRate)
	}
	if shared.Clusters != 1 {
		t.Fatalf("shared wiring found %d clusters; want 1", shared.Clusters)
	}
}

func TestCrossPlatformDeterministic(t *testing.T) {
	a, err := CrossPlatform(CrossPlatformConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossPlatform(CrossPlatformConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != b.Table.String() {
		t.Fatalf("same seed, different tables:\n%s\nvs\n%s", a.Table.String(), b.Table.String())
	}
}

func TestCrossPlatformRegistered(t *testing.T) {
	out, err := Run("cross-platform", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || out.Tables[0].ID != "cross-platform" {
		t.Fatalf("registry output: %+v", out)
	}
}
