package experiments

import (
	"repro/internal/workload"
)

// Figure5AllResult carries the fleet-wide campaign outcome.
type Figure5AllResult struct {
	Table Table
	// DeathDay maps network name to the first day from which delivery
	// stayed below 5% of the quota through the end of the campaign
	// (0 = survived).
	DeathDay map[string]int
	Fig      Figure5Result
}

// Figure5AllNetworks runs the countermeasure campaign against every
// milked collusion network, reproducing the paper's fleet-wide outcome:
// "other popular collusion networks in Table 4 also stopped working"
// once the IP rate limits landed, with hublaa.me alone surviving until
// the AS blocks. It reports each network's death day.
func Figure5AllNetworks(cfg Figure5Config) (Figure5AllResult, error) {
	if cfg.MilksPerDay == 0 {
		cfg.MilksPerDay = 4 // lighter per-network load across 22 networks
	}
	var names []string
	for _, spec := range workload.Networks() {
		names = append(names, spec.Name)
	}
	cfg.Networks = names
	res, err := Figure5(cfg)
	if err != nil {
		return Figure5AllResult{}, err
	}

	death := make(map[string]int, len(names))
	table := Table{
		ID:      "figure5-all",
		Title:   "Countermeasure campaign across all 22 collusion networks: day each ceased operating",
		Columns: []string{"Collusion Network", "Baseline Likes/Post", "Death Day", "Outcome"},
		Notes: []string{
			"death day = first day from which delivery stayed below 25% of the network's own day-1..11 baseline",
			"the tiniest scaled pools already collapse under daily token invalidation; the rest fall to the day-46 IP caps; hublaa.me alone survives until the day-70 AS block",
		},
	}
	for _, spec := range workload.Networks() {
		daily := res.Daily[spec.Name]
		baseline := 0.0
		n := 0
		for d := 0; d < 11 && d < len(daily); d++ {
			baseline += daily[d]
			n++
		}
		if n > 0 {
			baseline /= float64(n)
		}
		threshold := 0.25 * baseline
		dead := 0
		for d := len(daily); d >= 1; d-- {
			if daily[d-1] > threshold {
				break
			}
			dead = d
		}
		// Require a sustained collapse, not a one-day dip at the end.
		if dead != 0 && len(daily)-dead < 2 {
			dead = 0
		}
		death[spec.Name] = dead
		outcome := "survived"
		if dead > 0 {
			outcome = "ceased"
		}
		deathCell := "-"
		if dead > 0 {
			deathCell = fmtInt(dead)
		}
		table.Rows = append(table.Rows, []string{
			spec.Name, fmtFloat(baseline, 0), deathCell, outcome,
		})
	}
	return Figure5AllResult{Table: table, DeathDay: death, Fig: res}, nil
}
