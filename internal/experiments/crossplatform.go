package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/collusion"
	"repro/internal/defense"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/provider"
	"repro/internal/simclock"
)

// Cross-platform collusion (provider-abstraction capstone). One collusion
// network harvests tokens on the paper's platform (implicit flow: tokens
// leak through the redirect fragment) and also registers a companion app
// on a second, code-flow-only platform, pooling credentials there via
// member-submitted authorization codes. It then amplifies on both.
//
// The defensive question: the two platforms see disjoint account
// namespaces, but the network reuses one delivery IP pool. An IP-keyed
// temporal-clustering detector (defense.SignalPlane) either runs siloed —
// each platform over its own half of the activity — or shared, pooling
// both platforms' like streams into one detector. The experiment emits
// the comparison table: likes delivered per platform, IPs flagged, and
// the detection rate under each wiring.

// CrossPlatformConfig parameterises the scenario.
type CrossPlatformConfig struct {
	// Members is the network's membership on each platform.
	Members int
	// PostsPerPlatform is how many target posts receive a like burst on
	// each platform.
	PostsPerPlatform int
	// DeliveryIPs is the size of the network's shared IP pool.
	DeliveryIPs int
	Seed        int64
}

func (c CrossPlatformConfig) withDefaults() CrossPlatformConfig {
	if c.Members <= 0 {
		c.Members = 30
	}
	if c.PostsPerPlatform <= 0 {
		c.PostsPerPlatform = 6
	}
	if c.DeliveryIPs <= 0 {
		c.DeliveryIPs = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CrossPlatformRow is one signal-wiring mode's outcome.
type CrossPlatformRow struct {
	Mode          string
	LikesA        int64
	LikesB        int64
	PoolIPs       int
	FlaggedIPs    int
	DetectionRate float64
	Clusters      int
}

// CrossPlatformResult carries the rendered table and the raw rows.
type CrossPlatformResult struct {
	Table Table
	Rows  []CrossPlatformRow
}

// crossASN is the hosting AS the network's delivery IPs live in.
const crossASN netsim.ASN = 64500

// CrossPlatform runs the scenario once per signal mode — identical seeds,
// so the two rows differ only in detector wiring — and tabulates the
// result.
func CrossPlatform(cfg CrossPlatformConfig) (CrossPlatformResult, error) {
	cfg = cfg.withDefaults()
	var rows []CrossPlatformRow
	for _, mode := range []defense.SignalMode{defense.SignalSiloed, defense.SignalShared} {
		row, err := runCrossPlatform(cfg, mode)
		if err != nil {
			return CrossPlatformResult{}, err
		}
		rows = append(rows, row)
	}
	table := Table{
		ID:    "cross-platform",
		Title: "Cross-platform collusion: siloed vs shared abuse-signal detection",
		Columns: []string{
			"Signal Sharing", "Likes (facebook)", "Likes (pictogram)",
			"Delivery IPs", "IPs Flagged", "Detection Rate", "Clusters",
		},
		Notes: []string{
			"one network: implicit-flow harvest on facebook, code-flow companion app on pictogram",
			"detector: IP-keyed SynchroTrap; shared mode pools both platforms' like streams",
			fmt.Sprintf("%d members/platform, %d posts/platform, %d delivery IPs, seed %d",
				cfg.Members, cfg.PostsPerPlatform, cfg.DeliveryIPs, cfg.Seed),
		},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Mode,
			fmtInt(int(r.LikesA)),
			fmtInt(int(r.LikesB)),
			fmtInt(r.PoolIPs),
			fmtInt(r.FlaggedIPs),
			fmtFloat(r.DetectionRate*100, 0) + "%",
			fmtInt(r.Clusters),
		})
	}
	return CrossPlatformResult{Table: table, Rows: rows}, nil
}

// crossMember is one member's standing on both platforms.
type crossMember struct {
	idA, tokA string
	idB, tokB string
}

func runCrossPlatform(cfg CrossPlatformConfig, mode defense.SignalMode) (CrossPlatformRow, error) {
	clock := simclock.NewSimulated(time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC))
	internet := netsim.NewInternet()
	if err := internet.RegisterAS(netsim.AS{Number: crossASN, Name: "GENERIC-HOSTING", Country: "US"}, "192.168.0.0/16"); err != nil {
		return CrossPlatformRow{}, err
	}

	provA := provider.MustGet("facebook")
	provB := provider.MustGet("pictogram")
	pA := platform.NewFor(provA, clock, internet)
	pB := platform.NewFor(provB, clock, internet)

	// Identical detector parameters per platform; only the wiring differs.
	plane := defense.NewSignalPlane(mode, func() *defense.SynchroTrap {
		return defense.NewSynchroTrap(10*time.Minute, 0.5, 8, 3)
	})
	pA.Chain().Append(plane.TapFor(provA.Name()))
	pB.Chain().Append(plane.TapFor(provB.Name()))

	// The exploited app on A is a reviewed, client-flow app (the Table 3
	// shape). The companion app on B is the network's own registration:
	// B's lax review grants its write scope without question — B has no
	// equivalent of the sensitive-permission gate.
	appA := pA.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htcsense.example/callback",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, provA.ScopePublish()},
	})
	appB := pB.Apps.RegisterUnreviewed(apps.Config{
		Name:        "liker companion",
		RedirectURI: "https://liker-companion.example/callback",
		Lifetime:    apps.LongTerm,
		Permissions: []string{provB.ScopePublish(), provB.ScopeFriends()},
	})

	clientA := platform.NewLocalClient(pA)
	clientB := platform.NewLocalClient(pB)

	addrs, err := internet.AllocateN(crossASN, cfg.DeliveryIPs)
	if err != nil {
		return CrossPlatformRow{}, err
	}
	ips := make([]string, len(addrs))
	ipSet := make(map[string]bool, len(addrs))
	for i, a := range addrs {
		ips[i] = a.String()
		ipSet[ips[i]] = true
	}

	net := collusion.NewNetwork(collusion.Config{
		Name:            "official-liker.net",
		AppID:           appA.ID,
		AppRedirectURI:  appA.RedirectURI,
		LikesPerRequest: 20,
		IPs:             ips,
		Seed:            cfg.Seed,
		DeliveryWorkers: 1, // sequential bursts: bit-deterministic runs
	}, clock, clientA)
	net.SetObserver(pA.Obs)
	if err := net.LinkPlatform(provB.Name(), clientB, appB.ID, appB.Secret, appB.RedirectURI); err != nil {
		return CrossPlatformRow{}, err
	}

	// Membership: each member joins on A through the implicit flow
	// (Figure 3) and on B by pasting the companion app's one-time code.
	members := make([]crossMember, 0, cfg.Members)
	for i := 0; i < cfg.Members; i++ {
		var m crossMember
		acctA := pA.Graph.CreateAccount(fmt.Sprintf("xp-member-%d", i), "PK", clock.Now())
		m.idA = acctA.ID
		m.tokA, err = clientA.AuthorizeImplicit(appA.ID, appA.RedirectURI, acctA.ID,
			[]string{apps.PermPublicProfile, provA.ScopePublish()})
		if err != nil {
			return CrossPlatformRow{}, err
		}
		if err := net.SubmitToken(acctA.ID, m.tokA); err != nil {
			return CrossPlatformRow{}, err
		}

		acctB := pB.Graph.CreateAccount(fmt.Sprintf("xp-member-%d-pg", i), "PK", clock.Now())
		m.idB = acctB.ID
		code, err := clientB.AuthorizeCode(appB.ID, appB.RedirectURI, acctB.ID, []string{provB.ScopePublish()})
		if err != nil {
			return CrossPlatformRow{}, err
		}
		if err := net.SubmitLinkedCode(provB.Name(), acctB.ID, code); err != nil {
			return CrossPlatformRow{}, err
		}
		// The member's own session token on B, for publishing target posts.
		selfCode, err := clientB.AuthorizeCode(appB.ID, appB.RedirectURI, acctB.ID, []string{provB.ScopePublish()})
		if err != nil {
			return CrossPlatformRow{}, err
		}
		m.tokB, err = clientB.ExchangeCode(appB.ID, appB.Secret, appB.RedirectURI, selfCode)
		if err != nil {
			return CrossPlatformRow{}, err
		}
		members = append(members, m)
	}

	// Campaign: alternating bursts — a post on A, a post on B — one hour
	// apart, rotating the requesting member.
	for p := 0; p < cfg.PostsPerPlatform; p++ {
		m := members[p%len(members)]
		postA, err := clientA.Publish(m.tokA, fmt.Sprintf("boost-me-a-%d", p), "")
		if err != nil {
			return CrossPlatformRow{}, err
		}
		if _, err := net.RequestLikes(m.idA, postA, ""); err != nil {
			return CrossPlatformRow{}, err
		}
		clock.Advance(time.Hour)

		postB, err := clientB.Publish(m.tokB, fmt.Sprintf("boost-me-b-%d", p), "")
		if err != nil {
			return CrossPlatformRow{}, err
		}
		if _, err := net.RequestCrossLikes(provB.Name(), m.idA, postB, ""); err != nil {
			return CrossPlatformRow{}, err
		}
		clock.Advance(time.Hour)
	}

	clusters := plane.Detect()
	flagged := 0
	for _, c := range clusters {
		for _, entity := range c.Accounts {
			if ipSet[entity] {
				flagged++
			}
		}
	}
	stats := net.Stats()
	row := CrossPlatformRow{
		Mode:       mode.String(),
		LikesA:     stats.LikesDelivered,
		LikesB:     stats.CrossLikesDelivered,
		PoolIPs:    len(ips),
		FlaggedIPs: flagged,
		Clusters:   len(clusters),
	}
	if len(ips) > 0 {
		row.DetectionRate = float64(flagged) / float64(len(ips))
	}
	return row, nil
}
