package experiments

// Contention-aware performance sweep. Not a paper artifact — this is the
// reproduction's own instrumentation experiment: it sweeps the store's
// shard count, the milking driver's worker count, and the delivery mode
// (batched vs one call per like) against the same fleet, and reports
// throughput next to the contended fraction of shard-lock acquisitions
// from Store.Contention(). The table is how we verify that lock striping
// (PR 1) and batched delivery keep buying throughput as parallelism
// grows, and where the returns flatten.

import (
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// sweepNetworks is the fleet used by the sweep: the same eight
// no-daily-limit networks the milking benchmarks drive, so the sweep's
// likes/round agrees with the benchmark's invariant (464 at the default
// scale).
var sweepNetworks = []string{
	"mg-likers.com", "fast-liker.com", "autolikesgroups.com", "4liker.com",
	"f8-autoliker.com", "myliker.com", "kdliker.com", "oneliker.com",
}

// SweepContentionConfig parameterizes the sweep.
type SweepContentionConfig struct {
	// Scale is the population divisor; 0 selects 4000 (the benchmark
	// fleet's scale — small memberships, so the sweep runs in seconds).
	Scale int
	// Rounds is how many hourly milking rounds each cell runs.
	Rounds int
	// Shards and Workers are the axes; nil selects {1, 4, 16, 64} and
	// {1, 4, 8}.
	Shards  []int
	Workers []int
	Seed    int64
}

// SweepContention runs the shards × workers × delivery-mode grid and
// returns one row per cell: likes per round (which must not move across
// cells — delivery semantics are mode-independent), wall-clock rounds per
// second, and the contended fraction of shard-lock acquisitions.
func SweepContention(cfg SweepContentionConfig) (Table, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 4000
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 4, 16, 64}
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4, 8}
	}
	table := Table{
		ID:      "sweep-contention",
		Title:   "Parallel milking: shards × workers × delivery mode vs throughput and lock contention",
		Columns: []string{"Shards", "Workers", "Delivery", "Likes/round", "Rounds/s", "Contended %"},
		Notes: []string{
			"likes/round is invariant across cells: delivery semantics do not depend on sharding, workers, or batching",
			"rounds/s is wall-clock and varies with the host; compare within one run",
			"contended % is contended shard-lock acquisitions / total, from socialgraph.Store.Contention()",
		},
	}
	modes := []struct {
		name  string
		batch int
	}{
		{"per-call", -1},
		{"batched", 0},
	}
	for _, shards := range cfg.Shards {
		for _, workers := range cfg.Workers {
			for _, mode := range modes {
				study, err := core.NewStudy(workload.Options{
					Scale:             cfg.Scale,
					MinMembers:        60,
					Networks:          sweepNetworks,
					Seed:              cfg.Seed,
					Shards:            shards,
					DeliveryBatchSize: mode.batch,
				})
				if err != nil {
					return Table{}, err
				}
				likes := 0
				start := time.Now() //collusionvet:allow simclock -- rounds/s measures host wall-clock, not simulated time
				for r := 0; r < cfg.Rounds; r++ {
					for _, res := range study.MilkAllParallel(1, workers) {
						if res.Err != nil {
							return Table{}, res.Err
						}
						likes += res.Delivered
					}
					study.Scenario.Clock.Advance(time.Hour)
				}
				elapsed := time.Since(start) //collusionvet:allow simclock -- wall-clock throughput measurement
				roundsPerSec := 0.0
				if elapsed > 0 {
					roundsPerSec = float64(cfg.Rounds) / elapsed.Seconds()
				}
				contended := 0.0
				if acq, cont := study.Scenario.Platform.Graph.Contention().Totals(); acq > 0 {
					contended = 100 * float64(cont) / float64(acq)
				}
				table.Rows = append(table.Rows, []string{
					fmtInt(study.Scenario.Platform.Graph.ShardCount()),
					fmtInt(workers),
					mode.name,
					fmtFloat(float64(likes)/float64(cfg.Rounds), 1),
					fmtFloat(roundsPerSec, 1),
					fmtFloat(contended, 2),
				})
			}
		}
	}
	return table, nil
}
