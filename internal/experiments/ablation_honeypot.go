package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/collusion"
	"repro/internal/honeypot"
	"repro/internal/platform"
	"repro/internal/simclock"
)

// AblationHoneypotEvasion reproduces the Section 6.5 arms race: a
// collusion network that bans members making "very frequent like/comment
// requests" defeats a single aggressive honeypot, and the researchers'
// counter — several honeypots each below the detection threshold — keeps
// the milking pipeline alive at the same aggregate request rate.
func AblationHoneypotEvasion(seed int64) (Table, error) {
	const (
		days          = 5
		aggregateRate = 15 // requests per day the campaign needs
		maxDaily      = 5  // the network's suspicion threshold
	)
	type outcome struct {
		strategy  string
		succeeded int
		banned    int
		unique    int
	}
	run := func(honeypots int) (outcome, error) {
		clock := simclock.NewSimulated(time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC))
		p := platform.New(clock, nil)
		client := platform.NewLocalClient(p)
		app := p.Apps.Register(apps.Config{
			Name:              "HTC Sense",
			RedirectURI:       "https://htc.example/cb",
			ClientFlowEnabled: true,
			Lifetime:          apps.LongTerm,
			Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
		})
		network := collusion.NewNetwork(collusion.Config{
			Name:             "paranoid-liker.net",
			AppID:            app.ID,
			AppRedirectURI:   app.RedirectURI,
			LikesPerRequest:  30,
			HoneypotMaxDaily: maxDaily,
			HoneypotBanDays:  2,
			Seed:             seed,
		}, clock, client)
		for i := 0; i < 400; i++ {
			acct := p.Graph.CreateAccount(fmt.Sprintf("member-%d", i), "IN", clock.Now())
			tok, err := client.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID,
				[]string{apps.PermPublicProfile, apps.PermPublishActions})
			if err != nil {
				return outcome{}, err
			}
			if err := network.SubmitToken(acct.ID, tok); err != nil {
				return outcome{}, err
			}
		}

		hps := make([]*honeypot.Honeypot, honeypots)
		for i := range hps {
			hps[i] = honeypot.New(honeypot.Config{
				Clock:  clock,
				Graph:  p.Graph,
				Client: client,
				Site:   network,
				App:    app,
				Name:   fmt.Sprintf("honeypot-%d", i),
			})
			if err := hps[i].Join(); err != nil {
				return outcome{}, err
			}
		}
		est := honeypot.NewEstimator()
		out := outcome{}
		for day := 0; day < days; day++ {
			for r := 0; r < aggregateRate; r++ {
				hp := hps[r%len(hps)]
				postID, _, err := hp.MilkOnce()
				switch {
				case err == nil:
					likes := p.Graph.Likes(postID)
					ids := make([]string, len(likes))
					for i, l := range likes {
						ids[i] = l.AccountID
					}
					est.ObservePost(ids)
					out.succeeded++
				case errors.Is(err, collusion.ErrBanned):
					// Banned honeypots stay banned; keep going with the rest.
				default:
					return outcome{}, err
				}
				clock.Advance(90 * time.Minute)
			}
			clock.Advance(90 * time.Minute)
		}
		for _, hp := range hps {
			if network.Banned(hp.Account.ID) {
				out.banned++
			}
		}
		out.unique = est.MembershipEstimate()
		return out, nil
	}

	single, err := run(1)
	single.strategy = "1 honeypot × 15 req/day"
	if err != nil {
		return Table{}, err
	}
	fleet, err := run(4)
	fleet.strategy = "4 honeypots × ~4 req/day"
	if err != nil {
		return Table{}, err
	}

	table := Table{
		ID:      "ablation-honeypot-evasion",
		Title:   "Honeypot detection arms race (Sec. 6.5): network bans members above 5 requests/day",
		Columns: []string{"Strategy", "Posts milked (of 75)", "Honeypots banned", "Accounts identified"},
		Notes: []string{
			"the counter to honeypot detection: spread the campaign across accounts below the threshold",
		},
	}
	for _, o := range []outcome{single, fleet} {
		table.Rows = append(table.Rows, []string{
			o.strategy, fmtInt(o.succeeded), fmtInt(o.banned), fmtInt(o.unique),
		})
	}
	return table, nil
}
