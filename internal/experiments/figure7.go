package experiments

import (
	"repro/internal/core"
	"repro/internal/honeypot"
	"repro/internal/workload"
)

// Figure7Config parameterises the honeypot outgoing-activity timeseries.
type Figure7Config struct {
	Scale int
	Seed  int64
	// Hours is the observation window length (paper plots ~24 h).
	Hours int
	// BackgroundPerHour is the member like-request load that spends
	// pooled tokens (including the honeypots').
	BackgroundPerHour int
	Networks          []string
}

func (c Figure7Config) withDefaults() Figure7Config {
	if c.Scale <= 0 {
		c.Scale = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Hours <= 0 {
		c.Hours = 24
	}
	if c.BackgroundPerHour <= 0 {
		c.BackgroundPerHour = 20
	}
	if c.Networks == nil {
		c.Networks = []string{"hublaa.me", "official-liker.net"}
	}
	return c
}

// Figure7Panel is one network's hourly series of likes performed by the
// honeypot account.
type Figure7Panel struct {
	Network string
	// LikesPerHour[h] is the number of likes the honeypot's token
	// performed during hour h.
	LikesPerHour []int
	MaxPerHour   int
}

// Figure7Result carries the rendered figures and the raw panels.
type Figure7Result struct {
	Figures []Figure
	Panels  []Figure7Panel
}

// Figure7 reproduces Figure 7: the hourly number of likes performed *by*
// the honeypot account. Collusion networks spread each token's usage
// over time (the paper observes 5–10 likes per hour), which keeps every
// account's activity below temporal-clustering thresholds.
func Figure7(cfg Figure7Config) (Figure7Result, error) {
	cfg = cfg.withDefaults()
	study, err := core.NewStudy(workload.Options{
		Scale:    cfg.Scale,
		Networks: cfg.Networks,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return Figure7Result{}, err
	}
	origin := study.Clock().Now()
	for h := 0; h < cfg.Hours; h++ {
		for _, ni := range study.Scenario.Networks {
			ni.BackgroundRequests(cfg.BackgroundPerHour)
		}
		study.AdvanceHour()
	}

	var result Figure7Result
	for _, ni := range study.Scenario.Networks {
		name := ni.Spec.Name
		hp := study.Honeypots[name]
		series := honeypot.HourlySeries(hp.OutgoingActivities(), origin)
		panel := Figure7Panel{Network: name, LikesPerHour: make([]int, cfg.Hours)}
		for _, pt := range series.Points() {
			if pt.Bucket >= 0 && pt.Bucket < cfg.Hours {
				panel.LikesPerHour[pt.Bucket] = int(pt.Count)
				if int(pt.Count) > panel.MaxPerHour {
					panel.MaxPerHour = int(pt.Count)
				}
			}
		}
		fig := Figure{
			ID:     "figure7",
			Title:  "Hourly likes performed by the honeypot account — " + name,
			XLabel: "hour",
			YLabel: "number of likes",
			Notes: []string{
				"per-token usage is spread by the network's hourly cap; no sustained burst exists for clustering to catch",
			},
		}
		s := Series{Label: name}
		for h, n := range panel.LikesPerHour {
			s.Points = append(s.Points, SeriesPoint{X: float64(h), Y: float64(n)})
		}
		fig.Series = []Series{s}
		result.Panels = append(result.Panels, panel)
		result.Figures = append(result.Figures, fig)
	}
	return result, nil
}
