package experiments

import (
	"testing"
)

func TestFigure4Shapes(t *testing.T) {
	res, err := Figure4(Figure4Config{Scale: 500, PostsDivisor: 40, MinPosts: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		if len(p.CumulativeLikes) < 25 {
			t.Fatalf("%s: %d points", p.Network, len(p.CumulativeLikes))
		}
		last := len(p.CumulativeLikes) - 1
		// Both curves are non-decreasing, and unique ≤ likes everywhere.
		for i := range p.CumulativeLikes {
			if i > 0 {
				if p.CumulativeLikes[i].Y < p.CumulativeLikes[i-1].Y {
					t.Fatalf("%s: likes decreased at %d", p.Network, i)
				}
				if p.CumulativeUnique[i].Y < p.CumulativeUnique[i-1].Y {
					t.Fatalf("%s: unique decreased at %d", p.Network, i)
				}
			}
			if p.CumulativeUnique[i].Y > p.CumulativeLikes[i].Y {
				t.Fatalf("%s: unique above likes at %d", p.Network, i)
			}
		}
		// The diminishing-returns signature: by the end, unique accounts
		// fall clearly below cumulative likes (repetition), and the
		// second-half unique growth is smaller than the first half's.
		if p.CumulativeUnique[last].Y >= 0.9*p.CumulativeLikes[last].Y {
			t.Fatalf("%s: no repetition observed (unique %.0f of %.0f likes)",
				p.Network, p.CumulativeUnique[last].Y, p.CumulativeLikes[last].Y)
		}
		mid := last / 2
		firstHalf := p.CumulativeUnique[mid].Y
		secondHalf := p.CumulativeUnique[last].Y - firstHalf
		if secondHalf >= firstHalf {
			t.Fatalf("%s: unique growth not flattening (%.0f then %.0f)",
				p.Network, firstHalf, secondHalf)
		}
	}
}

// TestFigure5Timeline runs the full 75-day countermeasure campaign and
// asserts the paper's qualitative story at each deployment.
func TestFigure5Timeline(t *testing.T) {
	if testing.Short() {
		t.Skip("75-day campaign: skipped with -short")
	}
	res, err := Figure5(Figure5Config{Scale: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hub := res.Daily["hublaa.me"]
	off := res.Daily["official-liker.net"]
	if len(hub) != 75 || len(off) != 75 {
		t.Fatalf("series lengths = %d, %d", len(hub), len(off))
	}
	day := func(s []float64, d int) float64 { return s[d-1] }

	// Baseline (days 1–11): both at their full quotas.
	for d := 1; d <= 11; d++ {
		if day(hub, d) < 340 || day(off, d) < 380 {
			t.Fatalf("baseline day %d: hublaa=%.0f official=%.0f", d, day(hub, d), day(off, d))
		}
	}
	// Day 12 rate-limit reduction: no impact on hublaa (large pool keeps
	// per-token usage low), sharp drop for hot-set official-liker.
	if day(hub, 13) < 340 {
		t.Fatalf("hublaa affected by rate limit: %.0f", day(hub, 13))
	}
	if day(off, 13) > 0.7*390 {
		t.Fatalf("official-liker not limited: %.0f", day(off, 13))
	}
	// ...which bounces back within about a week (sampling adaptation).
	if day(off, 20) < 350 {
		t.Fatalf("official-liker did not adapt: %.0f", day(off, 20))
	}
	// Day 28 full invalidation: sharp decline for both.
	if day(hub, 29) > 0.5*350 || day(off, 29) > 0.5*390 {
		t.Fatalf("day-28 sweep ineffective: hublaa=%.0f official=%.0f", day(hub, 29), day(off, 29))
	}
	// Half-of-new-daily phase (28–35): partial bounce-back from fresh
	// arrivals.
	if day(hub, 35) < day(hub, 29) {
		t.Fatalf("hublaa no bounce-back: day29=%.0f day35=%.0f", day(hub, 29), day(hub, 35))
	}
	// All-new-daily (36+): suppressed but alive.
	if day(hub, 40) == 0 || day(hub, 40) > 0.5*350 {
		t.Fatalf("hublaa day 40 = %.0f", day(hub, 40))
	}
	// hublaa.me site outage days 45–50.
	for d := 45; d <= 50; d++ {
		if day(hub, d) != 0 {
			t.Fatalf("hublaa served during outage day %d: %.0f", d, day(hub, d))
		}
	}
	if day(hub, 52) == 0 {
		t.Fatal("hublaa did not resume after outage")
	}
	// Day 46 IP rate limits: official-liker collapses (its couple of IPs
	// blow the caps); hublaa's thousands of addresses stay under them.
	for d := 48; d <= 69; d++ {
		if day(off, d) > 30 {
			t.Fatalf("official-liker alive after IP limits, day %d: %.0f", d, day(off, d))
		}
	}
	if day(hub, 60) == 0 {
		t.Fatal("hublaa killed by IP limits (should survive until AS block)")
	}
	// Day 55 clustering: no additional impact (the paper's negative
	// result) — hublaa holds its pre-clustering level.
	if day(hub, 58) < 0.5*day(hub, 54) {
		t.Fatalf("clustering unexpectedly effective: day54=%.0f day58=%.0f", day(hub, 54), day(hub, 58))
	}
	// Day 70 AS blocking: hublaa ceases entirely.
	for d := 71; d <= 75; d++ {
		if day(hub, d) != 0 {
			t.Fatalf("hublaa alive after AS block, day %d: %.0f", d, day(hub, d))
		}
	}
}

func TestFigure6Concentration(t *testing.T) {
	// Preserve the posts×quota/pool ratio that shapes the histogram:
	// with 8 posts at scale 100, a hublaa.me account is expected to like
	// ≈1 post, like the paper's regime.
	res, err := Figure6(Figure6Config{Scale: 100, Posts: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 2 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	panels := map[string]Figure6Panel{}
	for _, p := range res.Panels {
		total := 0.0
		for _, f := range p.Fraction {
			total += f
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("%s fractions sum to %v", p.Network, total)
		}
		panels[p.Network] = p
	}
	hub := panels["hublaa.me"]
	off := panels["official-liker.net"]
	// The paper's relative story (76% vs 30% at ≤1 post): uniform
	// sampling from hublaa's large pool spreads likes across accounts,
	// while official-liker's hot-set reuse concentrates them.
	if hub.AtMostOne < 0.3 {
		t.Fatalf("hublaa AtMostOne = %.2f", hub.AtMostOne)
	}
	if hub.AtMostOne <= off.AtMostOne {
		t.Fatalf("concentration inverted: hublaa %.2f vs official %.2f", hub.AtMostOne, off.AtMostOne)
	}
}

func TestFigure7SpreadUsage(t *testing.T) {
	res, err := Figure7(Figure7Config{Scale: 300, Hours: 24, BackgroundPerHour: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Panels {
		if p.MaxPerHour == 0 {
			t.Fatalf("%s: honeypot token never used", p.Network)
		}
		// The network's hourly spread cap (10) bounds per-hour usage —
		// the "5–10 likes per hour" observation of Figure 7.
		if p.MaxPerHour > 10 {
			t.Fatalf("%s: %d likes in one hour exceeds spread cap", p.Network, p.MaxPerHour)
		}
		activeHours := 0
		for _, n := range p.LikesPerHour {
			if n > 0 {
				activeHours++
			}
		}
		if activeHours < 12 {
			t.Fatalf("%s: activity concentrated in %d hours", p.Network, activeHours)
		}
	}
}

func TestFigure8Footprints(t *testing.T) {
	res, err := Figure8(Figure8Config{Scale: 100, Days: 6, MilksPerDay: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	panels := map[string]Figure8Panel{}
	for _, p := range res.Panels {
		panels[p.Network] = p
	}
	hub := panels["hublaa.me"]
	off := panels["official-liker.net"]
	// official-liker delivers through a couple of addresses in one AS;
	// hublaa spreads across a large pool in two bulletproof ASes.
	if len(off.PerIP) > 4 {
		t.Fatalf("official-liker IPs = %d", len(off.PerIP))
	}
	if off.DistinctASes != 1 {
		t.Fatalf("official-liker ASes = %d", off.DistinctASes)
	}
	if len(hub.PerIP) < 20 {
		t.Fatalf("hublaa IPs = %d", len(hub.PerIP))
	}
	if hub.DistinctASes != 2 {
		t.Fatalf("hublaa ASes = %d", hub.DistinctASes)
	}
	// Every official-liker IP is observed on most days and carries a
	// large like volume (the concentration that per-IP limits exploit).
	for _, pt := range off.PerIP {
		if pt.DaysObserved < 4 {
			t.Fatalf("official IP %s observed %d days", pt.Key, pt.DaysObserved)
		}
	}
	offTop := off.PerIP[0].Likes
	hubTop := hub.PerIP[0].Likes
	if offTop < 5*hubTop {
		t.Fatalf("per-IP concentration missing: official top %d vs hublaa top %d", offTop, hubTop)
	}
}

// TestFigure5ScaleInvariance guards the model against scale artifacts:
// the qualitative transitions of the first half of the campaign (rate
// limit dip + adaptation, full-invalidation crash, bounce-back) must
// hold at a different population scale too.
func TestFigure5ScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("36-day campaign: skipped with -short")
	}
	res, err := Figure5(Figure5Config{Scale: 200, Seed: 5, Days: 36})
	if err != nil {
		t.Fatal(err)
	}
	hub := res.Daily["hublaa.me"]
	off := res.Daily["official-liker.net"]
	day := func(s []float64, d int) float64 { return s[d-1] }
	if day(hub, 5) < 340 || day(off, 5) < 380 {
		t.Fatalf("baseline: hublaa=%.0f official=%.0f", day(hub, 5), day(off, 5))
	}
	if day(hub, 13) < 340 {
		t.Fatalf("hublaa hit by rate limit at scale 200: %.0f", day(hub, 13))
	}
	if day(off, 13) > 0.7*390 {
		t.Fatalf("official not limited at scale 200: %.0f", day(off, 13))
	}
	if day(off, 22) < 350 {
		t.Fatalf("official did not adapt at scale 200: %.0f", day(off, 22))
	}
	if day(hub, 29) > 0.5*350 || day(off, 29) > 0.5*390 {
		t.Fatalf("day-28 sweep ineffective at scale 200: hublaa=%.0f official=%.0f",
			day(hub, 29), day(off, 29))
	}
	if day(hub, 35) < day(hub, 29) {
		t.Fatalf("no bounce-back at scale 200: day29=%.0f day35=%.0f", day(hub, 29), day(hub, 35))
	}
}

// TestFigure5AllNetworks runs the fleet-wide campaign: every network
// ceases operating, and hublaa.me is the sole survivor until the AS
// block — the paper's "other popular collusion networks also stopped
// working" outcome.
func TestFigure5AllNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("22-network 75-day campaign: skipped with -short")
	}
	res, err := Figure5AllNetworks(Figure5Config{Scale: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeathDay) != 22 {
		t.Fatalf("networks = %d", len(res.DeathDay))
	}
	latest := ""
	latestDay := 0
	for name, day := range res.DeathDay {
		if day == 0 {
			t.Fatalf("%s survived the whole campaign", name)
		}
		// Nothing dies before the invalidation era begins.
		if day < 23 {
			t.Fatalf("%s ceased on day %d, before any token sweep", name, day)
		}
		if day > latestDay {
			latest, latestDay = name, day
		}
	}
	// hublaa.me outlives everyone, falling only to the day-70 AS block.
	if latest != "hublaa.me" {
		t.Fatalf("last survivor = %s (day %d), want hublaa.me", latest, latestDay)
	}
	if latestDay < 68 {
		t.Fatalf("hublaa.me ceased on day %d, want the AS-block era", latestDay)
	}
}
