package experiments

import (
	"os"
	"testing"
	"time"
)

// TestScaleSLOGolden pins the rendered scale-slo table byte for byte.
// Everything in it — like totals, eviction counts, the latency quantiles
// on the frozen timing clock — is a pure function of the default config,
// so any drift means the load generator, the retention sweep, or the
// histogram quantile estimator changed behaviour. Regenerate with a
// one-off call to ScaleSLO writing Table.String() to the golden path.
func TestScaleSLOGolden(t *testing.T) {
	res, err := ScaleSLO(ScaleSLOConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/scale-slo.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.String(); got != string(want) {
		t.Fatalf("scale-slo output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Sanity on the raw report behind the bytes.
	if res.Report.Sweeps == 0 || res.Report.Evicted.Likes == 0 {
		t.Fatalf("report shows no retention activity: %+v", res.Report)
	}
	if res.Report.P99 < res.Report.P50 {
		t.Fatalf("p99 %v < p50 %v", res.Report.P99, res.Report.P50)
	}
}

// TestTable4UnchangedByInfiniteRetention: enabling the retention machinery
// at an effectively infinite window (sweeps run every campaign hour but
// never find anything to evict) must leave the Table 4 reproduction
// byte-identical — retention is an analytics-window policy, not a
// behaviour change.
func TestTable4UnchangedByInfiniteRetention(t *testing.T) {
	cfg := Table4Config{Scale: 4000, MinPosts: 4, Networks: []string{
		"official-liker.com", "djliker.com", "myliker.com",
	}, Seed: 17}
	base, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RetentionWindow = 1000 * 24 * time.Hour
	retained, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, want := retained.Table.String(), base.Table.String()
	if got != want {
		t.Fatalf("Table 4 drifted under infinite-window retention:\n--- with retention ---\n%s--- without ---\n%s", got, want)
	}
	// The sweeps did run (the campaign advanced many hours), they just
	// never evicted: the counters prove the machinery was exercised.
	snap := retained.Study.Scenario.Platform.Graph.Retention().Snapshot()
	if snap.Sweeps == 0 {
		t.Fatal("no sweeps ran during the campaign")
	}
	if snap.Likes != 0 || snap.Comments != 0 || snap.Activities != 0 {
		t.Fatalf("infinite-window sweeps evicted: %+v", snap)
	}
}
