// Package experiments contains one driver per table and figure in the
// paper's evaluation, each reconstructing the corresponding result from a
// live end-to-end run of the simulated ecosystem. Drivers return
// structured Tables (for the paper's tables) or Series (for its figures)
// that render to aligned text, and cmd/repro prints them.
//
// Every driver takes an explicit Config with a Seed, so outputs are
// deterministic and reproducible bit-for-bit.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result in tabular form.
type Table struct {
	ID      string // e.g. "table4"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries methodology caveats (scaling, substitutions).
	Notes []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SeriesPoint is one x/y pair of a figure series.
type SeriesPoint struct {
	X float64
	Y float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []SeriesPoint
}

// Figure is a rendered experiment result in figure form: one or more
// series over a shared x-axis.
type Figure struct {
	ID     string // e.g. "figure5"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Annotations mark events on the x-axis (the Figure 5 countermeasure
	// deployments).
	Annotations map[float64]string
	Notes       []string
}

// String renders the figure as a data listing plus a coarse ASCII plot
// per series.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "series %q (%d points):\n", s.Label, len(s.Points))
		b.WriteString(sparkline(s.Points))
		// Long series are downsampled for the listing, but every
		// annotated x (a countermeasure event) is always printed.
		const maxListed = 40
		stride := 1
		if len(s.Points) > maxListed {
			stride = (len(s.Points) + maxListed - 1) / maxListed
		}
		for i, p := range s.Points {
			ann := ""
			if f.Annotations != nil {
				if a, ok := f.Annotations[p.X]; ok {
					ann = "   <- " + a
				}
			}
			if i%stride != 0 && ann == "" && i != len(s.Points)-1 {
				continue
			}
			fmt.Fprintf(&b, "  %10.2f  %12.2f%s\n", p.X, p.Y, ann)
		}
		if stride > 1 {
			fmt.Fprintf(&b, "  (listing downsampled 1/%d; all %d points retained in the data)\n", stride, len(s.Points))
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// sparkline renders a one-line unicode sketch of the series shape.
func sparkline(points []SeriesPoint) string {
	if len(points) == 0 {
		return "  (empty)\n"
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	min, max := points[0].Y, points[0].Y
	for _, p := range points {
		if p.Y < min {
			min = p.Y
		}
		if p.Y > max {
			max = p.Y
		}
	}
	var b strings.Builder
	b.WriteString("  ")
	for _, p := range points {
		idx := 0
		if max > min {
			idx = int((p.Y - min) / (max - min) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	b.WriteByte('\n')
	return b.String()
}

// fmtInt renders an integer with thousands separators, as the paper's
// tables do.
func fmtInt(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// fmtFloat renders a float with the given precision.
func fmtFloat(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}
