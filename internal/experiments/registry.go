package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Output is what an experiment run produces: tables and/or figures.
type Output struct {
	Tables  []Table
	Figures []Figure
}

// String renders everything.
func (o Output) String() string {
	var b strings.Builder
	for _, t := range o.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range o.Figures {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner executes one experiment at the given population scale.
type Runner func(scale int, seed int64) (Output, error)

// Registry maps experiment IDs (table1..table6, figure4..figure8) to
// runners with sensible default parameters.
var Registry = map[string]Runner{
	"table1": func(scale int, seed int64) (Output, error) {
		res, err := Table1(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"table2": func(scale int, seed int64) (Output, error) {
		res := Table2(seed)
		return Output{Tables: []Table{res.Table}}, nil
	},
	"table3": func(scale int, seed int64) (Output, error) {
		res, err := Table3(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"table4": func(scale int, seed int64) (Output, error) {
		res, err := Table4(Table4Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"table5": func(scale int, seed int64) (Output, error) {
		res := Table5(Table5Config{Seed: seed})
		return Output{Tables: []Table{res.Table}}, nil
	},
	"table6": func(scale int, seed int64) (Output, error) {
		res, err := Table6(Table6Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"figure4": func(scale int, seed int64) (Output, error) {
		res, err := Figure4(Figure4Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Figures: res.Figures}, nil
	},
	"figure5": func(scale int, seed int64) (Output, error) {
		res, err := Figure5(Figure5Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Figures: []Figure{res.Figure}}, nil
	},
	"figure5-all": func(scale int, seed int64) (Output, error) {
		res, err := Figure5AllNetworks(Figure5Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}, Figures: []Figure{res.Fig.Figure}}, nil
	},
	"figure6": func(scale int, seed int64) (Output, error) {
		res, err := Figure6(Figure6Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Figures: res.Figures}, nil
	},
	"figure7": func(scale int, seed int64) (Output, error) {
		res, err := Figure7(Figure7Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Figures: res.Figures}, nil
	},
	"figure8": func(scale int, seed int64) (Output, error) {
		res, err := Figure8(Figure8Config{Scale: scale, Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Figures: res.Figures}, nil
	},
	"ablation-ratelimit": func(scale int, seed int64) (Output, error) {
		tbl, err := AblationRateLimit(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{tbl}}, nil
	},
	"ablation-invalidation": func(scale int, seed int64) (Output, error) {
		tbl, err := AblationInvalidation(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{tbl}}, nil
	},
	"ablation-clustering": func(scale int, seed int64) (Output, error) {
		tbl, err := AblationClustering(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{tbl}}, nil
	},
	"ablation-ip-vs-as": func(scale int, seed int64) (Output, error) {
		tbl, err := AblationIPvsAS(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{tbl}}, nil
	},
	"ablation-rejected": func(scale int, seed int64) (Output, error) {
		tbl, err := AblationRejectedCountermeasures(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{tbl}}, nil
	},
	"ablation-honeypot-evasion": func(scale int, seed int64) (Output, error) {
		tbl, err := AblationHoneypotEvasion(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{tbl}}, nil
	},
	"extension-privacy": func(scale int, seed int64) (Output, error) {
		res, err := ExtensionPrivacy(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"extension-detection": func(scale int, seed int64) (Output, error) {
		res, err := ExtensionDetection(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"sweep-contention": func(scale int, seed int64) (Output, error) {
		// The population flag is a divisor, so the CLI default of 100
		// would build a fleet ~40× larger than the sweep needs; the
		// sweep pins its own benchmark-fleet scale unless the caller
		// asks for an even smaller population (a larger divisor).
		cfg := SweepContentionConfig{Seed: seed}
		if scale > 4000 {
			cfg.Scale = scale
		}
		tbl, err := SweepContention(cfg)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{tbl}}, nil
	},
	"scale-slo": func(scale int, seed int64) (Output, error) {
		// The population flag is a divisor for the paper experiments; the
		// scale profile wants an absolute account count, so only an
		// explicit larger-than-default value is passed through.
		cfg := ScaleSLOConfig{Seed: seed}
		if scale > 5000 {
			cfg.Accounts = scale
		}
		res, err := ScaleSLO(cfg)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"cross-platform": func(scale int, seed int64) (Output, error) {
		res, err := CrossPlatform(CrossPlatformConfig{Seed: seed})
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
	"extension-economics": func(scale int, seed int64) (Output, error) {
		res, err := ExtensionEconomics(seed)
		if err != nil {
			return Output{}, err
		}
		return Output{Tables: []Table{res.Table}}, nil
	},
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, scale int, seed int64) (Output, error) {
	r, ok := Registry[id]
	if !ok {
		return Output{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(scale, seed)
}
