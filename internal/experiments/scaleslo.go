package experiments

import (
	"time"

	"repro/internal/workload"
)

// ScaleSLO exercises the scale profile end to end in deterministic mode:
// build a small population with BuildScale, drive the open-loop load
// generator on the frozen timing clock, sweep retention on a finite
// window, and render the resulting throughput/retention/SLO counters.
// Because timing is frozen and sweeps drain the apply pool first, every
// cell is a pure function of (config, seed) — the golden test pins the
// rendered bytes.

// ScaleSLOConfig parameterises the run. The zero value is the golden
// profile.
type ScaleSLOConfig struct {
	Accounts        int
	TargetRPS       int
	Duration        time.Duration
	SweepEvery      time.Duration
	RetentionWindow time.Duration
	Seed            int64
}

func (c ScaleSLOConfig) withDefaults() ScaleSLOConfig {
	if c.Accounts <= 0 {
		c.Accounts = 5000
	}
	if c.TargetRPS <= 0 {
		c.TargetRPS = 200
	}
	if c.Duration <= 0 {
		c.Duration = 90 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 20 * time.Second
	}
	if c.RetentionWindow <= 0 {
		c.RetentionWindow = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ScaleSLOResult carries the rendered table plus the raw report.
type ScaleSLOResult struct {
	Table  Table
	World  *workload.ScaleWorld
	Report workload.LoadReport
}

// ScaleSLO runs the deterministic scale/load/retention profile.
func ScaleSLO(cfg ScaleSLOConfig) (ScaleSLOResult, error) {
	cfg = cfg.withDefaults()
	w, err := workload.BuildScale(workload.ScaleConfig{
		Accounts:        cfg.Accounts,
		RetentionWindow: cfg.RetentionWindow,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return ScaleSLOResult{}, err
	}
	rep := w.RunLoad(workload.LoadConfig{
		TargetRPS:        cfg.TargetRPS,
		Duration:         cfg.Duration,
		SweepEvery:       cfg.SweepEvery,
		DrainBeforeSweep: true,
		Seed:             cfg.Seed,
	})

	table := Table{
		ID:      "scale-slo",
		Title:   "Scale profile: open-loop load + per-shard retention (deterministic mode)",
		Columns: []string{"Metric", "Value"},
		Notes: []string{
			"accounts " + fmtInt(cfg.Accounts) +
				", target " + fmtInt(cfg.TargetRPS) + " rps over " + cfg.Duration.String() +
				", retention " + cfg.RetentionWindow.String() +
				", sweep every " + cfg.SweepEvery.String(),
			"timing clock frozen: latency quantiles collapse to the histogram floor",
		},
	}
	add := func(metric, value string) {
		table.Rows = append(table.Rows, []string{metric, value})
	}
	add("Offered requests", fmtInt(int(rep.Offered)))
	add("Likes applied", fmtInt(int(rep.Likes)))
	add("Duplicate likes", fmtInt(int(rep.DuplicateLikes)))
	add("Comments", fmtInt(int(rep.Comments)))
	add("Posts", fmtInt(int(rep.Posts)))
	add("Retention sweeps", fmtInt(int(rep.Sweeps)))
	add("Likes evicted", fmtInt(int(rep.Evicted.Likes)))
	add("Comments evicted", fmtInt(int(rep.Evicted.Comments)))
	add("Activities evicted", fmtInt(int(rep.Evicted.Activities)))
	add("Likes retained (end)", fmtInt(int(rep.Retained.Likes)))
	add("Comments retained (end)", fmtInt(int(rep.Retained.Comments)))
	add("Like p50", rep.P50.String())
	add("Like p99", rep.P99.String())
	return ScaleSLOResult{Table: table, World: w, Report: rep}, nil
}
