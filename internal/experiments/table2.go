package experiments

import (
	"math/rand"
	"sort"

	"repro/internal/workload"
)

// Table2Row is one network's traffic-model outcome.
type Table2Row struct {
	Network         string
	ModeledRank     int
	TopCountry      string
	TopCountryShare float64 // percent
	// Milked marks the 22 networks of the honeypot campaign.
	Milked bool
}

// Table2Result carries the rendered table and the raw rows.
type Table2Result struct {
	Table Table
	Rows  []Table2Row
}

// alexaCalibration anchors the rank model: hublaa.me's 294,949 members
// map to its reported Alexa rank of ~8K, and ranks scale inversely with
// modeled daily visitors.
const alexaCalibration = 8_000.0 * 294_949.0

// Table2 reproduces Table 2: the paper's full top-50 collusion network
// roster ordered by modeled traffic rank, with each site's top visitor
// country and its share. Instead of Alexa (defunct), ranks for the 22
// milked networks come from an inverse-traffic model calibrated on
// hublaa.me (country shares are measured by sampling each network's
// member geography); the 28 ranked-but-unmilked sites carry their
// published ranks and country mixes directly.
func Table2(seed int64) Table2Result {
	rng := rand.New(rand.NewSource(seed))
	var rows []Table2Row
	for _, spec := range workload.Networks() {
		// Model daily visitors as proportional to membership; sample the
		// member population's geography to measure the top country share.
		visitors := float64(spec.Membership)
		rank := int(alexaCalibration / visitors)

		mix := workload.CountryMixFor(spec)
		counts := make(map[string]int)
		const samples = 4000
		for i := 0; i < samples; i++ {
			counts[mix.Sample(rng)]++
		}
		top, topN := "", 0
		for c, n := range counts {
			if n > topN {
				top, topN = c, n
			}
		}
		rows = append(rows, Table2Row{
			Network:         spec.Name,
			ModeledRank:     rank,
			TopCountry:      top,
			TopCountryShare: 100 * float64(topN) / samples,
			Milked:          true,
		})
	}
	for _, site := range workload.RankedOnlySites() {
		rows = append(rows, Table2Row{
			Network:         site.Name,
			ModeledRank:     site.AlexaRank,
			TopCountry:      site.TopCountry,
			TopCountryShare: 100 * site.TopCountryShare,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ModeledRank < rows[j].ModeledRank })

	table := Table{
		ID:      "table2",
		Title:   "Collusion networks in ascending order of modeled traffic rank (full top-50 roster)",
		Columns: []string{"Collusion Network", "Rank", "Top Country", "Top Country Visitors", "Milked"},
		Notes: []string{
			"Alexa is defunct; milked networks' ranks derive from an inverse-traffic model calibrated on hublaa.me (rank 8K)",
			"milked networks' country shares measured by sampling member geography; unmilked sites carry published values",
		},
	}
	for _, r := range rows {
		milked := ""
		if r.Milked {
			milked = "yes"
		}
		table.Rows = append(table.Rows, []string{
			r.Network,
			fmtInt(r.ModeledRank),
			r.TopCountry,
			fmtFloat(r.TopCountryShare, 0) + "%",
			milked,
		})
	}
	return Table2Result{Table: table, Rows: rows}
}
