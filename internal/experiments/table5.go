package experiments

import (
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/shorturl"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Table5Config parameterises the short-URL analytics reproduction.
type Table5Config struct {
	// ClickScale divides the paper's click counts when replaying click
	// streams (147.9M clicks at scale 100,000 → 1,479 replayed clicks).
	ClickScale int
	Seed       int64
}

func (c Table5Config) withDefaults() Table5Config {
	if c.ClickScale <= 0 {
		c.ClickScale = 100_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table5Row is one short URL's analytics record.
type Table5Row struct {
	Code        string
	Created     time.Time
	ShortClicks int
	LongClicks  int
	App         string
	TopReferrer string
	TopCountry  string
}

// Table5Result carries the rendered table and raw rows.
type Table5Result struct {
	Table Table
	Rows  []Table5Row
}

// Table5 reproduces Table 5: collusion networks funnel members to the
// exploited applications' install dialogs through short URLs; the
// shortener's public analytics expose creation dates, per-code and
// per-destination click counts, referrers, and click geography. The
// click streams are replayed at a configurable scale with referrer and
// country distributions from the owning network specs.
func Table5(cfg Table5Config) Table5Result {
	cfg = cfg.withDefaults()
	// The oldest short URL was created June 11, 2014.
	epoch := time.Date(2014, time.June, 11, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSimulated(epoch)
	svc := shorturl.NewService(clock)
	rng := rand.New(rand.NewSource(cfg.Seed))

	specs := workload.ShortURLs()
	type pending struct {
		spec workload.ShortURLSpec
		code string
	}
	var urls []pending
	// Create the short URLs at their historical offsets.
	day := 0
	for { // walk days in order, creating URLs as their day arrives
		created := false
		for _, s := range specs {
			if s.CreatedDay == day {
				long := "https://platform.example/dialog/oauth?client_id=" + s.App
				urls = append(urls, pending{spec: s, code: svc.Shorten(long)})
				created = true
			}
		}
		_ = created
		day++
		if day > maxCreatedDay(specs) {
			break
		}
		clock.Advance(24 * time.Hour)
	}

	// Replay scaled click streams: referrer = the spec's referrer site,
	// country drawn from the geographies the paper reports (IN, EG, VN,
	// BD, PK, ID, DZ dominated).
	geo := netsim.NewCountryMix(map[string]float64{
		"IN": 45, "EG": 12, "VN": 10, "BD": 9, "PK": 9, "ID": 8, "DZ": 7,
	})
	for _, u := range urls {
		clicks := u.spec.ShortClicks / cfg.ClickScale
		if clicks < 10 {
			clicks = 10
		}
		for i := 0; i < clicks; i++ {
			if _, err := svc.Resolve(u.code, u.spec.Referrer, geo.Sample(rng)); err != nil {
				panic("experiments: resolving own short URL: " + err.Error())
			}
		}
	}

	table := Table{
		ID:    "table5",
		Title: "Statistics of short URLs used by collusion networks",
		Columns: []string{
			"Short Code", "Date Created", "Short URL Clicks", "Long URL Clicks",
			"Application", "Top Referrer", "Top Country",
		},
		Notes: []string{
			"click streams replayed at scale 1/" + fmtInt(cfg.ClickScale) + " of the paper's counts",
			"several short URLs point to the same long URL; Long URL Clicks sums across them",
		},
	}
	var rows []Table5Row
	for _, u := range urls {
		info, err := svc.Info(u.code)
		if err != nil {
			panic("experiments: info for own short URL: " + err.Error())
		}
		top, topN := "", 0
		for c, n := range info.Countries {
			if n > topN || (n == topN && c < top) {
				top, topN = c, n
			}
		}
		row := Table5Row{
			Code:        u.code,
			Created:     info.CreatedAt,
			ShortClicks: info.ShortClicks,
			LongClicks:  info.LongClicks,
			App:         u.spec.App,
			TopReferrer: info.TopReferrer,
			TopCountry:  top,
		}
		rows = append(rows, row)
		table.Rows = append(table.Rows, []string{
			row.Code,
			row.Created.Format("2006-01-02"),
			fmtInt(row.ShortClicks),
			fmtInt(row.LongClicks),
			row.App,
			row.TopReferrer,
			row.TopCountry,
		})
	}
	return Table5Result{Table: table, Rows: rows}
}

func maxCreatedDay(specs []workload.ShortURLSpec) int {
	max := 0
	for _, s := range specs {
		if s.CreatedDay > max {
			max = s.CreatedDay
		}
	}
	return max
}
