package experiments

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// Figure8Config parameterises the IP/AS footprint experiment.
type Figure8Config struct {
	Scale int
	Seed  int64
	// Days is the observation window (the paper tracked ~50 days of the
	// countermeasure campaign).
	Days int
	// MilksPerDay is the honeypot posting rate.
	MilksPerDay int
	Networks    []string
}

func (c Figure8Config) withDefaults() Figure8Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Days <= 0 {
		c.Days = 10
	}
	if c.MilksPerDay <= 0 {
		c.MilksPerDay = 10
	}
	if c.Networks == nil {
		c.Networks = []string{"hublaa.me", "official-liker.net"}
	}
	return c
}

// FootprintPoint is one IP's (or AS's) observation record.
type FootprintPoint struct {
	Key          string // IP address or "AS<number>"
	DaysObserved int
	Likes        int
}

// Figure8Panel is one network's footprint.
type Figure8Panel struct {
	Network string
	PerIP   []FootprintPoint
	PerAS   []FootprintPoint
	// DistinctASes counts the autonomous systems behind the network's
	// delivery traffic: two (bulletproof) for hublaa.me, one for
	// official-liker.net.
	DistinctASes int
}

// Figure8Result carries the rendered figures and raw panels.
type Figure8Result struct {
	Figures []Figure
	Panels  []Figure8Panel
}

// Figure8 reproduces Figure 8: the source IP addresses (and their
// autonomous systems) behind the Graph API like requests on honeypot
// posts, plotted as days-observed versus total likes. A few addresses
// carry almost all of official-liker.net's likes (so per-IP rate limits
// kill it), while hublaa.me spreads across a large pool inside two
// bulletproof-hosting ASes (so only AS-level blocking works).
func Figure8(cfg Figure8Config) (Figure8Result, error) {
	cfg = cfg.withDefaults()
	study, err := core.NewStudy(workload.Options{
		Scale:    cfg.Scale,
		Networks: cfg.Networks,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return Figure8Result{}, err
	}
	origin := study.Clock().Now()
	for day := 0; day < cfg.Days; day++ {
		for m := 0; m < cfg.MilksPerDay; m++ {
			for _, ni := range study.Scenario.Networks {
				if res := study.MilkNetwork(ni.Spec.Name); res.Err != nil {
					return Figure8Result{}, res.Err
				}
			}
			study.Scenario.Clock.Advance(2 * time.Hour)
		}
		study.Scenario.Clock.Advance(4 * time.Hour)
	}

	var result Figure8Result
	for _, ni := range study.Scenario.Networks {
		name := ni.Spec.Name
		hp := study.Honeypots[name]
		type agg struct {
			days  map[int]bool
			likes int
		}
		perIP := make(map[string]*agg)
		perAS := make(map[string]*agg)
		asSeen := make(map[netsim.ASN]bool)
		for _, likes := range hp.IncomingLikes() {
			for _, l := range likes {
				day := int(l.At.Sub(origin) / (24 * time.Hour))
				ipAgg := perIP[l.SourceIP]
				if ipAgg == nil {
					ipAgg = &agg{days: make(map[int]bool)}
					perIP[l.SourceIP] = ipAgg
				}
				ipAgg.days[day] = true
				ipAgg.likes++
				asKey := "unknown"
				if as, ok := study.Scenario.Internet.LookupASString(l.SourceIP); ok {
					asKey = "AS" + fmtInt(int(as.Number))
					asSeen[as.Number] = true
				}
				asAgg := perAS[asKey]
				if asAgg == nil {
					asAgg = &agg{days: make(map[int]bool)}
					perAS[asKey] = asAgg
				}
				asAgg.days[day] = true
				asAgg.likes++
			}
		}
		panel := Figure8Panel{Network: name, DistinctASes: len(asSeen)}
		for ip, a := range perIP {
			panel.PerIP = append(panel.PerIP, FootprintPoint{Key: ip, DaysObserved: len(a.days), Likes: a.likes})
		}
		for as, a := range perAS {
			panel.PerAS = append(panel.PerAS, FootprintPoint{Key: as, DaysObserved: len(a.days), Likes: a.likes})
		}
		sort.Slice(panel.PerIP, func(i, j int) bool { return panel.PerIP[i].Likes > panel.PerIP[j].Likes })
		sort.Slice(panel.PerAS, func(i, j int) bool { return panel.PerAS[i].Likes > panel.PerAS[j].Likes })
		result.Panels = append(result.Panels, panel)

		ipSeries := Series{Label: name + " per-IP"}
		for _, pt := range panel.PerIP {
			ipSeries.Points = append(ipSeries.Points, SeriesPoint{X: float64(pt.DaysObserved), Y: float64(pt.Likes)})
		}
		asSeries := Series{Label: name + " per-AS"}
		for _, pt := range panel.PerAS {
			asSeries.Points = append(asSeries.Points, SeriesPoint{X: float64(pt.DaysObserved), Y: float64(pt.Likes)})
		}
		result.Figures = append(result.Figures, Figure{
			ID:     "figure8",
			Title:  "Source IPs and ASes of like requests — " + name,
			XLabel: "days observed",
			YLabel: "number of likes",
			Series: []Series{ipSeries, asSeries},
			Notes: []string{
				name + " delivery spans " + fmtInt(len(panel.PerIP)) + " IPs across " + fmtInt(panel.DistinctASes) + " ASes",
			},
		})
	}
	return result, nil
}
