package experiments

import (
	"fmt"
	"time"

	"repro/internal/attacks"
	"repro/internal/defense"
	"repro/internal/detection"
	"repro/internal/economics"
	"repro/internal/platform"
	"repro/internal/workload"
)

// The extension experiments implement the future-work directions of the
// paper's Section 8 on top of the same simulated ecosystem:
//
//   - ExtensionPrivacy: what else leaked tokens expose — personal
//     information harvesting and malware propagation over the members'
//     social graphs;
//   - ExtensionDetection: a machine-learning detector for token abuse,
//     evaluated where temporal clustering fails, plus like-purge
//     remediation driven by its verdicts;
//   - ExtensionEconomics: revenue estimates for the measured networks
//     and a live validation of the monetization model.

// ExtensionPrivacyResult carries the harvest and propagation outcomes.
type ExtensionPrivacyResult struct {
	Table       Table
	Harvest     attacks.HarvestResult
	Propagation attacks.PropagationResult
}

// ExtensionPrivacy builds a network with a realistic friend graph and
// runs both Section 8 attacks with the network's own token pool.
func ExtensionPrivacy(seed int64) (ExtensionPrivacyResult, error) {
	s, err := workload.BuildScenario(workload.Options{
		Scale:      500,
		MinMembers: 80,
		Networks:   []string{"mg-likers.com"},
		Seed:       seed,
	})
	if err != nil {
		return ExtensionPrivacyResult{}, err
	}
	// Non-member bystanders: the people exposed purely through friends.
	if _, err := s.AddOrganicUsers(800, seed); err != nil {
		return ExtensionPrivacyResult{}, err
	}
	s.BuildFriendGraph(10, seed)

	ni := s.Networks[0]
	client := platform.NewLocalClient(s.Platform)
	harvest := attacks.Harvest(client, client, ni.Net.Pool(), "192.0.2.250")
	prop := attacks.Propagate(s.Platform.Graph, ni.Net.Pool().Members(), attacks.PropagationConfig{
		ClickProb: 0.25,
		MaxSteps:  10,
		Seed:      seed,
	})

	table := Table{
		ID:      "extension-privacy",
		Title:   "Section 8 extension: privacy impact of a leaked token pool (mg-likers.com, scale 1/500)",
		Columns: []string{"Quantity", "Value"},
		Notes: []string{
			"harvest replays every pooled token against /me and /me/friends",
			"propagation: lure posts via member tokens, 25% click probability along friend edges",
		},
	}
	add := func(k string, v any) {
		table.Rows = append(table.Rows, []string{k, fmt.Sprint(v)})
	}
	add("pooled tokens replayed", harvest.TokensTried)
	add("profiles harvested", harvest.ProfilesRead)
	add("non-member friends exposed", harvest.FriendsEnumerated)
	add("total accounts reachable", harvest.Reachable)
	add("platform population", s.Platform.Graph.AccountCount())
	add("malware seeds (members)", prop.InfectedPerStep[0])
	add("infected after propagation", prop.TotalInfected)
	add("propagation steps", len(prop.InfectedPerStep)-1)
	add("population infected", fmtFloat(100*float64(prop.TotalInfected)/float64(prop.Population), 1)+"%")
	return ExtensionPrivacyResult{Table: table, Harvest: harvest, Propagation: prop}, nil
}

// ExtensionDetectionResult carries the classifier evaluation.
type ExtensionDetectionResult struct {
	Table     Table
	Metrics   detection.Metrics
	Clustered int
	Purge     defense.PurgeReport
	// PCABaselineAUC is the Viswanath-style volume-only anomaly
	// detector's AUC over the same accounts — near-random in the regime
	// where colluding accounts mix real and fake activity.
	PCABaselineAUC float64
}

// ExtensionDetection simulates mixed collusion and organic activity,
// trains the logistic detector, evaluates it on held-out accounts, and
// contrasts it with SynchroTrap (which the networks evade). Accounts the
// detector flags have their likes purged — the remediation loop.
func ExtensionDetection(seed int64) (ExtensionDetectionResult, error) {
	// Small-quota networks at low scale keep the pool-to-quota ratio in
	// the paper's regime (≥10×), where SynchroTrap sees nothing — the
	// contrast the ML detector must beat.
	s, err := workload.BuildScenario(workload.Options{
		Scale:      3,
		MinMembers: 100,
		Networks:   []string{"kingliker.com", "rockliker.net"},
		Seed:       seed,
	})
	if err != nil {
		return ExtensionDetectionResult{}, err
	}
	organic, err := s.AddOrganicUsers(400, seed)
	if err != nil {
		return ExtensionDetectionResult{}, err
	}
	s.BuildFriendGraph(6, seed)

	// SynchroTrap watches the same window.
	trap := defense.NewSynchroTrap(time.Minute, 0.5, 3, 20)
	s.Platform.Chain().Append(defense.NewSynchroTap(trap))

	for day := 0; day < 4; day++ {
		organic.SimulateDay(0.5, 4)
		for hour := 0; hour < 24; hour++ {
			for _, ni := range s.Networks {
				if hour%3 == 0 {
					ni.BackgroundRequests(2)
				}
			}
			s.Clock.Advance(time.Hour)
		}
	}

	var labeled []detection.Labeled
	for _, ni := range s.Networks {
		for _, m := range ni.Members {
			labeled = append(labeled, detection.Labeled{AccountID: m.ID, Colluding: true})
		}
	}
	for _, u := range organic.Users {
		labeled = append(labeled, detection.Labeled{AccountID: u.ID, Colluding: false})
	}
	ds := detection.BuildDataset(s.Platform.Graph, labeled)
	train, test := ds.Split(0.3)
	model, err := detection.Train(train, detection.TrainConfig{Epochs: 300, LearningRate: 0.3, Seed: seed})
	if err != nil {
		return ExtensionDetectionResult{}, err
	}
	metrics := detection.Evaluate(model, test, 0.5)

	// The classical baseline: PCA over daily like-count series (Viswanath
	// et al.), trained on the organic users.
	origin := s.Opts.Start
	const windowDays = 4
	var normalSeries [][]float64
	for _, u := range organic.Users {
		normalSeries = append(normalSeries, detection.DailyLikeSeries(s.Platform.Graph, u.ID, origin, windowDays))
	}
	pcaAUC := 0.0
	if pca, perr := detection.TrainPCA(normalSeries, 2, 0.95); perr == nil {
		scored := detection.Dataset{}
		for _, l := range labeled {
			series := detection.DailyLikeSeries(s.Platform.Graph, l.AccountID, origin, windowDays)
			scored.X = append(scored.X, []float64{pca.Residual(series)})
			y := 0
			if l.Colluding {
				y = 1
			}
			scored.Y = append(scored.Y, y)
			scored.IDs = append(scored.IDs, l.AccountID)
		}
		pcaAUC = detection.AUCOf(flatten(scored.X), scored.Y)
	}

	clustered := 0
	for _, c := range trap.Detect() {
		clustered += len(c.Accounts)
	}

	// Remediation: purge likes of test accounts the detector flags.
	var flagged []string
	for i, x := range test.X {
		if model.Predict(x, 0.5) {
			flagged = append(flagged, test.IDs[i])
		}
	}
	purge := defense.PurgeLikesReport(s.Platform.Graph, flagged)

	table := Table{
		ID:      "extension-detection",
		Title:   "Section 8 extension: ML detection of access token abuse (held-out accounts)",
		Columns: []string{"Quantity", "Value"},
		Notes: []string{
			"features: volume, target diversity, dominant-app share, third-party share, IP-sharing degree, hourly spread",
			"SynchroTrap over the same window detects the accounts its similarity thresholds can see — the evasion baseline",
		},
	}
	add := func(k string, v any) {
		table.Rows = append(table.Rows, []string{k, fmt.Sprint(v)})
	}
	add("training accounts", len(train.X))
	add("test accounts", len(test.X))
	add("precision", fmtFloat(metrics.Precision, 3))
	add("recall", fmtFloat(metrics.Recall, 3))
	add("F1", fmtFloat(metrics.F1, 3))
	add("ROC AUC", fmtFloat(metrics.AUC, 3))
	add("false positives (organic flagged)", metrics.FP)
	add("SynchroTrap accounts flagged (baseline)", clustered)
	add("PCA volume-anomaly baseline AUC", fmtFloat(pcaAUC, 3))
	add("accounts purged", purge.AccountsProcessed)
	add("fake likes removed", purge.LikesRemoved)
	add("objects cleaned", purge.ObjectsTouched)
	return ExtensionDetectionResult{
		Table: table, Metrics: metrics, Clustered: clustered, Purge: purge,
		PCABaselineAUC: pcaAUC,
	}, nil
}

// flatten turns single-column feature rows into a score vector.
func flatten(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[0]
	}
	return out
}

// ExtensionEconomicsResult carries the revenue projections and the model
// validation.
type ExtensionEconomicsResult struct {
	Table     Table
	Estimates []economics.Estimate
	// ModelAdUSD vs MeasuredAdUSD validate the ad-revenue model against
	// a live simulated network.
	ModelAdUSD    float64
	MeasuredAdUSD float64
}

// measuredDailyClicks are the Table 5 daily click observations for the
// networks whose short URLs the paper quotes (308K/139K/122K for the top
// three referrers).
var measuredDailyClicks = map[string]float64{
	"mg-likers.com": 308_000,
	"djliker.com":   139_000,
	"hublaa.me":     122_000,
}

// ExtensionEconomics projects revenue for all 22 networks and validates
// the ad model against a live simulation.
func ExtensionEconomics(seed int64) (ExtensionEconomicsResult, error) {
	model := economics.DefaultModel()
	table := Table{
		ID:    "extension-economics",
		Title: "Section 8 extension: collusion network revenue estimates",
		Columns: []string{
			"Collusion Network", "Daily Visits", "Ad $/day", "Premium $/month", "Total $/month", "Total $/year",
		},
		Notes: []string{
			"RPM $0.50, 3 impressions/visit, 1% premium conversion at $10/month",
			"daily visits measured for mg-likers/djliker/hublaa (Table 5 click rates), membership-modelled otherwise",
		},
	}
	var result ExtensionEconomicsResult
	for _, spec := range workload.Networks() {
		var est economics.Estimate
		if clicks, ok := measuredDailyClicks[spec.Name]; ok {
			est = model.EstimateFromTraffic(spec.Name, clicks, spec.Membership)
		} else {
			est = model.EstimateFromMembership(spec.Name, spec.Membership)
		}
		result.Estimates = append(result.Estimates, est)
		table.Rows = append(table.Rows, []string{
			est.Network,
			fmtInt(int(est.DailyVisits)),
			fmtFloat(est.DailyAdRevenueUSD, 0),
			fmtFloat(est.MonthlyPremiumUSD, 0),
			fmtFloat(est.MonthlyTotalUSD, 0),
			fmtFloat(est.AnnualTotalUSD, 0),
		})
	}

	// Live validation: run a day of member visits through a simulated
	// network and compare the model's ad revenue with the measured
	// impression counter.
	s, err := workload.BuildScenario(workload.Options{
		Scale:      1000,
		MinMembers: 120,
		Networks:   []string{"mg-likers.com"},
		Seed:       seed,
	})
	if err != nil {
		return ExtensionEconomicsResult{}, err
	}
	ni := s.Networks[0]
	visits := len(ni.Members)
	for range ni.Members {
		if err := ni.Net.Visit(false); err != nil {
			return ExtensionEconomicsResult{}, err
		}
	}
	adUSD, _ := model.MeasuredRevenue(ni.Net.Stats())
	result.MeasuredAdUSD = adUSD
	result.ModelAdUSD = float64(visits) * float64(model.AdsPerVisit) * model.AdRPMUSD / 1000
	table.Notes = append(table.Notes, fmt.Sprintf(
		"live validation: %d simulated visits → model $%.2f vs measured $%.2f ad revenue",
		visits, result.ModelAdUSD, result.MeasuredAdUSD))
	result.Table = table
	return result, nil
}
