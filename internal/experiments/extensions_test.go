package experiments

import (
	"math"
	"testing"
)

func TestExtensionPrivacy(t *testing.T) {
	res, err := ExtensionPrivacy(1)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Harvest
	if h.TokensTried == 0 || h.ProfilesRead != h.TokensLive {
		t.Fatalf("harvest = %+v", h)
	}
	// The attack must reach beyond the membership: friends of members
	// who never touched the network.
	if h.FriendsEnumerated == 0 {
		t.Fatal("no bystanders exposed")
	}
	if h.Reachable <= h.ProfilesRead {
		t.Fatalf("reachable %d not beyond members %d", h.Reachable, h.ProfilesRead)
	}
	p := res.Propagation
	if p.TotalInfected <= p.InfectedPerStep[0] {
		t.Fatal("malware did not propagate beyond seeds")
	}
	if p.TotalInfected > p.Population {
		t.Fatalf("infected %d > population %d", p.TotalInfected, p.Population)
	}
	if len(res.Table.Rows) < 8 {
		t.Fatalf("table rows = %d", len(res.Table.Rows))
	}
}

func TestExtensionDetection(t *testing.T) {
	res, err := ExtensionDetection(1)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.AUC < 0.95 || m.F1 < 0.9 {
		t.Fatalf("detector weak: %+v", m)
	}
	// The contrast the extension exists to show: the ML detector catches
	// what SynchroTrap cannot see at these pool sizes.
	if res.Clustered > m.TP {
		t.Fatalf("clustering (%d) outperformed the detector (%d TP)?", res.Clustered, m.TP)
	}
	// The PCA volume baseline sits near random in the mixed-activity
	// regime, far below the structural features.
	if res.PCABaselineAUC >= m.AUC {
		t.Fatalf("PCA baseline AUC %.3f >= logistic %.3f", res.PCABaselineAUC, m.AUC)
	}
	if res.PCABaselineAUC > 0.8 {
		t.Fatalf("PCA baseline unexpectedly strong: %.3f", res.PCABaselineAUC)
	}
	// Remediation removed the flagged accounts' likes.
	if m.TP > 0 && res.Purge.LikesRemoved == 0 {
		t.Fatalf("purge removed nothing despite %d true positives", m.TP)
	}
}

func TestExtensionEconomics(t *testing.T) {
	res, err := ExtensionEconomics(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 22 {
		t.Fatalf("estimates = %d", len(res.Estimates))
	}
	var mg, fast *int
	for i, e := range res.Estimates {
		if e.MonthlyTotalUSD <= 0 {
			t.Fatalf("%s revenue = %v", e.Network, e.MonthlyTotalUSD)
		}
		if e.Network == "mg-likers.com" {
			mg = &i
		}
		if e.Network == "fast-liker.com" {
			fast = &i
		}
	}
	if mg == nil || fast == nil {
		t.Fatal("networks missing from estimates")
	}
	// The traffic-measured big network out-earns the smallest by orders
	// of magnitude.
	if res.Estimates[*mg].MonthlyTotalUSD < 100*res.Estimates[*fast].MonthlyTotalUSD {
		t.Fatalf("revenue spread implausible: mg=%v fast=%v",
			res.Estimates[*mg].MonthlyTotalUSD, res.Estimates[*fast].MonthlyTotalUSD)
	}
	// Live validation: model matches measured ad revenue exactly (same
	// impression count, same RPM).
	if math.Abs(res.ModelAdUSD-res.MeasuredAdUSD) > 1e-9 {
		t.Fatalf("model %v vs measured %v", res.ModelAdUSD, res.MeasuredAdUSD)
	}
}
