package experiments

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Figure6Config parameterises the posts-liked histogram experiment.
type Figure6Config struct {
	Scale int
	Seed  int64
	// Posts is how many posts each honeypot submits during the window.
	Posts int
	// Networks defaults to the paper's two panels.
	Networks []string
}

func (c Figure6Config) withDefaults() Figure6Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Posts <= 0 {
		// Keep posts×quota/pool ≈ 1 at the default scale, the regime the
		// paper measured in (its pools were ~600–850× the quota over
		// ~1,500 posts).
		c.Posts = 8
	}
	if c.Networks == nil {
		c.Networks = []string{"hublaa.me", "official-liker.net"}
	}
	return c
}

// Figure6Panel is one network's histogram.
type Figure6Panel struct {
	Network string
	// Fraction[k] is the fraction of observed accounts that liked exactly
	// k posts (k from 1).
	Fraction map[int]float64
	// AtMostOne is the fraction of accounts that liked at most one post —
	// the paper reports 76% for hublaa.me and 30% for official-liker.net.
	AtMostOne float64
}

// Figure6Result carries the rendered figures and the raw panels.
type Figure6Result struct {
	Figures []Figure
	Panels  []Figure6Panel
}

// Figure6 reproduces Figure 6: for each account observed liking honeypot
// posts, how many distinct honeypot posts it liked. Random sampling from
// a large pool concentrates mass at small counts, which is exactly what
// starves temporal clustering of signal (Sec. 6.3).
func Figure6(cfg Figure6Config) (Figure6Result, error) {
	cfg = cfg.withDefaults()
	study, err := core.NewStudy(workload.Options{
		Scale:    cfg.Scale,
		Networks: cfg.Networks,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return Figure6Result{}, err
	}
	for p := 0; p < cfg.Posts; p++ {
		for _, ni := range study.Scenario.Networks {
			if res := study.MilkNetwork(ni.Spec.Name); res.Err != nil {
				return Figure6Result{}, res.Err
			}
		}
		study.AdvanceHour()
	}

	var result Figure6Result
	for _, ni := range study.Scenario.Networks {
		name := ni.Spec.Name
		est := study.Estimators[name]
		hist := est.PostsLikedHistogram()
		panel := Figure6Panel{
			Network:   name,
			Fraction:  make(map[int]float64),
			AtMostOne: est.AccountsLikingAtMost(1),
		}
		fig := Figure{
			ID:     "figure6",
			Title:  "Number of honeypot posts liked by collusion network accounts — " + name,
			XLabel: "number of posts liked",
			YLabel: "percentage of accounts",
		}
		s := Series{Label: name}
		for _, bin := range hist.Bins() {
			panel.Fraction[bin.Value] = bin.Fraction
			s.Points = append(s.Points, SeriesPoint{X: float64(bin.Value), Y: 100 * bin.Fraction})
		}
		fig.Series = []Series{s}
		result.Panels = append(result.Panels, panel)
		result.Figures = append(result.Figures, fig)
	}
	return result, nil
}
