package experiments

import (
	"errors"
	"time"

	"repro/internal/collusion"
	"repro/internal/core"
	"repro/internal/honeypot"
	"repro/internal/workload"
)

// Table4Config parameterises the milking campaign.
type Table4Config struct {
	// Scale divides the paper's population sizes (see workload.Options).
	Scale int
	// PostsDivisor divides the paper's per-network post counts; the
	// honeypot submits PostsSubmitted/PostsDivisor posts (min MinPosts).
	PostsDivisor int
	// MinPosts floors the scaled post count.
	MinPosts int
	// BackgroundPerRound is how many member like-requests run per milking
	// round, generating the outgoing activity of Table 4's right half.
	BackgroundPerRound int
	// Networks selects a subset; nil = all 22.
	Networks []string
	Seed     int64
	// RetentionWindow bounds the platform's edge-history retention; when
	// set, a sweep runs every campaign hour. The default (0, infinite)
	// leaves the campaign byte-identical to a build without retention —
	// the retention-equivalence tests pin this.
	RetentionWindow time.Duration
}

func (c Table4Config) withDefaults() Table4Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.PostsDivisor <= 0 {
		c.PostsDivisor = 20
	}
	if c.MinPosts <= 0 {
		c.MinPosts = 10
	}
	if c.BackgroundPerRound <= 0 {
		c.BackgroundPerRound = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table4Row is one network's campaign outcome.
type Table4Row struct {
	Network            string
	PostsSubmitted     int
	TotalLikes         int
	AvgLikesPerPost    float64
	OutgoingActivities int
	TargetAccounts     int
	TargetPages        int
	MembershipEstimate int
	// PoolSize is the network's actual (scaled) pool size, for computing
	// milking coverage.
	PoolSize int
}

// Table4Result carries the rendered table, the per-network rows, and the
// study (for downstream figures that reuse the campaign).
type Table4Result struct {
	Table Table
	Rows  []Table4Row
	Study *core.Study
}

// Table4 reproduces Table 4: infiltrate every collusion network with a
// honeypot, milk it post by post, crawl incoming and outgoing activity,
// and estimate membership from the set of unique likers.
func Table4(cfg Table4Config) (Table4Result, error) {
	cfg = cfg.withDefaults()
	study, err := core.NewStudy(workload.Options{
		Scale:           cfg.Scale,
		Networks:        cfg.Networks,
		Seed:            cfg.Seed,
		RetentionWindow: cfg.RetentionWindow,
	})
	if err != nil {
		return Table4Result{}, err
	}

	// Per-network post quotas, scaled from the paper's Table 4.
	quota := make(map[string]int)
	maxQuota := 0
	for _, ni := range study.Scenario.Networks {
		q := ni.Spec.PostsSubmitted / cfg.PostsDivisor
		if q < cfg.MinPosts {
			q = cfg.MinPosts
		}
		quota[ni.Spec.Name] = q
		if q > maxQuota {
			maxQuota = q
		}
	}

	// Campaign loop: one milking round per network per hour until every
	// network's quota is met. Daily-limited networks (djliker.com,
	// monkeyliker.com at 10 requests/day) and intermittently-down sites
	// (arabfblike.com) lag behind, exactly as in the paper; the loop
	// gives up after a bounded number of simulated days.
	done := make(map[string]int)
	maxHours := (maxQuota + 10) * 3 // generous: covers 10/day limits
	for hour := 0; hour < maxHours; hour++ {
		allDone := true
		for _, ni := range study.Scenario.Networks {
			name := ni.Spec.Name
			if done[name] >= quota[name] {
				continue
			}
			allDone = false
			res := study.MilkNetwork(name)
			switch {
			case res.Err == nil:
				done[name]++
			case errors.Is(res.Err, collusion.ErrDailyLimit),
				errors.Is(res.Err, collusion.ErrOutage),
				errors.Is(res.Err, collusion.ErrTooSoon):
				// Expected friction; retry next hour.
			default:
				return Table4Result{}, res.Err
			}
			ni.BackgroundRequests(cfg.BackgroundPerRound)
			if hour%5 == 0 {
				ni.BackgroundPageRequests(1)
			}
		}
		if allDone {
			break
		}
		study.AdvanceHour()
		study.SweepRetention()
	}

	table := Table{
		ID:    "table4",
		Title: "Statistics of the collected data for all collusion networks",
		Columns: []string{
			"Collusion Network", "Posts", "Total Likes", "Avg Likes/Post",
			"Outgoing Activities", "Target Accounts", "Target Pages", "Membership Size",
		},
		Notes: []string{
			"population scale 1/" + fmtInt(cfg.Scale) + ", post counts scaled 1/" + fmtInt(cfg.PostsDivisor),
		},
	}
	var rows []Table4Row
	totals := Table4Row{Network: "All"}
	for _, ni := range study.Scenario.Networks {
		name := ni.Spec.Name
		est := study.Estimators[name]
		hp := study.Honeypots[name]
		out := honeypot.SummarizeOutgoing(hp.OutgoingActivities())
		row := Table4Row{
			Network:            name,
			PostsSubmitted:     est.PostsSubmitted(),
			TotalLikes:         est.TotalLikes(),
			AvgLikesPerPost:    est.AvgLikesPerPost(),
			OutgoingActivities: out.Activities,
			TargetAccounts:     out.TargetAccounts,
			TargetPages:        out.TargetPages,
			MembershipEstimate: est.MembershipEstimate(),
			PoolSize:           len(ni.Members),
		}
		rows = append(rows, row)
		totals.PostsSubmitted += row.PostsSubmitted
		totals.TotalLikes += row.TotalLikes
		totals.OutgoingActivities += row.OutgoingActivities
		totals.TargetAccounts += row.TargetAccounts
		totals.TargetPages += row.TargetPages
		totals.MembershipEstimate += row.MembershipEstimate
		table.Rows = append(table.Rows, []string{
			name,
			fmtInt(row.PostsSubmitted),
			fmtInt(row.TotalLikes),
			fmtFloat(row.AvgLikesPerPost, 0),
			fmtInt(row.OutgoingActivities),
			fmtInt(row.TargetAccounts),
			fmtInt(row.TargetPages),
			fmtInt(row.MembershipEstimate),
		})
	}
	if totals.PostsSubmitted > 0 {
		totals.AvgLikesPerPost = float64(totals.TotalLikes) / float64(totals.PostsSubmitted)
	}
	table.Rows = append(table.Rows, []string{
		"All",
		fmtInt(totals.PostsSubmitted),
		fmtInt(totals.TotalLikes),
		fmtFloat(totals.AvgLikesPerPost, 0),
		fmtInt(totals.OutgoingActivities),
		fmtInt(totals.TargetAccounts),
		fmtInt(totals.TargetPages),
		fmtInt(totals.MembershipEstimate),
	})
	rows = append(rows, totals)
	return Table4Result{Table: table, Rows: rows, Study: study}, nil
}
