package experiments

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Figure4Config parameterises the cumulative-milking figure.
type Figure4Config struct {
	Scale        int
	PostsDivisor int
	MinPosts     int
	Seed         int64
	// Networks defaults to the paper's three panels: official-liker.net,
	// mg-likers.com, f8-autoliker.com.
	Networks []string
}

func (c Figure4Config) withDefaults() Figure4Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.PostsDivisor <= 0 {
		c.PostsDivisor = 10
	}
	if c.MinPosts <= 0 {
		c.MinPosts = 30
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Networks == nil {
		c.Networks = []string{"official-liker.net", "mg-likers.com", "f8-autoliker.com"}
	}
	return c
}

// Figure4Panel is one network's cumulative curves.
type Figure4Panel struct {
	Network          string
	CumulativeLikes  []SeriesPoint
	CumulativeUnique []SeriesPoint
}

// Figure4Result carries the rendered figures (one per network) and raw
// panels.
type Figure4Result struct {
	Figures []Figure
	Panels  []Figure4Panel
}

// Figure4 reproduces Figure 4: per post index, the cumulative number of
// likes received and cumulative unique liking accounts. Likes grow
// linearly (fixed quota per request) while the unique-account curve bends
// — the diminishing returns of random token sampling that milking
// exploits to bound membership.
func Figure4(cfg Figure4Config) (Figure4Result, error) {
	cfg = cfg.withDefaults()
	study, err := core.NewStudy(workload.Options{
		Scale:    cfg.Scale,
		Networks: cfg.Networks,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return Figure4Result{}, err
	}

	quota := make(map[string]int)
	for _, ni := range study.Scenario.Networks {
		q := ni.Spec.PostsSubmitted / cfg.PostsDivisor
		if q < cfg.MinPosts {
			q = cfg.MinPosts
		}
		quota[ni.Spec.Name] = q
	}
	done := make(map[string]int)
	for hour := 0; hour < 24*30; hour++ {
		allDone := true
		for _, ni := range study.Scenario.Networks {
			name := ni.Spec.Name
			if done[name] >= quota[name] {
				continue
			}
			allDone = false
			if res := study.MilkNetwork(name); res.Err == nil {
				done[name]++
			}
		}
		if allDone {
			break
		}
		study.AdvanceHour()
	}

	var result Figure4Result
	for _, ni := range study.Scenario.Networks {
		name := ni.Spec.Name
		panel := Figure4Panel{Network: name}
		for _, p := range study.Estimators[name].Curve() {
			panel.CumulativeLikes = append(panel.CumulativeLikes,
				SeriesPoint{X: float64(p.Step), Y: float64(p.CumulativeEvents)})
			panel.CumulativeUnique = append(panel.CumulativeUnique,
				SeriesPoint{X: float64(p.Step), Y: float64(p.CumulativeUnique)})
		}
		result.Panels = append(result.Panels, panel)
		result.Figures = append(result.Figures, Figure{
			ID:     "figure4",
			Title:  "Cumulative likes and unique accounts — " + name,
			XLabel: "post index",
			YLabel: "cumulative count",
			Series: []Series{
				{Label: "cumulative likes", Points: panel.CumulativeLikes},
				{Label: "cumulative unique accounts", Points: panel.CumulativeUnique},
			},
			Notes: []string{
				"likes grow linearly (fixed per-request quota); unique accounts flatten (repetition under random sampling)",
			},
		})
	}
	return result, nil
}
