package experiments

import (
	"errors"

	"repro/internal/collusion"
	"repro/internal/core"
	"repro/internal/lexical"
	"repro/internal/workload"
)

// Table6Config parameterises the comment-milking campaign.
type Table6Config struct {
	Scale        int
	PostsDivisor int
	MinPosts     int
	Seed         int64
}

func (c Table6Config) withDefaults() Table6Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.PostsDivisor <= 0 {
		c.PostsDivisor = 4
	}
	if c.MinPosts <= 0 {
		c.MinPosts = 15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table6Row is one network's comment analysis.
type Table6Row struct {
	Network            string
	Posts              int
	Report             lexical.Report
	AvgCommentsPerPost float64
}

// Table6Result carries the rendered table and raw rows.
type Table6Result struct {
	Table Table
	Rows  []Table6Row
}

// Table6 reproduces Table 6: milk auto-comments from the seven collusion
// networks that offer them and run the lexical analysis — comment
// uniqueness, lexical richness, ARI, and non-dictionary word rate.
func Table6(cfg Table6Config) (Table6Result, error) {
	cfg = cfg.withDefaults()
	var commentNetworks []string
	for _, spec := range workload.Networks() {
		if spec.CommentsPerRequest > 0 {
			commentNetworks = append(commentNetworks, spec.Name)
		}
	}
	study, err := core.NewStudy(workload.Options{
		Scale:    cfg.Scale,
		Networks: commentNetworks,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return Table6Result{}, err
	}

	quota := make(map[string]int)
	for _, ni := range study.Scenario.Networks {
		q := ni.Spec.CommentPostsSubmitted / cfg.PostsDivisor
		if q < cfg.MinPosts {
			q = cfg.MinPosts
		}
		quota[ni.Spec.Name] = q
	}

	posts := make(map[string][]string) // network -> comment-bait post IDs
	done := make(map[string]int)
	for hour := 0; hour < 24*30; hour++ {
		allDone := true
		for _, ni := range study.Scenario.Networks {
			name := ni.Spec.Name
			if done[name] >= quota[name] {
				continue
			}
			allDone = false
			hp := study.Honeypots[name]
			postID, _, err := hp.MilkComments()
			switch {
			case err == nil:
				posts[name] = append(posts[name], postID)
				done[name]++
			case errors.Is(err, collusion.ErrDailyLimit),
				errors.Is(err, collusion.ErrOutage),
				errors.Is(err, collusion.ErrTooSoon):
				// Expected friction; retry next hour.
			default:
				return Table6Result{}, err
			}
		}
		if allDone {
			break
		}
		study.AdvanceHour()
	}

	table := Table{
		ID:    "table6",
		Title: "Lexical analysis of comments provided by collusion networks",
		Columns: []string{
			"Collusion Network", "Posts", "Avg Comments/Post", "Comments", "Unique",
			"% Unique", "Words", "Unique Words", "Richness %", "ARI", "% Non-dict",
		},
	}
	var rows []Table6Row
	var all []string
	totalPosts := 0
	for _, ni := range study.Scenario.Networks {
		name := ni.Spec.Name
		var corpus []string
		for _, postID := range posts[name] {
			for _, c := range study.Scenario.Platform.Graph.Comments(postID) {
				corpus = append(corpus, c.Message)
			}
		}
		all = append(all, corpus...)
		totalPosts += len(posts[name])
		report := lexical.Analyze(corpus)
		row := Table6Row{Network: name, Posts: len(posts[name]), Report: report}
		if row.Posts > 0 {
			row.AvgCommentsPerPost = float64(report.Comments) / float64(row.Posts)
		}
		rows = append(rows, row)
		table.Rows = append(table.Rows, tableSixCells(name, row))
	}
	allReport := lexical.Analyze(all)
	allRow := Table6Row{Network: "All", Posts: totalPosts, Report: allReport}
	if totalPosts > 0 {
		allRow.AvgCommentsPerPost = float64(allReport.Comments) / float64(totalPosts)
	}
	rows = append(rows, allRow)
	table.Rows = append(table.Rows, tableSixCells("All", allRow))
	return Table6Result{Table: table, Rows: rows}, nil
}

func tableSixCells(name string, r Table6Row) []string {
	return []string{
		name,
		fmtInt(r.Posts),
		fmtFloat(r.AvgCommentsPerPost, 0),
		fmtInt(r.Report.Comments),
		fmtInt(r.Report.UniqueComments),
		fmtFloat(r.Report.PctUniqueComments, 1),
		fmtInt(r.Report.Words),
		fmtInt(r.Report.UniqueWords),
		fmtFloat(r.Report.LexicalRichness, 1),
		fmtFloat(r.Report.ARI, 1),
		fmtFloat(r.Report.PctNonDictionary, 1),
	}
}
