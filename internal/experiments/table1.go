package experiments

import (
	"time"

	"repro/internal/platform"
	"repro/internal/scanner"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
	"repro/internal/workload"
)

// Table1Result carries both the rendered table and the scan summary for
// assertions.
type Table1Result struct {
	Table   Table
	Summary scanner.Summary
	Rows    []scanner.Result
}

// Table1 reproduces Table 1: run the application scanner over the
// synthetic top-100 leaderboard (over real HTTP) and report the
// susceptible applications issued long-term tokens.
func Table1(seed int64) (Table1Result, error) {
	clock := simclock.NewSimulated(time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC))
	p := platform.New(clock, nil)
	top := workload.BuildTop100(p.Apps, seed)

	srv := p.ServeHTTPTest()
	defer srv.Close()

	testAcct := p.Graph.CreateAccount("scanner-test", "US", clock.Now())
	testPost, err := p.Graph.CreatePost(testAcct.ID, "scanner test post", socialgraph.WriteMeta{At: clock.Now()})
	if err != nil {
		return Table1Result{}, err
	}
	sc := scanner.New(srv.URL, testAcct.ID, testPost.ID)

	entries := make([]scanner.AppDirectoryEntry, len(top))
	for i, app := range top {
		entries[i] = scanner.AppDirectoryEntry{
			App:      app,
			LoginURL: scanner.LoginURL(srv.URL, app.ID, app.RedirectURI, app.Permissions),
		}
	}
	results := sc.ScanAll(entries)
	summary := scanner.Summarize(results)
	longTerm := scanner.LongTermSusceptible(results)

	table := Table{
		ID:      "table1",
		Title:   "Susceptible applications with long-term access tokens among the top 100",
		Columns: []string{"Application Identifier", "Application Name", "Monthly Active Users (MAU)"},
		Notes: []string{
			fmtInt(summary.Scanned) + " apps scanned, " + fmtInt(summary.Susceptible) + " susceptible (" +
				fmtInt(summary.SusceptibleShortTerm) + " short-term, " + fmtInt(summary.SusceptibleLongTerm) + " long-term)",
		},
	}
	for _, r := range longTerm {
		table.Rows = append(table.Rows, []string{r.AppID, r.Name, fmtInt(r.MAU)})
	}
	return Table1Result{Table: table, Summary: summary, Rows: longTerm}, nil
}
