package experiments

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func sampleOutput() Output {
	return Output{
		Tables: []Table{{
			ID:      "tablex",
			Title:   "Sample",
			Columns: []string{"Name", "Value"},
			Rows:    [][]string{{"hublaa.me", "294,949"}, {"with,comma", "1"}},
			Notes:   []string{"a note"},
		}},
		Figures: []Figure{{
			ID:     "figx",
			Title:  "Sample Figure",
			XLabel: "day",
			YLabel: "likes",
			Series: []Series{{
				Label:  "hublaa.me",
				Points: []SeriesPoint{{1, 350}, {2, 347.5}},
			}},
			Annotations: map[float64]string{2: "event"},
		}},
	}
}

func TestCSVExport(t *testing.T) {
	out := sampleOutput()
	blocks := out.CSVBlocks()
	if !strings.Contains(blocks, "# tablex: Sample") || !strings.Contains(blocks, "# figx: Sample Figure") {
		t.Fatalf("blocks missing headers:\n%s", blocks)
	}
	// The table CSV round-trips through a CSV reader, including the
	// comma-containing cell.
	r := csv.NewReader(strings.NewReader(out.Tables[0].CSV()))
	records, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d", len(records))
	}
	if records[2][0] != "with,comma" {
		t.Fatalf("comma cell = %q", records[2][0])
	}
	// The figure CSV has series,x,y rows.
	fr := csv.NewReader(strings.NewReader(out.Figures[0].CSV()))
	frecs, err := fr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(frecs) != 3 || frecs[0][0] != "series" {
		t.Fatalf("figure csv = %v", frecs)
	}
	if frecs[2][2] != "347.5" {
		t.Fatalf("y cell = %q", frecs[2][2])
	}
}

func TestJSONExport(t *testing.T) {
	out := sampleOutput()
	s, err := out.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Tables []struct {
			ID   string     `json:"id"`
			Rows [][]string `json:"rows"`
		} `json:"tables"`
		Figures []struct {
			ID     string `json:"id"`
			Series []struct {
				Label  string       `json:"label"`
				Points [][2]float64 `json:"points"`
			} `json:"series"`
			Annotations map[string]string `json:"annotations"`
		} `json:"figures"`
	}
	if err := json.Unmarshal([]byte(s), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Tables) != 1 || decoded.Tables[0].ID != "tablex" {
		t.Fatalf("tables = %+v", decoded.Tables)
	}
	fig := decoded.Figures[0]
	if fig.Series[0].Points[1] != [2]float64{2, 347.5} {
		t.Fatalf("points = %v", fig.Series[0].Points)
	}
	if fig.Annotations["2"] != "event" {
		t.Fatalf("annotations = %v", fig.Annotations)
	}
}

func TestRenderDispatch(t *testing.T) {
	out := sampleOutput()
	for _, format := range []string{"", "text", "csv", "json"} {
		if _, err := out.Render(format); err != nil {
			t.Fatalf("Render(%q): %v", format, err)
		}
	}
	if _, err := out.Render("xml"); err == nil {
		t.Fatal("unknown format rendered")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:     "1",
		2.5:   "2.5",
		350:   "350",
		-7.25: "-7.25",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRealExperimentExports(t *testing.T) {
	// A real experiment's output survives both exports.
	out, err := Run("table5", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	csvOut, err := out.Render("csv")
	if err != nil || !strings.Contains(csvOut, "Short Code") {
		t.Fatalf("csv = %v, %v", len(csvOut), err)
	}
	jsonOut, err := out.Render("json")
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(jsonOut)) {
		t.Fatal("json output invalid")
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	out := sampleOutput()
	for format, wantExt := range map[string]string{"text": ".txt", "csv": ".csv", "json": ".json"} {
		path, err := out.WriteFile(dir, "sample", format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.HasSuffix(path, wantExt) {
			t.Fatalf("path = %q, want suffix %q", path, wantExt)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s: empty file", format)
		}
	}
	if _, err := out.WriteFile(dir, "sample", "xml"); err == nil {
		t.Fatal("unknown format written")
	}
}
