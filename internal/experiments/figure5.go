package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Figure5Config parameterises the 75-day countermeasure campaign.
type Figure5Config struct {
	Scale int
	Seed  int64
	// Days is the campaign length (paper: 75).
	Days int
	// MilksPerDay is how many posts each honeypot submits per day.
	MilksPerDay int
	// BackgroundPerHour is the member like-request load per network.
	BackgroundPerHour int
	// JoinFracPerDay and ReturnFracPerDay drive pool replenishment as
	// fractions of the scaled membership.
	JoinFracPerDay   float64
	ReturnFracPerDay float64
	// BaseTokenLimit is the pre-existing per-token daily write limit;
	// ReducedTokenLimit is the day-12 reduction (more than an order of
	// magnitude).
	BaseTokenLimit    int
	ReducedTokenLimit int
	// IPDailyLimit and IPWeeklyLimit are the day-46 per-IP like caps.
	IPDailyLimit  int
	IPWeeklyLimit int
	// Networks selects which collusion networks run the campaign; the
	// default is the paper's two plotted panels (hublaa.me and
	// official-liker.net). Figure5AllNetworks runs all 22.
	Networks []string
}

func (c Figure5Config) withDefaults() Figure5Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Days <= 0 {
		c.Days = 75
	}
	if c.MilksPerDay <= 0 {
		c.MilksPerDay = 10
	}
	if c.BackgroundPerHour <= 0 {
		c.BackgroundPerHour = 1
	}
	if c.JoinFracPerDay <= 0 {
		c.JoinFracPerDay = 0.02
	}
	if c.ReturnFracPerDay <= 0 {
		c.ReturnFracPerDay = 0.02
	}
	if c.BaseTokenLimit <= 0 {
		c.BaseTokenLimit = 200
	}
	if c.ReducedTokenLimit <= 0 {
		c.ReducedTokenLimit = 8
	}
	if c.IPDailyLimit <= 0 {
		// Scaled to the 1/100 population: far below official-liker.net's
		// per-IP demand (≈370 likes/IP/day over 2 addresses at this
		// scale) and far above hublaa.me's (≈15/IP/day over 60).
		c.IPDailyLimit = 100
	}
	if c.IPWeeklyLimit <= 0 {
		c.IPWeeklyLimit = 400
	}
	return c
}

// Figure5Events maps campaign day (1-based) to the countermeasure
// deployed that day, matching the paper's annotations.
func Figure5Events() map[int]string {
	return map[int]string{
		12: "reduction in access token rate limit",
		23: "invalidate half of all access tokens",
		28: "invalidate all access tokens; begin invalidating half of new access tokens daily",
		36: "invalidate all new access tokens daily",
		46: "IP rate limits",
		55: "clustering based access token invalidation",
		70: "AS blocking",
	}
}

// Figure5Result carries the rendered figure, the per-network daily series,
// and the study for further inspection.
type Figure5Result struct {
	Figure Figure
	// Daily maps network name to average likes per post for each day
	// (index 0 = day 1).
	Daily map[string][]float64
	Study *core.Study
}

// Figure5 reproduces Figure 5: honeypots milk hublaa.me and
// official-liker.net daily for 75 days while the countermeasures of
// Section 6 deploy on the paper's schedule. The per-day average number
// of likes delivered per honeypot post is the plotted quantity.
func Figure5(cfg Figure5Config) (Figure5Result, error) {
	cfg = cfg.withDefaults()
	networks := cfg.Networks
	if networks == nil {
		networks = []string{"hublaa.me", "official-liker.net"}
	}
	study, err := core.NewStudy(workload.Options{
		Scale:    cfg.Scale,
		Networks: networks,
		Seed:     cfg.Seed,
		Start:    time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC),
		// hublaa.me's site went down on day 45 and resumed on day 51
		// (0-based outage days 44–49).
		ExtraOutageDays: map[string][]int{
			"hublaa.me": {44, 45, 46, 47, 48, 49},
		},
	})
	if err != nil {
		return Figure5Result{}, err
	}
	cm := study.Countermeasures()
	// The pre-existing (generous) token rate limit that collusion
	// networks slip under.
	cm.SetTokenRateLimit(cfg.BaseTokenLimit, 24*time.Hour)

	daily := make(map[string][]float64, len(networks))
	for _, n := range networks {
		daily[n] = make([]float64, 0, cfg.Days)
	}

	for day := 1; day <= cfg.Days; day++ {
		// Start-of-day countermeasure deployments.
		switch day {
		case 12:
			cm.SetTokenRateLimit(cfg.ReducedTokenLimit, 24*time.Hour)
		case 23:
			cm.InvalidateMilkedFraction(0.5)
		case 28:
			cm.InvalidateMilkedAll()
		case 46:
			cm.DeployIPRateLimits(cfg.IPDailyLimit, cfg.IPWeeklyLimit)
		case 55:
			cm.DeployClustering(time.Minute, 0.5, 3, 50)
		case 70:
			cm.BlockASes(workload.ASBulletproofA, workload.ASBulletproofB)
		}

		// Pool replenishment: fresh members discover the sites, returning
		// members whose tokens died resubmit. Every network gains at
		// least one member a day (integer truncation would otherwise
		// starve the smallest scaled pools entirely).
		for _, ni := range study.Scenario.Networks {
			join := int(cfg.JoinFracPerDay * float64(ni.ScaledMembership))
			ret := int(cfg.ReturnFracPerDay * float64(ni.ScaledMembership))
			if join < 1 {
				join = 1
			}
			if ret < 1 {
				ret = 1
			}
			if err := ni.JoinFresh(join); err != nil {
				return Figure5Result{}, err
			}
			if err := ni.ResubmitReturning(ret); err != nil {
				return Figure5Result{}, err
			}
		}

		// Hour loop: honeypot milking spread across the day, plus
		// continuous member background traffic.
		sum := make(map[string]float64, len(networks))
		count := make(map[string]int, len(networks))
		milked := make(map[string]int, len(networks))
		for hour := 0; hour < 24; hour++ {
			for _, ni := range study.Scenario.Networks {
				name := ni.Spec.Name
				if milked[name] < cfg.MilksPerDay && hour*cfg.MilksPerDay/24 >= milked[name] {
					milked[name]++
					res := study.MilkNetwork(name)
					count[name]++
					if res.Err == nil {
						sum[name] += float64(res.Delivered)
					}
					// Failed requests (site outage, policy) count as zero
					// likes delivered, as the paper's plots show.
				}
				ni.BackgroundRequests(cfg.BackgroundPerHour)
			}
			study.Scenario.Clock.Advance(time.Hour)
		}
		for _, n := range networks {
			if count[n] > 0 {
				daily[n] = append(daily[n], sum[n]/float64(count[n]))
			} else {
				daily[n] = append(daily[n], 0)
			}
		}

		// End-of-day sweeps per campaign phase.
		switch {
		case day >= 36:
			cm.InvalidateMilkedAll()
		case day >= 28:
			cm.InvalidateMilkedFraction(0.5)
		}
		if day >= 55 {
			cm.RunClusteringSweep()
		}
	}

	annotations := make(map[float64]string, len(Figure5Events()))
	for d, label := range Figure5Events() {
		annotations[float64(d)] = label
	}
	fig := Figure{
		ID:          "figure5",
		Title:       "Impact of countermeasures on collusion networks",
		XLabel:      "day",
		YLabel:      "average likes per post",
		Annotations: annotations,
		Notes: []string{
			"population scale 1/" + fmtInt(cfg.Scale),
			"hublaa.me site outage days 45-50, as observed in the paper",
		},
	}
	for _, n := range networks {
		s := Series{Label: n}
		for i, v := range daily[n] {
			s.Points = append(s.Points, SeriesPoint{X: float64(i + 1), Y: v})
		}
		fig.Series = append(fig.Series, s)
	}
	return Figure5Result{Figure: fig, Daily: daily, Study: study}, nil
}
