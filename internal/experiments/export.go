package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Export formats: alongside the aligned-text rendering, every Output can
// be serialized as CSV (one block per table/series, for spreadsheet or
// gnuplot consumption) or JSON (for downstream analysis pipelines).

// CSV renders the table as RFC 4180 CSV with a header row.
func (t Table) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write(append([]string{}, t.Columns...))
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return buf.String()
}

// CSV renders every series of the figure as x,y rows tagged by label.
func (f Figure) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write([]string{"series", f.XLabel, f.YLabel})
	for _, s := range f.Series {
		for _, p := range s.Points {
			_ = w.Write([]string{s.Label, trimFloat(p.X), trimFloat(p.Y)})
		}
	}
	w.Flush()
	return buf.String()
}

// trimFloat renders floats without trailing zero noise.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// CSVBlocks renders the whole output as CSV blocks separated by blank
// lines, each preceded by a comment line naming the artifact.
func (o Output) CSVBlocks() string {
	var buf bytes.Buffer
	for _, t := range o.Tables {
		fmt.Fprintf(&buf, "# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
	}
	for _, f := range o.Figures {
		fmt.Fprintf(&buf, "# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
	}
	return buf.String()
}

// jsonTable is the JSON shape of a Table.
type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// jsonSeries is the JSON shape of one figure series.
type jsonSeries struct {
	Label  string       `json:"label"`
	Points [][2]float64 `json:"points"`
}

// jsonFigure is the JSON shape of a Figure.
type jsonFigure struct {
	ID          string            `json:"id"`
	Title       string            `json:"title"`
	XLabel      string            `json:"x_label"`
	YLabel      string            `json:"y_label"`
	Series      []jsonSeries      `json:"series"`
	Annotations map[string]string `json:"annotations,omitempty"`
	Notes       []string          `json:"notes,omitempty"`
}

// JSON serializes the output with stable field ordering.
func (o Output) JSON() (string, error) {
	type envelope struct {
		Tables  []jsonTable  `json:"tables,omitempty"`
		Figures []jsonFigure `json:"figures,omitempty"`
	}
	var env envelope
	for _, t := range o.Tables {
		env.Tables = append(env.Tables, jsonTable{
			ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
		})
	}
	for _, f := range o.Figures {
		jf := jsonFigure{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel, Notes: f.Notes}
		for _, s := range f.Series {
			js := jsonSeries{Label: s.Label}
			for _, p := range s.Points {
				js.Points = append(js.Points, [2]float64{p.X, p.Y})
			}
			jf.Series = append(jf.Series, js)
		}
		if len(f.Annotations) > 0 {
			jf.Annotations = make(map[string]string, len(f.Annotations))
			keys := make([]float64, 0, len(f.Annotations))
			for x := range f.Annotations {
				keys = append(keys, x)
			}
			sort.Float64s(keys)
			for _, x := range keys {
				jf.Annotations[trimFloat(x)] = f.Annotations[x]
			}
		}
		env.Figures = append(env.Figures, jf)
	}
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// WriteFile renders the output in the given format and writes it to
// dir/<id>.<ext>, returning the path. The directory is created if needed.
func (o Output) WriteFile(dir, id, format string) (string, error) {
	rendered, err := o.Render(format)
	if err != nil {
		return "", err
	}
	ext := map[string]string{"": "txt", "text": "txt", "csv": "csv", "json": "json"}[format]
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, id+"."+ext)
	if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Render produces the output in the named format: "text" (default),
// "csv", or "json".
func (o Output) Render(format string) (string, error) {
	switch format {
	case "", "text":
		return o.String(), nil
	case "csv":
		return o.CSVBlocks(), nil
	case "json":
		return o.JSON()
	default:
		return "", fmt.Errorf("experiments: unknown format %q (text, csv, json)", format)
	}
}
