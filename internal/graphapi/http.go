package graphapi

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/oauthsim"
	"repro/internal/provider"
	"repro/internal/secrets"
	"repro/internal/socialgraph"
)

// NormalizeEndpoint collapses object IDs out of a request path so HTTP
// metric labels stay bounded: /p123/likes becomes /{object}/likes. Fixed
// routes pass through unchanged; anything unrecognized becomes /{other}.
func NormalizeEndpoint(path string) string {
	switch path {
	case "/dialog/oauth", "/oauth/access_token", "/me", "/me/feed",
		"/me/friends", "/debug_token", "/batch":
		return path
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) == 2 {
		switch parts[1] {
		case "likes":
			return "/{object}/likes"
		case "comments":
			return "/{object}/comments"
		}
	}
	return "/{other}"
}

// Edge pagination, Facebook-style: list responses carry at most `limit`
// entries (default 25, max 100) plus a paging envelope with an opaque
// `after` cursor when more data exists.
const (
	defaultPageLimit = 25
	maxPageLimit     = 100
)

// encodeCursor wraps an offset as an opaque cursor string.
func encodeCursor(offset int) string {
	return base64.URLEncoding.EncodeToString([]byte(strconv.Itoa(offset)))
}

// decodeCursor unwraps a cursor; empty cursors mean offset 0.
func decodeCursor(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	raw, err := base64.URLEncoding.DecodeString(s)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(string(raw))
	if err != nil || n < 0 {
		return 0, errors.New("bad cursor")
	}
	return n, nil
}

// pageParams extracts limit and offset from a request.
func pageParams(r *http.Request) (limit, offset int, err error) {
	limit = defaultPageLimit
	if s := r.FormValue("limit"); s != "" {
		n, perr := strconv.Atoi(s)
		if perr != nil || n <= 0 {
			return 0, 0, errors.New("bad limit")
		}
		if n > maxPageLimit {
			n = maxPageLimit
		}
		limit = n
	}
	offset, err = decodeCursor(r.FormValue("after"))
	return limit, offset, err
}

// pageSliceLikes applies offset/limit windowing to a likes list.
func pageSliceLikes(likes []socialgraph.Like, offset, limit int) []socialgraph.Like {
	if offset >= len(likes) {
		return nil
	}
	end := offset + limit
	if end > len(likes) {
		end = len(likes)
	}
	return likes[offset:end]
}

// pageSliceComments applies offset/limit windowing to a comments list.
func pageSliceComments(comments []socialgraph.Comment, offset, limit int) []socialgraph.Comment {
	if offset >= len(comments) {
		return nil
	}
	end := offset + limit
	if end > len(comments) {
		end = len(comments)
	}
	return comments[offset:end]
}

// pagingEnvelope builds the "paging" object when more rows remain.
func pagingEnvelope(offset, served, total int) map[string]any {
	next := offset + served
	if next >= total {
		return nil
	}
	return map[string]any{
		"cursors": map[string]any{"after": encodeCursor(next)},
	}
}

// pagingEnvelopeAt builds the "paging" object from a store-provided next
// cursor. The cursor is an arrival-sequence position (stable across
// retention sweeps), not a physical offset; on a store that has never
// evicted or purged, the two coincide.
func pagingEnvelopeAt(next int, more bool) map[string]any {
	if !more {
		return nil
	}
	return map[string]any{
		"cursors": map[string]any{"after": encodeCursor(next)},
	}
}

// Handler exposes the API and the OAuth endpoints over HTTP with
// Facebook-style routes:
//
//	GET  /dialog/oauth          authorization dialog (browser session is
//	                            simulated with the account_id parameter)
//	POST /oauth/access_token    code-for-token exchange (server-side flow)
//	GET  /me                    profile of the token's account
//	GET  /{object}/likes        list likes
//	POST /{object}/likes        publish a like
//	GET  /{object}/comments     list comments
//	POST /{object}/comments     publish a comment
//	POST /me/feed               publish a status update
//
// Errors are returned as Facebook-style JSON envelopes:
//
//	{"error": {"message": ..., "type": ..., "code": ...}}
func Handler(api *API) http.Handler {
	mux := http.NewServeMux()
	h := &httpAPI{api: api}
	mux.HandleFunc("/dialog/oauth", h.dialog)
	mux.HandleFunc("/oauth/access_token", h.exchange)
	mux.HandleFunc("/me", h.me)
	mux.HandleFunc("/me/feed", h.feed)
	mux.HandleFunc("/me/friends", h.friends)
	mux.HandleFunc("/debug_token", h.debugToken)
	mux.HandleFunc("/batch", h.batch)
	mux.HandleFunc("/", h.object)
	return mux
}

type httpAPI struct {
	api *API
}

// errorEnvelope is the JSON error body.
type errorEnvelope struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
		Code    int    `json:"code"`
	} `json:"error"`
}

func (h *httpAPI) writeError(w http.ResponseWriter, err error) {
	ae := h.asAPIError(err)
	var env errorEnvelope
	env.Error.Message = ae.Message
	env.Error.Type = ae.Type
	env.Error.Code = ae.Code
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(ae.Kind))
	_ = json.NewEncoder(w).Encode(env)
}

// asAPIError coerces err into the serving provider's error vocabulary;
// non-API errors surface as invalid-param in that vocabulary.
func (h *httpAPI) asAPIError(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	out, _ := h.api.err(provider.KindInvalidParam, "GraphMethodException", "%v", err).(*APIError)
	return out
}

// httpStatus maps the canonical error kind to an HTTP status. Dispatching
// on the kind (not the numeric code) keeps the status map correct for
// every provider's numeric space.
func httpStatus(k provider.ErrKind) int {
	switch k {
	case provider.KindInvalidToken, provider.KindAppSuspended, provider.KindAccountSuspended:
		return http.StatusUnauthorized
	case provider.KindSecretProof, provider.KindPermission, provider.KindBlocked:
		return http.StatusForbidden
	case provider.KindRateLimited:
		return http.StatusTooManyRequests
	case provider.KindNotFound:
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// callContext extracts token, proof, and source IP from the request. The
// simulated source IP is carried in X-Forwarded-For (collusion network
// delivery engines route through their IP pools); it falls back to the TCP
// peer address.
func callContext(r *http.Request) CallContext {
	ctx := CallContext{
		Ctx:            r.Context(),
		AccessToken:    r.FormValue("access_token"),
		AppSecretProof: r.FormValue("appsecret_proof"),
	}
	if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
		ctx.SourceIP = strings.TrimSpace(strings.Split(fwd, ",")[0])
	} else if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		ctx.SourceIP = host
	} else {
		ctx.SourceIP = r.RemoteAddr
	}
	return ctx
}

// dialog implements the authorization dialog. A real browser session is
// out of scope, so the logged-in user is identified by the account_id
// parameter. On success the handler 302-redirects to the app's redirect
// URI with the token in the fragment (implicit) or the code in the query
// (server-side) — exactly the artifact collusion networks teach their
// members to copy.
func (h *httpAPI) dialog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := oauthsim.AuthorizeRequest{
		AppID:        q.Get("client_id"),
		RedirectURI:  q.Get("redirect_uri"),
		ResponseType: oauthsim.ResponseType(q.Get("response_type")),
		AccountID:    q.Get("account_id"),
		State:        q.Get("state"),
	}
	if scope := q.Get("scope"); scope != "" {
		req.Scopes = strings.Split(scope, ",")
	}
	res, err := h.api.OAuth().Authorize(req)
	if err != nil {
		h.writeError(w, h.api.err(provider.KindInvalidParam, "OAuthException", "%v", err))
		return
	}
	loc, err := url.Parse(req.RedirectURI)
	if err != nil {
		h.writeError(w, h.api.err(provider.KindInvalidParam, "OAuthException", "bad redirect URI"))
		return
	}
	if res.AccessToken != "" {
		frag := url.Values{}
		frag.Set("access_token", res.AccessToken)
		frag.Set("expires_in", strconv.FormatInt(res.ExpiresIn, 10))
		if res.State != "" {
			frag.Set("state", res.State)
		}
		loc.Fragment = frag.Encode()
	} else {
		qs := loc.Query()
		qs.Set("code", res.Code)
		if res.State != "" {
			qs.Set("state", res.State)
		}
		loc.RawQuery = qs.Encode()
	}
	http.Redirect(w, r, loc.String(), http.StatusFound)
}

// exchange implements the server-side token endpoint: the authorization-
// code swap, and grant_type=fb_exchange_token for extending a token to
// long-lived.
func (h *httpAPI) exchange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodGet {
		h.writeError(w, h.api.err(provider.KindInvalidParam, "GraphMethodException", "unsupported method"))
		return
	}
	var info oauthsim.TokenInfo
	var err error
	if r.FormValue("grant_type") == "fb_exchange_token" {
		info, err = h.api.OAuth().ExchangeForLongLived(
			r.FormValue("client_id"),
			r.FormValue("client_secret"),
			r.FormValue("fb_exchange_token"),
		)
	} else {
		info, err = h.api.OAuth().ExchangeCode(
			r.FormValue("client_id"),
			r.FormValue("client_secret"),
			r.FormValue("redirect_uri"),
			r.FormValue("code"),
		)
	}
	if err != nil {
		h.writeError(w, h.api.err(provider.KindInvalidToken, "OAuthException", "%v", err))
		return
	}
	writeJSON(w, map[string]any{
		"access_token": info.Token,
		"token_type":   "bearer",
		"expires_in":   int64(info.ExpiresAt.Sub(info.IssuedAt).Seconds()),
	})
}

func (h *httpAPI) me(w http.ResponseWriter, r *http.Request) {
	acct, err := h.api.Me(callContext(r))
	if err != nil {
		h.writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"id":      acct.ID,
		"name":    acct.Name,
		"country": acct.Country,
	})
}

func (h *httpAPI) friends(w http.ResponseWriter, r *http.Request) {
	friends, err := h.api.Friends(callContext(r))
	if err != nil {
		h.writeError(w, err)
		return
	}
	data := make([]map[string]any, 0, len(friends))
	for _, f := range friends {
		data = append(data, map[string]any{
			"id":      f.ID,
			"name":    f.Name,
			"country": f.Country,
		})
	}
	writeJSON(w, map[string]any{"data": data})
}

func (h *httpAPI) feed(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		post, err := h.api.Publish(callContext(r), r.FormValue("message"))
		if err != nil {
			h.writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"id": post.ID})
	case http.MethodGet:
		posts, err := h.api.Feed(callContext(r))
		if err != nil {
			h.writeError(w, err)
			return
		}
		data := make([]map[string]any, 0, len(posts))
		for _, p := range posts {
			data = append(data, map[string]any{
				"id":      p.ID,
				"message": p.Message,
				"time":    p.CreatedAt.UTC().Format("2006-01-02T15:04:05Z"),
			})
		}
		writeJSON(w, map[string]any{"data": data})
	default:
		h.writeError(w, h.api.err(provider.KindInvalidParam, "GraphMethodException", "GET or POST required"))
	}
}

// debugToken implements Facebook's token-introspection endpoint: an app
// server authenticates with its app ID and secret and inspects any token
// issued to that app (GET /debug_token?input_token=&client_id=&client_secret=).
// The response mirrors the real endpoint's envelope: app_id, user_id,
// expiry, scopes, and is_valid.
func (h *httpAPI) debugToken(w http.ResponseWriter, r *http.Request) {
	appID := r.FormValue("client_id")
	secret := r.FormValue("client_secret")
	input := r.FormValue("input_token")
	app, err := h.api.Registry().Get(appID)
	if err != nil {
		h.writeError(w, h.api.err(provider.KindInvalidToken, "OAuthException", "unknown application"))
		return
	}
	if !secrets.Equal(secret, app.Secret) {
		h.writeError(w, h.api.err(provider.KindSecretProof, "OAuthException", "application secret mismatch"))
		return
	}
	data := map[string]any{"is_valid": false}
	if info, verr := h.api.OAuth().Validate(input); verr == nil {
		if info.AppID != appID {
			// Apps may only introspect their own tokens.
			h.writeError(w, h.api.err(provider.KindPermission, "OAuthException", "token belongs to another application"))
			return
		}
		data = map[string]any{
			"is_valid":   true,
			"app_id":     info.AppID,
			"user_id":    info.AccountID,
			"scopes":     info.Scopes,
			"issued_at":  info.IssuedAt.Unix(),
			"expires_at": info.ExpiresAt.Unix(),
		}
	}
	writeJSON(w, map[string]any{"data": data})
}

// batchOp is one operation in a Graph API batch request.
type batchOp struct {
	Method      string `json:"method"`
	RelativeURL string `json:"relative_url"`
	Body        string `json:"body"`
	// SourceIP optionally overrides the outer request's X-Forwarded-For
	// for this operation. Delivery engines route each action of a burst
	// through a different member of their IP pool; the per-op field lets
	// a batched burst keep that attribution.
	SourceIP string `json:"source_ip,omitempty"`
}

// batchResult is one operation's outcome.
type batchResult struct {
	Code int    `json:"code"`
	Body string `json:"body"`
}

// batch implements POST /batch: a JSON array of operations executed
// sequentially, each producing an embedded status code and body. The
// access_token of the outer request is the default for operations that
// do not carry their own.
func (h *httpAPI) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		h.writeError(w, h.api.err(provider.KindInvalidParam, "GraphMethodException", "POST required"))
		return
	}
	var ops []batchOp
	if err := json.Unmarshal([]byte(r.FormValue("batch")), &ops); err != nil {
		h.writeError(w, h.api.err(provider.KindInvalidParam, "GraphMethodException", "bad batch JSON: %v", err))
		return
	}
	maxOps := h.api.prov.Limits().MaxBatchOps
	if len(ops) == 0 || len(ops) > maxOps {
		h.writeError(w, h.api.err(provider.KindInvalidParam, "GraphMethodException", "batch size must be 1..%d", maxOps))
		return
	}
	defaultToken := r.FormValue("access_token")
	fwd := r.Header.Get("X-Forwarded-For")

	// Homogeneous like batches take the native path: one call into the
	// API's batched endpoint instead of N recorder replays.
	if objectID, likeOps, ok := parseLikeBatch(ops, defaultToken, fwd); ok {
		errs := h.api.LikeBatch(r.Context(), objectID, likeOps)
		results := make([]batchResult, len(errs))
		for i, err := range errs {
			results[i] = h.likeBatchResult(err)
		}
		writeJSON(w, results)
		return
	}

	results := make([]batchResult, len(ops))
	for i, op := range ops {
		results[i] = h.runBatchOp(r.Context(), op, defaultToken, fwd)
	}
	writeJSON(w, results)
}

// parseLikeBatch recognises a homogeneous like batch — every op a POST to
// the same /{object}/likes edge carrying only token and proof parameters —
// and lowers it to the API's native batched endpoint. ok=false means the
// batch is mixed and must go through per-op replay.
func parseLikeBatch(ops []batchOp, defaultToken, fwd string) (string, []BatchLikeOp, bool) {
	fwdIP := ""
	if fwd != "" {
		fwdIP = strings.TrimSpace(strings.Split(fwd, ",")[0])
	}
	objectID := ""
	out := make([]BatchLikeOp, len(ops))
	for i, op := range ops {
		if !strings.EqualFold(op.Method, http.MethodPost) || strings.Contains(op.RelativeURL, "?") {
			return "", nil, false
		}
		parts := strings.Split(strings.Trim(op.RelativeURL, "/"), "/")
		if len(parts) != 2 || parts[0] == "" || parts[1] != "likes" {
			return "", nil, false
		}
		if i == 0 {
			objectID = parts[0]
		} else if parts[0] != objectID {
			return "", nil, false
		}
		vals, err := url.ParseQuery(op.Body)
		if err != nil {
			return "", nil, false
		}
		for k := range vals {
			if k != "access_token" && k != "appsecret_proof" {
				return "", nil, false
			}
		}
		token := vals.Get("access_token")
		if token == "" {
			token = defaultToken
		}
		ip := strings.TrimSpace(op.SourceIP)
		if ip == "" {
			ip = fwdIP
		}
		out[i] = BatchLikeOp{AccessToken: token, AppSecretProof: vals.Get("appsecret_proof"), SourceIP: ip}
	}
	return objectID, out, true
}

// likeBatchResult renders one batched like outcome into the same embedded
// status and envelope the replay path produces.
func (h *httpAPI) likeBatchResult(err error) batchResult {
	if err == nil {
		return batchResult{Code: http.StatusOK, Body: `{"success":true}`}
	}
	ae := h.asAPIError(err)
	var env errorEnvelope
	env.Error.Message = ae.Message
	env.Error.Type = ae.Type
	env.Error.Code = ae.Code
	b, _ := json.Marshal(env)
	return batchResult{Code: httpStatus(ae.Kind), Body: string(b)}
}

// runBatchOp executes one batched operation by replaying it through the
// full handler stack, so policies, attribution, and error envelopes are
// identical to standalone requests. ctx is the outer request's context, so
// batched operations stay on the batch's trace.
func (h *httpAPI) runBatchOp(ctx context.Context, op batchOp, defaultToken, fwd string) batchResult {
	target := "/" + strings.TrimLeft(op.RelativeURL, "/")
	body := op.Body
	if defaultToken != "" && !strings.Contains(body, "access_token=") && !strings.Contains(target, "access_token=") {
		if body == "" {
			body = "access_token=" + url.QueryEscape(defaultToken)
		} else {
			body += "&access_token=" + url.QueryEscape(defaultToken)
		}
	}
	method := strings.ToUpper(op.Method)
	if method == "" {
		method = http.MethodGet
	}
	var req *http.Request
	var err error
	if method == http.MethodGet {
		if body != "" {
			sep := "?"
			if strings.Contains(target, "?") {
				sep = "&"
			}
			target += sep + body
		}
		req, err = http.NewRequest(method, target, nil)
	} else {
		req, err = http.NewRequest(method, target, strings.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	}
	if err != nil {
		return batchResult{Code: http.StatusBadRequest, Body: `{"error":{"message":"bad batch operation"}}`}
	}
	req = req.WithContext(ctx)
	if op.SourceIP != "" {
		req.Header.Set("X-Forwarded-For", op.SourceIP)
	} else if fwd != "" {
		req.Header.Set("X-Forwarded-For", fwd)
	}
	rec := newRecorder()
	// Route through a fresh mux equivalent: reuse the object/me handlers
	// by dispatching on the same paths Handler registers.
	h.dispatch(rec, req)
	return batchResult{Code: rec.status, Body: strings.TrimSpace(rec.body.String())}
}

// dispatch routes a synthetic request to the right handler method.
func (h *httpAPI) dispatch(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/me":
		h.me(w, r)
	case r.URL.Path == "/me/feed":
		h.feed(w, r)
	case r.URL.Path == "/me/friends":
		h.friends(w, r)
	case r.URL.Path == "/debug_token":
		h.debugToken(w, r)
	default:
		h.object(w, r)
	}
}

// recorder is a minimal in-process ResponseWriter.
type recorder struct {
	status int
	header http.Header
	body   *strings.Builder
}

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, header: make(http.Header), body: &strings.Builder{}}
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(code int) {
	r.status = code
}
func (r *recorder) Write(b []byte) (int, error) {
	return r.body.Write(b)
}

// object dispatches /{id}/likes and /{id}/comments.
func (h *httpAPI) object(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) != 2 {
		h.writeError(w, h.api.err(provider.KindNotFound, "GraphMethodException", "unknown path %q", r.URL.Path))
		return
	}
	objectID, edge := parts[0], parts[1]
	ctx := callContext(r)
	switch {
	case edge == "likes" && r.Method == http.MethodPost:
		if err := h.api.Like(ctx, objectID); err != nil {
			h.writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"success": true})
	case edge == "likes" && r.Method == http.MethodDelete:
		if err := h.api.Unlike(ctx, objectID); err != nil {
			h.writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"success": true})
	case edge == "likes" && r.Method == http.MethodGet:
		limit, after, perr := pageParams(r)
		if perr != nil {
			h.writeError(w, h.api.err(provider.KindInvalidParam, "GraphMethodException", "%v", perr))
			return
		}
		likes, next, more, err := h.api.LikesPage(ctx, objectID, after, limit)
		if err != nil {
			h.writeError(w, err)
			return
		}
		data := make([]map[string]any, 0, len(likes))
		for _, l := range likes {
			data = append(data, map[string]any{
				"id":   l.AccountID,
				"time": l.At.UTC().Format("2006-01-02T15:04:05Z"),
			})
		}
		body := map[string]any{"data": data}
		if paging := pagingEnvelopeAt(next, more); paging != nil {
			body["paging"] = paging
		}
		writeJSON(w, body)
	case edge == "comments" && r.Method == http.MethodPost:
		c, err := h.api.Comment(ctx, objectID, r.FormValue("message"))
		if err != nil {
			h.writeError(w, err)
			return
		}
		writeJSON(w, map[string]any{"id": c.ID})
	case edge == "comments" && r.Method == http.MethodGet:
		limit, after, perr := pageParams(r)
		if perr != nil {
			h.writeError(w, h.api.err(provider.KindInvalidParam, "GraphMethodException", "%v", perr))
			return
		}
		comments, next, more, err := h.api.CommentsPage(ctx, objectID, after, limit)
		if err != nil {
			h.writeError(w, err)
			return
		}
		data := make([]map[string]any, 0, len(comments))
		for _, c := range comments {
			data = append(data, map[string]any{
				"id":      c.ID,
				"from":    c.AccountID,
				"message": c.Message,
				"time":    c.At.UTC().Format("2006-01-02T15:04:05Z"),
			})
		}
		body := map[string]any{"data": data}
		if paging := pagingEnvelopeAt(next, more); paging != nil {
			body["paging"] = paging
		}
		writeJSON(w, body)
	default:
		h.writeError(w, h.api.err(provider.KindNotFound, "GraphMethodException", "unknown edge %q", edge))
	}
}
