package graphapi

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/apps"
)

// TestHTTPExchangeLongLived exercises grant_type=fb_exchange_token over
// the wire.
func TestHTTPExchangeLongLived(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	form := url.Values{
		"grant_type":        {"fb_exchange_token"},
		"client_id":         {f.app.ID},
		"client_secret":     {f.app.Secret},
		"fb_exchange_token": {tok},
	}
	resp, err := http.PostForm(srv.URL+"/oauth/access_token", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		AccessToken string `json:"access_token"`
		ExpiresIn   int64  `json:"expires_in"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.AccessToken == tok || body.AccessToken == "" {
		t.Fatalf("exchange token = %q", body.AccessToken)
	}
	if body.ExpiresIn != int64(apps.LongTermDuration.Seconds()) {
		t.Fatalf("expires_in = %d", body.ExpiresIn)
	}
	if _, err := f.oauth.Validate(body.AccessToken); err != nil {
		t.Fatalf("exchanged token invalid: %v", err)
	}
}

// The HTTP surface must degrade gracefully on adversarial or malformed
// input: wrong methods, missing parameters, junk paths, and oversized
// bodies must produce structured errors, never panics or 500s.
func TestHTTPMalformedInputs(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus []int
	}{
		{"empty token like", http.MethodPost, "/" + f.post.ID + "/likes", "access_token=", []int{401}},
		{"missing params dialog", http.MethodGet, "/dialog/oauth", "", []int{400}},
		{"dialog bad scope", http.MethodGet,
			"/dialog/oauth?client_id=" + f.app.ID + "&redirect_uri=" + url.QueryEscape(f.app.RedirectURI) +
				"&response_type=token&scope=%00%01garbage&account_id=" + f.user.ID, "", []int{400}},
		{"exchange empty", http.MethodPost, "/oauth/access_token", "", []int{401}},
		{"exchange junk grant", http.MethodPost, "/oauth/access_token",
			"grant_type=password&username=x&password=y", []int{401}},
		{"object with slashes", http.MethodGet, "/a/b/c/d?access_token=" + tok, "", []int{404}},
		{"delete method on likes", http.MethodDelete, "/" + f.post.ID + "/likes?access_token=" + tok, "", []int{404}},
		// Reading the likes edge of a garbage object ID returns an empty
		// list (reads are forgiving); the guarantee is no panic/5xx.
		{"percent-encoded nulls in path", http.MethodGet, "/%00%01/likes?access_token=" + tok, "", []int{200, 400, 404}},
		{"huge message", http.MethodPost, "/me/feed",
			"access_token=" + tok + "&message=" + strings.Repeat("A", 1<<16), []int{200}},
		{"feed GET lists posts", http.MethodGet, "/me/feed?access_token=" + tok, "", []int{200}},
		{"feed PUT refused", http.MethodPut, "/me/feed?access_token=" + tok, "", []int{400}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			var err error
			if tc.body != "" {
				req, err = http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
				if err == nil {
					req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
				}
			} else {
				req, err = http.NewRequest(tc.method, srv.URL+tc.path, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			ok := false
			for _, want := range tc.wantStatus {
				if resp.StatusCode == want {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("status = %d, want one of %v", resp.StatusCode, tc.wantStatus)
			}
			if resp.StatusCode >= 500 {
				t.Fatalf("server error: %d", resp.StatusCode)
			}
		})
	}
}

// TestHTTPForwardedForSpoofHandling: the first X-Forwarded-For entry is
// trusted as the source IP (the simulation's attribution channel); a
// multi-hop header must not confuse parsing.
func TestHTTPForwardedForSpoofHandling(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/"+f.post.ID+"/likes",
		strings.NewReader("access_token="+tok))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("X-Forwarded-For", "203.0.113.9, 10.0.0.1, 172.16.0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	likes := f.graph.Likes(f.post.ID)
	if len(likes) != 1 || likes[0].SourceIP != "203.0.113.9" {
		t.Fatalf("likes = %+v", likes)
	}
}
