package graphapi

import (
	"context"
	"strconv"
	"sync"

	"repro/internal/apps"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/socialgraph"
)

// Batched like endpoint. A collusion-network burst is N likes on one
// object by N distinct tokens; LikeBatch runs that burst through the same
// pipeline as N Like calls but with a single store apply.
//
// The invariant that may not move: every countermeasure sees the batch
// exactly as it would see N sequential calls. Each op is authenticated on
// its own token and the policy chain is evaluated once per op with that
// op's token, IP, and ASN, so rate limiters and SynchroTrap accumulate
// identical per-token/per-IP counts (Figure 5 dynamics are built on
// those counts). Only the store write is coalesced — one AddLikeBatch
// under per-shard lock scopes instead of N two-stripe scopes.

// batchMemo caches the reads of authenticate whose result is identical
// for every op sharing an app or a source IP: the registry lookup (a
// lock, a map probe, and a defensive App clone per call) and the
// IP→AS resolution (an address parse per call). A burst reuses a
// handful of apps and IPs across dozens of ops, so the hit rate is
// near-total. Safe because a batch observing one consistent app/AS view
// is an admissible interleaving of the N equivalent sequential calls —
// and no per-token or per-IP defense count flows through these reads.
type batchMemo struct {
	apps map[string]memoApp
	asns map[string]memoASN
}

type memoApp struct {
	app apps.App
	err error
}

type memoASN struct {
	asn netsim.ASN
	ok  bool
}

func newBatchMemo() *batchMemo {
	return &batchMemo{apps: make(map[string]memoApp, 2), asns: make(map[string]memoASN, 8)}
}

// batchScratch is LikeBatch's reusable working set: the apply queue, its
// index map, the store's write-error slice, and the memo maps. Pooled so
// a sustained burst stream (the scale loadgen drives thousands of
// batches per simulated day) reuses one allocation per worker instead of
// five per call. errs is NOT pooled — it is returned to the caller.
type batchScratch struct {
	apply     []socialgraph.LikeOp
	applyIdx  []int
	writeErrs []error
	memo      batchMemo
}

// scratchPool recycles batchScratch values. A sync.Pool (unlike the
// store's shard-local free lists) is the right shape here: batches
// arrive on arbitrary goroutines, and the GC occasionally reclaiming an
// idle scratch only costs a re-allocation — LikeBatch's gate budgets for
// the returned errs slice, not for scratch reuse being perfect.
var scratchPool = sync.Pool{New: func() any {
	return &batchScratch{
		memo: batchMemo{apps: make(map[string]memoApp, 2), asns: make(map[string]memoASN, 8)},
	}
}}

// get returns scratch with empty slices (capacity retained) and cleared
// memo maps, sized for n ops.
func getScratch(n int) *batchScratch {
	s := scratchPool.Get().(*batchScratch)
	if cap(s.apply) < n {
		s.apply = make([]socialgraph.LikeOp, 0, n)
		s.applyIdx = make([]int, 0, n)
		s.writeErrs = make([]error, n)
	}
	s.apply = s.apply[:0]
	s.applyIdx = s.applyIdx[:0]
	return s
}

// put clears the scratch's pointer-bearing state (tokens, app records,
// write errors must not outlive the batch in a pool) and recycles it.
func putScratch(s *batchScratch) {
	clear(s.apply[:cap(s.apply)])
	clear(s.applyIdx[:cap(s.applyIdx)])
	clear(s.writeErrs[:cap(s.writeErrs)])
	clear(s.memo.apps)
	clear(s.memo.asns)
	scratchPool.Put(s)
}

func (m *batchMemo) app(r *apps.Registry, id string) (apps.App, error) {
	if e, ok := m.apps[id]; ok {
		return e.app, e.err
	}
	app, err := r.Get(id)
	m.apps[id] = memoApp{app: app, err: err}
	return app, err
}

func (m *batchMemo) asn(internet *netsim.Internet, ip string) (netsim.ASN, bool) {
	if e, ok := m.asns[ip]; ok {
		return e.asn, e.ok
	}
	var e memoASN
	if as, ok := internet.LookupASString(ip); ok {
		e = memoASN{asn: as.Number, ok: true}
	}
	m.asns[ip] = e
	return e.asn, e.ok
}

// BatchLikeOp is one like in a batch: the op's bearer token, its
// app-secret proof, and the source IP the action originates from.
type BatchLikeOp struct {
	AccessToken    string
	AppSecretProof string
	SourceIP       string
}

// LikeBatch publishes one like on objectID per op and returns one error
// per op, aligned by index (nil = delivered). Per-op request counters and
// latency histograms are recorded exactly as N Like calls would record
// them; tracing differs only in shape (one sampled graphapi.like_batch
// root, child spans sampled for the first op only).
func (a *API) LikeBatch(ctx context.Context, objectID string, ops []BatchLikeOp) []error {
	errs := make([]error, len(ops))
	if len(ops) == 0 {
		return errs
	}
	start := a.clock.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := a.obs.T().StartSpanAt(ctx, "graphapi.like_batch", start)
	if span != nil {
		span.SetAttr("provider", a.provName)
		span.SetAttr("object", objectID)
		span.SetAttr("ops", strconv.Itoa(len(ops)))
	}
	unsampled := obs.UnsampledContext(ctx)
	as := a.allocs.Begin(ctx, "graphapi.like_batch")

	// Phase 1: authenticate and policy-check every op in order. Ops that
	// clear the chain queue for the store apply; the rest already carry
	// their error. All working slices and the memo come from the scratch
	// pool.
	scratch := getScratch(len(ops))
	defer putScratch(scratch)
	apply := scratch.apply
	applyIdx := scratch.applyIdx
	memo := &scratch.memo
	for i, op := range ops {
		opCtx := ctx
		if i > 0 {
			opCtx = unsampled
		}
		cc := CallContext{AccessToken: op.AccessToken, AppSecretProof: op.AppSecretProof, SourceIP: op.SourceIP}
		req, err := a.authenticateMemo(opCtx, cc, VerbLike, a.scopePublish, start, memo)
		if err != nil {
			errs[i] = err
			continue
		}
		req.ObjectID = objectID
		if d := a.evaluate(opCtx, &req); !d.Allow {
			errs[i] = a.denialError(d)
			continue
		}
		apply = append(apply, socialgraph.LikeOp{
			AccountID: req.Token.AccountID,
			ObjectID:  objectID,
			Meta:      socialgraph.WriteMeta{AppID: req.App.ID, SourceIP: op.SourceIP, At: req.At},
		})
		applyIdx = append(applyIdx, i)
	}

	// Phase 2: one batch apply for everything the chain allowed.
	if len(apply) > 0 {
		_, aspan := a.obs.T().StartSpanAt(ctx, "shard.apply", start)
		if aspan != nil {
			aspan.SetAttr("shard", strconv.Itoa(a.graph.ShardIndexOf(objectID)))
			aspan.SetAttr("ops", strconv.Itoa(len(apply)))
		}
		bs := a.allocs.Begin(ctx, "shard.apply")
		writeErrs := scratch.writeErrs[:len(apply)]
		a.graph.AddLikeBatchInto(apply, writeErrs)
		bs.End(len(apply))
		aspan.EndAt(start)
		for j, we := range writeErrs {
			errs[applyIdx[j]] = a.likeWriteError(we, objectID)
		}
	}

	as.End(len(ops))
	end := a.clock.Now()
	if span != nil {
		span.SetAttr("code", "0")
		span.EndAt(end)
	}
	if a.obs != nil {
		// Record the exact per-op series N sequential Like calls would:
		// one counter increment and one latency sample per op, keyed by
		// that op's error code.
		secs := end.Sub(start).Seconds()
		inst := a.opInst[opLike]
		for _, err := range errs {
			if err == nil {
				inst.ok.Inc()
				inst.latency.Observe(secs)
				continue
			}
			a.reqCount.Inc(a.provName, opNames[opLike], strconv.Itoa(ErrCode(err)))
			// The latency family has no code label; the bound series
			// covers failed ops too (rate-limit denials make this hot).
			inst.latency.Observe(secs)
		}
	}
	return errs
}
