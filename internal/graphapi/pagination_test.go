package graphapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/oauthsim"
	"repro/internal/socialgraph"
)

// seedLikes puts n distinct likers on the fixture's post.
func seedLikes(t *testing.T, f *fixture, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		u := f.graph.CreateAccount(fmt.Sprintf("pager-%d", i), "IN", t0)
		res, err := f.oauth.Authorize(oauthsim.AuthorizeRequest{
			AppID:        f.app.ID,
			RedirectURI:  f.app.RedirectURI,
			ResponseType: oauthsim.ResponseToken,
			Scopes:       []string{apps.PermPublishActions},
			AccountID:    u.ID,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.api.Like(CallContext{AccessToken: res.AccessToken}, f.post.ID); err != nil {
			t.Fatal(err)
		}
	}
}

type likesPage struct {
	Data []struct {
		ID string `json:"id"`
	} `json:"data"`
	Paging *struct {
		Cursors struct {
			After string `json:"after"`
		} `json:"cursors"`
	} `json:"paging"`
}

func getLikesPage(t *testing.T, srv *httptest.Server, postID, token string, params url.Values) likesPage {
	t.Helper()
	params.Set("access_token", token)
	resp, err := http.Get(srv.URL + "/" + postID + "/likes?" + params.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var page likesPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

func TestLikesEdgePagination(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	seedLikes(t, f, 60)

	// Default page size is 25 with a next cursor.
	p1 := getLikesPage(t, srv, f.post.ID, tok, url.Values{})
	if len(p1.Data) != 25 || p1.Paging == nil {
		t.Fatalf("page1: %d rows, paging=%v", len(p1.Data), p1.Paging)
	}
	p2 := getLikesPage(t, srv, f.post.ID, tok, url.Values{"after": {p1.Paging.Cursors.After}})
	if len(p2.Data) != 25 || p2.Paging == nil {
		t.Fatalf("page2: %d rows", len(p2.Data))
	}
	p3 := getLikesPage(t, srv, f.post.ID, tok, url.Values{"after": {p2.Paging.Cursors.After}})
	if len(p3.Data) != 10 {
		t.Fatalf("page3: %d rows", len(p3.Data))
	}
	if p3.Paging != nil {
		t.Fatalf("page3 has a next cursor: %+v", p3.Paging)
	}
	// No duplicates across pages.
	seen := map[string]bool{}
	for _, page := range []likesPage{p1, p2, p3} {
		for _, d := range page.Data {
			if seen[d.ID] {
				t.Fatalf("duplicate liker %s across pages", d.ID)
			}
			seen[d.ID] = true
		}
	}
	if len(seen) != 60 {
		t.Fatalf("total likers paged = %d", len(seen))
	}
}

func TestLikesEdgeCursorStableAcrossShards(t *testing.T) {
	// Likers live on many stripes of the sharded store and are inserted
	// concurrently, but the likes edge must still present one stable
	// arrival order: offset cursors are only sound if two full walks see
	// the same sequence, and that sequence is the store's crawl order.
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	const n = 64
	tokens := make([]string, n)
	for i := range tokens {
		u := f.graph.CreateAccount(fmt.Sprintf("shard-pager-%d", i), "IN", t0)
		res, err := f.oauth.Authorize(oauthsim.AuthorizeRequest{
			AppID:        f.app.ID,
			RedirectURI:  f.app.RedirectURI,
			ResponseType: oauthsim.ResponseToken,
			Scopes:       []string{apps.PermPublishActions},
			AccountID:    u.ID,
		})
		if err != nil {
			t.Fatal(err)
		}
		tokens[i] = res.AccessToken
	}
	var wg sync.WaitGroup
	for _, tk := range tokens {
		wg.Add(1)
		go func(tk string) {
			defer wg.Done()
			if err := f.api.Like(CallContext{AccessToken: tk}, f.post.ID); err != nil {
				t.Errorf("Like: %v", err)
			}
		}(tk)
	}
	wg.Wait()

	walk := func() []string {
		var out []string
		after := ""
		for {
			params := url.Values{"limit": {"7"}}
			if after != "" {
				params.Set("after", after)
			}
			page := getLikesPage(t, srv, f.post.ID, tok, params)
			for _, d := range page.Data {
				out = append(out, d.ID)
			}
			if page.Paging == nil {
				return out
			}
			after = page.Paging.Cursors.After
		}
	}
	first, second := walk(), walk()
	if len(first) != n {
		t.Fatalf("walk saw %d likers, want %d", len(first), n)
	}
	seen := map[string]bool{}
	for _, id := range first {
		if seen[id] {
			t.Fatalf("duplicate liker %s in paged walk", id)
		}
		seen[id] = true
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("walks diverge at %d: %q vs %q", i, first[i], second[i])
		}
	}
	// The paged order is exactly the store's crawl order.
	likes := f.graph.Likes(f.post.ID)
	if len(likes) != n {
		t.Fatalf("store has %d likes", len(likes))
	}
	for i, l := range likes {
		if first[i] != l.AccountID {
			t.Fatalf("page order diverges from crawl order at %d: %q vs %q", i, first[i], l.AccountID)
		}
	}
}

func TestLikesEdgeLimitClamp(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	seedLikes(t, f, 150)
	page := getLikesPage(t, srv, f.post.ID, tok, url.Values{"limit": {"5000"}})
	if len(page.Data) != 100 {
		t.Fatalf("clamped page = %d rows, want 100", len(page.Data))
	}
}

func TestLikesEdgeBadPagingParams(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	seedLikes(t, f, 3)
	for _, params := range []url.Values{
		{"limit": {"0"}},
		{"limit": {"-3"}},
		{"limit": {"abc"}},
		{"after": {"not-base64!!"}},
	} {
		params.Set("access_token", tok)
		resp, err := http.Get(srv.URL + "/" + f.post.ID + "/likes?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("params %v: status = %d, want 400", params, resp.StatusCode)
		}
	}
}

func TestHTTPClientWalksAllPages(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	seedLikes(t, f, 230)
	// The platform HTTP client must transparently collect all pages.
	likes := fetchAllViaClient(t, srv.URL, tok, f.post.ID)
	if len(likes) != 230 {
		t.Fatalf("client collected %d likes, want 230", len(likes))
	}
}

// fetchAllViaClient uses the production pagination loop from the platform
// package indirectly — reimplemented minimally here to avoid an import
// cycle (platform imports graphapi).
func fetchAllViaClient(t *testing.T, base, token, postID string) []string {
	t.Helper()
	var out []string
	after := ""
	for {
		params := url.Values{"access_token": {token}, "limit": {"100"}}
		if after != "" {
			params.Set("after", after)
		}
		resp, err := http.Get(base + "/" + postID + "/likes?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		var page likesPage
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range page.Data {
			out = append(out, d.ID)
		}
		if page.Paging == nil {
			return out
		}
		after = page.Paging.Cursors.After
	}
}

func TestCommentsEdgePagination(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	ctx := CallContext{AccessToken: tok}
	for i := 0; i < 30; i++ {
		if _, err := f.api.Comment(ctx, f.post.ID, fmt.Sprintf("comment %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(srv.URL + "/" + f.post.ID + "/comments?limit=20&access_token=" + tok)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Data []struct {
			Message string `json:"message"`
		} `json:"data"`
		Paging *struct {
			Cursors struct {
				After string `json:"after"`
			} `json:"cursors"`
		} `json:"paging"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Data) != 20 || page.Paging == nil {
		t.Fatalf("comments page = %d rows, paging=%v", len(page.Data), page.Paging)
	}
	if page.Data[0].Message != "comment 0" {
		t.Fatalf("first comment = %q", page.Data[0].Message)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	for _, off := range []int{0, 1, 25, 10_000} {
		got, err := decodeCursor(encodeCursor(off))
		if err != nil || got != off {
			t.Fatalf("round trip %d → %d, %v", off, got, err)
		}
	}
	if _, err := decodeCursor("###"); err == nil {
		t.Fatal("garbage cursor decoded")
	}
	if off, err := decodeCursor(""); err != nil || off != 0 {
		t.Fatalf("empty cursor = %d, %v", off, err)
	}
}

func TestPageSliceHelpers(t *testing.T) {
	likes := make([]socialgraph.Like, 10)
	if got := pageSliceLikes(likes, 20, 5); got != nil {
		t.Fatalf("past-end slice = %v", got)
	}
	if got := pageSliceLikes(likes, 8, 5); len(got) != 2 {
		t.Fatalf("tail slice = %d", len(got))
	}
	comments := make([]socialgraph.Comment, 4)
	if got := pageSliceComments(comments, 0, 10); len(got) != 4 {
		t.Fatalf("full slice = %d", len(got))
	}
}
