package graphapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"testing"

	"repro/internal/oauthsim"
	"repro/internal/socialgraph"
)

func postBatch(t *testing.T, srvURL, token, batchJSON string) []batchResult {
	t.Helper()
	form := url.Values{"access_token": {token}, "batch": {batchJSON}}
	resp, err := http.PostForm(srvURL+"/batch", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var results []batchResult
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestBatchMixedOperations(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	post2, err := f.graph.CreatePost(f.post.AuthorID, "second post", socialgraph.WriteMeta{At: t0})
	if err != nil {
		t.Fatal(err)
	}
	batch := fmt.Sprintf(`[
		{"method":"GET","relative_url":"me"},
		{"method":"POST","relative_url":"%s/likes"},
		{"method":"POST","relative_url":"%s/likes"},
		{"method":"POST","relative_url":"%s/comments","body":"message=batched+comment"},
		{"method":"GET","relative_url":"%s/likes"}
	]`, f.post.ID, post2.ID, f.post.ID, f.post.ID)
	results := postBatch(t, srv.URL, tok, batch)
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Code != http.StatusOK {
			t.Fatalf("op %d: code %d body %s", i, r.Code, r.Body)
		}
	}
	// The writes landed.
	if f.graph.LikeCount(f.post.ID) != 1 || f.graph.LikeCount(post2.ID) != 1 {
		t.Fatal("batched likes missing")
	}
	comments := f.graph.Comments(f.post.ID)
	if len(comments) != 1 || comments[0].Message != "batched comment" {
		t.Fatalf("batched comment = %+v", comments)
	}
	// The final read sees the like placed earlier in the same batch.
	var readBody struct {
		Data []struct {
			ID string `json:"id"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(results[4].Body), &readBody); err != nil {
		t.Fatal(err)
	}
	if len(readBody.Data) != 1 || readBody.Data[0].ID != f.user.ID {
		t.Fatalf("batched read = %s", results[4].Body)
	}
}

func TestBatchPartialFailures(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	batch := fmt.Sprintf(`[
		{"method":"POST","relative_url":"%s/likes"},
		{"method":"POST","relative_url":"%s/likes"},
		{"method":"GET","relative_url":"me"}
	]`, f.post.ID, f.post.ID)
	results := postBatch(t, srv.URL, tok, batch)
	if results[0].Code != http.StatusOK {
		t.Fatalf("first like failed: %+v", results[0])
	}
	// The duplicate like fails with an embedded error envelope while the
	// rest of the batch proceeds.
	if results[1].Code != http.StatusBadRequest {
		t.Fatalf("duplicate like code = %d", results[1].Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal([]byte(results[1].Body), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeDuplicate {
		t.Fatalf("embedded error = %+v", env)
	}
	if results[2].Code != http.StatusOK {
		t.Fatalf("trailing op failed: %+v", results[2])
	}
}

func TestBatchValidation(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	for _, batch := range []string{"", "not-json", "[]"} {
		form := url.Values{"access_token": {tok}, "batch": {batch}}
		resp, err := http.PostForm(srv.URL+"/batch", form)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch %q status = %d", batch, resp.StatusCode)
		}
	}
	// Over the 50-op cap.
	big := "["
	for i := 0; i < 51; i++ {
		if i > 0 {
			big += ","
		}
		big += `{"method":"GET","relative_url":"me"}`
	}
	big += "]"
	form := url.Values{"access_token": {tok}, "batch": {big}}
	resp, err := http.PostForm(srv.URL+"/batch", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d", resp.StatusCode)
	}
	_ = f
}

func TestBatchPerOpToken(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tokA := httpToken(t, f, srv)
	// A second member with their own token inside the op body.
	other := f.graph.CreateAccount("other-member", "IN", t0)
	resB, err := f.oauth.Authorize(authorizeReqFor(f, other.ID))
	if err != nil {
		t.Fatal(err)
	}
	batch := fmt.Sprintf(`[
		{"method":"POST","relative_url":"%s/likes"},
		{"method":"POST","relative_url":"%s/likes","body":"access_token=%s"}
	]`, f.post.ID, f.post.ID, resB.AccessToken)
	results := postBatch(t, srv.URL, tokA, batch)
	for i, r := range results {
		if r.Code != http.StatusOK {
			t.Fatalf("op %d: %+v", i, r)
		}
	}
	likes := f.graph.Likes(f.post.ID)
	if len(likes) != 2 {
		t.Fatalf("likes = %d", len(likes))
	}
	if likes[0].AccountID == likes[1].AccountID {
		t.Fatal("per-op token ignored")
	}
}

func TestDebugTokenIntrospection(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)

	get := func(params url.Values) (int, map[string]any) {
		resp, err := http.Get(srv.URL + "/debug_token?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Data map[string]any `json:"data"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body.Data
	}

	status, data := get(url.Values{
		"client_id":     {f.app.ID},
		"client_secret": {f.app.Secret},
		"input_token":   {tok},
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if data["is_valid"] != true || data["user_id"] != f.user.ID || data["app_id"] != f.app.ID {
		t.Fatalf("data = %+v", data)
	}

	// Invalidated token introspects as invalid.
	f.oauth.Invalidate(tok, "swept")
	_, data = get(url.Values{
		"client_id":     {f.app.ID},
		"client_secret": {f.app.Secret},
		"input_token":   {tok},
	})
	if data["is_valid"] != false {
		t.Fatalf("swept token data = %+v", data)
	}

	// Wrong secret is refused.
	status, _ = get(url.Values{
		"client_id":     {f.app.ID},
		"client_secret": {"nope"},
		"input_token":   {tok},
	})
	if status != http.StatusForbidden {
		t.Fatalf("wrong secret status = %d", status)
	}
}

func TestHTTPDialogEchoesState(t *testing.T) {
	f, srv := newHTTPFixture(t)
	q := url.Values{}
	q.Set("client_id", f.app.ID)
	q.Set("redirect_uri", f.app.RedirectURI)
	q.Set("response_type", "token")
	q.Set("scope", "publish_actions")
	q.Set("account_id", f.user.ID)
	q.Set("state", "csrf-nonce-123")
	resp, err := noRedirect().Get(srv.URL + "/dialog/oauth?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	loc, _ := url.Parse(resp.Header.Get("Location"))
	frag, _ := url.ParseQuery(loc.Fragment)
	if frag.Get("state") != "csrf-nonce-123" {
		t.Fatalf("state = %q", frag.Get("state"))
	}
}

// authorizeReqFor builds an implicit-flow request for an arbitrary
// account on the fixture's app.
func authorizeReqFor(f *fixture, accountID string) oauthsim.AuthorizeRequest {
	return oauthsim.AuthorizeRequest{
		AppID:        f.app.ID,
		RedirectURI:  f.app.RedirectURI,
		ResponseType: oauthsim.ResponseToken,
		Scopes:       []string{"publish_actions"},
		AccountID:    accountID,
	}
}

func TestBatchLikeFastPathSourceIP(t *testing.T) {
	// A homogeneous all-likes batch takes the native LikeBatch lowering;
	// per-op source_ip must survive it and land in the stored like's
	// attribution, falling back to the transport IP when absent.
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	other := f.graph.CreateAccount("fastpath-member", "IN", t0)
	resB, err := f.oauth.Authorize(authorizeReqFor(f, other.ID))
	if err != nil {
		t.Fatal(err)
	}
	batch := fmt.Sprintf(`[
		{"method":"POST","relative_url":"%s/likes","source_ip":"198.51.100.7"},
		{"method":"POST","relative_url":"%s/likes","body":"access_token=%s"}
	]`, f.post.ID, f.post.ID, resB.AccessToken)
	results := postBatch(t, srv.URL, tok, batch)
	for i, r := range results {
		if r.Code != http.StatusOK {
			t.Fatalf("op %d: %+v", i, r)
		}
	}
	likes := f.graph.Likes(f.post.ID)
	if len(likes) != 2 {
		t.Fatalf("likes = %d", len(likes))
	}
	if likes[0].SourceIP != "198.51.100.7" {
		t.Fatalf("per-op source_ip ignored: %q", likes[0].SourceIP)
	}
	if likes[1].SourceIP == "198.51.100.7" {
		t.Fatal("op without source_ip inherited a sibling's IP")
	}
}

func TestBatchLikesAcrossObjectsFallsBack(t *testing.T) {
	// All-POST-likes batches spanning different objects don't fit the
	// single-object LikeBatch lowering; they must still succeed via the
	// per-op replay path with identical results.
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	post2, err := f.graph.CreatePost(f.post.AuthorID, "other post", socialgraph.WriteMeta{At: t0})
	if err != nil {
		t.Fatal(err)
	}
	batch := fmt.Sprintf(`[
		{"method":"POST","relative_url":"%s/likes"},
		{"method":"POST","relative_url":"%s/likes"}
	]`, f.post.ID, post2.ID)
	results := postBatch(t, srv.URL, tok, batch)
	for i, r := range results {
		if r.Code != http.StatusOK {
			t.Fatalf("op %d: %+v", i, r)
		}
	}
	if f.graph.LikeCount(f.post.ID) != 1 || f.graph.LikeCount(post2.ID) != 1 {
		t.Fatal("cross-object batch lost a like")
	}
}
