package graphapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/apps"
)

func newHTTPFixture(t *testing.T) (*fixture, *httptest.Server) {
	t.Helper()
	f := newFixture(t)
	srv := httptest.NewServer(Handler(f.api))
	t.Cleanup(srv.Close)
	return f, srv
}

// noRedirect returns a client that surfaces 302s instead of following them,
// like a scraper inspecting the Location header.
func noRedirect() *http.Client {
	return &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func dialogURL(srv *httptest.Server, f *fixture, responseType string) string {
	q := url.Values{}
	q.Set("client_id", f.app.ID)
	q.Set("redirect_uri", f.app.RedirectURI)
	q.Set("response_type", responseType)
	q.Set("scope", apps.PermPublishActions)
	q.Set("account_id", f.user.ID)
	return srv.URL + "/dialog/oauth?" + q.Encode()
}

// tokenFromFragment extracts access_token from a redirect Location header.
func tokenFromFragment(t *testing.T, loc string) string {
	t.Helper()
	u, err := url.Parse(loc)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := url.ParseQuery(u.Fragment)
	if err != nil {
		t.Fatal(err)
	}
	tok := frag.Get("access_token")
	if tok == "" {
		t.Fatalf("no access_token in fragment of %q", loc)
	}
	return tok
}

func TestHTTPImplicitFlowLeaksTokenInFragment(t *testing.T) {
	f, srv := newHTTPFixture(t)
	resp, err := noRedirect().Get(dialogURL(srv, f, "token"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d, want 302", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	tok := tokenFromFragment(t, loc)
	// The leaked token is immediately usable — the heart of the attack.
	if _, err := f.oauth.Validate(tok); err != nil {
		t.Fatalf("leaked token invalid: %v", err)
	}
	u, _ := url.Parse(loc)
	frag, _ := url.ParseQuery(u.Fragment)
	if frag.Get("expires_in") == "" {
		t.Fatal("fragment missing expires_in")
	}
}

func TestHTTPCodeFlowExchange(t *testing.T) {
	f, srv := newHTTPFixture(t)
	resp, err := noRedirect().Get(dialogURL(srv, f, "code"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	loc, _ := url.Parse(resp.Header.Get("Location"))
	code := loc.Query().Get("code")
	if code == "" {
		t.Fatalf("no code in redirect %q", loc)
	}
	form := url.Values{}
	form.Set("client_id", f.app.ID)
	form.Set("client_secret", f.app.Secret)
	form.Set("redirect_uri", f.app.RedirectURI)
	form.Set("code", code)
	xresp, err := http.PostForm(srv.URL+"/oauth/access_token", form)
	if err != nil {
		t.Fatal(err)
	}
	defer xresp.Body.Close()
	var body struct {
		AccessToken string `json:"access_token"`
		TokenType   string `json:"token_type"`
		ExpiresIn   int64  `json:"expires_in"`
	}
	if err := json.NewDecoder(xresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.AccessToken == "" || body.TokenType != "bearer" || body.ExpiresIn <= 0 {
		t.Fatalf("exchange body = %+v", body)
	}
	if _, err := f.oauth.Validate(body.AccessToken); err != nil {
		t.Fatalf("exchanged token invalid: %v", err)
	}
}

func TestHTTPExchangeBadSecret(t *testing.T) {
	f, srv := newHTTPFixture(t)
	resp, err := noRedirect().Get(dialogURL(srv, f, "code"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	loc, _ := url.Parse(resp.Header.Get("Location"))
	form := url.Values{}
	form.Set("client_id", f.app.ID)
	form.Set("client_secret", "wrong")
	form.Set("redirect_uri", f.app.RedirectURI)
	form.Set("code", loc.Query().Get("code"))
	xresp, err := http.PostForm(srv.URL+"/oauth/access_token", form)
	if err != nil {
		t.Fatal(err)
	}
	defer xresp.Body.Close()
	if xresp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", xresp.StatusCode)
	}
}

func httpToken(t *testing.T, f *fixture, srv *httptest.Server) string {
	t.Helper()
	resp, err := noRedirect().Get(dialogURL(srv, f, "token"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return tokenFromFragment(t, resp.Header.Get("Location"))
}

func TestHTTPLikeAndReadBack(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)

	form := url.Values{"access_token": {tok}}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/"+f.post.ID+"/likes", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("X-Forwarded-For", "203.0.113.10")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("like status = %d body=%s", resp.StatusCode, b)
	}
	likes := f.graph.Likes(f.post.ID)
	if len(likes) != 1 || likes[0].SourceIP != "203.0.113.10" {
		t.Fatalf("likes = %+v", likes)
	}

	// Read the likes edge back.
	rresp, err := http.Get(srv.URL + "/" + f.post.ID + "/likes?access_token=" + tok)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var body struct {
		Data []struct {
			ID string `json:"id"`
		} `json:"data"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Data) != 1 || body.Data[0].ID != f.user.ID {
		t.Fatalf("likes read = %+v", body)
	}
}

func TestHTTPCommentsAndFeed(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)

	form := url.Values{"access_token": {tok}, "message": {"nice post bro"}}
	resp, err := http.PostForm(srv.URL+"/"+f.post.ID+"/comments", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("comment status = %d", resp.StatusCode)
	}

	rresp, err := http.Get(srv.URL + "/" + f.post.ID + "/comments?access_token=" + tok)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var cbody struct {
		Data []struct {
			Message string `json:"message"`
			From    string `json:"from"`
		} `json:"data"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&cbody); err != nil {
		t.Fatal(err)
	}
	if len(cbody.Data) != 1 || cbody.Data[0].Message != "nice post bro" {
		t.Fatalf("comments = %+v", cbody)
	}

	fresp, err := http.PostForm(srv.URL+"/me/feed", url.Values{"access_token": {tok}, "message": {"status"}})
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var fbody struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&fbody); err != nil {
		t.Fatal(err)
	}
	if fbody.ID == "" {
		t.Fatal("feed post returned no id")
	}
	if _, err := f.graph.Post(fbody.ID); err != nil {
		t.Fatalf("feed post not in store: %v", err)
	}
}

func TestHTTPMe(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	resp, err := http.Get(srv.URL + "/me?access_token=" + tok)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		ID      string `json:"id"`
		Name    string `json:"name"`
		Country string `json:"country"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ID != f.user.ID || body.Country != "IN" {
		t.Fatalf("me = %+v", body)
	}
}

func TestHTTPErrorEnvelope(t *testing.T) {
	_, srv := newHTTPFixture(t)
	resp, err := http.Get(srv.URL + "/me?access_token=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeInvalidToken || env.Error.Type != "OAuthException" {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestHTTPRateLimitStatus(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	f.api.Chain().Append(denyPolicy{name: "token-rate-limit", deny: func(Request) bool { return true }})
	resp, err := http.PostForm(srv.URL+"/"+f.post.ID+"/likes", url.Values{"access_token": {tok}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
}

func TestHTTPUnknownPaths(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)
	for _, path := range []string{"/a/b/c", "/" + f.post.ID + "/unknown-edge"} {
		resp, err := http.Get(srv.URL + path + "?access_token=" + tok)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHTTPDialogRejectsBadApp(t *testing.T) {
	f, srv := newHTTPFixture(t)
	q := url.Values{}
	q.Set("client_id", "ghost")
	q.Set("redirect_uri", f.app.RedirectURI)
	q.Set("response_type", "token")
	q.Set("account_id", f.user.ID)
	resp, err := noRedirect().Get(srv.URL + "/dialog/oauth?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPViewSourceWorkflowEndToEnd(t *testing.T) {
	// Reproduce the collusion network instruction sheet (Fig. 3): open the
	// dialog, stop at the redirect, copy the token out of the address bar,
	// then use it from a different IP via the Graph API.
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv) // "copied from the address bar"

	// Token replayed from the collusion network's delivery IP.
	form := url.Values{"access_token": {tok}}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/"+f.post.ID+"/likes", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("X-Forwarded-For", "203.0.113.200")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed like status = %d", resp.StatusCode)
	}
	likes := f.graph.Likes(f.post.ID)
	if len(likes) != 1 || likes[0].SourceIP != "203.0.113.200" {
		t.Fatalf("replayed like = %+v", likes)
	}

	// The oauth flow issuer (user) and replay IP differ — the platform
	// still attributes the like to the member account, as on Facebook.
	if likes[0].AccountID != f.user.ID {
		t.Fatalf("like account = %q, want %q", likes[0].AccountID, f.user.ID)
	}
}

// TestDebugTokenSecretMatchUnchanged pins debug_token's observable
// behaviour across the switch to constant-time secret comparison
// (secrets.Equal): the exact secret still passes, and every near-miss —
// empty, truncated, extended, or first-byte-flipped — is still rejected
// with the same 403 secret-mismatch error.
func TestDebugTokenSecretMatchUnchanged(t *testing.T) {
	f, srv := newHTTPFixture(t)
	tok := httpToken(t, f, srv)

	introspect := func(secret string) int {
		params := url.Values{
			"client_id":     {f.app.ID},
			"client_secret": {secret},
			"input_token":   {tok},
		}
		resp, err := http.Get(srv.URL + "/debug_token?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := introspect(f.app.Secret); got != http.StatusOK {
		t.Fatalf("correct secret: status = %d, want 200", got)
	}
	nearMisses := []string{
		"",
		f.app.Secret[:len(f.app.Secret)-1],
		f.app.Secret + "x",
		"X" + f.app.Secret[1:],
	}
	for _, bad := range nearMisses {
		if got := introspect(bad); got != http.StatusForbidden {
			t.Fatalf("near-miss secret %q: status = %d, want 403", bad, got)
		}
	}
}
