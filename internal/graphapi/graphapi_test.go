package graphapi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/netsim"
	"repro/internal/oauthsim"
	"repro/internal/provider"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

var t0 = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	clock *simclock.Simulated
	graph *socialgraph.Store
	oauth *oauthsim.Server
	reg   *apps.Registry
	net   *netsim.Internet
	api   *API
	app   apps.App
	user  socialgraph.Account
	post  socialgraph.Post
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		clock: simclock.NewSimulated(t0),
		graph: socialgraph.New(),
		reg:   apps.NewRegistry(),
		net:   netsim.NewInternet(),
	}
	if err := f.net.RegisterAS(netsim.AS{Number: 64500, Name: "BulletproofHost", Bulletproof: true}, "203.0.113.0/24"); err != nil {
		t.Fatal(err)
	}
	f.oauth = oauthsim.NewServer(f.clock, f.reg, f.graph)
	f.api = New(f.clock, f.graph, f.oauth, f.reg, f.net, NewChain())
	f.app = f.reg.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	f.user = f.graph.CreateAccount("member", "IN", t0)
	author := f.graph.CreateAccount("author", "IN", t0)
	var err error
	f.post, err = f.graph.CreatePost(author.ID, "look at my post", socialgraph.WriteMeta{At: t0})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) token(t *testing.T, scopes ...string) string {
	t.Helper()
	if scopes == nil {
		scopes = []string{apps.PermPublishActions}
	}
	res, err := f.oauth.Authorize(oauthsim.AuthorizeRequest{
		AppID:        f.app.ID,
		RedirectURI:  f.app.RedirectURI,
		ResponseType: oauthsim.ResponseToken,
		Scopes:       scopes,
		AccountID:    f.user.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.AccessToken
}

func TestLikeHappyPath(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t)
	ctx := CallContext{AccessToken: tok, SourceIP: "203.0.113.7"}
	if err := f.api.Like(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
	likes := f.graph.Likes(f.post.ID)
	if len(likes) != 1 {
		t.Fatalf("likes = %d", len(likes))
	}
	l := likes[0]
	if l.AccountID != f.user.ID || l.AppID != f.app.ID || l.SourceIP != "203.0.113.7" {
		t.Fatalf("like attribution = %+v", l)
	}
}

func TestLikeDuplicate(t *testing.T) {
	f := newFixture(t)
	ctx := CallContext{AccessToken: f.token(t)}
	if err := f.api.Like(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
	err := f.api.Like(ctx, f.post.ID)
	if ErrCode(err) != CodeDuplicate {
		t.Fatalf("duplicate like err = %v (code %d)", err, ErrCode(err))
	}
}

func TestLikeRequiresPublishActions(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, apps.PermPublicProfile)
	err := f.api.Like(CallContext{AccessToken: tok}, f.post.ID)
	if ErrCode(err) != CodePermission {
		t.Fatalf("err = %v (code %d), want permission error", err, ErrCode(err))
	}
}

func TestInvalidTokenRejected(t *testing.T) {
	f := newFixture(t)
	err := f.api.Like(CallContext{AccessToken: "bogus"}, f.post.ID)
	if ErrCode(err) != CodeInvalidToken {
		t.Fatalf("err = %v (code %d)", err, ErrCode(err))
	}
	tok := f.token(t)
	f.oauth.Invalidate(tok, "honeypot")
	err = f.api.Like(CallContext{AccessToken: tok}, f.post.ID)
	if ErrCode(err) != CodeInvalidToken {
		t.Fatalf("invalidated token err = %v (code %d)", err, ErrCode(err))
	}
}

func TestExpiredTokenRejected(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t)
	f.clock.Advance(61 * 24 * time.Hour)
	err := f.api.Like(CallContext{AccessToken: tok}, f.post.ID)
	if ErrCode(err) != CodeInvalidToken {
		t.Fatalf("expired token err = %v (code %d)", err, ErrCode(err))
	}
}

func TestSecretProofEnforcement(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t)
	if err := f.reg.SetSecuritySettings(f.app.ID, true, true); err != nil {
		t.Fatal(err)
	}
	err := f.api.Like(CallContext{AccessToken: tok}, f.post.ID)
	if ErrCode(err) != CodeSecretProof {
		t.Fatalf("missing proof err = %v (code %d)", err, ErrCode(err))
	}
	proof := oauthsim.SecretProof(f.app.Secret, tok)
	if err := f.api.Like(CallContext{AccessToken: tok, AppSecretProof: proof}, f.post.ID); err != nil {
		t.Fatalf("valid proof err = %v", err)
	}
}

func TestSuspendedAppRejected(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t)
	_ = f.reg.SetSuspended(f.app.ID, true)
	err := f.api.Like(CallContext{AccessToken: tok}, f.post.ID)
	if ErrCode(err) != CodeAppSuspended {
		t.Fatalf("err = %v (code %d)", err, ErrCode(err))
	}
}

func TestCommentAndPublish(t *testing.T) {
	f := newFixture(t)
	ctx := CallContext{AccessToken: f.token(t)}
	c, err := f.api.Comment(ctx, f.post.ID, "AW E S O M E")
	if err != nil {
		t.Fatal(err)
	}
	if c.Message != "AW E S O M E" {
		t.Fatalf("comment = %+v", c)
	}
	if _, err := f.api.Comment(ctx, "bogus", "x"); ErrCode(err) != CodeNotFound {
		t.Fatalf("comment on missing post code = %d", ErrCode(err))
	}
	if _, err := f.api.Comment(ctx, f.post.ID, ""); ErrCode(err) != CodeInvalidParam {
		t.Fatalf("empty comment code = %d", ErrCode(err))
	}
	p, err := f.api.Publish(ctx, "my status update")
	if err != nil {
		t.Fatal(err)
	}
	if p.AuthorID != f.user.ID {
		t.Fatalf("post author = %q", p.AuthorID)
	}
}

func TestMeAndReads(t *testing.T) {
	f := newFixture(t)
	ctx := CallContext{AccessToken: f.token(t)}
	acct, err := f.api.Me(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if acct.ID != f.user.ID {
		t.Fatalf("Me = %+v", acct)
	}
	if err := f.api.Like(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
	likes, err := f.api.Likes(ctx, f.post.ID)
	if err != nil || len(likes) != 1 {
		t.Fatalf("Likes = %v, %v", likes, err)
	}
	if _, err := f.api.Likes(CallContext{AccessToken: "bogus"}, f.post.ID); ErrCode(err) != CodeInvalidToken {
		t.Fatalf("read with bad token code = %d", ErrCode(err))
	}
}

// denyPolicy denies requests matching a predicate.
type denyPolicy struct {
	name string
	deny func(Request) bool
}

func (p denyPolicy) Name() string { return p.name }
func (p denyPolicy) Evaluate(r Request) Decision {
	if p.deny(r) {
		return Denied(p.name, "test denial")
	}
	return Allowed()
}

func TestPolicyChainDeniesWrites(t *testing.T) {
	f := newFixture(t)
	ctx := CallContext{AccessToken: f.token(t)}
	f.api.Chain().Append(denyPolicy{name: "token-rate-limit", deny: func(r Request) bool { return r.Verb == VerbLike }})
	err := f.api.Like(ctx, f.post.ID)
	if ErrCode(err) != CodeRateLimited {
		t.Fatalf("denied like code = %d, want %d", ErrCode(err), CodeRateLimited)
	}
	// Comments are unaffected by the like-only policy.
	if _, err := f.api.Comment(ctx, f.post.ID, "still works"); err != nil {
		t.Fatal(err)
	}
	den := f.api.Chain().Denials()
	if den["token-rate-limit"] != 1 {
		t.Fatalf("denials = %v", den)
	}
	if got := f.graph.LikeCount(f.post.ID); got != 0 {
		t.Fatalf("denied like reached the store: %d", got)
	}
}

func TestPolicyChainOrderAndRemove(t *testing.T) {
	c := NewChain()
	c.Append(denyPolicy{name: "first", deny: func(Request) bool { return true }})
	c.Append(denyPolicy{name: "second", deny: func(Request) bool { return true }})
	d := c.Evaluate(Request{})
	if d.Policy != "first" {
		t.Fatalf("first denier = %q", d.Policy)
	}
	if !c.Remove("first") {
		t.Fatal("Remove(first) = false")
	}
	if c.Remove("first") {
		t.Fatal("second Remove(first) = true")
	}
	d = c.Evaluate(Request{})
	if d.Policy != "second" {
		t.Fatalf("after removal denier = %q", d.Policy)
	}
	names := c.Names()
	if len(names) != 1 || names[0] != "second" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRequestCarriesASN(t *testing.T) {
	f := newFixture(t)
	var captured Request
	f.api.Chain().Append(denyPolicy{name: "capture", deny: func(r Request) bool {
		captured = r
		return false
	}})
	ctx := CallContext{AccessToken: f.token(t), SourceIP: "203.0.113.50"}
	if err := f.api.Like(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
	if captured.ASN != 64500 {
		t.Fatalf("captured ASN = %d, want 64500", captured.ASN)
	}
	if captured.SourceIP != "203.0.113.50" || !captured.At.Equal(t0) {
		t.Fatalf("captured = %+v", captured)
	}
}

func TestSuspendedAccountSurfacesAPIError(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t)
	_ = f.graph.SetSuspended(f.user.ID, true)
	err := f.api.Like(CallContext{AccessToken: tok}, f.post.ID)
	if ErrCode(err) != CodeAccountSuspended {
		t.Fatalf("suspended account code = %d", ErrCode(err))
	}
	if _, err := f.api.Publish(CallContext{AccessToken: tok}, "hi"); ErrCode(err) != CodeAccountSuspended {
		t.Fatalf("suspended publish code = %d", ErrCode(err))
	}
}

func TestAPIErrorFormatting(t *testing.T) {
	err := &APIError{Code: CodeRateLimited, Type: "PolicyException", Message: "limit 10", Kind: provider.KindRateLimited}
	want := "graphapi: (#613) PolicyException: limit 10"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
	if ErrCode(errors.New("plain")) != 0 {
		t.Fatal("ErrCode(plain) != 0")
	}
}

func TestManyAccountsLikeViaAPI(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 50; i++ {
		u := f.graph.CreateAccount(fmt.Sprintf("m%d", i), "IN", t0)
		res, err := f.oauth.Authorize(oauthsim.AuthorizeRequest{
			AppID:        f.app.ID,
			RedirectURI:  f.app.RedirectURI,
			ResponseType: oauthsim.ResponseToken,
			Scopes:       []string{apps.PermPublishActions},
			AccountID:    u.ID,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.api.Like(CallContext{AccessToken: res.AccessToken}, f.post.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.graph.LikeCount(f.post.ID); got != 50 {
		t.Fatalf("LikeCount = %d, want 50", got)
	}
}

func TestUnlike(t *testing.T) {
	f := newFixture(t)
	ctx := CallContext{AccessToken: f.token(t)}
	if err := f.api.Like(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
	if err := f.api.Unlike(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
	if got := f.graph.LikeCount(f.post.ID); got != 0 {
		t.Fatalf("LikeCount after unlike = %d", got)
	}
	// Unliking again: nothing to remove.
	if err := f.api.Unlike(ctx, f.post.ID); ErrCode(err) != CodeNotFound {
		t.Fatalf("double unlike code = %d", ErrCode(err))
	}
	// The account can like again afterwards.
	if err := f.api.Like(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
}

func TestUnlikePolicyChecked(t *testing.T) {
	f := newFixture(t)
	ctx := CallContext{AccessToken: f.token(t)}
	if err := f.api.Like(ctx, f.post.ID); err != nil {
		t.Fatal(err)
	}
	f.api.Chain().Append(denyPolicy{name: "blocker", deny: func(r Request) bool { return r.Verb == VerbLike }})
	if err := f.api.Unlike(ctx, f.post.ID); ErrCode(err) != CodeBlocked {
		t.Fatalf("policy-denied unlike code = %d", ErrCode(err))
	}
}
