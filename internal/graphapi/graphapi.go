// Package graphapi implements the platform's Graph API: the HTTP surface
// through which third-party applications act on behalf of users, and the
// request path every countermeasure of Section 6 hooks into.
//
// Each write request carries the full attribution tuple the paper's
// defenses key on — access token, account, application, source IP, and
// autonomous system — and is evaluated against an ordered chain of Policy
// values before it reaches the social graph. The package exposes both a
// net/http server (used by examples, the scanner, and integration tests)
// and a direct in-process API with identical semantics (used by the
// large-scale experiments).
package graphapi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/netsim"
	"repro/internal/oauthsim"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Verb labels the operation a request performs.
type Verb string

// Request verbs.
const (
	VerbLike    Verb = "like"
	VerbComment Verb = "comment"
	VerbPost    Verb = "post"
	VerbRead    Verb = "read"
)

// Request is the normalized form of one Graph API call, as seen by the
// policy chain.
type Request struct {
	Verb     Verb
	ObjectID string
	Message  string // comment/post body
	Token    oauthsim.TokenInfo
	App      apps.App
	SourceIP string
	ASN      netsim.ASN // 0 when the source IP maps to no registered AS
	At       time.Time
}

// Decision is a policy verdict.
type Decision struct {
	Allow  bool
	Policy string // name of the policy that denied (empty on allow)
	Reason string
}

// Allowed is the unanimous-allow decision.
func Allowed() Decision { return Decision{Allow: true} }

// Denied constructs a denial attributed to a policy.
func Denied(policy, reason string) Decision {
	return Decision{Allow: false, Policy: policy, Reason: reason}
}

// Policy inspects a request and may deny it. Policies must be safe for
// concurrent use. Evaluate is called for write verbs only.
type Policy interface {
	Name() string
	Evaluate(Request) Decision
}

// Chain is an ordered, hot-swappable set of policies. The paper deployed
// countermeasures incrementally over the Figure 5 timeline; Chain.Append
// models exactly that.
type Chain struct {
	mu       sync.RWMutex
	policies []Policy
	denials  map[string]int64
}

// NewChain returns an empty chain (allows everything).
func NewChain() *Chain {
	return &Chain{denials: make(map[string]int64)}
}

// Append adds a policy at the end of the chain.
func (c *Chain) Append(p Policy) {
	c.mu.Lock()
	c.policies = append(c.policies, p)
	c.mu.Unlock()
}

// Remove drops the first policy with the given name; it reports whether
// one was removed.
func (c *Chain) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.policies {
		if p.Name() == name {
			c.policies = append(c.policies[:i:i], c.policies[i+1:]...)
			return true
		}
	}
	return false
}

// Evaluate runs the request through every policy in order, stopping at the
// first denial.
func (c *Chain) Evaluate(req Request) Decision {
	c.mu.RLock()
	policies := c.policies
	c.mu.RUnlock()
	for _, p := range policies {
		if d := p.Evaluate(req); !d.Allow {
			c.mu.Lock()
			c.denials[d.Policy]++
			c.mu.Unlock()
			return d
		}
	}
	return Allowed()
}

// Denials returns a copy of the per-policy denial counters.
func (c *Chain) Denials() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.denials))
	for k, v := range c.denials {
		out[k] = v
	}
	return out
}

// Names lists the active policies in evaluation order.
func (c *Chain) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.policies))
	for i, p := range c.policies {
		out[i] = p.Name()
	}
	return out
}

// Error codes returned by the API, mirroring the Graph API's numeric error
// space closely enough for clients to dispatch on.
const (
	CodeInvalidToken     = 190 // OAuthException: token missing/expired/invalidated
	CodeSecretProof      = 104 // appsecret_proof failure
	CodePermission       = 200 // missing permission scope
	CodeRateLimited      = 613 // application/token request limit reached
	CodeBlocked          = 368 // policy block (temporarily blocked for abuse)
	CodeNotFound         = 803 // unknown object
	CodeDuplicate        = 520 // duplicate action (already liked)
	CodeInvalidParam     = 100 // invalid parameter
	CodeAppSuspended     = 191 // application disabled
	CodeAccountSuspended = 459 // account checkpointed/suspended
)

// APIError is the structured error returned by Graph API operations.
type APIError struct {
	Code    int
	Type    string
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("graphapi: (#%d) %s: %s", e.Code, e.Type, e.Message)
}

// ErrCode extracts the API error code from err, or 0.
func ErrCode(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return 0
}

func apiErr(code int, typ, format string, args ...any) error {
	return &APIError{Code: code, Type: typ, Message: fmt.Sprintf(format, args...)}
}

// API is the in-process Graph API. All transports (HTTP and direct calls)
// funnel into its methods, so policies and attribution behave identically.
type API struct {
	clock    simclock.Clock
	graph    *socialgraph.Store
	oauth    *oauthsim.Server
	registry *apps.Registry
	internet *netsim.Internet
	chain    *Chain
}

// New wires an API over its substrates. internet may be nil, in which case
// ASN resolution is skipped.
func New(clock simclock.Clock, graph *socialgraph.Store, oauth *oauthsim.Server, registry *apps.Registry, internet *netsim.Internet, chain *Chain) *API {
	if chain == nil {
		chain = NewChain()
	}
	return &API{
		clock:    clock,
		graph:    graph,
		oauth:    oauth,
		registry: registry,
		internet: internet,
		chain:    chain,
	}
}

// Chain returns the policy chain, for countermeasure deployment.
func (a *API) Chain() *Chain { return a.chain }

// Graph returns the underlying social graph store.
func (a *API) Graph() *socialgraph.Store { return a.graph }

// OAuth returns the underlying authorization server.
func (a *API) OAuth() *oauthsim.Server { return a.oauth }

// Registry returns the application registry.
func (a *API) Registry() *apps.Registry { return a.registry }

// CallContext carries per-call transport attributes.
type CallContext struct {
	AccessToken    string
	AppSecretProof string
	SourceIP       string
}

// authenticate validates the bearer token and security settings, and
// builds the policy request skeleton.
func (a *API) authenticate(ctx CallContext, verb Verb, needScope string) (Request, error) {
	info, err := a.oauth.Validate(ctx.AccessToken)
	if err != nil {
		return Request{}, apiErr(CodeInvalidToken, "OAuthException", "%v", err)
	}
	app, err := a.registry.Get(info.AppID)
	if err != nil {
		return Request{}, apiErr(CodeInvalidToken, "OAuthException", "application not found")
	}
	if app.Suspended {
		return Request{}, apiErr(CodeAppSuspended, "OAuthException", "application %s is disabled", app.ID)
	}
	if err := a.oauth.VerifySecretProof(info, ctx.AppSecretProof); err != nil {
		return Request{}, apiErr(CodeSecretProof, "GraphMethodException", "%v", err)
	}
	if needScope != "" && !info.HasScope(needScope) {
		return Request{}, apiErr(CodePermission, "OAuthException", "requires %s permission", needScope)
	}
	req := Request{
		Verb:     verb,
		Token:    info,
		App:      app,
		SourceIP: ctx.SourceIP,
		At:       a.clock.Now(),
	}
	if a.internet != nil && ctx.SourceIP != "" {
		if as, ok := a.internet.LookupASString(ctx.SourceIP); ok {
			req.ASN = as.Number
		}
	}
	return req, nil
}

// Me returns the public profile of the token's account.
func (a *API) Me(ctx CallContext) (socialgraph.Account, error) {
	req, err := a.authenticate(ctx, VerbRead, "")
	if err != nil {
		return socialgraph.Account{}, err
	}
	acct, err := a.graph.Account(req.Token.AccountID)
	if err != nil {
		return socialgraph.Account{}, apiErr(CodeNotFound, "GraphMethodException", "account missing")
	}
	return acct, nil
}

// Like publishes a like on objectID on behalf of the token's account.
func (a *API) Like(ctx CallContext, objectID string) error {
	req, err := a.authenticate(ctx, VerbLike, apps.PermPublishActions)
	if err != nil {
		return err
	}
	req.ObjectID = objectID
	if d := a.chain.Evaluate(req); !d.Allow {
		return a.denialError(d)
	}
	meta := socialgraph.WriteMeta{AppID: req.App.ID, SourceIP: ctx.SourceIP, At: req.At}
	switch err := a.graph.AddLike(req.Token.AccountID, objectID, meta); {
	case err == nil:
		return nil
	case errors.Is(err, socialgraph.ErrAlreadyLiked):
		return apiErr(CodeDuplicate, "GraphMethodException", "duplicate like")
	case errors.Is(err, socialgraph.ErrSuspended):
		return apiErr(CodeAccountSuspended, "OAuthException", "account suspended")
	case errors.Is(err, socialgraph.ErrInvalidReference), errors.Is(err, socialgraph.ErrNotFound):
		return apiErr(CodeNotFound, "GraphMethodException", "unknown object %s", objectID)
	default:
		return apiErr(CodeInvalidParam, "GraphMethodException", "%v", err)
	}
}

// Unlike removes the token account's like from an object — the write
// Facebook exposes as DELETE /{object}/likes. It is policy-checked like
// any other write.
func (a *API) Unlike(ctx CallContext, objectID string) error {
	req, err := a.authenticate(ctx, VerbLike, apps.PermPublishActions)
	if err != nil {
		return err
	}
	req.ObjectID = objectID
	if d := a.chain.Evaluate(req); !d.Allow {
		return a.denialError(d)
	}
	switch err := a.graph.RemoveLike(req.Token.AccountID, objectID); {
	case err == nil:
		return nil
	case errors.Is(err, socialgraph.ErrNotLiked):
		return apiErr(CodeNotFound, "GraphMethodException", "no like to remove")
	default:
		return apiErr(CodeInvalidParam, "GraphMethodException", "%v", err)
	}
}

// Comment publishes a comment on a post on behalf of the token's account.
func (a *API) Comment(ctx CallContext, postID, message string) (socialgraph.Comment, error) {
	req, err := a.authenticate(ctx, VerbComment, apps.PermPublishActions)
	if err != nil {
		return socialgraph.Comment{}, err
	}
	req.ObjectID = postID
	req.Message = message
	if d := a.chain.Evaluate(req); !d.Allow {
		return socialgraph.Comment{}, a.denialError(d)
	}
	meta := socialgraph.WriteMeta{AppID: req.App.ID, SourceIP: ctx.SourceIP, At: req.At}
	c, err := a.graph.AddComment(req.Token.AccountID, postID, message, meta)
	switch {
	case err == nil:
		return c, nil
	case errors.Is(err, socialgraph.ErrSuspended):
		return socialgraph.Comment{}, apiErr(CodeAccountSuspended, "OAuthException", "account suspended")
	case errors.Is(err, socialgraph.ErrNotFound):
		return socialgraph.Comment{}, apiErr(CodeNotFound, "GraphMethodException", "unknown post %s", postID)
	case errors.Is(err, socialgraph.ErrEmptyMessage):
		return socialgraph.Comment{}, apiErr(CodeInvalidParam, "GraphMethodException", "empty message")
	default:
		return socialgraph.Comment{}, apiErr(CodeInvalidParam, "GraphMethodException", "%v", err)
	}
}

// Publish creates a status update on the token account's timeline.
func (a *API) Publish(ctx CallContext, message string) (socialgraph.Post, error) {
	req, err := a.authenticate(ctx, VerbPost, apps.PermPublishActions)
	if err != nil {
		return socialgraph.Post{}, err
	}
	req.Message = message
	if d := a.chain.Evaluate(req); !d.Allow {
		return socialgraph.Post{}, a.denialError(d)
	}
	meta := socialgraph.WriteMeta{AppID: req.App.ID, SourceIP: ctx.SourceIP, At: req.At}
	p, err := a.graph.CreatePost(req.Token.AccountID, message, meta)
	switch {
	case err == nil:
		return p, nil
	case errors.Is(err, socialgraph.ErrSuspended):
		return socialgraph.Post{}, apiErr(CodeAccountSuspended, "OAuthException", "account suspended")
	case errors.Is(err, socialgraph.ErrEmptyMessage):
		return socialgraph.Post{}, apiErr(CodeInvalidParam, "GraphMethodException", "empty message")
	default:
		return socialgraph.Post{}, apiErr(CodeInvalidParam, "GraphMethodException", "%v", err)
	}
}

// Feed lists the token account's own posts in creation order — the read
// that premium auto-delivery services poll to discover fresh posts to
// like without the member logging in (Sec. 5.1).
func (a *API) Feed(ctx CallContext) ([]socialgraph.Post, error) {
	req, err := a.authenticate(ctx, VerbRead, "")
	if err != nil {
		return nil, err
	}
	return a.graph.PostsByAuthor(req.Token.AccountID), nil
}

// Friends lists the token account's friends. It requires the
// user_friends permission — the scope whose leakage turns token abuse
// into social-graph harvesting (Sec. 8).
func (a *API) Friends(ctx CallContext) ([]socialgraph.Account, error) {
	req, err := a.authenticate(ctx, VerbRead, apps.PermUserFriends)
	if err != nil {
		return nil, err
	}
	ids := a.graph.Friends(req.Token.AccountID)
	out := make([]socialgraph.Account, 0, len(ids))
	for _, id := range ids {
		if acct, err := a.graph.Account(id); err == nil {
			out = append(out, acct)
		}
	}
	return out, nil
}

// Likes lists the likes on an object (a public read).
func (a *API) Likes(ctx CallContext, objectID string) ([]socialgraph.Like, error) {
	if _, err := a.authenticate(ctx, VerbRead, ""); err != nil {
		return nil, err
	}
	return a.graph.Likes(objectID), nil
}

// Comments lists the comments on a post (a public read).
func (a *API) Comments(ctx CallContext, postID string) ([]socialgraph.Comment, error) {
	if _, err := a.authenticate(ctx, VerbRead, ""); err != nil {
		return nil, err
	}
	return a.graph.Comments(postID), nil
}

func (a *API) denialError(d Decision) error {
	code := CodeBlocked
	if d.Policy == "token-rate-limit" || d.Policy == "ip-rate-limit" {
		code = CodeRateLimited
	}
	return apiErr(code, "PolicyException", "denied by %s: %s", d.Policy, d.Reason)
}
