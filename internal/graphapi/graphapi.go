// Package graphapi implements the platform's Graph API: the HTTP surface
// through which third-party applications act on behalf of users, and the
// request path every countermeasure of Section 6 hooks into.
//
// Each write request carries the full attribution tuple the paper's
// defenses key on — access token, account, application, source IP, and
// autonomous system — and is evaluated against an ordered chain of Policy
// values before it reaches the social graph. The package exposes both a
// net/http server (used by examples, the scanner, and integration tests)
// and a direct in-process API with identical semantics (used by the
// large-scale experiments).
package graphapi

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/netsim"
	"repro/internal/oauthsim"
	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/redact"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Verb labels the operation a request performs.
type Verb string

// Request verbs.
const (
	VerbLike    Verb = "like"
	VerbComment Verb = "comment"
	VerbPost    Verb = "post"
	VerbRead    Verb = "read"
)

// Request is the normalized form of one Graph API call, as seen by the
// policy chain.
type Request struct {
	Verb     Verb
	ObjectID string
	Message  string // comment/post body
	Token    oauthsim.TokenInfo
	App      apps.App
	SourceIP string
	ASN      netsim.ASN // 0 when the source IP maps to no registered AS
	At       time.Time
}

// Decision is a policy verdict.
type Decision struct {
	Allow  bool
	Policy string // name of the policy that denied (empty on allow)
	Reason string
}

// Allowed is the unanimous-allow decision.
func Allowed() Decision { return Decision{Allow: true} }

// Denied constructs a denial attributed to a policy.
func Denied(policy, reason string) Decision {
	return Decision{Allow: false, Policy: policy, Reason: reason}
}

// Policy inspects a request and may deny it. Policies must be safe for
// concurrent use. Evaluate is called for write verbs only.
type Policy interface {
	Name() string
	Evaluate(Request) Decision
}

// Chain is an ordered, hot-swappable set of policies. The paper deployed
// countermeasures incrementally over the Figure 5 timeline; Chain.Append
// models exactly that.
type Chain struct {
	mu       sync.RWMutex
	policies []Policy
	denials  map[string]int64
}

// NewChain returns an empty chain (allows everything).
func NewChain() *Chain {
	return &Chain{denials: make(map[string]int64)}
}

// Append adds a policy at the end of the chain.
func (c *Chain) Append(p Policy) {
	c.mu.Lock()
	c.policies = append(c.policies, p)
	c.mu.Unlock()
}

// Remove drops the first policy with the given name; it reports whether
// one was removed.
func (c *Chain) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.policies {
		if p.Name() == name {
			c.policies = append(c.policies[:i:i], c.policies[i+1:]...)
			return true
		}
	}
	return false
}

// Evaluate runs the request through every policy in order, stopping at the
// first denial.
func (c *Chain) Evaluate(req Request) Decision {
	c.mu.RLock()
	policies := c.policies
	c.mu.RUnlock()
	for _, p := range policies {
		if d := p.Evaluate(req); !d.Allow {
			c.mu.Lock()
			c.denials[d.Policy]++
			c.mu.Unlock()
			return d
		}
	}
	return Allowed()
}

// Denials returns a copy of the per-policy denial counters.
func (c *Chain) Denials() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.denials))
	for k, v := range c.denials {
		out[k] = v
	}
	return out
}

// Names lists the active policies in evaluation order.
func (c *Chain) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.policies))
	for i, p := range c.policies {
		out[i] = p.Name()
	}
	return out
}

// Error codes of the DEFAULT provider's numeric space, kept as named
// constants because a decade of client code (and this repo's experiments)
// dispatches on them. Non-default providers map the same canonical kinds
// (provider.ErrKind) into their own numeric spaces; portable code should
// dispatch on ErrKindOf, not ErrCode.
const (
	CodeInvalidToken     = 190 // OAuthException: token missing/expired/invalidated
	CodeSecretProof      = 104 // appsecret_proof failure
	CodePermission       = 200 // missing permission scope
	CodeRateLimited      = 613 // application/token request limit reached
	CodeBlocked          = 368 // policy block (temporarily blocked for abuse)
	CodeNotFound         = 803 // unknown object
	CodeDuplicate        = 520 // duplicate action (already liked)
	CodeInvalidParam     = 100 // invalid parameter
	CodeAppSuspended     = 191 // application disabled
	CodeAccountSuspended = 459 // account checkpointed/suspended
)

// APIError is the structured error returned by Graph API operations.
// Code and Type are in the issuing provider's vocabulary; Kind is the
// provider-neutral classification.
type APIError struct {
	Code    int
	Type    string
	Message string
	Kind    provider.ErrKind
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("graphapi: (#%d) %s: %s", e.Code, e.Type, e.Message)
}

// ErrCode extracts the provider-specific API error code from err, or 0.
func ErrCode(err error) int {
	if ae, ok := err.(*APIError); ok {
		return ae.Code
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return 0
}

// ErrKindOf extracts the canonical error kind from err, or KindNone.
// Cross-provider code (the collusion delivery engine) dispatches on this
// so one engine understands every platform's error space.
func ErrKindOf(err error) provider.ErrKind {
	// Direct assertion first: API errors are returned unwrapped, and
	// errors.As heap-allocates its target — this runs once per failed op
	// on the delivery path.
	if ae, ok := err.(*APIError); ok {
		return ae.Kind
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Kind
	}
	return provider.KindNone
}

// err builds an APIError in the API's provider vocabulary: the canonical
// kind is mapped to the provider's numeric code, and typ (the canonical
// type label) is passed through ErrorType so providers with their own
// vocabulary can rename it. The default provider maps both identically,
// which keeps its wire behavior bit-for-bit what it always was.
func (a *API) err(k provider.ErrKind, typ, format string, args ...any) error {
	return a.errMsg(k, typ, fmt.Sprintf(format, args...))
}

// errMsg is err with a ready-made message: no Sprintf, so error paths
// whose message is constant (or already formatted, like the oauth
// server's preformatted invalidation errors) skip the formatter.
func (a *API) errMsg(k provider.ErrKind, typ, msg string) error {
	return &APIError{
		Code:    a.prov.ErrorCode(k),
		Type:    a.prov.ErrorType(k, typ),
		Message: msg,
		Kind:    k,
	}
}

// API is the in-process Graph API. All transports (HTTP and direct calls)
// funnel into its methods, so policies and attribution behave identically.
type API struct {
	clock    simclock.Clock
	graph    *socialgraph.Store
	oauth    *oauthsim.Server
	registry *apps.Registry
	internet *netsim.Internet
	chain    *Chain

	// Platform identity: error vocabulary, scope names, batch cap, and
	// the value of the platform metric label / provider span attribute.
	prov         provider.Provider
	provName     string
	scopePublish string
	scopeFriends string

	// Telemetry, wired by SetObserver. All fields are nil-safe no-ops
	// until then, so uninstrumented construction keeps working.
	obs            *obs.Observer
	reqCount       *obs.CounterVec   // graphapi_requests_total{platform,op,code}
	reqLatency     *obs.HistogramVec // graphapi_request_seconds{platform,op}
	defenseActions *obs.CounterVec   // defense_actions_total{countermeasure,action}
	allocs         *obs.AllocMeter   // allocs_per_op{platform,op} windows on the hot paths
	opInst         [numOps]opInstruments

	// Preallocated denial errors in this provider's vocabulary, built
	// once at construction: duplicate likes and suspended accounts are
	// the denials collusion traffic hits by the thousand, and policy
	// denials are interned per (policy, reason) — with the rate limiters'
	// preformatted reasons the cache stays a handful of entries, and the
	// cap guards against a pathological high-cardinality custom policy.
	errDuplicate   error
	errSuspended   error
	errAppNotFound error
	denialMu       sync.RWMutex
	denialCache    map[denialKey]error
}

// denialKey interns one policy denial shape.
type denialKey struct{ policy, reason string }

// maxCachedDenials bounds the denial-error intern table.
const maxCachedDenials = 256

// opInstruments prebinds the success-path series for one operation so
// finish skips the per-call label lookup (a mutex plus a map probe) on
// the milking hot path. Error codes take the slow path — they are rare.
type opInstruments struct {
	ok      *obs.BoundCounter
	latency *obs.BoundHistogram
}

// Operation indices. begin and finish key instruments and span names by
// these rather than by the op's label string: on the milking hot path an
// array index replaces two string-map probes (and their hashing) per call.
const (
	opMe = iota
	opLike
	opUnlike
	opComment
	opPublish
	opFeed
	opFriends
	opLikes
	opComments
	numOps
)

// opNames maps each operation index to its metric label value.
var opNames = [numOps]string{"me", "like", "unlike", "comment", "publish", "feed", "friends", "likes", "comments"}

// spanNames maps each operation index to its span name, precomputed so
// begin does not concatenate (and so allocate) per call.
var spanNames = func() (n [numOps]string) {
	for i, op := range opNames {
		n[i] = "graphapi." + op
	}
	return
}()

// New wires an API for the default provider over its substrates.
// internet may be nil, in which case ASN resolution is skipped.
func New(clock simclock.Clock, graph *socialgraph.Store, oauth *oauthsim.Server, registry *apps.Registry, internet *netsim.Internet, chain *Chain) *API {
	return NewFor(provider.Default(), clock, graph, oauth, registry, internet, chain)
}

// NewFor wires an API speaking the given provider's dialect: its error
// vocabulary, scope names, and batch cap. The provider should match the
// one the oauth server was built for — tokens minted in one format will
// not validate against another.
func NewFor(prov provider.Provider, clock simclock.Clock, graph *socialgraph.Store, oauth *oauthsim.Server, registry *apps.Registry, internet *netsim.Internet, chain *Chain) *API {
	if chain == nil {
		chain = NewChain()
	}
	a := &API{
		clock:        clock,
		graph:        graph,
		oauth:        oauth,
		registry:     registry,
		internet:     internet,
		chain:        chain,
		prov:         prov,
		provName:     prov.Name(),
		scopePublish: prov.ScopePublish(),
		scopeFriends: prov.ScopeFriends(),
		denialCache:  make(map[denialKey]error),
	}
	a.errDuplicate = a.errMsg(provider.KindDuplicate, "GraphMethodException", "duplicate like")
	a.errSuspended = a.errMsg(provider.KindAccountSuspended, "OAuthException", "account suspended")
	a.errAppNotFound = a.errMsg(provider.KindInvalidToken, "OAuthException", "application not found")
	return a
}

// Provider returns the platform identity this API speaks for.
func (a *API) Provider() provider.Provider { return a.prov }

// SetObserver wires telemetry into the API: a span tree per request
// (graphapi.<op> → oauth.validate / defense.chain / shard.apply), request
// counters by op and error code, and per-op latency histograms. Policy
// denials also land in defense_actions_total so the countermeasure
// timeline (Figure 5) is reconstructable from /metrics alone.
func (a *API) SetObserver(o *obs.Observer) {
	a.obs = o
	a.reqCount = o.M().Counter("graphapi_requests_total",
		"Graph API calls, by platform, operation, and numeric error code (0 = success).",
		"platform", "op", "code")
	a.reqLatency = o.M().Histogram("graphapi_request_seconds",
		"Graph API call latency in seconds, by platform and operation.",
		nil, "platform", "op")
	a.defenseActions = o.M().Counter("defense_actions_total",
		"Defense actions taken, by countermeasure and action.",
		"countermeasure", "action")
	a.allocs = o.A()
	for op, name := range opNames {
		a.opInst[op] = opInstruments{
			ok:      a.reqCount.With(a.provName, name, "0"),
			latency: a.reqLatency.With(a.provName, name),
		}
	}
}

// Observer returns the API's observer (nil until SetObserver).
func (a *API) Observer() *obs.Observer { return a.obs }

// begin opens the root span for one API call, reading the clock once. The
// returned context carries the span for the children authenticate,
// evaluate, and applyShard open.
func (a *API) begin(ctx context.Context, op int) (context.Context, *obs.Span, time.Time) {
	now := a.clock.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := a.obs.T().StartSpanAt(ctx, spanNames[op], now)
	return ctx, span, now
}

// finish closes the root span and records the request counter and latency
// sample. code 0 means success.
func (a *API) finish(span *obs.Span, op int, start time.Time, err error) {
	if a.obs == nil {
		return
	}
	end := a.clock.Now()
	if err == nil {
		inst := a.opInst[op]
		if span != nil {
			// Both fixed attrs land in one append: the root span's attrs
			// slice is allocated exactly once per call.
			span.SetAttr2("provider", a.provName, "code", "0")
			span.EndAt(end)
		}
		inst.ok.Inc()
		inst.latency.Observe(end.Sub(start).Seconds())
		return
	}
	code := strconv.Itoa(ErrCode(err))
	span.SetAttr2("provider", a.provName, "code", code)
	span.EndAt(end)
	a.reqCount.Inc(a.provName, opNames[op], code)
	// The latency family's labels do not include the code, so the
	// success-path bound histogram serves denials and errors too — rate
	// limiting makes denials hot (every over-quota call lands here).
	a.opInst[op].latency.Observe(end.Sub(start).Seconds())
}

// evaluate runs the policy chain under a defense.chain span and counts
// denials as defense actions. req is a pointer purely to spare the hot
// path a second ~130-byte Request copy; evaluate does not mutate it.
func (a *API) evaluate(ctx context.Context, req *Request) Decision {
	_, span := a.obs.T().StartSpanAt(ctx, "defense.chain", req.At)
	as := a.allocs.Begin(ctx, "defense.chain")
	d := a.chain.Evaluate(*req)
	as.End(1)
	if !d.Allow {
		span.SetAttr("policy", d.Policy)
		span.Event("deny", "reason", d.Reason)
		a.defenseActions.Inc(d.Policy, "deny")
	}
	span.EndAt(req.At)
	return d
}

// applyShard runs a social-graph write under a shard.apply span labelled
// with the stripe the written object routes to.
func (a *API) applyShard(ctx context.Context, at time.Time, objectID string, write func() error) error {
	_, span := a.obs.T().StartSpanAt(ctx, "shard.apply", at)
	if span != nil {
		span.SetAttr("shard", strconv.Itoa(a.graph.ShardIndexOf(objectID)))
	}
	as := a.allocs.Begin(ctx, "shard.apply")
	err := write()
	as.End(1)
	span.EndAt(at)
	return err
}

// Chain returns the policy chain, for countermeasure deployment.
func (a *API) Chain() *Chain { return a.chain }

// Graph returns the underlying social graph store.
func (a *API) Graph() *socialgraph.Store { return a.graph }

// OAuth returns the underlying authorization server.
func (a *API) OAuth() *oauthsim.Server { return a.oauth }

// Registry returns the application registry.
func (a *API) Registry() *apps.Registry { return a.registry }

// CallContext carries per-call transport attributes. Ctx, when set,
// carries the caller's trace span so the request joins an existing trace;
// nil means a fresh trace (context.Background()).
type CallContext struct {
	Ctx            context.Context
	AccessToken    string
	AppSecretProof string
	SourceIP       string
}

// authenticate validates the bearer token and security settings, and
// builds the policy request skeleton. at is the request timestamp the
// caller already read from the clock.
func (a *API) authenticate(ctx context.Context, c CallContext, verb Verb, needScope string, at time.Time) (Request, error) {
	return a.authenticateMemo(ctx, c, verb, needScope, at, nil)
}

// authenticateMemo is authenticate with an optional batch-scoped lookup
// cache (nil for single calls). Token validation, the secret proof, and
// the scope check are always per call; only the registry read and the
// source-IP→AS resolution — reads whose result is identical for every
// op sharing an app or IP — go through the memo.
func (a *API) authenticateMemo(ctx context.Context, c CallContext, verb Verb, needScope string, at time.Time, memo *batchMemo) (Request, error) {
	_, span := a.obs.T().StartSpanAt(ctx, "oauth.validate", at)
	defer span.EndAt(at)
	info, err := a.oauth.Validate(c.AccessToken)
	if err != nil {
		span.Event("invalid-token")
		// The oauth server's denial errors are preformatted (sentinels or
		// per-token invalidation values), so Error() here is a field read.
		return Request{}, a.errMsg(provider.KindInvalidToken, "OAuthException", err.Error())
	}
	if span != nil {
		span.SetAttr("app", info.AppID)
		span.SetAttr("token", redact.Token(c.AccessToken))
	}
	var app apps.App
	if memo != nil {
		app, err = memo.app(a.registry, info.AppID)
	} else {
		app, err = a.registry.Get(info.AppID)
	}
	if err != nil {
		return Request{}, a.errAppNotFound
	}
	if app.Suspended {
		return Request{}, a.err(provider.KindAppSuspended, "OAuthException", "application %s is disabled", app.ID)
	}
	if err := a.oauth.VerifySecretProof(info, c.AppSecretProof); err != nil {
		return Request{}, a.err(provider.KindSecretProof, "GraphMethodException", "%v", err)
	}
	if needScope != "" && !info.HasScope(needScope) {
		return Request{}, a.err(provider.KindPermission, "OAuthException", "requires %s permission", needScope)
	}
	req := Request{
		Verb:     verb,
		Token:    info,
		App:      app,
		SourceIP: c.SourceIP,
		At:       at,
	}
	if a.internet != nil && c.SourceIP != "" {
		if memo != nil {
			if asn, ok := memo.asn(a.internet, c.SourceIP); ok {
				req.ASN = asn
			}
		} else if as, ok := a.internet.LookupASString(c.SourceIP); ok {
			req.ASN = as.Number
		}
	}
	return req, nil
}

// Me returns the public profile of the token's account.
func (a *API) Me(c CallContext) (_ socialgraph.Account, err error) {
	ctx, span, start := a.begin(c.Ctx, opMe)
	defer func() { a.finish(span, opMe, start, err) }()
	req, err := a.authenticate(ctx, c, VerbRead, "", start)
	if err != nil {
		return socialgraph.Account{}, err
	}
	acct, err := a.graph.Account(req.Token.AccountID)
	if err != nil {
		return socialgraph.Account{}, a.err(provider.KindNotFound, "GraphMethodException", "account missing")
	}
	return acct, nil
}

// Like publishes a like on objectID on behalf of the token's account.
func (a *API) Like(c CallContext, objectID string) (err error) {
	ctx, span, start := a.begin(c.Ctx, opLike)
	defer func() { a.finish(span, opLike, start, err) }()
	span.SetAttr("object", objectID)
	req, err := a.authenticate(ctx, c, VerbLike, a.scopePublish, start)
	if err != nil {
		return err
	}
	req.ObjectID = objectID
	if d := a.evaluate(ctx, &req); !d.Allow {
		return a.denialError(d)
	}
	meta := socialgraph.WriteMeta{AppID: req.App.ID, SourceIP: c.SourceIP, At: req.At}
	writeErr := a.applyShard(ctx, req.At, objectID, func() error {
		return a.graph.AddLike(req.Token.AccountID, objectID, meta)
	})
	return a.likeWriteError(writeErr, objectID)
}

// likeWriteError maps a store-level like error to its Graph API error.
// Like and LikeBatch share this mapping so batched and sequential likes
// surface identical codes.
func (a *API) likeWriteError(writeErr error, objectID string) error {
	switch {
	case writeErr == nil:
		return nil
	case errors.Is(writeErr, socialgraph.ErrAlreadyLiked):
		return a.errDuplicate
	case errors.Is(writeErr, socialgraph.ErrSuspended):
		return a.errSuspended
	case errors.Is(writeErr, socialgraph.ErrInvalidReference), errors.Is(writeErr, socialgraph.ErrNotFound):
		return a.errMsg(provider.KindNotFound, "GraphMethodException", "unknown object "+objectID)
	default:
		return a.err(provider.KindInvalidParam, "GraphMethodException", "%v", writeErr)
	}
}

// Unlike removes the token account's like from an object — the write
// Facebook exposes as DELETE /{object}/likes. It is policy-checked like
// any other write.
func (a *API) Unlike(c CallContext, objectID string) (err error) {
	ctx, span, start := a.begin(c.Ctx, opUnlike)
	defer func() { a.finish(span, opUnlike, start, err) }()
	req, err := a.authenticate(ctx, c, VerbLike, a.scopePublish, start)
	if err != nil {
		return err
	}
	req.ObjectID = objectID
	if d := a.evaluate(ctx, &req); !d.Allow {
		return a.denialError(d)
	}
	writeErr := a.applyShard(ctx, req.At, objectID, func() error {
		return a.graph.RemoveLike(req.Token.AccountID, objectID)
	})
	switch {
	case writeErr == nil:
		return nil
	case errors.Is(writeErr, socialgraph.ErrNotLiked):
		return a.err(provider.KindNotFound, "GraphMethodException", "no like to remove")
	default:
		return a.err(provider.KindInvalidParam, "GraphMethodException", "%v", writeErr)
	}
}

// Comment publishes a comment on a post on behalf of the token's account.
func (a *API) Comment(c CallContext, postID, message string) (_ socialgraph.Comment, err error) {
	ctx, span, start := a.begin(c.Ctx, opComment)
	defer func() { a.finish(span, opComment, start, err) }()
	span.SetAttr("object", postID)
	req, err := a.authenticate(ctx, c, VerbComment, a.scopePublish, start)
	if err != nil {
		return socialgraph.Comment{}, err
	}
	req.ObjectID = postID
	req.Message = message
	if d := a.evaluate(ctx, &req); !d.Allow {
		return socialgraph.Comment{}, a.denialError(d)
	}
	meta := socialgraph.WriteMeta{AppID: req.App.ID, SourceIP: c.SourceIP, At: req.At}
	var cm socialgraph.Comment
	writeErr := a.applyShard(ctx, req.At, postID, func() error {
		var e error
		cm, e = a.graph.AddComment(req.Token.AccountID, postID, message, meta)
		return e
	})
	switch {
	case writeErr == nil:
		return cm, nil
	case errors.Is(writeErr, socialgraph.ErrSuspended):
		return socialgraph.Comment{}, a.errSuspended
	case errors.Is(writeErr, socialgraph.ErrNotFound):
		return socialgraph.Comment{}, a.err(provider.KindNotFound, "GraphMethodException", "unknown post %s", postID)
	case errors.Is(writeErr, socialgraph.ErrEmptyMessage):
		return socialgraph.Comment{}, a.err(provider.KindInvalidParam, "GraphMethodException", "empty message")
	default:
		return socialgraph.Comment{}, a.err(provider.KindInvalidParam, "GraphMethodException", "%v", writeErr)
	}
}

// Publish creates a status update on the token account's timeline.
func (a *API) Publish(c CallContext, message string) (_ socialgraph.Post, err error) {
	ctx, span, start := a.begin(c.Ctx, opPublish)
	defer func() { a.finish(span, opPublish, start, err) }()
	req, err := a.authenticate(ctx, c, VerbPost, a.scopePublish, start)
	if err != nil {
		return socialgraph.Post{}, err
	}
	req.Message = message
	if d := a.evaluate(ctx, &req); !d.Allow {
		return socialgraph.Post{}, a.denialError(d)
	}
	meta := socialgraph.WriteMeta{AppID: req.App.ID, SourceIP: c.SourceIP, At: req.At}
	p, err := a.graph.CreatePost(req.Token.AccountID, message, meta)
	switch {
	case err == nil:
		return p, nil
	case errors.Is(err, socialgraph.ErrSuspended):
		return socialgraph.Post{}, a.errSuspended
	case errors.Is(err, socialgraph.ErrEmptyMessage):
		return socialgraph.Post{}, a.err(provider.KindInvalidParam, "GraphMethodException", "empty message")
	default:
		return socialgraph.Post{}, a.err(provider.KindInvalidParam, "GraphMethodException", "%v", err)
	}
}

// Feed lists the token account's own posts in creation order — the read
// that premium auto-delivery services poll to discover fresh posts to
// like without the member logging in (Sec. 5.1).
func (a *API) Feed(c CallContext) (_ []socialgraph.Post, err error) {
	ctx, span, start := a.begin(c.Ctx, opFeed)
	defer func() { a.finish(span, opFeed, start, err) }()
	req, err := a.authenticate(ctx, c, VerbRead, "", start)
	if err != nil {
		return nil, err
	}
	return a.graph.PostsByAuthor(req.Token.AccountID), nil
}

// Friends lists the token account's friends. It requires the
// user_friends permission — the scope whose leakage turns token abuse
// into social-graph harvesting (Sec. 8).
func (a *API) Friends(c CallContext) (_ []socialgraph.Account, err error) {
	ctx, span, start := a.begin(c.Ctx, opFriends)
	defer func() { a.finish(span, opFriends, start, err) }()
	req, err := a.authenticate(ctx, c, VerbRead, a.scopeFriends, start)
	if err != nil {
		return nil, err
	}
	ids := a.graph.Friends(req.Token.AccountID)
	out := make([]socialgraph.Account, 0, len(ids))
	for _, id := range ids {
		if acct, err := a.graph.Account(id); err == nil {
			out = append(out, acct)
		}
	}
	return out, nil
}

// Likes lists the likes on an object (a public read).
func (a *API) Likes(c CallContext, objectID string) (_ []socialgraph.Like, err error) {
	ctx, span, start := a.begin(c.Ctx, opLikes)
	defer func() { a.finish(span, opLikes, start, err) }()
	if _, err = a.authenticate(ctx, c, VerbRead, "", start); err != nil {
		return nil, err
	}
	return a.graph.Likes(objectID), nil
}

// Comments lists the comments on a post (a public read).
func (a *API) Comments(c CallContext, postID string) (_ []socialgraph.Comment, err error) {
	ctx, span, start := a.begin(c.Ctx, opComments)
	defer func() { a.finish(span, opComments, start, err) }()
	if _, err = a.authenticate(ctx, c, VerbRead, "", start); err != nil {
		return nil, err
	}
	return a.graph.Comments(postID), nil
}

// LikesPage lists one page of likes on an object starting at the cursor
// position after, returning the next cursor and whether more likes
// remain. Cursors are arrival-sequence positions, stable across
// retention sweeps and like purges (see socialgraph.Store.LikesPage).
func (a *API) LikesPage(c CallContext, objectID string, after, limit int) (page []socialgraph.Like, next int, more bool, err error) {
	ctx, span, start := a.begin(c.Ctx, opLikes)
	defer func() { a.finish(span, opLikes, start, err) }()
	if _, err = a.authenticate(ctx, c, VerbRead, "", start); err != nil {
		return nil, 0, false, err
	}
	page, next, more = a.graph.LikesPage(objectID, after, limit)
	return page, next, more, nil
}

// CommentsPage lists one page of comments on a post; cursor semantics
// match LikesPage.
func (a *API) CommentsPage(c CallContext, postID string, after, limit int) (page []socialgraph.Comment, next int, more bool, err error) {
	ctx, span, start := a.begin(c.Ctx, opComments)
	defer func() { a.finish(span, opComments, start, err) }()
	if _, err = a.authenticate(ctx, c, VerbRead, "", start); err != nil {
		return nil, 0, false, err
	}
	page, next, more = a.graph.CommentsPage(postID, after, limit)
	return page, next, more, nil
}

// denialError maps a policy denial to an API error. Denials are the
// common case once a defense engages — a throttled collusion network is
// denied on nearly every request — so the errors are interned by
// (policy, reason): the rate limiters preformat their reasons, giving a
// handful of distinct shapes that hit the cache after first build. The
// table is bounded at maxCachedDenials so a policy that embeds
// per-request detail in its reason (e.g. the AS blocker naming the app)
// degrades to allocating, never to unbounded growth.
func (a *API) denialError(d Decision) error {
	key := denialKey{policy: d.Policy, reason: d.Reason}
	a.denialMu.RLock()
	err, ok := a.denialCache[key]
	a.denialMu.RUnlock()
	if ok {
		return err
	}
	k := provider.KindBlocked
	if d.Policy == "token-rate-limit" || d.Policy == "ip-rate-limit" {
		k = provider.KindRateLimited
	}
	err = a.err(k, "PolicyException", "denied by %s: %s", d.Policy, d.Reason)
	a.denialMu.Lock()
	if cached, ok := a.denialCache[key]; ok {
		err = cached
	} else if len(a.denialCache) < maxCachedDenials {
		a.denialCache[key] = err
	}
	a.denialMu.Unlock()
	return err
}
