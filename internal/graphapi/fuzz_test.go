package graphapi

import (
	"testing"
)

func FuzzDecodeCursor(f *testing.F) {
	f.Add("")
	f.Add(encodeCursor(0))
	f.Add(encodeCursor(25))
	f.Add(encodeCursor(1 << 30))
	f.Add("###")
	f.Add("MTIzNDU=")
	f.Add("LTU=") // base64("-5")
	f.Fuzz(func(t *testing.T, s string) {
		off, err := decodeCursor(s)
		if err != nil {
			return
		}
		if off < 0 {
			t.Fatalf("decoded negative offset %d from %q", off, s)
		}
		// Round trip: re-encoding a decoded cursor must decode to the
		// same offset.
		again, err := decodeCursor(encodeCursor(off))
		if err != nil || again != off {
			t.Fatalf("round trip %d → %d, %v", off, again, err)
		}
	})
}
