package graphapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/apps"
	"repro/internal/oauthsim"
)

func TestFriendsRequiresScope(t *testing.T) {
	f := newFixture(t)
	friend := f.graph.CreateAccount("friend", "EG", t0)
	if err := f.graph.AddFriendship(f.user.ID, friend.ID); err != nil {
		t.Fatal(err)
	}
	// Register an app approved for user_friends.
	app := f.reg.Register(apps.Config{
		Name:              "Friend Reader",
		RedirectURI:       "https://fr.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermUserFriends},
	})
	res, err := f.oauth.Authorize(oauthsim.AuthorizeRequest{
		AppID:        app.ID,
		RedirectURI:  app.RedirectURI,
		ResponseType: oauthsim.ResponseToken,
		Scopes:       []string{apps.PermUserFriends},
		AccountID:    f.user.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	friends, err := f.api.Friends(CallContext{AccessToken: res.AccessToken})
	if err != nil {
		t.Fatal(err)
	}
	if len(friends) != 1 || friends[0].ID != friend.ID || friends[0].Country != "EG" {
		t.Fatalf("friends = %+v", friends)
	}

	// A token without the scope is refused.
	noScope := f.token(t, apps.PermPublishActions)
	if _, err := f.api.Friends(CallContext{AccessToken: noScope}); ErrCode(err) != CodePermission {
		t.Fatalf("scopeless friends err = %v (code %d)", err, ErrCode(err))
	}
}

func TestHTTPFriendsEdge(t *testing.T) {
	f := newFixture(t)
	friend := f.graph.CreateAccount("friend", "TR", t0)
	if err := f.graph.AddFriendship(f.user.ID, friend.ID); err != nil {
		t.Fatal(err)
	}
	app := f.reg.Register(apps.Config{
		Name:              "Friend Reader",
		RedirectURI:       "https://fr.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermUserFriends},
	})
	res, err := f.oauth.Authorize(oauthsim.AuthorizeRequest{
		AppID:        app.ID,
		RedirectURI:  app.RedirectURI,
		ResponseType: oauthsim.ResponseToken,
		Scopes:       []string{apps.PermUserFriends},
		AccountID:    f.user.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(f.api))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/me/friends?access_token=" + res.AccessToken)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Data []struct {
			ID      string `json:"id"`
			Country string `json:"country"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Data) != 1 || body.Data[0].ID != friend.ID || body.Data[0].Country != "TR" {
		t.Fatalf("friends over HTTP = %+v", body)
	}
}
