package provider

import (
	"crypto/rand"
	"sync/atomic"
	"time"
)

// Pictogram is the second concrete platform: a photo-sharing network in
// the Instagram mold. It differs from the default provider along every
// axis the interface names:
//
//   - Grant flows: code-flow ONLY. There is no implicit dialog, so its
//     own tokens cannot be milked from a redirect fragment — the
//     cross-platform scenario instead harvests on the default provider
//     and amplifies here through a companion app's server-side exchange.
//   - Token format: structured, not opaque — "PTGR." + 24 hex chars of
//     payload + "." + 4 hex chars of FNV-1a checksum over the payload.
//     The checksum lets the edge reject garbage before any state lookup
//     and gives the fuzzer a real parse path to attack.
//   - Scopes: "likes" (write) and "relationships" (graph read). Neither
//     is in apps.SensitivePermissions, so an UNREVIEWED app keeps its
//     write scope — the lax-review policy difference that lets a
//     collusion network self-serve a companion app here.
//   - Error vocabulary: 4xxx numeric space with its own type strings.
//   - Rate shape: smaller batches (20 ops), tighter per-token writes.
var Pictogram Provider = register(pictogram{})

// Pictogram numeric error space.
const (
	pgCodeInvalidToken     = 4010
	pgCodeSecretProof      = 4030
	pgCodePermission       = 4031
	pgCodeRateLimited      = 4290
	pgCodeBlocked          = 4032
	pgCodeNotFound         = 4040
	pgCodeDuplicate        = 4090
	pgCodeInvalidParam     = 4000
	pgCodeAppSuspended     = 4011
	pgCodeAccountSuspended = 4012
)

const (
	pgTokenPrefix  = "PTGR."
	pgPayloadLen   = 24 // hex chars
	pgChecksumLen  = 4  // hex chars
	pgTokenLen     = len(pgTokenPrefix) + pgPayloadLen + 1 + pgChecksumLen
	pgChecksumDot  = len(pgTokenPrefix) + pgPayloadLen
	pgHexDigits    = "0123456789abcdef"
	fnvOffsetBasis = 2166136261
	fnvPrime       = 16777619
)

// pgCounter disambiguates tokens minted within one random read; it is
// folded into the payload so two mints can never collide.
var pgCounter atomic.Uint64

type pictogram struct{}

func (pictogram) Name() string { return "pictogram" }

// MintToken returns "PTGR.<24 hex payload>.<4 hex checksum>". The payload
// is 8 random bytes plus a 4-byte mint counter, hex-encoded; the checksum
// is the 16-bit fold of FNV-1a over the payload characters.
func (pictogram) MintToken() string {
	var raw [12]byte
	if _, err := rand.Read(raw[:8]); err != nil {
		panic("provider: entropy unavailable: " + err.Error())
	}
	n := pgCounter.Add(1)
	raw[8] = byte(n >> 24)
	raw[9] = byte(n >> 16)
	raw[10] = byte(n >> 8)
	raw[11] = byte(n)

	buf := make([]byte, 0, pgTokenLen)
	buf = append(buf, pgTokenPrefix...)
	for _, b := range raw {
		buf = append(buf, pgHexDigits[b>>4], pgHexDigits[b&0xf])
	}
	sum := pgChecksum(buf[len(pgTokenPrefix):])
	buf = append(buf, '.')
	buf = append(buf, pgHexDigits[sum>>12&0xf], pgHexDigits[sum>>8&0xf], pgHexDigits[sum>>4&0xf], pgHexDigits[sum&0xf])
	return string(buf)
}

// CheckToken verifies prefix, exact length, hex alphabet, and checksum —
// all byte-at-a-time over the input string, zero allocations.
func (pictogram) CheckToken(token string) error {
	if len(token) != pgTokenLen || token[:len(pgTokenPrefix)] != pgTokenPrefix {
		return ErrBadTokenFormat
	}
	if token[pgChecksumDot] != '.' {
		return ErrBadTokenFormat
	}
	payload := token[len(pgTokenPrefix):pgChecksumDot]
	var want uint16
	for i := 0; i < pgChecksumLen; i++ {
		d := hexVal(token[pgChecksumDot+1+i])
		if d < 0 {
			return ErrBadTokenFormat
		}
		want = want<<4 | uint16(d)
	}
	for i := 0; i < len(payload); i++ {
		if hexVal(payload[i]) < 0 {
			return ErrBadTokenFormat
		}
	}
	if pgChecksum(payload) != want {
		return ErrBadTokenFormat
	}
	return nil
}

// pgChecksum folds 32-bit FNV-1a over the payload characters into 16
// bits. The generic parameter lets both the []byte mint path and the
// string check path share the loop without converting (and allocating).
func pgChecksum[T string | []byte](payload T) uint16 {
	h := uint32(fnvOffsetBasis)
	for i := 0; i < len(payload); i++ {
		h ^= uint32(payload[i])
		h *= fnvPrime
	}
	return uint16(h>>16) ^ uint16(h)
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return -1
	}
}

// Supports: code flow only. No implicit dialog, nothing to milk.
func (pictogram) Supports(f Flow) bool { return f == FlowCode }

func (pictogram) ScopePublish() string { return "likes" }
func (pictogram) ScopeFriends() string { return "relationships" }

func (pictogram) ErrorCode(k ErrKind) int {
	switch k {
	case KindInvalidToken:
		return pgCodeInvalidToken
	case KindSecretProof:
		return pgCodeSecretProof
	case KindPermission:
		return pgCodePermission
	case KindRateLimited:
		return pgCodeRateLimited
	case KindBlocked:
		return pgCodeBlocked
	case KindNotFound:
		return pgCodeNotFound
	case KindDuplicate:
		return pgCodeDuplicate
	case KindInvalidParam:
		return pgCodeInvalidParam
	case KindAppSuspended:
		return pgCodeAppSuspended
	case KindAccountSuspended:
		return pgCodeAccountSuspended
	default:
		return 0
	}
}

func (pictogram) ErrorType(k ErrKind, fallback string) string {
	switch k {
	case KindInvalidToken, KindAppSuspended, KindAccountSuspended:
		return "TokenError"
	case KindSecretProof:
		return "SignatureError"
	case KindPermission:
		return "ScopeError"
	case KindRateLimited:
		return "ThrottleError"
	case KindBlocked:
		return "AbuseError"
	case KindNotFound:
		return "ResourceError"
	case KindDuplicate:
		return "DuplicateError"
	case KindInvalidParam:
		return "RequestError"
	default:
		return fallback
	}
}

func (pictogram) KindOfCode(code int) ErrKind {
	switch code {
	case pgCodeInvalidToken:
		return KindInvalidToken
	case pgCodeSecretProof:
		return KindSecretProof
	case pgCodePermission:
		return KindPermission
	case pgCodeRateLimited:
		return KindRateLimited
	case pgCodeBlocked:
		return KindBlocked
	case pgCodeNotFound:
		return KindNotFound
	case pgCodeDuplicate:
		return KindDuplicate
	case pgCodeInvalidParam:
		return KindInvalidParam
	case pgCodeAppSuspended:
		return KindAppSuspended
	case pgCodeAccountSuspended:
		return KindAccountSuspended
	default:
		return KindNone
	}
}

func (pictogram) Limits() RateShape {
	return RateShape{
		MaxBatchOps:   20,
		TokenWrites:   30,
		TokenWindow:   time.Hour,
		IPDailyLikes:  600,
		IPWeeklyLikes: 3000,
	}
}
