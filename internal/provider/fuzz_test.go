package provider

import (
	"strings"
	"testing"
)

// FuzzPictogramCheckToken attacks the structured token parse path: no
// input may panic, and the only accepted strings are exactly those the
// reference re-computation (prefix + hex payload + FNV fold) accepts.
// Minted tokens must always verify.
func FuzzPictogramCheckToken(f *testing.F) {
	f.Add(Pictogram.MintToken())
	f.Add("")
	f.Add("PTGR.")
	f.Add("PTGR.000000000000000000000000.0000")
	f.Add("PTGR.ffffffffffffffffffffffff.ffff")
	f.Add("PTGR.00000000000000000000000.00000") // dot shifted
	f.Add(strings.Repeat("P", pgTokenLen))
	f.Add("EAAB0123456789abcdef")
	f.Fuzz(func(t *testing.T, tok string) {
		err := Pictogram.CheckToken(tok)
		if ref := pgReferenceCheck(tok); ref != (err == nil) {
			t.Fatalf("CheckToken(%q) = %v, reference says valid=%v", tok, err, ref)
		}
		if err == nil {
			// A token that passes must keep passing (pure function).
			if Pictogram.CheckToken(tok) != nil {
				t.Fatalf("CheckToken(%q) not idempotent", tok)
			}
		}
	})
}

// pgReferenceCheck is an independent, naive implementation of the token
// grammar used as the fuzz oracle.
func pgReferenceCheck(tok string) bool {
	if !strings.HasPrefix(tok, "PTGR.") {
		return false
	}
	rest := tok[len("PTGR."):]
	parts := strings.Split(rest, ".")
	if len(parts) != 2 || len(parts[0]) != 24 || len(parts[1]) != 4 {
		return false
	}
	isHex := func(s string) bool {
		for _, c := range []byte(s) {
			if hexVal(c) < 0 {
				return false
			}
		}
		return true
	}
	if !isHex(parts[0]) || !isHex(parts[1]) {
		return false
	}
	var want uint16
	for _, c := range []byte(parts[1]) {
		want = want<<4 | uint16(hexVal(c))
	}
	return pgChecksum(parts[0]) == want
}

// FuzzPictogramMint round-trips minted tokens through CheckToken under
// fuzz-varied (ignored) input to exercise the counter wraparound paths.
func FuzzPictogramMint(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1 << 40))
	f.Fuzz(func(t *testing.T, seed uint64) {
		pgCounter.Store(seed)
		tok := Pictogram.MintToken()
		if err := Pictogram.CheckToken(tok); err != nil {
			t.Fatalf("minted token %q fails CheckToken: %v", tok, err)
		}
	})
}
