package provider

import (
	"errors"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"facebook", "pictogram"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if Default().Name() != "facebook" {
		t.Fatalf("Default() = %q, want facebook", Default().Name())
	}
	if p, ok := Get("pictogram"); !ok || p.Name() != "pictogram" {
		t.Fatalf("Get(pictogram) = %v, %v", p, ok)
	}
	if _, ok := Get("myspace"); ok {
		t.Fatal("Get(myspace) should miss")
	}
}

func TestFlows(t *testing.T) {
	if !Facebook.Supports(FlowImplicit) || !Facebook.Supports(FlowCode) {
		t.Error("facebook must support both flows")
	}
	if Pictogram.Supports(FlowImplicit) {
		t.Error("pictogram must NOT support the implicit flow (not milkable)")
	}
	if !Pictogram.Supports(FlowCode) {
		t.Error("pictogram must support the code flow")
	}
}

func TestFacebookTokenRoundTrip(t *testing.T) {
	tok := Facebook.MintToken()
	if !strings.HasPrefix(tok, "EAAB") {
		t.Fatalf("facebook token %q lacks EAAB prefix", tok)
	}
	if err := Facebook.CheckToken(tok); err != nil {
		t.Fatalf("CheckToken(minted) = %v", err)
	}
	for _, bad := range []string{"", "EAAB", "XAAB1234deadbeef", "PTGR.000000000000000000000000.0000"} {
		if err := Facebook.CheckToken(bad); !errors.Is(err, ErrBadTokenFormat) {
			t.Errorf("CheckToken(%q) = %v, want ErrBadTokenFormat", bad, err)
		}
	}
}

func TestPictogramTokenRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tok := Pictogram.MintToken()
		if seen[tok] {
			t.Fatalf("duplicate minted token %q", tok)
		}
		seen[tok] = true
		if len(tok) != pgTokenLen {
			t.Fatalf("token %q length %d, want %d", tok, len(tok), pgTokenLen)
		}
		if err := Pictogram.CheckToken(tok); err != nil {
			t.Fatalf("CheckToken(minted %q) = %v", tok, err)
		}
	}
}

func TestPictogramTokenRejectsTampering(t *testing.T) {
	tok := Pictogram.MintToken()
	cases := map[string]string{
		"empty":            "",
		"short":            tok[:len(tok)-1],
		"long":             tok + "0",
		"wrong prefix":     "XTGR." + tok[5:],
		"missing dot":      tok[:pgChecksumDot] + "0" + tok[pgChecksumDot+1:],
		"non-hex payload":  tok[:6] + "Z" + tok[7:],
		"non-hex checksum": tok[:len(tok)-1] + "Z",
		"facebook token":   Facebook.MintToken(),
	}
	// Flip one payload nibble: checksum no longer matches.
	flip := byte('0')
	if tok[5] == '0' {
		flip = '1'
	}
	cases["bit flip"] = tok[:5] + string(flip) + tok[6:]
	for name, bad := range cases {
		if err := Pictogram.CheckToken(bad); !errors.Is(err, ErrBadTokenFormat) {
			t.Errorf("%s: CheckToken(%q) = %v, want ErrBadTokenFormat", name, bad, err)
		}
	}
	// Checksum tamper: pick a different valid-hex checksum.
	last := tok[len(tok)-1]
	repl := byte('0')
	if last == '0' {
		repl = '1'
	}
	if err := Pictogram.CheckToken(tok[:len(tok)-1] + string(repl)); !errors.Is(err, ErrBadTokenFormat) {
		t.Error("checksum tamper accepted")
	}
}

// TestCheckTokenAllocFree pins the interface contract the graphapi hot
// path depends on: surface validation allocates nothing, accept or
// reject.
func TestCheckTokenAllocFree(t *testing.T) {
	good := []string{Facebook.MintToken(), Pictogram.MintToken()}
	provs := []Provider{Facebook, Pictogram}
	bad := "not-a-token-of-any-provider"
	if n := testing.AllocsPerRun(100, func() {
		for i, p := range provs {
			if err := p.CheckToken(good[i]); err != nil {
				t.Fatal(err)
			}
			if err := p.CheckToken(bad); err == nil {
				t.Fatal("bad token accepted")
			}
		}
	}); n != 0 {
		t.Errorf("CheckToken allocates %.0f/run, want 0", n)
	}
}

func TestErrorVocabularyBijective(t *testing.T) {
	kinds := []ErrKind{
		KindInvalidToken, KindSecretProof, KindPermission, KindRateLimited,
		KindBlocked, KindNotFound, KindDuplicate, KindInvalidParam,
		KindAppSuspended, KindAccountSuspended,
	}
	for _, name := range Names() {
		p := MustGet(name)
		seen := map[int]ErrKind{}
		for _, k := range kinds {
			code := p.ErrorCode(k)
			if code == 0 {
				t.Errorf("%s: ErrorCode(%v) = 0", name, k)
			}
			if prev, dup := seen[code]; dup {
				t.Errorf("%s: code %d maps to both %v and %v", name, code, prev, k)
			}
			seen[code] = k
			if got := p.KindOfCode(code); got != k {
				t.Errorf("%s: KindOfCode(ErrorCode(%v)) = %v", name, k, got)
			}
			if p.ErrorType(k, "Fallback") == "" {
				t.Errorf("%s: ErrorType(%v) empty", name, k)
			}
		}
		if p.KindOfCode(999999) != KindNone {
			t.Errorf("%s: KindOfCode(999999) != KindNone", name)
		}
	}
}

// TestFacebookVocabularyIsCanonical pins the default provider's mapping
// to the historical constants — the bit-for-bit transparency anchor.
func TestFacebookVocabularyIsCanonical(t *testing.T) {
	want := map[ErrKind]int{
		KindInvalidToken:     190,
		KindSecretProof:      104,
		KindPermission:       200,
		KindRateLimited:      613,
		KindBlocked:          368,
		KindNotFound:         803,
		KindDuplicate:        520,
		KindInvalidParam:     100,
		KindAppSuspended:     191,
		KindAccountSuspended: 459,
	}
	for k, code := range want {
		if got := Facebook.ErrorCode(k); got != code {
			t.Errorf("facebook ErrorCode(%v) = %d, want %d", k, got, code)
		}
		if got := Facebook.ErrorType(k, "OAuthException"); got != "OAuthException" {
			t.Errorf("facebook ErrorType must pass fallback through, got %q", got)
		}
	}
}

func TestScopesAndLimits(t *testing.T) {
	if Facebook.ScopePublish() != "publish_actions" || Facebook.ScopeFriends() != "user_friends" {
		t.Error("facebook scope names changed")
	}
	if Pictogram.ScopePublish() != "likes" || Pictogram.ScopeFriends() != "relationships" {
		t.Error("pictogram scope names changed")
	}
	if Facebook.Limits().MaxBatchOps != 50 {
		t.Error("facebook batch cap must stay 50 (wire-visible default)")
	}
	pg := Pictogram.Limits()
	if pg.MaxBatchOps >= Facebook.Limits().MaxBatchOps {
		t.Error("pictogram batch cap should be tighter than facebook's")
	}
	if pg.TokenWrites <= 0 || pg.IPDailyLikes <= 0 || pg.IPWeeklyLikes <= pg.IPDailyLikes {
		t.Errorf("pictogram rate shape implausible: %+v", pg)
	}
}
