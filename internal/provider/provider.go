// Package provider makes the platform identity explicit. The paper
// studies collusion networks against a single social network (Facebook's
// OAuth dialect and Graph API error space), but the milking economy it
// documents is platform-agnostic: what varies per platform is the token
// wire format, which OAuth grant flows exist (the implicit-flow leak that
// enables milking exists on some providers and not others — see USPFO in
// PAPERS.md), the scope vocabulary, the numeric error space, and the rate
// and batch shapes of the API.
//
// A Provider bundles exactly those per-platform facts. The rest of the
// stack (oauthsim, graphapi, platform) is written against this interface;
// the Facebook-style provider is the default and maps the canonical error
// kinds onto the exact constants the reproduction has always used, so
// default-provider behavior is bit-for-bit unchanged.
package provider

import (
	"errors"
	"sort"
	"time"
)

// Flow is an OAuth 2.0 grant flow a provider may support.
type Flow int

// Grant flows.
const (
	// FlowImplicit is the client-side flow (response_type=token): the
	// access token rides in the redirect fragment, visible to the browser
	// — the flow collusion networks milk.
	FlowImplicit Flow = iota
	// FlowCode is the authorization-code flow (response_type=code): the
	// browser sees only a one-time code; the token is exchanged
	// server-side with the application secret. Not milkable.
	FlowCode
)

// String names the flow.
func (f Flow) String() string {
	if f == FlowCode {
		return "code"
	}
	return "implicit"
}

// ErrKind is the canonical, provider-neutral classification of an API
// error. Operations inside graphapi decide a kind; the provider maps the
// kind into its own numeric code and type string at the edge. Collusion
// delivery engines dispatch on kinds, never on provider codes, so one
// engine drives every platform.
type ErrKind int

// Canonical error kinds.
const (
	KindNone ErrKind = iota
	KindInvalidToken
	KindSecretProof
	KindPermission
	KindRateLimited
	KindBlocked
	KindNotFound
	KindDuplicate
	KindInvalidParam
	KindAppSuspended
	KindAccountSuspended
)

// String names the kind for diagnostics.
func (k ErrKind) String() string {
	switch k {
	case KindInvalidToken:
		return "invalid-token"
	case KindSecretProof:
		return "secret-proof"
	case KindPermission:
		return "permission"
	case KindRateLimited:
		return "rate-limited"
	case KindBlocked:
		return "blocked"
	case KindNotFound:
		return "not-found"
	case KindDuplicate:
		return "duplicate"
	case KindInvalidParam:
		return "invalid-param"
	case KindAppSuspended:
		return "app-suspended"
	case KindAccountSuspended:
		return "account-suspended"
	default:
		return "none"
	}
}

// RateShape is a provider's default abuse-limit geometry: how its batch
// endpoint caps operations and what per-token and per-IP write volumes
// its countermeasure stack is tuned for. Defenses may be deployed with
// other numbers; these are the provider's published defaults.
type RateShape struct {
	// MaxBatchOps caps operations per batch request.
	MaxBatchOps int
	// TokenWrites / TokenWindow is the default per-token write budget.
	TokenWrites int
	TokenWindow time.Duration
	// IPDailyLikes / IPWeeklyLikes are the default per-source-IP like
	// caps the provider's abuse stack starts from (Sec. 6.4 shape).
	IPDailyLikes  int
	IPWeeklyLikes int
}

// ErrBadTokenFormat reports a token that fails the provider's surface
// format check before any server state is consulted.
var ErrBadTokenFormat = errors.New("provider: malformed access token")

// Provider is one social platform's identity: token format, grant flows,
// scope names, error vocabulary, and rate shapes.
type Provider interface {
	// Name is the provider's registry key and metric label value.
	Name() string
	// MintToken returns a fresh access token in the provider's wire
	// format. Tokens are opaque to clients; only the issuing provider
	// may parse them.
	MintToken() string
	// CheckToken validates the surface shape of a token (prefix,
	// structure, checksum) without consulting server state. It must not
	// allocate on either outcome — it sits on the per-request validation
	// hot path — and returns ErrBadTokenFormat (or a wrapped sentinel)
	// on malformed input.
	CheckToken(token string) error
	// Supports reports whether the provider offers the grant flow.
	Supports(f Flow) bool
	// ScopePublish is the provider's name for the write permission that
	// lets an app like/comment/post on the user's behalf.
	ScopePublish() string
	// ScopeFriends is the provider's name for the social-graph read
	// permission (Sec. 8 harvesting).
	ScopeFriends() string
	// ErrorCode maps a canonical kind into the provider's numeric error
	// space.
	ErrorCode(k ErrKind) int
	// ErrorType maps a canonical kind into the provider's error type
	// string. fallback is the caller's canonical type label; providers
	// whose vocabulary matches the default pass it through.
	ErrorType(k ErrKind, fallback string) string
	// KindOfCode is the reverse mapping, used by HTTP clients to restore
	// the canonical kind from a wire error.
	KindOfCode(code int) ErrKind
	// Limits returns the provider's default rate shapes.
	Limits() RateShape
}

// registry holds the built-in providers. The set is fixed at init time,
// so lookups need no lock.
var registry = map[string]Provider{}

func register(p Provider) Provider {
	registry[p.Name()] = p
	return p
}

// Default returns the paper's platform (the Facebook-style provider).
func Default() Provider { return Facebook }

// Get returns the named provider.
func Get(name string) (Provider, bool) {
	p, ok := registry[name]
	return p, ok
}

// MustGet returns the named provider or panics; for wiring code whose
// provider names are compile-time constants.
func MustGet(name string) Provider {
	p, ok := registry[name]
	if !ok {
		panic("provider: unknown provider " + name)
	}
	return p
}

// Names lists the registered provider names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
