package provider

import (
	"time"

	"repro/internal/ids"
)

// Facebook is the paper's platform: implicit-flow OAuth dialog, "EAAB"
// token prefix, Graph API error vocabulary, /batch capped at 50 ops.
// This provider is the default; every mapping below is the identity onto
// the constants the reproduction used before providers existed, which is
// what keeps Table-4 goldens and the defense-equivalence suites
// byte-for-byte stable.
var Facebook Provider = register(facebook{})

// Numeric error space of the default provider. graphapi re-exports these
// as its Code* constants.
const (
	fbCodeInvalidToken     = 190
	fbCodeSecretProof      = 104
	fbCodePermission       = 200
	fbCodeRateLimited      = 613
	fbCodeBlocked          = 368
	fbCodeNotFound         = 803
	fbCodeDuplicate        = 520
	fbCodeInvalidParam     = 100
	fbCodeAppSuspended     = 191
	fbCodeAccountSuspended = 459
)

const fbTokenPrefix = "EAAB"

type facebook struct{}

func (facebook) Name() string { return "facebook" }

// MintToken issues the classic "EAAB"-prefixed opaque token (ids.NewToken
// keeps the global issue counter, so token streams stay deterministic
// under the simclock worlds).
func (facebook) MintToken() string { return ids.NewToken() }

// CheckToken accepts any token carrying the issuer prefix. The body is
// opaque — length varies with the embedded counter — so only the prefix
// is structural. No allocation on either path.
func (facebook) CheckToken(token string) error {
	if len(token) <= len(fbTokenPrefix) || token[:len(fbTokenPrefix)] != fbTokenPrefix {
		return ErrBadTokenFormat
	}
	return nil
}

// Supports: both flows exist; the implicit flow is what collusion
// networks milk (Sec. 3).
func (facebook) Supports(Flow) bool { return true }

func (facebook) ScopePublish() string { return "publish_actions" }
func (facebook) ScopeFriends() string { return "user_friends" }

func (facebook) ErrorCode(k ErrKind) int {
	switch k {
	case KindInvalidToken:
		return fbCodeInvalidToken
	case KindSecretProof:
		return fbCodeSecretProof
	case KindPermission:
		return fbCodePermission
	case KindRateLimited:
		return fbCodeRateLimited
	case KindBlocked:
		return fbCodeBlocked
	case KindNotFound:
		return fbCodeNotFound
	case KindDuplicate:
		return fbCodeDuplicate
	case KindInvalidParam:
		return fbCodeInvalidParam
	case KindAppSuspended:
		return fbCodeAppSuspended
	case KindAccountSuspended:
		return fbCodeAccountSuspended
	default:
		return 0
	}
}

// ErrorType passes the caller's canonical label through: the default
// provider's vocabulary ("OAuthException", "GraphMethodException",
// "PolicyException") IS the canonical vocabulary.
func (facebook) ErrorType(_ ErrKind, fallback string) string { return fallback }

func (facebook) KindOfCode(code int) ErrKind {
	switch code {
	case fbCodeInvalidToken:
		return KindInvalidToken
	case fbCodeSecretProof:
		return KindSecretProof
	case fbCodePermission:
		return KindPermission
	case fbCodeRateLimited:
		return KindRateLimited
	case fbCodeBlocked:
		return KindBlocked
	case fbCodeNotFound:
		return KindNotFound
	case fbCodeDuplicate:
		return KindDuplicate
	case fbCodeInvalidParam:
		return KindInvalidParam
	case fbCodeAppSuspended:
		return KindAppSuspended
	case fbCodeAccountSuspended:
		return KindAccountSuspended
	default:
		return KindNone
	}
}

func (facebook) Limits() RateShape {
	return RateShape{
		MaxBatchOps:   50,
		TokenWrites:   60,
		TokenWindow:   time.Hour,
		IPDailyLikes:  1000,
		IPWeeklyLikes: 5000,
	}
}
