package core

import (
	"errors"
	"testing"

	"repro/internal/collusion"
	"repro/internal/workload"
)

func TestAddHoneypotAndMilkVia(t *testing.T) {
	s := smallStudy(t)
	extra, err := s.AddHoneypot("mg-likers.com")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddHoneypot("nope.example"); err == nil {
		t.Fatal("unknown network accepted")
	}
	// Both the primary and the extra honeypot feed the same estimator.
	r1 := s.MilkNetwork("mg-likers.com")
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	s.AdvanceHour()
	r2 := s.MilkVia(extra, "mg-likers.com")
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	est := s.Estimators["mg-likers.com"]
	if est.PostsSubmitted() != 2 {
		t.Fatalf("posts = %d, want 2 (shared estimator)", est.PostsSubmitted())
	}
	if got := s.Countermeasures().PendingMilked(); got == 0 {
		t.Fatal("fleet milking fed no accounts to the backlog")
	}
	if res := s.MilkVia(extra, "ghost"); res.Err == nil {
		t.Fatal("MilkVia unknown network accepted")
	}
}

func TestSuspendAccounts(t *testing.T) {
	s := smallStudy(t)
	ni := s.Scenario.Networks[0]
	targets := []string{ni.Members[0].ID, ni.Members[1].ID, "ghost-account"}
	n := s.Countermeasures().SuspendAccounts(targets, "ml-detector")
	if n != 2 {
		t.Fatalf("suspended = %d, want 2", n)
	}
	// Suspended accounts cannot write and their tokens are dead.
	acct, err := s.Scenario.Platform.Graph.Account(ni.Members[0].ID)
	if err != nil || !acct.Suspended {
		t.Fatalf("account = %+v, %v", acct, err)
	}
	tok, ok := ni.Net.Pool().Token(ni.Members[0].ID)
	if !ok {
		t.Fatal("token missing from pool")
	}
	if _, err := s.Scenario.Platform.OAuth.Validate(tok); err == nil {
		t.Fatal("suspended account's token still valid")
	}
	// Idempotent.
	if again := s.Countermeasures().SuspendAccounts(targets, "ml-detector"); again != 0 {
		t.Fatalf("second suspension = %d", again)
	}
}

// TestFleetBeatsHoneypotDetection drives the Sec. 6.5 counter through the
// public core API: a paranoid network bans the single primary honeypot,
// while a fleet of three stays under the threshold.
func TestFleetBeatsHoneypotDetection(t *testing.T) {
	// A scenario with honeypot detection armed needs a hand-built network
	// config; reuse the study but arm detection via a dedicated spec is
	// not possible, so approximate: aggressive milking of djliker.com
	// (10/day site limit) is throttled, and the fleet spread works within
	// the same per-member budget.
	s, err := NewStudy(workload.Options{
		Scale:      5000,
		MinMembers: 60,
		Networks:   []string{"djliker.com"},
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The single honeypot hits the 10/day site limit.
	failures := 0
	for i := 0; i < 14; i++ {
		if res := s.MilkNetwork("djliker.com"); res.Err != nil {
			if !errors.Is(res.Err, collusion.ErrDailyLimit) {
				t.Fatal(res.Err)
			}
			failures++
		}
	}
	if failures != 4 {
		t.Fatalf("single honeypot failures = %d, want 4 beyond the 10/day cap", failures)
	}
	// A second honeypot extends the same-day budget.
	extra, err := s.AddHoneypot("djliker.com")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if res := s.MilkVia(extra, "djliker.com"); res.Err != nil {
			t.Fatalf("fleet request %d: %v", i, res.Err)
		}
	}
	if got := s.Estimators["djliker.com"].PostsSubmitted(); got != 14 {
		t.Fatalf("posts = %d, want 14", got)
	}
}
