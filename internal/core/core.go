// Package core is the top-level library of the reproduction: it wires the
// simulated world (platform + collusion networks + member populations)
// together with the measurement apparatus (honeypots + estimators) and
// the countermeasure stack, exposing the paper's measure-and-mitigate
// loop as a single Study object.
//
// A Study owns:
//
//   - a workload.Scenario — the platform, exploited applications, and the
//     instantiated collusion networks with populated token pools;
//   - one honeypot per collusion network, already joined;
//   - per-network estimators fed by every milking round (Table 4,
//     Figures 4 and 6);
//   - a Countermeasures handle through which the Section 6 defenses are
//     deployed incrementally, exactly as in the Figure 5 timeline.
//
// Time is fully simulated: AdvanceHour/AdvanceDay move the world forward.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/collusion"
	"repro/internal/defense"
	"repro/internal/graphapi"
	"repro/internal/honeypot"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
	"repro/internal/workload"
)

// Study is the orchestrated reproduction.
type Study struct {
	Scenario *workload.Scenario
	// Honeypots and Estimators are keyed by collusion network name.
	Honeypots  map[string]*honeypot.Honeypot
	Estimators map[string]*honeypot.Estimator

	counter *Countermeasures
	rng     *rand.Rand
}

// NewStudy builds the world and infiltrates every selected collusion
// network with a honeypot.
func NewStudy(opts workload.Options) (*Study, error) {
	scenario, err := workload.BuildScenario(opts)
	if err != nil {
		return nil, err
	}
	s := &Study{
		Scenario:   scenario,
		Honeypots:  make(map[string]*honeypot.Honeypot),
		Estimators: make(map[string]*honeypot.Estimator),
		rng:        rand.New(rand.NewSource(scenario.Opts.Seed + 99)),
	}
	for _, ni := range scenario.Networks {
		hp := honeypot.New(honeypot.Config{
			Clock:   scenario.Clock,
			Graph:   scenario.Platform.Graph,
			Client:  scenario.Client,
			Site:    ni.Net,
			App:     scenario.Apps[ni.Spec.App],
			Name:    "honeypot-" + ni.Spec.Name,
			Country: "US",
		})
		if err := hp.Join(); err != nil {
			return nil, fmt.Errorf("core: honeypot join %s: %w", ni.Spec.Name, err)
		}
		s.Honeypots[ni.Spec.Name] = hp
		s.Estimators[ni.Spec.Name] = honeypot.NewEstimator()
	}
	s.counter = newCountermeasures(s)
	return s, nil
}

// Clock returns the study's simulated clock.
func (s *Study) Clock() *simclock.Simulated { return s.Scenario.Clock }

// Observer returns the platform's observability layer — the tracer the
// milking spans land in and the registry /metrics serves.
func (s *Study) Observer() *obs.Observer { return s.Scenario.Platform.Obs }

// milkSpan opens the per-network per-round span and an allocation window
// over the whole round; closeMilkSpan annotates the span with the round's
// outcome and closes the window (allocs_per_op{op="milk.round"}).
func (s *Study) milkSpan(network string) (*obs.Span, obs.AllocSample) {
	_, span := s.Observer().T().StartSpan(nil, "milk.round")
	span.SetAttr("network", network)
	return span, s.Observer().A().Begin(nil, "milk.round")
}

func closeMilkSpan(span *obs.Span, as obs.AllocSample, res MilkResult) {
	as.End(1)
	if span == nil {
		return
	}
	if res.Err != nil {
		span.Event("error", "message", res.Err.Error())
	}
	span.SetAttr("post", res.PostID)
	span.SetAttr("delivered", strconv.Itoa(res.Delivered))
	span.SetAttr("likers", strconv.Itoa(len(res.Likers)))
	span.End()
}

// AdvanceHour moves simulated time forward one hour.
func (s *Study) AdvanceHour() { s.Scenario.Clock.Advance(time.Hour) }

// AdvanceDay moves simulated time forward one day.
func (s *Study) AdvanceDay() { s.Scenario.Clock.Advance(24 * time.Hour) }

// SweepRetention runs one retention sweep against the social graph at the
// current simulated instant. With the default infinite retention window
// (Options.RetentionWindow zero) this is a no-op, so campaign drivers can
// call it unconditionally each round.
func (s *Study) SweepRetention() socialgraph.SweepResult {
	return s.Scenario.Platform.Graph.RetentionSweep(s.Scenario.Clock.Now())
}

// MilkResult is the outcome of one milking round on one network.
type MilkResult struct {
	Network   string
	PostID    string
	Delivered int
	Likers    []string
	Err       error
}

// MilkNetwork performs one milking round against the named network: the
// honeypot posts a status, requests likes, and crawls the likers. The
// estimator is updated and the milked accounts are queued with the
// countermeasure pipeline (they only get invalidated when a sweep runs).
//
// When the site has dropped the honeypot's membership — its token expired
// or was invalidated (the countermeasures do not spare honeypots) — the
// honeypot re-runs the install flow and retries once, as the paper's
// long-running automation had to.
func (s *Study) MilkNetwork(name string) (res MilkResult) {
	hp, ok := s.Honeypots[name]
	if !ok {
		return MilkResult{Network: name, Err: fmt.Errorf("core: unknown network %q", name)}
	}
	span, allocs := s.milkSpan(name)
	defer func() { closeMilkSpan(span, allocs, res) }()
	postID, delivered, err := hp.MilkOnce()
	if err != nil && errors.Is(err, collusion.ErrNotMember) {
		span.Event("rejoin")
		if rerr := hp.Rejoin(); rerr == nil {
			postID, delivered, err = hp.MilkOnce()
		}
	}
	if err != nil {
		return MilkResult{Network: name, PostID: postID, Err: err}
	}
	likes := s.Scenario.Platform.Graph.Likes(postID)
	likers := make([]string, len(likes))
	for i, l := range likes {
		likers[i] = l.AccountID
	}
	s.Estimators[name].ObservePost(likers)
	s.counter.noteMilked(likers)
	return MilkResult{Network: name, PostID: postID, Delivered: delivered, Likers: likers}
}

// AddHoneypot registers an additional honeypot on the named network and
// joins it — the Sec. 6.5 counter to collusion-network honeypot
// detection: several accounts each below the suspicion threshold carry
// the campaign a single aggressive honeypot cannot.
func (s *Study) AddHoneypot(network string) (*honeypot.Honeypot, error) {
	ni, ok := s.Scenario.FindNetwork(network)
	if !ok {
		return nil, fmt.Errorf("core: unknown network %q", network)
	}
	hp := honeypot.New(honeypot.Config{
		Clock:   s.Scenario.Clock,
		Graph:   s.Scenario.Platform.Graph,
		Client:  s.Scenario.Client,
		Site:    ni.Net,
		App:     s.Scenario.Apps[ni.Spec.App],
		Name:    fmt.Sprintf("honeypot-%s-%d", network, s.rng.Int()),
		Country: "US",
	})
	if err := hp.Join(); err != nil {
		return nil, err
	}
	return hp, nil
}

// MilkVia performs one milking round with a specific honeypot, updating
// the network's shared estimator and the countermeasure backlog exactly
// like MilkNetwork. Use with AddHoneypot to spread a campaign across a
// fleet.
func (s *Study) MilkVia(hp *honeypot.Honeypot, network string) (res MilkResult) {
	est, ok := s.Estimators[network]
	if !ok {
		return MilkResult{Network: network, Err: fmt.Errorf("core: unknown network %q", network)}
	}
	span, allocs := s.milkSpan(network)
	defer func() { closeMilkSpan(span, allocs, res) }()
	postID, delivered, err := hp.MilkOnce()
	if err != nil && errors.Is(err, collusion.ErrNotMember) {
		span.Event("rejoin")
		if rerr := hp.Rejoin(); rerr == nil {
			postID, delivered, err = hp.MilkOnce()
		}
	}
	if err != nil {
		return MilkResult{Network: network, PostID: postID, Err: err}
	}
	likes := s.Scenario.Platform.Graph.Likes(postID)
	likers := make([]string, len(likes))
	for i, l := range likes {
		likers[i] = l.AccountID
	}
	est.ObservePost(likers)
	s.counter.noteMilked(likers)
	return MilkResult{Network: network, PostID: postID, Delivered: delivered, Likers: likers}
}

// MilkAll runs rounds milking rounds against every network and returns
// the results in network order.
func (s *Study) MilkAll(rounds int) []MilkResult {
	var out []MilkResult
	for r := 0; r < rounds; r++ {
		for _, ni := range s.Scenario.Networks {
			out = append(out, s.MilkNetwork(ni.Spec.Name))
		}
	}
	return out
}

// MilkAllParallel runs rounds milking rounds against every network,
// milking all networks' honeypots concurrently within each round through
// a bounded worker pool — the paper's 22 honeypots posted and requested
// likes simultaneously every hour, not one network after another, and on
// the sharded store the concurrent rounds scale with cores instead of
// serializing on a single graph mutex.
//
// workers <= 0 uses GOMAXPROCS. Each network is milked by exactly one
// worker per round (honeypots and estimators are single-writer state),
// and a barrier between rounds preserves the round structure the
// estimators' Figure 4 curves depend on. Results are returned in the
// same order MilkAll produces: network order within each round.
func (s *Study) MilkAllParallel(rounds, workers int) []MilkResult {
	nets := s.Scenario.Networks
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nets) {
		workers = len(nets)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]MilkResult, 0, rounds*len(nets))
	for r := 0; r < rounds; r++ {
		results := make([]MilkResult, len(nets))
		tasks := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range tasks {
					results[i] = s.MilkNetwork(nets[i].Spec.Name)
				}
			}()
		}
		for i := range nets {
			tasks <- i
		}
		close(tasks)
		wg.Wait()
		out = append(out, results...)
	}
	return out
}

// Countermeasures returns the deployment handle.
func (s *Study) Countermeasures() *Countermeasures { return s.counter }

// Countermeasures deploys the Section 6 defenses onto the platform's
// policy chain and manages the honeypot-fed invalidation pipeline.
type Countermeasures struct {
	study *Study

	tokenLimiter *defense.TokenRateLimiter
	ipLimiter    *defense.IPRateLimiter
	asBlocker    *defense.ASBlocker
	tap          *defense.SynchroTap
	invalidator  *defense.Invalidator

	// actions shares the defense_actions_total family the Graph API uses
	// for policy denials, adding the control-plane side: deployments and
	// sweeps, so the Figure 5 phase boundaries appear in /metrics.
	actions *obs.CounterVec
}

func newCountermeasures(s *Study) *Countermeasures {
	inv := defense.NewInvalidator(defense.AccountRevokerFunc(func(accountID, reason string) bool {
		return s.Scenario.Platform.OAuth.InvalidateAccount(accountID, reason) > 0
	}), "honeypot-milked")
	actions := s.Observer().M().Counter("defense_actions_total",
		"Defense actions taken, by countermeasure and action.",
		"countermeasure", "action")
	return &Countermeasures{study: s, invalidator: inv, actions: actions}
}

func (c *Countermeasures) chain() *graphapi.Chain {
	return c.study.Scenario.Platform.Chain()
}

// noteMilked queues milked accounts for future invalidation sweeps.
func (c *Countermeasures) noteMilked(accountIDs []string) {
	c.invalidator.Submit(accountIDs)
}

// SetTokenRateLimit deploys (or adjusts) the per-token write rate limit
// of Sec. 6.1.
func (c *Countermeasures) SetTokenRateLimit(limit int, window time.Duration) {
	if c.tokenLimiter == nil {
		c.tokenLimiter = defense.NewTokenRateLimiter(c.study.Scenario.Clock, limit, window)
		c.chain().Append(c.tokenLimiter)
		c.actions.Inc("token-rate-limit", "deploy")
		return
	}
	c.tokenLimiter.SetLimit(limit)
	c.actions.Inc("token-rate-limit", "adjust")
}

// InvalidateMilkedFraction revokes the given fraction of the queued
// milked accounts' tokens (Sec. 6.2) and returns how many accounts were
// swept.
func (c *Countermeasures) InvalidateMilkedFraction(fraction float64) int {
	n := c.invalidator.InvalidateFraction(fraction, c.study.rng)
	if n > 0 {
		c.actions.Add(int64(n), "token-invalidation", "sweep")
	}
	return n
}

// InvalidateMilkedAll revokes every queued milked account's tokens.
func (c *Countermeasures) InvalidateMilkedAll() int {
	n := c.invalidator.InvalidateAll()
	if n > 0 {
		c.actions.Add(int64(n), "token-invalidation", "sweep")
	}
	return n
}

// PendingMilked reports the invalidation backlog size.
func (c *Countermeasures) PendingMilked() int { return c.invalidator.PendingCount() }

// RevokedMilked reports how many milked accounts have been swept.
func (c *Countermeasures) RevokedMilked() int { return c.invalidator.RevokedCount() }

// DeployClustering attaches a SynchroTrap detector to the request path
// (Sec. 6.3) and returns it for inspection.
func (c *Countermeasures) DeployClustering(window time.Duration, simThreshold float64, minShared, minClusterSize int) *defense.SynchroTrap {
	trap := defense.NewSynchroTrap(window, simThreshold, minShared, minClusterSize)
	c.tap = defense.NewSynchroTap(trap)
	c.chain().Append(c.tap)
	c.actions.Inc("synchrotrap", "deploy")
	return trap
}

// RunClusteringSweep detects clusters and suspends every clustered
// account's tokens; it returns the number of accounts actioned. In the
// paper this had no measurable impact — collusion networks spread their
// activity too thinly (Figures 6–7).
func (c *Countermeasures) RunClusteringSweep() int {
	if c.tap == nil {
		return 0
	}
	n := 0
	for _, cluster := range c.tap.Trap().Detect() {
		for _, accountID := range cluster.Accounts {
			if c.study.Scenario.Platform.OAuth.InvalidateAccount(accountID, "synchrotrap") > 0 {
				n++
			}
		}
	}
	if n > 0 {
		c.actions.Add(int64(n), "synchrotrap", "cluster-hit")
	}
	return n
}

// DeployIPRateLimits installs the per-IP daily/weekly like caps of
// Sec. 6.4.
func (c *Countermeasures) DeployIPRateLimits(daily, weekly int) {
	if c.ipLimiter != nil {
		return
	}
	c.ipLimiter = defense.NewIPRateLimiter(c.study.Scenario.Clock, daily, weekly)
	c.chain().Append(c.ipLimiter)
	c.actions.Inc("ip-rate-limit", "deploy")
}

// BlockASes blocks the given autonomous systems for all susceptible
// applications registered in the scenario (scoping limits collateral
// damage, Sec. 6.4).
func (c *Countermeasures) BlockASes(asns ...netsim.ASN) {
	if c.asBlocker == nil {
		c.asBlocker = defense.NewASBlocker()
		for _, app := range c.study.Scenario.Platform.Apps.All() {
			if app.Susceptible() {
				c.asBlocker.ScopeToApps(app.ID)
			}
		}
		c.chain().Append(c.asBlocker)
	}
	for _, asn := range asns {
		c.asBlocker.Block(asn)
		c.actions.Inc("as-block", "block")
	}
}

// SuspendAccounts checkpoints the given accounts (no writes until
// reinstated) and invalidates their tokens — the account-level action an
// abuse-detection verdict feeds (the paper notes OSNs suspend suspicious
// accounts; the ML extension supplies the verdicts). It returns how many
// accounts were newly suspended.
func (c *Countermeasures) SuspendAccounts(accountIDs []string, reason string) int {
	graph := c.study.Scenario.Platform.Graph
	oauth := c.study.Scenario.Platform.OAuth
	n := 0
	for _, id := range accountIDs {
		acct, err := graph.Account(id)
		if err != nil || acct.Suspended {
			continue
		}
		if err := graph.SetSuspended(id, true); err != nil {
			continue
		}
		oauth.InvalidateAccount(id, reason)
		n++
	}
	if n > 0 {
		c.actions.Add(int64(n), "account-suspend", "suspend")
	}
	return n
}

// ActivePolicies lists the deployed policy names in evaluation order.
func (c *Countermeasures) ActivePolicies() []string {
	return c.chain().Names()
}
