package core

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func smallStudy(t *testing.T, networks ...string) *Study {
	t.Helper()
	if networks == nil {
		networks = []string{"mg-likers.com"}
	}
	s, err := NewStudy(workload.Options{
		Scale:      5000,
		MinMembers: 60,
		Networks:   networks,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStudyInfiltratesNetworks(t *testing.T) {
	s := smallStudy(t, "mg-likers.com", "fast-liker.com")
	if len(s.Honeypots) != 2 || len(s.Estimators) != 2 {
		t.Fatalf("honeypots = %d, estimators = %d", len(s.Honeypots), len(s.Estimators))
	}
	for name, hp := range s.Honeypots {
		ni, ok := s.Scenario.FindNetwork(name)
		if !ok {
			t.Fatalf("network %q missing", name)
		}
		if !ni.Net.Pool().Contains(hp.Account.ID) {
			t.Fatalf("honeypot for %q not in pool", name)
		}
	}
}

func TestMilkNetworkUpdatesEstimator(t *testing.T) {
	s := smallStudy(t)
	res := s.MilkNetwork("mg-likers.com")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Delivered == 0 || len(res.Likers) != res.Delivered {
		t.Fatalf("result = %+v", res)
	}
	est := s.Estimators["mg-likers.com"]
	if est.PostsSubmitted() != 1 || est.TotalLikes() != res.Delivered {
		t.Fatalf("estimator = %d posts / %d likes", est.PostsSubmitted(), est.TotalLikes())
	}
	// Milked accounts are queued with the countermeasure pipeline.
	if got := s.Countermeasures().PendingMilked(); got != res.Delivered {
		t.Fatalf("PendingMilked = %d, want %d", got, res.Delivered)
	}
}

func TestMilkUnknownNetwork(t *testing.T) {
	s := smallStudy(t)
	if res := s.MilkNetwork("nope.example"); res.Err == nil {
		t.Fatal("milking unknown network succeeded")
	}
}

func TestMilkAllRounds(t *testing.T) {
	s := smallStudy(t, "mg-likers.com", "fast-liker.com")
	results := s.MilkAll(3)
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("round failed: %+v", r)
		}
	}
}

func TestInvalidationSweepKillsPool(t *testing.T) {
	s := smallStudy(t)
	// Milk enough rounds that nearly the whole pool is observed.
	for i := 0; i < 10; i++ {
		if res := s.MilkNetwork("mg-likers.com"); res.Err != nil {
			t.Fatal(res.Err)
		}
		s.AdvanceHour()
	}
	cm := s.Countermeasures()
	swept := cm.InvalidateMilkedAll()
	if swept == 0 {
		t.Fatal("sweep revoked nothing")
	}
	if cm.RevokedMilked() != swept {
		t.Fatalf("RevokedMilked = %d, want %d", cm.RevokedMilked(), swept)
	}
	// The next milking round collapses: dead tokens cannot like.
	s.AdvanceHour()
	res := s.MilkNetwork("mg-likers.com")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Delivered > 5 {
		t.Fatalf("delivered %d after full sweep", res.Delivered)
	}
}

func TestInvalidateFractionPartial(t *testing.T) {
	s := smallStudy(t)
	for i := 0; i < 5; i++ {
		_ = s.MilkNetwork("mg-likers.com")
		s.AdvanceHour()
	}
	cm := s.Countermeasures()
	pendingBefore := cm.PendingMilked()
	swept := cm.InvalidateMilkedFraction(0.5)
	if swept == 0 || swept > pendingBefore {
		t.Fatalf("swept = %d of %d", swept, pendingBefore)
	}
	if got := cm.PendingMilked(); got != pendingBefore-swept {
		t.Fatalf("pending = %d", got)
	}
}

func TestTokenRateLimitDeployAndAdjust(t *testing.T) {
	s := smallStudy(t)
	cm := s.Countermeasures()
	cm.SetTokenRateLimit(1000, 24*time.Hour)
	if got := cm.ActivePolicies(); len(got) != 1 || got[0] != "token-rate-limit" {
		t.Fatalf("policies = %v", got)
	}
	// Adjusting must not add a second policy.
	cm.SetTokenRateLimit(8, 24*time.Hour)
	if got := cm.ActivePolicies(); len(got) != 1 {
		t.Fatalf("policies after adjust = %v", got)
	}
}

func TestClusteringSweepHarmless(t *testing.T) {
	// The evasion of Sec. 6.3 requires the token pool to dwarf the
	// per-request quota (295K members vs 350 likes for hublaa.me), so
	// each request draws an essentially disjoint random subset. Preserve
	// that ratio: fast-liker.com at scale 2 keeps 417 members against a
	// quota of 44.
	s, err := NewStudy(workload.Options{
		Scale:      2,
		MinMembers: 60,
		Networks:   []string{"fast-liker.com"},
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm := s.Countermeasures()
	trap := cm.DeployClustering(time.Minute, 0.5, 2, 5)
	for i := 0; i < 5; i++ {
		if res := s.MilkNetwork("fast-liker.com"); res.Err != nil {
			t.Fatal(res.Err)
		}
		s.AdvanceHour()
	}
	if trap.GroupCount() == 0 {
		t.Fatal("tap recorded nothing")
	}
	if n := cm.RunClusteringSweep(); n != 0 {
		t.Fatalf("clustering sweep actioned %d accounts", n)
	}
}

func TestClusteringCatchesDegenerateSmallPool(t *testing.T) {
	// Control for the test above: when the pool barely exceeds the quota,
	// every request reuses the same accounts in lockstep and SynchroTrap
	// *does* fire — the behaviour collusion networks avoid by keeping
	// giant pools.
	s := smallStudy(t) // 60 members vs quota 247: full-pool lockstep
	cm := s.Countermeasures()
	cm.DeployClustering(time.Minute, 0.5, 2, 5)
	for i := 0; i < 5; i++ {
		if res := s.MilkNetwork("mg-likers.com"); res.Err != nil {
			t.Fatal(res.Err)
		}
		s.AdvanceHour()
	}
	if n := cm.RunClusteringSweep(); n == 0 {
		t.Fatal("lockstep small-pool activity evaded clustering")
	}
}

func TestClusteringSweepWithoutDeploy(t *testing.T) {
	s := smallStudy(t)
	if n := s.Countermeasures().RunClusteringSweep(); n != 0 {
		t.Fatalf("sweep without deployment actioned %d", n)
	}
}

func TestIPRateLimitsStopNetwork(t *testing.T) {
	s := smallStudy(t)
	base := s.MilkNetwork("mg-likers.com")
	if base.Err != nil || base.Delivered == 0 {
		t.Fatalf("baseline = %+v", base)
	}
	// mg-likers delivers through ~3 IPs; a tiny per-IP cap kills it.
	s.Countermeasures().DeployIPRateLimits(2, 10)
	s.AdvanceHour()
	res := s.MilkNetwork("mg-likers.com")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Delivered > 10 {
		t.Fatalf("delivered %d despite IP caps", res.Delivered)
	}
}

func TestASBlockStopsBulletproofNetwork(t *testing.T) {
	s, err := NewStudy(workload.Options{
		Scale:      5000,
		MinMembers: 60,
		Networks:   []string{"hublaa.me"},
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := s.MilkNetwork("hublaa.me")
	if base.Err != nil || base.Delivered == 0 {
		t.Fatalf("baseline = %+v", base)
	}
	s.Countermeasures().BlockASes(workload.ASBulletproofA, workload.ASBulletproofB)
	s.AdvanceHour()
	res := s.MilkNetwork("hublaa.me")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d despite AS block", res.Delivered)
	}
}

func TestAdvanceHelpers(t *testing.T) {
	s := smallStudy(t)
	start := s.Clock().Now()
	s.AdvanceHour()
	s.AdvanceDay()
	want := start.Add(25 * time.Hour)
	if got := s.Clock().Now(); !got.Equal(want) {
		t.Fatalf("clock = %v, want %v", got, want)
	}
}
