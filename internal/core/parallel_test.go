package core

// Tests for the parallel milking driver. Two properties matter:
//
//  1. Equivalence — per network, a parallel campaign delivers the same
//     likes, observes the same likers, and feeds the estimators the same
//     evidence as the sequential MilkAll. Post IDs are minted from a
//     global counter so their numeric values depend on interleaving, but
//     every per-network observable must match.
//  2. Race cleanliness — many workers hammering the sharded store through
//     real honeypots must survive `go test -race` (the CI workflow runs
//     this package with the detector on).

import (
	"sort"
	"testing"

	"repro/internal/workload"
)

var parallelNets = []string{
	"mg-likers.com", "fast-liker.com", "djliker.com", "monkeyliker.com",
}

func parallelStudy(t *testing.T, seed int64) *Study {
	t.Helper()
	s, err := NewStudy(workload.Options{
		Scale:      5000,
		MinMembers: 60,
		Networks:   parallelNets,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// byNetwork folds milk results into per-network delivery totals and the
// union of likers seen, which are the interleaving-independent
// observables of a campaign.
func byNetwork(results []MilkResult) (delivered map[string]int, likers map[string][]string) {
	delivered = make(map[string]int)
	likers = make(map[string][]string)
	for _, r := range results {
		delivered[r.Network] += r.Delivered
		likers[r.Network] = append(likers[r.Network], r.Likers...)
	}
	for _, l := range likers {
		sort.Strings(l)
	}
	return delivered, likers
}

func TestMilkAllParallelMatchesSequential(t *testing.T) {
	const rounds = 3
	seq := parallelStudy(t, 41)
	par := parallelStudy(t, 41)

	seqRes := seq.MilkAll(rounds)
	parRes := par.MilkAllParallel(rounds, 4)

	if len(seqRes) != len(parRes) {
		t.Fatalf("result count: sequential %d, parallel %d", len(seqRes), len(parRes))
	}
	// Round structure: the i-th result of each round targets the same
	// network in both drivers.
	for i := range seqRes {
		if seqRes[i].Network != parRes[i].Network {
			t.Fatalf("result %d network: sequential %q, parallel %q", i, seqRes[i].Network, parRes[i].Network)
		}
		if parRes[i].Err != nil {
			t.Fatalf("parallel round failed: %+v", parRes[i])
		}
		if seqRes[i].Err != nil {
			t.Fatalf("sequential round failed: %+v", seqRes[i])
		}
	}
	seqDel, seqLikers := byNetwork(seqRes)
	parDel, parLikers := byNetwork(parRes)
	for _, net := range parallelNets {
		if seqDel[net] != parDel[net] {
			t.Errorf("%s delivered: sequential %d, parallel %d", net, seqDel[net], parDel[net])
		}
		a, b := seqLikers[net], parLikers[net]
		if len(a) != len(b) {
			t.Errorf("%s likers: sequential %d, parallel %d", net, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s liker set diverges at %d: %q vs %q", net, i, a[i], b[i])
				break
			}
		}
		// The estimators saw the same evidence, so the paper's membership
		// estimates must agree exactly.
		se, pe := seq.Estimators[net], par.Estimators[net]
		if se.PostsSubmitted() != pe.PostsSubmitted() || se.TotalLikes() != pe.TotalLikes() {
			t.Errorf("%s estimator fed differently: %d/%d posts, %d/%d likes",
				net, se.PostsSubmitted(), pe.PostsSubmitted(), se.TotalLikes(), pe.TotalLikes())
		}
		if sm, pm := se.MembershipEstimate(), pe.MembershipEstimate(); sm != pm {
			t.Errorf("%s membership estimate: sequential %v, parallel %v", net, sm, pm)
		}
	}
	// The invalidation backlog is a set of accounts, identical either way.
	if sp, pp := seq.Countermeasures().PendingMilked(), par.Countermeasures().PendingMilked(); sp != pp {
		t.Errorf("PendingMilked: sequential %d, parallel %d", sp, pp)
	}
}

func TestMilkAllParallelWorkerClamp(t *testing.T) {
	s := parallelStudy(t, 7)
	// workers <= 0 falls back to GOMAXPROCS, workers > networks is
	// clamped; both must still produce one result per network per round.
	for _, workers := range []int{0, -3, 1, 64} {
		res := s.MilkAllParallel(1, workers)
		if len(res) != len(parallelNets) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(parallelNets))
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d: %+v", workers, r)
			}
		}
	}
}

func TestMilkAllParallelStress(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	s := parallelStudy(t, 99)
	// Deploy the full countermeasure chain first so the parallel rounds
	// also exercise the policy middleware and invalidator under
	// concurrency, then interleave invalidation sweeps between bursts.
	s.Countermeasures().SetTokenRateLimit(1000, 24*60*60*1e9)
	res := s.MilkAllParallel(rounds, len(parallelNets))
	if len(res) != rounds*len(parallelNets) {
		t.Fatalf("results = %d, want %d", len(res), rounds*len(parallelNets))
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("round failed: %+v", r)
		}
		if r.Delivered == 0 {
			t.Fatalf("network %s delivered nothing", r.Network)
		}
	}
	s.Countermeasures().InvalidateMilkedAll()
	// Honeypots whose tokens were swept must recover via the rejoin path
	// even when every network retries at once.
	res = s.MilkAllParallel(1, len(parallelNets))
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("post-sweep round failed: %+v", r)
		}
	}
	graph := s.Scenario.Platform.Graph
	if acq, _ := graph.Contention().Totals(); acq == 0 {
		t.Fatal("sharded store recorded no lock acquisitions during milking")
	}
}
