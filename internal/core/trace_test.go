package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/redact"
)

// TestMilkingRoundTraceJSONL runs one milking round and checks the JSONL
// trace export tells the whole story: a single trace ID connects the
// delivery burst to a Graph API like and its oauth-validation, policy, and
// shard sub-spans — and no span anywhere carries an unredacted credential.
func TestMilkingRoundTraceJSONL(t *testing.T) {
	s := smallStudy(t)
	res := s.MilkNetwork("mg-likers.com")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Delivered == 0 {
		t.Fatal("round delivered no likes")
	}

	var buf bytes.Buffer
	if err := s.Observer().T().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var all []obs.SpanData
	byTrace := map[string]map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var d obs.SpanData
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		all = append(all, d)
		names := byTrace[d.Trace]
		if names == nil {
			names = map[string]bool{}
			byTrace[d.Trace] = names
		}
		names[d.Name] = true
	}
	if len(all) == 0 {
		t.Fatal("trace export is empty")
	}

	// One trace must span the full pipeline: collusion delivery →
	// batched Graph API like → token validation, defense chain, shard
	// write. Delivery batches by default, so the burst's traced chunk
	// roots at graphapi.like_batch rather than a per-action graphapi.like.
	want := []string{"collusion.deliver", "graphapi.like_batch", "oauth.validate", "defense.chain", "shard.apply"}
	complete := false
	for _, names := range byTrace {
		ok := true
		for _, w := range want {
			if !names[w] {
				ok = false
				break
			}
		}
		if ok {
			complete = true
			break
		}
	}
	if !complete {
		t.Errorf("no single trace contains all of %v; traces seen: %v", want, byTrace)
	}

	// The round itself gets a span labelled with the network.
	round := false
	for _, d := range all {
		if d.Name != "milk.round" {
			continue
		}
		for _, a := range d.Attrs {
			if a.Key == "network" && a.Value == "mg-likers.com" {
				round = true
			}
		}
	}
	if !round {
		t.Error("no milk.round span labelled network=mg-likers.com")
	}

	// Credential hygiene: nothing in the export validates as a live
	// token, and token-keyed attributes are visibly masked.
	oauth := s.Scenario.Platform.API.OAuth()
	leak := func(v string) {
		t.Helper()
		if _, err := oauth.Validate(v); err == nil {
			t.Errorf("trace leaks a live credential %q", redact.Token(v))
		}
	}
	for _, d := range all {
		for _, a := range d.Attrs {
			leak(a.Value)
			if a.Key == "token" && !strings.HasSuffix(a.Value, "***") {
				t.Errorf("token attr %q is not redacted", a.Value)
			}
		}
		for _, e := range d.Events {
			for _, a := range e.Attrs {
				leak(a.Value)
			}
		}
	}
}

// TestDefenseActionsInMetrics deploys countermeasures and checks each one
// lands in defense_actions_total, alongside the delivery and shard
// contention families the round produced.
func TestDefenseActionsInMetrics(t *testing.T) {
	s := smallStudy(t)
	if res := s.MilkNetwork("mg-likers.com"); res.Err != nil {
		t.Fatal(res.Err)
	}
	cm := s.Countermeasures()
	cm.SetTokenRateLimit(10, time.Hour)
	cm.InvalidateMilkedAll()

	var b strings.Builder
	if err := s.Observer().M().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`defense_actions_total{countermeasure="token-rate-limit",action="deploy"} 1`,
		`defense_actions_total{countermeasure="token-invalidation",action="sweep"}`,
		`collusion_likes_delivered_total{network="mg-likers.com"}`,
		`graphapi_requests_total{platform="facebook",op="like",code="0"}`,
		`oauth_tokens_issued_total`,
		`socialgraph_shard_lock_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
