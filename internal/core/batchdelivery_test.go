package core

// End-to-end proof that batched delivery is defense-transparent. The
// batched pipeline coalesces only the store write: OAuth validation,
// the token/IP rate limiters, and SynchroTrap's aggregation tap all
// still run once per like, so with the full countermeasure chain
// deployed a batched campaign and a per-call campaign from the same
// seed must agree on every defense observable — the Figure 5 semantics
// may not move.
//
// Two grades of equivalence:
//
//   - DeliveryWorkers=1 fires chunks in order, so evaluation order is
//     identical to per-call and every observable — including *which*
//     likes a saturated limiter denies — must match bit for bit.
//   - With concurrent chunks (the default), interleaving decides which
//     specific likes cross a limiter's threshold, so liker identity may
//     differ; the aggregate counts (delivered, attempted, per-policy
//     denials, failure codes, clustering verdicts) still may not.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

func deliveryStudy(t *testing.T, batch, workers int) *Study {
	t.Helper()
	s, err := NewStudy(workload.Options{
		Scale:             5000,
		MinMembers:        60,
		Networks:          parallelNets,
		Seed:              41,
		DeliveryBatchSize: batch,
		DeliveryWorkers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// milkDefended deploys the full countermeasure chain and runs the
// campaign, failing on any round error.
func milkDefended(t *testing.T, s *Study, rounds int) []MilkResult {
	t.Helper()
	cm := s.Countermeasures()
	// Tight enough that some networks hit every limiter: the runs must
	// produce real denials, not just compare zeros.
	cm.SetTokenRateLimit(30, 24*time.Hour)
	cm.DeployIPRateLimits(120, 600)
	cm.DeployClustering(time.Minute, 0.5, 2, 5)
	var results []MilkResult
	for r := 0; r < rounds; r++ {
		for _, res := range s.MilkAll(1) {
			if res.Err != nil {
				t.Fatalf("round failed: %+v", res)
			}
			results = append(results, res)
		}
		s.AdvanceHour()
	}
	return results
}

// compareDefenses checks the order-independent defense observables.
func compareDefenses(t *testing.T, perCall, batched *Study, pcRes, bRes []MilkResult) {
	t.Helper()
	pcDel, _ := byNetwork(pcRes)
	bDel, _ := byNetwork(bRes)
	for _, net := range parallelNets {
		if pcDel[net] != bDel[net] {
			t.Errorf("%s delivered under countermeasures: per-call %d, batched %d", net, pcDel[net], bDel[net])
		}
		pcNet, ok1 := perCall.Scenario.FindNetwork(net)
		bNet, ok2 := batched.Scenario.FindNetwork(net)
		if !ok1 || !ok2 {
			t.Fatalf("network %s missing from scenario", net)
		}
		ps, bs := pcNet.Net.Stats(), bNet.Net.Stats()
		if ps.LikesAttempted != bs.LikesAttempted {
			t.Errorf("%s LikesAttempted: per-call %d, batched %d", net, ps.LikesAttempted, bs.LikesAttempted)
		}
		if ps.LikesDelivered != bs.LikesDelivered {
			t.Errorf("%s LikesDelivered: per-call %d, batched %d", net, ps.LikesDelivered, bs.LikesDelivered)
		}
		if ps.TokensDropped != bs.TokensDropped {
			t.Errorf("%s TokensDropped: per-call %d, batched %d", net, ps.TokensDropped, bs.TokensDropped)
		}
		if !reflect.DeepEqual(ps.FailuresByCode, bs.FailuresByCode) {
			t.Errorf("%s failure-code histogram: per-call %v, batched %v", net, ps.FailuresByCode, bs.FailuresByCode)
		}
	}

	// The defense chain's per-policy denial counters are the headline
	// invariant: batching may not move a single denial.
	pcDen := perCall.Scenario.Platform.Chain().Denials()
	bDen := batched.Scenario.Platform.Chain().Denials()
	if !reflect.DeepEqual(pcDen, bDen) {
		t.Errorf("defense-chain denials diverge: per-call %v, batched %v", pcDen, bDen)
	}
	if len(bDen) == 0 {
		t.Error("countermeasures produced no denials; the equivalence check compared nothing")
	}

	// SynchroTrap saw per-action (account, IP, time) tuples either way, so
	// the clustering sweep must action the same number of accounts.
	if pn, bn := perCall.Countermeasures().RunClusteringSweep(), batched.Countermeasures().RunClusteringSweep(); pn != bn {
		t.Errorf("clustering sweep: per-call actioned %d, batched %d", pn, bn)
	}
}

func TestBatchedDeliveryDefenseEquivalenceSequentialChunks(t *testing.T) {
	const rounds = 4
	perCall := deliveryStudy(t, -1, 1)
	batched := deliveryStudy(t, 0, 1)
	pcRes := milkDefended(t, perCall, rounds)
	bRes := milkDefended(t, batched, rounds)

	// Chunks fire in order, so this grade also pins liker identity: the
	// same likes must survive the limiters in both modes.
	_, pcLikers := byNetwork(pcRes)
	_, bLikers := byNetwork(bRes)
	for _, net := range parallelNets {
		if !reflect.DeepEqual(pcLikers[net], bLikers[net]) {
			t.Errorf("%s liker sets diverge between delivery modes", net)
		}
	}
	compareDefenses(t, perCall, batched, pcRes, bRes)
}

func TestBatchedDeliveryDefenseEquivalenceConcurrentChunks(t *testing.T) {
	const rounds = 4
	perCall := deliveryStudy(t, -1, 0)
	batched := deliveryStudy(t, 0, 0)
	pcRes := milkDefended(t, perCall, rounds)
	bRes := milkDefended(t, batched, rounds)
	compareDefenses(t, perCall, batched, pcRes, bRes)
}
