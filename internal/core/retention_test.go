package core

// End-to-end proof that the retention machinery is defense-transparent
// while the campaign's activity is inside the analytics window: a study
// with a 10-year window swept every round and a study with retention left
// at the infinite default must agree on every observable — delivered
// likes, liker identity, per-network stats, the defense chain's
// per-policy denial counters, and the clustering sweep's verdicts.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

func retentionStudy(t *testing.T, window time.Duration) *Study {
	t.Helper()
	s, err := NewStudy(workload.Options{
		Scale:           5000,
		MinMembers:      60,
		Networks:        parallelNets,
		Seed:            41,
		DeliveryWorkers: 1, // sequential chunks: liker identity is pinned
		RetentionWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRetentionSweepDefenseEquivalence(t *testing.T) {
	const rounds = 4
	base := retentionStudy(t, 0)
	swept := retentionStudy(t, 10*365*24*time.Hour)

	milk := func(s *Study) []MilkResult {
		cm := s.Countermeasures()
		cm.SetTokenRateLimit(30, 24*time.Hour)
		cm.DeployIPRateLimits(120, 600)
		cm.DeployClustering(time.Minute, 0.5, 2, 5)
		var results []MilkResult
		for r := 0; r < rounds; r++ {
			for _, res := range s.MilkAll(1) {
				if res.Err != nil {
					t.Fatalf("round failed: %+v", res)
				}
				results = append(results, res)
			}
			s.AdvanceHour()
			s.SweepRetention() // no-op on base (infinite default window)
		}
		return results
	}
	bRes := milk(base)
	sRes := milk(swept)

	bDel, bLikers := byNetwork(bRes)
	sDel, sLikers := byNetwork(sRes)
	for _, net := range parallelNets {
		if bDel[net] != sDel[net] {
			t.Errorf("%s delivered: base %d, swept %d", net, bDel[net], sDel[net])
		}
		if !reflect.DeepEqual(bLikers[net], sLikers[net]) {
			t.Errorf("%s liker sets diverge under retention sweeps", net)
		}
		bNet, ok1 := base.Scenario.FindNetwork(net)
		sNet, ok2 := swept.Scenario.FindNetwork(net)
		if !ok1 || !ok2 {
			t.Fatalf("network %s missing from scenario", net)
		}
		if bs, ss := bNet.Net.Stats(), sNet.Net.Stats(); !reflect.DeepEqual(bs, ss) {
			t.Errorf("%s stats diverge: base %+v, swept %+v", net, bs, ss)
		}
	}

	bDen := base.Scenario.Platform.Chain().Denials()
	sDen := swept.Scenario.Platform.Chain().Denials()
	if !reflect.DeepEqual(bDen, sDen) {
		t.Errorf("defense-chain denials diverge: base %v, swept %v", bDen, sDen)
	}
	if len(sDen) == 0 {
		t.Error("countermeasures produced no denials; the equivalence check compared nothing")
	}
	if bn, sn := base.Countermeasures().RunClusteringSweep(), swept.Countermeasures().RunClusteringSweep(); bn != sn {
		t.Errorf("clustering sweep: base actioned %d, swept %d", bn, sn)
	}

	// The sweeps genuinely ran on the windowed study and evicted nothing.
	snap := swept.Scenario.Platform.Graph.Retention().Snapshot()
	if snap.Sweeps != rounds {
		t.Fatalf("swept study ran %d sweeps, want %d", snap.Sweeps, rounds)
	}
	if snap.Likes != 0 || snap.Comments != 0 || snap.Activities != 0 {
		t.Fatalf("in-window sweeps evicted: %+v", snap)
	}
	if base.Scenario.Platform.Graph.Retention().Snapshot().Sweeps != 0 {
		t.Fatal("base study's no-op sweeps were counted")
	}
}
