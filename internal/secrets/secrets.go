// Package secrets centralises constant-time credential comparison.
// Early-exit string equality on an app secret or token leaks how many
// leading bytes matched through response timing; every secret check in
// the reproduction goes through Equal, and the secretcompare analyzer
// flags any ==/!= that sneaks back in.
package secrets

import "crypto/subtle"

// Equal reports whether a and b are identical, taking time dependent
// only on their lengths, never on where they first differ.
func Equal(a, b string) bool {
	return subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}
