package secrets

import "testing"

// TestEqualMatchesNaiveComparison proves the constant-time swap changed
// no observable behaviour: Equal agrees with == on every pair,
// including empty strings, prefixes, and case variants.
func TestEqualMatchesNaiveComparison(t *testing.T) {
	vals := []string{
		"",
		"s",
		"secret",
		"Secret",
		"secret ",
		"secretx",
		"secre",
		"a-much-longer-app-secret-0123456789",
		"a-much-longer-app-secret-0123456788",
	}
	for _, a := range vals {
		for _, b := range vals {
			if got, want := Equal(a, b), a == b; got != want {
				t.Errorf("Equal(%q, %q) = %v, want %v", a, b, got, want)
			}
		}
	}
}
