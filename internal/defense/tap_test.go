package defense

import (
	"testing"
	"time"

	"repro/internal/graphapi"
	"repro/internal/oauthsim"
)

func TestSynchroTapRecordsLikes(t *testing.T) {
	trap := NewSynchroTrap(time.Minute, 0.5, 1, 2)
	tap := NewSynchroTap(trap)
	if tap.Name() != "synchrotrap-tap" {
		t.Fatalf("Name = %q", tap.Name())
	}
	req := graphapi.Request{
		Verb:     graphapi.VerbLike,
		ObjectID: "post-1",
		Token:    oauthsim.TokenInfo{AccountID: "acct-1"},
		At:       t0,
	}
	if d := tap.Evaluate(req); !d.Allow {
		t.Fatal("tap denied a request")
	}
	if trap.GroupCount() != 1 {
		t.Fatalf("GroupCount = %d", trap.GroupCount())
	}
	// Non-like verbs are not recorded.
	req.Verb = graphapi.VerbComment
	req.ObjectID = "post-2"
	_ = tap.Evaluate(req)
	if trap.GroupCount() != 1 {
		t.Fatalf("comment recorded: GroupCount = %d", trap.GroupCount())
	}
	if tap.Trap() != trap {
		t.Fatal("Trap() identity")
	}
}

func TestAccountRevokerFunc(t *testing.T) {
	revoked := map[string]string{}
	rv := AccountRevokerFunc(func(id, reason string) bool {
		if _, ok := revoked[id]; ok {
			return false
		}
		revoked[id] = reason
		return true
	})
	inv := NewInvalidator(rv, "milked")
	inv.Submit([]string{"acct-1", "acct-2"})
	if n := inv.InvalidateAll(); n != 2 {
		t.Fatalf("InvalidateAll = %d", n)
	}
	if revoked["acct-1"] != "milked" {
		t.Fatalf("revoked = %v", revoked)
	}
}
