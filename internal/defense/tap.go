package defense

import (
	"repro/internal/graphapi"
)

// SynchroTap is a pass-through policy that feeds every like request into a
// SynchroTrap detector. Deployed on the policy chain it gives the
// clustering pipeline the same (account, object, time) stream Facebook's
// production systems observe; it never denies anything itself — detection
// and enforcement are separate stages, as in Sec. 6.3.
type SynchroTap struct {
	trap *SynchroTrap
}

// NewSynchroTap wraps a detector as a chain policy.
func NewSynchroTap(trap *SynchroTrap) *SynchroTap {
	return &SynchroTap{trap: trap}
}

// Name implements graphapi.Policy.
func (t *SynchroTap) Name() string { return "synchrotrap-tap" }

// Evaluate implements graphapi.Policy.
func (t *SynchroTap) Evaluate(req graphapi.Request) graphapi.Decision {
	if req.Verb == graphapi.VerbLike {
		t.trap.Record(req.Token.AccountID, req.ObjectID, req.At)
	}
	return graphapi.Allowed()
}

// Trap returns the wrapped detector.
func (t *SynchroTap) Trap() *SynchroTrap { return t.trap }

// AccountRevokerFunc adapts a function to the TokenRevoker interface so
// the Invalidator can operate on *account IDs* rather than raw token
// strings — the platform-side view, where a milked account's tokens are
// looked up and revoked in bulk (oauthsim.Server.InvalidateAccount).
type AccountRevokerFunc func(accountID, reason string) bool

// Invalidate implements TokenRevoker.
func (f AccountRevokerFunc) Invalidate(accountID, reason string) bool {
	return f(accountID, reason)
}
