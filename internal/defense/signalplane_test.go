package defense

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/graphapi"
	"repro/internal/oauthsim"
)

// feedCross replays the same cross-platform burst pattern into a plane's
// taps for platforms "a" and "b": nIPs IPs each like nPerPlatform objects
// on each platform, every IP hitting the same objects in the same
// windows (maximal synchronization).
func feedCross(p *SignalPlane, nIPs, nPerPlatform int) {
	start := time.Unix(1700000000, 0)
	for _, plat := range []string{"a", "b"} {
		tap := p.TapFor(plat)
		for obj := 0; obj < nPerPlatform; obj++ {
			at := start.Add(time.Duration(obj) * time.Hour)
			for ip := 0; ip < nIPs; ip++ {
				tap.Evaluate(graphapi.Request{
					Verb:     graphapi.VerbLike,
					ObjectID: fmt.Sprintf("%s-post-%d", plat, obj),
					SourceIP: fmt.Sprintf("10.0.0.%d", ip),
					At:       at,
					Token:    oauthsim.TokenInfo{AccountID: fmt.Sprintf("acct-%s-%d", plat, ip)},
				})
			}
		}
	}
}

func newTestTrap() *SynchroTrap {
	// MinShared 8 with MinActions = MinShared+2: six groups per platform
	// stay invisible to a siloed detector, twelve pooled groups do not.
	return NewSynchroTrap(10*time.Minute, 0.5, 8, 3)
}

func TestSignalPlaneSiloedMissesCrossPlatform(t *testing.T) {
	p := NewSignalPlane(SignalSiloed, newTestTrap)
	feedCross(p, 5, 6)
	if got := p.Detect(); len(got) != 0 {
		t.Fatalf("siloed plane detected %d clusters from 6 groups/platform; want 0", len(got))
	}
}

func TestSignalPlaneSharedCatchesCrossPlatform(t *testing.T) {
	p := NewSignalPlane(SignalShared, newTestTrap)
	feedCross(p, 5, 6)
	got := p.Detect()
	if len(got) != 1 {
		t.Fatalf("shared plane detected %d clusters; want 1", len(got))
	}
	if len(got[0].Accounts) != 5 {
		t.Fatalf("cluster has %d IPs; want all 5", len(got[0].Accounts))
	}
}

// The shared detector must not merge distinct infrastructures: IPs that
// act on disjoint object sets stay unclustered even in shared mode.
func TestSignalPlaneSharedKeepsUnrelatedIPsApart(t *testing.T) {
	p := NewSignalPlane(SignalShared, newTestTrap)
	feedCross(p, 5, 6)
	tap := p.TapFor("a")
	start := time.Unix(1700000000, 0)
	for obj := 0; obj < 12; obj++ {
		tap.Evaluate(graphapi.Request{
			Verb:     graphapi.VerbLike,
			ObjectID: fmt.Sprintf("lonely-post-%d", obj),
			SourceIP: "192.168.9.9",
			At:       start.Add(time.Duration(obj) * time.Hour),
			Token:    oauthsim.TokenInfo{AccountID: "loner"},
		})
	}
	got := p.Detect()
	if len(got) != 1 {
		t.Fatalf("detected %d clusters; want 1", len(got))
	}
	for _, ip := range got[0].Accounts {
		if ip == "192.168.9.9" {
			t.Fatalf("unrelated IP clustered with the collusion pool")
		}
	}
}

func TestSignalPlaneModeString(t *testing.T) {
	if SignalSiloed.String() != "siloed" || SignalShared.String() != "shared" {
		t.Fatalf("mode labels: %q %q", SignalSiloed, SignalShared)
	}
}

func TestSignalPlaneTapIgnoresNonLikes(t *testing.T) {
	p := NewSignalPlane(SignalShared, newTestTrap)
	tap := p.TapFor("a")
	tap.Evaluate(graphapi.Request{Verb: graphapi.VerbRead, ObjectID: "x", SourceIP: "1.2.3.4", At: time.Unix(0, 0)})
	tap.Evaluate(graphapi.Request{Verb: graphapi.VerbLike, ObjectID: "x", At: time.Unix(0, 0)}) // no IP
	if n := tap.Trap().GroupCount(); n != 0 {
		t.Fatalf("tap recorded %d groups from non-like / IP-less requests; want 0", n)
	}
}
