package defense

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/graphapi"
	"repro/internal/netsim"
	"repro/internal/oauthsim"
	"repro/internal/simclock"
)

var t0 = time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC)

func likeReq(token, ip string, asn netsim.ASN, appID string) graphapi.Request {
	return graphapi.Request{
		Verb:     graphapi.VerbLike,
		ObjectID: "post-1",
		Token:    oauthsim.TokenInfo{Token: token, AccountID: "acct-" + token},
		App:      apps.App{ID: appID},
		SourceIP: ip,
		ASN:      asn,
	}
}

func TestTokenRateLimiterAllowsUnderLimit(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewTokenRateLimiter(clock, 5, time.Hour)
	for i := 0; i < 5; i++ {
		if d := l.Evaluate(likeReq("tok1", "", 0, "app")); !d.Allow {
			t.Fatalf("request %d denied: %+v", i, d)
		}
	}
	d := l.Evaluate(likeReq("tok1", "", 0, "app"))
	if d.Allow {
		t.Fatal("6th request allowed")
	}
	if d.Policy != "token-rate-limit" {
		t.Fatalf("policy = %q", d.Policy)
	}
}

func TestTokenRateLimiterPerToken(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewTokenRateLimiter(clock, 1, time.Hour)
	if d := l.Evaluate(likeReq("a", "", 0, "app")); !d.Allow {
		t.Fatal("first token denied")
	}
	if d := l.Evaluate(likeReq("b", "", 0, "app")); !d.Allow {
		t.Fatal("second token affected by first token's count")
	}
}

func TestTokenRateLimiterWindowSlides(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewTokenRateLimiter(clock, 2, time.Hour)
	_ = l.Evaluate(likeReq("tok", "", 0, "app"))
	_ = l.Evaluate(likeReq("tok", "", 0, "app"))
	if d := l.Evaluate(likeReq("tok", "", 0, "app")); d.Allow {
		t.Fatal("over-limit request allowed")
	}
	clock.Advance(2 * time.Hour)
	if d := l.Evaluate(likeReq("tok", "", 0, "app")); !d.Allow {
		t.Fatalf("request after window denied: %+v", d)
	}
}

func TestTokenRateLimiterIgnoresReads(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewTokenRateLimiter(clock, 0, time.Hour)
	req := likeReq("tok", "", 0, "app")
	req.Verb = graphapi.VerbRead
	if d := l.Evaluate(req); !d.Allow {
		t.Fatal("read denied by write limiter")
	}
}

func TestTokenRateLimiterSetLimit(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewTokenRateLimiter(clock, 100, time.Hour)
	if l.Limit() != 100 {
		t.Fatalf("Limit = %d", l.Limit())
	}
	// The paper's day-12 intervention: reduce by more than an order of
	// magnitude.
	l.SetLimit(8)
	if l.Limit() != 8 {
		t.Fatalf("Limit after SetLimit = %d", l.Limit())
	}
	for i := 0; i < 8; i++ {
		_ = l.Evaluate(likeReq("tok", "", 0, "app"))
	}
	if d := l.Evaluate(likeReq("tok", "", 0, "app")); d.Allow {
		t.Fatal("request beyond reduced limit allowed")
	}
}

func TestIPRateLimiterDailyCap(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewIPRateLimiter(clock, 3, 100)
	for i := 0; i < 3; i++ {
		if d := l.Evaluate(likeReq(fmt.Sprintf("t%d", i), "203.0.113.5", 0, "app")); !d.Allow {
			t.Fatalf("like %d denied", i)
		}
	}
	d := l.Evaluate(likeReq("t9", "203.0.113.5", 0, "app"))
	if d.Allow {
		t.Fatal("4th like from same IP allowed")
	}
	if !strings.Contains(d.Reason, "likes/day") {
		t.Fatalf("reason = %q", d.Reason)
	}
	// A different IP is unaffected.
	if d := l.Evaluate(likeReq("t10", "203.0.113.6", 0, "app")); !d.Allow {
		t.Fatal("different IP denied")
	}
}

func TestIPRateLimiterWeeklyCap(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewIPRateLimiter(clock, 10, 15)
	ip := "198.51.100.9"
	likes := 0
	for day := 0; day < 3; day++ {
		for i := 0; i < 10; i++ {
			if d := l.Evaluate(likeReq(fmt.Sprintf("d%di%d", day, i), ip, 0, "app")); d.Allow {
				likes++
			}
		}
		clock.Advance(25 * time.Hour)
	}
	// Daily cap admits 10/day but the weekly cap of 15 must bind.
	if likes > 15 {
		t.Fatalf("weekly cap leaked: %d likes", likes)
	}
	if likes < 10 {
		t.Fatalf("daily allowance under-delivered: %d likes", likes)
	}
}

func TestIPRateLimiterSkipsNonLikesAndEmptyIP(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	l := NewIPRateLimiter(clock, 0, 0)
	req := likeReq("t", "", 0, "app")
	if d := l.Evaluate(req); !d.Allow {
		t.Fatal("empty IP denied")
	}
	req = likeReq("t", "1.2.3.4", 0, "app")
	req.Verb = graphapi.VerbComment
	if d := l.Evaluate(req); !d.Allow {
		t.Fatal("comment hit like-only IP limiter")
	}
}

func TestASBlocker(t *testing.T) {
	b := NewASBlocker()
	req := likeReq("t", "203.0.113.1", 64500, "htc-sense")
	if d := b.Evaluate(req); !d.Allow {
		t.Fatal("unblocked AS denied")
	}
	b.Block(64500)
	if d := b.Evaluate(req); d.Allow {
		t.Fatal("blocked AS allowed")
	}
	// Scoping to another app exempts this one.
	b.ScopeToApps("other-app")
	if d := b.Evaluate(req); !d.Allow {
		t.Fatal("out-of-scope app denied")
	}
	b.ScopeToApps("htc-sense")
	if d := b.Evaluate(req); d.Allow {
		t.Fatal("in-scope app allowed")
	}
	b.Unblock(64500)
	if d := b.Evaluate(req); !d.Allow {
		t.Fatal("unblocked AS still denied")
	}
}

func TestASBlockerSkipsReadsAndUnknownAS(t *testing.T) {
	b := NewASBlocker()
	b.Block(64500)
	req := likeReq("t", "203.0.113.1", 64500, "app")
	req.Verb = graphapi.VerbRead
	if d := b.Evaluate(req); !d.Allow {
		t.Fatal("read denied by AS blocker")
	}
	req = likeReq("t", "10.0.0.1", 0, "app")
	if d := b.Evaluate(req); !d.Allow {
		t.Fatal("unknown-AS request denied")
	}
}

func TestSlidingWindowTotal(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	w := newSlidingWindow(clock, time.Hour)
	for i := 0; i < 4; i++ {
		w.incr("k")
	}
	if got := w.total("k"); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	clock.Advance(2 * time.Hour)
	if got := w.total("k"); got != 0 {
		t.Fatalf("total after window = %d, want 0", got)
	}
	if got := w.total("other"); got != 0 {
		t.Fatalf("total unknown key = %d", got)
	}
}

func TestSlidingWindowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	newSlidingWindow(simclock.NewSimulated(t0), 0)
}
