package defense

import (
	"sort"
	"sync"
	"time"
)

// SynchroTrap is a temporal-clustering detector in the spirit of Cao et
// al. (CCS 2014), which Facebook deployed and the paper evaluated against
// collusion networks in Sec. 6.3. It flags groups of accounts that act on
// the same objects at around the same time for a sustained period.
//
// Model: each action is bucketed into a (objectID, time-window) group.
// Two accounts are "synchronized" when the Jaccard similarity of their
// group sets meets SimilarityThreshold and they share at least MinShared
// groups. Connected components of synchronized accounts with at least
// MinClusterSize members are reported as clusters.
//
// The paper's negative result reproduces naturally: collusion networks
// pick a different random token subset per target post (so 76% of
// hublaa.me accounts appear in at most one group) and spread each
// account's activity over hours, so pairwise similarity stays below any
// usable threshold.
type SynchroTrap struct {
	// Window is the bucketing granularity for "around the same time".
	Window time.Duration
	// SimilarityThreshold is the minimum Jaccard similarity between two
	// accounts' group sets.
	SimilarityThreshold float64
	// MinShared is the minimum number of co-occurring groups before a pair
	// is even considered (sustained similarity, not one burst).
	MinShared int
	// MinActions is the per-account activity floor: accounts appearing in
	// fewer groups carry too little signal to judge and are skipped, as
	// in SynchroTrap's daily-similarity aggregation over a sustained
	// period. Without this floor, two accounts that each acted twice and
	// happened to co-occur both times would score Jaccard 1.0 by chance.
	MinActions int
	// MinClusterSize is the minimum connected-component size reported.
	MinClusterSize int
	// MaxGroupFanout skips pair enumeration inside pathologically large
	// groups to bound cost; 0 means no bound.
	MaxGroupFanout int

	mu sync.Mutex
	// groups maps group key -> member accounts (set).
	groups map[groupKey]map[string]bool
	// accountGroups maps account -> number of groups it appears in.
	accountGroups map[string]int
}

type groupKey struct {
	object string
	bucket int64
}

// NewSynchroTrap returns a detector with the given parameters.
func NewSynchroTrap(window time.Duration, simThreshold float64, minShared, minClusterSize int) *SynchroTrap {
	minActions := minShared + 2
	return &SynchroTrap{
		Window:              window,
		SimilarityThreshold: simThreshold,
		MinShared:           minShared,
		MinActions:          minActions,
		MinClusterSize:      minClusterSize,
		MaxGroupFanout:      2000,
		groups:              make(map[groupKey]map[string]bool),
		accountGroups:       make(map[string]int),
	}
}

// Record ingests one action (accountID acted on objectID at time t).
func (s *SynchroTrap) Record(accountID, objectID string, t time.Time) {
	key := groupKey{object: objectID, bucket: t.UnixNano() / int64(s.Window)}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[key]
	if g == nil {
		g = make(map[string]bool)
		s.groups[key] = g
	}
	if !g[accountID] {
		g[accountID] = true
		s.accountGroups[accountID]++
	}
}

// Cluster is one detected group of synchronized accounts.
type Cluster struct {
	Accounts []string
}

// Detect runs the clustering over everything recorded so far and returns
// the flagged clusters, largest first.
func (s *SynchroTrap) Detect() []Cluster {
	s.mu.Lock()
	// Snapshot group membership.
	memberships := make([][]string, 0, len(s.groups))
	for _, g := range s.groups {
		if s.MaxGroupFanout > 0 && len(g) > s.MaxGroupFanout {
			continue
		}
		members := make([]string, 0, len(g))
		for a := range g {
			members = append(members, a)
		}
		sort.Strings(members)
		memberships = append(memberships, members)
	}
	accountGroups := make(map[string]int, len(s.accountGroups))
	for a, n := range s.accountGroups {
		accountGroups[a] = n
	}
	s.mu.Unlock()

	// Count shared groups per account pair.
	type pair struct{ a, b string }
	shared := make(map[pair]int)
	for _, members := range memberships {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				shared[pair{members[i], members[j]}]++
			}
		}
	}

	// Union-find over synchronized pairs.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for p, n := range shared {
		if n < s.MinShared {
			continue
		}
		if accountGroups[p.a] < s.MinActions || accountGroups[p.b] < s.MinActions {
			continue
		}
		unionSize := accountGroups[p.a] + accountGroups[p.b] - n
		if unionSize <= 0 {
			continue
		}
		if float64(n)/float64(unionSize) >= s.SimilarityThreshold {
			union(p.a, p.b)
		}
	}

	comps := make(map[string][]string)
	for a := range parent {
		root := find(a)
		comps[root] = append(comps[root], a)
	}
	var out []Cluster
	for _, members := range comps {
		if len(members) >= s.MinClusterSize {
			sort.Strings(members)
			out = append(out, Cluster{Accounts: members})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Accounts) != len(out[j].Accounts) {
			return len(out[i].Accounts) > len(out[j].Accounts)
		}
		return out[i].Accounts[0] < out[j].Accounts[0]
	})
	return out
}

// Reset discards all recorded actions.
func (s *SynchroTrap) Reset() {
	s.mu.Lock()
	s.groups = make(map[groupKey]map[string]bool)
	s.accountGroups = make(map[string]int)
	s.mu.Unlock()
}

// GroupCount reports how many (object, window) groups have been recorded;
// exposed for tests and diagnostics.
func (s *SynchroTrap) GroupCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.groups)
}
