package defense

import (
	"fmt"
	"testing"

	"repro/internal/socialgraph"
)

func TestPurgeLikesRemovesOnlyTargets(t *testing.T) {
	s := socialgraph.New()
	author := s.CreateAccount("author", "IN", t0)
	bot1 := s.CreateAccount("bot1", "IN", t0)
	bot2 := s.CreateAccount("bot2", "IN", t0)
	legit := s.CreateAccount("legit", "IN", t0)
	var posts []socialgraph.Post
	for i := 0; i < 3; i++ {
		p, err := s.CreatePost(author.ID, fmt.Sprintf("post %d", i), socialgraph.WriteMeta{At: t0})
		if err != nil {
			t.Fatal(err)
		}
		posts = append(posts, p)
		for _, liker := range []string{bot1.ID, bot2.ID, legit.ID} {
			if err := s.AddLike(liker, p.ID, socialgraph.WriteMeta{At: t0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	removed := PurgeLikes(s, []string{bot1.ID, bot2.ID})
	if removed != 6 {
		t.Fatalf("removed = %d, want 6", removed)
	}
	for _, p := range posts {
		likes := s.Likes(p.ID)
		if len(likes) != 1 || likes[0].AccountID != legit.ID {
			t.Fatalf("post %s likes after purge: %+v", p.ID, likes)
		}
	}
	// Idempotent: a second purge removes nothing.
	if again := PurgeLikes(s, []string{bot1.ID, bot2.ID}); again != 0 {
		t.Fatalf("second purge removed %d", again)
	}
	// Forensic record survives.
	if len(s.ActivityLog(bot1.ID)) != 3 {
		t.Fatalf("activity log truncated: %d", len(s.ActivityLog(bot1.ID)))
	}
}

func TestPurgeLikesReport(t *testing.T) {
	s := socialgraph.New()
	author := s.CreateAccount("author", "IN", t0)
	bot := s.CreateAccount("bot", "IN", t0)
	p1, _ := s.CreatePost(author.ID, "a", socialgraph.WriteMeta{At: t0})
	p2, _ := s.CreatePost(author.ID, "b", socialgraph.WriteMeta{At: t0})
	_ = s.AddLike(bot.ID, p1.ID, socialgraph.WriteMeta{At: t0})
	_ = s.AddLike(bot.ID, p2.ID, socialgraph.WriteMeta{At: t0})
	r := PurgeLikesReport(s, []string{bot.ID, "ghost-account"})
	if r.AccountsProcessed != 2 || r.LikesRemoved != 2 || r.ObjectsTouched != 2 {
		t.Fatalf("report = %+v", r)
	}
}

func TestPurgeEmptyInput(t *testing.T) {
	s := socialgraph.New()
	if got := PurgeLikes(s, nil); got != 0 {
		t.Fatalf("purge of nothing removed %d", got)
	}
}
