package defense

import (
	"math/rand"
	"sync"
)

// TokenRevoker is the slice of the authorization server the Invalidator
// needs; *oauthsim.Server satisfies it.
type TokenRevoker interface {
	Invalidate(token, reason string) bool
}

// Invalidator implements the honeypot-fed token invalidation of Sec. 6.2.
// Honeypots submit the tokens they milk; the operator then invalidates
// them — first 50% of the backlog, then all of it, then fractions of the
// daily inflow — matching the escalation schedule of Figure 5.
type Invalidator struct {
	revoker TokenRevoker
	reason  string

	mu sync.Mutex
	// pending holds milked tokens not yet invalidated, in submission order
	// with duplicates removed. Deduplication is against the *pending*
	// backlog only: a key swept earlier may be resubmitted, because when
	// the Invalidator is keyed by account IDs a returning member mints a
	// fresh token that deserves a fresh sweep (Sec. 6.2's daily
	// invalidation of newly observed tokens).
	pending []string
	seen    map[string]bool
	revoked int
}

// NewInvalidator returns an Invalidator feeding the given revoker. reason
// is recorded on every invalidated token.
func NewInvalidator(revoker TokenRevoker, reason string) *Invalidator {
	return &Invalidator{
		revoker: revoker,
		reason:  reason,
		seen:    make(map[string]bool),
	}
}

// Submit queues milked tokens. Tokens already seen (submitted or revoked)
// are ignored. It returns the number of newly queued tokens.
func (v *Invalidator) Submit(tokens []string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range tokens {
		if t == "" || v.seen[t] {
			continue
		}
		v.seen[t] = true
		v.pending = append(v.pending, t)
		n++
	}
	return n
}

// InvalidateFraction revokes the given fraction (0..1] of the pending
// backlog, sampled uniformly without replacement, and returns how many
// tokens were revoked. The paper first invalidated a random 50% to avoid
// tipping off the collusion networks.
func (v *Invalidator) InvalidateFraction(fraction float64, rng *rand.Rand) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if fraction <= 0 || len(v.pending) == 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	k := int(float64(len(v.pending)) * fraction)
	if fraction == 1 {
		k = len(v.pending)
	}
	if k == 0 {
		k = 1
	}
	rng.Shuffle(len(v.pending), func(i, j int) {
		v.pending[i], v.pending[j] = v.pending[j], v.pending[i]
	})
	chosen := v.pending[:k]
	rest := append([]string(nil), v.pending[k:]...)
	n := 0
	for _, t := range chosen {
		delete(v.seen, t)
		if v.revoker.Invalidate(t, v.reason) {
			n++
		}
	}
	v.pending = rest
	v.revoked += n
	return n
}

// InvalidateAll revokes the entire backlog and returns how many tokens
// were revoked.
func (v *Invalidator) InvalidateAll() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.pending {
		delete(v.seen, t)
		if v.revoker.Invalidate(t, v.reason) {
			n++
		}
	}
	v.pending = v.pending[:0]
	v.revoked += n
	return n
}

// PendingCount reports the backlog size.
func (v *Invalidator) PendingCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.pending)
}

// RevokedCount reports how many tokens this Invalidator has revoked.
func (v *Invalidator) RevokedCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.revoked
}
