package defense

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// fakeRevoker records invalidations.
type fakeRevoker struct {
	mu      sync.Mutex
	revoked map[string]string
}

func newFakeRevoker() *fakeRevoker {
	return &fakeRevoker{revoked: make(map[string]string)}
}

func (f *fakeRevoker) Invalidate(token, reason string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.revoked[token]; ok {
		return false
	}
	f.revoked[token] = reason
	return true
}

func tokens(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tok-%d", i)
	}
	return out
}

func TestInvalidatorSubmitDedupes(t *testing.T) {
	v := NewInvalidator(newFakeRevoker(), "honeypot")
	if n := v.Submit(tokens(10)); n != 10 {
		t.Fatalf("Submit = %d, want 10", n)
	}
	if n := v.Submit(tokens(10)); n != 0 {
		t.Fatalf("duplicate Submit = %d, want 0", n)
	}
	if n := v.Submit([]string{"", "tok-5", "fresh"}); n != 1 {
		t.Fatalf("mixed Submit = %d, want 1", n)
	}
	if v.PendingCount() != 11 {
		t.Fatalf("PendingCount = %d, want 11", v.PendingCount())
	}
}

func TestInvalidateAll(t *testing.T) {
	r := newFakeRevoker()
	v := NewInvalidator(r, "sweep")
	v.Submit(tokens(20))
	if n := v.InvalidateAll(); n != 20 {
		t.Fatalf("InvalidateAll = %d, want 20", n)
	}
	if v.PendingCount() != 0 {
		t.Fatalf("PendingCount = %d", v.PendingCount())
	}
	if v.RevokedCount() != 20 {
		t.Fatalf("RevokedCount = %d", v.RevokedCount())
	}
	if r.revoked["tok-3"] != "sweep" {
		t.Fatalf("reason = %q", r.revoked["tok-3"])
	}
	if n := v.InvalidateAll(); n != 0 {
		t.Fatalf("second InvalidateAll = %d", n)
	}
}

func TestInvalidateFractionHalf(t *testing.T) {
	r := newFakeRevoker()
	v := NewInvalidator(r, "half")
	v.Submit(tokens(100))
	rng := rand.New(rand.NewSource(7))
	if n := v.InvalidateFraction(0.5, rng); n != 50 {
		t.Fatalf("InvalidateFraction(0.5) = %d, want 50", n)
	}
	if v.PendingCount() != 50 {
		t.Fatalf("PendingCount = %d, want 50", v.PendingCount())
	}
	// The rest remain revocable.
	if n := v.InvalidateAll(); n != 50 {
		t.Fatalf("InvalidateAll of remainder = %d, want 50", n)
	}
}

func TestInvalidateFractionEdges(t *testing.T) {
	r := newFakeRevoker()
	v := NewInvalidator(r, "x")
	rng := rand.New(rand.NewSource(1))
	if n := v.InvalidateFraction(0.5, rng); n != 0 {
		t.Fatalf("fraction of empty backlog = %d", n)
	}
	v.Submit(tokens(3))
	if n := v.InvalidateFraction(0, rng); n != 0 {
		t.Fatalf("zero fraction = %d", n)
	}
	// Tiny fraction still revokes at least one token.
	if n := v.InvalidateFraction(0.0001, rng); n != 1 {
		t.Fatalf("tiny fraction = %d, want 1", n)
	}
	// Over-1 fraction clamps to all.
	if n := v.InvalidateFraction(2.0, rng); n != 2 {
		t.Fatalf("clamped fraction = %d, want 2", n)
	}
}

// Property: after any sequence of submits and fractional invalidations,
// revoked + pending equals the number of distinct submitted tokens.
func TestQuickInvalidatorConservation(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		r := newFakeRevoker()
		v := NewInvalidator(r, "q")
		rng := rand.New(rand.NewSource(seed))
		distinct := make(map[string]bool)
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // submit a batch
				batch := make([]string, op%7)
				for i := range batch {
					batch[i] = fmt.Sprintf("t%d", next)
					distinct[batch[i]] = true
					next++
				}
				v.Submit(batch)
			case 1:
				v.InvalidateFraction(float64(op%10)/10.0, rng)
			case 2:
				v.InvalidateAll()
			}
		}
		return v.RevokedCount()+v.PendingCount() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
