// Package defense implements the countermeasure stack of Section 6 as
// policies on the Graph API request path plus supporting services:
//
//   - TokenRateLimiter (Sec. 6.1): caps write actions per access token per
//     window; the paper reduced Facebook's limit by more than an order of
//     magnitude and found collusion networks simply stayed under it.
//   - Invalidator (Sec. 6.2): invalidates access tokens identified by
//     honeypot milking, in configurable fractions and cadences.
//   - SynchroTrap (Sec. 6.3): temporal clustering of synchronized account
//     activity; ineffective here, as in the paper, because collusion
//     networks spread activity across accounts and time.
//   - IPRateLimiter and ASBlocker (Sec. 6.4): per-IP daily/weekly caps on
//     Graph API like requests and AS-level blocks for susceptible apps.
//
// All policies are clock-injected and safe for concurrent use.
package defense

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graphapi"
	"repro/internal/netsim"
	"repro/internal/simclock"
)

// slidingWindow counts events per key within a trailing window, pruning
// buckets lazily. Buckets are sized at 1/8 of the window so the count is a
// close approximation of a true sliding window without unbounded memory.
type slidingWindow struct {
	mu     sync.Mutex
	clock  simclock.Clock
	window time.Duration
	bucket time.Duration
	counts map[string]map[int64]int
}

func newSlidingWindow(clock simclock.Clock, window time.Duration) *slidingWindow {
	if window <= 0 {
		panic("defense: non-positive window")
	}
	return &slidingWindow{
		clock:  clock,
		window: window,
		bucket: window / 8,
		counts: map[string]map[int64]int{},
	}
}

// incr records one event for key and returns the new in-window total.
func (s *slidingWindow) incr(key string) int {
	now := s.clock.Now()
	cur := now.UnixNano() / int64(s.bucket)
	oldest := cur - 8
	s.mu.Lock()
	defer s.mu.Unlock()
	buckets := s.counts[key]
	if buckets == nil {
		buckets = map[int64]int{}
		s.counts[key] = buckets
	}
	total := 0
	for b, c := range buckets {
		if b <= oldest {
			delete(buckets, b)
			continue
		}
		total += c
	}
	buckets[cur]++
	return total + 1
}

// allow admits one event for key iff the in-window total is below limit,
// recording it only on admission. Denied attempts do not consume quota —
// a throttled token regains capacity as its window slides, rather than
// being starved forever by its own retries.
func (s *slidingWindow) allow(key string, limit int) bool {
	now := s.clock.Now()
	cur := now.UnixNano() / int64(s.bucket)
	oldest := cur - 8
	s.mu.Lock()
	defer s.mu.Unlock()
	buckets := s.counts[key]
	if buckets == nil {
		buckets = map[int64]int{}
		s.counts[key] = buckets
	}
	total := 0
	for b, c := range buckets {
		if b <= oldest {
			delete(buckets, b)
			continue
		}
		total += c
	}
	if total >= limit {
		return false
	}
	buckets[cur]++
	return true
}

// total returns the current in-window count without recording an event.
func (s *slidingWindow) total(key string) int {
	now := s.clock.Now()
	cur := now.UnixNano() / int64(s.bucket)
	oldest := cur - 8
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for b, c := range s.counts[key] {
		if b > oldest && b <= cur {
			total += c
		}
	}
	return total
}

// TokenRateLimiter caps write actions per access token in a trailing
// window. Name: "token-rate-limit".
type TokenRateLimiter struct {
	mu     sync.RWMutex
	limit  int
	reason string // preformatted denial reason for the current limit
	window *slidingWindow
}

// tokenLimitReason preformats the denial reason for a cap. Reasons are
// rebuilt only when the limit changes (construction and SetLimit), so
// the denial path — which a throttled collusion network hits on nearly
// every request — formats nothing per call.
func tokenLimitReason(limit int) string {
	return fmt.Sprintf("token exceeded %d writes per window", limit)
}

// NewTokenRateLimiter returns a limiter allowing limit writes per token per
// window.
func NewTokenRateLimiter(clock simclock.Clock, limit int, window time.Duration) *TokenRateLimiter {
	return &TokenRateLimiter{limit: limit, reason: tokenLimitReason(limit), window: newSlidingWindow(clock, window)}
}

// Name implements graphapi.Policy.
func (l *TokenRateLimiter) Name() string { return "token-rate-limit" }

// SetLimit adjusts the cap; the paper's day-12 intervention reduced it by
// more than an order of magnitude.
func (l *TokenRateLimiter) SetLimit(limit int) {
	l.mu.Lock()
	l.limit = limit
	l.reason = tokenLimitReason(limit)
	l.mu.Unlock()
}

// Limit returns the current cap.
func (l *TokenRateLimiter) Limit() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.limit
}

// Evaluate implements graphapi.Policy.
func (l *TokenRateLimiter) Evaluate(req graphapi.Request) graphapi.Decision {
	if req.Verb == graphapi.VerbRead {
		return graphapi.Allowed()
	}
	l.mu.RLock()
	limit, reason := l.limit, l.reason
	l.mu.RUnlock()
	if !l.window.allow(req.Token.Token, limit) {
		return graphapi.Denied(l.Name(), reason)
	}
	return graphapi.Allowed()
}

// IPRateLimiter caps Graph API like requests per source IP per day and per
// week (Sec. 6.4). It only applies to likes performed through access
// tokens, so ordinary browser traffic is unaffected. Name: "ip-rate-limit".
type IPRateLimiter struct {
	mu          sync.RWMutex
	dailyLimit  int
	weeklyLimit int
	// Preformatted denial reasons. They name the limit but not the IP:
	// the denied request already carries its source IP (and the denial
	// counters are keyed by policy), so repeating it in the reason bought
	// nothing except a Sprintf per denial on the hottest defense path.
	dailyReason  string
	weeklyReason string
	daily        *slidingWindow
	weekly       *slidingWindow
}

// NewIPRateLimiter returns a limiter with the given daily and weekly caps.
func NewIPRateLimiter(clock simclock.Clock, dailyLimit, weeklyLimit int) *IPRateLimiter {
	return &IPRateLimiter{
		dailyLimit:   dailyLimit,
		weeklyLimit:  weeklyLimit,
		dailyReason:  fmt.Sprintf("IP exceeded %d likes/day", dailyLimit),
		weeklyReason: fmt.Sprintf("IP exceeded %d likes/week", weeklyLimit),
		daily:        newSlidingWindow(clock, 24*time.Hour),
		weekly:       newSlidingWindow(clock, 7*24*time.Hour),
	}
}

// Name implements graphapi.Policy.
func (l *IPRateLimiter) Name() string { return "ip-rate-limit" }

// Evaluate implements graphapi.Policy.
func (l *IPRateLimiter) Evaluate(req graphapi.Request) graphapi.Decision {
	if req.Verb != graphapi.VerbLike || req.SourceIP == "" {
		return graphapi.Allowed()
	}
	l.mu.RLock()
	dl, wl := l.dailyLimit, l.weeklyLimit
	l.mu.RUnlock()
	if !l.daily.allow(req.SourceIP, dl) {
		return graphapi.Denied(l.Name(), l.dailyReason)
	}
	if !l.weekly.allow(req.SourceIP, wl) {
		// The daily admission above is not rolled back: the like was
		// denied overall, but Facebook-style layered limits charge the
		// innermost accepted layer; the discrepancy is one event.
		return graphapi.Denied(l.Name(), l.weeklyReason)
	}
	return graphapi.Allowed()
}

// ASBlocker denies write requests originating from blocked autonomous
// systems, scoped to a set of susceptible application IDs to limit
// collateral damage (the paper blocked two bulletproof-hosting ASes for
// the Table 1 apps only). Name: "as-block".
type ASBlocker struct {
	mu      sync.RWMutex
	blocked map[netsim.ASN]bool
	apps    map[string]bool // app IDs in scope; empty = all apps
}

// NewASBlocker returns a blocker with no ASes blocked.
func NewASBlocker() *ASBlocker {
	return &ASBlocker{
		blocked: make(map[netsim.ASN]bool),
		apps:    make(map[string]bool),
	}
}

// Name implements graphapi.Policy.
func (b *ASBlocker) Name() string { return "as-block" }

// Block adds an AS to the blocklist.
func (b *ASBlocker) Block(asn netsim.ASN) {
	b.mu.Lock()
	b.blocked[asn] = true
	b.mu.Unlock()
}

// Unblock removes an AS from the blocklist.
func (b *ASBlocker) Unblock(asn netsim.ASN) {
	b.mu.Lock()
	delete(b.blocked, asn)
	b.mu.Unlock()
}

// ScopeToApps restricts the block to requests made through the given
// applications.
func (b *ASBlocker) ScopeToApps(appIDs ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, id := range appIDs {
		b.apps[id] = true
	}
}

// Evaluate implements graphapi.Policy.
func (b *ASBlocker) Evaluate(req graphapi.Request) graphapi.Decision {
	if req.Verb == graphapi.VerbRead || req.ASN == 0 {
		return graphapi.Allowed()
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if !b.blocked[req.ASN] {
		return graphapi.Allowed()
	}
	if len(b.apps) > 0 && !b.apps[req.App.ID] {
		return graphapi.Allowed()
	}
	return graphapi.Denied(b.Name(), fmt.Sprintf("AS%d blocked for app %s", req.ASN, req.App.ID))
}
