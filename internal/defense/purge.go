package defense

import (
	"repro/internal/socialgraph"
)

// PurgeLikes removes every like the given accounts ever placed — the
// "removing fake likes" remediation online social networks apply after
// detecting reputation manipulation (the paper's ethics section notes
// Facebook removed all artifacts of the honeypot measurements). It
// returns the number of likes removed.
//
// The account's activity log intentionally retains the purged entries:
// remediation rewrites the public state, not the forensic record.
func PurgeLikes(store *socialgraph.Store, accountIDs []string) int {
	removed := 0
	for _, id := range accountIDs {
		for _, act := range store.ActivityLog(id) {
			if act.Verb != socialgraph.VerbLike {
				continue
			}
			if err := store.RemoveLike(id, act.ObjectID); err == nil {
				removed++
			}
		}
	}
	return removed
}

// PurgeReport quantifies a purge for operator review.
type PurgeReport struct {
	AccountsProcessed int
	LikesRemoved      int
	ObjectsTouched    int
}

// PurgeLikesReport is PurgeLikes with per-object accounting.
func PurgeLikesReport(store *socialgraph.Store, accountIDs []string) PurgeReport {
	report := PurgeReport{AccountsProcessed: len(accountIDs)}
	objects := make(map[string]bool)
	for _, id := range accountIDs {
		for _, act := range store.ActivityLog(id) {
			if act.Verb != socialgraph.VerbLike {
				continue
			}
			if err := store.RemoveLike(id, act.ObjectID); err == nil {
				report.LikesRemoved++
				objects[act.ObjectID] = true
			}
		}
	}
	report.ObjectsTouched = len(objects)
	return report
}
