package defense

import (
	"sort"
	"sync"

	"repro/internal/graphapi"
)

// Cross-platform signal sharing (the Sec. 6.3 detection pipeline extended
// to a multi-platform world). A collusion network that amplifies on two
// platforms reuses its infrastructure — the same residential IP pool
// fires likes at both. Account-keyed detectors cannot see this: account
// namespaces are disjoint across platforms. IP-keyed detectors can, but
// only if the platforms pool their signals; each platform alone sees half
// the activity and the synchronization score stays under threshold.
//
// SignalPlane models exactly that wiring choice. In SignalSiloed mode
// every platform gets its own detector (the status quo: operators do not
// share abuse telemetry). In SignalShared mode all platforms feed one
// detector, with object IDs namespaced by platform so cross-platform
// co-occurrence counts as distinct groups on the same IP.

// SignalMode selects whether platforms share abuse signals.
type SignalMode int

const (
	// SignalSiloed gives each platform an independent detector.
	SignalSiloed SignalMode = iota
	// SignalShared feeds every platform's activity into one detector.
	SignalShared
)

// String returns the mode's table label.
func (m SignalMode) String() string {
	if m == SignalShared {
		return "shared"
	}
	return "siloed"
}

// IPSynchroTap is a pass-through policy that feeds like requests into a
// SynchroTrap keyed by *source IP* rather than account: the group key is
// (platform-namespaced object, window) and the clustered entities are
// IPs. It never denies anything itself.
type IPSynchroTap struct {
	platform string
	trap     *SynchroTrap
}

// NewIPSynchroTap wraps a detector as a chain policy for one platform.
func NewIPSynchroTap(platformName string, trap *SynchroTrap) *IPSynchroTap {
	return &IPSynchroTap{platform: platformName, trap: trap}
}

// Name implements graphapi.Policy.
func (t *IPSynchroTap) Name() string { return "ip-synchro-tap" }

// Evaluate implements graphapi.Policy.
func (t *IPSynchroTap) Evaluate(req graphapi.Request) graphapi.Decision {
	if req.Verb == graphapi.VerbLike && req.SourceIP != "" {
		t.trap.Record(req.SourceIP, t.platform+"/"+req.ObjectID, req.At)
	}
	return graphapi.Allowed()
}

// Trap returns the wrapped detector.
func (t *IPSynchroTap) Trap() *SynchroTrap { return t.trap }

// SignalPlane hands out per-platform IP-keyed taps backed by either one
// shared detector or one detector per platform, per its mode.
type SignalPlane struct {
	mode    SignalMode
	newTrap func() *SynchroTrap

	mu     sync.Mutex
	shared *SynchroTrap
	traps  map[string]*SynchroTrap
}

// NewSignalPlane returns a plane in the given mode; newTrap constructs
// identically-parameterized detectors so the siloed/shared comparison
// isolates the wiring, not the thresholds.
func NewSignalPlane(mode SignalMode, newTrap func() *SynchroTrap) *SignalPlane {
	return &SignalPlane{
		mode:    mode,
		newTrap: newTrap,
		traps:   make(map[string]*SynchroTrap),
	}
}

// Mode returns the plane's signal-sharing mode.
func (p *SignalPlane) Mode() SignalMode { return p.mode }

// TapFor returns the chain policy for the named platform. In shared mode
// every platform's tap writes into the same detector instance; in siloed
// mode each platform gets its own.
func (p *SignalPlane) TapFor(platformName string) *IPSynchroTap {
	return NewIPSynchroTap(platformName, p.trapFor(platformName))
}

func (p *SignalPlane) trapFor(platformName string) *SynchroTrap {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mode == SignalShared {
		if p.shared == nil {
			p.shared = p.newTrap()
		}
		return p.shared
	}
	t := p.traps[platformName]
	if t == nil {
		t = p.newTrap()
		p.traps[platformName] = t
	}
	return t
}

// Detect runs clustering over every detector the plane owns. In shared
// mode that is one detector; in siloed mode each platform's detector is
// run independently (in platform-name order) and the results are
// concatenated — exactly the evidence each operator could act on alone.
func (p *SignalPlane) Detect() []Cluster {
	p.mu.Lock()
	var traps []*SynchroTrap
	if p.mode == SignalShared {
		if p.shared != nil {
			traps = append(traps, p.shared)
		}
	} else {
		names := make([]string, 0, len(p.traps))
		for name := range p.traps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			traps = append(traps, p.traps[name])
		}
	}
	p.mu.Unlock()

	var out []Cluster
	for _, t := range traps {
		out = append(out, t.Detect()...)
	}
	return out
}
