package defense

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestSynchroTrapDetectsLockstep(t *testing.T) {
	// Ten accounts like the same five posts within the same minute each
	// time — the lockstep pattern SynchroTrap is built for.
	st := NewSynchroTrap(time.Minute, 0.5, 2, 3)
	base := t0
	for post := 0; post < 5; post++ {
		at := base.Add(time.Duration(post) * time.Hour)
		for acct := 0; acct < 10; acct++ {
			st.Record(fmt.Sprintf("bot-%d", acct), fmt.Sprintf("post-%d", post), at.Add(time.Duration(acct)*time.Second))
		}
	}
	clusters := st.Detect()
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
	if len(clusters[0].Accounts) != 10 {
		t.Fatalf("cluster size = %d, want 10", len(clusters[0].Accounts))
	}
}

func TestSynchroTrapMissesSpreadOutActivity(t *testing.T) {
	// The collusion network evasion of Sec. 6.3: each target post is liked
	// by a *different* random subset of a large pool, and each account
	// appears in at most one or two groups. No sustained pairwise
	// similarity exists, so nothing is flagged.
	st := NewSynchroTrap(time.Minute, 0.5, 2, 3)
	rng := rand.New(rand.NewSource(42))
	const poolSize = 2000
	for post := 0; post < 30; post++ {
		at := t0.Add(time.Duration(post) * time.Hour)
		perm := rng.Perm(poolSize)[:100] // fresh random subset per post
		for i, idx := range perm {
			// Spread the likes of this subset over many minutes.
			st.Record(fmt.Sprintf("member-%d", idx), fmt.Sprintf("target-%d", post),
				at.Add(time.Duration(i)*3*time.Minute))
		}
	}
	clusters := st.Detect()
	if len(clusters) != 0 {
		t.Fatalf("spread-out activity produced %d clusters; evasion failed", len(clusters))
	}
}

func TestSynchroTrapSeparateComponents(t *testing.T) {
	st := NewSynchroTrap(time.Minute, 0.5, 2, 2)
	// Two disjoint pairs, each acting in lockstep on their own posts.
	for post := 0; post < 4; post++ {
		at := t0.Add(time.Duration(post) * time.Hour)
		st.Record("a1", fmt.Sprintf("pa-%d", post), at)
		st.Record("a2", fmt.Sprintf("pa-%d", post), at)
		st.Record("b1", fmt.Sprintf("pb-%d", post), at)
		st.Record("b2", fmt.Sprintf("pb-%d", post), at)
	}
	clusters := st.Detect()
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	for _, c := range clusters {
		if len(c.Accounts) != 2 {
			t.Fatalf("cluster = %v", c.Accounts)
		}
	}
}

func TestSynchroTrapMinSharedGate(t *testing.T) {
	// One shared burst is not "sustained": with MinShared=2, a single
	// co-occurrence must not link accounts.
	st := NewSynchroTrap(time.Minute, 0.1, 2, 2)
	st.Record("x", "post", t0)
	st.Record("y", "post", t0)
	if clusters := st.Detect(); len(clusters) != 0 {
		t.Fatalf("single burst created clusters: %v", clusters)
	}
}

func TestSynchroTrapWindowBoundary(t *testing.T) {
	st := NewSynchroTrap(time.Minute, 0.5, 1, 2)
	st.Record("x", "post", t0)
	st.Record("y", "post", t0.Add(10*time.Minute)) // different window
	if got := st.GroupCount(); got != 2 {
		t.Fatalf("GroupCount = %d, want 2", got)
	}
	if clusters := st.Detect(); len(clusters) != 0 {
		t.Fatalf("cross-window likes clustered: %v", clusters)
	}
}

func TestSynchroTrapDuplicateRecordIdempotent(t *testing.T) {
	st := NewSynchroTrap(time.Minute, 0.5, 2, 2)
	for i := 0; i < 5; i++ {
		st.Record("x", "post", t0)
	}
	if got := st.GroupCount(); got != 1 {
		t.Fatalf("GroupCount = %d, want 1", got)
	}
}

func TestSynchroTrapMaxGroupFanout(t *testing.T) {
	st := NewSynchroTrap(time.Minute, 0.1, 1, 2)
	st.MaxGroupFanout = 10
	// A group larger than the fanout cap is skipped entirely.
	for i := 0; i < 50; i++ {
		st.Record(fmt.Sprintf("m-%d", i), "huge-post", t0)
	}
	if clusters := st.Detect(); len(clusters) != 0 {
		t.Fatalf("oversized group clustered: %d clusters", len(clusters))
	}
}

func TestSynchroTrapReset(t *testing.T) {
	st := NewSynchroTrap(time.Minute, 0.5, 1, 2)
	st.Record("x", "post", t0)
	st.Reset()
	if st.GroupCount() != 0 {
		t.Fatal("Reset did not clear groups")
	}
}
