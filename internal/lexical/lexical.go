// Package lexical implements the comment analysis of Table 6: comment
// uniqueness, lexical richness (fraction of unique words), the Automated
// Readability Index (ARI), and the fraction of words not found in an
// English dictionary.
//
// The paper found that collusion networks draw comments from tiny
// dictionaries — 187 unique strings among 12,959 delivered comments, with
// ~20% non-dictionary words ("gr8", "w00wwwwwwww", transliterated Hindi).
package lexical

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenize lower-cases text and splits it into words on any non-alphanumeric
// boundary. Empty tokens are dropped.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// countSentences estimates the number of sentences in a comment: one plus
// the number of internal terminal-punctuation runs. Every comment counts
// as at least one sentence.
func countSentences(text string) int {
	n := 0
	inRun := false
	sawTerminal := false
	for _, r := range text {
		if r == '.' || r == '!' || r == '?' {
			if !inRun {
				n++
				inRun = true
				sawTerminal = true
			}
		} else {
			inRun = false
		}
	}
	if !sawTerminal {
		return 1
	}
	// Trailing punctuation terminates the last sentence; text after the
	// last run adds one more.
	trimmed := strings.TrimRightFunc(text, unicode.IsSpace)
	if len(trimmed) > 0 {
		last, _ := lastRune(trimmed)
		if last != '.' && last != '!' && last != '?' {
			n++
		}
	}
	return n
}

func lastRune(s string) (rune, bool) {
	var out rune
	ok := false
	for _, r := range s {
		out = r
		ok = true
	}
	return out, ok
}

// Report is the Table 6 row for one comment corpus.
type Report struct {
	Comments          int
	UniqueComments    int
	PctUniqueComments float64
	Words             int
	UniqueWords       int
	// LexicalRichness is the fraction of unique words, in percent.
	LexicalRichness float64
	// ARI is the Automated Readability Index over the whole corpus.
	ARI float64
	// PctNonDictionary is the percentage of word tokens not found in the
	// English dictionary.
	PctNonDictionary float64
}

// Analyze computes the full report for a corpus of comments.
func Analyze(comments []string) Report {
	var r Report
	r.Comments = len(comments)
	uniqueComments := make(map[string]bool)
	uniqueWords := make(map[string]bool)
	chars, sentences, nonDict := 0, 0, 0
	for _, c := range comments {
		uniqueComments[c] = true
		sentences += countSentences(c)
		for _, w := range Tokenize(c) {
			r.Words++
			uniqueWords[w] = true
			chars += utf8.RuneCountInString(w)
			if !InDictionary(w) {
				nonDict++
			}
		}
	}
	r.UniqueComments = len(uniqueComments)
	r.UniqueWords = len(uniqueWords)
	if r.Comments > 0 {
		r.PctUniqueComments = 100 * float64(r.UniqueComments) / float64(r.Comments)
	}
	if r.Words > 0 {
		r.LexicalRichness = 100 * float64(r.UniqueWords) / float64(r.Words)
		r.PctNonDictionary = 100 * float64(nonDict) / float64(r.Words)
		if sentences > 0 {
			r.ARI = 4.71*(float64(chars)/float64(r.Words)) +
				0.5*(float64(r.Words)/float64(sentences)) - 21.43
		}
	}
	return r
}

// InDictionary reports whether the (lower-case) word appears in the
// embedded English word list.
func InDictionary(word string) bool {
	_, ok := dictionary[word]
	return ok
}

// DictionarySize returns the number of embedded dictionary words; exposed
// for tests.
func DictionarySize() int { return len(dictionary) }
