package lexical

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "nice pic", "?? AW E S O M E ???", "gr8 w00wwwwwwww",
		"SARYE THAK KE BETH GYE", "bravo" + strings.Repeat("o", 50),
		"日本語のコメント", "a.b.c...d!!e?f", "\x00\x01\x02", "%s%d%v",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tokens := Tokenize(s)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lower-cased", tok)
			}
			for _, r := range tok {
				if r == ' ' || r == '\n' || r == '\t' {
					t.Fatalf("token %q contains whitespace", tok)
				}
			}
		}
	})
}

func FuzzAnalyze(f *testing.F) {
	f.Add("nice pic", "gr8", "")
	f.Add("...", "!!!", "???")
	f.Add("one. two. three.", "четыре", "五六七")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		if !utf8.ValidString(a) || !utf8.ValidString(b) || !utf8.ValidString(c) {
			t.Skip()
		}
		r := Analyze([]string{a, b, c})
		if r.Comments != 3 {
			t.Fatalf("comments = %d", r.Comments)
		}
		if r.UniqueComments < 1 || r.UniqueComments > 3 {
			t.Fatalf("unique comments = %d", r.UniqueComments)
		}
		if r.UniqueWords > r.Words {
			t.Fatal("unique words above total")
		}
		for _, pct := range []float64{r.PctUniqueComments, r.LexicalRichness, r.PctNonDictionary} {
			if pct < 0 || pct > 100 {
				t.Fatalf("percentage out of range: %v", pct)
			}
		}
	})
}
