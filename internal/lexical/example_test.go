package lexical_test

import (
	"fmt"

	"repro/internal/lexical"
)

// A collusion-network style corpus: many comments, few distinct strings,
// junk vocabulary.
func ExampleAnalyze() {
	corpus := []string{
		"awesome picture", "awesome picture", "gr8 bro",
		"awesome picture", "gr8 bro", "w00wwwwwwww",
	}
	r := lexical.Analyze(corpus)
	fmt.Printf("comments=%d unique=%d richness=%.1f%% non-dictionary=%.1f%%\n",
		r.Comments, r.UniqueComments, r.LexicalRichness, r.PctNonDictionary)
	// Output:
	// comments=6 unique=3 richness=45.5% non-dictionary=27.3%
}

func ExampleTokenize() {
	fmt.Println(lexical.Tokenize("What a GORGEOUS pic!!"))
	// Output:
	// [what a gorgeous pic]
}
