package lexical

// dictionary is the embedded English word list used for the Table 6
// non-dictionary-word analysis (the paper used the NLTK word corpus).
// It covers the high-frequency function and content words that occur in
// social media comments; anything outside it — leetspeak ("gr8"),
// elongations ("bravooooo"), transliterations — counts as non-dictionary.
var dictionary = makeSet(
	// articles, pronouns, function words
	"a", "an", "the", "i", "you", "he", "she", "it", "we", "they", "me",
	"him", "her", "us", "them", "my", "your", "his", "its", "our", "their",
	"mine", "yours", "this", "that", "these", "those", "who", "whom",
	"whose", "which", "what", "where", "when", "why", "how", "all", "any",
	"both", "each", "few", "more", "most", "other", "some", "such", "no",
	"nor", "not", "only", "own", "same", "so", "than", "too", "very", "just",
	"and", "but", "or", "if", "because", "as", "until", "while", "of", "at",
	"by", "for", "with", "about", "against", "between", "into", "through",
	"during", "before", "after", "above", "below", "to", "from", "up",
	"down", "in", "out", "on", "off", "over", "under", "again", "further",
	"then", "once", "here", "there", "also", "yet", "still", "even", "ever",
	"never", "always", "often", "soon", "now", "today", "tomorrow",
	"yesterday", "please", "thanks", "thank", "welcome", "hello", "hi",
	"hey", "bye", "goodbye", "yes", "yeah", "okay", "ok", "oh", "wow",
	// verbs
	"am", "is", "are", "was", "were", "be", "been", "being", "have", "has",
	"had", "having", "do", "does", "did", "doing", "will", "would", "shall",
	"should", "can", "could", "may", "might", "must", "go", "goes", "going",
	"went", "gone", "come", "comes", "coming", "came", "get", "gets",
	"getting", "got", "make", "makes", "making", "made", "see", "sees",
	"seeing", "saw", "seen", "look", "looks", "looking", "looked", "like",
	"likes", "liked", "liking", "love", "loves", "loved", "loving", "want",
	"wants", "wanted", "need", "needs", "needed", "know", "knows", "knew",
	"known", "think", "thinks", "thought", "say", "says", "said", "tell",
	"tells", "told", "give", "gives", "gave", "given", "take", "takes",
	"took", "taken", "keep", "keeps", "kept", "let", "lets", "put", "puts",
	"share", "shares", "shared", "post", "posts", "posted", "posting",
	"comment", "comments", "commented", "follow", "follows", "followed",
	"following", "add", "adds", "added", "check", "checks", "checked",
	"visit", "visits", "visited", "click", "clicks", "clicked", "send",
	"sends", "sent", "win", "wins", "won", "play", "plays", "played",
	"work", "works", "worked", "working", "live", "lives", "lived", "feel",
	"feels", "felt", "enjoy", "enjoys", "enjoyed", "smile", "smiles",
	"smiled", "shine", "shines", "shined", "bless", "blessed", "miss",
	"missed", "wish", "wishes", "wished", "hope", "hopes", "hoped", "stay",
	"stays", "stayed", "rock", "rocks", "rocked", "slay", "kill", "killed",
	"die", "died", "dying", "laugh", "laughed", "cry", "cried",
	// nouns
	"man", "woman", "men", "women", "boy", "girl", "guy", "guys", "friend",
	"friends", "brother", "sister", "bro", "sis", "mate", "buddy", "people",
	"person", "family", "life", "world", "day", "days", "night", "nights",
	"morning", "evening", "week", "month", "year", "years", "time", "times",
	"photo", "photos", "picture", "pictures", "pic", "pics", "image",
	"images", "video", "videos", "status", "profile", "page", "pages",
	"account", "wall", "timeline", "feed", "story", "stories", "news",
	"update", "updates", "moment", "moments", "memory", "memories", "face",
	"eyes", "smile", "heart", "hearts", "soul", "mind", "star", "stars",
	"king", "queen", "prince", "princess", "hero", "legend", "champion",
	"winner", "master", "boss", "chief", "sir", "madam", "dear", "darling",
	"sweetheart", "angel", "beauty", "style", "swag", "look", "dress",
	"place", "home", "house", "city", "country", "school", "college",
	"work", "job", "money", "gift", "prize", "luck", "god", "blessing",
	"blessings", "prayer", "prayers", "peace", "joy", "happiness", "fun",
	"party", "music", "song", "songs", "dance", "game", "games", "match",
	"team", "cricket", "football", "movie", "movies", "film", "show",
	"thing", "things", "stuff", "way", "ways", "word", "words", "line",
	"lines", "number", "numbers", "top", "best", "rest", "lot", "lots",
	"bit", "side", "end", "start", "part", "whole", "piece",
	// adjectives
	"good", "great", "nice", "fine", "well", "better", "awesome",
	"amazing", "wonderful", "beautiful", "gorgeous", "stunning", "pretty",
	"lovely", "cute", "sweet", "handsome", "smart", "cool", "super",
	"superb", "fantastic", "fabulous", "excellent", "perfect", "brilliant",
	"outstanding", "incredible", "unbelievable", "magical", "marvelous",
	"splendid", "charming", "adorable", "elegant", "classy", "stylish",
	"dashing", "killer", "epic", "legendary", "royal", "golden", "shiny",
	"bright", "fresh", "young", "old", "new", "big", "small", "little",
	"long", "short", "high", "low", "hot", "cold", "warm", "happy", "sad",
	"glad", "proud", "lucky", "blessed", "true", "real", "right", "wrong",
	"sure", "free", "full", "empty", "rich", "poor", "strong", "weak",
	"hard", "soft", "easy", "simple", "first", "last", "next", "every",
	"one", "two", "three", "many", "much", "dude",
	"magnificent", "breathtaking", "spectacular", "extraordinary",
	"phenomenal", "mesmerizing", "absolutely", "completely", "seriously",
	"simply", "truly", "really", "totally", "photograph", "expression",
	"personality",
	// social media vocabulary
	"lol", "omg", "haha", "hahaha", "xoxo", "dp", "dpz", "selfie",
	"selfies", "insta", "fb", "facebook", "whatsapp", "tag", "tags",
	"tagged", "inbox", "msg", "message", "messages", "reply", "replies",
	"request", "requests", "online", "offline", "emoji", "sticker",
)

func makeSet(words ...string) map[string]struct{} {
	m := make(map[string]struct{}, len(words))
	for _, w := range words {
		m[w] = struct{}{}
	}
	return m
}
