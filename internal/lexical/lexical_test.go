package lexical

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Nice Pic!!", []string{"nice", "pic"}},
		{"?? AW E S O M E ???", []string{"aw", "e", "s", "o", "m", "e"}},
		{"gr8 w00wwwwwwww", []string{"gr8", "w00wwwwwwww"}},
		{"", nil},
		{"...", nil},
	}
	for _, tc := range cases {
		got := Tokenize(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestCountSentences(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"no punctuation", 1},
		{"one sentence.", 1},
		{"two. sentences.", 2},
		{"ellipsis... still one run. two", 3},
		{"trailing text after. punct", 2},
	}
	for _, tc := range cases {
		if got := countSentences(tc.in); got != tc.want {
			t.Errorf("countSentences(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestAnalyzeRepetitiveCorpus(t *testing.T) {
	// A collusion-network-style corpus: 100 comments from a dictionary of
	// 4, exactly like the Table 6 finding of few unique comments.
	dict := []string{"nice pic", "awesome", "gr8 bro", "lovely"}
	var corpus []string
	for i := 0; i < 100; i++ {
		corpus = append(corpus, dict[i%len(dict)])
	}
	r := Analyze(corpus)
	if r.Comments != 100 || r.UniqueComments != 4 {
		t.Fatalf("report = %+v", r)
	}
	if r.PctUniqueComments != 4 {
		t.Fatalf("PctUniqueComments = %v", r.PctUniqueComments)
	}
	// 6 unique words over 150 word tokens (25×2 + 25 + 25×2 + 25).
	if r.Words != 150 || r.UniqueWords != 6 {
		t.Fatalf("words = %d unique = %d", r.Words, r.UniqueWords)
	}
	if r.LexicalRichness != 4 {
		t.Fatalf("LexicalRichness = %v", r.LexicalRichness)
	}
	// "gr8" is the only non-dictionary token: 25 of 150 = 16.67%.
	if math.Abs(r.PctNonDictionary-100.0*25/150) > 0.01 {
		t.Fatalf("PctNonDictionary = %v", r.PctNonDictionary)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(nil)
	if r != (Report{}) {
		t.Fatalf("empty report = %+v", r)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Single comment, 2 words, 8 chars, 1 sentence:
	// ARI = 4.71*(8/2) + 0.5*(2/1) - 21.43 = 18.84 + 1 - 21.43 = -1.59.
	r := Analyze([]string{"nice pics"})
	want := 4.71*4 + 0.5*2 - 21.43
	if math.Abs(r.ARI-want) > 1e-9 {
		t.Fatalf("ARI = %v, want %v", r.ARI, want)
	}
}

func TestInDictionary(t *testing.T) {
	for _, w := range []string{"nice", "awesome", "the", "love"} {
		if !InDictionary(w) {
			t.Errorf("InDictionary(%q) = false", w)
		}
	}
	for _, w := range []string{"gr8", "w00wwwwwwww", "bfewguvchieuwver", "bethgye"} {
		if InDictionary(w) {
			t.Errorf("InDictionary(%q) = true", w)
		}
	}
	if DictionarySize() < 400 {
		t.Fatalf("dictionary suspiciously small: %d", DictionarySize())
	}
}

func TestNonsenseCorpusHighNonDictionary(t *testing.T) {
	r := Analyze([]string{"bfewguvchieuwver gr8 w00t", "SARYE THAK KE BETH GYE"})
	if r.PctNonDictionary < 80 {
		t.Fatalf("nonsense corpus PctNonDictionary = %v", r.PctNonDictionary)
	}
}

// Property: percentages are always within [0, 100], and unique counts
// never exceed totals.
func TestQuickAnalyzeBounds(t *testing.T) {
	words := []string{"nice", "gr8", "awesome", "pic", "w00w", "bro", "xyzzy"}
	f := func(picks []uint8) bool {
		var corpus []string
		for i := 0; i+1 < len(picks); i += 2 {
			corpus = append(corpus, words[int(picks[i])%len(words)]+" "+words[int(picks[i+1])%len(words)])
		}
		r := Analyze(corpus)
		if r.UniqueComments > r.Comments || r.UniqueWords > r.Words {
			return false
		}
		for _, pct := range []float64{r.PctUniqueComments, r.LexicalRichness, r.PctNonDictionary} {
			if pct < 0 || pct > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeLongElongatedWords(t *testing.T) {
	elongated := "bravo" + strings.Repeat("o", 20)
	r := Analyze([]string{elongated})
	if r.PctNonDictionary != 100 {
		t.Fatalf("elongated word counted as dictionary: %+v", r)
	}
	// Long words push ARI up (chars/words dominates).
	if r.ARI < 50 {
		t.Fatalf("ARI = %v for 25-char word", r.ARI)
	}
}
