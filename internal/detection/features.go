// Package detection implements the machine-learning extension the paper
// proposes in Section 8: "investigate more sophisticated machine learning
// based approaches to robustly detect access token abuse".
//
// The detector classifies accounts as colluding or benign from features
// of their write activity that survive the evasions which defeat
// temporal clustering (Sec. 6.3): colluding accounts spread their likes
// over time and across disjoint target sets, but they cannot hide that
// their writes arrive (a) through a single exploited third-party
// application and (b) from delivery IP addresses shared with thousands
// of other accounts. Organic users write first-party from their own
// residential addresses.
//
// The model is a from-scratch logistic regression over standardized
// features, trained with mini-batch gradient descent — deliberately
// simple, auditable, and stdlib-only.
package detection

import (
	"sort"

	"repro/internal/socialgraph"
)

// FeatureNames labels the extracted feature vector, in order.
var FeatureNames = []string{
	"likes-per-active-day", // volume: organic users like a handful per day
	"target-diversity",     // distinct targets / actions
	"dominant-app-share",   // fraction of writes via the most-used app
	"third-party-share",    // fraction of writes via any app (vs first-party)
	"ip-sharing-degree",    // mean #accounts sharing this account's source IPs
	"active-hours-per-day", // spread of activity across hours
}

// NumFeatures is the feature vector length.
var NumFeatures = len(FeatureNames)

// IPSharing maps a source IP to the number of distinct accounts whose
// writes originated from it — the strongest signal: collusion delivery
// IPs are shared by the whole membership.
type IPSharing map[string]int

// BuildIPSharing scans the activity logs of the given accounts.
func BuildIPSharing(store *socialgraph.Store, accountIDs []string) IPSharing {
	byIP := make(map[string]map[string]bool)
	for _, id := range accountIDs {
		for _, act := range store.ActivityLog(id) {
			if act.SourceIP == "" {
				continue
			}
			set := byIP[act.SourceIP]
			if set == nil {
				set = make(map[string]bool)
				byIP[act.SourceIP] = set
			}
			set[act.ActorID] = true
		}
	}
	out := make(IPSharing, len(byIP))
	for ip, set := range byIP {
		out[ip] = len(set)
	}
	return out
}

// Extract computes the feature vector for one account from its activity
// log. Accounts with no write activity return the zero vector.
func Extract(store *socialgraph.Store, sharing IPSharing, accountID string) []float64 {
	f := make([]float64, NumFeatures)
	acts := store.ActivityLog(accountID)
	if len(acts) == 0 {
		return f
	}
	days := make(map[int64]bool)
	hours := make(map[int64]bool)
	targets := make(map[string]bool)
	appCounts := make(map[string]int)
	ipSet := make(map[string]bool)
	likes, thirdParty := 0, 0
	for _, a := range acts {
		if a.Verb == socialgraph.VerbLike {
			likes++
		}
		days[a.At.Unix()/86400] = true
		hours[a.At.Unix()/3600] = true
		targets[a.TargetID] = true
		if a.AppID != "" {
			thirdParty++
			appCounts[a.AppID]++
		}
		if a.SourceIP != "" {
			ipSet[a.SourceIP] = true
		}
	}
	total := float64(len(acts))
	activeDays := float64(len(days))
	if activeDays == 0 {
		activeDays = 1
	}
	f[0] = float64(likes) / activeDays
	f[1] = float64(len(targets)) / total
	maxApp := 0
	for _, c := range appCounts {
		if c > maxApp {
			maxApp = c
		}
	}
	f[2] = float64(maxApp) / total
	f[3] = float64(thirdParty) / total
	if len(ipSet) > 0 {
		sum := 0.0
		for ip := range ipSet {
			sum += float64(sharing[ip])
		}
		f[4] = sum / float64(len(ipSet))
	}
	f[5] = float64(len(hours)) / activeDays
	return f
}

// Labeled pairs an account with its ground-truth class.
type Labeled struct {
	AccountID string
	// Colluding is true for collusion network members.
	Colluding bool
}

// Dataset is a feature matrix with labels.
type Dataset struct {
	X   [][]float64
	Y   []int // 1 = colluding
	IDs []string
}

// BuildDataset extracts features for every labeled account. The IP
// sharing index is computed over the same account set.
func BuildDataset(store *socialgraph.Store, labeled []Labeled) Dataset {
	ids := make([]string, len(labeled))
	for i, l := range labeled {
		ids[i] = l.AccountID
	}
	sharing := BuildIPSharing(store, ids)
	ds := Dataset{
		X:   make([][]float64, 0, len(labeled)),
		Y:   make([]int, 0, len(labeled)),
		IDs: make([]string, 0, len(labeled)),
	}
	for _, l := range labeled {
		ds.X = append(ds.X, Extract(store, sharing, l.AccountID))
		y := 0
		if l.Colluding {
			y = 1
		}
		ds.Y = append(ds.Y, y)
		ds.IDs = append(ds.IDs, l.AccountID)
	}
	return ds
}

// Split partitions a dataset into train/test by hashing IDs, keeping the
// split deterministic and label-independent. testFraction is in (0, 1).
func (d Dataset) Split(testFraction float64) (train, test Dataset) {
	n := len(d.X)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Deterministic order by ID hash.
	sort.Slice(idx, func(a, b int) bool {
		return fnv32(d.IDs[idx[a]]) < fnv32(d.IDs[idx[b]])
	})
	cut := int(float64(n) * testFraction)
	take := func(rows []int) Dataset {
		out := Dataset{}
		for _, i := range rows {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
			out.IDs = append(out.IDs, d.IDs[i])
		}
		return out
	}
	return take(idx[cut:]), take(idx[:cut])
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
