package detection

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/socialgraph"
	"repro/internal/workload"
)

func TestTrainPCAInputValidation(t *testing.T) {
	if _, err := TrainPCA(nil, 2, 0.95); err == nil {
		t.Fatal("empty input trained")
	}
	if _, err := TrainPCA([][]float64{{1, 2}}, 2, 0.95); err == nil {
		t.Fatal("single sample trained")
	}
	if _, err := TrainPCA([][]float64{{1, 2}, {1}}, 2, 0.95); err == nil {
		t.Fatal("ragged input trained")
	}
}

func TestPCARecoversDominantAxis(t *testing.T) {
	// Points along the (1,1)/√2 direction with small noise: the first
	// principal component must align with it.
	rng := rand.New(rand.NewSource(3))
	var data [][]float64
	for i := 0; i < 500; i++ {
		tv := rng.NormFloat64() * 10
		data = append(data, []float64{tv + rng.NormFloat64()*0.1, tv + rng.NormFloat64()*0.1})
	}
	det, err := TrainPCA(data, 1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Components) != 1 {
		t.Fatalf("components = %d", len(det.Components))
	}
	c := det.Components[0]
	want := 1 / math.Sqrt2
	if math.Abs(math.Abs(c[0])-want) > 0.02 || math.Abs(math.Abs(c[1])-want) > 0.02 {
		t.Fatalf("component = %v, want ±(%.3f, %.3f)", c, want, want)
	}
}

func TestPCAFlagsOffSubspaceAnomalies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var normal [][]float64
	for i := 0; i < 400; i++ {
		tv := rng.NormFloat64() * 5
		normal = append(normal, []float64{tv, tv * 2, tv * -1})
	}
	det, err := TrainPCA(normal, 1, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// In-subspace point: tiny residual.
	if det.Anomalous([]float64{3, 6, -3}) {
		t.Fatal("in-subspace point flagged")
	}
	// Orthogonal departure: flagged.
	if !det.Anomalous([]float64{3, -6, 3}) {
		t.Fatal("off-subspace point not flagged")
	}
}

func TestPCAResidualProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var normal [][]float64
	for i := 0; i < 200; i++ {
		normal = append(normal, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	det, err := TrainPCA(normal, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Residuals are non-negative and the mean itself has residual 0.
	if r := det.Residual(det.Mean); r > 1e-9 {
		t.Fatalf("mean residual = %v", r)
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		if det.Residual(x) < 0 {
			t.Fatal("negative residual")
		}
	}
	// Components are orthonormal.
	for i, a := range det.Components {
		na := 0.0
		for _, v := range a {
			na += v * v
		}
		if math.Abs(na-1) > 1e-6 {
			t.Fatalf("component %d norm² = %v", i, na)
		}
		for j := i + 1; j < len(det.Components); j++ {
			dotp := 0.0
			for k := range a {
				dotp += a[k] * det.Components[j][k]
			}
			if math.Abs(dotp) > 1e-4 {
				t.Fatalf("components %d,%d dot = %v", i, j, dotp)
			}
		}
	}
	// ~5% of training points exceed the 0.95-quantile threshold.
	over := 0
	for _, x := range normal {
		if det.Anomalous(x) {
			over++
		}
	}
	frac := float64(over) / float64(len(normal))
	if frac > 0.08 {
		t.Fatalf("training anomaly rate = %v", frac)
	}
}

func TestDailyLikeSeries(t *testing.T) {
	store, labeled := buildWorld(t)
	origin := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	for _, l := range labeled[:5] {
		series := DailyLikeSeries(store, l.AccountID, origin, 4)
		if len(series) != 4 {
			t.Fatalf("series length = %d", len(series))
		}
		for _, v := range series {
			if v < 0 {
				t.Fatal("negative count")
			}
		}
	}
}

// buildOverlapWorld simulates the regime the paper emphasises: colluding
// accounts' like volumes overlap organic users' (large pools spread the
// fake activity thin), so volume-based detection has little signal while
// structural features still separate.
func buildOverlapWorld(t *testing.T) (*socialgraph.Store, []Labeled) {
	t.Helper()
	s, err := workload.BuildScenario(workload.Options{
		Scale:      3, // kingliker: 747 members vs quota 47 → ~0.5 fake likes/member/day
		MinMembers: 100,
		Networks:   []string{"kingliker.com", "rockliker.net"},
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	organic, err := s.AddOrganicUsers(300, 17)
	if err != nil {
		t.Fatal(err)
	}
	s.BuildFriendGraph(6, 17)
	for day := 0; day < 4; day++ {
		organic.SimulateDay(0.5, 3)
		for hour := 0; hour < 24; hour++ {
			for _, ni := range s.Networks {
				if hour%3 == 0 {
					ni.BackgroundRequests(2)
				}
			}
			s.Clock.Advance(time.Hour)
		}
	}
	var labeled []Labeled
	for _, ni := range s.Networks {
		for _, m := range ni.Members {
			labeled = append(labeled, Labeled{AccountID: m.ID, Colluding: true})
		}
	}
	for _, u := range organic.Users {
		labeled = append(labeled, Labeled{AccountID: u.ID, Colluding: false})
	}
	return s.Platform.Graph, labeled
}

// TestPCABaselineVsLogistic reproduces the comparison of the extension:
// the volume-only PCA baseline separates worse than the structural
// logistic features, because colluding accounts mix real and fake
// activity at volumes similar to organic users (the paper's Sec. 7.3
// observation).
func TestPCABaselineVsLogistic(t *testing.T) {
	store, labeled := buildOverlapWorld(t)
	origin := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

	// PCA trains on organic users' daily like series only.
	var normalSeries [][]float64
	for _, l := range labeled {
		if !l.Colluding {
			normalSeries = append(normalSeries, DailyLikeSeries(store, l.AccountID, origin, 4))
		}
	}
	pca, err := TrainPCA(normalSeries, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Score every account by residual; compute AUC against ground truth.
	var scores []float64
	var ys []int
	for _, l := range labeled {
		scores = append(scores, pca.Residual(DailyLikeSeries(store, l.AccountID, origin, 4)))
		y := 0
		if l.Colluding {
			y = 1
		}
		ys = append(ys, y)
	}
	pcaAUC := auc(scores, ys)

	ds := BuildDataset(store, labeled)
	train, test := ds.Split(0.3)
	model, err := Train(train, TrainConfig{Epochs: 300, LearningRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	logAUC := Evaluate(model, test, 0.5).AUC

	if logAUC <= pcaAUC {
		t.Fatalf("structural features (AUC %.3f) should beat volume-only PCA (AUC %.3f)", logAUC, pcaAUC)
	}
	t.Logf("PCA baseline AUC=%.3f, logistic AUC=%.3f", pcaAUC, logAUC)
}
