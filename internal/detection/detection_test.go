package detection

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/socialgraph"
	"repro/internal/workload"
)

// buildWorld simulates a few days of mixed collusion and organic
// activity and returns the store plus ground-truth labels.
func buildWorld(t *testing.T) (*socialgraph.Store, []Labeled) {
	t.Helper()
	s, err := workload.BuildScenario(workload.Options{
		Scale:      2000,
		MinMembers: 80,
		Networks:   []string{"mg-likers.com", "oneliker.com"},
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	organic, err := s.AddOrganicUsers(200, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.BuildFriendGraph(6, 9)
	for day := 0; day < 4; day++ {
		organic.SimulateDay(0.5, 4)
		for hour := 0; hour < 24; hour++ {
			for _, ni := range s.Networks {
				if hour%3 == 0 {
					ni.BackgroundRequests(2)
				}
			}
			s.Clock.Advance(time.Hour)
		}
	}
	var labeled []Labeled
	for _, ni := range s.Networks {
		for _, m := range ni.Members {
			labeled = append(labeled, Labeled{AccountID: m.ID, Colluding: true})
		}
	}
	for _, u := range organic.Users {
		labeled = append(labeled, Labeled{AccountID: u.ID, Colluding: false})
	}
	return s.Platform.Graph, labeled
}

func TestEndToEndDetection(t *testing.T) {
	store, labeled := buildWorld(t)
	ds := BuildDataset(store, labeled)
	train, test := ds.Split(0.3)
	if len(test.X) == 0 || len(train.X) == 0 {
		t.Fatalf("split sizes: train=%d test=%d", len(train.X), len(test.X))
	}
	model, err := Train(train, TrainConfig{Epochs: 300, LearningRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(model, test, 0.5)
	// The separating signals (third-party writes, shared delivery IPs)
	// are strong; the classifier should be excellent on held-out data.
	if m.AUC < 0.95 {
		t.Fatalf("AUC = %.3f, want ≥0.95 (metrics %+v)", m.AUC, m)
	}
	if m.F1 < 0.9 {
		t.Fatalf("F1 = %.3f (metrics %+v)", m.F1, m)
	}
	// False positives on organic users are the collateral damage the
	// paper's countermeasures were designed to avoid; require few.
	if m.FP > len(test.X)/20 {
		t.Fatalf("false positives = %d of %d", m.FP, len(test.X))
	}
}

func TestFeatureExtractionSignals(t *testing.T) {
	store, labeled := buildWorld(t)
	ids := make([]string, len(labeled))
	for i, l := range labeled {
		ids[i] = l.AccountID
	}
	sharing := BuildIPSharing(store, ids)

	var colluding, organic []float64
	colN, orgN := 0, 0
	for _, l := range labeled {
		f := Extract(store, sharing, l.AccountID)
		if f[0] == 0 && f[4] == 0 {
			continue // inactive account
		}
		if l.Colluding {
			if colluding == nil {
				colluding = make([]float64, NumFeatures)
			}
			for j := range f {
				colluding[j] += f[j]
			}
			colN++
		} else {
			if organic == nil {
				organic = make([]float64, NumFeatures)
			}
			for j := range f {
				organic[j] += f[j]
			}
			orgN++
		}
	}
	if colN == 0 || orgN == 0 {
		t.Fatalf("activity missing: colluding=%d organic=%d", colN, orgN)
	}
	avgCol := colluding[4] / float64(colN)
	avgOrg := organic[4] / float64(orgN)
	// IP-sharing degree separates the classes by orders of magnitude.
	if avgCol < 10*avgOrg {
		t.Fatalf("ip-sharing: colluding %.1f vs organic %.1f", avgCol, avgOrg)
	}
	// Third-party share: colluding ≈ 1, organic ≈ 0.
	if colluding[3]/float64(colN) < 0.9 {
		t.Fatalf("colluding third-party share = %.2f", colluding[3]/float64(colN))
	}
	if organic[3]/float64(orgN) > 0.1 {
		t.Fatalf("organic third-party share = %.2f", organic[3]/float64(orgN))
	}
}

func TestExtractInactiveAccount(t *testing.T) {
	store := socialgraph.New()
	acct := store.CreateAccount("idle", "IN", time.Now())
	f := Extract(store, IPSharing{}, acct.ID)
	for j, v := range f {
		if v != 0 {
			t.Fatalf("feature %d = %v for inactive account", j, v)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(Dataset{}, TrainConfig{}); err == nil {
		t.Fatal("empty dataset trained")
	}
	single := Dataset{X: [][]float64{{1}, {2}}, Y: []int{1, 1}, IDs: []string{"a", "b"}}
	if _, err := Train(single, TrainConfig{}); err == nil {
		t.Fatal("single-class dataset trained")
	}
}

func TestLogisticOnSyntheticSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ds Dataset
	for i := 0; i < 400; i++ {
		y := i % 2
		x := []float64{rng.NormFloat64() + float64(y)*4, rng.NormFloat64()}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
		ds.IDs = append(ds.IDs, fmt.Sprintf("s%d", i))
	}
	m, err := Train(ds, TrainConfig{Epochs: 500, LearningRate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(m, ds, 0.5)
	if mt.Accuracy < 0.95 {
		t.Fatalf("accuracy = %.3f on separable data", mt.Accuracy)
	}
	if mt.AUC < 0.98 {
		t.Fatalf("AUC = %.3f on separable data", mt.AUC)
	}
}

func TestAUCProperties(t *testing.T) {
	// Perfect ranking → 1; inverted → 0; constant → handled via ties.
	if got := auc([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	if got := auc([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	if got := auc([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("tied AUC = %v", got)
	}
	if got := auc([]float64{0.5}, []int{1}); got != 0 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestSplitDeterministicAndDisjoint(t *testing.T) {
	var ds Dataset
	for i := 0; i < 100; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, i%2)
		ds.IDs = append(ds.IDs, fmt.Sprintf("acct-%d", i))
	}
	tr1, te1 := ds.Split(0.25)
	tr2, te2 := ds.Split(0.25)
	if len(te1.X) != 25 || len(tr1.X) != 75 {
		t.Fatalf("split sizes: %d/%d", len(tr1.X), len(te1.X))
	}
	for i := range te1.IDs {
		if te1.IDs[i] != te2.IDs[i] {
			t.Fatal("split not deterministic")
		}
	}
	seen := map[string]bool{}
	for _, id := range tr1.IDs {
		seen[id] = true
	}
	for _, id := range te1.IDs {
		if seen[id] {
			t.Fatalf("ID %s in both splits", id)
		}
	}
	_ = tr2
}

// Property: Score is always a valid probability.
func TestQuickScoreBounded(t *testing.T) {
	m := &LogisticModel{
		Weights: []float64{2, -3},
		Bias:    0.5,
		Means:   []float64{0, 0},
		Stds:    []float64{1, 1},
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Clamp to a physical range: feature magnitudes above 1e9 would
		// overflow the linear term (Inf-Inf = NaN), which real extracted
		// features (counts and ratios) can never reach.
		clamp := func(v float64) float64 { return math.Mod(v, 1e9) }
		s := m.Score([]float64{clamp(a), clamp(b)})
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
