package detection

import (
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/socialgraph"
)

// PCA anomaly detection in the spirit of Viswanath et al. (USENIX
// Security 2014), which the paper's related work discusses: model normal
// user behaviour with the top principal components of like-activity
// timeseries and flag accounts whose behaviour has a large residual
// outside that subspace.
//
// The paper observes that colluding accounts "mix real and fake
// activity" and are hard to detect this way; the extension experiment
// uses this detector as the classical baseline the feature-based
// logistic model is compared against.

// PCADetector holds a trained principal-subspace model.
type PCADetector struct {
	// Mean is the training mean vector.
	Mean []float64
	// Components are the top-k orthonormal principal axes.
	Components [][]float64
	// Threshold is the residual above which a point is anomalous.
	Threshold float64
}

// ErrPCAInput is returned for degenerate training input.
var ErrPCAInput = errors.New("detection: PCA needs at least 2 samples of equal dimension")

// TrainPCA fits the detector on normal behaviour: it keeps k principal
// components and sets the anomaly threshold at the given quantile
// (e.g. 0.95) of the training residuals.
func TrainPCA(normal [][]float64, k int, quantile float64) (*PCADetector, error) {
	n := len(normal)
	if n < 2 {
		return nil, ErrPCAInput
	}
	d := len(normal[0])
	for _, x := range normal {
		if len(x) != d {
			return nil, ErrPCAInput
		}
	}
	if k <= 0 || k > d {
		k = 1
	}
	if quantile <= 0 || quantile >= 1 {
		quantile = 0.95
	}

	det := &PCADetector{Mean: make([]float64, d)}
	for _, x := range normal {
		for j, v := range x {
			det.Mean[j] += v
		}
	}
	for j := range det.Mean {
		det.Mean[j] /= float64(n)
	}
	// Covariance matrix.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, x := range normal {
		for i := 0; i < d; i++ {
			xi := x[i] - det.Mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += xi * (x[j] - det.Mean[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}
	// Top-k eigenvectors via power iteration with deflation.
	work := make([][]float64, d)
	for i := range work {
		work[i] = append([]float64(nil), cov[i]...)
	}
	for c := 0; c < k; c++ {
		vec, val := powerIterate(work, 200+17*c)
		if val < 1e-12 {
			break // remaining variance is numerically zero
		}
		det.Components = append(det.Components, vec)
		// Deflate: work -= val * vec vecᵀ.
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				work[i][j] -= val * vec[i] * vec[j]
			}
		}
	}

	residuals := make([]float64, n)
	for i, x := range normal {
		residuals[i] = det.Residual(x)
	}
	sort.Float64s(residuals)
	idx := int(quantile * float64(n))
	if idx >= n {
		idx = n - 1
	}
	det.Threshold = residuals[idx]
	return det, nil
}

// powerIterate returns the dominant eigenvector/value of a symmetric
// matrix. The seed varies deterministically with the deflation round so
// successive components do not start parallel.
func powerIterate(m [][]float64, seed int) ([]float64, float64) {
	d := len(m)
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 + float64((i*31+seed)%7)/7
	}
	normalize(v)
	var val float64
	for iter := 0; iter < 300; iter++ {
		next := make([]float64, d)
		for i := 0; i < d; i++ {
			s := 0.0
			for j := 0; j < d; j++ {
				s += m[i][j] * v[j]
			}
			next[i] = s
		}
		val = norm(next)
		if val < 1e-15 {
			return v, 0
		}
		for i := range next {
			next[i] /= val
		}
		delta := 0.0
		for i := range v {
			delta += math.Abs(next[i] - v[i])
		}
		v = next
		if delta < 1e-12 {
			break
		}
	}
	return v, val
}

// Residual is the distance from x to the principal subspace (anchored at
// the training mean) — the anomaly score.
func (p *PCADetector) Residual(x []float64) float64 {
	d := len(p.Mean)
	centered := make([]float64, d)
	for i := range centered {
		centered[i] = x[i] - p.Mean[i]
	}
	// Subtract the projection onto each component.
	for _, comp := range p.Components {
		dotp := 0.0
		for i := range centered {
			dotp += centered[i] * comp[i]
		}
		for i := range centered {
			centered[i] -= dotp * comp[i]
		}
	}
	return norm(centered)
}

// Anomalous reports whether x falls outside the trained envelope.
func (p *PCADetector) Anomalous(x []float64) bool {
	return p.Residual(x) > p.Threshold
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// DailyLikeSeries extracts an account's like-count timeseries — the
// feature Viswanath et al. modelled — as one value per day over the
// window [origin, origin+days).
func DailyLikeSeries(store *socialgraph.Store, accountID string, origin time.Time, days int) []float64 {
	out := make([]float64, days)
	for _, act := range store.ActivityLog(accountID) {
		if act.Verb != socialgraph.VerbLike {
			continue
		}
		day := int(act.At.Sub(origin) / (24 * time.Hour))
		if day >= 0 && day < days {
			out[day]++
		}
	}
	return out
}
