package detection

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// LogisticModel is a standardized-feature logistic regression.
type LogisticModel struct {
	Weights []float64
	Bias    float64
	// Means and Stds standardize inputs at prediction time.
	Means []float64
	Stds  []float64
}

// TrainConfig parameterises training.
type TrainConfig struct {
	Epochs       int
	LearningRate float64
	// L2 is the ridge penalty.
	L2   float64
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrEmptyDataset is returned when training data is missing or
// single-class.
var ErrEmptyDataset = errors.New("detection: dataset empty or single-class")

// Train fits a logistic regression with full-batch gradient descent on
// standardized features.
func Train(ds Dataset, cfg TrainConfig) (*LogisticModel, error) {
	cfg = cfg.withDefaults()
	n := len(ds.X)
	if n == 0 {
		return nil, ErrEmptyDataset
	}
	pos := 0
	for _, y := range ds.Y {
		pos += y
	}
	if pos == 0 || pos == n {
		return nil, ErrEmptyDataset
	}
	d := len(ds.X[0])

	m := &LogisticModel{
		Weights: make([]float64, d),
		Means:   make([]float64, d),
		Stds:    make([]float64, d),
	}
	// Standardization parameters.
	for j := 0; j < d; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += ds.X[i][j]
		}
		m.Means[j] = sum / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			diff := ds.X[i][j] - m.Means[j]
			ss += diff * diff
		}
		m.Stds[j] = math.Sqrt(ss / float64(n))
		if m.Stds[j] < 1e-9 {
			m.Stds[j] = 1 // constant feature: contributes nothing
		}
	}
	// Pre-standardize the training matrix.
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			xs[i][j] = (ds.X[i][j] - m.Means[j]) / m.Stds[j]
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for j := range m.Weights {
		m.Weights[j] = rng.NormFloat64() * 0.01
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		gradW := make([]float64, d)
		gradB := 0.0
		for i := 0; i < n; i++ {
			p := sigmoid(dot(m.Weights, xs[i]) + m.Bias)
			err := p - float64(ds.Y[i])
			for j := 0; j < d; j++ {
				gradW[j] += err * xs[i][j]
			}
			gradB += err
		}
		for j := 0; j < d; j++ {
			m.Weights[j] -= cfg.LearningRate * (gradW[j]/float64(n) + cfg.L2*m.Weights[j])
		}
		m.Bias -= cfg.LearningRate * gradB / float64(n)
	}
	return m, nil
}

// Score returns the colluding probability for a raw feature vector.
func (m *LogisticModel) Score(x []float64) float64 {
	s := m.Bias
	for j, w := range m.Weights {
		s += w * (x[j] - m.Means[j]) / m.Stds[j]
	}
	return sigmoid(s)
}

// Predict classifies at the given threshold.
func (m *LogisticModel) Predict(x []float64, threshold float64) bool {
	return m.Score(x) >= threshold
}

// Metrics summarises classifier performance.
type Metrics struct {
	TP, FP, TN, FN int
	Precision      float64
	Recall         float64
	F1             float64
	Accuracy       float64
	AUC            float64
}

// Evaluate scores a dataset at the threshold and computes the confusion
// matrix, point metrics, and ROC AUC.
func Evaluate(m *LogisticModel, ds Dataset, threshold float64) Metrics {
	var mt Metrics
	scores := make([]float64, len(ds.X))
	for i, x := range ds.X {
		scores[i] = m.Score(x)
		predicted := scores[i] >= threshold
		actual := ds.Y[i] == 1
		switch {
		case predicted && actual:
			mt.TP++
		case predicted && !actual:
			mt.FP++
		case !predicted && !actual:
			mt.TN++
		default:
			mt.FN++
		}
	}
	if mt.TP+mt.FP > 0 {
		mt.Precision = float64(mt.TP) / float64(mt.TP+mt.FP)
	}
	if mt.TP+mt.FN > 0 {
		mt.Recall = float64(mt.TP) / float64(mt.TP+mt.FN)
	}
	if mt.Precision+mt.Recall > 0 {
		mt.F1 = 2 * mt.Precision * mt.Recall / (mt.Precision + mt.Recall)
	}
	if n := len(ds.X); n > 0 {
		mt.Accuracy = float64(mt.TP+mt.TN) / float64(n)
	}
	mt.AUC = auc(scores, ds.Y)
	return mt
}

// AUCOf computes ROC AUC for arbitrary scores against binary labels —
// exported so baseline detectors (e.g. the PCA residual) can be compared
// on the same footing as the logistic model.
func AUCOf(scores []float64, labels []int) float64 {
	return auc(scores, labels)
}

// auc computes ROC AUC via the rank statistic (ties averaged).
func auc(scores []float64, labels []int) float64 {
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Average ranks over ties.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	nPos, nNeg := 0, 0
	rankSum := 0.0
	for i, p := range ps {
		if p.y == 1 {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

func sigmoid(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
