package netsim

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func testInternet(t *testing.T) *Internet {
	t.Helper()
	in := NewInternet()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(in.RegisterAS(AS{Number: 64500, Name: "CollusionHost-A", Country: "RU", Bulletproof: true}, "203.0.113.0/24"))
	must(in.RegisterAS(AS{Number: 64501, Name: "CollusionHost-B", Country: "UA", Bulletproof: true}, "198.51.100.0/24"))
	must(in.RegisterAS(AS{Number: 64510, Name: "ResidentialISP-IN", Country: "IN"}, "100.64.0.0/16"))
	return in
}

func TestRegisterASDuplicate(t *testing.T) {
	in := testInternet(t)
	err := in.RegisterAS(AS{Number: 64500, Name: "dup"}, "192.0.2.0/24")
	if err == nil {
		t.Fatal("duplicate ASN registration succeeded")
	}
}

func TestRegisterASOverlap(t *testing.T) {
	in := testInternet(t)
	err := in.RegisterAS(AS{Number: 64999, Name: "overlap"}, "203.0.113.128/25")
	if err == nil {
		t.Fatal("overlapping prefix registration succeeded")
	}
}

func TestRegisterASBadPrefix(t *testing.T) {
	in := NewInternet()
	if err := in.RegisterAS(AS{Number: 1}, "not-a-prefix"); err == nil {
		t.Fatal("invalid prefix accepted")
	}
}

func TestAllocateAndLookup(t *testing.T) {
	in := testInternet(t)
	addr, err := in.Allocate(64500)
	if err != nil {
		t.Fatal(err)
	}
	want := netip.MustParseAddr("203.0.113.1")
	if addr != want {
		t.Fatalf("first allocation = %v, want %v", addr, want)
	}
	as, ok := in.LookupAS(addr)
	if !ok {
		t.Fatalf("LookupAS(%v) not found", addr)
	}
	if as.Number != 64500 || !as.Bulletproof {
		t.Fatalf("LookupAS(%v) = %+v, want AS64500 bulletproof", addr, as)
	}
}

func TestAllocateSequentialUnique(t *testing.T) {
	in := testInternet(t)
	seen := make(map[netip.Addr]bool)
	addrs, err := in.AllocateN(64510, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate allocation %v", a)
		}
		seen[a] = true
		as, ok := in.LookupAS(a)
		if !ok || as.Number != 64510 {
			t.Fatalf("allocated %v not in AS64510", a)
		}
	}
}

func TestAllocateExhaustion(t *testing.T) {
	in := NewInternet()
	if err := in.RegisterAS(AS{Number: 1, Name: "tiny"}, "192.0.2.0/30"); err != nil {
		t.Fatal(err)
	}
	// /30 has 4 addresses; we skip the network address, so 3 are usable.
	for i := 0; i < 3; i++ {
		if _, err := in.Allocate(1); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	if _, err := in.Allocate(1); err == nil {
		t.Fatal("allocation beyond pool size succeeded")
	}
}

func TestAllocateUnknownAS(t *testing.T) {
	in := NewInternet()
	if _, err := in.Allocate(42); err == nil {
		t.Fatal("allocation from unregistered AS succeeded")
	}
}

func TestLookupASString(t *testing.T) {
	in := testInternet(t)
	if _, ok := in.LookupASString("garbage"); ok {
		t.Fatal("LookupASString accepted garbage")
	}
	if _, ok := in.LookupASString("8.8.8.8"); ok {
		t.Fatal("LookupASString found AS for unregistered address")
	}
	as, ok := in.LookupASString("198.51.100.77")
	if !ok || as.Number != 64501 {
		t.Fatalf("LookupASString = %+v, %v; want AS64501", as, ok)
	}
}

func TestASesSorted(t *testing.T) {
	in := testInternet(t)
	ases := in.ASes()
	if len(ases) != 3 {
		t.Fatalf("len(ASes) = %d, want 3", len(ases))
	}
	for i := 1; i < len(ases); i++ {
		if ases[i-1].Number >= ases[i].Number {
			t.Fatalf("ASes not sorted: %v", ases)
		}
	}
}

func TestCountryMixTop(t *testing.T) {
	m := NewCountryMix(map[string]float64{"IN": 55, "EG": 10, "TR": 5})
	c, share := m.Top()
	if c != "IN" {
		t.Fatalf("Top country = %q, want IN", c)
	}
	if share < 0.78 || share > 0.79 {
		t.Fatalf("Top share = %v, want 55/70", share)
	}
}

func TestCountryMixSampleDistribution(t *testing.T) {
	m := NewCountryMix(map[string]float64{"IN": 80, "VN": 20})
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.Sample(rng)]++
	}
	inShare := float64(counts["IN"]) / n
	if inShare < 0.77 || inShare > 0.83 {
		t.Fatalf("IN share = %v, want ≈0.80", inShare)
	}
	if counts["IN"]+counts["VN"] != n {
		t.Fatalf("unexpected countries sampled: %v", counts)
	}
}

func TestCountryMixEmpty(t *testing.T) {
	m := NewCountryMix(nil)
	if got := m.Sample(rand.New(rand.NewSource(1))); got != "" {
		t.Fatalf("empty mix sampled %q", got)
	}
	if c, share := m.Top(); c != "" || share != 0 {
		t.Fatalf("empty mix Top = %q, %v", c, share)
	}
}

func TestCountryMixDropsNonPositive(t *testing.T) {
	m := NewCountryMix(map[string]float64{"IN": 1, "XX": 0, "YY": -3})
	got := m.Countries()
	if len(got) != 1 || got[0] != "IN" {
		t.Fatalf("Countries = %v, want [IN]", got)
	}
}

// Property: sampling always returns a country present in the mix.
func TestQuickCountryMixSampleMembership(t *testing.T) {
	f := func(seed int64, w1, w2, w3 uint8) bool {
		m := NewCountryMix(map[string]float64{
			"IN": float64(w1),
			"EG": float64(w2),
			"VN": float64(w3),
		})
		valid := map[string]bool{"": true}
		for _, c := range m.Countries() {
			valid[c] = true
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			if !valid[m.Sample(rng)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every allocated address is covered by exactly its own AS.
func TestQuickAllocateLookupConsistent(t *testing.T) {
	in := testInternet(t)
	f := func(pick uint8) bool {
		asns := []ASN{64500, 64501, 64510}
		asn := asns[int(pick)%len(asns)]
		a, err := in.Allocate(asn)
		if err != nil {
			// Pool exhaustion under quick's many iterations is acceptable
			// only for the /24 pools; treat as pass to avoid flakiness.
			return true
		}
		as, ok := in.LookupAS(a)
		return ok && as.Number == asn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
