// Package netsim models the slice of the Internet the paper's measurements
// touch: IPv4 addresses, their autonomous systems (ASes), and coarse
// geolocation. The countermeasures of Section 6.4 key on exactly this
// tuple — per-IP rate limits and AS-level blocks — and Figure 8 plots the
// per-IP and per-AS like volumes of the two largest collusion networks.
//
// The model is deliberately simple: an Internet is a set of AS records,
// each owning one or more CIDR prefixes; addresses are allocated from a
// prefix deterministically. Two of the paper's findings are encoded as
// first-class concepts: bulletproof-hosting ASes (hublaa.me routed its
// 6,000-address pool through two of them) and per-country member traffic
// (Tables 2 and 5 report the country mix of collusion network visitors).
package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// ASN identifies an autonomous system.
type ASN uint32

// AS describes one autonomous system in the simulated Internet.
type AS struct {
	Number ASN
	Name   string
	// Country is the ISO-like country label the AS is registered in.
	Country string
	// Bulletproof marks ASes operated by abuse-tolerant hosting providers
	// (paper Sec. 6.4, citing Alrwais et al.). AS-level blocking targets
	// these.
	Bulletproof bool
	prefixes    []netip.Prefix
}

// Internet maps addresses to ASes and allocates addresses from AS pools.
// It is safe for concurrent use.
type Internet struct {
	mu       sync.RWMutex
	ases     map[ASN]*AS
	prefixes []prefixEntry // sorted by prefix address for lookup
	nextHost map[string]uint64
}

type prefixEntry struct {
	prefix netip.Prefix
	asn    ASN
}

// NewInternet returns an empty Internet.
func NewInternet() *Internet {
	return &Internet{
		ases:     make(map[ASN]*AS),
		nextHost: make(map[string]uint64),
	}
}

// RegisterAS adds an AS with its prefixes. It returns an error if the ASN
// is already registered or a prefix is invalid/overlapping an existing one.
func (in *Internet) RegisterAS(as AS, prefixes ...string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.ases[as.Number]; ok {
		return fmt.Errorf("netsim: AS%d already registered", as.Number)
	}
	parsed := make([]netip.Prefix, 0, len(prefixes))
	for _, p := range prefixes {
		pfx, err := netip.ParsePrefix(p)
		if err != nil {
			return fmt.Errorf("netsim: AS%d: %w", as.Number, err)
		}
		pfx = pfx.Masked()
		for _, existing := range in.prefixes {
			if existing.prefix.Overlaps(pfx) {
				return fmt.Errorf("netsim: AS%d prefix %v overlaps AS%d prefix %v",
					as.Number, pfx, existing.asn, existing.prefix)
			}
		}
		parsed = append(parsed, pfx)
	}
	rec := as
	rec.prefixes = parsed
	in.ases[as.Number] = &rec
	for _, pfx := range parsed {
		in.prefixes = append(in.prefixes, prefixEntry{prefix: pfx, asn: as.Number})
	}
	sort.Slice(in.prefixes, func(i, j int) bool {
		return in.prefixes[i].prefix.Addr().Less(in.prefixes[j].prefix.Addr())
	})
	return nil
}

// LookupAS returns the AS record owning addr, if any.
func (in *Internet) LookupAS(addr netip.Addr) (AS, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, e := range in.prefixes {
		if e.prefix.Contains(addr) {
			return *in.ases[e.asn], true
		}
	}
	return AS{}, false
}

// LookupASString is LookupAS for textual addresses; it returns false for
// unparseable input.
func (in *Internet) LookupASString(addr string) (AS, bool) {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return AS{}, false
	}
	return in.LookupAS(a)
}

// Allocate returns the next unused address from the given AS's pools.
// Addresses are handed out sequentially per prefix, skipping the network
// address, so allocation is deterministic.
func (in *Internet) Allocate(asn ASN) (netip.Addr, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	as, ok := in.ases[asn]
	if !ok {
		return netip.Addr{}, fmt.Errorf("netsim: AS%d not registered", asn)
	}
	for _, pfx := range as.prefixes {
		key := pfx.String()
		host := in.nextHost[key] + 1 // skip network address
		addr := addrAtOffset(pfx, host)
		if pfx.Contains(addr) {
			in.nextHost[key] = host
			return addr, nil
		}
	}
	return netip.Addr{}, fmt.Errorf("netsim: AS%d address pools exhausted", asn)
}

// AllocateN allocates n addresses from the AS, spanning prefixes as needed.
func (in *Internet) AllocateN(asn ASN, n int) ([]netip.Addr, error) {
	addrs := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		a, err := in.Allocate(asn)
		if err != nil {
			return addrs, err
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// ASes returns all registered AS records, ordered by ASN.
func (in *Internet) ASes() []AS {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]AS, 0, len(in.ases))
	for _, as := range in.ases {
		out = append(out, *as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// addrAtOffset returns the address at the given host offset within the
// prefix (offset 0 is the network address).
func addrAtOffset(pfx netip.Prefix, offset uint64) netip.Addr {
	base := pfx.Addr().As4()
	v := uint64(base[0])<<24 | uint64(base[1])<<16 | uint64(base[2])<<8 | uint64(base[3])
	v += offset
	var out [4]byte
	out[0] = byte(v >> 24)
	out[1] = byte(v >> 16)
	out[2] = byte(v >> 8)
	out[3] = byte(v)
	return netip.AddrFrom4(out)
}
