package netsim

import (
	"math/rand"
	"sort"
)

// CountryMix is a discrete distribution over country labels. Tables 2 and 5
// of the paper report collusion network visitor populations dominated by
// India, with Egypt, Turkey, Vietnam, Bangladesh, Pakistan, Indonesia, and
// Algeria following; each collusion network has its own mix.
type CountryMix struct {
	countries []string
	cum       []float64 // cumulative weights, last element == total
}

// NewCountryMix builds a distribution from country→weight pairs. Weights
// need not sum to 1. Countries with non-positive weight are dropped; an
// empty mix samples the empty string.
func NewCountryMix(weights map[string]float64) CountryMix {
	countries := make([]string, 0, len(weights))
	for c, w := range weights {
		if w > 0 {
			countries = append(countries, c)
		}
	}
	sort.Strings(countries) // deterministic order for reproducible sampling
	cum := make([]float64, len(countries))
	total := 0.0
	for i, c := range countries {
		total += weights[c]
		cum[i] = total
	}
	return CountryMix{countries: countries, cum: cum}
}

// Sample draws a country using rng.
func (m CountryMix) Sample(rng *rand.Rand) string {
	if len(m.countries) == 0 {
		return ""
	}
	x := rng.Float64() * m.cum[len(m.cum)-1]
	i := sort.SearchFloat64s(m.cum, x)
	if i >= len(m.countries) {
		i = len(m.countries) - 1
	}
	return m.countries[i]
}

// Top returns the country with the highest weight and its share of the
// total weight (0..1).
func (m CountryMix) Top() (country string, share float64) {
	if len(m.countries) == 0 {
		return "", 0
	}
	total := m.cum[len(m.cum)-1]
	best, bestW := "", -1.0
	prev := 0.0
	for i, c := range m.countries {
		w := m.cum[i] - prev
		prev = m.cum[i]
		if w > bestW {
			best, bestW = c, w
		}
	}
	return best, bestW / total
}

// Countries returns the country labels in the mix, sorted.
func (m CountryMix) Countries() []string {
	out := make([]string, len(m.countries))
	copy(out, m.countries)
	return out
}
