package honeypot

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// HTTPSite drives a collusion network's website over HTTP, the way the
// paper's Selenium automation drove the real sites. It implements Site.
type HTTPSite struct {
	name string
	base string
	http *http.Client
}

// NewHTTPSite returns a Site speaking HTTP to the collusion network at
// baseURL.
func NewHTTPSite(name, baseURL string) *HTTPSite {
	return &HTTPSite{
		name: name,
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Name implements Site.
func (s *HTTPSite) Name() string { return s.name }

type siteResponse struct {
	OK        bool    `json:"ok"`
	Error     string  `json:"error"`
	Delivered float64 `json:"delivered"`
	Challenge string  `json:"challenge"`
}

func (s *HTTPSite) post(path string, form url.Values) (siteResponse, error) {
	resp, err := s.http.PostForm(s.base+path, form)
	if err != nil {
		return siteResponse{}, err
	}
	defer resp.Body.Close()
	var body siteResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return siteResponse{}, fmt.Errorf("honeypot: decoding %s response: %w", path, err)
	}
	if !body.OK {
		return body, fmt.Errorf("honeypot: %s: %s", s.name, body.Error)
	}
	return body, nil
}

// SubmitToken implements Site.
func (s *HTTPSite) SubmitToken(accountID, token string) error {
	_, err := s.post("/submit-token", url.Values{
		"account_id":   {accountID},
		"access_token": {token},
	})
	return err
}

// Challenge implements Site.
func (s *HTTPSite) Challenge(accountID string) string {
	resp, err := s.http.Get(s.base + "/captcha?account_id=" + url.QueryEscape(accountID))
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var body siteResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return ""
	}
	return body.Challenge
}

// RequestLikes implements Site.
func (s *HTTPSite) RequestLikes(accountID, postID, captchaAnswer string) (int, error) {
	body, err := s.post("/request-likes", url.Values{
		"account_id": {accountID},
		"post_id":    {postID},
		"captcha":    {captchaAnswer},
	})
	if err != nil {
		return 0, err
	}
	return int(body.Delivered), nil
}

// CompleteAdWall implements Site by walking the site's /adwall endpoint.
func (s *HTTPSite) CompleteAdWall(accountID string) error {
	_, err := s.post("/adwall", url.Values{"account_id": {accountID}})
	return err
}

// RequestComments implements Site.
func (s *HTTPSite) RequestComments(accountID, postID, captchaAnswer string) (int, error) {
	body, err := s.post("/request-comments", url.Values{
		"account_id": {accountID},
		"post_id":    {postID},
		"captcha":    {captchaAnswer},
	})
	if err != nil {
		return 0, err
	}
	return int(body.Delivered), nil
}

var _ Site = (*HTTPSite)(nil)
