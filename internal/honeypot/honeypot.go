// Package honeypot implements the measurement apparatus of Section 4: the
// honeypot accounts that infiltrate collusion networks, the automation
// that joins a network (install app → leak token → submit token), the
// request loop that "milks" likes and comments, the crawlers that log
// incoming and outgoing activity, and the membership estimator built on
// the milked data.
//
// The paper ran 22 honeypot accounts, one per collusion network, posting
// status updates and requesting likes continuously for three months; the
// set of unique accounts that liked a honeypot's posts is a lower-bound
// estimate of that network's membership (Table 4, Figure 4).
package honeypot

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/collusion"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Site is the slice of a collusion network the honeypot automation
// drives. *collusion.Network implements it directly; HTTPSite drives a
// network's website over HTTP.
type Site interface {
	Name() string
	SubmitToken(accountID, token string) error
	Challenge(accountID string) string
	RequestLikes(accountID, postID, captchaAnswer string) (int, error)
	RequestComments(accountID, postID, captchaAnswer string) (int, error)
	// CompleteAdWall walks the site's ad redirect chain (a no-op on sites
	// without one), earning the allowance some networks demand before
	// each request.
	CompleteAdWall(accountID string) error
}

// CaptchaSolver answers CAPTCHA challenges; the paper used a commercial
// solving service. SolveArithmetic handles the simulated "a+b=" captchas.
type CaptchaSolver func(challenge string) string

// SolveArithmetic solves "a+b=" challenges; it returns "" on anything it
// cannot parse.
func SolveArithmetic(challenge string) string {
	var a, b int
	if _, err := fmt.Sscanf(challenge, "%d+%d=", &a, &b); err != nil {
		return ""
	}
	return strconv.Itoa(a + b)
}

// Honeypot is one honeypot account infiltrating one collusion network.
type Honeypot struct {
	Account socialgraph.Account

	clock   simclock.Clock
	graph   *socialgraph.Store
	client  platform.Client
	site    Site
	solver  CaptchaSolver
	app     apps.App
	token   string
	postIDs []string
	joined  bool
}

// Config assembles a honeypot.
type Config struct {
	Clock simclock.Clock
	// Graph is the platform's store when running in-process. Leave nil
	// when the honeypot drives a remote platform over HTTP: posting and
	// crawling then go through Client, and AccountID must name an
	// existing platform account.
	Graph  *socialgraph.Store
	Client platform.Client
	Site   Site
	// App is the application the collusion network exploits; the honeypot
	// installs it during Join.
	App    apps.App
	Solver CaptchaSolver
	// Name and Country label the honeypot account (in-process mode).
	Name    string
	Country string
	// AccountID is the pre-registered account to act as (remote mode).
	AccountID string
}

// New registers a fresh honeypot account (or binds to an existing one in
// remote mode). The account performs no activity other than the milking
// loop, so everything that happens to it is attributable to the collusion
// network (paper footnote 3).
func New(cfg Config) *Honeypot {
	if cfg.Solver == nil {
		cfg.Solver = SolveArithmetic
	}
	name := cfg.Name
	if name == "" {
		name = "honeypot"
	}
	var acct socialgraph.Account
	if cfg.Graph != nil {
		acct = cfg.Graph.CreateAccount(name, cfg.Country, cfg.Clock.Now())
	} else {
		acct = socialgraph.Account{ID: cfg.AccountID, Name: name, Country: cfg.Country}
	}
	return &Honeypot{
		Account: acct,
		clock:   cfg.Clock,
		graph:   cfg.Graph,
		client:  cfg.Client,
		site:    cfg.Site,
		solver:  cfg.Solver,
		app:     cfg.App,
	}
}

// Join walks the collusion network's onboarding (Figure 3): install the
// exploited application via the implicit flow, copy the leaked token, and
// submit it to the site.
func (h *Honeypot) Join() error {
	tok, err := h.client.AuthorizeImplicit(h.app.ID, h.app.RedirectURI, h.Account.ID,
		[]string{apps.PermPublicProfile, apps.PermPublishActions})
	if err != nil {
		return fmt.Errorf("honeypot: implicit flow: %w", err)
	}
	h.token = tok
	if err := h.site.SubmitToken(h.Account.ID, tok); err != nil {
		return fmt.Errorf("honeypot: submit token: %w", err)
	}
	h.joined = true
	return nil
}

// Rejoin refreshes the honeypot's token and resubmits it — needed after
// token invalidation sweeps, since the honeypot must keep milking.
func (h *Honeypot) Rejoin() error { return h.Join() }

// Token returns the honeypot's current leaked token (the countermeasure
// pipeline invalidates milked tokens, including, eventually, this one).
func (h *Honeypot) Token() string { return h.token }

// PostStatus publishes a status update on the honeypot's own timeline.
// In-process this is first-party activity (a direct store write, not via
// the exploited app); in remote mode the post goes through the Graph API
// with the honeypot's own token.
func (h *Honeypot) PostStatus(message string) (socialgraph.Post, error) {
	if h.graph != nil {
		post, err := h.graph.CreatePost(h.Account.ID, message, socialgraph.WriteMeta{At: h.clock.Now()})
		if err != nil {
			return socialgraph.Post{}, err
		}
		h.postIDs = append(h.postIDs, post.ID)
		return post, nil
	}
	id, err := h.client.Publish(h.token, message, "")
	if err != nil {
		return socialgraph.Post{}, err
	}
	post := socialgraph.Post{ID: id, AuthorID: h.Account.ID, Message: message, CreatedAt: h.clock.Now()}
	h.postIDs = append(h.postIDs, post.ID)
	return post, nil
}

// MilkOnce posts one status update and requests likes on it, solving a
// CAPTCHA when the site demands one. It returns the post ID and the
// number of likes the site claims to have delivered.
func (h *Honeypot) MilkOnce() (postID string, delivered int, err error) {
	if !h.joined {
		return "", 0, errors.New("honeypot: not joined")
	}
	post, err := h.PostStatus(fmt.Sprintf("honeypot status %d", len(h.postIDs)+1))
	if err != nil {
		return "", 0, err
	}
	delivered, err = h.requestWithCaptcha(post.ID, h.site.RequestLikes)
	return post.ID, delivered, err
}

// MilkComments posts one status update and requests auto-comments on it.
func (h *Honeypot) MilkComments() (postID string, delivered int, err error) {
	if !h.joined {
		return "", 0, errors.New("honeypot: not joined")
	}
	post, err := h.PostStatus(fmt.Sprintf("honeypot comment bait %d", len(h.postIDs)+1))
	if err != nil {
		return "", 0, err
	}
	delivered, err = h.requestWithCaptcha(post.ID, h.site.RequestComments)
	return post.ID, delivered, err
}

// requestWithCaptcha issues a request, automatically clearing the site's
// friction gates: ad redirect walls are walked and CAPTCHAs solved, with
// a bounded number of retries (real automation did exactly this via
// solving services and scripted redirects).
func (h *Honeypot) requestWithCaptcha(postID string, request func(string, string, string) (int, error)) (int, error) {
	answer := ""
	var delivered int
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		delivered, err = request(h.Account.ID, postID, answer)
		switch {
		case err == nil:
			return delivered, nil
		case strings.Contains(err.Error(), "ad redirect"):
			if werr := h.site.CompleteAdWall(h.Account.ID); werr != nil {
				return 0, werr
			}
		case strings.Contains(err.Error(), "CAPTCHA"):
			answer = h.solver(h.site.Challenge(h.Account.ID))
		default:
			return delivered, err
		}
	}
	return delivered, err
}

// PostIDs returns the honeypot's submitted posts in order.
func (h *Honeypot) PostIDs() []string {
	out := make([]string, len(h.postIDs))
	copy(out, h.postIDs)
	return out
}

// IncomingLikes crawls the honeypot's timeline and returns, per post, the
// likes received (the data the membership estimator consumes).
func (h *Honeypot) IncomingLikes() map[string][]socialgraph.Like {
	out := make(map[string][]socialgraph.Like, len(h.postIDs))
	for _, id := range h.postIDs {
		if h.graph != nil {
			out[id] = h.graph.Likes(id)
			continue
		}
		records, err := h.client.LikesOf(h.token, id)
		if err != nil {
			continue
		}
		likes := make([]socialgraph.Like, len(records))
		for i, r := range records {
			likes[i] = socialgraph.Like{AccountID: r.AccountID, ObjectID: id, At: r.At}
		}
		out[id] = likes
	}
	return out
}

// IncomingComments crawls the comments received per post.
func (h *Honeypot) IncomingComments() map[string][]socialgraph.Comment {
	out := make(map[string][]socialgraph.Comment, len(h.postIDs))
	for _, id := range h.postIDs {
		if h.graph != nil {
			out[id] = h.graph.Comments(id)
			continue
		}
		records, err := h.client.CommentsOf(h.token, id)
		if err != nil {
			continue
		}
		comments := make([]socialgraph.Comment, len(records))
		for i, r := range records {
			comments[i] = socialgraph.Comment{ID: r.ID, PostID: id, AccountID: r.AccountID, Message: r.Message, At: r.At}
		}
		out[id] = comments
	}
	return out
}

// OutgoingActivities crawls the honeypot's own activity log, excluding
// its first-party status posts: what remains is reputation manipulation
// performed *with* the honeypot's token by the collusion network
// (Table 4's outgoing columns, Figure 7). Remote mode returns nil: the
// simulated Graph API does not expose another account's activity log.
func (h *Honeypot) OutgoingActivities() []socialgraph.Activity {
	if h.graph == nil {
		return nil
	}
	var out []socialgraph.Activity
	for _, act := range h.graph.ActivityLog(h.Account.ID) {
		if act.Verb == socialgraph.VerbPost {
			continue
		}
		out = append(out, act)
	}
	return out
}

// Estimator accumulates milking observations for one collusion network
// and derives the Table 4 row, the Figure 4 curve, and the Figure 6
// histogram.
type Estimator struct {
	tracker *metrics.UniqueTracker
	// likesPerAccount counts how many of the honeypot's posts each
	// account liked (Figure 6).
	likesPerAccount map[string]int
	postsSubmitted  int
	totalLikes      int
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{
		tracker:         metrics.NewUniqueTracker(),
		likesPerAccount: make(map[string]int),
	}
}

// ObservePost ingests the crawled likers of one milked post.
func (e *Estimator) ObservePost(likers []string) {
	e.tracker.Step(likers)
	e.postsSubmitted++
	e.totalLikes += len(likers)
	for _, id := range likers {
		e.likesPerAccount[id]++
	}
}

// MembershipEstimate returns the number of unique accounts observed so
// far — a strict lower bound on the network's membership.
func (e *Estimator) MembershipEstimate() int {
	return int(e.tracker.Unique())
}

// PostsSubmitted returns how many posts have been ingested.
func (e *Estimator) PostsSubmitted() int { return e.postsSubmitted }

// TotalLikes returns the total likes observed.
func (e *Estimator) TotalLikes() int { return e.totalLikes }

// AvgLikesPerPost returns the mean likes per milked post.
func (e *Estimator) AvgLikesPerPost() float64 {
	if e.postsSubmitted == 0 {
		return 0
	}
	return float64(e.totalLikes) / float64(e.postsSubmitted)
}

// Curve returns the cumulative (likes, unique accounts) series per post
// index — Figure 4.
func (e *Estimator) Curve() []metrics.UniquePoint {
	return e.tracker.Points()
}

// PostsLikedHistogram returns the Figure 6 histogram: for each account,
// how many of the honeypot's posts it liked.
func (e *Estimator) PostsLikedHistogram() *metrics.IntHistogram {
	h := metrics.NewIntHistogram()
	for _, n := range e.likesPerAccount {
		h.Observe(n)
	}
	return h
}

// AccountsLikingAtMost returns the fraction of observed accounts that
// liked at most k posts (the paper reports 76% of hublaa.me accounts and
// 30% of official-liker.net accounts at k=1 during the clustering window).
func (e *Estimator) AccountsLikingAtMost(k int) float64 {
	if len(e.likesPerAccount) == 0 {
		return 0
	}
	n := 0
	for _, c := range e.likesPerAccount {
		if c <= k {
			n++
		}
	}
	return float64(n) / float64(len(e.likesPerAccount))
}

// OutgoingSummary aggregates a honeypot's outgoing activity log into the
// Table 4 outgoing columns.
type OutgoingSummary struct {
	Activities     int
	TargetAccounts int
	TargetPages    int
}

// SummarizeOutgoing computes the outgoing columns from crawled activity.
func SummarizeOutgoing(acts []socialgraph.Activity) OutgoingSummary {
	accounts := make(map[string]bool)
	pages := make(map[string]bool)
	for _, a := range acts {
		if kind, ok := ids.KindOf(a.TargetID); ok && kind == ids.KindPage {
			pages[a.TargetID] = true
		} else {
			accounts[a.TargetID] = true
		}
	}
	return OutgoingSummary{
		Activities:     len(acts),
		TargetAccounts: len(accounts),
		TargetPages:    len(pages),
	}
}

// HourlySeries buckets activities into hours since origin — Figure 7.
func HourlySeries(acts []socialgraph.Activity, origin time.Time) *metrics.Series {
	s := metrics.NewSeries(origin, time.Hour)
	for _, a := range acts {
		s.Observe(a.At, 1)
	}
	return s
}

var _ Site = (*collusion.Network)(nil)
