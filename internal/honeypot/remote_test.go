package honeypot

import (
	"net/http/httptest"
	"testing"

	"repro/internal/apps"
	"repro/internal/collusion"
	"repro/internal/platform"
	"repro/internal/simclock"
)

// TestRemoteModeEndToEnd runs the entire stack over real HTTP: the
// platform serves the OAuth dialog and Graph API, the collusion network
// site runs as its own HTTP service talking to the platform over HTTP,
// and the honeypot (in remote mode, no shared store) drives both — the
// full deployment shape of cmd/platformd + cmd/collusiond + cmd/milker.
func TestRemoteModeEndToEnd(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	p := platform.New(clock, nil)
	platformSrv := p.ServeHTTPTest()
	t.Cleanup(platformSrv.Close)

	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})

	// The collusion network talks to the platform over HTTP too.
	networkClient := platform.NewHTTPClient(platformSrv.URL)
	network := collusion.NewNetwork(collusion.Config{
		Name:            "remote-liker.net",
		AppID:           app.ID,
		AppRedirectURI:  app.RedirectURI,
		LikesPerRequest: 7,
	}, clock, networkClient)
	siteSrv := httptest.NewServer(collusion.Handler(network))
	t.Cleanup(siteSrv.Close)

	// Seed members (in-process account creation stands in for platform
	// signup, which has no HTTP surface).
	memberClient := platform.NewHTTPClient(platformSrv.URL)
	for i := 0; i < 15; i++ {
		acct := p.Graph.CreateAccount("member", "IN", clock.Now())
		tok, err := memberClient.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID,
			[]string{apps.PermPublicProfile, apps.PermPublishActions})
		if err != nil {
			t.Fatal(err)
		}
		if err := network.SubmitToken(acct.ID, tok); err != nil {
			t.Fatal(err)
		}
	}

	// Remote honeypot: pre-registered account, no store access.
	hpAccount := p.Graph.CreateAccount("remote-honeypot", "US", clock.Now())
	hp := New(Config{
		Clock:     clock,
		Client:    platform.NewHTTPClient(platformSrv.URL),
		Site:      NewHTTPSite("remote-liker.net", siteSrv.URL),
		App:       app,
		AccountID: hpAccount.ID,
		Name:      "remote-honeypot",
	})
	if err := hp.Join(); err != nil {
		t.Fatal(err)
	}
	postID, delivered, err := hp.MilkOnce()
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 7 {
		t.Fatalf("delivered = %d", delivered)
	}
	// The post was published through the Graph API onto the real platform.
	if _, err := p.Graph.Post(postID); err != nil {
		t.Fatalf("post not on platform: %v", err)
	}
	// Remote crawling via the likes edge.
	incoming := hp.IncomingLikes()
	if len(incoming[postID]) != 7 {
		t.Fatalf("crawled likes = %d", len(incoming[postID]))
	}
	est := NewEstimator()
	var likers []string
	for _, l := range incoming[postID] {
		likers = append(likers, l.AccountID)
	}
	est.ObservePost(likers)
	if est.MembershipEstimate() != 7 {
		t.Fatalf("estimate = %d", est.MembershipEstimate())
	}
	// Remote mode has no activity-log access.
	if acts := hp.OutgoingActivities(); acts != nil {
		t.Fatalf("remote outgoing = %v", acts)
	}
}

func TestRemoteModeComments(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	p := platform.New(clock, nil)
	platformSrv := p.ServeHTTPTest()
	t.Cleanup(platformSrv.Close)
	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	client := platform.NewHTTPClient(platformSrv.URL)
	network := collusion.NewNetwork(collusion.Config{
		Name:               "remote-commenter.net",
		AppID:              app.ID,
		AppRedirectURI:     app.RedirectURI,
		LikesPerRequest:    5,
		CommentsPerRequest: 3,
		CommentDictionary:  []string{"gr8", "nice pic"},
	}, clock, client)
	siteSrv := httptest.NewServer(collusion.Handler(network))
	t.Cleanup(siteSrv.Close)

	for i := 0; i < 10; i++ {
		acct := p.Graph.CreateAccount("member", "IN", clock.Now())
		tok, err := client.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID,
			[]string{apps.PermPublicProfile, apps.PermPublishActions})
		if err != nil {
			t.Fatal(err)
		}
		if err := network.SubmitToken(acct.ID, tok); err != nil {
			t.Fatal(err)
		}
	}
	hpAccount := p.Graph.CreateAccount("remote-honeypot", "US", clock.Now())
	hp := New(Config{
		Clock:     clock,
		Client:    platform.NewHTTPClient(platformSrv.URL),
		Site:      NewHTTPSite("remote-commenter.net", siteSrv.URL),
		App:       app,
		AccountID: hpAccount.ID,
	})
	if err := hp.Join(); err != nil {
		t.Fatal(err)
	}
	postID, delivered, err := hp.MilkComments()
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Fatalf("delivered = %d", delivered)
	}
	comments := hp.IncomingComments()[postID]
	if len(comments) != 3 {
		t.Fatalf("crawled comments = %d", len(comments))
	}
	for _, c := range comments {
		if c.Message != "gr8" && c.Message != "nice pic" {
			t.Fatalf("comment %q not from dictionary", c.Message)
		}
	}
}
