package honeypot

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/collusion"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

var t0 = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

type world struct {
	clock   *simclock.Simulated
	p       *platform.Platform
	client  platform.Client
	app     apps.App
	network *collusion.Network
	members []socialgraph.Account
}

func newWorld(t *testing.T, cfg collusion.Config, members int) *world {
	t.Helper()
	clock := simclock.NewSimulated(t0)
	p := platform.New(clock, nil)
	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	client := platform.NewLocalClient(p)
	cfg.AppID = app.ID
	cfg.AppRedirectURI = app.RedirectURI
	if cfg.Name == "" {
		cfg.Name = "test-liker.net"
	}
	n := collusion.NewNetwork(cfg, clock, client)
	w := &world{clock: clock, p: p, client: client, app: app, network: n}
	for i := 0; i < members; i++ {
		acct := p.Graph.CreateAccount(fmt.Sprintf("member-%d", i), "IN", clock.Now())
		tok, err := client.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID,
			[]string{apps.PermPublicProfile, apps.PermPublishActions})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SubmitToken(acct.ID, tok); err != nil {
			t.Fatal(err)
		}
		w.members = append(w.members, acct)
	}
	return w
}

func (w *world) honeypot(t *testing.T, site Site) *Honeypot {
	t.Helper()
	h := New(Config{
		Clock:  w.clock,
		Graph:  w.p.Graph,
		Client: w.client,
		Site:   site,
		App:    w.app,
		Name:   "honeypot-1",
	})
	if err := h.Join(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestJoinLeaksTokenIntoPool(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 5}, 10)
	h := w.honeypot(t, w.network)
	if h.Token() == "" {
		t.Fatal("honeypot has no token after Join")
	}
	if !w.network.Pool().Contains(h.Account.ID) {
		t.Fatal("honeypot token not pooled")
	}
	if w.network.MembershipSize() != 11 {
		t.Fatalf("MembershipSize = %d, want 11", w.network.MembershipSize())
	}
}

func TestMilkOnceDeliversAndCrawls(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 8}, 30)
	h := w.honeypot(t, w.network)
	postID, delivered, err := h.MilkOnce()
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 8 {
		t.Fatalf("delivered = %d, want 8", delivered)
	}
	incoming := h.IncomingLikes()
	if len(incoming[postID]) != 8 {
		t.Fatalf("crawled likes = %d", len(incoming[postID]))
	}
	for _, l := range incoming[postID] {
		if l.AccountID == h.Account.ID {
			t.Fatal("honeypot liked its own post")
		}
	}
}

func TestMilkSolvesCaptcha(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 5, CaptchaRequired: true}, 10)
	h := w.honeypot(t, w.network)
	_, delivered, err := h.MilkOnce()
	if err != nil {
		t.Fatalf("captcha milking failed: %v", err)
	}
	if delivered != 5 {
		t.Fatalf("delivered = %d", delivered)
	}
}

func TestMilkCommentsCrawl(t *testing.T) {
	w := newWorld(t, collusion.Config{
		LikesPerRequest:    5,
		CommentsPerRequest: 4,
		CommentDictionary:  []string{"gr8", "w00wwwwwwww"},
	}, 10)
	h := w.honeypot(t, w.network)
	postID, delivered, err := h.MilkComments()
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 4 {
		t.Fatalf("delivered = %d", delivered)
	}
	comments := h.IncomingComments()[postID]
	if len(comments) != 4 {
		t.Fatalf("crawled comments = %d", len(comments))
	}
}

func TestOutgoingActivitiesObserved(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 9}, 9)
	h := w.honeypot(t, w.network)
	// Another member requests likes; with only 10 tokens pooled, the
	// honeypot's token is certain to be sampled (9 needed, requester
	// excluded).
	other := w.members[0]
	post, err := w.p.Graph.CreatePost(other.ID, "other's post", socialgraph.WriteMeta{At: w.clock.Now()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.network.RequestLikes(other.ID, post.ID, ""); err != nil {
		t.Fatal(err)
	}
	acts := h.OutgoingActivities()
	if len(acts) != 1 {
		t.Fatalf("outgoing = %d, want 1", len(acts))
	}
	if acts[0].Verb != socialgraph.VerbLike || acts[0].TargetID != other.ID {
		t.Fatalf("outgoing = %+v", acts[0])
	}
	sum := SummarizeOutgoing(acts)
	if sum.Activities != 1 || sum.TargetAccounts != 1 || sum.TargetPages != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestOutgoingPageTargets(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 9}, 9)
	h := w.honeypot(t, w.network)
	owner := w.members[0]
	page, err := w.p.Graph.CreatePage(owner.ID, "Fan Page", w.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.network.RequestLikes(owner.ID, page.ID, ""); err != nil {
		t.Fatal(err)
	}
	sum := SummarizeOutgoing(h.OutgoingActivities())
	if sum.TargetPages != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestEstimatorDiminishingReturns(t *testing.T) {
	e := NewEstimator()
	e.ObservePost([]string{"a", "b", "c"})
	e.ObservePost([]string{"b", "c", "d"})
	e.ObservePost([]string{"a", "d", "e"})
	if e.MembershipEstimate() != 5 {
		t.Fatalf("MembershipEstimate = %d, want 5", e.MembershipEstimate())
	}
	if e.TotalLikes() != 9 || e.PostsSubmitted() != 3 {
		t.Fatalf("totals = %d likes / %d posts", e.TotalLikes(), e.PostsSubmitted())
	}
	if got := e.AvgLikesPerPost(); got != 3 {
		t.Fatalf("AvgLikesPerPost = %v", got)
	}
	curve := e.Curve()
	if len(curve) != 3 {
		t.Fatalf("curve length = %d", len(curve))
	}
	if curve[2].CumulativeEvents != 9 || curve[2].CumulativeUnique != 5 {
		t.Fatalf("curve[2] = %+v", curve[2])
	}
	hist := e.PostsLikedHistogram()
	bins := hist.Bins()
	// a:2 b:2 c:2 d:2 e:1 → bin(1)=1, bin(2)=4
	if len(bins) != 2 || bins[0].Count != 1 || bins[1].Count != 4 {
		t.Fatalf("histogram = %+v", bins)
	}
	if got := e.AccountsLikingAtMost(1); got != 0.2 {
		t.Fatalf("AccountsLikingAtMost(1) = %v", got)
	}
}

func TestEstimatorEmpty(t *testing.T) {
	e := NewEstimator()
	if e.AvgLikesPerPost() != 0 || e.MembershipEstimate() != 0 || e.AccountsLikingAtMost(1) != 0 {
		t.Fatal("empty estimator not zero")
	}
}

func TestSolveArithmetic(t *testing.T) {
	if got := SolveArithmetic("3+4="); got != "7" {
		t.Fatalf("SolveArithmetic = %q", got)
	}
	if got := SolveArithmetic("what is love"); got != "" {
		t.Fatalf("garbage challenge solved: %q", got)
	}
}

func TestHourlySeries(t *testing.T) {
	acts := []socialgraph.Activity{
		{At: t0.Add(30 * time.Minute)},
		{At: t0.Add(45 * time.Minute)},
		{At: t0.Add(5 * time.Hour)},
	}
	s := HourlySeries(acts, t0)
	pts := s.Points()
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Count != 2 || pts[5].Count != 1 {
		t.Fatalf("series = %+v", pts)
	}
}

func TestRejoinAfterInvalidation(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 3}, 10)
	h := w.honeypot(t, w.network)
	old := h.Token()
	w.p.OAuth.Invalidate(old, "countermeasure")
	if err := h.Rejoin(); err != nil {
		t.Fatal(err)
	}
	if h.Token() == old {
		t.Fatal("Rejoin did not mint a fresh token")
	}
	if _, _, err := h.MilkOnce(); err != nil {
		t.Fatalf("milking after rejoin: %v", err)
	}
}

func TestHTTPSiteDrivesNetworkOverHTTP(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 6, CaptchaRequired: true}, 20)
	srv := httptest.NewServer(collusion.Handler(w.network))
	t.Cleanup(srv.Close)
	site := NewHTTPSite(w.network.Name(), srv.URL)
	if site.Name() != w.network.Name() {
		t.Fatalf("Name = %q", site.Name())
	}
	h := w.honeypot(t, site)
	postID, delivered, err := h.MilkOnce()
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 6 {
		t.Fatalf("delivered = %d", delivered)
	}
	if got := w.p.Graph.LikeCount(postID); got != 6 {
		t.Fatalf("LikeCount = %d", got)
	}
}

func TestHTTPSiteErrors(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 6}, 5)
	srv := httptest.NewServer(collusion.Handler(w.network))
	t.Cleanup(srv.Close)
	site := NewHTTPSite("x", srv.URL)
	if err := site.SubmitToken("ghost", "bad-token"); err == nil {
		t.Fatal("bad token submission succeeded over HTTP")
	}
	if _, err := site.RequestLikes("stranger", "p", ""); err == nil {
		t.Fatal("non-member request succeeded over HTTP")
	}
}

func TestNotJoinedErrors(t *testing.T) {
	w := newWorld(t, collusion.Config{LikesPerRequest: 5}, 5)
	h := New(Config{
		Clock:  w.clock,
		Graph:  w.p.Graph,
		Client: w.client,
		Site:   w.network,
		App:    w.app,
	})
	if _, _, err := h.MilkOnce(); err == nil {
		t.Fatal("MilkOnce before Join succeeded")
	}
	if _, _, err := h.MilkComments(); err == nil {
		t.Fatal("MilkComments before Join succeeded")
	}
}

func TestMilkThroughAdWallAndCaptcha(t *testing.T) {
	w := newWorld(t, collusion.Config{
		LikesPerRequest: 6,
		AdWallHops:      2,
		AdsPerVisit:     3,
		CaptchaRequired: true,
	}, 20)
	h := w.honeypot(t, w.network)
	postID, delivered, err := h.MilkOnce()
	if err != nil {
		t.Fatalf("full friction stack milking failed: %v", err)
	}
	if delivered != 6 {
		t.Fatalf("delivered = %d", delivered)
	}
	if got := w.p.Graph.LikeCount(postID); got != 6 {
		t.Fatalf("LikeCount = %d", got)
	}
}

func TestHTTPSiteAdWallAutomation(t *testing.T) {
	w := newWorld(t, collusion.Config{
		LikesPerRequest: 4,
		AdWallHops:      1,
		AdsPerVisit:     2,
	}, 15)
	srv := httptest.NewServer(collusion.Handler(w.network))
	t.Cleanup(srv.Close)
	site := NewHTTPSite(w.network.Name(), srv.URL)
	h := w.honeypot(t, site)
	_, delivered, err := h.MilkOnce()
	if err != nil {
		t.Fatalf("HTTP ad wall milking failed: %v", err)
	}
	if delivered != 4 {
		t.Fatalf("delivered = %d", delivered)
	}
	if got := w.network.Stats().AdImpressions; got == 0 {
		t.Fatal("ad wall served no impressions")
	}
}
