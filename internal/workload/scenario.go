package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/collusion"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/shorturl"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Autonomous system numbers used by the scenario.
const (
	ASBulletproofA netsim.ASN = 64500 // hublaa.me's first bulletproof AS
	ASBulletproofB netsim.ASN = 64501 // hublaa.me's second bulletproof AS
	ASGenericHost  netsim.ASN = 65000 // everyone else's hosting
)

// Options parameterises scenario construction.
type Options struct {
	// Scale divides the paper's population numbers (memberships, IP pool
	// sizes). 1 reproduces full scale; tests use 100–1000.
	Scale int
	// MinMembers floors the scaled membership per network so tiny scales
	// remain meaningful.
	MinMembers int
	// Networks selects a subset of the 22 specs by name; nil = all.
	Networks []string
	// Start is the simulation epoch; zero means November 1, 2015 (the
	// start of the paper's milking campaign).
	Start time.Time
	// Seed drives all randomness.
	Seed int64
	// ExtraOutageDays schedules additional site outages per network name
	// (e.g. hublaa.me's day 45–50 shutdown during the countermeasure
	// campaign).
	ExtraOutageDays map[string][]int
	// Shards pins the platform's social-graph stripe count; 0 selects
	// the GOMAXPROCS-scaled default. Experiments sweep this.
	Shards int
	// DeliveryBatchSize and DeliveryWorkers are passed through to every
	// network's delivery engine: 0 selects the collusion defaults
	// (batched, 50-op chunks, 4 workers); a negative batch size disables
	// batching so every like takes its own transport call. A/B
	// benchmarks and the contention sweep flip these.
	DeliveryBatchSize int
	DeliveryWorkers   int
	// RetentionWindow bounds the social graph's edge-history retention
	// (see socialgraph.SetRetentionWindow); 0 keeps the default infinite
	// window, so nothing is ever evicted and Table-4 outputs are
	// untouched. Sweeps still only run when something calls
	// Store.RetentionSweep (e.g. core.Study.SweepRetention).
	RetentionWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 100
	}
	if o.MinMembers <= 0 {
		o.MinMembers = 40
	}
	if o.Start.IsZero() {
		o.Start = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ScaledMembership returns the membership target after scaling.
func ScaledMembership(spec NetworkSpec, scale, min int) int {
	m := spec.Membership / scale
	if m < min {
		m = min
	}
	return m
}

// NetworkInstance is one instantiated collusion network plus its member
// population.
type NetworkInstance struct {
	Spec    NetworkSpec
	Net     *collusion.Network
	Members []socialgraph.Account
	// ScaledMembership is the initial member count.
	ScaledMembership int
	// ShortCode is the network's install-link short URL: every joining
	// member clicks through it, so the shortener's public analytics
	// accumulate the traffic the paper mined in Table 5.
	ShortCode string

	scenario *Scenario
	rng      *rand.Rand
	mix      netsim.CountryMix
	nextID   int
}

// Scenario is a fully wired world: platform, Internet, exploited apps,
// and collusion networks with populated token pools.
type Scenario struct {
	Opts     Options
	Clock    *simclock.Simulated
	Platform *platform.Platform
	Client   platform.Client
	Internet *netsim.Internet
	// Apps maps exploited application name -> registered app.
	Apps map[string]apps.App
	// Networks holds the instantiated collusion networks in spec order.
	Networks []*NetworkInstance
	// ShortURLs is the goo.gl-style shortener the networks funnel members
	// through; one code per network (see NetworkInstance.ShortCode).
	ShortURLs *shorturl.Service

	rng *rand.Rand
}

// BuildScenario assembles the world.
func BuildScenario(opts Options) (*Scenario, error) {
	opts = opts.withDefaults()
	clock := simclock.NewSimulated(opts.Start)
	internet := netsim.NewInternet()
	register := func(as netsim.AS, prefixes ...string) error {
		return internet.RegisterAS(as, prefixes...)
	}
	if err := register(netsim.AS{Number: ASBulletproofA, Name: "BP-HOSTING-A", Country: "RU", Bulletproof: true}, "203.0.0.0/16"); err != nil {
		return nil, err
	}
	if err := register(netsim.AS{Number: ASBulletproofB, Name: "BP-HOSTING-B", Country: "UA", Bulletproof: true}, "198.18.0.0/16"); err != nil {
		return nil, err
	}
	if err := register(netsim.AS{Number: ASGenericHost, Name: "GENERIC-HOSTING", Country: "US"}, "192.168.0.0/16"); err != nil {
		return nil, err
	}

	p := platform.NewWithShards(clock, internet, opts.Shards)
	if opts.RetentionWindow > 0 {
		p.Graph.SetRetentionWindow(opts.RetentionWindow)
	}
	client := platform.NewLocalClient(p)
	s := &Scenario{
		Opts:      opts,
		Clock:     clock,
		Platform:  p,
		Client:    client,
		Internet:  internet,
		Apps:      make(map[string]apps.App),
		ShortURLs: shorturl.NewService(clock),
		rng:       rand.New(rand.NewSource(opts.Seed)),
	}

	for _, spec := range ExploitedApps() {
		app := p.Apps.Register(apps.Config{
			Name:              spec.Name,
			RedirectURI:       "https://" + sanitizeHost(spec.Name) + ".example/callback",
			ClientFlowEnabled: true,
			RequireAppSecret:  false,
			Lifetime:          apps.LongTerm,
			// The full read/write set collusion networks ask members to
			// grant — user_friends is what turns pooled tokens into
			// social-graph harvesting material (Sec. 8).
			Permissions: []string{apps.PermPublicProfile, apps.PermEmail, apps.PermUserFriends, apps.PermPublishActions},
			MAU:         spec.MAU,
			DAU:         spec.DAU,
		})
		s.Apps[spec.Name] = app
	}

	selected := Networks()
	if opts.Networks != nil {
		want := make(map[string]bool, len(opts.Networks))
		for _, n := range opts.Networks {
			want[n] = true
		}
		var filtered []NetworkSpec
		for _, spec := range selected {
			if want[spec.Name] {
				filtered = append(filtered, spec)
			}
		}
		selected = filtered
	}

	for i, spec := range selected {
		ni, err := s.buildNetwork(spec, int64(i))
		if err != nil {
			return nil, fmt.Errorf("workload: building %s: %w", spec.Name, err)
		}
		s.Networks = append(s.Networks, ni)
	}
	return s, nil
}

func (s *Scenario) buildNetwork(spec NetworkSpec, ordinal int64) (*NetworkInstance, error) {
	// Allocate the delivery IP pool: hublaa.me spans the two bulletproof
	// ASes, everything else takes a few generic hosting addresses.
	ipCount := spec.IPCount
	if ipCount > 1 && s.Opts.Scale > 1 {
		ipCount = spec.IPCount / s.Opts.Scale
		if ipCount < 2 {
			ipCount = 2
		}
	}
	var ips []string
	if spec.Bulletproof {
		half := ipCount / 2
		for _, alloc := range []struct {
			asn netsim.ASN
			n   int
		}{{ASBulletproofA, ipCount - half}, {ASBulletproofB, half}} {
			addrs, err := s.Internet.AllocateN(alloc.asn, alloc.n)
			if err != nil {
				return nil, err
			}
			for _, a := range addrs {
				ips = append(ips, a.String())
			}
		}
	} else {
		addrs, err := s.Internet.AllocateN(ASGenericHost, ipCount)
		if err != nil {
			return nil, err
		}
		for _, a := range addrs {
			ips = append(ips, a.String())
		}
	}

	app, ok := s.Apps[spec.App]
	if !ok {
		return nil, fmt.Errorf("unknown exploited app %q", spec.App)
	}

	cfg := collusion.Config{
		Name:               spec.Name,
		AppID:              app.ID,
		AppRedirectURI:     app.RedirectURI,
		Scopes:             []string{apps.PermPublicProfile, apps.PermPublishActions},
		LikesPerRequest:    spec.LikesPerRequest,
		CommentsPerRequest: spec.CommentsPerRequest,
		DailyRequestLimit:  spec.DailyRequestLimit,
		IPs:                ips,
		Seed:               s.Opts.Seed*1000 + ordinal,
		AdsPerVisit:        3,
		DeliveryBatchSize:  s.Opts.DeliveryBatchSize,
		DeliveryWorkers:    s.Opts.DeliveryWorkers,
	}
	if spec.CommentsPerRequest > 0 {
		cfg.CommentDictionary = GenerateCommentDictionary(spec.Name, spec.UniqueComments, s.Opts.Seed)
	}
	if spec.HotSet {
		// A hot set of twice the per-request quota: comfortable headroom
		// under Facebook's generous default rate limit, but roughly half
		// the engine's daily demand once the limit is reduced (the
		// Figure 5 dip).
		cfg.HotSetSize = spec.LikesPerRequest * 2
		cfg.AdaptationLagDays = 6
	}
	if spec.Intermittent {
		// Intermittent sites go down every fifth day.
		for d := 4; d < 120; d += 5 {
			cfg.OutageDays = append(cfg.OutageDays, d)
		}
	}
	cfg.OutageDays = append(cfg.OutageDays, s.Opts.ExtraOutageDays[spec.Name]...)

	net := collusion.NewNetwork(cfg, s.Clock, s.Client)
	// Delivery bursts land in the platform's trace buffer and per-network
	// counters; the network is attacker-side, but the measurement vantage
	// point (this reproduction) sees both sides, as the paper's did.
	net.SetObserver(s.Platform.Obs)
	ni := &NetworkInstance{
		Spec:             spec,
		Net:              net,
		ScaledMembership: ScaledMembership(spec, s.Opts.Scale, s.Opts.MinMembers),
		ShortCode:        s.ShortURLs.Shorten("https://platform.example/dialog/oauth?client_id=" + app.ID),
		scenario:         s,
		rng:              rand.New(rand.NewSource(s.Opts.Seed*7919 + ordinal)),
		mix:              CountryMixFor(spec),
	}
	if err := ni.JoinFresh(ni.ScaledMembership); err != nil {
		return nil, err
	}
	return ni, nil
}

// CountryMixFor builds the member geography of Table 2: the top country
// gets its reported share, the remainder is split evenly across the
// paper's other frequent visitor countries.
func CountryMixFor(spec NetworkSpec) netsim.CountryMix {
	others := []string{"IN", "EG", "TR", "VN", "BD", "PK", "ID", "DZ"}
	weights := make(map[string]float64, len(others)+1)
	rest := (1 - spec.TopCountryShare) / float64(len(others)-1)
	for _, c := range others {
		if c != spec.TopCountry {
			weights[c] = rest
		}
	}
	weights[spec.TopCountry] = spec.TopCountryShare
	return netsim.NewCountryMix(weights)
}

// JoinFresh creates count new member accounts, walks each through the
// implicit flow, and submits their tokens to the network. It models both
// initial population and the daily arrival of new members that replenishes
// pools after invalidation sweeps (Sec. 6.2).
func (ni *NetworkInstance) JoinFresh(count int) error {
	s := ni.scenario
	app := s.Apps[ni.Spec.App]
	for i := 0; i < count; i++ {
		ni.nextID++
		country := ni.sampleCountry()
		acct := s.Platform.Graph.CreateAccount(
			fmt.Sprintf("%s-member-%d", sanitizeHost(ni.Spec.Name), ni.nextID), country, s.Clock.Now())
		// The joining member reaches the install dialog through the
		// network's short URL, leaving the click trail Table 5 mines.
		if _, err := s.ShortURLs.Resolve(ni.ShortCode, ni.Spec.Name, country); err != nil {
			return err
		}
		tok, err := s.Client.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID,
			[]string{apps.PermPublicProfile, apps.PermUserFriends, apps.PermPublishActions})
		if err != nil {
			return err
		}
		if err := ni.Net.SubmitToken(acct.ID, tok); err != nil {
			// The site being down is a legitimate outcome for arrivals on
			// outage days; skip those members.
			continue
		}
		ni.Members = append(ni.Members, acct)
	}
	return nil
}

// SwitchApp repoints the network at another exploited application (by
// ExploitedApps name): the collusion-operator response to having their
// current app suspended. Subsequent joins and resubmissions authorize
// the new app.
func (ni *NetworkInstance) SwitchApp(appName string) error {
	app, ok := ni.scenario.Apps[appName]
	if !ok {
		return fmt.Errorf("workload: unknown exploited app %q", appName)
	}
	ni.Spec.App = appName
	ni.Net.SwitchApp(app.ID, app.RedirectURI)
	return nil
}

// ResubmitReturning refreshes tokens for count existing members (returning
// users whose tokens were invalidated re-run the install flow).
func (ni *NetworkInstance) ResubmitReturning(count int) error {
	s := ni.scenario
	app := s.Apps[ni.Spec.App]
	for i := 0; i < count && len(ni.Members) > 0; i++ {
		m := ni.Members[ni.rng.Intn(len(ni.Members))]
		tok, err := s.Client.AuthorizeImplicit(app.ID, app.RedirectURI, m.ID,
			[]string{apps.PermPublicProfile, apps.PermUserFriends, apps.PermPublishActions})
		if err != nil {
			return err
		}
		if err := ni.Net.SubmitToken(m.ID, tok); err != nil {
			continue
		}
	}
	return nil
}

// BackgroundRequests makes count randomly chosen members each publish a
// post and request likes on it — the organic traffic that spends pooled
// tokens (including honeypots') on other members' posts.
func (ni *NetworkInstance) BackgroundRequests(count int) {
	s := ni.scenario
	for i := 0; i < count && len(ni.Members) > 0; i++ {
		m := ni.Members[ni.rng.Intn(len(ni.Members))]
		post, err := s.Platform.Graph.CreatePost(m.ID,
			fmt.Sprintf("background post by %s", m.Name),
			socialgraph.WriteMeta{At: s.Clock.Now()})
		if err != nil {
			continue
		}
		answer := ""
		if ni.Net.Config().CaptchaRequired {
			answer = solveChallenge(ni.Net.Challenge(m.ID))
		}
		_, _ = ni.Net.RequestLikes(m.ID, post.ID, answer)
	}
}

// BackgroundPageRequests makes count members create pages and request
// likes on them, producing the page targets of Table 4.
func (ni *NetworkInstance) BackgroundPageRequests(count int) {
	s := ni.scenario
	for i := 0; i < count && len(ni.Members) > 0; i++ {
		m := ni.Members[ni.rng.Intn(len(ni.Members))]
		page, err := s.Platform.Graph.CreatePage(m.ID,
			fmt.Sprintf("%s fan page %d", m.Name, i), s.Clock.Now())
		if err != nil {
			continue
		}
		answer := ""
		if ni.Net.Config().CaptchaRequired {
			answer = solveChallenge(ni.Net.Challenge(m.ID))
		}
		_, _ = ni.Net.RequestLikes(m.ID, page.ID, answer)
	}
}

// FindNetwork returns the instance with the given name.
func (s *Scenario) FindNetwork(name string) (*NetworkInstance, bool) {
	for _, ni := range s.Networks {
		if ni.Spec.Name == name {
			return ni, true
		}
	}
	return nil, false
}

func (ni *NetworkInstance) sampleCountry() string {
	return ni.mix.Sample(ni.rng)
}

func solveChallenge(challenge string) string {
	var a, b int
	if _, err := fmt.Sscanf(challenge, "%d+%d=", &a, &b); err != nil {
		return ""
	}
	return fmt.Sprintf("%d", a+b)
}

// sanitizeHost turns a network/app name into a hostname-ish label.
func sanitizeHost(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ':
			out = append(out, '-')
		}
	}
	return string(out)
}
