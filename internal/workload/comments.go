package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Comment corpus generation: each network draws its auto-comments from a
// small fixed dictionary (Table 6: 16–52 unique comments per network).
// The generated dictionaries mix plain praise, leetspeak, elongated
// words, shouty punctuation, and transliterated phrases so the lexical
// analysis reproduces the paper's findings: low richness, ~20%
// non-dictionary words, and ARI values inflated by junk tokens.

// The vocabulary skews long: the paper's high ARI values (13.2–25.2)
// come from lengthened words and large nonsensical tokens inflating the
// characters-per-word term.
var praiseWords = []string{
	"awesome", "amazing", "beautiful", "gorgeous", "stunning",
	"handsome", "superb", "fantastic", "fabulous", "excellent",
	"brilliant", "wonderful", "charming", "adorable", "magnificent",
	"breathtaking", "spectacular", "extraordinary", "outstanding",
	"phenomenal", "mesmerizing", "incredible", "unbelievable",
}

var praiseNouns = []string{
	"picture", "photograph", "selfie", "smile", "style",
	"status", "profile", "expression", "personality",
}

var junkWords = []string{
	"gr8", "w00wwwwwwww", "bravooooo", "ahhhhhhh", "niceeeeee",
	"superrrrrb", "awsmmmmm", "cooooooool", "soooooooo", "fabbbbbb",
	"bfewguvchieuwver", "wooooooow", "omgggggg", "heyyyyyy", "cutieeeee",
	"sweeeeeetest", "beautifulllll", "gorgeousssss",
}

var transliterated = []string{
	"sarye thak ke beth gye", "kya baat hai", "bahut badhiya",
	"ek dum jhakas", "kamaal ka picture", "bohot accha yaar",
}

var templates = []string{
	"%s %s",
	"%s %s!!",
	"absolutely %s",
	"%s",
	"what a %s %s",
	"%s %s brother",
	"simply %s",
	"completely %s %s",
	"%s darling",
	"seriously %s",
}

// GenerateCommentDictionary builds a deterministic dictionary of size n
// for the named network. Roughly a fifth of entries are junk or
// transliterated phrases, matching the paper's ~20% non-dictionary rate.
func GenerateCommentDictionary(networkName string, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed + int64(len(networkName))))
	seen := make(map[string]bool)
	out := make([]string, 0, n)
	add := func(c string) {
		if c != "" && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for len(out) < n {
		switch r := rng.Intn(10); {
		case r < 1 && len(out) < n:
			add(transliterated[rng.Intn(len(transliterated))])
		case r < 3:
			// junk comment, further elongated
			add(junkWords[rng.Intn(len(junkWords))] + strings.Repeat("o", rng.Intn(8)))
		default:
			tmpl := templates[rng.Intn(len(templates))]
			adj := praiseWords[rng.Intn(len(praiseWords))]
			noun := praiseNouns[rng.Intn(len(praiseNouns))]
			switch strings.Count(tmpl, "%s") {
			case 1:
				add(fmt.Sprintf(tmpl, adj))
			default:
				add(fmt.Sprintf(tmpl, adj, noun))
			}
		}
	}
	return out
}
