package workload

import (
	"reflect"
	"testing"
	"time"
)

func TestBuildScaleSmall(t *testing.T) {
	w, err := BuildScale(ScaleConfig{Accounts: 2000, AvgFriends: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Graph.AccountCount(); got != 2000 {
		t.Fatalf("AccountCount = %d, want 2000", got)
	}
	if len(w.Pages) != 8 || len(w.Posts) != 64 { // derived minimums
		t.Fatalf("pages=%d posts=%d, want derived minimums 8/64", len(w.Pages), len(w.Posts))
	}
	// AccountID reconstructs every minted ID arithmetically.
	for _, i := range []int{0, 1, 999, 1999} {
		a, err := w.Graph.Account(w.AccountID(i))
		if err != nil {
			t.Fatalf("AccountID(%d) = %s not in store: %v", i, w.AccountID(i), err)
		}
		if want := scaleCountries[i%len(scaleCountries)]; a.Country != want {
			t.Fatalf("account %d country = %s, want %s", i, a.Country, want)
		}
	}
	if w.FriendEdges == 0 {
		t.Fatal("no friendship edges inserted")
	}
	if w.Graph.RetentionWindow() != 0 {
		t.Fatal("retention window set without being asked for")
	}

	// The ID stream must match what sequential creation would mint: a
	// second build with identical config mints identical IDs.
	w2, err := BuildScale(ScaleConfig{Accounts: 2000, AvgFriends: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if w.AccountID(1234) != w2.AccountID(1234) || w.Posts[63] != w2.Posts[63] {
		t.Fatal("two builds with the same config minted different IDs")
	}
}

func TestBuildScaleAppliesRetentionWindow(t *testing.T) {
	w, err := BuildScale(ScaleConfig{Accounts: 200, RetentionWindow: time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Graph.RetentionWindow(); got != time.Hour {
		t.Fatalf("RetentionWindow = %v, want 1h", got)
	}
}

// TestRunLoadDeterministicTotals is the loadgen determinism guarantee:
// two independent worlds driven at the same RPS and seed produce
// bit-identical reports (like totals, eviction counts, SLO quantiles),
// regardless of worker interleaving.
func TestRunLoadDeterministicTotals(t *testing.T) {
	run := func(workers int) LoadReport {
		w, err := BuildScale(ScaleConfig{Accounts: 1500, RetentionWindow: 40 * time.Second, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return w.RunLoad(LoadConfig{
			TargetRPS:        300,
			Duration:         30 * time.Second,
			Workers:          workers,
			SweepEvery:       10 * time.Second,
			DrainBeforeSweep: true,
			Seed:             11,
		})
	}
	a, b := run(2), run(8)
	if a.Offered != 300*30 {
		t.Fatalf("Offered = %d, want %d", a.Offered, 300*30)
	}
	if a.Likes == 0 || a.Comments == 0 || a.Posts == 0 {
		t.Fatalf("degenerate mix: %+v", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports diverge across worker counts:\n  a: %+v\n  b: %+v", a, b)
	}
}

// TestRunLoadRaceStress hammers the worker pool; its value is running
// under -race in CI (the scale-smoke job), where any unsynchronized
// store or histogram access trips the detector.
func TestRunLoadRaceStress(t *testing.T) {
	w, err := BuildScale(ScaleConfig{Accounts: 1000, RetentionWindow: 20 * time.Second, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := w.RunLoad(LoadConfig{
		TargetRPS:  500,
		Duration:   12 * time.Second,
		Workers:    8,
		SweepEvery: 5 * time.Second, // no drain: sweeps race the appliers on purpose
		Seed:       5,
	})
	if got := rep.Likes + rep.DuplicateLikes + rep.Comments + rep.Posts; got != rep.Offered {
		t.Fatalf("applied %d of %d offered", got, rep.Offered)
	}
	if rep.Sweeps == 0 {
		t.Fatal("no sweeps ran")
	}
}

// TestRunLoadRetentionPlateau demonstrates the memory plateau: with a
// finite window the retained like history is bounded by the arrival rate
// times (window + sweep period), no matter how long the run, while the
// cumulative applied volume keeps growing.
func TestRunLoadRetentionPlateau(t *testing.T) {
	const (
		rps    = 100
		window = 60 * time.Second
		sweep  = 30 * time.Second
	)
	w, err := BuildScale(ScaleConfig{Accounts: 3000, RetentionWindow: window, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep := w.RunLoad(LoadConfig{
		TargetRPS:        rps,
		Duration:         10 * time.Minute,
		SweepEvery:       sweep,
		DrainBeforeSweep: true,
		Seed:             9,
	})
	if rep.Evicted.Likes == 0 {
		t.Fatal("nothing evicted; plateau claim is vacuous")
	}
	// Hard bound: at most rps*(window+sweep) arrivals can be inside the
	// window at any sweep instant.
	bound := int64(rps * (window + sweep) / time.Second)
	for _, s := range rep.Samples {
		if s.Retained.Likes > bound {
			t.Fatalf("sweep at %v retained %d likes, bound %d", s.At, s.Retained.Likes, bound)
		}
	}
	if rep.Retained.Likes > bound {
		t.Fatalf("final retained %d likes, bound %d", rep.Retained.Likes, bound)
	}
	if rep.Likes <= bound {
		t.Fatalf("applied only %d likes; run too short to show a plateau past bound %d", rep.Likes, bound)
	}
	// The plateau is visible in the sample series: the later half of the
	// sweeps hover at the same level, not a growing one.
	n := len(rep.Samples)
	if n < 6 {
		t.Fatalf("only %d sweep samples", n)
	}
	mid, last := rep.Samples[n/2].Retained.Likes, rep.Samples[n-1].Retained.Likes
	if last > mid*2 {
		t.Fatalf("retained likes still growing: mid %d -> last %d", mid, last)
	}
}
