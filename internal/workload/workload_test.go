package workload

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/lexical"
	"repro/internal/socialgraph"
)

func TestNetworksSpecTable(t *testing.T) {
	specs := Networks()
	if len(specs) != 22 {
		t.Fatalf("networks = %d, want 22", len(specs))
	}
	total := 0
	for i, s := range specs {
		if s.Name == "" || s.Membership <= 0 || s.LikesPerRequest <= 0 {
			t.Fatalf("spec %d incomplete: %+v", i, s)
		}
		if i > 0 && specs[i-1].Membership < s.Membership {
			t.Fatalf("specs not in descending membership order at %d", i)
		}
		total += s.Membership
	}
	// Table 4's "All" row reports 1,150,782; the per-row values in the
	// available text sum to 1,150,685 (a 97-account discrepancy in the
	// source). Assert we are within that tolerance of the published total.
	if total < 1_150_600 || total > 1_150_800 {
		t.Fatalf("membership sum = %d, want ≈1150782", total)
	}
	top, ok := FindNetwork("hublaa.me")
	if !ok || top.Membership != 294_949 || !top.Bulletproof {
		t.Fatalf("hublaa spec = %+v, %v", top, ok)
	}
	if _, ok := FindNetwork("not-a-network"); ok {
		t.Fatal("FindNetwork invented a network")
	}
}

func TestCommentNetworksMatchTable6(t *testing.T) {
	withComments := 0
	for _, s := range Networks() {
		if s.CommentsPerRequest > 0 {
			withComments++
			if s.UniqueComments <= 0 || s.CommentPostsSubmitted < 100 {
				t.Fatalf("comment spec incomplete: %+v", s)
			}
		}
	}
	if withComments != 7 {
		t.Fatalf("networks with comments = %d, want 7", withComments)
	}
}

func TestGenerateCommentDictionary(t *testing.T) {
	dict := GenerateCommentDictionary("mg-likers.com", 16, 1)
	if len(dict) != 16 {
		t.Fatalf("dictionary size = %d", len(dict))
	}
	seen := map[string]bool{}
	for _, c := range dict {
		if seen[c] {
			t.Fatalf("duplicate dictionary entry %q", c)
		}
		seen[c] = true
	}
	// Deterministic for the same inputs.
	again := GenerateCommentDictionary("mg-likers.com", 16, 1)
	for i := range dict {
		if dict[i] != again[i] {
			t.Fatal("dictionary not deterministic")
		}
	}
	// Different network name yields a different dictionary.
	other := GenerateCommentDictionary("kdliker.com", 16, 1)
	same := true
	for i := range dict {
		if dict[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct networks produced identical dictionaries")
	}
}

func TestCommentDictionaryLexicalShape(t *testing.T) {
	// A large corpus drawn from a small dictionary should reproduce the
	// Table 6 shape: low unique-comment percentage and a nontrivial
	// non-dictionary word rate.
	dict := GenerateCommentDictionary("monkeyliker.com", 45, 7)
	var corpus []string
	for i := 0; i < 1000; i++ {
		corpus = append(corpus, dict[i%len(dict)])
	}
	r := lexical.Analyze(corpus)
	if r.PctUniqueComments > 10 {
		t.Fatalf("PctUniqueComments = %v, want small", r.PctUniqueComments)
	}
	if r.PctNonDictionary < 5 || r.PctNonDictionary > 60 {
		t.Fatalf("PctNonDictionary = %v, want 5-60%%", r.PctNonDictionary)
	}
	if r.LexicalRichness > 20 {
		t.Fatalf("LexicalRichness = %v, want small", r.LexicalRichness)
	}
}

func TestBuildScenarioSmall(t *testing.T) {
	s, err := BuildScenario(Options{
		Scale:      2000,
		MinMembers: 25,
		Networks:   []string{"hublaa.me", "official-liker.net", "arabfblike.com"},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Networks) != 3 {
		t.Fatalf("networks built = %d", len(s.Networks))
	}
	hublaa, ok := s.FindNetwork("hublaa.me")
	if !ok {
		t.Fatal("hublaa.me missing")
	}
	// 294949/2000 = 147 members.
	if got := hublaa.Net.MembershipSize(); got != 147 {
		t.Fatalf("hublaa membership = %d, want 147", got)
	}
	if len(hublaa.Members) != 147 {
		t.Fatalf("hublaa member accounts = %d", len(hublaa.Members))
	}
	// arabfblike floors at MinMembers.
	arab, _ := s.FindNetwork("arabfblike.com")
	if got := arab.Net.MembershipSize(); got != 25 {
		t.Fatalf("arab membership = %d, want 25", got)
	}
	// hublaa's IPs resolve to bulletproof ASes.
	cfg := hublaa.Net.Config()
	if len(cfg.IPs) < 2 {
		t.Fatalf("hublaa IPs = %d", len(cfg.IPs))
	}
	for _, ip := range cfg.IPs {
		as, ok := s.Internet.LookupASString(ip)
		if !ok || !as.Bulletproof {
			t.Fatalf("hublaa IP %s not in bulletproof AS (%+v)", ip, as)
		}
	}
	// official-liker is a hot-set network on generic hosting.
	ol, _ := s.FindNetwork("official-liker.net")
	if ol.Net.Config().HotSetSize <= 0 {
		t.Fatal("official-liker.net should use a hot set")
	}
	for _, ip := range ol.Net.Config().IPs {
		as, ok := s.Internet.LookupASString(ip)
		if !ok || as.Number != ASGenericHost {
			t.Fatalf("official-liker IP %s in AS %+v", ip, as)
		}
	}
}

func TestScenarioEndToEndMilking(t *testing.T) {
	s, err := BuildScenario(Options{
		Scale:      5000,
		MinMembers: 60,
		Networks:   []string{"mg-likers.com"},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ni := s.Networks[0]
	member := ni.Members[0]
	post, err := s.Platform.Graph.CreatePost(member.ID, "like me", socialgraph.WriteMeta{At: s.Clock.Now()})
	if err != nil {
		t.Fatal(err)
	}
	delivered, err := ni.Net.RequestLikes(member.ID, post.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	// Quota is 247 but the pool holds only 60 members (minus requester),
	// and the hourly spread cap may bind; at minimum dozens of likes land.
	if delivered < 30 {
		t.Fatalf("delivered = %d", delivered)
	}
	if got := s.Platform.Graph.LikeCount(post.ID); got != delivered {
		t.Fatalf("stored likes = %d, delivered = %d", got, delivered)
	}
}

func TestJoinClicksThroughShortURL(t *testing.T) {
	s, err := BuildScenario(Options{
		Scale:      2000,
		MinMembers: 35,
		Networks:   []string{"hublaa.me", "mg-likers.com"},
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ni := range s.Networks {
		info, err := s.ShortURLs.Info(ni.ShortCode)
		if err != nil {
			t.Fatal(err)
		}
		// Every initial member clicked through once.
		if info.ShortClicks != ni.ScaledMembership {
			t.Fatalf("%s clicks = %d, members = %d", ni.Spec.Name, info.ShortClicks, ni.ScaledMembership)
		}
		if info.TopReferrer != ni.Spec.Name {
			t.Fatalf("%s referrer = %q", ni.Spec.Name, info.TopReferrer)
		}
		if len(info.Countries) == 0 {
			t.Fatalf("%s has no click geography", ni.Spec.Name)
		}
	}
	// Both networks exploit HTC Sense: their short URLs share a long URL,
	// so LongClicks aggregates across them — the Table 5 effect.
	a, _ := s.ShortURLs.Info(s.Networks[0].ShortCode)
	b, _ := s.ShortURLs.Info(s.Networks[1].ShortCode)
	if a.LongClicks != a.ShortClicks+b.ShortClicks {
		t.Fatalf("long clicks %d != %d + %d", a.LongClicks, a.ShortClicks, b.ShortClicks)
	}
	// Fresh joins keep clicking.
	before := a.ShortClicks
	if err := s.Networks[0].JoinFresh(5); err != nil {
		t.Fatal(err)
	}
	after, _ := s.ShortURLs.Info(s.Networks[0].ShortCode)
	if after.ShortClicks != before+5 {
		t.Fatalf("clicks after joins = %d", after.ShortClicks)
	}
}

func TestJoinFreshGrowsPool(t *testing.T) {
	s, err := BuildScenario(Options{
		Scale:      10000,
		MinMembers: 30,
		Networks:   []string{"fast-liker.com"},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ni := s.Networks[0]
	before := ni.Net.MembershipSize()
	if err := ni.JoinFresh(10); err != nil {
		t.Fatal(err)
	}
	if got := ni.Net.MembershipSize(); got != before+10 {
		t.Fatalf("membership after JoinFresh = %d, want %d", got, before+10)
	}
}

func TestResubmitReturningRefreshesTokens(t *testing.T) {
	s, err := BuildScenario(Options{
		Scale:      10000,
		MinMembers: 30,
		Networks:   []string{"fast-liker.com"},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ni := s.Networks[0]
	// Invalidate all members' tokens, then have returning members refresh.
	for _, m := range ni.Members {
		s.Platform.OAuth.InvalidateAccount(m.ID, "sweep")
	}
	if err := ni.ResubmitReturning(30); err != nil {
		t.Fatal(err)
	}
	// At least some refreshed tokens must now be live.
	live := 0
	for _, m := range ni.Members {
		tok, ok := ni.Net.Pool().Token(m.ID)
		if !ok {
			continue
		}
		if _, err := s.Platform.OAuth.Validate(tok); err == nil {
			live++
		}
	}
	if live == 0 {
		t.Fatal("no live tokens after ResubmitReturning")
	}
}

func TestBackgroundRequestsSpendHoneypotTokens(t *testing.T) {
	s, err := BuildScenario(Options{
		Scale:      10000,
		MinMembers: 40,
		Networks:   []string{"4liker.com"},
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ni := s.Networks[0]
	ni.BackgroundRequests(5)
	ni.BackgroundPageRequests(2)
	st := ni.Net.Stats()
	if st.LikeRequests != 7 {
		t.Fatalf("LikeRequests = %d, want 7", st.LikeRequests)
	}
	if st.LikesDelivered == 0 {
		t.Fatal("no likes delivered by background traffic")
	}
}

func TestBuildTop100Composition(t *testing.T) {
	reg := apps.NewRegistry()
	top := BuildTop100(reg, 1)
	if len(top) != 100 {
		t.Fatalf("top = %d apps", len(top))
	}
	susceptible, susLong := 0, 0
	for _, a := range top {
		if a.Susceptible() {
			susceptible++
			if a.Lifetime == apps.LongTerm {
				susLong++
			}
		}
	}
	if susceptible != 55 {
		t.Fatalf("susceptible = %d, want 55", susceptible)
	}
	if susLong != 9 {
		t.Fatalf("susceptible long-term = %d, want 9", susLong)
	}
	// Leaderboard order.
	for i := 1; i < len(top); i++ {
		if top[i-1].MAU < top[i].MAU {
			t.Fatalf("leaderboard unsorted at %d", i)
		}
	}
	// Spotify leads with 50M MAU.
	if top[0].Name != "Spotify" {
		t.Fatalf("top app = %s", top[0].Name)
	}
}

func TestSanitizeHost(t *testing.T) {
	cases := map[string]string{
		"HTC Sense":              "htc-sense",
		"hublaa.me":              "hublaa.me",
		"Sony Xperia smartphone": "sony-xperia-smartphone",
	}
	for in, want := range cases {
		if got := sanitizeHost(in); got != want {
			t.Errorf("sanitizeHost(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestShortURLSpecsShape(t *testing.T) {
	specs := ShortURLs()
	if len(specs) != 13 {
		t.Fatalf("short URLs = %d, want 13", len(specs))
	}
	var total int64
	htc := 0
	for _, s := range specs {
		if s.ShortClicks <= 0 || s.Referrer == "" {
			t.Fatalf("spec incomplete: %+v", s)
		}
		total += int64(s.ShortClicks)
		if s.App == AppHTCSense {
			htc++
		}
	}
	// Sum of short clicks exceeds 260M (the paper reports >289M across
	// unique long URLs; short-click sums are the same order).
	if total < 260_000_000 {
		t.Fatalf("total clicks = %d", total)
	}
	if htc < 8 {
		t.Fatalf("HTC Sense URLs = %d", htc)
	}
}

func TestExploitedAndTable1Specs(t *testing.T) {
	if len(ExploitedApps()) != 4 {
		t.Fatalf("exploited apps = %d", len(ExploitedApps()))
	}
	t1 := Table1Apps()
	if len(t1) != 9 {
		t.Fatalf("table 1 apps = %d", len(t1))
	}
	if t1[0].Name != "Spotify" || t1[0].MAU != 50_000_000 {
		t.Fatalf("table 1 head = %+v", t1[0])
	}
	names := map[string]bool{}
	for _, a := range t1 {
		if names[a.Name] {
			t.Fatalf("duplicate table 1 name %q", a.Name)
		}
		names[a.Name] = true
	}
	if !strings.Contains(t1[4].Name, "HTC Sense") {
		t.Fatalf("expected HTC Sense in table 1: %+v", t1)
	}
}

func TestRankedOnlySitesCompleteTable2(t *testing.T) {
	ranked := RankedOnlySites()
	if len(ranked) != 28 {
		t.Fatalf("ranked-only sites = %d, want 28 (50-row Table 2 minus 22 milked)", len(ranked))
	}
	milked := map[string]bool{}
	for _, s := range Networks() {
		milked[s.Name] = true
	}
	seen := map[string]bool{}
	for _, s := range ranked {
		if s.Name == "" || s.AlexaRank <= 0 || s.TopCountry == "" {
			t.Fatalf("incomplete entry: %+v", s)
		}
		if s.TopCountryShare <= 0 || s.TopCountryShare > 1 {
			t.Fatalf("share out of range: %+v", s)
		}
		if milked[s.Name] {
			t.Fatalf("%s appears both milked and ranked-only", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate ranked-only entry %s", s.Name)
		}
		seen[s.Name] = true
	}
}
