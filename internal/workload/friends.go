package workload

import (
	"math/rand"
)

// BuildFriendGraph wires friendships among every account registered so
// far (collusion members, honeypots, organic users), giving each account
// approximately avgDegree friends. The generator uses a random-graph
// model with a small-world bias: half of each account's edges go to
// nearby accounts in creation order (communities), half anywhere.
//
// The friend graph powers the Section 8 extension experiments: leaked
// tokens with user_friends expose members' social circles, and malware
// propagates along these edges.
func (s *Scenario) BuildFriendGraph(avgDegree int, seed int64) int {
	ids := s.Platform.Graph.AccountIDs()
	if len(ids) < 2 || avgDegree <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	edges := 0
	// Each account initiates avgDegree/2 edges so the expected degree is
	// avgDegree.
	half := avgDegree / 2
	if half < 1 {
		half = 1
	}
	for i, a := range ids {
		for k := 0; k < half; k++ {
			var j int
			if k%2 == 0 {
				// Community edge: within a window of ±25 positions.
				offset := rng.Intn(50) - 25
				j = i + offset
				if j < 0 || j >= len(ids) || j == i {
					continue
				}
			} else {
				j = rng.Intn(len(ids))
				if j == i {
					continue
				}
			}
			if err := s.Platform.Graph.AddFriendship(a, ids[j]); err == nil {
				edges++
			}
		}
	}
	return edges
}
