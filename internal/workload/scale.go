package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Scale profile: a platform populated to millions of accounts, the
// regime the ROADMAP north-star targets. Unlike BuildScenario — which
// instantiates the paper's 22 collusion networks over a Table-4-sized
// population — BuildScale constructs only the substrate the open-loop
// load generator (loadgen.go) drives: a large account graph with a
// power-law-ish degree distribution, a set of fan pages, and a pool of
// hot posts that concentrate like traffic the way viral content does.
//
// Construction is memory-lean: accounts are registered through
// Store.CreateAccountBatch in fixed-size chunks (one lock scope per
// stripe per chunk), names are empty (the load generator never reads
// them), countries come from a small shared-string rotation, and member
// IDs are reconstructed arithmetically from the first minted ID instead
// of being held in a million-entry slice.

// ScaleConfig parameterises BuildScale.
type ScaleConfig struct {
	// Accounts is the population size (the ROADMAP regime is 1e6–1e7;
	// tests use a few thousand). Minimum 100.
	Accounts int
	// Pages is the number of fan pages; 0 derives Accounts/1000 (min 8).
	Pages int
	// HotPosts is the pool of posts the load generator targets; 0
	// derives 4*Pages (min 64).
	HotPosts int
	// AvgFriends is the mean friend degree; friendship endpoints are
	// drawn from a Zipf distribution over the population, so early
	// accounts become hubs and the degree distribution is heavy-tailed.
	// 0 disables friendship edges entirely (they are not needed by the
	// load generator and dominate memory at full scale).
	AvgFriends float64
	// ZipfS is the skew (> 1) of the popularity distributions (hub
	// selection, hot-post targeting); 0 selects 1.2.
	ZipfS float64
	// MaxHubIndex caps how deep into the population the Zipf hub/actor
	// sampling reaches; 0 means the whole population.
	MaxHubIndex int
	// Shards pins the store's stripe count; 0 selects the default.
	Shards int
	// BatchSize is the account-construction chunk; 0 selects 8192.
	BatchSize int
	// RetentionWindow bounds the store's edge-history retention; 0 keeps
	// the default infinite window.
	RetentionWindow time.Duration
	// Start is the simulation epoch; zero means November 1, 2015.
	Start time.Time
	// Seed drives all randomness.
	Seed int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Accounts < 100 {
		c.Accounts = 100
	}
	if c.Pages <= 0 {
		c.Pages = c.Accounts / 1000
		if c.Pages < 8 {
			c.Pages = 8
		}
	}
	if c.HotPosts <= 0 {
		c.HotPosts = 4 * c.Pages
		if c.HotPosts < 64 {
			c.HotPosts = 64
		}
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.MaxHubIndex <= 0 || c.MaxHubIndex > c.Accounts {
		c.MaxHubIndex = c.Accounts
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8192
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaleCountries is the shared-string country rotation; roughly the
// paper's Table 2 visitor geography.
var scaleCountries = []string{"IN", "EG", "TR", "VN", "BD", "PK", "ID", "DZ", "US", "BR"}

// ScaleWorld is a built scale profile.
type ScaleWorld struct {
	Config   ScaleConfig
	Clock    *simclock.Simulated
	Platform *platform.Platform
	Graph    *socialgraph.Store

	// Pages and Posts are the pre-built target pools.
	Pages []string
	Posts []string
	// FriendEdges is the number of friendship edges actually inserted.
	FriendEdges int

	// firstAccount is the numeric value of the first minted account ID;
	// AccountID reconstructs every member ID from it.
	firstAccount uint64
	// ids interns the population's ID strings for populations up to
	// idCacheMax, so the load generator's per-op actor lookup formats
	// nothing. One string header plus digits per account costs ~24 MiB at
	// the 1M cap — noise next to the graph itself — while a 10M-account
	// run skips the cache and falls back to formatting on demand.
	ids []string
}

// idCacheMax bounds the interned-ID table (1M accounts).
const idCacheMax = 1 << 20

// AccountID returns the ID of the i-th account (0-based): interned for
// populations within idCacheMax, otherwise reconstructed from the
// minter's consecutive numbering (the i-th ID is firstAccount+i).
func (w *ScaleWorld) AccountID(i int) string {
	if i >= 0 && i < len(w.ids) {
		return w.ids[i]
	}
	return strconv.FormatUint(w.firstAccount+uint64(i), 10)
}

// BuildScale constructs the world.
func BuildScale(cfg ScaleConfig) (*ScaleWorld, error) {
	cfg = cfg.withDefaults()
	clock := simclock.NewSimulated(cfg.Start)
	p := platform.NewSized(clock, nil, cfg.Shards, cfg.Accounts)
	if cfg.RetentionWindow > 0 {
		p.Graph.SetRetentionWindow(cfg.RetentionWindow)
	}
	w := &ScaleWorld{Config: cfg, Clock: clock, Platform: p, Graph: p.Graph}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Accounts, in batches. One seed slice is reused across chunks so
	// construction memory is O(BatchSize), not O(Accounts).
	seeds := make([]socialgraph.AccountSeed, cfg.BatchSize)
	created := 0
	for created < cfg.Accounts {
		n := cfg.Accounts - created
		if n > cfg.BatchSize {
			n = cfg.BatchSize
		}
		for j := 0; j < n; j++ {
			seeds[j] = socialgraph.AccountSeed{Country: scaleCountries[(created+j)%len(scaleCountries)]}
		}
		batch := p.Graph.CreateAccountBatch(seeds[:n], cfg.Start)
		if created == 0 {
			first, err := strconv.ParseUint(batch[0].ID, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: unparseable account ID %q: %w", batch[0].ID, err)
			}
			w.firstAccount = first
		}
		if cfg.Accounts <= idCacheMax {
			// Intern the store's own ID strings (no second copy per
			// account) — see ScaleWorld.ids.
			if w.ids == nil {
				w.ids = make([]string, 0, cfg.Accounts)
			}
			for j := 0; j < n; j++ {
				w.ids = append(w.ids, batch[j].ID)
			}
		}
		created += n
	}

	// Fan pages, owned by Zipf-sampled hub accounts, and the hot posts
	// the load generator concentrates likes on (posted by the pages, as
	// viral fan-page content is).
	owners := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.MaxHubIndex-1))
	for i := 0; i < cfg.Pages; i++ {
		page, err := p.Graph.CreatePage(w.AccountID(int(owners.Uint64())), "page", cfg.Start)
		if err != nil {
			return nil, fmt.Errorf("workload: scale page %d: %w", i, err)
		}
		w.Pages = append(w.Pages, page.ID)
	}
	for i := 0; i < cfg.HotPosts; i++ {
		post, err := p.Graph.CreatePost(w.Pages[i%len(w.Pages)], "p", socialgraph.WriteMeta{At: cfg.Start})
		if err != nil {
			return nil, fmt.Errorf("workload: scale post %d: %w", i, err)
		}
		w.Posts = append(w.Posts, post.ID)
	}

	// Friendship edges: one endpoint uniform, the other Zipf-skewed
	// toward the hubs, so in-degree is heavy-tailed. Duplicate and self
	// edges are simply skipped, as in organic graph growth.
	if cfg.AvgFriends > 0 {
		attempts := int(cfg.AvgFriends * float64(cfg.Accounts) / 2)
		for i := 0; i < attempts; i++ {
			a := rng.Intn(cfg.Accounts)
			b := int(owners.Uint64())
			if err := p.Graph.AddFriendship(w.AccountID(a), w.AccountID(b)); err == nil {
				w.FriendEdges++
			}
		}
	}
	return w, nil
}
