package workload

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/runtimestats"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Open-loop load generator. The milking campaigns advance in lockstep
// rounds — every hour the whole fleet acts, then time jumps. Real
// platform load is open-loop: requests arrive on a schedule regardless
// of whether earlier ones have finished. RunLoad reproduces that on the
// simulated clock: a single generator goroutine advances simulated time
// to each arrival instant and enqueues the operation; a pool of workers
// applies operations against the sharded store concurrently, measuring
// wall latency per like into an obs histogram, from which the p50/p99
// SLO report is computed.
//
// Determinism: the generator samples every operation (actor, target,
// kind, arrival time) from one seeded RNG before handing it to the
// worker pool, and likes are idempotent per (account, object) — so the
// number of successful likes equals the number of distinct sampled
// pairs, independent of worker count and interleaving. Two runs at the
// same target RPS and seed therefore report identical like totals.

// LoadConfig parameterises RunLoad.
type LoadConfig struct {
	// TargetRPS is the offered arrival rate per simulated second.
	TargetRPS int
	// Duration is the simulated length of the run.
	Duration time.Duration
	// Workers is the apply-pool size; 0 selects GOMAXPROCS.
	Workers int
	// CommentPermille and PostPermille set the operation mix per
	// thousand arrivals (comments on hot posts, background posts);
	// the rest are likes. Defaults: 50 and 20.
	CommentPermille int
	PostPermille    int
	// SweepEvery triggers a retention sweep each time simulated time
	// crosses a multiple of it; 0 disables sweeping.
	SweepEvery time.Duration
	// DrainBeforeSweep makes the generator wait for the worker pool to
	// drain before each sweep, so exactly which edges a sweep evicts is
	// deterministic (the golden SLO report needs this; a production-style
	// run does not).
	DrainBeforeSweep bool
	// Timing is the clock latencies are measured on. nil freezes timing
	// at the simulation epoch so every observed latency is exactly zero —
	// the deterministic mode golden tests use. cmd/repro passes
	// simclock.Real{} to measure wall-clock SLOs.
	Timing simclock.Clock
	// QueueDepth bounds the arrival queue (how far the open-loop schedule
	// may run ahead of the appliers); 0 selects 4096.
	QueueDepth int
	// Seed drives the operation mix; 0 selects the world's seed.
	Seed int64
	// Warmup is the leading stretch of simulated time excluded from the
	// steady-state window. OnSteadyState fires once, just before the
	// first arrival at or past start+Warmup is enqueued (immediately on
	// the first arrival when Warmup is 0) — `repro scale -profile-dir`
	// starts its CPU profile here so warmup allocation noise stays out
	// of the capture.
	Warmup        time.Duration
	OnSteadyState func()
	// OnLoadEnd fires after the worker pool has drained, closing the
	// steady-state window (profiles are stopped and written here).
	OnLoadEnd func()
	// Runtime, when set, is sampled after every retention sweep and at
	// the end of the run, attaching runtime/GC snapshots to the report.
	Runtime *runtimestats.Sampler
}

func (c LoadConfig) withDefaults(w *ScaleWorld) LoadConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CommentPermille <= 0 {
		c.CommentPermille = 50
	}
	if c.PostPermille <= 0 {
		c.PostPermille = 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.Timing == nil {
		c.Timing = frozenClock{t: w.Config.Start}
	}
	if c.Seed == 0 {
		c.Seed = w.Config.Seed
	}
	return c
}

// RetentionSample is one post-sweep observation of the retained edge
// history — the series whose flattening demonstrates the memory plateau.
type RetentionSample struct {
	At       time.Time
	Evicted  socialgraph.SweepResult
	Retained socialgraph.EdgeStats
	// Runtime is the runtime snapshot taken right after the sweep (zero
	// unless LoadConfig.Runtime was set).
	Runtime runtimestats.Snapshot
}

// LoadReport summarises one RunLoad.
type LoadReport struct {
	Offered        int64 // arrivals generated
	Likes          int64 // likes applied
	DuplicateLikes int64 // likes rejected as already-liked
	Comments       int64
	Posts          int64

	Sweeps   int64
	Evicted  socialgraph.SweepResult // summed over sweeps
	Retained socialgraph.EdgeStats   // at end of run
	Samples  []RetentionSample

	// P50 and P99 are like-latency quantiles on the Timing clock,
	// estimated from the loadgen_like_seconds obs histogram.
	P50, P99 time.Duration
	// WallElapsed is the run's span on the Timing clock (zero in
	// deterministic mode).
	WallElapsed time.Duration
	// RuntimeEnd is the runtime snapshot after the pool drained (zero
	// unless LoadConfig.Runtime was set).
	RuntimeEnd runtimestats.Snapshot
}

// AchievedRPS is the applied like+comment+post throughput per Timing
// second, or 0 in deterministic (frozen-clock) mode.
func (r LoadReport) AchievedRPS() float64 {
	if r.WallElapsed <= 0 {
		return 0
	}
	return float64(r.Offered) / r.WallElapsed.Seconds()
}

// job kinds.
const (
	opLike = iota
	opComment
	opPost
)

// job is one pre-sampled arrival.
type job struct {
	kind   int
	actor  int // account index
	target int // index into w.Posts (unused for opPost)
	at     time.Time
}

// frozenClock is a Clock pinned at one instant; under it every measured
// latency is exactly zero, making histogram contents a pure function of
// the sampled operation stream.
type frozenClock struct{ t time.Time }

func (c frozenClock) Now() time.Time { return c.t }
func (c frozenClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.t
	return ch
}
func (c frozenClock) Sleep(time.Duration) {}

// loadIPPool is the small shared pool of synthetic client addresses
// arrivals are attributed to.
var loadIPPool = func() []string {
	out := make([]string, 64)
	for i := range out {
		out[i] = "198.51.100." + itoa(i)
	}
	return out
}()

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [3]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// RunLoad drives the open-loop workload against the world and reports
// totals, retention behaviour, and the like-latency SLO quantiles.
func (w *ScaleWorld) RunLoad(cfg LoadConfig) LoadReport {
	cfg = cfg.withDefaults(w)
	var rep LoadReport
	if cfg.TargetRPS <= 0 || cfg.Duration <= 0 || len(w.Posts) == 0 {
		return rep
	}
	total := int64(cfg.TargetRPS) * int64(cfg.Duration/time.Second)
	hist := w.Platform.Obs.M().Histogram("loadgen_like_seconds",
		"Open-loop load generator like latency in seconds, on the configured timing clock.",
		nil).With()

	var likes, dups, comments, posts atomic.Int64
	var pending atomic.Int64
	jobs := make(chan job, cfg.QueueDepth)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				w.apply(j, cfg.Timing, hist, &likes, &dups, &comments, &posts)
				pending.Add(-1)
			}
		}()
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	targets := rand.NewZipf(rng, w.Config.ZipfS, 1, uint64(len(w.Posts)-1))
	start := w.Config.Start
	wallStart := cfg.Timing.Now()
	steadyAt := start.Add(cfg.Warmup)
	steady := false
	nextSweep := start.Add(cfg.SweepEvery)
	drain := func() {
		for pending.Load() != 0 {
			runtime.Gosched()
		}
	}
	for i := int64(0); i < total; i++ {
		at := start.Add(time.Duration(i) * time.Second / time.Duration(cfg.TargetRPS))
		for cfg.SweepEvery > 0 && !at.Before(nextSweep) {
			if cfg.DrainBeforeSweep {
				drain()
			}
			w.Clock.AdvanceTo(nextSweep)
			res := w.Graph.RetentionSweep(nextSweep)
			rep.Sweeps++
			rep.Evicted.Likes += res.Likes
			rep.Evicted.Comments += res.Comments
			rep.Evicted.Activities += res.Activities
			rep.Samples = append(rep.Samples, RetentionSample{
				At: nextSweep, Evicted: res, Retained: w.Graph.RetainedEdges(),
				Runtime: cfg.Runtime.Sample(),
			})
			nextSweep = nextSweep.Add(cfg.SweepEvery)
		}
		w.Clock.AdvanceTo(at)
		if !steady && !at.Before(steadyAt) {
			steady = true
			if cfg.OnSteadyState != nil {
				cfg.OnSteadyState()
			}
		}
		j := job{kind: opLike, at: at, actor: rng.Intn(w.Config.Accounts)}
		switch roll := rng.Intn(1000); {
		case roll < cfg.CommentPermille:
			j.kind = opComment
		case roll < cfg.CommentPermille+cfg.PostPermille:
			j.kind = opPost
		}
		if j.kind != opPost {
			j.target = int(targets.Uint64())
		}
		pending.Add(1)
		jobs <- j
		rep.Offered++
	}
	close(jobs)
	wg.Wait()
	if cfg.OnLoadEnd != nil {
		cfg.OnLoadEnd()
	}
	rep.RuntimeEnd = cfg.Runtime.Sample()

	rep.Likes = likes.Load()
	rep.DuplicateLikes = dups.Load()
	rep.Comments = comments.Load()
	rep.Posts = posts.Load()
	rep.Retained = w.Graph.RetainedEdges()
	snap := hist.Snapshot()
	rep.P50 = time.Duration(snap.Quantile(0.50) * float64(time.Second))
	rep.P99 = time.Duration(snap.Quantile(0.99) * float64(time.Second))
	rep.WallElapsed = cfg.Timing.Now().Sub(wallStart)
	return rep
}

// apply executes one arrival against the store, timing likes on the
// Timing clock. With the interned ID table and the store's pooled edge
// history, the like branch allocates nothing at steady state, so the
// measured quantiles (and the loadgen.like allocs_per_op series below)
// reflect the server, not the harness.
func (w *ScaleWorld) apply(j job, timing simclock.Clock, hist *obs.BoundHistogram,
	likes, dups, comments, posts *atomic.Int64) {
	actor := w.AccountID(j.actor)
	meta := socialgraph.WriteMeta{SourceIP: loadIPPool[j.actor%len(loadIPPool)], At: j.at}
	switch j.kind {
	case opLike:
		as := w.Platform.Obs.A().Begin(nil, "loadgen.like")
		t0 := timing.Now()
		err := w.Graph.AddLike(actor, w.Posts[j.target], meta)
		hist.Observe(timing.Now().Sub(t0).Seconds())
		as.End(1)
		if err == nil {
			likes.Add(1)
		} else {
			dups.Add(1)
		}
	case opComment:
		if _, err := w.Graph.AddComment(actor, w.Posts[j.target], "c", meta); err == nil {
			comments.Add(1)
		}
	case opPost:
		if _, err := w.Graph.CreatePost(actor, "p", meta); err == nil {
			posts.Add(1)
		}
	}
}
