package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/socialgraph"
)

// ASResidential hosts organic users' home connections.
const ASResidential netsim.ASN = 65100

// OrganicPopulation is a set of benign platform users who post and like
// their friends' content from their own residential IPs — the negative
// class for the abuse-detection extension, and background noise against
// which countermeasures must avoid collateral damage.
type OrganicPopulation struct {
	Users []socialgraph.Account

	scenario *Scenario
	rng      *rand.Rand
	ips      map[string]string // accountID -> home IP
	posts    []string          // recent organic posts, like targets
}

// AddOrganicUsers creates n benign accounts, each with a residential IP.
// The residential AS is registered on first use.
func (s *Scenario) AddOrganicUsers(n int, seed int64) (*OrganicPopulation, error) {
	if _, ok := s.Internet.LookupASString("100.64.0.1"); !ok {
		if err := s.Internet.RegisterAS(netsim.AS{
			Number: ASResidential, Name: "RESIDENTIAL-ISP", Country: "IN",
		}, "100.64.0.0/16"); err != nil {
			return nil, err
		}
	}
	pop := &OrganicPopulation{
		scenario: s,
		rng:      rand.New(rand.NewSource(seed)),
		ips:      make(map[string]string, n),
	}
	mix := netsim.NewCountryMix(map[string]float64{
		"IN": 30, "US": 20, "BR": 10, "ID": 10, "MX": 8, "TR": 7, "GB": 7, "DE": 8,
	})
	for i := 0; i < n; i++ {
		acct := s.Platform.Graph.CreateAccount(
			fmt.Sprintf("organic-user-%d", i+1), mix.Sample(pop.rng), s.Clock.Now())
		addr, err := s.Internet.Allocate(ASResidential)
		if err != nil {
			return nil, err
		}
		pop.Users = append(pop.Users, acct)
		pop.ips[acct.ID] = addr.String()
	}
	return pop, nil
}

// HomeIP returns a user's residential address.
func (p *OrganicPopulation) HomeIP(accountID string) string {
	return p.ips[accountID]
}

// SimulateDay plays one day of benign behaviour: each user posts with
// probability postProb and performs up to maxLikes likes on friends' (or
// recent organic) posts, spread across the day, from their home IP, with
// no third-party app involved.
func (p *OrganicPopulation) SimulateDay(postProb float64, maxLikes int) {
	s := p.scenario
	dayStart := s.Clock.Now()
	for _, u := range p.Users {
		if p.rng.Float64() < postProb {
			post, err := s.Platform.Graph.CreatePost(u.ID,
				fmt.Sprintf("organic thoughts of %s", u.Name),
				socialgraph.WriteMeta{SourceIP: p.ips[u.ID], At: dayStart.Add(p.randHour())})
			if err == nil {
				p.posts = append(p.posts, post.ID)
			}
		}
	}
	// Cap the like-target backlog to recent posts.
	if len(p.posts) > 500 {
		p.posts = p.posts[len(p.posts)-500:]
	}
	if len(p.posts) == 0 {
		return
	}
	for _, u := range p.Users {
		likes := p.rng.Intn(maxLikes + 1)
		for l := 0; l < likes; l++ {
			target := p.posts[p.rng.Intn(len(p.posts))]
			meta := socialgraph.WriteMeta{
				SourceIP: p.ips[u.ID],
				At:       dayStart.Add(p.randHour()),
			}
			// Duplicate likes simply fail; that is organic too.
			_ = s.Platform.Graph.AddLike(u.ID, target, meta)
		}
	}
}

func (p *OrganicPopulation) randHour() time.Duration {
	// Organic activity clusters in waking hours (8:00–23:00).
	return time.Duration(8+p.rng.Intn(15))*time.Hour + time.Duration(p.rng.Intn(60))*time.Minute
}
