package workload

import (
	"testing"

	"repro/internal/socialgraph"
)

// TestAppSuspensionArmsRace plays out the reason the paper declined to
// suspend exploited applications: the network simply switches to another
// susceptible app and recovers as members resubmit fresh tokens.
func TestAppSuspensionArmsRace(t *testing.T) {
	s, err := BuildScenario(Options{
		Scale:      2000,
		MinMembers: 80,
		Networks:   []string{"mg-likers.com"},
		Seed:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ni := s.Networks[0]
	member := ni.Members[0]
	post := func() socialgraph.Post {
		p, err := s.Platform.Graph.CreatePost(member.ID, "target", socialgraph.WriteMeta{At: s.Clock.Now()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Baseline delivery works.
	if d, err := ni.Net.RequestLikes(member.ID, post().ID, ""); err != nil || d == 0 {
		t.Fatalf("baseline: %d, %v", d, err)
	}

	// The platform suspends HTC Sense: pooled tokens die on use.
	htc := s.Apps[AppHTCSense]
	if err := s.Platform.Apps.SetSuspended(htc.ID, true); err != nil {
		t.Fatal(err)
	}
	if d, _ := ni.Net.RequestLikes(member.ID, post().ID, ""); d != 0 {
		t.Fatalf("delivered %d through a suspended app", d)
	}

	// The operator switches to Nokia Account; returning members resubmit.
	if err := ni.SwitchApp("nope"); err == nil {
		t.Fatal("unknown app switch accepted")
	}
	if err := ni.SwitchApp(AppNokiaAccount); err != nil {
		t.Fatal(err)
	}
	if err := ni.ResubmitReturning(len(ni.Members)); err != nil {
		t.Fatal(err)
	}
	d, err := ni.Net.RequestLikes(member.ID, post().ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("network did not recover after switching apps")
	}
	// The recovered likes are attributed to the new app.
	nokia := s.Apps[AppNokiaAccount]
	p := post()
	if _, err := ni.Net.RequestLikes(member.ID, p.ID, ""); err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Platform.Graph.Likes(p.ID) {
		if l.AppID != nokia.ID {
			t.Fatalf("like via app %s, want %s", l.AppID, nokia.ID)
		}
	}
}
