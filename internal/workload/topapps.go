package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
)

// BuildTop100 populates the registry with a synthetic top-100 application
// leaderboard matching the composition the paper measured (Sec. 2.2):
// 55 susceptible applications (client-side flow enabled, no secret
// required, write permission approved), of which the 9 Table 1 apps are
// issued long-term tokens and 46 short-term tokens; the remaining 45 apps
// are secure — either client-side flow disabled or appsecret_proof
// required. MAUs follow a Zipf-like tail below the named apps. The
// returned slice is in leaderboard (descending MAU) order.
func BuildTop100(reg *apps.Registry, seed int64) []apps.App {
	rng := rand.New(rand.NewSource(seed))
	writeScope := []string{apps.PermPublicProfile, apps.PermEmail, apps.PermPublishActions}

	var out []apps.App
	register := func(name string, mau int, clientFlow, requireSecret bool, lifetime apps.TokenLifetime) {
		app := reg.Register(apps.Config{
			Name:              name,
			RedirectURI:       "https://" + sanitizeHost(name) + ".example/callback",
			ClientFlowEnabled: clientFlow,
			RequireAppSecret:  requireSecret,
			Lifetime:          lifetime,
			Permissions:       writeScope,
			MAU:               mau,
			DAU:               mau / 10,
		})
		out = append(out, app)
	}

	// The nine Table 1 apps: susceptible with long-term tokens.
	for _, spec := range Table1Apps() {
		register(spec.Name, spec.MAU, true, false, apps.LongTerm)
	}
	// 46 susceptible apps with short-term tokens.
	for i := 0; i < 46; i++ {
		mau := 20_000_000/(i+2) + rng.Intn(100_000)
		register(fmt.Sprintf("Susceptible Game %02d", i+1), mau, true, false, apps.ShortTerm)
	}
	// 45 secure apps: half disable the client-side flow, half require the
	// application secret on API calls.
	for i := 0; i < 45; i++ {
		mau := 30_000_000/(i+2) + rng.Intn(100_000)
		if i%2 == 0 {
			register(fmt.Sprintf("Secure Utility %02d", i+1), mau, false, false, apps.LongTerm)
		} else {
			register(fmt.Sprintf("Secure Utility %02d", i+1), mau, true, true, apps.LongTerm)
		}
	}
	return reg.Top(100)
}
