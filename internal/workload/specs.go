// Package workload generates the scenarios the experiments run against:
// the top-100 application registry (Table 1), the 22 measured collusion
// networks with their paper-reported parameters (Tables 2–4), per-network
// comment dictionaries (Table 6), member populations with country mixes,
// and the IP/AS footprints (Figure 8).
//
// All quantities lifted from the paper are recorded at full scale; the
// Scenario builder divides population-scale numbers by a configurable
// Scale factor so the suite runs on a laptop while preserving shapes.
package workload

// NetworkSpec captures one collusion network's published measurements and
// the operational parameters inferred from them.
type NetworkSpec struct {
	Name string
	// AlexaRank and TopCountry/TopCountryShare come from Table 2.
	AlexaRank       int
	TopCountry      string
	TopCountryShare float64 // 0..1

	// Membership is the Table 4 membership estimate (unique accounts).
	Membership int
	// LikesPerRequest is the Table 4 average likes per post (the paper
	// observes a fixed per-request quota).
	LikesPerRequest int
	// PostsSubmitted is how many posts the honeypot submitted (Table 4).
	PostsSubmitted int

	// CommentsPerRequest is the Table 6 average comments per post; 0 when
	// the network offers no auto-comment service.
	CommentsPerRequest int
	// CommentPostsSubmitted is the Table 6 post count for the comment
	// milking runs.
	CommentPostsSubmitted int
	// UniqueComments is the Table 6 dictionary size.
	UniqueComments int

	// DailyRequestLimit reproduces the 10-requests/day cap of djliker.com
	// and monkeyliker.com; 0 = unlimited.
	DailyRequestLimit int
	// Intermittent marks networks with observed outages (arabfblike.com
	// and others did not respond to some requests).
	Intermittent bool

	// App is which exploited application the network uses (Table 3 /
	// Table 5): one of AppHTCSense, AppNokiaAccount, AppSonyXperia,
	// AppPageManager.
	App string

	// IPCount is the delivery IP pool size; hublaa.me used >6,000
	// addresses in two bulletproof ASes, most others a handful (Fig. 8).
	IPCount int
	// Bulletproof marks networks hosted in bulletproof ASes.
	Bulletproof bool

	// HotSet marks networks whose engines initially reuse a small token
	// working set and therefore feel (and adapt to) token rate limits —
	// the official-liker.net behaviour of Figure 5.
	HotSet bool
}

// Exploited application labels (Table 3).
const (
	AppHTCSense     = "HTC Sense"
	AppNokiaAccount = "Nokia Account"
	AppSonyXperia   = "Sony Xperia smartphone"
	AppPageManager  = "Page Manager For iOS"
)

// Networks returns the 22 milked collusion networks of Table 4, in the
// paper's descending-membership order, with parameters from Tables 2–6.
func Networks() []NetworkSpec {
	return []NetworkSpec{
		{Name: "hublaa.me", AlexaRank: 8_000, TopCountry: "IN", TopCountryShare: 0.18,
			Membership: 294_949, LikesPerRequest: 350, PostsSubmitted: 1_421,
			App: AppHTCSense, IPCount: 6_000, Bulletproof: true},
		{Name: "official-liker.net", AlexaRank: 17_000, TopCountry: "IN", TopCountryShare: 0.26,
			Membership: 233_161, LikesPerRequest: 390, PostsSubmitted: 1_757,
			App: AppHTCSense, IPCount: 4, HotSet: true},
		{Name: "mg-likers.com", AlexaRank: 56_000, TopCountry: "IN", TopCountryShare: 0.50,
			Membership: 177_665, LikesPerRequest: 247, PostsSubmitted: 1_537,
			CommentsPerRequest: 17, CommentPostsSubmitted: 120, UniqueComments: 16,
			App: AppHTCSense, IPCount: 3, HotSet: true},
		{Name: "monkeyliker.com", AlexaRank: 410_000, TopCountry: "IN", TopCountryShare: 0.80,
			Membership: 137_048, LikesPerRequest: 233, PostsSubmitted: 710,
			CommentsPerRequest: 9, CommentPostsSubmitted: 115, UniqueComments: 45,
			DailyRequestLimit: 10, App: AppHTCSense, IPCount: 2},
		{Name: "f8-autoliker.com", AlexaRank: 136_000, TopCountry: "IN", TopCountryShare: 0.74,
			Membership: 72_157, LikesPerRequest: 253, PostsSubmitted: 1_311,
			App: AppHTCSense, IPCount: 3},
		{Name: "djliker.com", AlexaRank: 39_000, TopCountry: "IN", TopCountryShare: 0.55,
			Membership: 61_450, LikesPerRequest: 149, PostsSubmitted: 471,
			CommentsPerRequest: 9, CommentPostsSubmitted: 104, UniqueComments: 52,
			DailyRequestLimit: 10, App: AppHTCSense, IPCount: 2},
		{Name: "autolikesgroups.com", AlexaRank: 54_000, TopCountry: "IN", TopCountryShare: 0.30,
			Membership: 41_015, LikesPerRequest: 261, PostsSubmitted: 774,
			App: AppHTCSense, IPCount: 2},
		{Name: "4liker.com", AlexaRank: 81_000, TopCountry: "IN", TopCountryShare: 0.33,
			Membership: 23_110, LikesPerRequest: 264, PostsSubmitted: 269,
			App: AppHTCSense, IPCount: 2},
		{Name: "myliker.com", AlexaRank: 55_000, TopCountry: "IN", TopCountryShare: 0.45,
			Membership: 18_514, LikesPerRequest: 102, PostsSubmitted: 320,
			CommentsPerRequest: 19, CommentPostsSubmitted: 128, UniqueComments: 42,
			App: AppHTCSense, IPCount: 2},
		{Name: "kdliker.com", AlexaRank: 154_000, TopCountry: "IN", TopCountryShare: 0.80,
			Membership: 18_421, LikesPerRequest: 138, PostsSubmitted: 599,
			CommentsPerRequest: 47, CommentPostsSubmitted: 119, UniqueComments: 31,
			App: AppHTCSense, IPCount: 2},
		{Name: "oneliker.com", AlexaRank: 136_000, TopCountry: "IN", TopCountryShare: 0.58,
			Membership: 18_013, LikesPerRequest: 72, PostsSubmitted: 334,
			App: AppHTCSense, IPCount: 1},
		{Name: "fb-autolikers.com", AlexaRank: 99_000, TopCountry: "IN", TopCountryShare: 0.44,
			Membership: 16_234, LikesPerRequest: 80, PostsSubmitted: 244,
			App: AppNokiaAccount, IPCount: 1},
		{Name: "autolike.vn", AlexaRank: 969_000, TopCountry: "VN", TopCountryShare: 0.94,
			Membership: 14_892, LikesPerRequest: 254, PostsSubmitted: 139,
			App: AppPageManager, IPCount: 2},
		{Name: "monsterlikes.com", AlexaRank: 509_000, TopCountry: "IN", TopCountryShare: 0.82,
			Membership: 5_168, LikesPerRequest: 146, PostsSubmitted: 495,
			CommentsPerRequest: 9, CommentPostsSubmitted: 100, UniqueComments: 41,
			App: AppHTCSense, IPCount: 1},
		{Name: "postlikers.com", AlexaRank: 148_000, TopCountry: "IN", TopCountryShare: 0.83,
			Membership: 4_656, LikesPerRequest: 89, PostsSubmitted: 96,
			App: AppHTCSense, IPCount: 1},
		{Name: "facebook-autoliker.com", AlexaRank: 312_000, TopCountry: "IN", TopCountryShare: 0.87,
			Membership: 3_108, LikesPerRequest: 33, PostsSubmitted: 132,
			App: AppNokiaAccount, IPCount: 1},
		{Name: "realliker.com", AlexaRank: 1_379_000, TopCountry: "IN", TopCountryShare: 0.50,
			Membership: 2_860, LikesPerRequest: 187, PostsSubmitted: 105,
			App: AppHTCSense, IPCount: 1},
		{Name: "autolikesub.com", AlexaRank: 603_000, TopCountry: "VN", TopCountryShare: 0.92,
			Membership: 2_379, LikesPerRequest: 88, PostsSubmitted: 286,
			App: AppSonyXperia, IPCount: 1},
		{Name: "kingliker.com", AlexaRank: 351_000, TopCountry: "IN", TopCountryShare: 0.72,
			Membership: 2_243, LikesPerRequest: 47, PostsSubmitted: 107,
			App: AppHTCSense, IPCount: 1},
		{Name: "rockliker.net", AlexaRank: 530_000, TopCountry: "IN", TopCountryShare: 0.92,
			Membership: 1_480, LikesPerRequest: 44, PostsSubmitted: 99,
			App: AppHTCSense, IPCount: 1},
		{Name: "arabfblike.com", AlexaRank: 1_221_000, TopCountry: "EG", TopCountryShare: 0.43,
			Membership: 1_328, LikesPerRequest: 14, PostsSubmitted: 311,
			CommentsPerRequest: 2, CommentPostsSubmitted: 130, UniqueComments: 37,
			Intermittent: true, App: AppSonyXperia, IPCount: 1},
		{Name: "fast-liker.com", AlexaRank: 1_208_000, TopCountry: "IN", TopCountryShare: 0.50,
			Membership: 834, LikesPerRequest: 44, PostsSubmitted: 232,
			App: AppHTCSense, IPCount: 1},
	}
}

// RankedSite is a Table 2 entry for a collusion network the paper ranked
// but did not milk (no honeypot, so no membership estimate).
type RankedSite struct {
	Name            string
	AlexaRank       int
	TopCountry      string
	TopCountryShare float64
}

// RankedOnlySites returns the Table 2 networks outside the 22-network
// milking campaign, completing the paper's top-50 roster.
func RankedOnlySites() []RankedSite {
	return []RankedSite{
		{Name: "autolikerfb.com", AlexaRank: 109_000, TopCountry: "IN", TopCountryShare: 0.62},
		{Name: "cyberlikes.com", AlexaRank: 119_000, TopCountry: "IN", TopCountryShare: 0.78},
		{Name: "postliker.net", AlexaRank: 132_000, TopCountry: "IN", TopCountryShare: 0.63},
		{Name: "fblikess.com", AlexaRank: 150_000, TopCountry: "IN", TopCountryShare: 0.64},
		{Name: "way2likes.com", AlexaRank: 154_000, TopCountry: "IN", TopCountryShare: 0.74},
		{Name: "topautolike.com", AlexaRank: 192_000, TopCountry: "IN", TopCountryShare: 0.60},
		{Name: "royaliker.net", AlexaRank: 201_000, TopCountry: "IN", TopCountryShare: 0.86},
		{Name: "begeniyor.com", AlexaRank: 205_000, TopCountry: "TR", TopCountryShare: 0.85},
		// The paper's Table 2 lists royaliker.net twice (two ranked
		// mirrors); both entries are kept to preserve the 50-row roster.
		{Name: "royaliker.net (mirror)", AlexaRank: 210_000, TopCountry: "IN", TopCountryShare: 0.59},
		{Name: "autolike-us.com", AlexaRank: 227_000, TopCountry: "IN", TopCountryShare: 0.52},
		{Name: "autolike.in", AlexaRank: 216_000, TopCountry: "IN", TopCountryShare: 0.74},
		{Name: "likelikego.com", AlexaRank: 232_000, TopCountry: "IN", TopCountryShare: 0.52},
		{Name: "myfbliker.com", AlexaRank: 238_000, TopCountry: "IN", TopCountryShare: 0.58},
		{Name: "vliker.com", AlexaRank: 273_000, TopCountry: "IN", TopCountryShare: 0.43},
		{Name: "likermoo.com", AlexaRank: 296_000, TopCountry: "IN", TopCountryShare: 0.62},
		{Name: "f8liker.com", AlexaRank: 296_000, TopCountry: "IN", TopCountryShare: 0.80},
		{Name: "likeslo.net", AlexaRank: 373_000, TopCountry: "IN", TopCountryShare: 0.61},
		{Name: "machineliker.com", AlexaRank: 386_000, TopCountry: "IN", TopCountryShare: 0.59},
		{Name: "likerty.com", AlexaRank: 393_000, TopCountry: "IN", TopCountryShare: 0.60},
		{Name: "vipautoliker.com", AlexaRank: 448_000, TopCountry: "IN", TopCountryShare: 0.64},
		{Name: "likelo.me", AlexaRank: 479_000, TopCountry: "IN", TopCountryShare: 0.16},
		{Name: "loveliker.com", AlexaRank: 491_000, TopCountry: "IN", TopCountryShare: 0.59},
		{Name: "autoliker.com", AlexaRank: 496_000, TopCountry: "IN", TopCountryShare: 0.56},
		{Name: "likerhub.com", AlexaRank: 498_000, TopCountry: "IN", TopCountryShare: 0.69},
		{Name: "hacklike.net", AlexaRank: 514_000, TopCountry: "VN", TopCountryShare: 0.57},
		{Name: "likepana.com", AlexaRank: 545_000, TopCountry: "IN", TopCountryShare: 0.57},
		{Name: "extreamliker.com", AlexaRank: 687_000, TopCountry: "IN", TopCountryShare: 0.50},
		{Name: "autolikesub.com (mirror)", AlexaRank: 721_000, TopCountry: "VN", TopCountryShare: 0.84},
	}
}

// FindNetwork returns the spec with the given name.
func FindNetwork(name string) (NetworkSpec, bool) {
	for _, s := range Networks() {
		if s.Name == name {
			return s, true
		}
	}
	return NetworkSpec{}, false
}

// ExploitedAppSpec describes one of the Table 3 applications.
type ExploitedAppSpec struct {
	Name string
	DAU  int
	MAU  int
}

// ExploitedApps returns the Table 3 applications (order-of-magnitude
// DAU/MAU as reported).
func ExploitedApps() []ExploitedAppSpec {
	return []ExploitedAppSpec{
		{Name: AppHTCSense, DAU: 1_000_000, MAU: 1_000_000},
		{Name: AppNokiaAccount, DAU: 100_000, MAU: 1_000_000},
		{Name: AppSonyXperia, DAU: 10_000, MAU: 100_000},
		{Name: AppPageManager, DAU: 10_000, MAU: 100_000},
	}
}

// Table1AppSpec is one of the nine susceptible long-term-token apps among
// the top 100 (Table 1).
type Table1AppSpec struct {
	Name string
	MAU  int
}

// Table1Apps returns the Table 1 rows.
func Table1Apps() []Table1AppSpec {
	return []Table1AppSpec{
		{Name: "Spotify", MAU: 50_000_000},
		{Name: "PlayStation Network", MAU: 5_000_000},
		{Name: "Deezer", MAU: 5_000_000},
		{Name: "Pandora", MAU: 5_000_000},
		{Name: "HTC Sense", MAU: 1_000_000},
		{Name: "Flipagram", MAU: 1_000_000},
		{Name: "TownShip", MAU: 1_000_000},
		{Name: "Tango", MAU: 1_000_000},
		{Name: "HTC Sense 2", MAU: 1_000_000},
	}
}

// ShortURLSpec is one Table 5 row.
type ShortURLSpec struct {
	CreatedDay  int // days after the oldest URL's creation (June 11, 2014)
	ShortClicks int
	App         string
	Referrer    string
}

// ShortURLs returns the Table 5 rows. Several specs share the same App;
// their long URLs coincide, which is how the paper's 236M long-URL click
// count arises.
func ShortURLs() []ShortURLSpec {
	return []ShortURLSpec{
		{CreatedDay: 0, ShortClicks: 147_959_735, App: AppHTCSense, Referrer: "mg-likers.com"},
		{CreatedDay: 19, ShortClicks: 64_493_698, App: AppHTCSense, Referrer: "djliker.com"},
		{CreatedDay: 326, ShortClicks: 28_511_756, App: AppHTCSense, Referrer: "sys.hublaa.me"},
		{CreatedDay: 115, ShortClicks: 7_000_579, App: AppPageManager, Referrer: "autolike.vn"},
		{CreatedDay: 161, ShortClicks: 7_582_494, App: AppHTCSense, Referrer: "m.machineliker.com"},
		{CreatedDay: 2, ShortClicks: 2_269_148, App: AppHTCSense, Referrer: "begeniyor.com"},
		{CreatedDay: 346, ShortClicks: 2_721_864, App: AppHTCSense, Referrer: "www.royaliker.net"},
		{CreatedDay: 201, ShortClicks: 1_288_801, App: AppHTCSense, Referrer: "oneliker.com"},
		{CreatedDay: 10, ShortClicks: 1_005_471, App: AppNokiaAccount, Referrer: "adf.ly"},
		{CreatedDay: 452, ShortClicks: 1_009_801, App: AppSonyXperia, Referrer: "refer.autolikerfb.com"},
		{CreatedDay: 227, ShortClicks: 297_915, App: AppHTCSense, Referrer: "realliker.com"},
		{CreatedDay: 235, ShortClicks: 355_405, App: AppSonyXperia, Referrer: "unknown"},
		{CreatedDay: 229, ShortClicks: 165_345, App: AppHTCSense, Referrer: "postlikers.com"},
	}
}
