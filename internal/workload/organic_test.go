package workload

import (
	"testing"
	"time"

	"repro/internal/socialgraph"
)

func organicScenario(t *testing.T) (*Scenario, *OrganicPopulation) {
	t.Helper()
	s, err := BuildScenario(Options{
		Scale:      10000,
		MinMembers: 30,
		Networks:   []string{"fast-liker.com"},
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := s.AddOrganicUsers(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s, pop
}

func TestAddOrganicUsers(t *testing.T) {
	s, pop := organicScenario(t)
	if len(pop.Users) != 100 {
		t.Fatalf("users = %d", len(pop.Users))
	}
	seenIPs := map[string]bool{}
	for _, u := range pop.Users {
		ip := pop.HomeIP(u.ID)
		if ip == "" {
			t.Fatalf("user %s has no home IP", u.ID)
		}
		if seenIPs[ip] {
			t.Fatalf("home IP %s reused", ip)
		}
		seenIPs[ip] = true
		as, ok := s.Internet.LookupASString(ip)
		if !ok || as.Number != ASResidential {
			t.Fatalf("IP %s not residential (%+v)", ip, as)
		}
	}
}

func TestSimulateDayProducesFirstPartyActivity(t *testing.T) {
	s, pop := organicScenario(t)
	for day := 0; day < 3; day++ {
		pop.SimulateDay(0.6, 3)
		s.Clock.Advance(24 * time.Hour)
	}
	posts, likes := 0, 0
	for _, u := range pop.Users {
		for _, act := range s.Platform.Graph.ActivityLog(u.ID) {
			// Organic writes are first-party: no app attribution, own IP.
			if act.AppID != "" {
				t.Fatalf("organic activity via app %q", act.AppID)
			}
			if act.SourceIP != pop.HomeIP(u.ID) {
				t.Fatalf("organic activity from %s, home %s", act.SourceIP, pop.HomeIP(u.ID))
			}
			switch act.Verb {
			case socialgraph.VerbPost:
				posts++
			case socialgraph.VerbLike:
				likes++
			}
		}
	}
	if posts == 0 || likes == 0 {
		t.Fatalf("posts = %d likes = %d", posts, likes)
	}
}

func TestSimulateDayNoPostsNoLikes(t *testing.T) {
	_, pop := organicScenario(t)
	// With zero post probability and an empty backlog there is nothing
	// to like; the day must be a no-op rather than a panic.
	pop.SimulateDay(0, 5)
}

func TestBuildFriendGraphDegree(t *testing.T) {
	s, pop := organicScenario(t)
	edges := s.BuildFriendGraph(8, 4)
	if edges == 0 {
		t.Fatal("no edges created")
	}
	totalDegree := 0
	for _, u := range pop.Users {
		totalDegree += s.Platform.Graph.FriendCount(u.ID)
	}
	avg := float64(totalDegree) / float64(len(pop.Users))
	if avg < 3 || avg > 14 {
		t.Fatalf("organic avg degree = %.1f, want ≈8", avg)
	}
}

func TestBuildFriendGraphEdgeCases(t *testing.T) {
	s, _ := organicScenario(t)
	if got := s.BuildFriendGraph(0, 1); got != 0 {
		t.Fatalf("zero degree built %d edges", got)
	}
}
