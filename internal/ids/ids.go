// Package ids mints the identifiers used across the reproduction: numeric
// Facebook-style object IDs for accounts, posts, and applications, and
// opaque OAuth access-token strings.
//
// Facebook object IDs are large decimal integers; access tokens are opaque
// strings that embed no semantics (RFC 6749 treats them as opaque to the
// client). Both properties matter to the reproduction: collusion networks
// and countermeasures may only key on the literal strings, never on
// structure.
package ids

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"sync/atomic"
)

// Kind tags the object class an ID belongs to. The tag is folded into the
// numeric prefix so IDs from different classes never collide, mirroring
// Facebook's global object-ID namespace.
type Kind int

// Object classes with distinct ID ranges.
const (
	KindAccount Kind = iota + 1
	KindPost
	KindComment
	KindApp
	KindPage
)

// String returns a human-readable class name.
func (k Kind) String() string {
	switch k {
	case KindAccount:
		return "account"
	case KindPost:
		return "post"
	case KindComment:
		return "comment"
	case KindApp:
		return "app"
	case KindPage:
		return "page"
	default:
		return "unknown"
	}
}

// Minter issues monotonically increasing object IDs, one counter per Kind.
// The zero value is ready to use. Minter is safe for concurrent use.
type Minter struct {
	counters [6]atomic.Uint64
}

// NewMinter returns a fresh Minter.
func NewMinter() *Minter { return &Minter{} }

// Next returns the next object ID for the given kind, formatted as a
// decimal string with a per-kind prefix (e.g. account IDs start with "1",
// post IDs with "2").
func (m *Minter) Next(k Kind) string {
	if k < KindAccount || k > KindPage {
		panic(fmt.Sprintf("ids: invalid kind %d", int(k)))
	}
	n := m.counters[k].Add(1)
	return strconv.FormatUint(uint64(k)*1e15+n, 10)
}

// KindOf reports the Kind encoded in an ID minted by Next, and whether the
// ID parses as one.
func KindOf(id string) (Kind, bool) {
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		return 0, false
	}
	k := Kind(n / 1e15)
	if k < KindAccount || k > KindPage {
		return 0, false
	}
	return k, true
}

// tokenCounter disambiguates tokens minted within the same process.
var tokenCounter atomic.Uint64

// NewToken returns an opaque access-token string. Tokens are prefixed with
// "EAAB" like Facebook user access tokens of the era, followed by hex
// entropy; the structure carries no meaning and consumers must not parse it.
func NewToken() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to the
		// counter so token minting cannot halt a simulation.
		binary.BigEndian.PutUint64(buf[:8], tokenCounter.Add(1))
	}
	n := tokenCounter.Add(1)
	return fmt.Sprintf("EAAB%x%x", buf, n)
}

// NewSecret returns an application secret string. Application secrets are
// treated like passwords (paper Sec. 2.2) and must never appear in
// client-side flows.
func NewSecret() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		binary.BigEndian.PutUint64(buf[:8], tokenCounter.Add(1))
	}
	return fmt.Sprintf("%x", buf)
}
