package ids

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMinterNextUnique(t *testing.T) {
	m := NewMinter()
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := m.Next(KindAccount)
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestMinterKindsDisjoint(t *testing.T) {
	m := NewMinter()
	kinds := []Kind{KindAccount, KindPost, KindComment, KindApp, KindPage}
	seen := make(map[string]Kind)
	for _, k := range kinds {
		for i := 0; i < 100; i++ {
			id := m.Next(k)
			if prev, ok := seen[id]; ok {
				t.Fatalf("ID %q minted for both %v and %v", id, prev, k)
			}
			seen[id] = k
		}
	}
}

func TestKindOfRoundTrip(t *testing.T) {
	m := NewMinter()
	for _, k := range []Kind{KindAccount, KindPost, KindComment, KindApp, KindPage} {
		id := m.Next(k)
		got, ok := KindOf(id)
		if !ok {
			t.Fatalf("KindOf(%q) not ok", id)
		}
		if got != k {
			t.Fatalf("KindOf(%q) = %v, want %v", id, got, k)
		}
	}
}

func TestKindOfRejectsGarbage(t *testing.T) {
	for _, id := range []string{"", "abc", "-5", "999", "99999999999999999999999999"} {
		if _, ok := KindOf(id); ok {
			t.Fatalf("KindOf(%q) unexpectedly ok", id)
		}
	}
}

func TestMinterConcurrent(t *testing.T) {
	m := NewMinter()
	const goroutines, per = 8, 500
	ids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids[g] = append(ids[g], m.Next(KindPost))
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[string]bool)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate ID %q under concurrency", id)
			}
			seen[id] = true
		}
	}
}

func TestMinterInvalidKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Next(0) did not panic")
		}
	}()
	NewMinter().Next(0)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindAccount: "account",
		KindPost:    "post",
		KindComment: "comment",
		KindApp:     "app",
		KindPage:    "page",
		Kind(99):    "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNewTokenUniqueAndOpaque(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		tok := NewToken()
		if !strings.HasPrefix(tok, "EAAB") {
			t.Fatalf("token %q missing EAAB prefix", tok)
		}
		if len(tok) < 20 {
			t.Fatalf("token %q suspiciously short", tok)
		}
		if seen[tok] {
			t.Fatalf("duplicate token %q", tok)
		}
		seen[tok] = true
	}
}

func TestNewSecretUnique(t *testing.T) {
	a, b := NewSecret(), NewSecret()
	if a == b {
		t.Fatalf("two secrets equal: %q", a)
	}
	if len(a) != 32 {
		t.Fatalf("secret length = %d, want 32 hex chars", len(a))
	}
}

// Property: every minted ID survives a KindOf round trip regardless of how
// many IDs were minted before it.
func TestQuickMintRoundTrip(t *testing.T) {
	m := NewMinter()
	f := func(kindSel uint8, burst uint8) bool {
		k := Kind(int(kindSel)%5 + 1)
		for i := 0; i < int(burst)%16; i++ {
			m.Next(k)
		}
		id := m.Next(k)
		got, ok := KindOf(id)
		return ok && got == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
