package socialgraph

import (
	"time"

	"repro/internal/ids"
)

// Bulk account construction. The scale workload registers millions of
// accounts before any traffic flows; per-account CreateAccount pays one
// lock scope and one contention sample per insert. CreateAccountBatch
// mints the whole batch up front (the ID stream is identical to N
// sequential CreateAccount calls) and then groups inserts by stripe so
// each shard is locked once per batch.

// AccountSeed describes one account in a batch create.
type AccountSeed struct {
	Name    string
	Country string
}

// CreateAccountBatch registers len(seeds) accounts created at the same
// instant and returns them in seed order. Semantics are identical to
// calling CreateAccount(seed.Name, seed.Country, at) for each seed in
// sequence; only the locking is amortised.
func (s *Store) CreateAccountBatch(seeds []AccountSeed, at time.Time) []Account {
	out := make([]Account, len(seeds))
	byShard := make(map[int][]*Account)
	for i, seed := range seeds {
		out[i] = Account{
			ID:        s.minter.Next(ids.KindAccount),
			Name:      seed.Name,
			Country:   seed.Country,
			CreatedAt: at,
		}
		idx := s.shardIndex(out[i].ID)
		byShard[idx] = append(byShard[idx], &out[i])
	}
	for idx, accts := range byShard {
		sh := s.lockIdx(idx)
		for _, a := range accts {
			cp := *a
			sh.accounts[a.ID] = &cp
		}
		sh.mu.Unlock()
	}
	return out
}
