package socialgraph

// Differential harness: the sharded Store and the seed single-lock
// referenceStore are driven with identical randomized operation sequences
// and must produce identical observable state — returned values, error
// sentinels, minted IDs, like counts, crawl order, activity logs,
// friendship sets, and pagination cursors. This is the fidelity guarantee
// the whole reproduction rests on: every experiment's numbers flow
// through this store, so the concurrency refactor must be invisible to
// sequential callers.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// graphStore is the observable operation surface shared by the sharded
// store and the reference oracle.
type graphStore interface {
	CreateAccount(name, country string, at time.Time) Account
	Account(id string) (Account, error)
	AccountCount() int
	SetSuspended(id string, suspended bool) error
	CreatePage(ownerID, name string, at time.Time) (Page, error)
	Page(id string) (Page, error)
	CreatePost(authorID, message string, meta WriteMeta) (Post, error)
	Post(id string) (Post, error)
	PostsByAuthor(authorID string) []Post
	AddLike(accountID, objectID string, meta WriteMeta) error
	RemoveLike(accountID, objectID string) error
	Likes(objectID string) []Like
	LikeCount(objectID string) int
	HasLiked(accountID, objectID string) bool
	AddComment(accountID, postID, message string, meta WriteMeta) (Comment, error)
	Comments(postID string) []Comment
	ActivityLog(accountID string) []Activity
	ActivitySince(accountID string, t time.Time) []Activity
	OwnerOf(objectID string) (string, error)
	Stats() Stats
	AccountIDs() []string
	AddFriendship(a, b string) error
	Friends(accountID string) []string
	FriendCount(accountID string) int
	AreFriends(a, b string) bool
	CreateAccountBatch(seeds []AccountSeed, at time.Time) []Account
	SetRetentionWindow(w time.Duration)
	RetentionWindow() time.Duration
	RetentionSweep(now time.Time) SweepResult
	RetainedEdges() EdgeStats
	LikesPage(objectID string, after, limit int) (page []Like, next int, more bool)
	CommentsPage(postID string, after, limit int) (page []Comment, next int, more bool)
}

var (
	_ graphStore = (*Store)(nil)
	_ graphStore = (*referenceStore)(nil)
)

// diffWorld tracks the IDs both stores have minted so far (they must
// agree, which the harness asserts on every create).
type diffWorld struct {
	accounts  []string
	pages     []string
	posts     []string
	suspended map[string]bool
}

func sameErr(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	for _, sentinel := range []error{
		ErrNotFound, ErrSuspended, ErrAlreadyLiked, ErrNotLiked,
		ErrEmptyMessage, ErrInvalidReference,
	} {
		if errors.Is(a, sentinel) != errors.Is(b, sentinel) {
			return false
		}
	}
	return true
}

// pick returns a mostly-valid ID: usually a known one, occasionally a
// bogus string, exercising the error paths of both stores identically.
func pick(rng *rand.Rand, pool []string) string {
	if len(pool) == 0 || rng.Intn(20) == 0 {
		return fmt.Sprintf("bogus-%d", rng.Intn(5))
	}
	return pool[rng.Intn(len(pool))]
}

// runDifferential drives ops randomized operations into both stores.
// window sets both stores' retention window (0 = infinite); the op mix
// includes retention sweeps, which are no-ops at the infinite window and
// evict identically on both stores at a finite one.
func runDifferential(t *testing.T, seed int64, ops int, shards int, window time.Duration) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sharded := NewWithShards(shards)
	oracle := newReferenceStore()
	sharded.SetRetentionWindow(window)
	oracle.SetRetentionWindow(window)
	if g, want := sharded.RetentionWindow(), oracle.RetentionWindow(); g != want {
		t.Fatalf("RetentionWindow = %v, oracle %v", g, want)
	}
	w := &diffWorld{suspended: make(map[string]bool)}
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

	for i := 0; i < ops; i++ {
		at := epoch.Add(time.Duration(i) * time.Minute)
		meta := WriteMeta{
			AppID:    fmt.Sprintf("app-%d", rng.Intn(3)),
			SourceIP: fmt.Sprintf("203.0.113.%d", rng.Intn(200)),
			At:       at,
		}
		switch op := rng.Intn(100); {
		case op < 15: // create account (sometimes a whole batch)
			if rng.Intn(5) == 0 {
				seeds := make([]AccountSeed, 1+rng.Intn(20))
				for j := range seeds {
					seeds[j] = AccountSeed{Name: fmt.Sprintf("acct-%d-%d", i, j), Country: "TR"}
				}
				got := sharded.CreateAccountBatch(seeds, at)
				want := oracle.CreateAccountBatch(seeds, at)
				if len(got) != len(want) {
					t.Fatalf("op %d: CreateAccountBatch: %d vs %d", i, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("op %d: CreateAccountBatch[%d] = %+v, oracle %+v", i, j, got[j], want[j])
					}
					w.accounts = append(w.accounts, got[j].ID)
				}
				break
			}
			name := fmt.Sprintf("acct-%d", i)
			got := sharded.CreateAccount(name, "IN", at)
			want := oracle.CreateAccount(name, "IN", at)
			if got != want {
				t.Fatalf("op %d: CreateAccount = %+v, oracle %+v", i, got, want)
			}
			w.accounts = append(w.accounts, got.ID)
		case op < 20: // create page
			owner := pick(rng, w.accounts)
			got, gerr := sharded.CreatePage(owner, "page", at)
			want, werr := oracle.CreatePage(owner, "page", at)
			if !sameErr(gerr, werr) || got != want {
				t.Fatalf("op %d: CreatePage = %+v/%v, oracle %+v/%v", i, got, gerr, want, werr)
			}
			if gerr == nil {
				w.pages = append(w.pages, got.ID)
			}
		case op < 35: // create post (sometimes by a page, sometimes empty)
			author := pick(rng, w.accounts)
			if len(w.pages) > 0 && rng.Intn(4) == 0 {
				author = pick(rng, w.pages)
			}
			msg := fmt.Sprintf("post %d", i)
			if rng.Intn(25) == 0 {
				msg = ""
			}
			got, gerr := sharded.CreatePost(author, msg, meta)
			want, werr := oracle.CreatePost(author, msg, meta)
			if !sameErr(gerr, werr) || got != want {
				t.Fatalf("op %d: CreatePost = %+v/%v, oracle %+v/%v", i, got, gerr, want, werr)
			}
			if gerr == nil {
				w.posts = append(w.posts, got.ID)
			}
		case op < 58: // like a post, page, or profile (dups included)
			liker := pick(rng, w.accounts)
			object := pick(rng, w.posts)
			switch rng.Intn(6) {
			case 0:
				object = pick(rng, w.pages)
			case 1:
				object = pick(rng, w.accounts)
			}
			gerr := sharded.AddLike(liker, object, meta)
			werr := oracle.AddLike(liker, object, meta)
			if !sameErr(gerr, werr) {
				t.Fatalf("op %d: AddLike(%s,%s) = %v, oracle %v", i, liker, object, gerr, werr)
			}
		case op < 65: // batched likes: AddLikeBatch vs sequential oracle
			n := 1 + rng.Intn(60)
			batch := make([]LikeOp, n)
			for j := range batch {
				object := pick(rng, w.posts)
				switch rng.Intn(6) {
				case 0:
					object = pick(rng, w.pages)
				case 1:
					object = pick(rng, w.accounts)
				}
				batch[j] = LikeOp{AccountID: pick(rng, w.accounts), ObjectID: object, Meta: meta}
			}
			if n > 1 && rng.Intn(2) == 0 {
				// Force an intra-batch duplicate: its second occurrence
				// must fail with ErrAlreadyLiked exactly as a sequential
				// AddLike replay would.
				batch[n-1] = batch[rng.Intn(n-1)]
			}
			gerrs := sharded.AddLikeBatch(batch)
			for j, lop := range batch {
				werr := oracle.AddLike(lop.AccountID, lop.ObjectID, lop.Meta)
				if !sameErr(gerrs[j], werr) {
					t.Fatalf("op %d: AddLikeBatch[%d](%s,%s) = %v, oracle AddLike %v",
						i, j, lop.AccountID, lop.ObjectID, gerrs[j], werr)
				}
			}
		case op < 70: // purge a like
			liker := pick(rng, w.accounts)
			object := pick(rng, w.posts)
			gerr := sharded.RemoveLike(liker, object)
			werr := oracle.RemoveLike(liker, object)
			if !sameErr(gerr, werr) {
				t.Fatalf("op %d: RemoveLike = %v, oracle %v", i, gerr, werr)
			}
		case op < 80: // comment
			commenter := pick(rng, w.accounts)
			post := pick(rng, w.posts)
			msg := fmt.Sprintf("AW E S O M E %d", i)
			if rng.Intn(25) == 0 {
				msg = ""
			}
			got, gerr := sharded.AddComment(commenter, post, msg, meta)
			want, werr := oracle.AddComment(commenter, post, msg, meta)
			if !sameErr(gerr, werr) || got != want {
				t.Fatalf("op %d: AddComment = %+v/%v, oracle %+v/%v", i, got, gerr, want, werr)
			}
		case op < 87: // suspend / reinstate
			id := pick(rng, w.accounts)
			suspend := rng.Intn(2) == 0
			gerr := sharded.SetSuspended(id, suspend)
			werr := oracle.SetSuspended(id, suspend)
			if !sameErr(gerr, werr) {
				t.Fatalf("op %d: SetSuspended = %v, oracle %v", i, gerr, werr)
			}
		case op < 93: // friendship
			a := pick(rng, w.accounts)
			b := pick(rng, w.accounts)
			gerr := sharded.AddFriendship(a, b)
			werr := oracle.AddFriendship(a, b)
			if !sameErr(gerr, werr) {
				t.Fatalf("op %d: AddFriendship(%s,%s) = %v, oracle %v", i, a, b, gerr, werr)
			}
		case op < 95: // retention sweep
			gres := sharded.RetentionSweep(at)
			wres := oracle.RetentionSweep(at)
			if gres != wres {
				t.Fatalf("op %d: RetentionSweep = %+v, oracle %+v", i, gres, wres)
			}
			if g, want := sharded.RetainedEdges(), oracle.RetainedEdges(); g != want {
				t.Fatalf("op %d: RetainedEdges = %+v, oracle %+v", i, g, want)
			}
		default: // spot-check reads mid-sequence
			id := pick(rng, w.accounts)
			obj := pick(rng, w.posts)
			ga, gaerr := sharded.Account(id)
			wa, waerr := oracle.Account(id)
			if !sameErr(gaerr, waerr) || ga != wa {
				t.Fatalf("op %d: Account = %+v/%v, oracle %+v/%v", i, ga, gaerr, wa, waerr)
			}
			if g, w := sharded.LikeCount(obj), oracle.LikeCount(obj); g != w {
				t.Fatalf("op %d: LikeCount = %d, oracle %d", i, g, w)
			}
			if g, w := sharded.HasLiked(id, obj), oracle.HasLiked(id, obj); g != w {
				t.Fatalf("op %d: HasLiked = %v, oracle %v", i, g, w)
			}
			go1, goerr := sharded.OwnerOf(obj)
			wo, woerr := oracle.OwnerOf(obj)
			if !sameErr(goerr, woerr) || go1 != wo {
				t.Fatalf("op %d: OwnerOf = %v/%v, oracle %v/%v", i, go1, goerr, wo, woerr)
			}
		}
	}
	compareStores(t, sharded, oracle, w)
}

// compareStores asserts full observable-state equality after the run.
func compareStores(t *testing.T, sharded, oracle graphStore, w *diffWorld) {
	t.Helper()
	if g, want := sharded.Stats(), oracle.Stats(); g != want {
		t.Fatalf("Stats = %+v, oracle %+v", g, want)
	}
	if g, want := sharded.AccountCount(), oracle.AccountCount(); g != want {
		t.Fatalf("AccountCount = %d, oracle %d", g, want)
	}
	gids, wids := sharded.AccountIDs(), oracle.AccountIDs()
	if len(gids) != len(wids) {
		t.Fatalf("AccountIDs: %d vs %d", len(gids), len(wids))
	}
	for i := range gids {
		if gids[i] != wids[i] {
			t.Fatalf("AccountIDs[%d] = %s, oracle %s", i, gids[i], wids[i])
		}
	}
	for _, id := range w.accounts {
		ga, gerr := sharded.Account(id)
		wa, werr := oracle.Account(id)
		if !sameErr(gerr, werr) || ga != wa {
			t.Fatalf("Account(%s) = %+v/%v, oracle %+v/%v", id, ga, gerr, wa, werr)
		}
		compareActivities(t, id, sharded.ActivityLog(id), oracle.ActivityLog(id))
		gf, wf := sharded.Friends(id), oracle.Friends(id)
		if len(gf) != len(wf) {
			t.Fatalf("Friends(%s): %d vs %d", id, len(gf), len(wf))
		}
		for i := range gf {
			if gf[i] != wf[i] {
				t.Fatalf("Friends(%s)[%d] = %s, oracle %s", id, i, gf[i], wf[i])
			}
		}
		if g, want := sharded.FriendCount(id), oracle.FriendCount(id); g != want {
			t.Fatalf("FriendCount(%s) = %d, oracle %d", id, g, want)
		}
		comparePosts(t, id, sharded.PostsByAuthor(id), oracle.PostsByAuthor(id))
	}
	objects := append(append(append([]string{}, w.posts...), w.pages...), w.accounts...)
	for _, obj := range objects {
		compareLikeCrawl(t, sharded, oracle, obj)
	}
	for _, post := range w.posts {
		gc, wc := sharded.Comments(post), oracle.Comments(post)
		if len(gc) != len(wc) {
			t.Fatalf("Comments(%s): %d vs %d", post, len(gc), len(wc))
		}
		for i := range gc {
			if gc[i] != wc[i] {
				t.Fatalf("Comments(%s)[%d] = %+v, oracle %+v", post, i, gc[i], wc[i])
			}
		}
		compareCommentCursorCrawl(t, sharded, oracle, post)
	}
	if g, want := sharded.RetainedEdges(), oracle.RetainedEdges(); g != want {
		t.Fatalf("RetainedEdges = %+v, oracle %+v", g, want)
	}
}

// compareLikeCrawl checks the full crawl order and the paginated crawl —
// the cursor scheme the Graph API layer exposes is offset-based over
// exactly this arrival order, so equal chunked traversal means equal
// pagination cursors for API clients.
func compareLikeCrawl(t *testing.T, sharded, oracle graphStore, objectID string) {
	t.Helper()
	gl, wl := sharded.Likes(objectID), oracle.Likes(objectID)
	if len(gl) != len(wl) {
		t.Fatalf("Likes(%s): %d vs %d", objectID, len(gl), len(wl))
	}
	for i := range gl {
		if gl[i] != wl[i] {
			t.Fatalf("Likes(%s)[%d] = %+v, oracle %+v", objectID, i, gl[i], wl[i])
		}
	}
	if g, want := sharded.LikeCount(objectID), oracle.LikeCount(objectID); g != want {
		t.Fatalf("LikeCount(%s) = %d, oracle %d", objectID, g, want)
	}
	// Paginated crawl in pages of 3: every page boundary (cursor) must
	// yield the same window on both stores.
	const pageSize = 3
	for off := 0; off < len(gl); off += pageSize {
		end := off + pageSize
		if end > len(gl) {
			end = len(gl)
		}
		for i := off; i < end; i++ {
			if gl[i].AccountID != wl[i].AccountID {
				t.Fatalf("Likes(%s) page at cursor %d diverges", objectID, off)
			}
		}
	}
	// Sequence-cursored crawl via LikesPage: both stores must serve the
	// same pages, the same next-cursors, and reassemble the full crawl.
	var crawled []Like
	after := 0
	for {
		gp, gnext, gmore := sharded.LikesPage(objectID, after, pageSize)
		wp, wnext, wmore := oracle.LikesPage(objectID, after, pageSize)
		if len(gp) != len(wp) || gnext != wnext || gmore != wmore {
			t.Fatalf("LikesPage(%s, after=%d): %d/%d/%v vs %d/%d/%v",
				objectID, after, len(gp), gnext, gmore, len(wp), wnext, wmore)
		}
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("LikesPage(%s, after=%d)[%d] = %+v, oracle %+v", objectID, after, i, gp[i], wp[i])
			}
		}
		crawled = append(crawled, gp...)
		if !gmore {
			break
		}
		after = gnext
	}
	if len(crawled) != len(gl) {
		t.Fatalf("LikesPage crawl of %s reassembled %d likes, Likes has %d", objectID, len(crawled), len(gl))
	}
	for i := range crawled {
		if crawled[i] != gl[i] {
			t.Fatalf("LikesPage crawl of %s diverges at %d", objectID, i)
		}
	}
}

// compareCommentCursorCrawl walks the sequence-cursored comment pages on
// both stores in lockstep.
func compareCommentCursorCrawl(t *testing.T, sharded, oracle graphStore, postID string) {
	t.Helper()
	after := 0
	for {
		gp, gnext, gmore := sharded.CommentsPage(postID, after, 4)
		wp, wnext, wmore := oracle.CommentsPage(postID, after, 4)
		if len(gp) != len(wp) || gnext != wnext || gmore != wmore {
			t.Fatalf("CommentsPage(%s, after=%d): %d/%d/%v vs %d/%d/%v",
				postID, after, len(gp), gnext, gmore, len(wp), wnext, wmore)
		}
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("CommentsPage(%s, after=%d)[%d] = %+v, oracle %+v", postID, after, i, gp[i], wp[i])
			}
		}
		if !gmore {
			return
		}
		after = gnext
	}
}

func comparePosts(t *testing.T, author string, g, w []Post) {
	t.Helper()
	if len(g) != len(w) {
		t.Fatalf("PostsByAuthor(%s): %d vs %d", author, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("PostsByAuthor(%s)[%d] = %+v, oracle %+v", author, i, g[i], w[i])
		}
	}
}

func compareActivities(t *testing.T, account string, g, w []Activity) {
	t.Helper()
	if len(g) != len(w) {
		t.Fatalf("ActivityLog(%s): %d vs %d", account, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("ActivityLog(%s)[%d] = %+v, oracle %+v", account, i, g[i], w[i])
		}
	}
}

// TestDifferentialShardedVsReference drives >= 10k randomized operations
// into both implementations across several seeds and shard counts,
// including the degenerate 1-shard store and a shard count far above the
// object count.
func TestDifferentialShardedVsReference(t *testing.T) {
	ops := 10_000
	if testing.Short() {
		ops = 2_500
	}
	for _, tc := range []struct {
		seed   int64
		shards int
	}{
		{seed: 1, shards: 1},
		{seed: 2, shards: 4},
		{seed: 3, shards: 16},
		{seed: 4, shards: 256},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/shards=%d", tc.seed, tc.shards), func(t *testing.T) {
			runDifferential(t, tc.seed, ops, tc.shards, 0)
		})
	}
}

// TestDifferentialRetention re-runs the harness with a finite retention
// window, so the in-mix retention sweeps actually evict edge history.
// Timestamps advance one minute per op, so a few-hour window turns over
// many times across the sequence; the sharded store's per-stripe eviction
// must remain indistinguishable from the oracle's single-lock one —
// including the sequence cursors of pages that survive a sweep.
func TestDifferentialRetention(t *testing.T) {
	ops := 10_000
	if testing.Short() {
		ops = 2_500
	}
	for _, tc := range []struct {
		seed   int64
		shards int
		window time.Duration
	}{
		{seed: 5, shards: 1, window: 2 * time.Hour},
		{seed: 6, shards: 8, window: 6 * time.Hour},
		{seed: 7, shards: 64, window: 30 * time.Minute},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/shards=%d/window=%s", tc.seed, tc.shards, tc.window), func(t *testing.T) {
			runDifferential(t, tc.seed, ops, tc.shards, tc.window)
		})
	}
}

// TestDifferentialActivitySince pins the time-filtered crawl both
// implementations serve to the honeypot outgoing-activity experiments.
func TestDifferentialActivitySince(t *testing.T) {
	sharded := NewWithShards(8)
	oracle := newReferenceStore()
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	var gA, wA Account
	for i := 0; i < 5; i++ {
		gA = sharded.CreateAccount(fmt.Sprintf("u%d", i), "IN", epoch)
		wA = oracle.CreateAccount(fmt.Sprintf("u%d", i), "IN", epoch)
	}
	gp, _ := sharded.CreatePost(gA.ID, "p", WriteMeta{At: epoch})
	wp, _ := oracle.CreatePost(wA.ID, "p", WriteMeta{At: epoch})
	for i := 0; i < 24; i++ {
		at := epoch.Add(time.Duration(i) * time.Hour)
		_, _ = sharded.AddComment(gA.ID, gp.ID, "c", WriteMeta{At: at})
		_, _ = oracle.AddComment(wA.ID, wp.ID, "c", WriteMeta{At: at})
	}
	cut := epoch.Add(12 * time.Hour)
	compareActivities(t, gA.ID, sharded.ActivitySince(gA.ID, cut), oracle.ActivitySince(wA.ID, cut))
}
