package socialgraph

// Batched like apply. A collusion-network burst is hundreds of likes on
// one object, which under sequential AddLike costs two lock scopes per
// action. AddLikeBatch amortises that: ops are split into maximal
// consecutive runs whose objects share a stripe, and each run is applied
// under a single multi-stripe lock scope (the object stripe plus every
// liker's account stripe, acquired in ascending index order exactly like
// lockOrdered). Because runs are consecutive, the total apply order is
// the ops' order, so per-op errors and final state — including
// intra-batch duplicates — match N sequential AddLike calls exactly.

// LikeOp is one like in a batch: AccountID likes ObjectID, attributed to
// Meta. Meta is per-op because each action in a delivery burst carries
// its own source IP, and attribution is what the countermeasures key on.
type LikeOp struct {
	AccountID string
	ObjectID  string
	Meta      WriteMeta
}

// AddLikeBatch applies the ops in order and returns one error per op,
// aligned by index (nil = applied). Semantics are identical to calling
// AddLike(op.AccountID, op.ObjectID, op.Meta) for each op in sequence.
func (s *Store) AddLikeBatch(ops []LikeOp) []error {
	errs := make([]error, len(ops))
	for start := 0; start < len(ops); {
		objIdx := s.shardIndex(ops[start].ObjectID)
		end := start + 1
		for end < len(ops) && s.shardIndex(ops[end].ObjectID) == objIdx {
			end++
		}
		s.applyLikeRun(ops[start:end], errs[start:end], objIdx)
		start = end
	}
	return errs
}

// applyLikeRun applies one run of likes whose objects live on stripe
// objIdx under a single lock scope.
func (s *Store) applyLikeRun(run []LikeOp, errs []error, objIdx int) {
	idxs := make([]int, 0, len(run)+1)
	idxs = append(idxs, objIdx)
	for i := range run {
		idxs = append(idxs, s.shardIndex(run[i].AccountID))
	}
	unlock := s.lockOrderedIdx(idxs)
	defer unlock()
	objShard := s.shards[objIdx]
	for i := range run {
		op := &run[i]
		errs[i] = likeLocked(s.shards[s.shardIndex(op.AccountID)], objShard, op.AccountID, op.ObjectID, op.Meta)
	}
}
