package socialgraph

import "slices"

// Batched like apply. A collusion-network burst is hundreds of likes on
// one object, which under sequential AddLike costs two lock scopes per
// action. AddLikeBatch amortises that: ops are split into maximal
// consecutive runs whose objects share a stripe, and each run is applied
// under a single multi-stripe lock scope (the object stripe plus every
// liker's account stripe, acquired in ascending index order exactly like
// lockOrdered). Because runs are consecutive, the total apply order is
// the ops' order, so per-op errors and final state — including
// intra-batch duplicates — match N sequential AddLike calls exactly.

// LikeOp is one like in a batch: AccountID likes ObjectID, attributed to
// Meta. Meta is per-op because each action in a delivery burst carries
// its own source IP, and attribution is what the countermeasures key on.
type LikeOp struct {
	AccountID string
	ObjectID  string
	Meta      WriteMeta
}

// AddLikeBatch applies the ops in order and returns one error per op,
// aligned by index (nil = applied). Semantics are identical to calling
// AddLike(op.AccountID, op.ObjectID, op.Meta) for each op in sequence.
func (s *Store) AddLikeBatch(ops []LikeOp) []error {
	errs := make([]error, len(ops))
	s.AddLikeBatchInto(ops, errs)
	return errs
}

// AddLikeBatchInto is AddLikeBatch writing per-op errors into a
// caller-provided slice (len(errs) must be >= len(ops)), so callers that
// pool their batch scratch (graphapi.LikeBatch, the loadgen) keep the
// whole apply allocation-free. Entries [0, len(ops)) are overwritten.
func (s *Store) AddLikeBatchInto(ops []LikeOp, errs []error) {
	for start := 0; start < len(ops); {
		objIdx := s.shardIndex(ops[start].ObjectID)
		end := start + 1
		for end < len(ops) && s.shardIndex(ops[end].ObjectID) == objIdx {
			end++
		}
		s.applyLikeRun(ops[start:end], errs[start:end], objIdx)
		start = end
	}
}

// applyLikeRun applies one run of likes whose objects live on stripe
// objIdx under a single lock scope: the object stripe plus every liker's
// account stripe, deduplicated and acquired in ascending index order —
// the batch generalisation of addLikePair, held inline for the same
// reason (no unlock closure, no heap escape). The stripe set lives in a
// stack buffer for every batch the API layer emits (cap 50).
//
//collusionvet:lockorder
func (s *Store) applyLikeRun(run []LikeOp, errs []error, objIdx int) {
	var buf [64]int
	idxs := buf[:0]
	if len(run)+1 > len(buf) {
		idxs = make([]int, 0, len(run)+1)
	}
	idxs = append(idxs, objIdx)
	for i := range run {
		idxs = append(idxs, s.shardIndex(run[i].AccountID))
	}
	slices.Sort(idxs)
	// Compact duplicates in place so each stripe locks exactly once.
	n := 1
	for i := 1; i < len(idxs); i++ {
		if idxs[i] != idxs[n-1] {
			idxs[n] = idxs[i]
			n++
		}
	}
	idxs = idxs[:n]
	for _, i := range idxs {
		s.lockIdx(i)
	}
	objShard := s.shards[objIdx]
	for i := range run {
		op := &run[i]
		errs[i] = likeLocked(s.shards[s.shardIndex(op.AccountID)], objShard, op.AccountID, op.ObjectID, op.Meta)
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		s.shards[idxs[i]].mu.Unlock()
	}
}
