package socialgraph

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

func TestShardCountDefaults(t *testing.T) {
	s := New()
	n := s.ShardCount()
	if n&(n-1) != 0 || n < 1 {
		t.Fatalf("default ShardCount = %d, want a power of two", n)
	}
	want := defaultShardCount()
	if n != want {
		t.Fatalf("ShardCount = %d, want %d for GOMAXPROCS=%d", n, want, runtime.GOMAXPROCS(0))
	}
}

func TestNewWithShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1},
		{2, 2},
		{3, 4},
		{5, 8},
		{100, 128},
		{maxShards, maxShards},
		{maxShards + 1, maxShards},
	} {
		if got := NewWithShards(tc.in).ShardCount(); got != tc.want {
			t.Fatalf("NewWithShards(%d).ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewWithShards(0).ShardCount(); got != defaultShardCount() {
		t.Fatalf("NewWithShards(0) = %d shards, want default %d", got, defaultShardCount())
	}
}

func TestShardRoutingDeterministicAndInRange(t *testing.T) {
	s := NewWithShards(16)
	samples := []string{"", "a", "1000000000000001", "2000000000000042", "héllo-wörld", "\x00\xff", "acct"}
	for _, id := range samples {
		i := s.shardIndex(id)
		if i < 0 || i >= s.ShardCount() {
			t.Fatalf("shardIndex(%q) = %d out of range", id, i)
		}
		if j := s.shardIndex(id); j != i {
			t.Fatalf("shardIndex(%q) not deterministic: %d then %d", id, i, j)
		}
	}
}

func TestShardSpreadOverMintedIDs(t *testing.T) {
	// Minted IDs are sequential decimals; FNV-1a must still spread them so
	// striping actually relieves contention. Allow generous skew but
	// reject degenerate clumping (all traffic on a handful of stripes).
	s := NewWithShards(16)
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	counts := make([]int, s.ShardCount())
	const n = 4096
	for i := 0; i < n; i++ {
		a := s.CreateAccount(fmt.Sprintf("u%d", i), "IN", epoch)
		counts[s.shardIndex(a.ID)]++
	}
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
		if c > n/2 {
			t.Fatalf("one shard holds %d of %d accounts", c, n)
		}
	}
	if nonEmpty < s.ShardCount()/2 {
		t.Fatalf("only %d of %d shards used", nonEmpty, s.ShardCount())
	}
}

func TestContentionCountersSequential(t *testing.T) {
	s := NewWithShards(4)
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	a := s.CreateAccount("a", "IN", epoch)
	p, err := s.CreatePost(a.ID, "post", WriteMeta{At: epoch})
	if err != nil {
		t.Fatal(err)
	}
	b := s.CreateAccount("b", "IN", epoch)
	if err := s.AddLike(b.ID, p.ID, WriteMeta{At: epoch}); err != nil {
		t.Fatal(err)
	}
	acquired, contended := s.Contention().Totals()
	if acquired == 0 {
		t.Fatal("no acquisitions recorded")
	}
	if contended != 0 {
		t.Fatalf("sequential use recorded %d contended acquisitions", contended)
	}
	snap := s.Contention().Snapshot()
	if len(snap) != s.ShardCount() {
		t.Fatalf("Snapshot length = %d, want %d", len(snap), s.ShardCount())
	}
	if frac := s.Contention().ContendedFraction(); frac != 0 {
		t.Fatalf("sequential ContendedFraction = %v", frac)
	}
}

func TestLockOrderedCollapsesDuplicates(t *testing.T) {
	s := NewWithShards(2)
	// Same ID twice must lock its shard exactly once (and unlock cleanly).
	unlock := s.lockOrdered("x", "x")
	unlock()
	// Cross-shard pair in both argument orders must not deadlock when
	// interleaved; sequential smoke here, the stress tests cover races.
	unlock = s.lockOrdered("a", "b")
	unlock()
	unlock = s.lockOrdered("b", "a")
	unlock()
}
