package socialgraph

// Chunked, pooled edge history. The per-object like order, per-post
// comment order, and per-account activity log were grow-by-append slices;
// under scale-mode load their repeated doubling dominated the store's
// allocation profile (BENCH_9: ~50% of BenchmarkTable4Milking's bytes/op
// came from likeLocked's appends alone). They are now singly-linked lists
// of fixed-size chunks drawn from per-shard free lists:
//
//   - appending an entry touches only the tail chunk and allocates
//     nothing while the shard's free list is non-empty, so a
//     steady-state write under retention (sweeps refill the free lists)
//     is allocation-free;
//   - a retention sweep compacts survivors toward the head in place and
//     returns whole evicted chunks to the shard's pool instead of
//     re-slicing, so eviction is also allocation-free;
//   - memory overhead is bounded per container: at most one partially
//     filled tail chunk, instead of the up-to-2x slack a doubled slice
//     carries.
//
// Ownership: every chunk belongs to exactly one shard's pool and is only
// touched under that shard's write lock (appends, removal, filtering) or
// read lock (iteration). Chunks never migrate between shards, so pool
// access needs no synchronization of its own. Pool helpers and the list
// operations are annotated //collusionvet:locked where they touch shard
// state: the caller holds the stripe lock, exactly like likeLocked.
//
// Entries are cleared (zeroed) when a chunk returns to the pool so
// pooled chunks never pin evicted IDs or activity records — chunk reuse
// must not resurrect evicted edges (the differential and fuzz harnesses
// drive interleaved writes/sweeps/crawls against the reference store to
// prove it cannot).
//
// Chunk capacities are per entry class. Like/comment order entries
// (edgeRef: one string header and one int) are 24 bytes, and hot objects
// accumulate thousands of them, so those chunks hold 64 entries (~1.5
// KiB). Activity entries are 136 bytes and most accounts under the
// uniform-actor scale workload log only a handful of actions, so
// activity chunks hold 16 entries (~2.2 KiB) — large enough to amortise
// chunk overhead on collusion members that act for months, small enough
// that a barely active account does not pay kilobytes of slack. See
// DESIGN.md §12.

const (
	edgeChunkCap     = 64
	activityChunkCap = 16
)

// chunk is one fixed-capacity segment of a chunkList. buf is allocated
// once at len == cap and indexed [0, n); it never grows.
type chunk[T any] struct {
	next *chunk[T]
	n    int
	buf  []T
}

// chunkPool is a per-shard free list of chunks. It is deliberately not a
// sync.Pool: the shard write lock already serialises access, the GC must
// never drain it (steady-state zero-alloc gates depend on reuse), and
// its high-water mark — the largest eviction burst between refills — is
// exactly the steady-state working set under retention.
type chunkPool[T any] struct {
	free []*chunk[T]
	cap  int // capacity of chunks this pool hands out
}

// get returns a cleared chunk, reusing a pooled one when available.
//
//collusionvet:locked
func (p *chunkPool[T]) get() *chunk[T] {
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return c
	}
	return &chunk[T]{buf: make([]T, p.cap)}
}

// put clears a chunk and returns it to the free list. Clearing the whole
// buffer (not just [0, n)) keeps the pool safe against callers that
// compacted entries past n before releasing.
//
//collusionvet:locked
func (p *chunkPool[T]) put(c *chunk[T]) {
	clear(c.buf)
	c.n = 0
	c.next = nil
	p.free = append(p.free, c)
}

// chunkList is an append-ordered sequence of entries stored in chunks.
// Invariant: interior chunks are full except where a removal shortened
// one in place; the tail chunk is the only append target. total is the
// live entry count across all chunks.
type chunkList[T any] struct {
	head, tail *chunk[T]
	total      int
}

// Concrete instantiations. The store uses exactly two entry classes; the
// aliases keep signatures (and the lockorder golden) readable.
type (
	edgeList     = chunkList[edgeRef]
	activityList = chunkList[Activity]
	edgePool     = chunkPool[edgeRef]
	activityPool = chunkPool[Activity]
)

// append adds v at the end, drawing a new tail chunk from p only when
// the current tail is full. Steady state (pool non-empty) is
// allocation-free.
//
//collusionvet:locked
func (l *chunkList[T]) append(p *chunkPool[T], v T) {
	t := l.tail
	if t == nil || t.n == len(t.buf) {
		c := p.get()
		if t == nil {
			l.head = c
		} else {
			t.next = c
		}
		l.tail = c
		t = c
	}
	t.buf[t.n] = v
	t.n++
	l.total++
}

// release returns every chunk to p and empties the list.
//
//collusionvet:locked
func (l *chunkList[T]) release(p *chunkPool[T]) {
	for c := l.head; c != nil; {
		next := c.next
		p.put(c)
		c = next
	}
	l.head, l.tail, l.total = nil, nil, 0
}

// filter retains the entries for which keep returns true, preserving
// order, compacting survivors toward the head in place, and returning
// the emptied tail chunks to p. It reports how many entries were
// dropped. This is the retention sweep's primitive: no re-slicing, no
// allocation, and evicted entries are zeroed so pooled chunks never pin
// them.
//
//collusionvet:locked
func (l *chunkList[T]) filter(p *chunkPool[T], keep func(*T) bool) (dropped int) {
	if l.head == nil {
		return 0
	}
	wc, wi := l.head, 0 // write cursor: survivors pack into (wc, wi)
	kept := 0
	for c := l.head; c != nil; c = c.next {
		for i := 0; i < c.n; i++ {
			if !keep(&c.buf[i]) {
				dropped++
				continue
			}
			if wi == len(wc.buf) {
				wc.n = wi
				wc = wc.next
				wi = 0
			}
			if wc != c || wi != i {
				wc.buf[wi] = c.buf[i]
			}
			wi++
			kept++
		}
	}
	l.total = kept
	if kept == 0 {
		l.release(p)
		return dropped
	}
	// wc holds the last survivor; everything after it goes back to the
	// pool, and the stale slots past the new fill point are zeroed.
	drop := wc.next
	clear(wc.buf[wi:])
	wc.n = wi
	wc.next = nil
	l.tail = wc
	for c := drop; c != nil; {
		next := c.next
		p.put(c)
		c = next
	}
	// Compaction refilled every chunk before the tail completely.
	for c := l.head; c != wc; c = c.next {
		c.n = len(c.buf)
	}
	return dropped
}

// removeEdge deletes the first entry whose id matches, shifting only
// within that entry's own chunk — the tail of the list is never copied
// (the old slice representation re-appended everything after the
// removal point). An emptied chunk is unlinked and pooled.
//
//collusionvet:locked
func removeEdge(l *edgeList, p *edgePool, id string) bool {
	var prev *chunk[edgeRef]
	for c := l.head; c != nil; prev, c = c, c.next {
		for i := 0; i < c.n; i++ {
			if c.buf[i].id != id {
				continue
			}
			copy(c.buf[i:c.n-1], c.buf[i+1:c.n])
			c.buf[c.n-1] = edgeRef{}
			c.n--
			l.total--
			if c.n == 0 {
				if prev == nil {
					l.head = c.next
				} else {
					prev.next = c.next
				}
				if l.tail == c {
					l.tail = prev
				}
				p.put(c)
			}
			return true
		}
	}
	return false
}

// searchEdges returns the position of the first entry with seq >= after:
// the chunk, the index within it, and the absolute position from the
// head. Sequences are strictly ascending across a list (they are
// assigned from the object's monotone counter and removal preserves
// order), so whole chunks whose last entry is below the cursor are
// skipped without touching their entries, then the target chunk is
// scanned. Returns (nil, 0, total) when every entry is below after.
func searchEdges(l *edgeList, after int) (c *chunk[edgeRef], idx, pos int) {
	for c = l.head; c != nil; c = c.next {
		if c.n > 0 && c.buf[c.n-1].seq >= after {
			for i := 0; i < c.n; i++ {
				if c.buf[i].seq >= after {
					return c, i, pos + i
				}
			}
		}
		pos += c.n
	}
	return nil, 0, pos
}
