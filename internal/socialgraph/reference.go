package socialgraph

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
)

// referenceStore is the seed single-mutex implementation of the social
// graph, kept verbatim as the behavioural oracle for the sharded Store.
// The differential tests drive identical randomized operation sequences
// into both implementations and require identical observable state —
// minted IDs, error sentinels, like counts, crawl order, activity logs,
// pagination — so any semantic drift in the sharded store is caught
// immediately. It is deliberately unexported and must only be used from
// tests.
type referenceStore struct {
	mu       sync.RWMutex
	minter   *ids.Minter
	accounts map[string]*Account
	pages    map[string]*Page
	posts    map[string]*Post
	comments map[string]*Comment
	// likesByObject[objectID][accountID] = like
	likesByObject map[string]map[string]Like
	// likeOrder preserves insertion order of likes per object for crawling,
	// each entry carrying its never-reused arrival sequence (see edgeRef).
	likeOrder map[string][]edgeRef
	// postsByAuthor[authorID] = post IDs in creation order
	postsByAuthor map[string][]string
	// commentsByPost[postID] = comment refs in creation order
	commentsByPost map[string][]edgeRef
	// activity[accountID] = outgoing activity log
	activity map[string][]Activity
	// friends[accountID] = set of friend account IDs (undirected edges,
	// stored symmetrically); allocated lazily by AddFriendship.
	friends map[string]map[string]bool
	// likeSeq / commentSeq hold each object's next arrival sequence.
	likeSeq    map[string]int
	commentSeq map[string]int
	// retention is the analytics window; 0 = infinite (sweeps no-op).
	retention time.Duration
}

// newReferenceStore returns an empty reference store.
func newReferenceStore() *referenceStore {
	return &referenceStore{
		minter:         ids.NewMinter(),
		accounts:       make(map[string]*Account),
		pages:          make(map[string]*Page),
		posts:          make(map[string]*Post),
		comments:       make(map[string]*Comment),
		likesByObject:  make(map[string]map[string]Like),
		likeOrder:      make(map[string][]edgeRef),
		postsByAuthor:  make(map[string][]string),
		commentsByPost: make(map[string][]edgeRef),
		activity:       make(map[string][]Activity),
		likeSeq:        make(map[string]int),
		commentSeq:     make(map[string]int),
	}
}

// CreateAccount registers a new account and returns it.
func (s *referenceStore) CreateAccount(name, country string, at time.Time) Account {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := &Account{
		ID:        s.minter.Next(ids.KindAccount),
		Name:      name,
		Country:   country,
		CreatedAt: at,
	}
	s.accounts[a.ID] = a
	return *a
}

// Account returns the account with the given ID.
func (s *referenceStore) Account(id string) (Account, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.accounts[id]
	if !ok {
		return Account{}, fmt.Errorf("account %q: %w", id, ErrNotFound)
	}
	return *a, nil
}

// AccountCount returns the number of registered accounts.
func (s *referenceStore) AccountCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.accounts)
}

// SetSuspended marks an account suspended or reinstated.
func (s *referenceStore) SetSuspended(id string, suspended bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[id]
	if !ok {
		return fmt.Errorf("account %q: %w", id, ErrNotFound)
	}
	a.Suspended = suspended
	return nil
}

// CreatePage registers a fan page owned by an account.
func (s *referenceStore) CreatePage(ownerID, name string, at time.Time) (Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[ownerID]; !ok {
		return Page{}, fmt.Errorf("page owner %q: %w", ownerID, ErrNotFound)
	}
	p := &Page{
		ID:        s.minter.Next(ids.KindPage),
		Name:      name,
		OwnerID:   ownerID,
		CreatedAt: at,
	}
	s.pages[p.ID] = p
	return *p, nil
}

// Page returns the page with the given ID.
func (s *referenceStore) Page(id string) (Page, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[id]
	if !ok {
		return Page{}, fmt.Errorf("page %q: %w", id, ErrNotFound)
	}
	return *p, nil
}

// CreatePost publishes a status update on the author's timeline.
func (s *referenceStore) CreatePost(authorID, message string, meta WriteMeta) (Post, error) {
	if message == "" {
		return Post{}, ErrEmptyMessage
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	actor := authorID
	if a, ok := s.accounts[authorID]; ok {
		if a.Suspended {
			return Post{}, fmt.Errorf("author %q: %w", authorID, ErrSuspended)
		}
	} else if p, ok := s.pages[authorID]; ok {
		actor = p.OwnerID
	} else {
		return Post{}, fmt.Errorf("author %q: %w", authorID, ErrNotFound)
	}
	post := &Post{
		ID:        s.minter.Next(ids.KindPost),
		AuthorID:  authorID,
		Message:   message,
		CreatedAt: meta.At,
	}
	s.posts[post.ID] = post
	s.postsByAuthor[authorID] = append(s.postsByAuthor[authorID], post.ID)
	s.activity[actor] = append(s.activity[actor], Activity{
		ActorID: actor, Verb: VerbPost, ObjectID: post.ID, TargetID: authorID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return *post, nil
}

// Post returns the post with the given ID.
func (s *referenceStore) Post(id string) (Post, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.posts[id]
	if !ok {
		return Post{}, fmt.Errorf("post %q: %w", id, ErrNotFound)
	}
	return *p, nil
}

// PostsByAuthor returns the author's posts in creation order.
func (s *referenceStore) PostsByAuthor(authorID string) []Post {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idsList := s.postsByAuthor[authorID]
	out := make([]Post, 0, len(idsList))
	for _, id := range idsList {
		out = append(out, *s.posts[id])
	}
	return out
}

// AddLike records a like by accountID on the object (post or page).
func (s *referenceStore) AddLike(accountID, objectID string, meta WriteMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[accountID]
	if !ok {
		return fmt.Errorf("liker %q: %w", accountID, ErrNotFound)
	}
	if a.Suspended {
		return fmt.Errorf("liker %q: %w", accountID, ErrSuspended)
	}
	targetID, err := s.ownerOfLocked(objectID)
	if err != nil {
		return err
	}
	likes := s.likesByObject[objectID]
	if likes == nil {
		likes = make(map[string]Like)
		s.likesByObject[objectID] = likes
	}
	if _, dup := likes[accountID]; dup {
		return fmt.Errorf("account %q on object %q: %w", accountID, objectID, ErrAlreadyLiked)
	}
	likes[accountID] = Like{
		AccountID: accountID, ObjectID: objectID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	}
	seq := s.likeSeq[objectID]
	s.likeSeq[objectID] = seq + 1
	s.likeOrder[objectID] = append(s.likeOrder[objectID], edgeRef{seq: seq, id: accountID})
	s.activity[accountID] = append(s.activity[accountID], Activity{
		ActorID: accountID, Verb: VerbLike, ObjectID: objectID, TargetID: targetID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return nil
}

// RemoveLike deletes a like.
func (s *referenceStore) RemoveLike(accountID, objectID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	likes := s.likesByObject[objectID]
	if _, ok := likes[accountID]; !ok {
		return fmt.Errorf("account %q on object %q: %w", accountID, objectID, ErrNotLiked)
	}
	delete(likes, accountID)
	order := s.likeOrder[objectID]
	for i, ref := range order {
		if ref.id == accountID {
			s.likeOrder[objectID] = append(order[:i:i], order[i+1:]...)
			break
		}
	}
	return nil
}

// Likes returns the likes on an object in arrival order.
func (s *referenceStore) Likes(objectID string) []Like {
	s.mu.RLock()
	defer s.mu.RUnlock()
	order := s.likeOrder[objectID]
	likes := s.likesByObject[objectID]
	out := make([]Like, 0, len(order))
	for _, ref := range order {
		if l, ok := likes[ref.id]; ok {
			out = append(out, l)
		}
	}
	return out
}

// LikeCount returns the number of likes on an object.
func (s *referenceStore) LikeCount(objectID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.likesByObject[objectID])
}

// HasLiked reports whether the account has liked the object.
func (s *referenceStore) HasLiked(accountID, objectID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.likesByObject[objectID][accountID]
	return ok
}

// AddComment records a comment on a post.
func (s *referenceStore) AddComment(accountID, postID, message string, meta WriteMeta) (Comment, error) {
	if message == "" {
		return Comment{}, ErrEmptyMessage
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[accountID]
	if !ok {
		return Comment{}, fmt.Errorf("commenter %q: %w", accountID, ErrNotFound)
	}
	if a.Suspended {
		return Comment{}, fmt.Errorf("commenter %q: %w", accountID, ErrSuspended)
	}
	post, ok := s.posts[postID]
	if !ok {
		return Comment{}, fmt.Errorf("post %q: %w", postID, ErrNotFound)
	}
	c := &Comment{
		ID:        s.minter.Next(ids.KindComment),
		PostID:    postID,
		AccountID: accountID,
		Message:   message,
		AppID:     meta.AppID,
		SourceIP:  meta.SourceIP,
		At:        meta.At,
	}
	s.comments[c.ID] = c
	seq := s.commentSeq[postID]
	s.commentSeq[postID] = seq + 1
	s.commentsByPost[postID] = append(s.commentsByPost[postID], edgeRef{seq: seq, id: c.ID})
	s.activity[accountID] = append(s.activity[accountID], Activity{
		ActorID: accountID, Verb: VerbComment, ObjectID: c.ID, TargetID: post.AuthorID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return *c, nil
}

// Comments returns the comments on a post in creation order.
func (s *referenceStore) Comments(postID string) []Comment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := s.commentsByPost[postID]
	out := make([]Comment, 0, len(refs))
	for _, ref := range refs {
		out = append(out, *s.comments[ref.id])
	}
	return out
}

// ActivityLog returns the account's outgoing activity in insertion order.
func (s *referenceStore) ActivityLog(accountID string) []Activity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log := s.activity[accountID]
	out := make([]Activity, len(log))
	copy(out, log)
	return out
}

// ActivitySince returns the account's outgoing activity at or after t.
func (s *referenceStore) ActivitySince(accountID string, t time.Time) []Activity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Activity
	for _, act := range s.activity[accountID] {
		if !act.At.Before(t) {
			out = append(out, act)
		}
	}
	return out
}

// ownerOfLocked resolves the owner (account or page) of a likeable object.
func (s *referenceStore) ownerOfLocked(objectID string) (string, error) {
	if p, ok := s.posts[objectID]; ok {
		return p.AuthorID, nil
	}
	if _, ok := s.pages[objectID]; ok {
		return objectID, nil
	}
	if _, ok := s.accounts[objectID]; ok {
		return objectID, nil
	}
	return "", fmt.Errorf("object %q: %w", objectID, ErrInvalidReference)
}

// OwnerOf resolves the owner of a likeable object.
func (s *referenceStore) OwnerOf(objectID string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ownerOfLocked(objectID)
}

// Stats returns aggregate counts.
func (s *referenceStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Accounts: len(s.accounts),
		Pages:    len(s.pages),
		Posts:    len(s.posts),
		Comments: len(s.comments),
	}
	for _, likes := range s.likesByObject {
		st.Likes += len(likes)
	}
	return st
}

// AccountIDs returns all account IDs in sorted order.
func (s *referenceStore) AccountIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.accounts))
	for id := range s.accounts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AddFriendship records an undirected friend edge between two accounts.
func (s *referenceStore) AddFriendship(a, b string) error {
	if a == b {
		return fmt.Errorf("socialgraph: self-friendship for %q: %w", a, ErrInvalidReference)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[a]; !ok {
		return fmt.Errorf("account %q: %w", a, ErrNotFound)
	}
	if _, ok := s.accounts[b]; !ok {
		return fmt.Errorf("account %q: %w", b, ErrNotFound)
	}
	if s.friends == nil {
		s.friends = make(map[string]map[string]bool)
	}
	if s.friends[a][b] {
		return fmt.Errorf("socialgraph: %q and %q already friends: %w", a, b, ErrAlreadyLiked)
	}
	link := func(x, y string) {
		set := s.friends[x]
		if set == nil {
			set = make(map[string]bool)
			s.friends[x] = set
		}
		set[y] = true
	}
	link(a, b)
	link(b, a)
	return nil
}

// Friends returns the account's friend IDs in sorted order.
func (s *referenceStore) Friends(accountID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := s.friends[accountID]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// FriendCount returns the number of friends of the account.
func (s *referenceStore) FriendCount(accountID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.friends[accountID])
}

// AreFriends reports whether an edge exists.
func (s *referenceStore) AreFriends(a, b string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.friends[a][b]
}

// CreateAccountBatch registers the seeds in order, all created at at.
func (s *referenceStore) CreateAccountBatch(seeds []AccountSeed, at time.Time) []Account {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Account, len(seeds))
	for i, seed := range seeds {
		a := &Account{
			ID:        s.minter.Next(ids.KindAccount),
			Name:      seed.Name,
			Country:   seed.Country,
			CreatedAt: at,
		}
		s.accounts[a.ID] = a
		out[i] = *a
	}
	return out
}

// SetRetentionWindow configures the analytics window (0 = infinite).
func (s *referenceStore) SetRetentionWindow(w time.Duration) {
	if w < 0 {
		w = 0
	}
	s.mu.Lock()
	s.retention = w
	s.mu.Unlock()
}

// RetentionWindow returns the configured analytics window.
func (s *referenceStore) RetentionWindow() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.retention
}

// RetentionSweep evicts edge history older than now minus the window.
func (s *referenceStore) RetentionSweep(now time.Time) SweepResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retention <= 0 {
		return SweepResult{}
	}
	cutoff := now.Add(-s.retention)
	var res SweepResult
	for obj, refs := range s.likeOrder {
		set := s.likesByObject[obj]
		kept := refs[:0]
		for _, ref := range refs {
			if l, ok := set[ref.id]; ok && l.At.Before(cutoff) {
				delete(set, ref.id)
				res.Likes++
				continue
			}
			kept = append(kept, ref)
		}
		if len(kept) == 0 {
			delete(s.likeOrder, obj)
			delete(s.likesByObject, obj)
		} else {
			s.likeOrder[obj] = kept
		}
	}
	for post, refs := range s.commentsByPost {
		kept := refs[:0]
		for _, ref := range refs {
			if c, ok := s.comments[ref.id]; ok && c.At.Before(cutoff) {
				delete(s.comments, ref.id)
				res.Comments++
				continue
			}
			kept = append(kept, ref)
		}
		if len(kept) == 0 {
			delete(s.commentsByPost, post)
		} else {
			s.commentsByPost[post] = kept
		}
	}
	for acct, log := range s.activity {
		kept := log[:0]
		for _, act := range log {
			if act.At.Before(cutoff) {
				res.Activities++
				continue
			}
			kept = append(kept, act)
		}
		if len(kept) == 0 {
			delete(s.activity, acct)
		} else {
			s.activity[acct] = kept
		}
	}
	return res
}

// RetainedEdges returns the currently retained edge-history counts.
func (s *referenceStore) RetainedEdges() EdgeStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st EdgeStats
	for _, likes := range s.likesByObject {
		st.Likes += int64(len(likes))
	}
	st.Comments = int64(len(s.comments))
	for _, log := range s.activity {
		st.Activities += int64(len(log))
	}
	return st
}

// LikesPage returns the sequence-cursored likes page; see Store.LikesPage.
func (s *referenceStore) LikesPage(objectID string, after, limit int) (page []Like, next int, more bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := s.likeOrder[objectID]
	set := s.likesByObject[objectID]
	start := sort.Search(len(refs), func(i int) bool { return refs[i].seq >= after })
	end := len(refs)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	for _, ref := range refs[start:end] {
		if l, ok := set[ref.id]; ok {
			page = append(page, l)
		}
	}
	if end < len(refs) {
		return page, refs[end].seq, true
	}
	return page, 0, false
}

// CommentsPage returns the sequence-cursored comments page; see
// Store.CommentsPage.
func (s *referenceStore) CommentsPage(postID string, after, limit int) (page []Comment, next int, more bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := s.commentsByPost[postID]
	start := sort.Search(len(refs), func(i int) bool { return refs[i].seq >= after })
	end := len(refs)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	for _, ref := range refs[start:end] {
		if c, ok := s.comments[ref.id]; ok {
			page = append(page, *c)
		}
	}
	if end < len(refs) {
		return page, refs[end].seq, true
	}
	return page, 0, false
}
