package socialgraph

// Chunk-recycling differential tests. The pooled edge history (chunk.go)
// returns evicted chunks to per-shard free lists and hands them back out
// on the next append. Two properties must survive that recycling, and
// neither is visible to the end-state comparison the main differential
// harness does:
//
//   - no resurrection: a recycled chunk must never leak an evicted edge
//     back into a crawl, a count, or a HasLiked probe — entries are
//     zeroed on release and the list length, not stale buffer contents,
//     bounds every traversal;
//   - cursor stability under reuse: a pagination cursor taken before a
//     sweep-and-refill cycle must keep resuming at the same absolute
//     arrival sequence even though the bytes behind it now live in a
//     different (recycled) chunk.
//
// Both are checked mid-sequence against the single-lock oracle, at the
// exact interleavings where a stale buffer would show.

import (
	"fmt"
	"testing"
	"time"
)

// TestChunkReuseChurn drives the recycle loop deliberately hard: fill a
// post's like history from a fixed population, remove part of it, sweep
// the rest out past the retention window, then refill — dozens of times,
// so the same chunks cycle through free list and list repeatedly — and
// after every phase compares full crawls, paginated crawls, and
// membership probes against the oracle.
func TestChunkReuseChurn(t *testing.T) {
	const (
		accounts = 3*edgeChunkCap + 7 // several chunks plus a partial tail
		rounds   = 30
		window   = 30 * time.Minute
	)
	sharded := NewWithShards(4)
	oracle := newReferenceStore()
	sharded.SetRetentionWindow(window)
	oracle.SetRetentionWindow(window)
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

	var likers []string
	for i := 0; i < accounts; i++ {
		name := fmt.Sprintf("churn-%d", i)
		g := sharded.CreateAccount(name, "IN", epoch)
		if w := oracle.CreateAccount(name, "IN", epoch); w != g {
			t.Fatalf("CreateAccount = %+v, oracle %+v", g, w)
		}
		likers = append(likers, g.ID)
	}
	gp, _ := sharded.CreatePost(likers[0], "p", WriteMeta{At: epoch})
	wp, _ := oracle.CreatePost(likers[0], "p", WriteMeta{At: epoch})
	if gp != wp {
		t.Fatalf("CreatePost = %+v, oracle %+v", gp, wp)
	}
	post := gp.ID

	now := epoch
	for round := 0; round < rounds; round++ {
		now = now.Add(time.Hour) // previous round's edges are out of window
		meta := WriteMeta{At: now}
		for _, id := range likers {
			gerr := sharded.AddLike(id, post, meta)
			werr := oracle.AddLike(id, post, meta)
			if !sameErr(gerr, werr) {
				t.Fatalf("round %d: AddLike(%s) = %v, oracle %v", round, id, gerr, werr)
			}
		}
		compareLikeCrawl(t, sharded, oracle, post)

		// Take a cursor mid-history, then churn: remove every third liker,
		// sweep everything older than the window out, and check the cursor
		// still resumes at the same surviving edge on both stores.
		gPage, gCur, gMore := sharded.LikesPage(post, 0, edgeChunkCap+3)
		wPage, wCur, wMore := oracle.LikesPage(post, 0, edgeChunkCap+3)
		if len(gPage) != len(wPage) || gCur != wCur || gMore != wMore {
			t.Fatalf("round %d: pre-churn LikesPage: %d/%d/%v vs %d/%d/%v",
				round, len(gPage), gCur, gMore, len(wPage), wCur, wMore)
		}
		for i := 0; i < len(likers); i += 3 {
			gerr := sharded.RemoveLike(likers[i], post)
			werr := oracle.RemoveLike(likers[i], post)
			if !sameErr(gerr, werr) {
				t.Fatalf("round %d: RemoveLike(%s) = %v, oracle %v", round, likers[i], gerr, werr)
			}
		}
		if gMore {
			g2, _, _ := sharded.LikesPage(post, gCur, edgeChunkCap)
			w2, _, _ := oracle.LikesPage(post, wCur, edgeChunkCap)
			if len(g2) != len(w2) {
				t.Fatalf("round %d: post-remove continuation: %d vs %d likes", round, len(g2), len(w2))
			}
			for i := range g2 {
				if g2[i] != w2[i] {
					t.Fatalf("round %d: post-remove continuation[%d] = %+v, oracle %+v", round, i, g2[i], w2[i])
				}
			}
		}

		sweepAt := now.Add(window + time.Minute)
		gres := sharded.RetentionSweep(sweepAt)
		wres := oracle.RetentionSweep(sweepAt)
		if gres != wres {
			t.Fatalf("round %d: RetentionSweep = %+v, oracle %+v", round, gres, wres)
		}
		// Resurrection probe: every evicted edge must be gone from both
		// stores — counts, membership, and the (now empty) crawl.
		if g, w := sharded.LikeCount(post), oracle.LikeCount(post); g != 0 || g != w {
			t.Fatalf("round %d: post-sweep LikeCount = %d, oracle %d", round, g, w)
		}
		for _, id := range likers {
			if sharded.HasLiked(id, post) {
				t.Fatalf("round %d: evicted like (%s,%s) resurrected", round, id, post)
			}
		}
		compareLikeCrawl(t, sharded, oracle, post)
		// The sweep must actually have recycled: the post's shard holds the
		// released chunks on its free list, ready for the next round. This
		// pins the mechanism (not just the observable equivalence) so a
		// regression that silently drops chunks on the floor — correct but
		// allocating — fails here instead of only in the alloc gates.
		if round == 0 {
			sh := sharded.lockIdx(sharded.ShardIndexOf(post))
			free := len(sh.edges.free)
			sh.mu.Unlock()
			if free == 0 {
				t.Fatalf("round %d: sweep returned no edge chunks to the shard free list", round)
			}
		}
	}
}

// FuzzChunkReuse interleaves likes, removals, sweeps, and cursor crawls
// from a fuzzed byte stream, holding the sharded store and the oracle in
// lockstep the whole way. The population is small and the window short,
// so almost every input recycles chunks many times; any divergence —
// resurrected edge, wrong count, shifted cursor — trips immediately at
// the interleaving that caused it.
func FuzzChunkReuse(f *testing.F) {
	f.Add([]byte{0x00, 0x51, 0xa2, 0xf3, 0x44, 0x95, 0xe6, 0x37, 0x88, 0xd9})
	f.Add([]byte{0x04, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			nAccounts = 12
			nPosts    = 3
			window    = 30 * time.Minute
		)
		sharded := NewWithShards(4)
		oracle := newReferenceStore()
		sharded.SetRetentionWindow(window)
		oracle.SetRetentionWindow(window)
		epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

		var accounts, posts []string
		for i := 0; i < nAccounts; i++ {
			name := fmt.Sprintf("f%d", i)
			g := sharded.CreateAccount(name, "IN", epoch)
			oracle.CreateAccount(name, "IN", epoch)
			accounts = append(accounts, g.ID)
		}
		for i := 0; i < nPosts; i++ {
			g, _ := sharded.CreatePost(accounts[i], "p", WriteMeta{At: epoch})
			oracle.CreatePost(accounts[i], "p", WriteMeta{At: epoch})
			posts = append(posts, g.ID)
		}

		// cursor is one saved mid-crawl position per post, possibly taken
		// many mutations and sweeps ago — exactly the state a Graph API
		// crawler holds across server-side churn.
		type cursor struct {
			after int
			live  bool
		}
		cursors := make([]cursor, nPosts)
		now := epoch.Add(time.Hour)

		for _, b := range data {
			now = now.Add(time.Duration(1+int(b&0x0f)) * time.Minute)
			actor := accounts[int(b>>4)%nAccounts]
			pi := int(b>>2) % nPosts
			post := posts[pi]
			meta := WriteMeta{At: now}
			switch b % 6 {
			case 0, 1: // like
				gerr := sharded.AddLike(actor, post, meta)
				werr := oracle.AddLike(actor, post, meta)
				if !sameErr(gerr, werr) {
					t.Fatalf("AddLike(%s,%s) = %v, oracle %v", actor, post, gerr, werr)
				}
			case 2: // remove
				gerr := sharded.RemoveLike(actor, post)
				werr := oracle.RemoveLike(actor, post)
				if !sameErr(gerr, werr) {
					t.Fatalf("RemoveLike(%s,%s) = %v, oracle %v", actor, post, gerr, werr)
				}
			case 3: // sweep — recycles every out-of-window chunk
				gres := sharded.RetentionSweep(now)
				wres := oracle.RetentionSweep(now)
				if gres != wres {
					t.Fatalf("RetentionSweep = %+v, oracle %+v", gres, wres)
				}
				if g, w := sharded.RetainedEdges(), oracle.RetainedEdges(); g != w {
					t.Fatalf("RetainedEdges = %+v, oracle %+v", g, w)
				}
			case 4: // take (or resume) a cursor on this post
				c := cursors[pi]
				gp, gnext, gmore := sharded.LikesPage(post, c.after, 2)
				wp, wnext, wmore := oracle.LikesPage(post, c.after, 2)
				if len(gp) != len(wp) || gnext != wnext || gmore != wmore {
					t.Fatalf("LikesPage(%s, after=%d): %d/%d/%v vs %d/%d/%v",
						post, c.after, len(gp), gnext, gmore, len(wp), wnext, wmore)
				}
				for i := range gp {
					if gp[i] != wp[i] {
						t.Fatalf("LikesPage(%s, after=%d)[%d] = %+v, oracle %+v", post, c.after, i, gp[i], wp[i])
					}
				}
				if gmore {
					cursors[pi] = cursor{after: gnext, live: true}
				} else {
					cursors[pi] = cursor{}
				}
			case 5: // full-crawl spot check
				compareLikeCrawl(t, sharded, oracle, post)
				if g, w := sharded.HasLiked(actor, post), oracle.HasLiked(actor, post); g != w {
					t.Fatalf("HasLiked(%s,%s) = %v, oracle %v", actor, post, g, w)
				}
			}
		}
		for _, post := range posts {
			compareLikeCrawl(t, sharded, oracle, post)
		}
		for _, id := range accounts {
			compareActivities(t, id, sharded.ActivityLog(id), oracle.ActivityLog(id))
		}
	})
}
