package socialgraph

import (
	"fmt"
	"testing"
	"time"
)

func retEpoch() time.Time {
	return time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
}

// retWorld is a small fixed population for the retention tests.
type retWorld struct {
	s        *Store
	accounts []string
	posts    []string
}

func newRetWorld(t testing.TB, shards, accounts, posts int) *retWorld {
	t.Helper()
	w := &retWorld{s: NewWithShards(shards)}
	at := retEpoch()
	for i := 0; i < accounts; i++ {
		w.accounts = append(w.accounts, w.s.CreateAccount(fmt.Sprintf("u%d", i), "IN", at).ID)
	}
	for i := 0; i < posts; i++ {
		p, err := w.s.CreatePost(w.accounts[0], "p", WriteMeta{At: at})
		if err != nil {
			t.Fatal(err)
		}
		w.posts = append(w.posts, p.ID)
	}
	return w
}

func TestRetentionSweepEvictsOnlyOldEdges(t *testing.T) {
	w := newRetWorld(t, 8, 10, 2)
	w.s.SetRetentionWindow(time.Hour)
	epoch := retEpoch()
	// Likes at epoch, epoch+10m, ..., epoch+90m on post 0.
	for i := 0; i < 10; i++ {
		at := epoch.Add(time.Duration(i) * 10 * time.Minute)
		if err := w.s.AddLike(w.accounts[i], w.posts[0], WriteMeta{At: at}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.s.AddComment(w.accounts[1], w.posts[1], "old", WriteMeta{At: epoch}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.s.AddComment(w.accounts[2], w.posts[1], "new", WriteMeta{At: epoch.Add(90 * time.Minute)}); err != nil {
		t.Fatal(err)
	}

	// Sweep at epoch+100m, window 1h: cutoff epoch+40m. Likes at 0..30m
	// (4 of them) and the old comment go; everything else stays.
	now := epoch.Add(100 * time.Minute)
	res := w.s.RetentionSweep(now)
	if res.Likes != 4 || res.Comments != 1 {
		t.Fatalf("sweep = %+v, want 4 likes and 1 comment evicted", res)
	}
	if res.Activities == 0 {
		t.Fatalf("sweep = %+v, want activity entries evicted alongside", res)
	}
	if got := w.s.LikeCount(w.posts[0]); got != 6 {
		t.Fatalf("LikeCount = %d after sweep, want 6", got)
	}
	for i, id := range w.accounts {
		want := i >= 4
		if got := w.s.HasLiked(id, w.posts[0]); got != want {
			t.Fatalf("HasLiked(%s) = %v after sweep, want %v", id, got, want)
		}
	}
	// Nothing but edge history may go: accounts, pages, posts all stay.
	if got := w.s.AccountCount(); got != 10 {
		t.Fatalf("AccountCount = %d after sweep, want 10", got)
	}
	for _, p := range w.posts {
		if _, err := w.s.Post(p); err != nil {
			t.Fatalf("Post(%s) after sweep: %v", p, err)
		}
	}
	// An evicted like is re-likeable (the edge is gone, not tombstoned).
	if err := w.s.AddLike(w.accounts[0], w.posts[0], WriteMeta{At: now}); err != nil {
		t.Fatalf("re-like after eviction: %v", err)
	}
	// Counters accumulated.
	snap := w.s.Retention().Snapshot()
	if snap.Sweeps != 1 || snap.Likes != 4 || snap.Comments != 1 {
		t.Fatalf("retention counters = %+v", snap)
	}
}

func TestRetentionInfiniteWindowIsNoop(t *testing.T) {
	w := newRetWorld(t, 4, 5, 1)
	epoch := retEpoch()
	for i := 0; i < 5; i++ {
		if err := w.s.AddLike(w.accounts[i], w.posts[0], WriteMeta{At: epoch}); err != nil {
			t.Fatal(err)
		}
	}
	if res := w.s.RetentionSweep(epoch.AddDate(10, 0, 0)); res.Total() != 0 {
		t.Fatalf("infinite-window sweep evicted %+v", res)
	}
	if got := w.s.Retention().Snapshot().Sweeps; got != 0 {
		t.Fatalf("no-op sweep counted: %d", got)
	}
	if got := w.s.LikeCount(w.posts[0]); got != 5 {
		t.Fatalf("LikeCount = %d", got)
	}
}

func TestRetentionCursorStableAcrossSweep(t *testing.T) {
	w := newRetWorld(t, 8, 10, 1)
	w.s.SetRetentionWindow(time.Hour)
	epoch := retEpoch()
	for i := 0; i < 10; i++ {
		at := epoch.Add(time.Duration(i) * 10 * time.Minute)
		if err := w.s.AddLike(w.accounts[i], w.posts[0], WriteMeta{At: at}); err != nil {
			t.Fatal(err)
		}
	}
	// Crawl the first page, then evict likes 0..5 (cutoff epoch+60m via a
	// sweep at epoch+120m) mid-crawl.
	page1, cur, more := w.s.LikesPage(w.posts[0], 0, 3)
	if len(page1) != 3 || !more {
		t.Fatalf("page1 = %d likes, more=%v", len(page1), more)
	}
	w.s.RetentionSweep(epoch.Add(120 * time.Minute))
	// Continuing from the pre-sweep cursor must return exactly the
	// surviving likes past it — no duplicates of page1, no skips.
	var rest []Like
	for more {
		var page []Like
		page, cur, more = w.s.LikesPage(w.posts[0], cur, 3)
		rest = append(rest, page...)
	}
	if len(rest) != 4 { // likes 6..9 survive (3..5 evicted, 0..2 were page1)
		t.Fatalf("continuation = %d likes, want 4", len(rest))
	}
	for i, l := range rest {
		if want := w.accounts[6+i]; l.AccountID != want {
			t.Fatalf("continuation[%d] = %s, want %s", i, l.AccountID, want)
		}
	}
}

func TestRetentionSeqSurvivesFullEviction(t *testing.T) {
	w := newRetWorld(t, 4, 3, 1)
	w.s.SetRetentionWindow(time.Minute)
	epoch := retEpoch()
	for i := 0; i < 3; i++ {
		if err := w.s.AddLike(w.accounts[i], w.posts[0], WriteMeta{At: epoch}); err != nil {
			t.Fatal(err)
		}
	}
	// Crawl one page, then evict the post's entire like history.
	_, cur, _ := w.s.LikesPage(w.posts[0], 0, 2)
	w.s.RetentionSweep(epoch.Add(time.Hour))
	if got := w.s.LikeCount(w.posts[0]); got != 0 {
		t.Fatalf("LikeCount = %d after full eviction", got)
	}
	// New likes get sequences past the evicted ones, so the stale cursor
	// sees them (they are genuinely after the cursor's position) and a
	// fresh crawl sees exactly the new history.
	if err := w.s.AddLike(w.accounts[0], w.posts[0], WriteMeta{At: epoch.Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	page, _, more := w.s.LikesPage(w.posts[0], cur, 10)
	if len(page) != 1 || more {
		t.Fatalf("stale-cursor page = %d likes, more=%v", len(page), more)
	}
	if page[0].AccountID != w.accounts[0] {
		t.Fatalf("stale-cursor page = %+v", page[0])
	}
}

// FuzzRetentionBoundary interleaves likes, comments, like removals, and
// retention sweeps from fuzz input, checking after every sweep that
//
//   - no account, page, or post is ever deleted;
//   - exactly the out-of-window edges are evicted (a shadow model with a
//     latest-timestamp map predicts both retained and evicted sets);
//   - pagination cursors taken before a sweep remain stable across it:
//     the continuation returns exactly the surviving likes past the
//     cursor, in order.
func FuzzRetentionBoundary(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0xc4, 0x05, 0x46, 0x87, 0xc8})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef, 0x13, 0x37, 0xde, 0xad})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			nAccounts = 8
			nPosts    = 4
			window    = 30 * time.Minute
		)
		w := newRetWorld(t, 4, nAccounts, nPosts)
		w.s.SetRetentionWindow(window)

		type likeKey struct{ actor, obj string }
		liked := make(map[likeKey]time.Time) // present likes, latest timestamp
		var commentTimes []time.Time         // comments are never duplicates
		now := retEpoch().Add(time.Hour)     // clear of the setup writes
		lastCutoff := time.Time{}

		for _, b := range data {
			now = now.Add(time.Duration(1+int(b&0x0f)) * time.Minute)
			actor := w.accounts[int(b>>4)%nAccounts]
			post := w.posts[int(b>>2)%nPosts]
			switch b % 5 {
			case 0, 1: // like
				k := likeKey{actor, post}
				err := w.s.AddLike(actor, post, WriteMeta{At: now})
				if _, present := liked[k]; present {
					if err == nil {
						t.Fatalf("duplicate like (%s,%s) succeeded", actor, post)
					}
				} else {
					if err != nil {
						t.Fatalf("like (%s,%s): %v", actor, post, err)
					}
					liked[k] = now
				}
			case 2: // comment
				if _, err := w.s.AddComment(actor, post, "c", WriteMeta{At: now}); err != nil {
					t.Fatal(err)
				}
				commentTimes = append(commentTimes, now)
			case 3: // remove a like
				k := likeKey{actor, post}
				err := w.s.RemoveLike(actor, post)
				if _, present := liked[k]; present != (err == nil) {
					t.Fatalf("RemoveLike(%s,%s) = %v, model present=%v", actor, post, err, present)
				}
				delete(liked, k)
			case 4: // sweep, with a mid-crawl cursor across it
				cutoff := now.Add(-window)
				full := w.s.Likes(post)
				page1, cur, more := w.s.LikesPage(post, 0, 2)
				w.s.RetentionSweep(now)
				lastCutoff = cutoff

				// Cursor stability: continuation = surviving remainder.
				if more {
					var rest []Like
					m := true
					c := cur
					for m {
						var page []Like
						page, c, m = w.s.LikesPage(post, c, 3)
						rest = append(rest, page...)
					}
					var want []Like
					for _, l := range full[len(page1):] {
						if !l.At.Before(cutoff) {
							want = append(want, l)
						}
					}
					if len(rest) != len(want) {
						t.Fatalf("continuation = %d likes, want %d surviving", len(rest), len(want))
					}
					for i := range rest {
						if rest[i] != want[i] {
							t.Fatalf("continuation[%d] = %+v, want %+v", i, rest[i], want[i])
						}
					}
				}

				// Shadow model: exactly the in-window edges survive.
				expectLikes := int64(0)
				for k, at := range liked {
					if at.Before(cutoff) {
						delete(liked, k)
						if w.s.HasLiked(k.actor, k.obj) {
							t.Fatalf("out-of-window like (%s,%s) at %v survived cutoff %v", k.actor, k.obj, at, cutoff)
						}
						continue
					}
					expectLikes++
					if !w.s.HasLiked(k.actor, k.obj) {
						t.Fatalf("in-window like (%s,%s) at %v evicted, cutoff %v", k.actor, k.obj, at, cutoff)
					}
				}
				expectComments := int64(0)
				kept := commentTimes[:0]
				for _, at := range commentTimes {
					if !at.Before(cutoff) {
						expectComments++
						kept = append(kept, at)
					}
				}
				commentTimes = kept
				got := w.s.RetainedEdges()
				if got.Likes != expectLikes || got.Comments != expectComments {
					t.Fatalf("RetainedEdges = %+v, model wants %d likes / %d comments", got, expectLikes, expectComments)
				}

				// The no-deletion invariant, every sweep.
				if n := w.s.AccountCount(); n != nAccounts {
					t.Fatalf("AccountCount = %d after sweep, want %d", n, nAccounts)
				}
				for _, p := range w.posts {
					if _, err := w.s.Post(p); err != nil {
						t.Fatalf("Post(%s) after sweep: %v", p, err)
					}
				}
			}
		}
		_ = lastCutoff
	})
}
