package socialgraph

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestAddFriendshipSymmetric(t *testing.T) {
	s := New()
	a := s.CreateAccount("a", "IN", t0)
	b := s.CreateAccount("b", "IN", t0)
	if err := s.AddFriendship(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if !s.AreFriends(a.ID, b.ID) || !s.AreFriends(b.ID, a.ID) {
		t.Fatal("friendship not symmetric")
	}
	if got := s.Friends(a.ID); len(got) != 1 || got[0] != b.ID {
		t.Fatalf("Friends(a) = %v", got)
	}
	if s.FriendCount(b.ID) != 1 {
		t.Fatalf("FriendCount(b) = %d", s.FriendCount(b.ID))
	}
}

func TestAddFriendshipValidation(t *testing.T) {
	s := New()
	a := s.CreateAccount("a", "IN", t0)
	b := s.CreateAccount("b", "IN", t0)
	if err := s.AddFriendship(a.ID, a.ID); !errors.Is(err, ErrInvalidReference) {
		t.Fatalf("self edge err = %v", err)
	}
	if err := s.AddFriendship(a.ID, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing account err = %v", err)
	}
	if err := s.AddFriendship("ghost", b.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing account err = %v", err)
	}
	if err := s.AddFriendship(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFriendship(b.ID, a.ID); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestFriendsOfStranger(t *testing.T) {
	s := New()
	if got := s.Friends("nobody"); len(got) != 0 {
		t.Fatalf("Friends(nobody) = %v", got)
	}
	if s.AreFriends("x", "y") {
		t.Fatal("AreFriends on empty store")
	}
}

// Property: after any sequence of edge insertions, every adjacency is
// symmetric and degree sums are even.
func TestQuickFriendshipSymmetry(t *testing.T) {
	f := func(pairs []uint8) bool {
		s := New()
		ids := make([]string, 12)
		for i := range ids {
			ids[i] = s.CreateAccount(fmt.Sprintf("u%d", i), "IN", t0).ID
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			a := ids[int(pairs[i])%len(ids)]
			b := ids[int(pairs[i+1])%len(ids)]
			_ = s.AddFriendship(a, b) // dup/self errors are fine
		}
		degreeSum := 0
		for _, id := range ids {
			for _, fr := range s.Friends(id) {
				if !s.AreFriends(fr, id) {
					return false
				}
			}
			degreeSum += s.FriendCount(id)
		}
		return degreeSum%2 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
