package socialgraph

// Race-coverage stress tests: many goroutines hammer every operation
// class of the sharded store at once. Run under `go test -race`; the CI
// workflow enforces it. Assertions are deliberately about invariants that
// hold under any interleaving (idempotent like counts, symmetric
// friendship edges, conserved totals), not about specific orders.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStressMixedOpsParallel(t *testing.T) {
	workers := 8
	perWorker := 300
	if testing.Short() {
		perWorker = 100
	}
	s := NewWithShards(8) // fewer stripes than workers to force contention
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

	// Shared targets: every worker likes/comments on the same posts and
	// pages so cross-shard write paths collide constantly.
	owner := s.CreateAccount("owner", "IN", epoch)
	page, err := s.CreatePage(owner.ID, "page", epoch)
	if err != nil {
		t.Fatal(err)
	}
	posts := make([]string, 4)
	for i := range posts {
		p, err := s.CreatePost(owner.ID, fmt.Sprintf("p%d", i), WriteMeta{At: epoch})
		if err != nil {
			t.Fatal(err)
		}
		posts[i] = p.ID
	}
	actors := make([]string, workers)
	for i := range actors {
		actors[i] = s.CreateAccount(fmt.Sprintf("w%d", i), "IN", epoch).ID
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := actors[w]
			for i := 0; i < perWorker; i++ {
				at := epoch.Add(time.Duration(i) * time.Second)
				meta := WriteMeta{AppID: "app", SourceIP: "203.0.113.1", At: at}
				switch i % 7 {
				case 0:
					s.CreateAccount(fmt.Sprintf("w%d-extra%d", w, i), "IN", at)
				case 1:
					post := posts[i%len(posts)]
					if err := s.AddLike(me, post, meta); err != nil && !errors.Is(err, ErrAlreadyLiked) {
						t.Errorf("AddLike: %v", err)
					}
				case 2:
					_ = s.RemoveLike(me, posts[i%len(posts)])
				case 3:
					if _, err := s.AddComment(me, posts[i%len(posts)], "c", meta); err != nil {
						t.Errorf("AddComment: %v", err)
					}
				case 4:
					if _, err := s.CreatePost(me, "mine", meta); err != nil {
						t.Errorf("CreatePost: %v", err)
					}
				case 5:
					if err := s.AddLike(me, page.ID, meta); err != nil && !errors.Is(err, ErrAlreadyLiked) {
						t.Errorf("AddLike(page): %v", err)
					}
					_ = s.RemoveLike(me, page.ID)
				default:
					s.Likes(posts[i%len(posts)])
					s.ActivityLog(me)
					s.Stats()
					s.PostsByAuthor(owner.ID)
				}
			}
		}(w)
	}
	wg.Wait()

	// Conservation: every comment made it; like sets contain only actors.
	st := s.Stats()
	wantComments := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if i%7 == 3 {
				wantComments++
			}
		}
	}
	if st.Comments != wantComments {
		t.Fatalf("Stats.Comments = %d, want %d", st.Comments, wantComments)
	}
	for _, post := range posts {
		if n := s.LikeCount(post); n > workers {
			t.Fatalf("LikeCount(%s) = %d > %d workers despite idempotence", post, n, workers)
		}
		for _, l := range s.Likes(post) {
			if _, err := s.Account(l.AccountID); err != nil {
				t.Fatalf("like by unknown account %s", l.AccountID)
			}
		}
	}
	acq, _ := s.Contention().Totals()
	if acq == 0 {
		t.Fatal("contention tracker recorded no lock acquisitions")
	}
}

func TestStressFriendshipSymmetry(t *testing.T) {
	const n = 40
	s := NewWithShards(4)
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	accts := make([]string, n)
	for i := range accts {
		accts[i] = s.CreateAccount(fmt.Sprintf("f%d", i), "IN", epoch).ID
	}
	var wg sync.WaitGroup
	// Every unordered pair is attempted from both directions concurrently;
	// the ordered dual-shard locking must keep edges symmetric and reject
	// exactly the duplicates.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			wg.Add(1)
			go func(a, b string) {
				defer wg.Done()
				if err := s.AddFriendship(a, b); err != nil && !errors.Is(err, ErrAlreadyLiked) {
					t.Errorf("AddFriendship: %v", err)
				}
			}(accts[i], accts[j])
		}
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got := s.FriendCount(accts[i]); got != n-1 {
			t.Fatalf("FriendCount(%s) = %d, want %d", accts[i], got, n-1)
		}
		for j := 0; j < n; j++ {
			if i != j && !s.AreFriends(accts[i], accts[j]) {
				t.Fatalf("edge %d-%d missing", i, j)
			}
		}
	}
}

func TestStressSuspendedWritersSettle(t *testing.T) {
	s := New()
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)
	author := s.CreateAccount("author", "IN", epoch)
	post, err := s.CreatePost(author.ID, "p", WriteMeta{At: epoch})
	if err != nil {
		t.Fatal(err)
	}
	actor := s.CreateAccount("actor", "IN", epoch)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = s.SetSuspended(actor.ID, i%2 == 0)
			_ = s.AddLike(actor.ID, post.ID, WriteMeta{At: epoch})
			_ = s.RemoveLike(actor.ID, post.ID)
		}(i)
	}
	wg.Wait()
	// Once settled, a reinstated account must be able to write again and
	// the store must be internally consistent.
	if err := s.SetSuspended(actor.ID, false); err != nil {
		t.Fatal(err)
	}
	_ = s.RemoveLike(actor.ID, post.ID)
	if err := s.AddLike(actor.ID, post.ID, WriteMeta{At: epoch}); err != nil {
		t.Fatalf("like after settle: %v", err)
	}
	if !s.HasLiked(actor.ID, post.ID) {
		t.Fatal("HasLiked = false after successful AddLike")
	}
}
