package socialgraph

import (
	"runtime"
	"sync"
)

// Shard layout. Every object class is routed to a stripe by the FNV-1a
// hash of its primary key:
//
//   - accounts, activity logs, per-author post lists, and friend
//     adjacency sets live in the shard of the account ID;
//   - pages live in the shard of the page ID;
//   - posts live in the shard of the post ID;
//   - likes (set + arrival order) live in the shard of the liked object;
//   - comments (records + per-post order) live in the shard of the
//     commented post, so a crawl of a post's comments is one stripe.
//
// Writes that span stripes (a like touches the liker's account shard and
// the object's shard; a friendship touches both endpoints) take every
// involved stripe write-lock in ascending shard-index order, which makes
// the locking deadlock-free by construction. Reads that span all stripes
// (Stats, AccountIDs) compose per-shard snapshots and are not a global
// atomic view — identical to the reference store when driven
// sequentially, and monotonically consistent under concurrency because
// no object is ever deleted.

// edgeRef is one entry of a per-object edge-order list: the edge's key
// (liker account ID, or comment ID) plus its absolute arrival sequence on
// that object. Sequence numbers are assigned from an ever-increasing
// per-object counter and never reused, so a pagination cursor anchored to
// a sequence stays a stable position even after a retention sweep evicts
// edges around it or RemoveLike deletes one outright.
type edgeRef struct {
	seq int
	id  string
}

// likeHistory is one object's like state: the idempotency set and the
// chunked arrival order, kept together so the hot write path pays one
// map probe instead of two. Evicting an object's last like retires the
// whole history to the shard's free list with its (cleared) set map, so
// re-liking a swept object allocates neither.
type likeHistory struct {
	set   map[string]Like
	order edgeList
}

// shard is one lock stripe of the store. Observable semantics match the
// reference store's flat maps exactly; each shard holds only the keys
// that hash to it. Edge history (like order, comment order, activity
// logs) lives in chunked lists drawn from the shard-local pools below —
// see chunk.go for the memory model.
type shard struct {
	mu            sync.RWMutex
	accounts      map[string]*Account
	pages         map[string]*Page
	posts         map[string]*Post
	comments      map[string]*Comment
	likes         map[string]*likeHistory
	postsByAuthor map[string][]string
	commentOrder  map[string]*edgeList
	activity      map[string]*activityList
	friends       map[string]map[string]bool
	// likeSeq and commentSeq hold each object's next arrival sequence.
	// They outlive the edges themselves (an object whose whole history
	// ages out keeps its counter) so sequences stay monotone forever.
	likeSeq    map[string]int
	commentSeq map[string]int

	// Shard-local free lists, touched only under mu. edges feeds both
	// like-order and comment-order lists (same entry class); retired
	// container headers are pooled alongside so a fully evicted object,
	// post, or account costs nothing to repopulate.
	edges        edgePool
	acts         activityPool
	freeHist     []*likeHistory
	freeEdgeList []*edgeList
	freeActList  []*activityList
	freeComments []*Comment
}

func newShard() *shard { return newShardSized(0) }

// newShardSized presizes the maps that grow with the account population;
// hint is the expected number of accounts routed to this shard (0 = no
// presizing). Bulk construction of multi-million-account graphs avoids
// repeated incremental map growth this way.
func newShardSized(hint int) *shard {
	return &shard{
		accounts:      make(map[string]*Account, hint),
		pages:         make(map[string]*Page),
		posts:         make(map[string]*Post),
		comments:      make(map[string]*Comment),
		likes:         make(map[string]*likeHistory),
		postsByAuthor: make(map[string][]string),
		commentOrder:  make(map[string]*edgeList),
		activity:      make(map[string]*activityList),
		friends:       make(map[string]map[string]bool),
		likeSeq:       make(map[string]int),
		commentSeq:    make(map[string]int),
		edges:         edgePool{cap: edgeChunkCap},
		acts:          activityPool{cap: activityChunkCap},
	}
}

// Pooled-container helpers. Each returns (or retires) a chunked-history
// container through the shard's free lists; all of them touch shard
// state and require the shard's write lock — the same caller-holds-lock
// contract likeLocked documents.

// likeHistoryFor returns objectID's like history, reusing a retired one
// (its set map arrives cleared) before allocating.
//
//collusionvet:locked
func (sh *shard) likeHistoryFor(objectID string) *likeHistory {
	if h, ok := sh.likes[objectID]; ok {
		return h
	}
	var h *likeHistory
	if n := len(sh.freeHist); n > 0 {
		h = sh.freeHist[n-1]
		sh.freeHist[n-1] = nil
		sh.freeHist = sh.freeHist[:n-1]
	} else {
		h = &likeHistory{set: make(map[string]Like)}
	}
	sh.likes[objectID] = h
	return h
}

// retireLikeHistory returns an emptied history (no retained likes) to
// the free list, clearing its set so pooled histories never pin evicted
// likes.
//
//collusionvet:locked
func (sh *shard) retireLikeHistory(objectID string, h *likeHistory) {
	clear(h.set)
	h.order.release(&sh.edges)
	sh.freeHist = append(sh.freeHist, h)
	delete(sh.likes, objectID)
}

// commentOrderFor returns postID's comment-order list, pooling headers
// like likeHistoryFor.
//
//collusionvet:locked
func (sh *shard) commentOrderFor(postID string) *edgeList {
	if l, ok := sh.commentOrder[postID]; ok {
		return l
	}
	var l *edgeList
	if n := len(sh.freeEdgeList); n > 0 {
		l = sh.freeEdgeList[n-1]
		sh.freeEdgeList[n-1] = nil
		sh.freeEdgeList = sh.freeEdgeList[:n-1]
	} else {
		l = new(edgeList)
	}
	sh.commentOrder[postID] = l
	return l
}

// activityFor returns accountID's activity list, pooling headers.
//
//collusionvet:locked
func (sh *shard) activityFor(accountID string) *activityList {
	if l, ok := sh.activity[accountID]; ok {
		return l
	}
	var l *activityList
	if n := len(sh.freeActList); n > 0 {
		l = sh.freeActList[n-1]
		sh.freeActList[n-1] = nil
		sh.freeActList = sh.freeActList[:n-1]
	} else {
		l = new(activityList)
	}
	sh.activity[accountID] = l
	return l
}

// newComment returns a zeroed Comment record, reusing one retired by a
// retention sweep when available.
//
//collusionvet:locked
func (sh *shard) newComment() *Comment {
	if n := len(sh.freeComments); n > 0 {
		c := sh.freeComments[n-1]
		sh.freeComments[n-1] = nil
		sh.freeComments = sh.freeComments[:n-1]
		return c
	}
	return new(Comment)
}

// retireComment clears an evicted comment record and pools it. Records
// are only ever handed out of the store by value, so no caller can hold
// a pointer into the pool.
//
//collusionvet:locked
func (sh *shard) retireComment(c *Comment) {
	*c = Comment{}
	sh.freeComments = append(sh.freeComments, c)
}

// FNV-1a, inlined to keep routing allocation-free on the hot path.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv32a(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return h
}

// Shard-count bounds. The default scales with GOMAXPROCS (4 stripes per
// P keeps the contended fraction low even when every P hammers the same
// few objects) and is clamped to a power of two so routing is a mask.
const (
	minShards = 1
	maxShards = 1024
)

// defaultShardCount returns the GOMAXPROCS-scaled power-of-two stripe
// count used by New.
func defaultShardCount() int {
	n := nextPowerOfTwo(4 * runtime.GOMAXPROCS(0))
	if n < 8 {
		n = 8
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

func nextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// shardIndex routes an ID to a stripe.
func (s *Store) shardIndex(id string) int {
	return int(fnv32a(id) & s.mask)
}

// ShardIndexOf exposes the stripe an ID routes to, so instrumentation can
// label spans and metrics with the shard a write landed on without
// duplicating the routing hash.
func (s *Store) ShardIndexOf(id string) int {
	return s.shardIndex(id)
}

// shardFor returns the stripe owning id.
func (s *Store) shardFor(id string) *shard {
	return s.shards[s.shardIndex(id)]
}

// rlockIdx read-locks stripe i, recording lock pressure.
//
//collusionvet:lockorder
func (s *Store) rlockIdx(i int) *shard {
	sh := s.shards[i]
	if sh.mu.TryRLock() {
		s.contention.Record(i, false)
	} else {
		s.contention.Record(i, true)
		sh.mu.RLock()
	}
	return sh
}

// lockIdx write-locks stripe i, recording lock pressure.
//
//collusionvet:lockorder
func (s *Store) lockIdx(i int) *shard {
	sh := s.shards[i]
	if sh.mu.TryLock() {
		s.contention.Record(i, false)
	} else {
		s.contention.Record(i, true)
		sh.mu.Lock()
	}
	return sh
}

// rlock read-locks the stripe owning id.
func (s *Store) rlock(id string) *shard {
	return s.rlockIdx(s.shardIndex(id))
}

// lock write-locks the stripe owning id.
func (s *Store) lock(id string) *shard {
	return s.lockIdx(s.shardIndex(id))
}

// The batch-apply generalisation of lockOrdered lives in batch.go
// (applyLikeRun): it sorts and deduplicates the stripe set in place and
// holds the whole scope inline instead of returning an unlock closure,
// because the closure (and the heap escape it forces) was measurable on
// the batched like path. The ascending rule is identical, so batch
// scopes and single-write scopes compose deadlock-free.

// lockOrdered write-locks the stripes owning the given IDs in ascending
// shard-index order (duplicates collapse) and returns an unlock function
// releasing them in reverse order. Ascending acquisition across every
// multi-stripe write is the store's one lock-ordering rule, and it makes
// cross-shard operations (likes, comments, friendship edges) atomic
// without a global lock.
//
//collusionvet:lockorder
func (s *Store) lockOrdered(ids ...string) func() {
	var idx [3]int
	n := 0
	for _, id := range ids {
		i := s.shardIndex(id)
		dup := false
		for _, seen := range idx[:n] {
			if seen == i {
				dup = true
				break
			}
		}
		if !dup {
			idx[n] = i
			n++
		}
	}
	order := idx[:n]
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, i := range order {
		s.lockIdx(i)
	}
	return func() {
		for i := len(order) - 1; i >= 0; i-- {
			s.shards[order[i]].mu.Unlock()
		}
	}
}
