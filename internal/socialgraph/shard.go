package socialgraph

import (
	"runtime"
	"sort"
	"sync"
)

// Shard layout. Every object class is routed to a stripe by the FNV-1a
// hash of its primary key:
//
//   - accounts, activity logs, per-author post lists, and friend
//     adjacency sets live in the shard of the account ID;
//   - pages live in the shard of the page ID;
//   - posts live in the shard of the post ID;
//   - likes (set + arrival order) live in the shard of the liked object;
//   - comments (records + per-post order) live in the shard of the
//     commented post, so a crawl of a post's comments is one stripe.
//
// Writes that span stripes (a like touches the liker's account shard and
// the object's shard; a friendship touches both endpoints) take every
// involved stripe write-lock in ascending shard-index order, which makes
// the locking deadlock-free by construction. Reads that span all stripes
// (Stats, AccountIDs) compose per-shard snapshots and are not a global
// atomic view — identical to the reference store when driven
// sequentially, and monotonically consistent under concurrency because
// no object is ever deleted.

// edgeRef is one entry of a per-object edge-order list: the edge's key
// (liker account ID, or comment ID) plus its absolute arrival sequence on
// that object. Sequence numbers are assigned from an ever-increasing
// per-object counter and never reused, so a pagination cursor anchored to
// a sequence stays a stable position even after a retention sweep evicts
// edges around it or RemoveLike deletes one outright.
type edgeRef struct {
	seq int
	id  string
}

// shard is one lock stripe of the store. Field meanings match the
// reference store's maps exactly; each shard holds only the keys that
// hash to it.
type shard struct {
	mu             sync.RWMutex
	accounts       map[string]*Account
	pages          map[string]*Page
	posts          map[string]*Post
	comments       map[string]*Comment
	likesByObject  map[string]map[string]Like
	likeOrder      map[string][]edgeRef
	postsByAuthor  map[string][]string
	commentsByPost map[string][]edgeRef
	activity       map[string][]Activity
	friends        map[string]map[string]bool
	// likeSeq and commentSeq hold each object's next arrival sequence.
	// They outlive the edges themselves (an object whose whole history
	// ages out keeps its counter) so sequences stay monotone forever.
	likeSeq    map[string]int
	commentSeq map[string]int
}

func newShard() *shard { return newShardSized(0) }

// newShardSized presizes the maps that grow with the account population;
// hint is the expected number of accounts routed to this shard (0 = no
// presizing). Bulk construction of multi-million-account graphs avoids
// repeated incremental map growth this way.
func newShardSized(hint int) *shard {
	return &shard{
		accounts:       make(map[string]*Account, hint),
		pages:          make(map[string]*Page),
		posts:          make(map[string]*Post),
		comments:       make(map[string]*Comment),
		likesByObject:  make(map[string]map[string]Like),
		likeOrder:      make(map[string][]edgeRef),
		postsByAuthor:  make(map[string][]string),
		commentsByPost: make(map[string][]edgeRef),
		activity:       make(map[string][]Activity),
		friends:        make(map[string]map[string]bool),
		likeSeq:        make(map[string]int),
		commentSeq:     make(map[string]int),
	}
}

// FNV-1a, inlined to keep routing allocation-free on the hot path.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv32a(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return h
}

// Shard-count bounds. The default scales with GOMAXPROCS (4 stripes per
// P keeps the contended fraction low even when every P hammers the same
// few objects) and is clamped to a power of two so routing is a mask.
const (
	minShards = 1
	maxShards = 1024
)

// defaultShardCount returns the GOMAXPROCS-scaled power-of-two stripe
// count used by New.
func defaultShardCount() int {
	n := nextPowerOfTwo(4 * runtime.GOMAXPROCS(0))
	if n < 8 {
		n = 8
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

func nextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// shardIndex routes an ID to a stripe.
func (s *Store) shardIndex(id string) int {
	return int(fnv32a(id) & s.mask)
}

// ShardIndexOf exposes the stripe an ID routes to, so instrumentation can
// label spans and metrics with the shard a write landed on without
// duplicating the routing hash.
func (s *Store) ShardIndexOf(id string) int {
	return s.shardIndex(id)
}

// shardFor returns the stripe owning id.
func (s *Store) shardFor(id string) *shard {
	return s.shards[s.shardIndex(id)]
}

// rlockIdx read-locks stripe i, recording lock pressure.
//
//collusionvet:lockorder
func (s *Store) rlockIdx(i int) *shard {
	sh := s.shards[i]
	if sh.mu.TryRLock() {
		s.contention.Record(i, false)
	} else {
		s.contention.Record(i, true)
		sh.mu.RLock()
	}
	return sh
}

// lockIdx write-locks stripe i, recording lock pressure.
//
//collusionvet:lockorder
func (s *Store) lockIdx(i int) *shard {
	sh := s.shards[i]
	if sh.mu.TryLock() {
		s.contention.Record(i, false)
	} else {
		s.contention.Record(i, true)
		sh.mu.Lock()
	}
	return sh
}

// rlock read-locks the stripe owning id.
func (s *Store) rlock(id string) *shard {
	return s.rlockIdx(s.shardIndex(id))
}

// lock write-locks the stripe owning id.
func (s *Store) lock(id string) *shard {
	return s.lockIdx(s.shardIndex(id))
}

// lockOrderedIdx write-locks the given stripe indexes in ascending order
// and returns an unlock function releasing them in reverse order. It is
// the batch-apply generalisation of lockOrdered: a batched write names an
// arbitrary number of stripes (one object stripe plus every liker's
// account stripe), so the index slice is sorted and deduplicated in place
// before acquisition. The ascending rule is identical to lockOrdered's,
// so batch scopes and single-write scopes compose deadlock-free.
//
//collusionvet:lockorder
func (s *Store) lockOrderedIdx(idxs []int) func() {
	sort.Ints(idxs)
	n := 0
	for _, v := range idxs {
		if n == 0 || v != idxs[n-1] {
			idxs[n] = v
			n++
		}
	}
	order := idxs[:n]
	for _, i := range order {
		s.lockIdx(i)
	}
	return func() {
		for i := len(order) - 1; i >= 0; i-- {
			s.shards[order[i]].mu.Unlock()
		}
	}
}

// lockOrdered write-locks the stripes owning the given IDs in ascending
// shard-index order (duplicates collapse) and returns an unlock function
// releasing them in reverse order. Ascending acquisition across every
// multi-stripe write is the store's one lock-ordering rule, and it makes
// cross-shard operations (likes, comments, friendship edges) atomic
// without a global lock.
//
//collusionvet:lockorder
func (s *Store) lockOrdered(ids ...string) func() {
	var idx [3]int
	n := 0
	for _, id := range ids {
		i := s.shardIndex(id)
		dup := false
		for _, seen := range idx[:n] {
			if seen == i {
				dup = true
				break
			}
		}
		if !dup {
			idx[n] = i
			n++
		}
	}
	order := idx[:n]
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, i := range order {
		s.lockIdx(i)
	}
	return func() {
		for i := len(order) - 1; i >= 0; i-- {
			s.shards[order[i]].mu.Unlock()
		}
	}
}
