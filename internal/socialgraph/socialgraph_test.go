package socialgraph

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

func meta(app, ip string, at time.Time) WriteMeta {
	return WriteMeta{AppID: app, SourceIP: ip, At: at}
}

func TestCreateAndGetAccount(t *testing.T) {
	s := New()
	a := s.CreateAccount("alice", "IN", t0)
	got, err := s.Account(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "alice" || got.Country != "IN" || !got.CreatedAt.Equal(t0) {
		t.Fatalf("Account = %+v", got)
	}
	if _, err := s.Account("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing account error = %v, want ErrNotFound", err)
	}
}

func TestCreatePostAndFetch(t *testing.T) {
	s := New()
	a := s.CreateAccount("alice", "IN", t0)
	p, err := s.CreatePost(a.ID, "hello world", meta("", "", t0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Post(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Message != "hello world" || got.AuthorID != a.ID {
		t.Fatalf("Post = %+v", got)
	}
	posts := s.PostsByAuthor(a.ID)
	if len(posts) != 1 || posts[0].ID != p.ID {
		t.Fatalf("PostsByAuthor = %+v", posts)
	}
}

func TestCreatePostValidation(t *testing.T) {
	s := New()
	a := s.CreateAccount("alice", "IN", t0)
	if _, err := s.CreatePost(a.ID, "", meta("", "", t0)); !errors.Is(err, ErrEmptyMessage) {
		t.Fatalf("empty message error = %v", err)
	}
	if _, err := s.CreatePost("ghost", "hi", meta("", "", t0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown author error = %v", err)
	}
}

func TestLikeIdempotence(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	bob := s.CreateAccount("bob", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	if err := s.AddLike(bob.ID, p.ID, meta("app1", "1.2.3.4", t0)); err != nil {
		t.Fatal(err)
	}
	err := s.AddLike(bob.ID, p.ID, meta("app1", "1.2.3.4", t0.Add(time.Minute)))
	if !errors.Is(err, ErrAlreadyLiked) {
		t.Fatalf("second like error = %v, want ErrAlreadyLiked", err)
	}
	if got := s.LikeCount(p.ID); got != 1 {
		t.Fatalf("LikeCount = %d, want 1", got)
	}
	if !s.HasLiked(bob.ID, p.ID) {
		t.Fatal("HasLiked = false")
	}
}

func TestLikeAttribution(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	bob := s.CreateAccount("bob", "EG", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	at := t0.Add(5 * time.Minute)
	if err := s.AddLike(bob.ID, p.ID, meta("htc-sense", "203.0.113.9", at)); err != nil {
		t.Fatal(err)
	}
	likes := s.Likes(p.ID)
	if len(likes) != 1 {
		t.Fatalf("len(Likes) = %d", len(likes))
	}
	l := likes[0]
	if l.AppID != "htc-sense" || l.SourceIP != "203.0.113.9" || !l.At.Equal(at) {
		t.Fatalf("Like = %+v", l)
	}
}

func TestRemoveLike(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	bob := s.CreateAccount("bob", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	if err := s.RemoveLike(bob.ID, p.ID); !errors.Is(err, ErrNotLiked) {
		t.Fatalf("remove before like error = %v", err)
	}
	_ = s.AddLike(bob.ID, p.ID, meta("", "", t0))
	if err := s.RemoveLike(bob.ID, p.ID); err != nil {
		t.Fatal(err)
	}
	if s.LikeCount(p.ID) != 0 {
		t.Fatal("like not removed")
	}
	// After removal the account can like again (Facebook purge semantics).
	if err := s.AddLike(bob.ID, p.ID, meta("", "", t0)); err != nil {
		t.Fatalf("re-like after purge: %v", err)
	}
}

func TestSuspendedAccountCannotWrite(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	bob := s.CreateAccount("bob", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	if err := s.SetSuspended(bob.ID, true); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLike(bob.ID, p.ID, meta("", "", t0)); !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended like error = %v", err)
	}
	if _, err := s.CreatePost(bob.ID, "spam", meta("", "", t0)); !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended post error = %v", err)
	}
	if _, err := s.AddComment(bob.ID, p.ID, "hi", meta("", "", t0)); !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended comment error = %v", err)
	}
	if err := s.SetSuspended(bob.ID, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLike(bob.ID, p.ID, meta("", "", t0)); err != nil {
		t.Fatalf("reinstated like error = %v", err)
	}
}

func TestComments(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	bob := s.CreateAccount("bob", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	c1, err := s.AddComment(bob.ID, p.ID, "AW E S O M E", meta("app", "ip", t0))
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := s.AddComment(bob.ID, p.ID, "gr8", meta("app", "ip", t0.Add(time.Second)))
	got := s.Comments(p.ID)
	if len(got) != 2 || got[0].ID != c1.ID || got[1].ID != c2.ID {
		t.Fatalf("Comments = %+v", got)
	}
	if _, err := s.AddComment(bob.ID, "nope", "x", meta("", "", t0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("comment on missing post error = %v", err)
	}
	if _, err := s.AddComment(bob.ID, p.ID, "", meta("", "", t0)); !errors.Is(err, ErrEmptyMessage) {
		t.Fatalf("empty comment error = %v", err)
	}
}

func TestActivityLog(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	bob := s.CreateAccount("bob", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	_ = s.AddLike(bob.ID, p.ID, meta("app", "ip", t0.Add(time.Hour)))
	_, _ = s.AddComment(bob.ID, p.ID, "nice", meta("app", "ip", t0.Add(2*time.Hour)))
	log := s.ActivityLog(bob.ID)
	if len(log) != 2 {
		t.Fatalf("len(ActivityLog) = %d, want 2", len(log))
	}
	if log[0].Verb != VerbLike || log[0].TargetID != alice.ID {
		t.Fatalf("log[0] = %+v", log[0])
	}
	if log[1].Verb != VerbComment || log[1].TargetID != alice.ID {
		t.Fatalf("log[1] = %+v", log[1])
	}
	since := s.ActivitySince(bob.ID, t0.Add(90*time.Minute))
	if len(since) != 1 || since[0].Verb != VerbComment {
		t.Fatalf("ActivitySince = %+v", since)
	}
}

func TestPagesAndProfileLikes(t *testing.T) {
	s := New()
	owner := s.CreateAccount("owner", "IN", t0)
	fan := s.CreateAccount("fan", "IN", t0)
	page, err := s.CreatePage(owner.ID, "MG Likers Official", t0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreatePage("ghost", "x", t0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("page with missing owner error = %v", err)
	}
	// Page can be liked directly.
	if err := s.AddLike(fan.ID, page.ID, meta("", "", t0)); err != nil {
		t.Fatal(err)
	}
	// Pages can author posts; the activity is attributed to the owner.
	pp, err := s.CreatePost(page.ID, "page post", meta("", "", t0))
	if err != nil {
		t.Fatal(err)
	}
	if pp.AuthorID != page.ID {
		t.Fatalf("page post author = %q", pp.AuthorID)
	}
	// Profile (account object) can be liked, owner resolves to itself.
	if err := s.AddLike(fan.ID, owner.ID, meta("", "", t0)); err != nil {
		t.Fatal(err)
	}
	ownerOf, err := s.OwnerOf(page.ID)
	if err != nil || ownerOf != page.ID {
		t.Fatalf("OwnerOf(page) = %q, %v", ownerOf, err)
	}
	if err := s.AddLike(fan.ID, "bogus", meta("", "", t0)); !errors.Is(err, ErrInvalidReference) {
		t.Fatalf("like on bogus object error = %v", err)
	}
	got, err := s.Page(page.ID)
	if err != nil || got.Name != "MG Likers Official" {
		t.Fatalf("Page = %+v, %v", got, err)
	}
}

func TestStats(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	bob := s.CreateAccount("bob", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	_ = s.AddLike(bob.ID, p.ID, meta("", "", t0))
	_, _ = s.AddComment(bob.ID, p.ID, "hi", meta("", "", t0))
	st := s.Stats()
	want := Stats{Accounts: 2, Posts: 1, Comments: 1, Likes: 1}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
	if s.AccountCount() != 2 {
		t.Fatalf("AccountCount = %d", s.AccountCount())
	}
}

func TestLikesArrivalOrder(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	var want []string
	for i := 0; i < 50; i++ {
		a := s.CreateAccount(fmt.Sprintf("u%d", i), "IN", t0)
		_ = s.AddLike(a.ID, p.ID, meta("", "", t0.Add(time.Duration(i)*time.Second)))
		want = append(want, a.ID)
	}
	likes := s.Likes(p.ID)
	if len(likes) != len(want) {
		t.Fatalf("len(Likes) = %d, want %d", len(likes), len(want))
	}
	for i := range want {
		if likes[i].AccountID != want[i] {
			t.Fatalf("likes[%d] = %q, want %q", i, likes[i].AccountID, want[i])
		}
	}
}

func TestConcurrentLikes(t *testing.T) {
	s := New()
	alice := s.CreateAccount("alice", "IN", t0)
	p, _ := s.CreatePost(alice.ID, "post", meta("", "", t0))
	const n = 200
	accounts := make([]string, n)
	for i := range accounts {
		accounts[i] = s.CreateAccount(fmt.Sprintf("u%d", i), "IN", t0).ID
	}
	var wg sync.WaitGroup
	for _, id := range accounts {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := s.AddLike(id, p.ID, meta("", "", t0)); err != nil {
				t.Error(err)
			}
		}(id)
	}
	wg.Wait()
	if got := s.LikeCount(p.ID); got != n {
		t.Fatalf("LikeCount = %d, want %d", got, n)
	}
}

// Property: like count always equals the number of distinct likers, no
// matter the interleaving of duplicate likes.
func TestQuickLikeCountEqualsDistinctLikers(t *testing.T) {
	f := func(likerPicks []uint8) bool {
		s := New()
		author := s.CreateAccount("author", "IN", t0)
		p, _ := s.CreatePost(author.ID, "post", meta("", "", t0))
		pool := make([]string, 16)
		for i := range pool {
			pool[i] = s.CreateAccount(fmt.Sprintf("u%d", i), "IN", t0).ID
		}
		distinct := make(map[string]bool)
		for _, pick := range likerPicks {
			id := pool[int(pick)%len(pool)]
			err := s.AddLike(id, p.ID, meta("", "", t0))
			if distinct[id] {
				if !errors.Is(err, ErrAlreadyLiked) {
					return false
				}
			} else if err != nil {
				return false
			}
			distinct[id] = true
		}
		return s.LikeCount(p.ID) == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every activity-log entry's target matches the owner of the
// object acted on.
func TestQuickActivityTargetsConsistent(t *testing.T) {
	f := func(actions []bool) bool {
		s := New()
		author := s.CreateAccount("author", "IN", t0)
		actor := s.CreateAccount("actor", "IN", t0)
		p, _ := s.CreatePost(author.ID, "post", meta("", "", t0))
		liked := false
		for _, doLike := range actions {
			if doLike && !liked {
				if err := s.AddLike(actor.ID, p.ID, meta("", "", t0)); err != nil {
					return false
				}
				liked = true
			} else {
				if _, err := s.AddComment(actor.ID, p.ID, "c", meta("", "", t0)); err != nil {
					return false
				}
			}
		}
		for _, act := range s.ActivityLog(actor.ID) {
			if act.TargetID != author.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
