package socialgraph

import (
	"fmt"
	"sort"
)

// Friendship support. The paper's Section 8 highlights that leaked
// tokens with the user_friends permission expose members' social graphs,
// enabling personal-information harvesting and malware propagation along
// friend edges; the extension experiments reproduce those attacks, so the
// substrate models undirected friendships.

// AddFriendship records an undirected friend edge between two accounts.
// Adding an existing edge or a self-edge is an error.
func (s *Store) AddFriendship(a, b string) error {
	if a == b {
		return fmt.Errorf("socialgraph: self-friendship for %q: %w", a, ErrInvalidReference)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[a]; !ok {
		return fmt.Errorf("account %q: %w", a, ErrNotFound)
	}
	if _, ok := s.accounts[b]; !ok {
		return fmt.Errorf("account %q: %w", b, ErrNotFound)
	}
	if s.friends == nil {
		s.friends = make(map[string]map[string]bool)
	}
	if s.friends[a][b] {
		return fmt.Errorf("socialgraph: %q and %q already friends: %w", a, b, ErrAlreadyLiked)
	}
	link := func(x, y string) {
		set := s.friends[x]
		if set == nil {
			set = make(map[string]bool)
			s.friends[x] = set
		}
		set[y] = true
	}
	link(a, b)
	link(b, a)
	return nil
}

// Friends returns the account's friend IDs in sorted order.
func (s *Store) Friends(accountID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := s.friends[accountID]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// FriendCount returns the number of friends of the account.
func (s *Store) FriendCount(accountID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.friends[accountID])
}

// AreFriends reports whether an edge exists.
func (s *Store) AreFriends(a, b string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.friends[a][b]
}
