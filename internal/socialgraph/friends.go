package socialgraph

import (
	"fmt"
	"sort"
)

// Friendship support. The paper's Section 8 highlights that leaked
// tokens with the user_friends permission expose members' social graphs,
// enabling personal-information harvesting and malware propagation along
// friend edges; the extension experiments reproduce those attacks, so the
// substrate models undirected friendships.
//
// Edges are stored symmetrically, one direction per endpoint's shard.
// AddFriendship write-locks both endpoint shards in ascending index order
// (the store-wide lock-ordering rule), so the two directions appear
// atomically and the duplicate check cannot race with a concurrent add of
// the reverse edge.

// AddFriendship records an undirected friend edge between two accounts.
// Adding an existing edge or a self-edge is an error.
func (s *Store) AddFriendship(a, b string) error {
	if a == b {
		return fmt.Errorf("socialgraph: self-friendship for %q: %w", a, ErrInvalidReference)
	}
	unlock := s.lockOrdered(a, b)
	defer unlock()
	shA := s.shardFor(a)
	shB := s.shardFor(b)
	if _, ok := shA.accounts[a]; !ok {
		return fmt.Errorf("account %q: %w", a, ErrNotFound)
	}
	if _, ok := shB.accounts[b]; !ok {
		return fmt.Errorf("account %q: %w", b, ErrNotFound)
	}
	if shA.friends[a][b] {
		return fmt.Errorf("socialgraph: %q and %q already friends: %w", a, b, ErrAlreadyLiked)
	}
	link := func(sh *shard, x, y string) {
		set := sh.friends[x]
		if set == nil {
			set = make(map[string]bool)
			sh.friends[x] = set
		}
		set[y] = true
	}
	link(shA, a, b)
	link(shB, b, a)
	return nil
}

// Friends returns the account's friend IDs in sorted order.
func (s *Store) Friends(accountID string) []string {
	sh := s.rlock(accountID)
	defer sh.mu.RUnlock()
	set := sh.friends[accountID]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// FriendCount returns the number of friends of the account.
func (s *Store) FriendCount(accountID string) int {
	sh := s.rlock(accountID)
	defer sh.mu.RUnlock()
	return len(sh.friends[accountID])
}

// AreFriends reports whether an edge exists.
func (s *Store) AreFriends(a, b string) bool {
	sh := s.rlock(a)
	defer sh.mu.RUnlock()
	return sh.friends[a][b]
}
