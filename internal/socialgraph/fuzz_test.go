package socialgraph

// FuzzShardRouting feeds arbitrary ID strings through the shard router:
// routing must be deterministic, always in range for every legal shard
// count, never panic, and an object inserted under an arbitrary ID must
// round-trip through the public lookup path (proving the insert-side and
// lookup-side routing agree byte-for-byte, including IDs with embedded
// NULs and invalid UTF-8).

import (
	"testing"
	"time"
)

func FuzzShardRouting(f *testing.F) {
	f.Add("")
	f.Add("a")
	f.Add("1000000000000001") // minted-account-shaped
	f.Add("2000000000000987") // minted-post-shaped
	f.Add("5000000000000003") // minted-page-shaped
	f.Add("héllo wörld ❤")
	f.Add("\x00\x01\xff")
	f.Add("bogus-object")
	f.Fuzz(func(t *testing.T, id string) {
		for _, shards := range []int{1, 4, 64} {
			s := NewWithShards(shards)
			i := s.shardIndex(id)
			if i < 0 || i >= s.ShardCount() {
				t.Fatalf("shardIndex(%q) = %d with %d shards", id, i, s.ShardCount())
			}
			if j := s.shardIndex(id); j != i {
				t.Fatalf("shardIndex(%q) unstable: %d then %d", id, i, j)
			}
			// Round-trip: plant an account record under the arbitrary ID
			// directly in the routed shard, then look it up through the
			// public read path.
			sh := s.shardFor(id)
			//collusionvet:allow lockorder -- test plants a record under the store's API
			sh.mu.Lock()
			sh.accounts[id] = &Account{ID: id, Name: "fuzz", CreatedAt: time.Unix(0, 0)}
			sh.mu.Unlock()
			got, err := s.Account(id)
			if err != nil {
				t.Fatalf("Account(%q) after insert: %v", id, err)
			}
			if got.ID != id {
				t.Fatalf("Account(%q).ID = %q", id, got.ID)
			}
			// The planted ID must also be reachable through the all-shard
			// composition paths.
			if s.AccountCount() != 1 {
				t.Fatalf("AccountCount = %d after one insert", s.AccountCount())
			}
			if ids := s.AccountIDs(); len(ids) != 1 || ids[0] != id {
				t.Fatalf("AccountIDs = %q", ids)
			}
			// And like-routing on the same ID must resolve it as a profile
			// object (owner = itself), whatever the bytes.
			owner, err := s.OwnerOf(id)
			if err != nil || owner != id {
				t.Fatalf("OwnerOf(%q) = %q, %v", id, owner, err)
			}
		}
	})
}
