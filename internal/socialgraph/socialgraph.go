// Package socialgraph implements the social network substrate the rest of
// the reproduction runs on: accounts, posts, likes, comments, and pages,
// held in a concurrency-safe in-memory store with a full activity log.
//
// The store models the Facebook semantics the paper's measurements depend
// on:
//
//   - a like is idempotent per (account, object) — repeated likes by the
//     same account do not inflate counts, which is why collusion networks
//     must sample *distinct* member tokens per request and why honeypot
//     milking converges on the true membership (Figure 4);
//   - every write is attributed to the application and source IP that
//     performed it, which is what the Section 6 countermeasures key on;
//   - each account has an activity log of its outgoing actions, which the
//     honeypots crawl to observe how collusion networks spend their tokens
//     (Table 4 "outgoing activities", Figure 7).
package socialgraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
)

// Errors returned by store operations.
var (
	ErrNotFound         = errors.New("socialgraph: object not found")
	ErrSuspended        = errors.New("socialgraph: account suspended")
	ErrAlreadyLiked     = errors.New("socialgraph: already liked")
	ErrNotLiked         = errors.New("socialgraph: not liked")
	ErrEmptyMessage     = errors.New("socialgraph: empty message")
	ErrInvalidReference = errors.New("socialgraph: invalid object reference")
)

// Account is a user account.
type Account struct {
	ID        string
	Name      string
	Country   string
	CreatedAt time.Time
	Suspended bool
}

// Page is a fan page that can own posts and receive likes.
type Page struct {
	ID        string
	Name      string
	OwnerID   string
	CreatedAt time.Time
}

// Like records one like on an object.
type Like struct {
	AccountID string
	ObjectID  string
	AppID     string // application whose token performed the like ("" = first-party)
	SourceIP  string // IP the Graph API request originated from
	At        time.Time
}

// Comment is a comment on a post.
type Comment struct {
	ID        string
	PostID    string
	AccountID string
	Message   string
	AppID     string
	SourceIP  string
	At        time.Time
}

// Post is a status update on an account's or page's timeline.
type Post struct {
	ID        string
	AuthorID  string // account or page ID
	Message   string
	CreatedAt time.Time
}

// Verb enumerates activity-log actions.
type Verb string

// Activity verbs.
const (
	VerbPost    Verb = "post"
	VerbLike    Verb = "like"
	VerbComment Verb = "comment"
)

// Activity is one entry of an account's outgoing activity log.
type Activity struct {
	ActorID  string
	Verb     Verb
	ObjectID string // post/comment ID acted on or created
	TargetID string // owner (account or page) of the object acted on
	AppID    string
	SourceIP string
	At       time.Time
}

// Store is the in-memory social graph. The zero value is not usable; use
// New. Store is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	minter   *ids.Minter
	accounts map[string]*Account
	pages    map[string]*Page
	posts    map[string]*Post
	comments map[string]*Comment
	// likesByObject[objectID][accountID] = like
	likesByObject map[string]map[string]Like
	// likeOrder preserves insertion order of likes per object for crawling.
	likeOrder map[string][]string
	// postsByAuthor[authorID] = post IDs in creation order
	postsByAuthor map[string][]string
	// commentsByPost[postID] = comment IDs in creation order
	commentsByPost map[string][]string
	// activity[accountID] = outgoing activity log
	activity map[string][]Activity
	// friends[accountID] = set of friend account IDs (undirected edges,
	// stored symmetrically); allocated lazily by AddFriendship.
	friends map[string]map[string]bool
}

// New returns an empty Store.
func New() *Store {
	return &Store{
		minter:         ids.NewMinter(),
		accounts:       make(map[string]*Account),
		pages:          make(map[string]*Page),
		posts:          make(map[string]*Post),
		comments:       make(map[string]*Comment),
		likesByObject:  make(map[string]map[string]Like),
		likeOrder:      make(map[string][]string),
		postsByAuthor:  make(map[string][]string),
		commentsByPost: make(map[string][]string),
		activity:       make(map[string][]Activity),
	}
}

// CreateAccount registers a new account and returns it.
func (s *Store) CreateAccount(name, country string, at time.Time) Account {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := &Account{
		ID:        s.minter.Next(ids.KindAccount),
		Name:      name,
		Country:   country,
		CreatedAt: at,
	}
	s.accounts[a.ID] = a
	return *a
}

// Account returns the account with the given ID.
func (s *Store) Account(id string) (Account, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.accounts[id]
	if !ok {
		return Account{}, fmt.Errorf("account %q: %w", id, ErrNotFound)
	}
	return *a, nil
}

// AccountCount returns the number of registered accounts.
func (s *Store) AccountCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.accounts)
}

// SetSuspended marks an account suspended or reinstated. Suspended accounts
// cannot perform writes.
func (s *Store) SetSuspended(id string, suspended bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[id]
	if !ok {
		return fmt.Errorf("account %q: %w", id, ErrNotFound)
	}
	a.Suspended = suspended
	return nil
}

// CreatePage registers a fan page owned by an account.
func (s *Store) CreatePage(ownerID, name string, at time.Time) (Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[ownerID]; !ok {
		return Page{}, fmt.Errorf("page owner %q: %w", ownerID, ErrNotFound)
	}
	p := &Page{
		ID:        s.minter.Next(ids.KindPage),
		Name:      name,
		OwnerID:   ownerID,
		CreatedAt: at,
	}
	s.pages[p.ID] = p
	return *p, nil
}

// Page returns the page with the given ID.
func (s *Store) Page(id string) (Page, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[id]
	if !ok {
		return Page{}, fmt.Errorf("page %q: %w", id, ErrNotFound)
	}
	return *p, nil
}

// WriteMeta attributes a write to the app and source IP that performed it.
type WriteMeta struct {
	AppID    string
	SourceIP string
	At       time.Time
}

// CreatePost publishes a status update on the author's timeline. The author
// may be an account or a page (pages post via their owner).
func (s *Store) CreatePost(authorID, message string, meta WriteMeta) (Post, error) {
	if message == "" {
		return Post{}, ErrEmptyMessage
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	actor := authorID
	if a, ok := s.accounts[authorID]; ok {
		if a.Suspended {
			return Post{}, fmt.Errorf("author %q: %w", authorID, ErrSuspended)
		}
	} else if p, ok := s.pages[authorID]; ok {
		actor = p.OwnerID
	} else {
		return Post{}, fmt.Errorf("author %q: %w", authorID, ErrNotFound)
	}
	post := &Post{
		ID:        s.minter.Next(ids.KindPost),
		AuthorID:  authorID,
		Message:   message,
		CreatedAt: meta.At,
	}
	s.posts[post.ID] = post
	s.postsByAuthor[authorID] = append(s.postsByAuthor[authorID], post.ID)
	s.activity[actor] = append(s.activity[actor], Activity{
		ActorID: actor, Verb: VerbPost, ObjectID: post.ID, TargetID: authorID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return *post, nil
}

// Post returns the post with the given ID.
func (s *Store) Post(id string) (Post, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.posts[id]
	if !ok {
		return Post{}, fmt.Errorf("post %q: %w", id, ErrNotFound)
	}
	return *p, nil
}

// PostsByAuthor returns the author's posts in creation order.
func (s *Store) PostsByAuthor(authorID string) []Post {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idsList := s.postsByAuthor[authorID]
	out := make([]Post, 0, len(idsList))
	for _, id := range idsList {
		out = append(out, *s.posts[id])
	}
	return out
}

// AddLike records a like by accountID on the object (post or page).
// Likes are idempotent: liking an object twice returns ErrAlreadyLiked.
func (s *Store) AddLike(accountID, objectID string, meta WriteMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[accountID]
	if !ok {
		return fmt.Errorf("liker %q: %w", accountID, ErrNotFound)
	}
	if a.Suspended {
		return fmt.Errorf("liker %q: %w", accountID, ErrSuspended)
	}
	targetID, err := s.ownerOfLocked(objectID)
	if err != nil {
		return err
	}
	likes := s.likesByObject[objectID]
	if likes == nil {
		likes = make(map[string]Like)
		s.likesByObject[objectID] = likes
	}
	if _, dup := likes[accountID]; dup {
		return fmt.Errorf("account %q on object %q: %w", accountID, objectID, ErrAlreadyLiked)
	}
	likes[accountID] = Like{
		AccountID: accountID, ObjectID: objectID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	}
	s.likeOrder[objectID] = append(s.likeOrder[objectID], accountID)
	s.activity[accountID] = append(s.activity[accountID], Activity{
		ActorID: accountID, Verb: VerbLike, ObjectID: objectID, TargetID: targetID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return nil
}

// RemoveLike deletes a like, as Facebook did when purging fake likes.
func (s *Store) RemoveLike(accountID, objectID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	likes := s.likesByObject[objectID]
	if _, ok := likes[accountID]; !ok {
		return fmt.Errorf("account %q on object %q: %w", accountID, objectID, ErrNotLiked)
	}
	delete(likes, accountID)
	order := s.likeOrder[objectID]
	for i, id := range order {
		if id == accountID {
			s.likeOrder[objectID] = append(order[:i:i], order[i+1:]...)
			break
		}
	}
	return nil
}

// Likes returns the likes on an object in arrival order.
func (s *Store) Likes(objectID string) []Like {
	s.mu.RLock()
	defer s.mu.RUnlock()
	order := s.likeOrder[objectID]
	likes := s.likesByObject[objectID]
	out := make([]Like, 0, len(order))
	for _, accountID := range order {
		if l, ok := likes[accountID]; ok {
			out = append(out, l)
		}
	}
	return out
}

// LikeCount returns the number of likes on an object.
func (s *Store) LikeCount(objectID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.likesByObject[objectID])
}

// HasLiked reports whether the account has liked the object.
func (s *Store) HasLiked(accountID, objectID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.likesByObject[objectID][accountID]
	return ok
}

// AddComment records a comment on a post.
func (s *Store) AddComment(accountID, postID, message string, meta WriteMeta) (Comment, error) {
	if message == "" {
		return Comment{}, ErrEmptyMessage
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[accountID]
	if !ok {
		return Comment{}, fmt.Errorf("commenter %q: %w", accountID, ErrNotFound)
	}
	if a.Suspended {
		return Comment{}, fmt.Errorf("commenter %q: %w", accountID, ErrSuspended)
	}
	post, ok := s.posts[postID]
	if !ok {
		return Comment{}, fmt.Errorf("post %q: %w", postID, ErrNotFound)
	}
	c := &Comment{
		ID:        s.minter.Next(ids.KindComment),
		PostID:    postID,
		AccountID: accountID,
		Message:   message,
		AppID:     meta.AppID,
		SourceIP:  meta.SourceIP,
		At:        meta.At,
	}
	s.comments[c.ID] = c
	s.commentsByPost[postID] = append(s.commentsByPost[postID], c.ID)
	s.activity[accountID] = append(s.activity[accountID], Activity{
		ActorID: accountID, Verb: VerbComment, ObjectID: c.ID, TargetID: post.AuthorID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return *c, nil
}

// Comments returns the comments on a post in creation order.
func (s *Store) Comments(postID string) []Comment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idsList := s.commentsByPost[postID]
	out := make([]Comment, 0, len(idsList))
	for _, id := range idsList {
		out = append(out, *s.comments[id])
	}
	return out
}

// ActivityLog returns the account's outgoing activity in chronological
// (insertion) order.
func (s *Store) ActivityLog(accountID string) []Activity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log := s.activity[accountID]
	out := make([]Activity, len(log))
	copy(out, log)
	return out
}

// ActivitySince returns the account's outgoing activity at or after t.
func (s *Store) ActivitySince(accountID string, t time.Time) []Activity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Activity
	for _, act := range s.activity[accountID] {
		if !act.At.Before(t) {
			out = append(out, act)
		}
	}
	return out
}

// ownerOfLocked resolves the owner (account or page) of a likeable object.
// Callers must hold s.mu.
func (s *Store) ownerOfLocked(objectID string) (string, error) {
	if p, ok := s.posts[objectID]; ok {
		return p.AuthorID, nil
	}
	if _, ok := s.pages[objectID]; ok {
		return objectID, nil
	}
	if _, ok := s.accounts[objectID]; ok {
		// Liking a profile is modelled as liking the account object itself
		// (the paper observes honeypots liking owners' profile pictures).
		return objectID, nil
	}
	return "", fmt.Errorf("object %q: %w", objectID, ErrInvalidReference)
}

// OwnerOf resolves the owner of a likeable object.
func (s *Store) OwnerOf(objectID string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ownerOfLocked(objectID)
}

// Stats summarises store contents; used by experiment reports.
type Stats struct {
	Accounts, Pages, Posts, Comments, Likes int
}

// Stats returns aggregate counts.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Accounts: len(s.accounts),
		Pages:    len(s.pages),
		Posts:    len(s.posts),
		Comments: len(s.comments),
	}
	for _, likes := range s.likesByObject {
		st.Likes += len(likes)
	}
	return st
}

// AccountIDs returns all account IDs in sorted order; used by tests and
// deterministic sampling.
func (s *Store) AccountIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.accounts))
	for id := range s.accounts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
